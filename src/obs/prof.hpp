// Scoped-span self-profiler for the experiment harness.
//
// PRs 1-3 gave the *simulated stack* a flight recorder, metrics and an
// invariant checker; this module turns the same lens on the harness itself —
// worker pools, grid phases, forest fits, bench drivers — so a sweep can
// report where its own wall-clock goes (the precondition for sharding or
// caching it; see ROADMAP). Three properties carry over from the obs
// hooks:
//
//  1. *Disabled is free.* Spans are opt-in via a thread-local slot, exactly
//     like TraceRecorder / MetricsRegistry: with no Profiler installed a
//     ProfSpan is one TLS pointer load and a branch at open and a branch at
//     close (micro-benched beside the PR 1/2 hooks in bench/micro_bench).
//  2. *Deterministic identity.* Span ids are a pure function of the
//     profiler's id domain (derived from the job index for per-job
//     profilers) and an open-order sequence number — never wall-clock,
//     thread id, or pointer values — so the span *structure* exported from
//     an N-worker sweep is byte-identical to the 1-worker run, and the
//     timing fields are the only nondeterministic part.
//  3. *Own the cost story.* Each span records wall time, thread CPU time
//     (the owning thread's share of process CPU) and util/buffer_pool
//     hit/miss deltas, so a phase rollup says not just "how long" but
//     whether the time went to compute or allocator churn.
//
// Exporters: a Chrome/Perfetto trace_event JSON writer (open a sweep's
// thread timeline in chrome://tracing or ui.perfetto.dev) lives here; the
// run-manifest emitter builds on both and lives in obs/manifest.hpp.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace stob::obs {

/// One closed (or still-open) span. Times are nanoseconds; start_ns is
/// relative to the owning Profiler's epoch (its construction instant).
struct ProfRecord {
  std::uint64_t id = 0;      ///< deterministic: mix(domain, open sequence)
  std::uint64_t parent = 0;  ///< enclosing span id, 0 = root
  std::uint32_t depth = 0;   ///< nesting depth (roots are 0)
  /// Thread lane for timeline export: 0 = the profiler's own thread, pool
  /// workers are 1-based ordinals. Scheduling-dependent — part of the
  /// timeline view, never of the deterministic structure export.
  std::uint32_t worker = 0;
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t wall_ns = -1;  ///< -1 while the span is still open
  std::int64_t cpu_ns = 0;    ///< owning thread's CPU time inside the span
  std::uint64_t pool_hits = 0;    ///< util/buffer_pool freelist hits inside
  std::uint64_t pool_misses = 0;  ///< pool allocs that hit the allocator
};

/// Deterministic sub-domain for item `index` of a pool rooted at `domain`
/// (splitmix64 mixing, same recipe as exp::job_seed). Pure function of its
/// arguments so per-job span ids never depend on scheduling.
std::uint64_t sub_domain(std::uint64_t domain, std::uint64_t index);

/// Span sink for one thread (or one job). Records are kept in open order,
/// which is deterministic program order on the owning thread; spans spliced
/// in from per-job profilers (worker_pool) are appended in job-index order,
/// so the full record sequence is reproducible for any worker count.
class Profiler {
 public:
  explicit Profiler(std::uint64_t id_domain = 0);

  std::uint64_t id_domain() const { return id_domain_; }

  /// Monotonic nanoseconds since this profiler's epoch. Thread-safe (reads
  /// an immutable epoch); worker_pool uses it to timestamp jobs on worker
  /// threads against the caller's timeline.
  std::int64_t now_ns() const;

  // ---- span interface (used by ProfSpan; callable directly) ----
  /// Open a span named `name` nested under the current open span. Returns
  /// the record index to pass to close().
  std::size_t open(std::string_view name);
  void close(std::size_t index);
  std::size_t open_depth() const { return stack_.size(); }

  /// Append another profiler's records (a per-job capture) nested under the
  /// currently open span: root spans are re-parented, depths shifted, start
  /// times shifted by `shift_ns` (the job's start on this timeline) and
  /// thread lanes rebased onto `worker`. Span ids are kept verbatim — they
  /// are already deterministic via the child's id domain.
  void splice(std::vector<ProfRecord> records, std::int64_t shift_ns, std::uint32_t worker);

  const std::vector<ProfRecord>& records() const { return records_; }
  std::vector<ProfRecord> take_records();
  void clear();

  /// Harness-side metrics (queue waits, worker utilization, stragglers —
  /// anything timing-derived). Kept on the profiler rather than the
  /// thread-local MetricsRegistry slot so the deterministic stack metrics a
  /// run collects are never polluted with scheduling-dependent values.
  MetricsRegistry& harness() { return harness_; }
  const MetricsRegistry& harness() const { return harness_; }

  /// Deterministic structure export: one "id parent depth name" line per
  /// record, in record order. Contains no timing, lane or pool fields, so
  /// two runs of the same grid at different --jobs counts produce
  /// byte-identical structure (tested in test_exp).
  std::string structure() const;

 private:
  std::uint64_t next_id();

  std::uint64_t id_domain_ = 0;
  std::uint64_t seq_ = 0;
  std::int64_t epoch_wall_ns_ = 0;  // steady_clock at construction
  std::vector<ProfRecord> records_;
  std::vector<std::size_t> stack_;  // indices of open spans, innermost last
  MetricsRegistry harness_;
};

// ---------------------------------------------------------------- install

namespace detail {
extern thread_local Profiler* g_profiler;  // nullptr = profiling disabled
}  // namespace detail

/// Profiler installed on the calling thread, or nullptr. The disabled fast
/// path of every ProfSpan is exactly this load plus a branch.
inline Profiler* profiler() noexcept { return detail::g_profiler; }

/// Install (or, with nullptr, remove) the calling thread's profiler.
void install_profiler(Profiler* p) noexcept;

/// RAII installation for a scope, mirroring ScopedRecorder/ScopedMetrics.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler& p) : prev_(profiler()) { install_profiler(&p); }
  ~ScopedProfiler() { install_profiler(prev_); }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* prev_;
};

/// RAII span: opens on construction when a profiler is installed, closes on
/// destruction — including during exception unwind, so a throwing job still
/// leaves a balanced span tree. Disabled path: one TLS load and branch.
class ProfSpan {
 public:
  explicit ProfSpan(std::string_view name)
      : prof_(detail::g_profiler), index_(prof_ != nullptr ? prof_->open(name) : 0) {}
  ~ProfSpan() {
    if (prof_ != nullptr) prof_->close(index_);
  }
  ProfSpan(const ProfSpan&) = delete;
  ProfSpan& operator=(const ProfSpan&) = delete;

 private:
  Profiler* prof_;
  std::size_t index_;
};

// ----------------------------------------------------- trace_event export

/// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds)
/// for a span capture. Loads in chrome://tracing and ui.perfetto.dev: one
/// lane per ProfRecord::worker, named via thread_name metadata events.
/// Open spans (wall_ns < 0) are skipped. Formatting is deterministic for
/// identical records (golden-tested in test_obs).
std::string trace_event_json(const std::vector<ProfRecord>& records,
                             std::string_view process_name);

void write_trace_event(const std::filesystem::path& path,
                       const std::vector<ProfRecord>& records, std::string_view process_name);

}  // namespace stob::obs
