#include "defenses/trace_defense.hpp"

#include <algorithm>

namespace stob::defenses {

std::string Manipulations::describe() const {
  std::string out;
  auto append = [&out](const char* s) {
    if (!out.empty()) out += ", ";
    out += s;
  };
  if (padding) append("padding");
  if (timing) append("timing");
  if (packet_size) append("packet size");
  return out.empty() ? "none" : out;
}

Overhead measure_overhead(const wf::Trace& original, const wf::Trace& defended) {
  Overhead o;
  const double ob = static_cast<double>(original.total_bytes());
  const double db = static_cast<double>(defended.total_bytes());
  if (ob > 0) o.bandwidth = (db - ob) / ob;
  const double od = original.duration();
  const double dd = defended.duration();
  if (od > 0) o.latency = (dd - od) / od;
  return o;
}

Overhead measure_overhead(const wf::Dataset& data, const TraceDefense& defense, Rng& rng) {
  Overhead acc;
  if (data.size() == 0) return acc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Overhead o = measure_overhead(data.trace(i), defense.apply(data.trace(i), rng));
    acc.bandwidth += o.bandwidth;
    acc.latency += o.latency;
  }
  acc.bandwidth /= static_cast<double>(data.size());
  acc.latency /= static_cast<double>(data.size());
  return acc;
}

// ------------------------------------------------------------ SplitDefense

wf::Trace SplitDefense::apply(const wf::Trace& trace, Rng& /*rng*/) const {
  wf::Trace out;
  for (const wf::PacketRecord& p : trace.packets()) {
    const bool in_scope = !cfg_.incoming_only || p.direction < 0;
    if (in_scope && p.size > cfg_.threshold) {
      const std::int64_t first = p.size / 2;
      const std::int64_t second = p.size - first;
      out.add(p.time, p.direction, first);
      // The second half leaves after the first half's serialisation time.
      const double gap = static_cast<double>(first) * 8.0 /
                         static_cast<double>(cfg_.link_rate.bits_per_sec());
      out.add(p.time + gap, p.direction, second);
    } else {
      out.add(p.time, p.direction, p.size);
    }
  }
  out.normalize();
  return out;
}

// ------------------------------------------------------------ DelayDefense

wf::Trace DelayDefense::apply(const wf::Trace& trace, Rng& rng) const {
  wf::Trace out;
  const auto& pkts = trace.packets();
  double shift = 0.0;  // accumulated extra delay pushed onto later packets
  double prev_original = pkts.empty() ? 0.0 : pkts.front().time;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const wf::PacketRecord& p = pkts[i];
    const bool in_scope = !cfg_.incoming_only || p.direction < 0;
    if (i > 0 && in_scope) {
      const double gap = p.time - prev_original;
      if (gap > 0) shift += gap * rng.uniform(cfg_.lo, cfg_.hi);
    }
    out.add(p.time + shift, p.direction, p.size);
    prev_original = p.time;
  }
  out.normalize();
  return out;
}

// --------------------------------------------------------- CombinedDefense

wf::Trace CombinedDefense::apply(const wf::Trace& trace, Rng& rng) const {
  return delay_.apply(split_.apply(trace, rng), rng);
}

// ---------------------------------------------------------- prefix scoping

wf::Trace apply_to_prefix(const TraceDefense& defense, const wf::Trace& trace,
                          std::size_t prefix_packets, Rng& rng) {
  if (prefix_packets == 0 || prefix_packets >= trace.size()) {
    return defense.apply(trace, rng);
  }
  const auto& pkts = trace.packets();
  wf::Trace prefix(std::vector<wf::PacketRecord>(
      pkts.begin(), pkts.begin() + static_cast<std::ptrdiff_t>(prefix_packets)));
  const double prefix_orig_end = pkts[prefix_packets - 1].time;
  wf::Trace defended_prefix = defense.apply(prefix, rng);

  // The unmodified tail shifts by however much the defended prefix stretched.
  const double defended_end =
      defended_prefix.empty() ? 0.0 : defended_prefix.packets().back().time;
  const double shift = std::max(0.0, defended_end - prefix_orig_end);

  wf::Trace out = defended_prefix;
  for (std::size_t i = prefix_packets; i < pkts.size(); ++i) {
    out.add(pkts[i].time + shift, pkts[i].direction, pkts[i].size);
  }
  out.normalize();
  return out;
}

}  // namespace stob::defenses
