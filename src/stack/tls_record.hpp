// TLS record layer model (TLS 1.3 / kTLS style).
//
// Figure 1 of the paper places TLS (user-space or kTLS) between the
// application and TCP; §4.2 suggests that *padding* — the one primitive
// Stob deliberately leaves to the application — can be implemented as TLS
// record padding (RFC 8446 allows zero-padding every record). This module
// models that layer at size granularity:
//
//   * application bytes are framed into records of at most `max_record`
//     plaintext bytes,
//   * each record gains `overhead` bytes (5 B header + 16 B AEAD tag +
//     1 B inner content type),
//   * an optional padding policy rounds each record's plaintext up to a
//     multiple of `pad_to` before sealing, hiding exact object sizes.
//
// TlsSession models one direction of a connection: the sender seals
// plaintext into ciphertext byte counts; the receiver side converts the
// arriving ciphertext byte counts back into plaintext as records complete.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace stob::stack {

struct TlsConfig {
  std::int64_t max_record = 16384;  ///< max plaintext bytes per record
  std::int64_t overhead = 22;       ///< header + AEAD tag + content type
  /// Pad plaintext of every record up to a multiple of this (0 = no
  /// padding). RFC 8446 record padding, the application-side counterpart
  /// to Stob's packet-sequence control.
  std::int64_t pad_to = 0;
};

/// Ciphertext size for `plaintext` bytes sealed in one go (pure function;
/// framing splits into max_record chunks).
std::int64_t tls_sealed_size(std::int64_t plaintext, const TlsConfig& cfg = {});

class TlsSession {
 public:
  TlsSession() : TlsSession(TlsConfig{}) {}
  explicit TlsSession(TlsConfig cfg) : cfg_(cfg) {}

  /// Attach the flow this session rides on, so sealed/opened records are
  /// attributed to it in the observability trace.
  void set_flow(const net::FlowKey& flow) { flow_ = flow; }

  /// Seal `plaintext` bytes; returns the ciphertext bytes to hand to TCP.
  /// The timestamped overload additionally records one obs::PacketEvent per
  /// record sealed (layer = Tls), with seq = the record's cumulative wire
  /// offset — the same coordinate space as the TCP stream offsets below it.
  std::int64_t seal(std::int64_t plaintext) { return seal(plaintext, TimePoint::zero()); }
  std::int64_t seal(std::int64_t plaintext, TimePoint now);

  /// Feed `wire` ciphertext bytes (in stream order, any chunking); returns
  /// the plaintext bytes that became available (completed records only;
  /// partially received records stay buffered, like a real TLS receiver
  /// that cannot authenticate a partial record).
  std::int64_t open(std::int64_t wire) { return open(wire, TimePoint::zero()); }
  std::int64_t open(std::int64_t wire, TimePoint now);

  std::uint64_t records_sealed() const { return records_sealed_; }
  std::int64_t padding_bytes() const { return padding_bytes_; }
  std::int64_t buffered_wire_bytes() const { return buffered_; }

 private:
  struct Record {
    std::int64_t wire = 0;       // ciphertext size
    std::int64_t plaintext = 0;  // application bytes inside
  };

  TlsConfig cfg_;
  net::FlowKey flow_;
  std::deque<Record> in_flight_;  // sealed, not yet fully received
  std::int64_t buffered_ = 0;     // received bytes of the head record
  std::uint64_t records_sealed_ = 0;
  std::int64_t padding_bytes_ = 0;
  std::int64_t send_offset_ = 0;  // cumulative ciphertext offset sealed
  std::int64_t recv_offset_ = 0;  // cumulative ciphertext offset opened
};

}  // namespace stob::stack
