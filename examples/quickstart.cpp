// Quickstart: the 60-second tour of the Stob library.
//
//  1. Build a simulated client/server pair connected by a network path.
//  2. Install a Stob obfuscation policy (split + delay, wrapped in the
//     CCA-safety guard) into the server's stack via the policy table.
//  3. Transfer data over TCP and watch the wire: every packet is at most
//     half the MSS and departures are jittered, yet the flow never runs
//     ahead of what congestion control allowed.
//
// Build & run:   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/cca_guard.hpp"
#include "core/policies.hpp"
#include "core/policy_table.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"

using namespace stob;

int main() {
  // --- 1. Two hosts, a 100 Mb/s path with 20 ms RTT. -----------------------
  stack::HostPair::Config net_cfg;
  net_cfg.path = net::DuplexPath::symmetric(DataRate::mbps(100), Duration::millis(10));
  stack::HostPair net(net_cfg);

  // --- 2. Obfuscation policy, installed "in shared memory" -----------------
  // The policy table is the paper's shared policy region: the application
  // (or an administrator) installs policies; the stack consults them per
  // flow. Here: split packets in half and inflate inter-departure gaps by
  // 10-30%, guarded so the flow is never more aggressive than the CCA.
  core::SplitPolicy split;
  core::DelayPolicy delay;
  core::CompositePolicy combined({&split, &delay});
  core::CcaGuard guarded(combined);

  core::PolicyTable table;
  table.set_default(std::shared_ptr<core::Policy>(&guarded, [](core::Policy*) {}));
  core::DispatchPolicy dispatch(table);

  // --- 3. A server that pushes 1 MB through the obfuscated stack -----------
  tcp::TcpConnection::Config server_cfg;
  server_cfg.policy = &dispatch;  // the Stob hook
  tcp::TcpListener listener(net.server(), 443, server_cfg);
  listener.set_accept_callback([](tcp::TcpConnection& conn) {
    conn.on_connected = [&conn] { conn.send(Bytes::mebi(1)); };
  });

  tcp::TcpConnection client(net.client(), tcp::TcpConnection::Config{});
  Bytes received;
  TimePoint done_at;
  client.on_data = [&](Bytes n) {
    received += n;
    if (received >= Bytes::mebi(1) && done_at == TimePoint::zero()) done_at = net.sim().now();
  };

  // Observe the wire like tcpdump would.
  std::int64_t packets = 0, max_payload = 0;
  net.path().backward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    if (p.payload.count() > 0) {
      ++packets;
      max_payload = std::max(max_payload, p.payload.count());
    }
  });

  client.connect(net.server().id(), 443);
  net.run(TimePoint(Duration::seconds(60).ns()));

  std::printf("received:        %lld bytes\n", static_cast<long long>(received.count()));
  std::printf("data packets:    %lld (max payload %lld B; MSS would be 1448 B)\n",
              static_cast<long long>(packets), static_cast<long long>(max_payload));
  std::printf("policy applied:  %s\n", guarded.name().c_str());
  std::printf("guard clamps:    %llu (0 means the policy was CCA-compliant)\n",
              static_cast<unsigned long long>(guarded.departure_clamps()));
  std::printf("transfer time:   %.3f s\n", done_at.sec());
  return received == Bytes::mebi(1) ? 0 : 1;
}
