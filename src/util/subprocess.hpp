// RAII child-process primitive for the out-of-process experiment runner.
//
// A Subprocess is one fork()'d — and usually exec()'d — worker with three
// plumbed file descriptors:
//
//   * stdin and stdout are pointed at /dev/null: workers re-run a bench
//     driver's main() up to the job dispatch point, and anything they print
//     must not interleave with the supervisor's (determinism-checked)
//     stdout;
//   * stderr is captured through a pipe so the supervisor can keep a tail
//     for crash reports;
//   * a dedicated *result* descriptor carries the job's output back as a
//     length-prefixed frame (see write_frame / parse_frame) — results never
//     share a stream with logging.
//
// Two spawn modes share the plumbing:
//
//   * exec mode (`Options::argv` non-empty): fork + execv. The worker gets
//     a fresh address space, so heap corruption in one cell cannot leak
//     into its siblings or the supervisor — the crash-isolation property
//     the proc runner is built on.
//   * callback mode (`Options::child_fn` set): fork only; the child runs
//     the callback and _exit()s with its return value. Used by tests and
//     by library callers that have no binary to re-exec.
//
// All pipe I/O helpers retry EINTR; parent-side descriptors are
// O_NONBLOCK + O_CLOEXEC so a poll()-driven supervisor can multiplex many
// children from one thread without leaking descriptors into later workers.
// The destructor SIGKILLs and reaps a still-running child: a Subprocess
// can never outlive its owner as a zombie or an orphan.
#pragma once

#include <sys/types.h>

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stob::util {

// ------------------------------------------------------- EINTR-safe I/O

/// write(2) the whole buffer, retrying EINTR and short writes. Returns
/// false on any other error (EPIPE included) — callers on the child side
/// are about to _exit and just give up.
bool write_all(int fd, const void* data, std::size_t len);

/// read(2) retrying EINTR. Returns bytes read (0 = EOF), or -1 with errno
/// set (EAGAIN means "no data right now" on nonblocking descriptors).
ssize_t read_some(int fd, void* buf, std::size_t len);

// ------------------------------------------------------------ result frame

/// Length-prefixed result frame: 4-byte magic "SF01", 4-byte little-endian
/// payload length, payload bytes. A crashed worker leaves a missing or
/// truncated frame, which parse_frame reports as "no frame" rather than
/// garbage data.
void append_frame(std::string& out, std::string_view payload);
bool write_frame(int fd, std::string_view payload);

/// Parse a complete frame from `bytes` (the full pipe capture). Returns
/// nullopt when the magic is wrong or the frame is truncated.
std::optional<std::string> parse_frame(std::string_view bytes);

// -------------------------------------------------------------- Subprocess

/// Decoded wait(2) status.
struct ExitStatus {
  bool exited = false;
  int exit_code = 0;
  bool signaled = false;
  int term_signal = 0;

  bool clean() const { return exited && exit_code == 0; }
};

class Subprocess {
 public:
  struct Options {
    /// exec mode: argv[0] is the executable path. Empty = callback mode.
    std::vector<std::string> argv;
    /// callback mode: run in the forked child; its return value becomes the
    /// child's exit code. The argument is the child-side result descriptor.
    std::function<int(int result_fd)> child_fn;
    /// Child-side descriptor number the result pipe is dup2()'d onto (exec
    /// mode workers learn it via a flag). < 0 disables the result pipe.
    int result_fd = 3;
    bool capture_stderr = true;
  };

  /// Fork (and exec) the child. Throws std::runtime_error when fork or the
  /// pipe plumbing fails; exec failure surfaces as exit code 127 with a
  /// message on the captured stderr.
  static Subprocess spawn(const Options& opts);

  Subprocess() = default;
  Subprocess(Subprocess&& o) noexcept { *this = std::move(o); }
  Subprocess& operator=(Subprocess&& o) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();  ///< SIGKILL + reap if still running; closes descriptors

  pid_t pid() const { return pid_; }
  bool running() const { return pid_ > 0 && !reaped_; }

  /// Parent ends of the result / stderr pipes (nonblocking), -1 when absent
  /// or already drained+closed.
  int result_fd() const { return result_fd_; }
  int stderr_fd() const { return stderr_fd_; }
  void close_result_fd();
  void close_stderr_fd();

  /// Send `sig` (no-op once reaped).
  void kill(int sig);

  /// Blocking, EINTR-safe waitpid. Idempotent: the first call reaps, later
  /// calls return the cached status.
  ExitStatus wait();

  /// Nonblocking reap; nullopt while the child is still running.
  std::optional<ExitStatus> try_wait();

 private:
  pid_t pid_ = -1;
  int result_fd_ = -1;
  int stderr_fd_ = -1;
  bool reaped_ = false;
  ExitStatus status_;
};

/// Absolute path of the running executable (/proc/self/exe), or `fallback`
/// when it cannot be resolved. The proc runner re-execs this binary for
/// its workers.
std::string self_exe_path(const std::string& fallback);

}  // namespace stob::util
