#include "wf/synth_traces.hpp"

#include "util/rng.hpp"

namespace stob::wf {

namespace {

/// splitmix64-style mix so (seed, a, b) streams are independent.
std::uint64_t mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = seed ^ (a * 0x9E3779B97F4A7C15ull) ^ (b * 0xBF58476D1CE4E5B9ull);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

/// One page load shaped by a profile RNG (stable per identity) with
/// per-instance noise from a second stream.
Trace make_trace(Rng profile, Rng noise) {
  Trace t;
  const int bursts = static_cast<int>(profile.uniform_int(3, 12));
  const int base_in = static_cast<int>(profile.uniform_int(4, 24));
  const std::int64_t in_size = 900 + 50 * profile.uniform_int(0, 10);
  const double gap_scale = profile.uniform(0.5, 2.0);
  double time = 0.0;
  for (int b = 0; b < bursts; ++b) {
    const int reqs = 1 + static_cast<int>(noise.uniform_int(0, 1));
    for (int r = 0; r < reqs; ++r) {
      t.add(time, +1, 560 + 8 * noise.uniform_int(0, 10));
      time += gap_scale * noise.uniform(0.005, 0.02);
    }
    const int in_pkts = base_in + static_cast<int>(noise.uniform_int(0, 5));
    for (int k = 0; k < in_pkts; ++k) {
      t.add(time, -1, in_size + 8 * noise.uniform_int(-4, 4));
      time += gap_scale * noise.uniform(0.0005, 0.004);
    }
    time += gap_scale * noise.uniform(0.01, 0.05);
  }
  t.normalize();
  return t;
}

}  // namespace

Trace synth_site_trace(std::uint64_t seed, int site, std::uint64_t instance) {
  // The profile stream depends on the site only: every instance of a site
  // shares its shape. Noise depends on the instance as well.
  Rng profile(mix(seed, 0x517Eull, static_cast<std::uint64_t>(site)));
  Rng noise(mix(seed, static_cast<std::uint64_t>(site) + 1, instance + 1));
  return make_trace(profile, noise);
}

Trace synth_background_trace(std::uint64_t seed, std::uint64_t index) {
  // Profile and noise both keyed by the index: each background page is a
  // fresh shape, never repeated.
  Rng profile(mix(seed, 0xBAC6ull, index));
  Rng noise(mix(seed, 0xBAC7ull, index));
  return make_trace(profile, noise);
}

}  // namespace stob::wf
