#include "obs/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "obs/json.hpp"
#include "util/buffer_pool.hpp"
#include "util/sha256.hpp"

namespace stob::obs {

namespace {

// The manifest's escaping dialect (all control + non-ASCII bytes as
// \uXXXX, so output is provably 7-bit) now lives in obs/json.hpp, shared
// with the results journal; the hostile-string golden test in test_obs
// pins that the shared escaper matches the historical manifest output.
void append_escaped(std::string& out, std::string_view s) { json_escape(out, s); }

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::vector<PhaseRollup> rollup_phases(const std::vector<ProfRecord>& records) {
  std::map<std::string, PhaseRollup> by_name;
  for (const ProfRecord& rec : records) {
    if (rec.wall_ns < 0) continue;  // open span: no duration to attribute
    PhaseRollup& r = by_name[rec.name];
    r.name = rec.name;
    r.count += 1;
    r.wall_ms += static_cast<double>(rec.wall_ns) / 1e6;
    r.cpu_ms += static_cast<double>(rec.cpu_ns) / 1e6;
    r.pool_hits += rec.pool_hits;
    r.pool_misses += rec.pool_misses;
  }
  std::vector<PhaseRollup> out;
  out.reserve(by_name.size());
  for (auto& [name, r] : by_name) out.push_back(std::move(r));
  return out;  // map iteration order = sorted by name
}

void RunManifest::set_config(std::string key, std::string value) {
  for (auto& [k, v] : config) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  config.emplace_back(std::move(key), std::move(value));
  std::sort(config.begin(), config.end());
}

std::string RunManifest::cell_spec_digest() const {
  util::Sha256 h;
  h.update("stob-cell-spec-v1\n");
  h.update(tool);
  h.update("\n");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu\n", static_cast<unsigned long long>(base_seed));
  h.update(buf);
  for (const auto& [k, v] : config) {
    h.update(k);
    h.update("=");
    h.update(v);
    h.update("\n");
  }
  return h.hex_digest();
}

std::string RunManifest::to_json(bool include_harness) const {
  std::string out = "{\n";
  out += "  \"schema\": \"stob-manifest-v1\",\n";
  out += "  \"tool\": \"";
  append_escaped(out, tool);
  out += "\",\n";
  if (include_harness) {
    out += "  \"git_rev\": \"";
    append_escaped(out, git_rev);
    out += "\",\n  \"jobs\": " + std::to_string(jobs) + ",\n";
  }
  out += "  \"base_seed\": " + std::to_string(base_seed) + ",\n";
  out += "  \"config\": {";
  for (std::size_t i = 0; i < config.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, config[i].first);
    out += "\": \"";
    append_escaped(out, config[i].second);
    out += "\"";
  }
  out += config.empty() ? "},\n" : "\n  },\n";
  out += "  \"cell_spec_digest\": \"" + cell_spec_digest() + "\",\n";
  out += "  \"metrics_sha256\": \"" + metrics_sha256 + "\",\n";
  out += "  \"metrics_lines\": " + std::to_string(metrics_lines) + ",\n";
  out += "  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseRollup& p = phases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, p.name);
    out += "\", \"count\": " + std::to_string(p.count);
    if (include_harness) {
      out += ", \"wall_ms\": " + fmt(p.wall_ms) + ", \"cpu_ms\": " + fmt(p.cpu_ms) +
             ", \"pool_hits\": " + std::to_string(p.pool_hits) +
             ", \"pool_misses\": " + std::to_string(p.pool_misses);
    }
    out += "}";
  }
  out += phases.empty() ? "]" : "\n  ]";
  if (include_harness) {
    out += ",\n  \"harness\": {\n";
    out += "    \"total_wall_ms\": " + fmt(total_wall_ms) + ",\n";
    out += "    \"total_cpu_ms\": " + fmt(total_cpu_ms) + ",\n";
    out += "    \"metrics\": \"";
    append_escaped(out, harness_metrics);
    out += "\"\n  }";
  }
  out += "\n}\n";
  return out;
}

void RunManifest::write(const std::filesystem::path& path) const {
  std::ofstream f(path);
  f << to_json();
}

RunManifest build_manifest(std::string tool, const Profiler& prof,
                           const MetricsRegistry* metrics, std::size_t jobs,
                           std::uint64_t base_seed) {
  RunManifest m;
  m.tool = std::move(tool);
  m.git_rev = obs::git_rev();
  m.jobs = jobs;
  m.base_seed = base_seed;
  m.phases = rollup_phases(prof.records());
  for (const ProfRecord& rec : prof.records()) {
    if (rec.wall_ns < 0 || rec.parent != 0) continue;  // totals = root spans
    m.total_wall_ms += static_cast<double>(rec.wall_ns) / 1e6;
    m.total_cpu_ms += static_cast<double>(rec.cpu_ns) / 1e6;
  }
  if (metrics != nullptr && !metrics->empty()) {
    const std::string snap = metrics->snapshot();
    m.metrics_sha256 = util::sha256_hex(snap);
    for (char c : snap) m.metrics_lines += c == '\n' ? 1 : 0;
  }
  // Harness section: profiler-side metrics plus this thread's pool totals.
  MetricsRegistry harness = prof.harness();
  const mem::PoolStats pool = mem::pool_stats();
  harness.set("mem.pool_hits", static_cast<double>(pool.hits));
  harness.set("mem.pool_misses", static_cast<double>(pool.misses));
  harness.set("mem.pool_spills", static_cast<double>(pool.spills));
  harness.set("mem.pool_cached", static_cast<double>(pool.cached));
  m.harness_metrics = harness.snapshot();
  return m;
}

std::string git_rev() {
  if (const char* env = std::getenv("STOB_GIT_REV")) return env;
  std::string rev = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      rev.assign(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) rev.pop_back();
      if (rev.empty()) rev = "unknown";
    }
    pclose(p);
  }
  return rev;
}

}  // namespace stob::obs
