#include "obs/json.hpp"

#include <cstdio>

namespace stob::obs {

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Escape every remaining control character AND all non-ASCII bytes:
        // strings can carry arbitrary user input (paths, site names, stderr
        // captures), and emitting raw bytes >= 0x7f would make the output's
        // encoding depend on the input being valid UTF-8. The unsigned cast
        // matters — a negative char formatted with %04x sign-extends to 8
        // hex digits and overflows the \uXXXX form.
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20 || u >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  json_escape(out, s);
  return out;
}

namespace {

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '\\' || i + 1 >= s.size()) {
      out += c;
      continue;
    }
    const char e = s[++i];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 < s.size()) {
          int v = 0;
          bool ok = true;
          for (int k = 1; k <= 4; ++k) {
            const int h = hex_val(s[i + static_cast<std::size_t>(k)]);
            if (h < 0) {
              ok = false;
              break;
            }
            v = v * 16 + h;
          }
          if (ok) {
            i += 4;
            if (v < 0x100) out += static_cast<char>(v);
            break;
          }
        }
        out += "\\u";  // malformed escape: keep it visible
        break;
      }
      default:
        out += '\\';
        out += e;
    }
  }
  return out;
}

}  // namespace stob::obs
