// Results journal for crash-safe, resumable sweeps.
//
// The out-of-process experiment runner appends one JSONL record per
// *finished* grid cell, keyed by the cell's content-addressed
// cell_spec_digest (PR 6). Because the file is append-only and every
// record is self-contained, the journal survives anything up to and
// including SIGKILL of the supervisor: `--resume` reloads it, skips every
// cell whose digest matches the current grid, and re-runs only the rest.
//
// Two record kinds share the file:
//
//   {"kind":"cell","digest":"…","job":N,"attempts":K,"payload":"<hex>"}
//   {"kind":"crash","digest":"…","job":N,"attempts":K,"outcome":"signal",
//    "signal":11,"exit":0,"stderr_tail":"…"}
//
// `payload` is the worker's length-prefixed result frame, hex-encoded so a
// line is always one self-delimiting text record. Crash records are the
// structured quarantine report for cells that failed every attempt; on
// resume they are *not* treated as finished — a quarantined cell gets a
// fresh chance (the condition that killed it may have been transient).
//
// A third kind, {"kind":"index","digest":"…","bytes":N}, is the commit log
// of exp::ResultCache — the cache's index file reuses the journal's JSONL
// discipline (append + flush, torn-line-tolerant load) so both files share
// one recovery story.
//
// Loading tolerates torn lines anywhere, not just at the tail: a record is
// accepted only when its bytes are exactly the canonical serialization its
// parsed fields reproduce, and a torn append glued to a later valid record
// on one physical line is skipped while the valid record is recovered
// (skip-and-warn). A journal can therefore only ever under-approximate the
// finished set — never replay a bad cell.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace stob::obs {

/// One finished cell: the journal's unit of resumable work.
struct JournalCell {
  std::string digest;          ///< cell_spec_digest hex (the replay key)
  std::uint64_t job = 0;       ///< job index in the grid that produced it
  std::uint32_t attempts = 1;  ///< worker attempts it took (1 = first try)
  std::string payload;         ///< raw result frame bytes (hex on disk)

  friend bool operator==(const JournalCell&, const JournalCell&) = default;
};

/// Structured crash report for a quarantined cell (failed all attempts).
struct CrashRecord {
  std::uint64_t job = 0;
  std::string digest;
  std::uint32_t attempts = 0;
  /// "signal" (killed by a signal), "exit" (nonzero exit code), "timeout"
  /// (watchdog SIGKILL), or "frame" (exited 0 but the result frame was
  /// missing/torn).
  std::string outcome;
  int signal_no = 0;
  int exit_code = 0;
  std::string stderr_tail;  ///< last bytes of the worker's captured stderr

  friend bool operator==(const CrashRecord&, const CrashRecord&) = default;
};

/// One committed cache entry. exp::ResultCache's index file is a journal
/// of these; their order in the file is gc's eviction order (oldest first).
struct IndexEntry {
  std::string digest;       ///< cache entry key (SHA-256 hex)
  std::uint64_t bytes = 0;  ///< size of the entry file on disk

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// Exact JSONL forms (golden-tested): one line, no trailing newline.
std::string to_json_line(const JournalCell& cell);
std::string to_json_line(const CrashRecord& crash);
std::string to_json_line(const IndexEntry& entry);

std::string hex_encode(std::string_view bytes);
std::string hex_decode(std::string_view hex);  ///< ignores a torn trailing nibble

class Journal {
 public:
  Journal() = default;
  /// Open `path` for appending (created if absent). Throws
  /// std::runtime_error when the file cannot be opened.
  explicit Journal(const std::filesystem::path& path);
  ~Journal();
  Journal(Journal&&) noexcept;
  Journal& operator=(Journal&&) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool is_open() const { return f_ != nullptr; }

  /// Append one record and flush, so a record is durable as soon as the
  /// call returns (a SIGKILL can tear at most the line being written).
  void append(const JournalCell& cell);
  void append(const CrashRecord& crash);
  void append(const IndexEntry& entry);

  struct Loaded {
    std::vector<JournalCell> cells;
    std::vector<CrashRecord> crashes;
    std::vector<IndexEntry> index;
    std::size_t malformed_lines = 0;  ///< physical lines with torn/garbage bytes
  };

  /// Parse every intact record of `path` (missing file = empty result).
  static Loaded load(const std::filesystem::path& path);

 private:
  std::FILE* f_ = nullptr;
};

}  // namespace stob::obs
