# Empty compiler generated dependencies file for quic_stob.
# This may be replaced when dependencies are built.
