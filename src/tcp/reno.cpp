#include "tcp/reno.hpp"

#include <algorithm>

namespace stob::tcp {

namespace {
constexpr std::int64_t kMaxWindow = 1'073'741'824;  // 1 GiB safety cap
}

RenoCc::RenoCc(Bytes mss, Bytes initial_window)
    : mss_(mss.count()),
      cwnd_(initial_window.count() > 0 ? initial_window.count() : 10 * mss_),
      ssthresh_(kMaxWindow) {}

void RenoCc::on_ack(const AckEvent& ev) {
  srtt_ = ev.srtt;
  if (ev.rtt_sample.ns() > 0 && ev.rtt_sample < min_rtt_) min_rtt_ = ev.rtt_sample;
  const std::int64_t acked = ev.newly_acked.count();
  if (acked <= 0) return;
  if (in_slow_start()) {
    // HyStart-style delay-based exit: leave slow start when queueing delay
    // exceeds an eighth of the base RTT (floored at 4 ms) — prevents
    // megabyte-scale overshoot losses on large-BDP paths.
    if (ev.rtt_sample.ns() > 0 && min_rtt_.ns() > 0 &&
        ev.rtt_sample > min_rtt_ + std::max(Duration::millis(4), min_rtt_ / 8)) {
      ssthresh_ = cwnd_;
      return;
    }
    // Byte-counting slow start: cwnd grows by the amount acked.
    cwnd_ = std::min(cwnd_ + acked, kMaxWindow);
  } else {
    // Congestion avoidance: ~1 MSS per RTT, byte-counted.
    cwnd_ = std::min(cwnd_ + std::max<std::int64_t>(1, mss_ * mss_ / cwnd_), kMaxWindow);
  }
}

void RenoCc::on_loss(TimePoint /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2, 2 * mss_);
  cwnd_ = ssthresh_;
}

void RenoCc::on_rto(TimePoint /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2, 2 * mss_);
  cwnd_ = mss_;  // restart from one segment
}

DataRate RenoCc::pacing_rate() const {
  if (srtt_.ns() <= 0) return DataRate(0);
  // Linux-style: 200% of cwnd/srtt in slow start, 120% in avoidance.
  const double factor = in_slow_start() ? 2.0 : 1.2;
  const double bps = static_cast<double>(cwnd_) * 8.0 / srtt_.sec() * factor;
  return DataRate(static_cast<std::int64_t>(bps));
}

}  // namespace stob::tcp
