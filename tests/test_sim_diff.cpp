// Differential test: sim::Simulator vs. a naive reference scheduler.
//
// The reference keeps events in a plain vector and fires the (when, seq)
// minimum by linear scan — slow, but so simple it is obviously correct.
// Both schedulers are driven through identical seeded op scripts (schedule,
// schedule_after, past-time clamping, same-tick bursts, cancellation —
// including cancel-after-fire and cancel/schedule from inside a firing
// callback) and must produce the identical firing log, clock, and pending
// count at every step. Any event-loop replacement has to pass this before
// the golden-trace corpus even gets a say.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace stob::sim {
namespace {

// ------------------------------------------------------------- reference

class ReferenceScheduler {
 public:
  struct Id {
    std::uint64_t seq = 0;  // 0 = invalid
  };

  TimePoint now() const { return now_; }

  Id schedule_at(TimePoint when, std::function<void()> cb) {
    if (when < now_) when = now_;
    entries_.push_back(Entry{when, next_seq_, std::move(cb)});
    return Id{next_seq_++};
  }

  Id schedule_after(Duration delay, std::function<void()> cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  void cancel(Id id) {
    if (id.seq == 0) return;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].seq == id.seq) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  bool step(TimePoint until = TimePoint::max()) {
    std::size_t best = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (best == entries_.size() || entries_[i].when < entries_[best].when ||
          (entries_[i].when == entries_[best].when && entries_[i].seq < entries_[best].seq)) {
        best = i;
      }
    }
    if (best == entries_.size() || entries_[best].when > until) return false;
    Entry entry = std::move(entries_[best]);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
    now_ = entry.when;
    ++executed_;
    entry.cb();
    return true;
  }

  std::size_t run(TimePoint until = TimePoint::max()) {
    std::size_t n = 0;
    while (step(until)) ++n;
    if (now_ < until && until != TimePoint::max()) now_ = until;
    return n;
  }

  std::size_t pending() const { return entries_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;
    std::function<void()> cb;
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------- driver
//
// One deterministic op script drives both schedulers. Every scheduled
// event carries a token; firing appends (token, now) to the log, and the
// token also decides a nested in-callback action (schedule a child, cancel
// a tracked id, or nothing) so re-entrant behaviour is exercised from
// inside the dispatch path itself.

constexpr std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename Sched, typename Id>
class Harness {
 public:
  std::vector<std::pair<std::uint64_t, std::int64_t>> log;  // (token, fire time)
  std::vector<std::int64_t> clock_probe;                    // now() after each op
  std::vector<std::size_t> pending_probe;                   // pending() after each op

  void apply(std::uint64_t op_rand, std::uint64_t token) {
    switch (op_rand % 10) {
      case 0:  // absolute schedule, possibly into the past (clamped to now)
        track(sched.schedule_at(TimePoint(sched.now().ns() + delta(op_rand) - 300),
                                make_cb(token)));
        break;
      case 1:
      case 2:
      case 3:  // future relative schedule (the common transport pattern)
        track(sched.schedule_after(Duration(delta(op_rand)), make_cb(token)));
        break;
      case 4: {  // same-tick burst with FIFO tie-break
        const TimePoint at = TimePoint(sched.now().ns() + 97);
        for (std::uint64_t i = 0; i < 4; ++i) {
          track(sched.schedule_at(at, make_cb(token * 16 + i)));
        }
        break;
      }
      case 5:
      case 6: {  // cancel a tracked id: may be live, fired, or re-cancelled
        if (!ids.empty()) sched.cancel(ids[mix(op_rand) % ids.size()]);
        break;
      }
      case 7:  // bounded run
        sched.run(TimePoint(sched.now().ns() + static_cast<std::int64_t>(op_rand % 2000)));
        break;
      case 8:  // single step
        sched.step();
        break;
      default:  // drain everything currently scheduled
        sched.run();
        break;
    }
    clock_probe.push_back(sched.now().ns());
    pending_probe.push_back(sched.pending());
  }

  void drain() { sched.run(); }

  Sched sched;

 private:
  std::vector<Id> ids;

  static std::int64_t delta(std::uint64_t r) { return static_cast<std::int64_t>(mix(r) % 1500); }

  void track(Id id) { ids.push_back(id); }

  std::function<void()> make_cb(std::uint64_t token) {
    return [this, token] {
      log.emplace_back(token, sched.now().ns());
      // Nested action decided by the token: exercises schedule-from-callback
      // and cancel-while-dispatching on both schedulers identically.
      const std::uint64_t h = mix(token);
      if (h % 5 == 0 && log.size() < 60000) {
        track(sched.schedule_after(Duration(static_cast<std::int64_t>(h % 700)),
                                   make_cb(token ^ 0xABCDull)));
      } else if (h % 5 == 1 && !ids.empty()) {
        sched.cancel(ids[h % ids.size()]);
      } else if (h % 5 == 2 && log.size() < 60000) {
        // Re-entrant same-tick schedule: must fire later in this same run,
        // after already-queued same-tick events (FIFO by seq).
        track(sched.schedule_at(sched.now(), make_cb(token ^ 0x5A5Aull)));
      }
    };
  }
};

void run_differential(std::uint64_t seed, int ops) {
  Harness<Simulator, EventId> fast;
  Harness<ReferenceScheduler, ReferenceScheduler::Id> ref;
  std::uint64_t r = seed;
  for (int i = 0; i < ops; ++i) {
    r = mix(r ^ static_cast<std::uint64_t>(i));
    const std::uint64_t token = (static_cast<std::uint64_t>(i) << 8) | (seed & 0xFF);
    fast.apply(r, token);
    ref.apply(r, token);
    // The clock and the pending count must agree after *every* op, so a
    // divergence is pinned to the op that introduced it.
    ASSERT_EQ(fast.clock_probe.back(), ref.clock_probe.back())
        << "clock diverged after op " << i << " (seed " << seed << ")";
    ASSERT_EQ(fast.pending_probe.back(), ref.pending_probe.back())
        << "pending() diverged after op " << i << " (seed " << seed << ")";
  }
  fast.drain();
  ref.drain();
  ASSERT_EQ(fast.log.size(), ref.log.size()) << "seed " << seed;
  for (std::size_t i = 0; i < fast.log.size(); ++i) {
    ASSERT_EQ(fast.log[i], ref.log[i]) << "firing log diverged at entry " << i << " (seed "
                                       << seed << ")";
  }
  EXPECT_EQ(fast.sched.executed(), ref.sched.executed());
  EXPECT_EQ(fast.sched.now().ns(), ref.sched.now().ns());
}

TEST(SimulatorDifferential, TenThousandRandomOpsSeed1) { run_differential(0xA11CEull, 10000); }
TEST(SimulatorDifferential, TenThousandRandomOpsSeed2) { run_differential(0xB0Bull, 10000); }
TEST(SimulatorDifferential, TenThousandRandomOpsSeed3) { run_differential(0xCAFE5EEDull, 10000); }
TEST(SimulatorDifferential, ShortScriptsManySeeds) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) run_differential(seed * 7919, 400);
}

// Directed scenario: cancel an event from a callback firing at the same
// tick, where the victim is already in the dispatch window.
TEST(SimulatorDifferential, CancelWhileDispatchingSameTick) {
  Simulator fast;
  ReferenceScheduler ref;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> fast_log, ref_log;
    const TimePoint at = TimePoint(1000 * (trial + 1));

    std::vector<EventId> fast_ids(4);
    std::vector<ReferenceScheduler::Id> ref_ids(4);
    const int victim = trial % 4;
    fast_ids[0] = fast.schedule_at(at, [&] {
      fast_log.push_back(0);
      fast.cancel(fast_ids[static_cast<std::size_t>(victim)]);
    });
    ref_ids[0] = ref.schedule_at(at, [&] {
      ref_log.push_back(0);
      ref.cancel(ref_ids[static_cast<std::size_t>(victim)]);
    });
    for (int i = 1; i < 4; ++i) {
      fast_ids[static_cast<std::size_t>(i)] = fast.schedule_at(at, [&, i] { fast_log.push_back(i); });
      ref_ids[static_cast<std::size_t>(i)] = ref.schedule_at(at, [&, i] { ref_log.push_back(i); });
    }
    fast.run();
    ref.run();
    ASSERT_EQ(fast_log, ref_log) << "victim " << victim;
    ASSERT_EQ(fast.pending(), ref.pending());
  }
}

}  // namespace
}  // namespace stob::sim
