// Fixed-size worker pool primitive for the experiment engine: an ordered
// parallel map over a dense job index space.
//
// Workers pull indices from a shared atomic counter (dynamic load balancing
// — page loads for heavy sites take longer than light ones), but every
// result is written to results[i], so the merged output is in job order and
// byte-identical regardless of thread count or scheduling. Determinism must
// therefore live entirely in the job function: anything keyed by *worker*
// identity or completion order would leak nondeterminism.
//
// Self-profiling: when the *calling* thread has an obs::Profiler installed,
// the pool switches to a profiled path that wraps every job in a per-index
// profiler (span-id domain derived from the job index — never the worker),
// splices the captures back in job-index order, and reports queue-wait /
// run / drain distributions plus worker-utilization and straggler figures
// into the profiler's harness registry. If the calling thread also has a
// MetricsRegistry installed, each job records stack metrics into its own
// registry, merged in index order after the join — one deterministic
// run-level snapshot for any worker count. With no profiler installed the
// fast path below is byte-for-byte the historical pool: one TLS load and a
// branch per run_ordered call, zero per-job overhead.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace stob::exp {

/// Number of workers to use when the caller doesn't say: hardware
/// concurrency, clamped to at least 1 (hw_concurrency may report 0).
std::size_t default_jobs();

/// Thrown by run_ordered when a job function throws. Carries the failing
/// job's index so callers (run_grid) can attach grid-cell coordinates.
/// Derives from std::runtime_error, so pre-existing catch sites keep
/// working unchanged. When several jobs throw concurrently, the *lowest*
/// index among them is reported — a deterministic choice, where "whichever
/// worker locked the mutex first" would vary run to run.
class JobError : public std::runtime_error {
 public:
  JobError(std::size_t job_index, const std::string& message)
      : std::runtime_error(message), job_index_(job_index) {}
  std::size_t job_index() const { return job_index_; }

 private:
  std::size_t job_index_;
};

namespace detail {

/// Shared failure slot for a pool run: keeps the lowest-index failure seen.
/// Workers park the job counter on first failure, so siblings wind down
/// promptly; any lower-index job already in flight can still replace the
/// slot before the join.
struct FirstError {
  std::mutex mu;
  bool set = false;
  std::size_t index = 0;
  std::string what;

  void record(std::size_t i, const char* message) {
    std::lock_guard<std::mutex> lock(mu);
    if (!set || i < index) {
      set = true;
      index = i;
      what = message;
    }
  }
  [[noreturn]] void rethrow() {
    throw JobError(index, "exp: job " + std::to_string(index) + " failed: " + what);
  }
};

/// Per-job capture of the profiled path, filled by whichever worker ran the
/// job (disjoint indices — no locking) and reduced in index order after the
/// join so everything derived from it is deterministic except the timings.
struct JobProfile {
  std::int64_t start_ns = 0;  ///< on the calling profiler's timeline
  std::int64_t end_ns = 0;
  std::uint32_t worker = 0;   ///< 0 = caller thread (serial path)
  bool ran = false;
  std::vector<obs::ProfRecord> records;
  obs::MetricsRegistry metrics;
};

/// Post-join reduction shared by the serial and threaded profiled paths.
void reduce_profiles(std::vector<JobProfile>& jobs, obs::Profiler& prof,
                     obs::MetricsRegistry* caller_metrics, std::size_t threads,
                     std::int64_t pool_start_ns, std::int64_t pool_end_ns);

template <typename R, typename Fn>
std::vector<R> run_ordered_profiled(std::size_t count, std::size_t threads, Fn& fn,
                                    obs::Profiler& prof) {
  std::vector<R> results(count);
  obs::MetricsRegistry* caller_metrics = obs::metrics();
  std::vector<JobProfile> jobs(count);
  const std::int64_t pool_start = prof.now_ns();

  auto run_one = [&](std::size_t i, std::uint32_t worker) {
    JobProfile& j = jobs[i];
    j.worker = worker;
    j.start_ns = prof.now_ns();
    obs::Profiler job_prof(obs::sub_domain(prof.id_domain(), i));
    std::optional<obs::ScopedMetrics> metrics_guard;
    if (caller_metrics != nullptr) metrics_guard.emplace(j.metrics);
    {
      obs::ScopedProfiler prof_guard(job_prof);
      obs::ProfSpan span("job");
      results[i] = fn(i);
    }
    j.end_ns = prof.now_ns();
    j.records = job_prof.take_records();
    j.ran = true;
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        run_one(i, 0);
      } catch (const std::exception& e) {
        throw JobError(i, "exp: job " + std::to_string(i) + " failed: " + e.what());
      } catch (...) {
        throw JobError(i, "exp: job " + std::to_string(i) + " failed: unknown exception");
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    FirstError error;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            run_one(i, static_cast<std::uint32_t>(t + 1));
          } catch (const std::exception& e) {
            error.record(i, e.what());
            next.store(count, std::memory_order_relaxed);
            return;
          } catch (...) {
            error.record(i, "unknown exception");
            next.store(count, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    if (error.set) error.rethrow();
  }

  reduce_profiles(jobs, prof, caller_metrics, std::max<std::size_t>(threads, 1), pool_start,
                  prof.now_ns());
  return results;
}

}  // namespace detail

/// Run fn(0) .. fn(count-1) on `threads` workers (0 = default_jobs()) and
/// return the results in index order. R must be default-constructible and
/// movable. If any job throws, remaining indices are abandoned, all workers
/// are joined (the pool can never deadlock on a throw), and a JobError
/// carrying the lowest failing index and the original what() is thrown.
template <typename R, typename Fn>
std::vector<R> run_ordered(std::size_t count, std::size_t threads, Fn&& fn) {
  if (count == 0) return std::vector<R>(0);
  if (threads == 0) threads = default_jobs();
  threads = std::min(threads, count);

  if (obs::Profiler* prof = obs::profiler()) {
    return detail::run_ordered_profiled<R>(count, threads, fn, *prof);
  }

  std::vector<R> results(count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        results[i] = fn(i);
      } catch (const std::exception& e) {
        throw JobError(i, "exp: job " + std::to_string(i) + " failed: " + e.what());
      } catch (...) {
        throw JobError(i, "exp: job " + std::to_string(i) + " failed: unknown exception");
      }
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  detail::FirstError error;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          results[i] = fn(i);
        } catch (const std::exception& e) {
          error.record(i, e.what());
          // Park the counter past the end so siblings wind down promptly.
          next.store(count, std::memory_order_relaxed);
          return;
        } catch (...) {
          error.record(i, "unknown exception");
          next.store(count, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (error.set) error.rethrow();
  return results;
}

}  // namespace stob::exp
