// Baseline WF defenses from the literature (the rows of Table 1),
// implemented as trace transforms so their protection/overhead can be
// compared against stack-level packet-sequence control.
//
// These follow the published algorithms at trace granularity:
//  * FRONT (Gong & Wang, USENIX Sec'20): Rayleigh-scheduled dummy packets
//    front-loaded on both sides, zero delay.
//  * BuFLO (Dyer et al., S&P'12): fixed-size packets at a fixed interval,
//    dummies fill gaps, until data is done and a minimum duration passed.
//  * Tamaraw (Cai et al., CCS'14): direction-specific intervals and
//    padding the per-direction packet count to a multiple of L.
//  * WTF-PAD (Juarez et al., ESORICS'16): adaptive padding — dummies are
//    injected into statistically unusual inter-arrival gaps, histograms
//    drive the sampling; zero delay.
//  * RegulaTor (Holland & Hopper, PETS'22): the download is re-shaped onto
//    a decaying surge schedule; uploads are rate-coupled.
//  * ALPaCA-style (Cherubin et al., PETS'17): server-side object padding —
//    incoming packet sizes padded up to a multiple of a quantum.
#pragma once

#include "core/histogram.hpp"
#include "defenses/trace_defense.hpp"

namespace stob::defenses {

class FrontDefense final : public TraceDefense {
 public:
  struct Config {
    int client_dummies_max = 600;   // N_c: dummies sampled U(1, max)
    int server_dummies_max = 1400;  // N_s
    double window_min = 1.0;        // W_min seconds
    double window_max = 14.0;       // W_max seconds
    std::int64_t dummy_size = 1514; // full-size wire packets
  };

  FrontDefense() : FrontDefense(Config{}) {}
  explicit FrontDefense(Config cfg) : cfg_(cfg) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "FRONT"; }
  std::string target() const override { return "Tor"; }
  std::string strategy() const override { return "Obfuscation"; }
  Manipulations manipulations() const override { return {.padding = true, .timing = true}; }

 private:
  Config cfg_;
};

class BufloDefense final : public TraceDefense {
 public:
  struct Config {
    std::int64_t packet_size = 1514;  // d: every packet padded to this
    double interval = 0.012;          // rho: seconds between packets
    double min_duration = 10.0;       // tau: pad at least this long
  };

  BufloDefense() : BufloDefense(Config{}) {}
  explicit BufloDefense(Config cfg) : cfg_(cfg) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "BuFLO"; }
  std::string target() const override { return "Tor"; }
  std::string strategy() const override { return "Regularization"; }
  Manipulations manipulations() const override { return {.padding = true, .timing = true}; }

 private:
  Config cfg_;
};

class TamarawDefense final : public TraceDefense {
 public:
  struct Config {
    std::int64_t packet_size = 1514;
    double interval_out = 0.04;  // rho_out seconds
    double interval_in = 0.012;  // rho_in seconds
    int pad_multiple = 100;      // L: pad per-direction count to multiple of L
  };

  TamarawDefense() : TamarawDefense(Config{}) {}
  explicit TamarawDefense(Config cfg) : cfg_(cfg) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "Tamaraw"; }
  std::string target() const override { return "Tor"; }
  std::string strategy() const override { return "Regularization"; }
  Manipulations manipulations() const override { return {.padding = true, .timing = true}; }

 private:
  Config cfg_;
};

class WtfPadDefense final : public TraceDefense {
 public:
  struct Config {
    /// Gaps longer than this (seconds) are considered "unusual" and trigger
    /// dummy injection sampled from the burst histogram. Direct web page
    /// loads have millisecond-scale think-time gaps, so the threshold sits
    /// below them (Tor's WTF-PAD tuned this on circuit traces instead).
    double gap_threshold = 0.008;
    std::int64_t dummy_size = 1514;
    int max_dummies_per_gap = 8;
  };

  WtfPadDefense() : WtfPadDefense(Config{}) {}
  explicit WtfPadDefense(Config cfg);

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "WTF-PAD"; }
  std::string target() const override { return "Tor"; }
  std::string strategy() const override { return "Obfuscation"; }
  Manipulations manipulations() const override { return {.padding = true}; }

 private:
  Config cfg_;
  core::Histogram inter_dummy_;  // shared-memory-style schedule histogram
};

class RegulatorDefense final : public TraceDefense {
 public:
  struct Config {
    double initial_rate = 300.0;  // R: packets per second at surge start
    double decay = 0.9;           // D: rate multiplier per second
    double surge_threshold = 2.0; // T: queue ratio that restarts a surge
    double upload_ratio = 4.0;    // U: one upload per this many downloads
    std::int64_t packet_size = 1514;
  };

  RegulatorDefense() : RegulatorDefense(Config{}) {}
  explicit RegulatorDefense(Config cfg) : cfg_(cfg) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "RegulaTor"; }
  std::string target() const override { return "Tor"; }
  std::string strategy() const override { return "Regularization"; }
  Manipulations manipulations() const override { return {.padding = true, .timing = true}; }

 private:
  Config cfg_;
};

class PadToConstantDefense final : public TraceDefense {
 public:
  struct Config {
    std::int64_t quantum = 512;    // sizes padded up to a multiple of this
    bool incoming_only = true;     // server-side object padding
  };

  PadToConstantDefense() : PadToConstantDefense(Config{}) {}
  explicit PadToConstantDefense(Config cfg) : cfg_(cfg) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "ALPaCA-pad"; }
  std::string target() const override { return "Tor"; }
  std::string strategy() const override { return "Regularization"; }
  Manipulations manipulations() const override { return {.padding = true}; }

 private:
  Config cfg_;
};

/// All Table 1 baselines plus the §3 emulation primitives, for benches that
/// iterate the whole defense zoo.
std::vector<std::unique_ptr<TraceDefense>> all_defenses();

}  // namespace stob::defenses
