#include "core/cca_guard.hpp"

#include <algorithm>

namespace stob::core {

SegmentDecision CcaGuard::on_segment(const SegmentContext& ctx) {
  SegmentDecision d = inner_.on_segment(ctx);
  if (d.segment > ctx.cca_segment) {
    d.segment = ctx.cca_segment;
    ++segment_clamps_;
  }
  if (d.segment.count() < 1) {
    d.segment = Bytes(1);
    ++segment_clamps_;
  }
  if (d.wire_mss > ctx.mss) {
    d.wire_mss = ctx.mss;
    ++mss_clamps_;
  }
  if (d.wire_mss.count() < 1) {
    d.wire_mss = Bytes(1);
    ++mss_clamps_;
  }
  if (d.departure < ctx.cca_departure) {
    d.departure = ctx.cca_departure;
    ++departure_clamps_;
  }
  return d;
}

}  // namespace stob::core
