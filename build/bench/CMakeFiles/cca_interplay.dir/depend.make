# Empty dependencies file for cca_interplay.
# This may be replaced when dependencies are built.
