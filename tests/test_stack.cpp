// Tests for the host stack layer: qdiscs (FIFO, fq with EDT pacing), NIC
// (TSO split, ring backpressure, completions), CPU model, host demux.
#include <gtest/gtest.h>

#include <vector>

#include "net/path.hpp"
#include "sim/simulator.hpp"
#include "stack/host.hpp"
#include "stack/host_pair.hpp"
#include "stack/nic.hpp"
#include "stack/qdisc.hpp"

namespace stob::stack {
namespace {

net::Packet make_packet(std::int64_t payload, net::FlowKey flow = {1, 2, 1000, 80, net::Proto::Tcp},
                        TimePoint not_before = TimePoint::zero()) {
  net::Packet p;
  p.id = net::next_packet_id();
  p.flow = flow;
  p.header = Bytes(net::kEthIpTcpHeader);
  p.payload = Bytes(payload);
  p.not_before = not_before;
  return p;
}

// ------------------------------------------------------------------- FIFO

TEST(FifoQdisc, FifoOrder) {
  FifoQdisc q;
  std::vector<std::uint64_t> in;
  for (int i = 0; i < 5; ++i) {
    auto p = make_packet(100);
    in.push_back(p.id);
    q.enqueue(std::move(p));
  }
  for (std::uint64_t id : in) {
    auto p = q.dequeue(TimePoint::zero());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->id, id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FifoQdisc, IgnoresEdt) {
  FifoQdisc q;
  q.enqueue(make_packet(100, {1, 2, 1000, 80, net::Proto::Tcp}, TimePoint(1'000'000)));
  // FIFO dequeues immediately even though the packet is paced to t=1ms.
  EXPECT_TRUE(q.dequeue(TimePoint::zero()).has_value());
}

TEST(FifoQdisc, CapacityDrops) {
  FifoQdisc q(Bytes(3000));
  for (int i = 0; i < 5; ++i) q.enqueue(make_packet(1400));
  EXPECT_GT(q.dropped(), 0u);
}

TEST(FifoQdisc, FlowBacklogTracksBytes) {
  FifoQdisc q;
  const net::FlowKey a{1, 2, 1000, 80, net::Proto::Tcp};
  const net::FlowKey b{1, 2, 1001, 80, net::Proto::Tcp};
  q.enqueue(make_packet(100, a));
  q.enqueue(make_packet(200, a));
  q.enqueue(make_packet(300, b));
  EXPECT_EQ(q.flow_backlog(a).count(), 300 + 2 * net::kEthIpTcpHeader);
  EXPECT_EQ(q.flow_backlog(b).count(), 300 + net::kEthIpTcpHeader);
  (void)q.dequeue(TimePoint::zero());
  EXPECT_EQ(q.flow_backlog(a).count(), 200 + net::kEthIpTcpHeader);
}

// --------------------------------------------------------------------- fq

TEST(FqQdisc, HonoursEdt) {
  FqQdisc q;
  auto p = make_packet(100);
  p.enqueued_at = TimePoint::zero();
  p.not_before = TimePoint(5000);
  q.enqueue(std::move(p));
  EXPECT_FALSE(q.dequeue(TimePoint(4999)).has_value());
  EXPECT_EQ(q.next_ready(TimePoint::zero()), TimePoint(5000));
  EXPECT_TRUE(q.dequeue(TimePoint(5000)).has_value());
}

TEST(FqQdisc, NeverReordersWithinFlow) {
  FqQdisc q;
  const net::FlowKey f{1, 2, 1000, 80, net::Proto::Tcp};
  std::vector<std::uint64_t> in;
  for (int i = 0; i < 20; ++i) {
    auto p = make_packet(500, f);
    in.push_back(p.id);
    q.enqueue(std::move(p));
  }
  std::vector<std::uint64_t> out;
  while (auto p = q.dequeue(TimePoint::zero())) out.push_back(p->id);
  EXPECT_EQ(out, in);
}

TEST(FqQdisc, PacedHeadDoesNotBlockOtherFlows) {
  FqQdisc q;
  const net::FlowKey a{1, 2, 1000, 80, net::Proto::Tcp};
  const net::FlowKey b{1, 2, 1001, 80, net::Proto::Tcp};
  auto paced = make_packet(100, a);
  paced.not_before = TimePoint(1'000'000);
  q.enqueue(std::move(paced));
  q.enqueue(make_packet(100, b));
  auto p = q.dequeue(TimePoint::zero());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, b);  // flow b got through while a is paced
}

TEST(FqQdisc, RoundRobinFairness) {
  FqQdisc q;
  const net::FlowKey a{1, 2, 1000, 80, net::Proto::Tcp};
  const net::FlowKey b{1, 2, 1001, 80, net::Proto::Tcp};
  for (int i = 0; i < 10; ++i) {
    q.enqueue(make_packet(1400, a));
    q.enqueue(make_packet(1400, b));
  }
  // Count how many of the first 10 dequeues belong to each flow: DRR with
  // equal sizes should interleave roughly evenly.
  int got_a = 0, got_b = 0;
  for (int i = 0; i < 10; ++i) {
    auto p = q.dequeue(TimePoint::zero());
    ASSERT_TRUE(p.has_value());
    (p->flow == a ? got_a : got_b) += 1;
  }
  EXPECT_NEAR(got_a, got_b, 2);
}

TEST(FqQdisc, ByteFairnessAcrossUnequalPacketSizes) {
  FqQdisc q;
  const net::FlowKey small{1, 2, 1000, 80, net::Proto::Tcp};
  const net::FlowKey large{1, 2, 1001, 80, net::Proto::Tcp};
  for (int i = 0; i < 200; ++i) q.enqueue(make_packet(100, small));
  for (int i = 0; i < 20; ++i) q.enqueue(make_packet(1400, large));
  std::int64_t bytes_small = 0, bytes_large = 0;
  // Drain half the total backlog and compare byte shares.
  for (int i = 0; i < 110; ++i) {
    auto p = q.dequeue(TimePoint::zero());
    if (!p) break;
    (p->flow == small ? bytes_small : bytes_large) += p->wire_size().count();
  }
  const double ratio = static_cast<double>(bytes_small) / static_cast<double>(bytes_large);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(FqQdisc, NextReadyReportsEarliestHead) {
  FqQdisc q;
  const net::FlowKey a{1, 2, 1000, 80, net::Proto::Tcp};
  const net::FlowKey b{1, 2, 1001, 80, net::Proto::Tcp};
  auto pa = make_packet(100, a);
  pa.not_before = TimePoint(8000);
  auto pb = make_packet(100, b);
  pb.not_before = TimePoint(3000);
  q.enqueue(std::move(pa));
  q.enqueue(std::move(pb));
  EXPECT_EQ(q.next_ready(TimePoint::zero()), TimePoint(3000));
  EXPECT_EQ(q.next_ready(TimePoint(5000)), TimePoint(5000));  // b already eligible
}

TEST(FqQdisc, EmptyNextReadyIsMax) {
  FqQdisc q;
  EXPECT_EQ(q.next_ready(TimePoint::zero()), TimePoint::max());
}

TEST(FqQdisc, HorizonClampsAbsurdEdt) {
  FqQdisc q(FqQdisc::Config{Bytes::mebi(4), Bytes(3028), Duration::seconds(1)});
  auto p = make_packet(100);
  p.enqueued_at = TimePoint::zero();
  p.not_before = TimePoint(Duration::seconds(100).ns());
  q.enqueue(std::move(p));
  // Clamped to the 1 s horizon instead of 100 s.
  EXPECT_TRUE(q.dequeue(TimePoint(Duration::seconds(1).ns())).has_value());
}

TEST(FqQdisc, BacklogAndActiveFlows) {
  FqQdisc q;
  const net::FlowKey a{1, 2, 1000, 80, net::Proto::Tcp};
  const net::FlowKey b{1, 2, 1001, 80, net::Proto::Tcp};
  q.enqueue(make_packet(100, a));
  q.enqueue(make_packet(100, b));
  EXPECT_EQ(q.active_flows(), 2u);
  EXPECT_EQ(q.backlog().count(), 2 * (100 + net::kEthIpTcpHeader));
  while (q.dequeue(TimePoint::zero())) {
  }
  EXPECT_EQ(q.active_flows(), 0u);
  EXPECT_EQ(q.backlog().count(), 0);
}

// ------------------------------------------------- capacity guard parity

// Both qdiscs share admit-one-into-empty-queue capacity semantics: a packet
// larger than the whole capacity is admitted into an empty queue (else the
// flow wedges forever), and over-capacity packets are dropped — and counted
// — identically once anything is backlogged.
TEST(QdiscCapacity, OverCapacityPacketHandledIdenticallyByFifoAndFq) {
  FifoQdisc fifo(Bytes(1000));
  FqQdisc fq(FqQdisc::Config{.capacity = Bytes(1000)});
  for (Qdisc* q : {static_cast<Qdisc*>(&fifo), static_cast<Qdisc*>(&fq)}) {
    // 1400-payload wire size (~1458) exceeds the whole 1000-byte capacity:
    // admitted because the queue is empty.
    q->enqueue(make_packet(1400));
    EXPECT_EQ(q->dropped(), 0u);
    EXPECT_FALSE(q->empty());
    // Anything more while backlogged is over capacity: dropped and counted.
    q->enqueue(make_packet(1400));
    EXPECT_EQ(q->dropped(), 1u);
    q->enqueue(make_packet(100));
    EXPECT_EQ(q->dropped(), 2u);
    // The admitted packet still drains, and the queue re-admits afterwards.
    EXPECT_TRUE(q->dequeue(TimePoint::zero()).has_value());
    EXPECT_TRUE(q->empty());
    q->enqueue(make_packet(1400));
    EXPECT_EQ(q->dropped(), 2u);
    EXPECT_FALSE(q->empty());
  }
}

// -------------------------------------------------------------------- NIC

struct NicFixture {
  sim::Simulator sim;
  net::Pipe pipe{sim, {DataRate::gbps(10), Duration::micros(1), Bytes(0), 0.0}};
  Nic nic{sim, std::make_unique<FqQdisc>()};
  std::vector<net::Packet> delivered;

  NicFixture() {
    nic.attach_egress(pipe);
    pipe.set_sink([this](net::Packet p) { delivered.push_back(std::move(p)); });
  }
};

TEST(Nic, PassthroughSmallPacket) {
  NicFixture f;
  f.nic.transmit(make_packet(1000));
  f.sim.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].payload.count(), 1000);
}

TEST(Nic, TsoSplitsSuperSegment) {
  NicFixture f;
  auto p = make_packet(10 * 1448);
  p.tso_mss = 1448;
  p.l4 = net::TcpHeader{.seq = 5000, .ack = 0, .flags = net::kTcpAck, .rwnd = 65535};
  f.nic.transmit(std::move(p));
  f.sim.run();
  ASSERT_EQ(f.delivered.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(f.delivered[i].payload.count(), 1448);
    EXPECT_EQ(f.delivered[i].tcp().seq, 5000 + i * 1448);
  }
  EXPECT_EQ(f.nic.tso_segments_split(), 1u);
  EXPECT_EQ(f.nic.wire_packets_sent(), 10u);
}

TEST(Nic, TsoLastPacketShort) {
  NicFixture f;
  auto p = make_packet(3 * 1448 + 500);
  p.tso_mss = 1448;
  f.nic.transmit(std::move(p));
  f.sim.run();
  ASSERT_EQ(f.delivered.size(), 4u);
  EXPECT_EQ(f.delivered.back().payload.count(), 500);
}

TEST(Nic, TsoFinOnlyOnLastPacket) {
  NicFixture f;
  auto p = make_packet(2 * 1000);
  p.tso_mss = 1000;
  net::TcpHeader h;
  h.seq = 0;
  h.flags = net::kTcpAck | net::kTcpFin;
  p.l4 = h;
  f.nic.transmit(std::move(p));
  f.sim.run();
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_FALSE(f.delivered[0].tcp().has(net::kTcpFin));
  EXPECT_TRUE(f.delivered[1].tcp().has(net::kTcpFin));
}

TEST(Nic, TsoMicroBurstAtLineRate) {
  NicFixture f;
  auto p = make_packet(4 * 1448);
  p.tso_mss = 1448;
  std::vector<TimePoint> tx_times;
  f.pipe.set_tx_tap([&](const net::Packet&, TimePoint t) { tx_times.push_back(t); });
  f.nic.transmit(std::move(p));
  f.sim.run();
  ASSERT_EQ(tx_times.size(), 4u);
  // Consecutive wire packets separated by exactly one serialisation time.
  const Duration gap01 = tx_times[1] - tx_times[0];
  const Duration gap12 = tx_times[2] - tx_times[1];
  EXPECT_EQ(gap01.ns(), gap12.ns());
  EXPECT_EQ(gap01.ns(),
            DataRate::gbps(10).transmit_time(Bytes(1448 + net::kEthIpTcpHeader)).ns());
}

TEST(Nic, EdtDelaysDequeue) {
  NicFixture f;
  auto p = make_packet(100);
  p.not_before = TimePoint(2'000'000);
  std::vector<TimePoint> tx_times;
  f.pipe.set_tx_tap([&](const net::Packet&, TimePoint t) { tx_times.push_back(t); });
  f.nic.transmit(std::move(p));
  f.sim.run();
  ASSERT_EQ(tx_times.size(), 1u);
  EXPECT_EQ(tx_times[0].ns(), 2'000'000);
}

TEST(Nic, CompletionHandlerFires) {
  NicFixture f;
  const net::FlowKey flow{1, 2, 1000, 80, net::Proto::Tcp};
  std::int64_t completed = 0;
  f.nic.set_completion_handler(flow, [&](Bytes b) { completed += b.count(); });
  f.nic.transmit(make_packet(1000, flow));
  f.sim.run();
  EXPECT_EQ(completed, 1000 + net::kEthIpTcpHeader);
}

TEST(Nic, FlowUnsentAccounting) {
  NicFixture f;
  const net::FlowKey flow{1, 2, 1000, 80, net::Proto::Tcp};
  auto p = make_packet(1000, flow);
  p.not_before = TimePoint(1'000'000);  // paced into the future: stays in qdisc
  f.nic.transmit(std::move(p));
  EXPECT_EQ(f.nic.flow_unsent(flow).count(), 1000 + net::kEthIpTcpHeader);
  f.sim.run();
  EXPECT_EQ(f.nic.flow_unsent(flow).count(), 0);
}

TEST(Nic, RingBackpressureBoundsInflight) {
  sim::Simulator sim;
  // Slow pipe so the ring fills.
  net::Pipe pipe(sim, {DataRate::mbps(1), Duration::micros(1), Bytes(0), 0.0});
  Nic nic(sim, std::make_unique<FifoQdisc>(), Nic::Config{Bytes(3000)});
  nic.attach_egress(pipe);
  pipe.set_sink([](net::Packet) {});
  for (int i = 0; i < 10; ++i) nic.transmit(make_packet(1400));
  // With a 3000-byte ring, at most 2 full packets can be posted; the rest
  // must still be in the qdisc.
  EXPECT_GT(nic.qdisc().backlog().count(), 0);
  sim.run();
  EXPECT_EQ(nic.qdisc().backlog().count(), 0);
}

// Regression for the pump wakeup audit: when the tx ring is full, pump()
// cancels the pacing wakeup and does not rearm it. A paced packet parked in
// the qdisc behind a full ring must still drain via the
// on_wire_complete -> pump path once serialisations finish.
TEST(Nic, PacedPacketSurvivesFullRing) {
  sim::Simulator sim;
  // 1 Mb/s: each ~1458B wire packet takes ~11.7ms to serialise, so the ring
  // stays full long past the pacing deadline.
  net::Pipe pipe(sim, {DataRate::mbps(1), Duration::micros(1), Bytes(0), 0.0});
  Nic nic(sim, std::make_unique<FqQdisc>(), Nic::Config{Bytes(3000)});
  nic.attach_egress(pipe);
  std::vector<net::Packet> delivered;
  pipe.set_sink([&](net::Packet p) { delivered.push_back(std::move(p)); });

  for (int i = 0; i < 3; ++i) nic.transmit(make_packet(1400));  // fill the ring + qdisc
  auto paced = make_packet(1400);
  paced.not_before = TimePoint(5'000'000);  // 5ms: before the first completion
  nic.transmit(std::move(paced));
  // The paced packet is stuck behind a full ring with no wakeup armed...
  EXPECT_GT(nic.qdisc().backlog().count(), 0);
  sim.run();
  // ...but completions re-pump, so the flow must not stall.
  EXPECT_EQ(delivered.size(), 4u);
  EXPECT_EQ(nic.qdisc().backlog().count(), 0);
}

TEST(Nic, PacedFarFutureRearmsAfterRingDrains) {
  sim::Simulator sim;
  net::Pipe pipe(sim, {DataRate::mbps(1), Duration::micros(1), Bytes(0), 0.0});
  Nic nic(sim, std::make_unique<FqQdisc>(), Nic::Config{Bytes(3000)});
  nic.attach_egress(pipe);
  std::vector<TimePoint> tx_times;
  pipe.set_tx_tap([&](const net::Packet&, TimePoint t) { tx_times.push_back(t); });
  pipe.set_sink([](net::Packet) {});

  for (int i = 0; i < 2; ++i) nic.transmit(make_packet(1400));
  auto paced = make_packet(1400);
  // 80ms: long after the ring drains (~23ms), so the drain path must rearm
  // a wakeup for the pacing deadline rather than send early or never.
  paced.not_before = TimePoint(80'000'000);
  nic.transmit(std::move(paced));
  sim.run();
  ASSERT_EQ(tx_times.size(), 3u);
  EXPECT_EQ(tx_times.back().ns(), 80'000'000);
}

// -------------------------------------------------------------------- CPU

TEST(CpuModel, DisabledIsFree) {
  CpuModel cpu;
  EXPECT_FALSE(cpu.enabled());
  EXPECT_EQ(cpu.dispatch(TimePoint(100), Bytes(10000), 10), TimePoint(100));
}

TEST(CpuModel, SerialisesWork) {
  CpuModel cpu(CpuModel::Costs{Duration::nanos(500), Duration::nanos(20), 0.0});
  // Two segments of 4 packets each: 500 + 4*20 = 580 ns apiece.
  const TimePoint t1 = cpu.dispatch(TimePoint::zero(), Bytes(4000), 4);
  EXPECT_EQ(t1.ns(), 580);
  const TimePoint t2 = cpu.dispatch(TimePoint::zero(), Bytes(4000), 4);
  EXPECT_EQ(t2.ns(), 1160);  // queued behind the first
  EXPECT_EQ(cpu.busy_time().ns(), 1160);
}

TEST(CpuModel, PerByteCost) {
  CpuModel cpu(CpuModel::Costs{Duration(0), Duration(0), 0.5});
  const TimePoint t = cpu.dispatch(TimePoint::zero(), Bytes(1000), 1);
  EXPECT_EQ(t.ns(), 500);
}

TEST(CpuModel, IdleGapsNotAccumulated) {
  CpuModel cpu(CpuModel::Costs{Duration::nanos(100), Duration(0), 0.0});
  (void)cpu.dispatch(TimePoint::zero(), Bytes(1), 1);
  const TimePoint t = cpu.dispatch(TimePoint(10'000), Bytes(1), 1);
  EXPECT_EQ(t.ns(), 10'100);  // starts at now, not at previous free_at
  EXPECT_EQ(cpu.busy_time().ns(), 200);
}

// ------------------------------------------------------------------- Host

TEST(Host, DemuxToRegisteredFlow) {
  sim::Simulator sim;
  Host host(sim, 2);
  const net::FlowKey incoming{1, 2, 1000, 80, net::Proto::Tcp};
  int got = 0;
  ASSERT_TRUE(host.register_flow(incoming, [&](net::Packet) { ++got; }));
  host.receive(make_packet(100, incoming));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(host.unmatched_packets(), 0u);
}

TEST(Host, ListenerFallback) {
  sim::Simulator sim;
  Host host(sim, 2);
  int got = 0;
  host.bind_listener(80, net::Proto::Tcp, [&](net::Packet) { ++got; });
  host.receive(make_packet(100, {1, 2, 55555, 80, net::Proto::Tcp}));
  EXPECT_EQ(got, 1);
}

TEST(Host, ExactFlowBeatsListener) {
  sim::Simulator sim;
  Host host(sim, 2);
  const net::FlowKey incoming{1, 2, 1000, 80, net::Proto::Tcp};
  int flow_got = 0, listener_got = 0;
  host.register_flow(incoming, [&](net::Packet) { ++flow_got; });
  host.bind_listener(80, net::Proto::Tcp, [&](net::Packet) { ++listener_got; });
  host.receive(make_packet(100, incoming));
  EXPECT_EQ(flow_got, 1);
  EXPECT_EQ(listener_got, 0);
}

TEST(Host, UnmatchedCounted) {
  sim::Simulator sim;
  Host host(sim, 2);
  host.receive(make_packet(100));
  EXPECT_EQ(host.unmatched_packets(), 1u);
}

TEST(Host, DuplicateFlowRegistrationRejected) {
  sim::Simulator sim;
  Host host(sim, 2);
  const net::FlowKey k{1, 2, 1000, 80, net::Proto::Tcp};
  EXPECT_TRUE(host.register_flow(k, [](net::Packet) {}));
  EXPECT_FALSE(host.register_flow(k, [](net::Packet) {}));
}

TEST(Host, EphemeralPortsDistinct) {
  sim::Simulator sim;
  Host host(sim, 1);
  EXPECT_NE(host.allocate_port(), host.allocate_port());
}

TEST(HostPair, WiringDeliversBothWays) {
  HostPair hp;
  int at_server = 0, at_client = 0;
  hp.server().bind_listener(80, net::Proto::Tcp, [&](net::Packet) { ++at_server; });
  hp.client().bind_listener(80, net::Proto::Tcp, [&](net::Packet) { ++at_client; });
  hp.client().nic().transmit(make_packet(100, {1, 2, 999, 80, net::Proto::Tcp}));
  hp.server().nic().transmit(make_packet(100, {2, 1, 999, 80, net::Proto::Tcp}));
  hp.run();
  EXPECT_EQ(at_server, 1);
  EXPECT_EQ(at_client, 1);
}

}  // namespace
}  // namespace stob::stack
