file(REMOVE_RECURSE
  "libstob.a"
)
