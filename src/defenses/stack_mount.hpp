// In-stack mounting of streaming defense policies.
//
// SegmentMount adapts a defenses::Policy to the core::Policy hook the
// transport consults for every data segment (tcp_connection.cpp's
// emit_segment), so schedule/size-deciding policies from the zoo run *in
// the stack*: their delay decisions become EDT departure timestamps the fq
// qdisc enforces, and their size decisions bound the wire MSS the NIC
// splits to. Wrap the mount in core::CcaGuard to get the paper's
// never-more-aggressive clamp.
//
// Mapping: each segment the transport is about to send is presented to the
// streaming policy as one PacketEvent (time = the CCA's departure, size =
// the first wire packet of the segment). The first non-dummy emission
// carries the decision — its extra delay shifts the departure, its size
// caps the wire MSS. Dummy emissions cannot be originated at this hook:
// the transport owns sequence space, so injecting payloadless packets here
// would corrupt the stream. They are counted (dummy_suppressed()) and left
// to the padding locus the paper assigns them — TLS record padding
// (stack::TlsConfig::pad_to) or the trace/proxy driver, both of which sit
// where padding bytes are representable. Obs taps are preserved: the mount
// sits above the TCP/qdisc/NIC/wire tap points, which record the enforced
// result.
#pragma once

#include <memory>

#include "core/policy.hpp"
#include "defenses/policy.hpp"

namespace stob::defenses {

class SegmentMount final : public core::Policy {
 public:
  /// `seed` feeds the policy's begin() generator; per-job callers should
  /// pass a job-derived seed (e.g. exp::job_seed output).
  SegmentMount(std::unique_ptr<defenses::Policy> inner, std::uint64_t seed)
      : inner_(std::move(inner)), rng_(seed) {}

  core::SegmentDecision on_segment(const core::SegmentContext& ctx) override;
  void on_flow_start(const net::FlowKey& flow) override;
  void on_flow_end(const net::FlowKey& flow) override;
  std::string name() const override { return "mount(" + inner_->name() + ")"; }

  /// Dummy emissions the hook had to drop (padding belongs to the TLS
  /// locus; a nonzero count says the policy wanted in-stack padding).
  std::uint64_t dummy_suppressed() const { return dummy_suppressed_; }

 private:
  std::unique_ptr<defenses::Policy> inner_;
  Rng rng_;
  std::vector<PacketOut> scratch_;
  std::uint64_t dummy_suppressed_ = 0;
  bool streaming_ = false;
  double last_event_time_ = 0.0;
};

}  // namespace stob::defenses
