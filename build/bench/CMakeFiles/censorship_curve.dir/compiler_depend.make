# Empty compiler generated dependencies file for censorship_curve.
# This may be replaced when dependencies are built.
