// Deterministic random number generation for simulation and learning.
//
// All randomness in the repository flows through Rng so that every
// experiment is reproducible from a single seed. The engine is
// xoshiro256++ (Blackman & Vigna), which is fast, has a 256-bit state and
// passes BigCrush; we implement it directly to avoid libstdc++ engine
// differences across platforms.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace stob {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64, which
  /// guarantees a well-mixed non-zero state for any seed (including 0).
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface, so Rng works with std::shuffle.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda).
  double exponential(double lambda);

  /// Rayleigh distribution with scale sigma (used by the FRONT defense to
  /// schedule dummy packets).
  double rayleigh(double sigma);

  /// Pareto with scale xm and shape alpha (heavy-tailed web object sizes).
  double pareto(double xm, double alpha);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator (for per-flow / per-tree seeds).
  Rng fork();

 private:
  std::uint64_t s_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace stob
