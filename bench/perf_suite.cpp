// Reproducible performance-trajectory harness.
//
// Times the simulation core (event-loop microbenchmarks) and end-to-end
// workloads (page load, table1-style grid at --jobs {1,N}, chaos scenario)
// and emits a BENCH_*.json snapshot so every PR extends a comparable perf
// trajectory. Unlike micro_bench this tool has *no external dependencies*
// (no google-benchmark): timing comes from CLOCK_PROCESS_CPUTIME_ID (plus a
// steady_clock wall reading) and heap churn from counting operator new in
// this translation unit.
//
// Usage:
//   perf_suite [--smoke] [--out BENCH_7.json] [--baseline OLD.json]
//              [--filter substr] [--jobs N] [--emit-manifest]
//
//   --smoke      tiny problem sizes (CI smoke job; numbers are not
//                comparable to full runs and are marked "smoke": true)
//   --baseline   embed a previous run's JSON verbatim under "baseline" and
//                report events/sec speedups for benchmarks both runs share
//   --jobs N     worker count for the _jN grid benchmark (default: hardware)
//   --emit-manifest  install the span profiler for the whole run and write
//                run_manifest.json + trace_events.json beside --out. The
//                profiler adds (small) overhead inside the experiment
//                engine, so committed BENCH_*.json snapshots are produced
//                WITHOUT this flag; manifests are for inspecting where a
//                perf run's time went, not for the trajectory numbers.
//
// Output schema, one object per benchmark:
//   { "name":, "wall_ms":, "cpu_ms":, "events":, "events_per_sec":,
//     "allocs":, "iters": }
// plus top-level "git_rev", "smoke" and (optionally) "baseline".
// events_per_sec is computed from process-CPU time (best of N iterations),
// which stays comparable when other tenants preempt us on shared runners;
// wall_ms is the same iteration's wall clock, reported for context.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "exp/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/prof.hpp"
#include "exp/worker_pool.hpp"
#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "net/pipe.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "wf/corpus.hpp"
#include "wf/features.hpp"
#include "wf/kfp.hpp"
#include "wf/leaf_knn.hpp"
#include "wf/open_world.hpp"
#include "wf/random_forest.hpp"
#include "wf/synth_traces.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

using namespace stob;

// ------------------------------------------------------------ alloc probe
//
// Counting operator new in the binary gives an allocation figure for each
// benchmark with zero tooling dependencies. Relaxed atomics: the grid
// benchmarks allocate from worker threads.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

struct BenchResult {
  std::string name;
  double wall_ms = 0;
  double cpu_ms = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
  std::uint64_t allocs = 0;
  int iters = 0;
};

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Process CPU time in milliseconds (sums all threads). Preferred basis for
/// events/sec: unlike wall time it is insensitive to other tenants
/// preempting us on a shared machine, which keeps the BENCH_*.json
/// trajectory comparable across noisy CI runners.
double cpu_now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Run `body` (which returns the number of simulator events executed)
/// `iters` times; keep the best CPU time (noise floor), that iteration's
/// wall time and alloc count.
template <typename Body>
BenchResult run_bench(const std::string& name, int iters, Body&& body) {
  obs::ProfSpan span(name);  // no-op unless --emit-manifest installed a profiler
  BenchResult r;
  r.name = name;
  r.iters = iters;
  r.cpu_ms = 1e300;
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const double cpu0 = cpu_now_ms();
    const Clock::time_point t0 = Clock::now();
    const std::uint64_t events = body();
    const double wall = ms_since(t0);
    const double cpu = cpu_now_ms() - cpu0;
    if (cpu < r.cpu_ms) {
      r.cpu_ms = cpu;
      r.wall_ms = wall;
      r.events = events;
      r.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    }
  }
  r.events_per_sec = r.cpu_ms > 0 ? static_cast<double>(r.events) / (r.cpu_ms / 1e3) : 0;
  std::printf("%-28s %10.2f cpu-ms %12" PRIu64 " events %14.0f ev/s %10" PRIu64 " allocs\n",
              r.name.c_str(), r.cpu_ms, r.events, r.events_per_sec, r.allocs);
  return r;
}

// ------------------------------------------------------- microbenchmarks

/// Representative callback capture: the transport timers capture `this`
/// plus a weak_ptr (24 B); the pipe captures a whole Packet. This struct
/// sits in between, so the std::function path of the old core pays its
/// heap allocation exactly as the real stack does.
struct MidCapture {
  std::uint64_t a[6] = {0, 0, 0, 0, 0, 0};
  void* self = nullptr;
};

/// The headline event-loop benchmark: schedule `n` one-shot events at
/// pseudo-random times in batches, drain, repeat. Exercises push, pop and
/// callback dispatch with no cancellation.
std::uint64_t sim_schedule_fire(std::size_t n) {
  sim::Simulator s;
  std::uint64_t sink = 0;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  const std::size_t batch = 4096;
  std::size_t scheduled = 0;
  while (scheduled < n) {
    const std::size_t m = std::min(batch, n - scheduled);
    for (std::size_t i = 0; i < m; ++i) {
      x ^= x << 13; x ^= x >> 7; x ^= x << 17;
      MidCapture cap;
      cap.a[0] = x;
      cap.self = &sink;
      s.schedule_after(Duration(static_cast<std::int64_t>(x % 1000)),
                       [cap] { *static_cast<std::uint64_t*>(cap.self) += cap.a[0]; });
    }
    scheduled += m;
    s.run();
  }
  if (sink == 42) std::printf("?");  // defeat dead-code elimination
  return s.executed();
}

/// Transport-timer churn: most scheduled timers are cancelled and rearmed
/// before firing (RTO/delack/PTO behaviour). Cancellation cost dominates.
std::uint64_t sim_timer_churn(std::size_t n) {
  sim::Simulator s;
  std::uint64_t fired = 0;
  std::uint64_t x = 0xC0FFEEull;
  std::vector<sim::EventId> live(64);
  std::size_t scheduled = 0;
  while (scheduled < n) {
    for (std::size_t slot = 0; slot < live.size() && scheduled < n; ++slot, ++scheduled) {
      x ^= x << 13; x ^= x >> 7; x ^= x << 17;
      s.cancel(live[slot]);  // rearm: cancel the previous timer in this slot
      live[slot] = s.schedule_after(Duration(static_cast<std::int64_t>(200 + x % 800)),
                                    [&fired] { ++fired; });
      if (x % 8 == 0) s.run(s.now() + Duration(50));  // let a few fire
    }
  }
  s.run();
  return s.executed() + s.cancelled();
}

/// Same-timestamp FIFO bursts: models TSO micro-bursts and simultaneous
/// qdisc releases, stressing the tie-break path.
std::uint64_t sim_same_tick(std::size_t n) {
  sim::Simulator s;
  std::uint64_t order_check = 0;
  const std::size_t burst = 64;
  std::size_t scheduled = 0;
  std::int64_t t = 0;
  while (scheduled < n) {
    for (std::size_t i = 0; i < burst; ++i) {
      s.schedule_at(TimePoint(t), [&order_check, i] { order_check += i; });
    }
    scheduled += burst;
    t += 10;
    if (scheduled % (burst * 64) == 0) s.run();
  }
  s.run();
  return s.executed();
}

/// Packet stream through a pipe: serialisation + delivery events carrying
/// Packet captures, the simulator's dominant real workload.
std::uint64_t net_pipe_stream(std::size_t n) {
  sim::Simulator s;
  net::Pipe::Config cfg;
  cfg.rate = DataRate::gbps(10);
  cfg.delay = Duration::micros(50);
  cfg.queue_capacity = Bytes(0);  // unbounded: this measures the event loop
  net::Pipe pipe(s, cfg);
  std::uint64_t delivered = 0;
  pipe.set_sink([&delivered](net::Packet) { ++delivered; });
  const std::size_t batch = 1024;
  std::size_t sent = 0;
  while (sent < n) {
    const std::size_t m = std::min(batch, n - sent);
    for (std::size_t i = 0; i < m; ++i) {
      net::Packet p;
      p.id = net::next_packet_id();
      p.flow = {1, 2, 40000, 443, net::Proto::Tcp};
      p.header = Bytes(net::kEthIpTcpHeader);
      p.payload = Bytes(1460);
      p.tcp().seq = sent + i;
      pipe.send(std::move(p));
    }
    sent += m;
    s.run();
  }
  return s.executed();
}

// ------------------------------------------------------- e2e benchmarks

workload::PageLoadOptions page_options() {
  workload::PageLoadOptions opt;
  opt.tls_records = true;
  return opt;
}

std::uint64_t e2e_page_load(int repeats) {
  std::uint64_t events = 0;
  for (int i = 0; i < repeats; ++i) {
    net::PacketIdScope ids;
    Rng rng(0xBE7C4ull + static_cast<std::uint64_t>(i));
    const workload::PageLoadResult r =
        workload::run_page_load(workload::nine_sites()[0], rng, page_options());
    if (!r.completed) std::fprintf(stderr, "WARNING: page load %d incomplete\n", i);
    events += r.sim_events;
  }
  return events;
}

std::uint64_t grid_run(std::size_t sites, std::size_t samples, std::size_t jobs,
                       bool chaos) {
  exp::ExperimentGrid grid;
  const auto& all = workload::nine_sites();
  grid.sites.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(sites));
  grid.samples = samples;
  grid.ccas = {"reno", "cubic", "bbr"};
  if (chaos) grid.faults = {fault::PathProfile::symmetric(fault::adverse_mix())};
  grid.base_seed = 0x57AB1E5EEDull;
  exp::RunOptions opts;
  opts.page = page_options();
  opts.jobs = jobs;
  std::uint64_t events = 0;
  for (const exp::JobResult& r : exp::run_grid(grid, opts)) events += r.sim_events;
  return events;
}

// ------------------------------------------------- WF attack benchmarks
//
// Synthetic k-FP-scale learning problem: `classes` Gaussian blobs in a
// feature space as wide as the real k-FP extractor produces. Sizes are the
// benchmark contract — the wf.* entries stay comparable across engine
// rewrites only while the (rows, features, trees) triple is unchanged.

struct WfBenchData {
  wf::FeatureMatrix x;
  std::vector<int> labels;
  int classes = 0;

  WfBenchData(int num_classes, int per_class, std::size_t features)
      : x(static_cast<std::size_t>(num_classes) * static_cast<std::size_t>(per_class), features),
        classes(num_classes) {
    Rng rng(0xF0E57ull);
    std::size_t r = 0;
    for (int c = 0; c < num_classes; ++c) {
      for (int s = 0; s < per_class; ++s, ++r) {
        for (double& v : x.row(r)) v = rng.normal(static_cast<double>(c), 2.0);
        labels.push_back(c);
      }
    }
  }
};

/// Forest training: events = trees x training rows (tree-sample units).
std::uint64_t wf_fit(const WfBenchData& data, std::size_t trees) {
  wf::RandomForest::Config cfg;
  cfg.num_trees = trees;
  wf::RandomForest forest(cfg);
  forest.fit({&data.x, data.labels, data.classes});
  if (!forest.trained()) std::printf("?");
  return trees * data.x.rows();
}

/// Forest inference over the whole dataset, `passes` times: events =
/// predictions x trees (tree-walk units).
std::uint64_t wf_predict_batch(const wf::RandomForest& forest, const WfBenchData& data,
                               int passes) {
  std::uint64_t sink = 0;
  for (int p = 0; p < passes; ++p) {
    for (int pred : forest.predict_batch(data.x)) sink += static_cast<std::uint64_t>(pred);
  }
  if (sink == 0xFFFFFFFFull) std::printf("?");
  return static_cast<std::uint64_t>(passes) * data.x.rows() * forest.tree_count();
}

/// Leaf-vector k-NN (k-FP's open-world mechanism): the whole dataset
/// queries itself, `passes` times. events = query x train pairs.
std::uint64_t wf_knn_leaf(const WfBenchData& data, std::size_t trees, int passes) {
  wf::KFingerprint::Config cfg;
  cfg.forest.num_trees = trees;
  cfg.use_knn = true;
  wf::KFingerprint clf(cfg);
  clf.fit(data.x, data.labels);
  std::uint64_t sink = 0;
  for (int p = 0; p < passes; ++p) {
    for (int pred : clf.predict_batch(data.x)) sink += static_cast<std::uint64_t>(pred);
  }
  if (sink == 0xFFFFFFFFull) std::printf("?");
  return static_cast<std::uint64_t>(passes) * data.x.rows() * data.x.rows();
}

/// Pure blocked-descent kernel: leaf ids for the whole dataset, `passes`
/// times, on a pre-trained forest. Unlike wf.predict_batch this skips vote
/// aggregation, so the number isolates kernels::descend_block (the SIMD
/// dispatch target). events = rows x trees tree-walk units.
std::uint64_t wf_descent_simd(const wf::RandomForest& forest, const WfBenchData& data,
                              int passes) {
  std::vector<std::uint32_t> leaves(data.x.rows() * forest.tree_count());
  std::uint64_t sink = 0;
  for (int p = 0; p < passes; ++p) {
    forest.leaf_batch(data.x.data(), data.x.row_stride(), data.x.rows(), leaves.data());
    sink += leaves[0];
  }
  if (sink == 0xFFFFFFFFull) std::printf("?");
  return static_cast<std::uint64_t>(passes) * data.x.rows() * forest.tree_count();
}

/// Pure leaf-agreement kernel over precomputed leaf vectors. wf.knn_leaf
/// times fit + leaf extraction + matching together; this entry times only
/// kernels::leaf_match_block so kernel speedups are not diluted by
/// training. events = query x train pairs.
std::uint64_t wf_knn_simd(const std::vector<std::uint32_t>& leaves, std::size_t rows,
                          std::size_t trees, int passes) {
  std::vector<int> counts(rows * rows);
  std::uint64_t sink = 0;
  for (int p = 0; p < passes; ++p) {
    wf::leaf_match_matrix(leaves, rows, leaves, rows, trees, counts);
    sink += static_cast<std::uint64_t>(counts[0]);
  }
  if (sink == 0xFFFFFFFFull) std::printf("?");
  return static_cast<std::uint64_t>(passes) * rows * rows;
}

/// k-FP feature extraction over pre-generated synthetic page loads: the
/// timed body is kfp_features_into (counting/banding kernels + scalar
/// stats). events = packets consumed.
std::uint64_t wf_features_simd(const std::vector<wf::Trace>& traces, std::uint64_t packets,
                               int passes) {
  std::vector<double> row(wf::kfp_feature_count());
  double sink = 0;
  for (int p = 0; p < passes; ++p) {
    for (const wf::Trace& t : traces) {
      wf::kfp_features_into(t, row);
      sink += row[0];
    }
  }
  if (sink < 0) std::printf("?");
  return static_cast<std::uint64_t>(passes) * packets;
}

/// Store-backed streaming open world end to end: mmap + sha256-validate
/// two STOBFST1 stores, fit a forest from sampled rows, stream the
/// background corpus block-wise with pages dropped behind the pass. The
/// stores are written once outside the timed body. events = background
/// rows x trees (tree-walk units of the streaming pass).
std::uint64_t corpus_stream_fit(const std::filesystem::path& dir, std::size_t trees,
                                std::size_t block_rows) {
  const wf::FeatureStore monitored(dir / "monitored.fst", wf::kfp_feature_count());
  const wf::FeatureStore background(dir / "background.fst", wf::kfp_feature_count());
  wf::OpenWorldStreamConfig cfg;
  cfg.forest.num_trees = trees;
  cfg.bg_train_count = background.rows() / 10;
  cfg.block_rows = block_rows;
  cfg.seed = 0xC0FFEEull;
  const wf::OpenWorldResult res = wf::open_world_stream(monitored, background, cfg);
  if (res.background_tested == 0) std::printf("?");
  return background.rows() * trees;
}

/// Miniature Table 2 pipeline: collect a (site x sample) grid through the
/// simulated stack, sanitise, then cross-validate k-FP over (scope x
/// countermeasure) cells — the paper's dominant evaluation loop end to end.
/// Attack cells run serially (jobs=1) so the CPU-time basis is clean.
/// events = simulator events of the collection stage (identical across
/// attack-engine rewrites, so events/sec ratios are CPU-time ratios).
std::uint64_t grid_table2(std::size_t sites, std::size_t samples, std::size_t folds,
                          std::size_t trees) {
  exp::ExperimentGrid grid;
  const auto& all = workload::nine_sites();
  grid.sites.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(sites));
  grid.samples = samples;
  grid.base_seed = 0x7AB1E2ull;
  exp::RunOptions opts;
  opts.page = page_options();
  opts.jobs = 1;
  std::uint64_t events = 0;
  const std::vector<exp::JobResult> results = exp::run_grid(grid, opts);
  for (const exp::JobResult& r : results) events += r.sim_events;
  const wf::Dataset data = exp::to_dataset(results).sanitized_by_download_size(0.75);

  defenses::CombinedDefense combined;
  struct Variant {
    const char* name;
    const defenses::TraceDefense* defense;
  };
  const Variant variants[] = {{"Original", nullptr}, {"Combined", &combined}};
  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;
  double acc = 0;
  for (std::size_t scope : {std::size_t{30}, std::size_t{0}}) {
    for (const Variant& v : variants) {
      Rng rng(0x7AB1E2ull ^ 0xDEFull);
      const wf::Dataset defended = data.transformed([&](const wf::Trace& t) {
        wf::Trace out =
            v.defense != nullptr ? defenses::apply_to_prefix(*v.defense, t, scope, rng) : t;
        return scope == 0 ? out : out.truncated(scope);
      });
      acc += wf::cross_validate(defended, kfp_cfg, folds, 0x7AB1E2ull).mean_accuracy;
    }
  }
  if (acc < 0) std::printf("?");
  return events;
}

// ------------------------------------------------------------- reporting

/// Extract "events_per_sec" for benchmark `name` from a previous run's JSON
/// (our own emitter's formatting; not a general JSON parser).
double baseline_events_per_sec(const std::string& json, const std::string& name) {
  const std::string needle = "\"name\": \"" + name + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return 0;
  const std::string key = "\"events_per_sec\": ";
  const std::size_t k = json.find(key, at);
  if (k == std::string::npos) return 0;
  return std::atof(json.c_str() + k + key.size());
}

void write_json(const std::string& path, const std::vector<BenchResult>& results, bool smoke,
                const std::string& baseline_json) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"stob-bench-v1\",\n";
  out << "  \"git_rev\": \"" << obs::git_rev() << "\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"wall_ms\": " << r.wall_ms
        << ", \"cpu_ms\": " << r.cpu_ms << ", \"events\": " << r.events
        << ", \"events_per_sec\": " << r.events_per_sec << ", \"allocs\": " << r.allocs
        << ", \"iters\": " << r.iters << "}";
    if (!baseline_json.empty()) {
      const double base = baseline_events_per_sec(baseline_json, r.name);
      if (base > 0) {
        out << ",\n    {\"name\": \"" << r.name << ".speedup_vs_baseline\", \"wall_ms\": 0"
            << ", \"cpu_ms\": 0, \"events\": 0, \"events_per_sec\": "
            << (r.events_per_sec / base) << ", \"allocs\": 0, \"iters\": 0}";
      }
    }
    out << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ]";
  if (!baseline_json.empty()) {
    out << ",\n  \"baseline\": " << baseline_json << "\n";
  } else {
    out << "\n";
  }
  out << "}\n";

  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << out.str();
  std::printf("\nwrote %s (git %s)\n", path.c_str(), obs::git_rev().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool emit_manifest = false;
  std::string out_path = "BENCH_7.json";
  std::string baseline_path;
  std::string filter;
  std::size_t jobs_n = std::thread::hardware_concurrency();
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(a, "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(a, "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      jobs_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(a, "--emit-manifest") == 0) {
      emit_manifest = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_suite [--smoke] [--out F] [--baseline F] [--filter S] "
                   "[--jobs N] [--emit-manifest]\n");
      return 2;
    }
  }
  if (jobs_n == 0) jobs_n = 1;

  // Problem sizes: full runs target ~seconds per benchmark; smoke runs keep
  // CI fast while still exercising every code path.
  const std::size_t micro_n = smoke ? 200'000 : 4'000'000;
  const int micro_iters = smoke ? 2 : 5;
  const std::size_t pipe_n = smoke ? 50'000 : 1'000'000;
  const int page_repeats = smoke ? 1 : 5;
  const std::size_t grid_sites = smoke ? 1 : 3;
  const std::size_t grid_samples = smoke ? 1 : 4;

  stob::obs::Profiler prof;
  if (emit_manifest) stob::obs::install_profiler(&prof);

  std::vector<BenchResult> results;
  auto want = [&](const char* name) {
    return filter.empty() || std::string(name).find(filter) != std::string::npos;
  };

  std::printf("perf_suite (%s, jobs=%zu)\n\n", smoke ? "smoke" : "full", jobs_n);
  if (want("sim.schedule_fire")) {
    results.push_back(run_bench("sim.schedule_fire", micro_iters,
                                [&] { return sim_schedule_fire(micro_n); }));
  }
  if (want("sim.timer_churn")) {
    results.push_back(
        run_bench("sim.timer_churn", micro_iters, [&] { return sim_timer_churn(micro_n); }));
  }
  if (want("sim.same_tick_fifo")) {
    results.push_back(
        run_bench("sim.same_tick_fifo", micro_iters, [&] { return sim_same_tick(micro_n); }));
  }
  if (want("net.pipe_stream")) {
    results.push_back(
        run_bench("net.pipe_stream", micro_iters, [&] { return net_pipe_stream(pipe_n); }));
  }
  if (want("e2e.page_load")) {
    results.push_back(
        run_bench("e2e.page_load", smoke ? 1 : 3, [&] { return e2e_page_load(page_repeats); }));
  }
  if (want("grid.table1_j1")) {
    results.push_back(run_bench("grid.table1_j1", 1, [&] {
      return grid_run(grid_sites, grid_samples, 1, /*chaos=*/false);
    }));
  }
  if (want("grid.table1_jN")) {
    results.push_back(run_bench("grid.table1_jN", 1, [&] {
      return grid_run(grid_sites, grid_samples, jobs_n, /*chaos=*/false);
    }));
  }
  if (want("grid.chaos")) {
    results.push_back(run_bench("grid.chaos", 1, [&] {
      return grid_run(grid_sites, grid_samples, jobs_n, /*chaos=*/true);
    }));
  }

  // WF attack engine. Sizes are part of the benchmark contract (see
  // WfBenchData); the feature width matches the real k-FP extractor scale.
  const int wf_classes = 9;
  const int wf_per_class = smoke ? 10 : 60;
  const std::size_t wf_features = 150;
  const std::size_t wf_trees = smoke ? 20 : 100;
  const int wf_iters = smoke ? 1 : 3;
  if (want("wf.")) {
    const WfBenchData wf_data(wf_classes, wf_per_class, wf_features);
    if (want("wf.fit")) {
      results.push_back(
          run_bench("wf.fit", wf_iters, [&] { return wf_fit(wf_data, wf_trees); }));
    }
    if (want("wf.predict_batch")) {
      wf::RandomForest::Config cfg;
      cfg.num_trees = wf_trees;
      wf::RandomForest forest(cfg);
      forest.fit({&wf_data.x, wf_data.labels, wf_data.classes});
      const int passes = smoke ? 2 : 20;
      results.push_back(run_bench("wf.predict_batch", wf_iters,
                                  [&] { return wf_predict_batch(forest, wf_data, passes); }));
    }
    if (want("wf.knn_leaf")) {
      const int passes = smoke ? 1 : 4;
      results.push_back(run_bench("wf.knn_leaf", wf_iters,
                                  [&] { return wf_knn_leaf(wf_data, wf_trees, passes); }));
    }
    if (want("wf.descent_simd") || want("wf.knn_simd")) {
      wf::RandomForest::Config cfg;
      cfg.num_trees = wf_trees;
      wf::RandomForest forest(cfg);
      forest.fit({&wf_data.x, wf_data.labels, wf_data.classes});
      if (want("wf.descent_simd")) {
        const int passes = smoke ? 4 : 40;
        results.push_back(run_bench("wf.descent_simd", wf_iters,
                                    [&] { return wf_descent_simd(forest, wf_data, passes); }));
      }
      if (want("wf.knn_simd")) {
        const std::vector<std::uint32_t> leaves = forest.leaf_batch(wf_data.x);
        const int passes = smoke ? 8 : 60;
        results.push_back(run_bench("wf.knn_simd", wf_iters, [&] {
          return wf_knn_simd(leaves, wf_data.x.rows(), forest.tree_count(), passes);
        }));
      }
    }
    if (want("wf.features_simd")) {
      std::vector<wf::Trace> traces;
      std::uint64_t packets = 0;
      const std::size_t n_traces = smoke ? 60 : 400;
      traces.reserve(n_traces);
      for (std::size_t i = 0; i < n_traces; ++i) {
        traces.push_back(wf::synth_background_trace(0xFEA7ull, i));
        packets += traces.back().size();
      }
      const int passes = smoke ? 2 : 10;
      results.push_back(run_bench("wf.features_simd", wf_iters,
                                  [&] { return wf_features_simd(traces, packets, passes); }));
    }
  }
  if (want("grid.table2")) {
    results.push_back(run_bench("grid.table2", 1, [&] {
      return grid_table2(smoke ? 2 : 9, smoke ? 2 : 12, /*folds=*/3, smoke ? 15 : 60);
    }));
  }
  if (want("corpus.stream_fit")) {
    // The stores are generated once up front; the timed body is mmap +
    // sha validation + streaming fit/eval (the million-trace driver's
    // steady-state path at benchmark scale).
    const std::filesystem::path dir = std::filesystem::temp_directory_path() / "stob_perf_corpus";
    std::filesystem::create_directories(dir);
    const std::size_t features = wf::kfp_feature_count();
    const std::uint64_t c_sites = smoke ? 4 : 10;
    const std::uint64_t c_inst = smoke ? 10 : 40;
    const std::uint64_t c_bg = smoke ? 800 : 20'000;
    const std::size_t c_trees = smoke ? 10 : 40;
    {
      std::vector<double> row(features);
      wf::FeatureStoreWriter mon(dir / "monitored.fst", features);
      for (std::uint64_t s = 0; s < c_sites; ++s) {
        for (std::uint64_t i = 0; i < c_inst; ++i) {
          wf::kfp_features_into(wf::synth_site_trace(0xC0DEull, static_cast<int>(s), i), row);
          mon.append_row(row, static_cast<int>(s));
        }
      }
      mon.finish();
      wf::FeatureStoreWriter bg(dir / "background.fst", features);
      for (std::uint64_t i = 0; i < c_bg; ++i) {
        wf::kfp_features_into(wf::synth_background_trace(0xC0DEull, i), row);
        bg.append_row(row, -1);
      }
      bg.finish();
    }
    results.push_back(run_bench("corpus.stream_fit", smoke ? 1 : 2, [&] {
      return corpus_stream_fit(dir, c_trees, smoke ? 256 : 2048);
    }));
  }

  std::string baseline_json;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    baseline_json = ss.str();
    while (!baseline_json.empty() &&
           (baseline_json.back() == '\n' || baseline_json.back() == ' ')) {
      baseline_json.pop_back();
    }
  }

  write_json(out_path, results, smoke, baseline_json);

  if (emit_manifest) {
    stob::obs::install_profiler(nullptr);
    // Manifest + timeline land beside the snapshot: BENCH_x.json ->
    // run_manifest.json / trace_events.json in the same directory.
    const std::filesystem::path out_dir = std::filesystem::path(out_path).parent_path();
    stob::obs::RunManifest m =
        stob::obs::build_manifest("perf_suite", prof, nullptr, jobs_n, 0);
    m.set_config("smoke", smoke ? "true" : "false");
    m.set_config("filter", filter);
    m.set_config("out", out_path);
    const std::filesystem::path manifest_path = out_dir / "run_manifest.json";
    const std::filesystem::path trace_path = out_dir / "trace_events.json";
    m.write(manifest_path);
    stob::obs::write_trace_event(trace_path, prof.records(), "perf_suite");
    std::printf("wrote %s and %s\n", manifest_path.string().c_str(),
                trace_path.string().c_str());
  }
  return 0;
}
