#include "wf/cumul.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stob::wf {

std::vector<double> cumul_features(const Trace& trace, std::size_t n_points) {
  std::vector<double> out;
  out.reserve(4 + n_points);
  out.push_back(static_cast<double>(trace.incoming_count()));
  out.push_back(static_cast<double>(trace.outgoing_count()));
  out.push_back(static_cast<double>(trace.incoming_bytes()));
  out.push_back(static_cast<double>(trace.outgoing_bytes()));

  // Cumulative signed-size curve (incoming positive, per CUMUL convention).
  std::vector<double> curve;
  curve.reserve(trace.size() + 1);
  double acc = 0.0;
  curve.push_back(0.0);
  for (const PacketRecord& p : trace.packets()) {
    acc += p.direction < 0 ? static_cast<double>(p.size) : -static_cast<double>(p.size);
    curve.push_back(acc);
  }

  // Linear resampling at n equidistant positions along the curve.
  for (std::size_t i = 0; i < n_points; ++i) {
    if (curve.size() < 2) {
      out.push_back(0.0);
      continue;
    }
    const double pos = static_cast<double>(i) /
                       static_cast<double>(n_points - 1) *
                       static_cast<double>(curve.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, curve.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(curve[lo] * (1.0 - frac) + curve[hi] * frac);
  }
  return out;
}

void KnnClassifier::fit(const FeatureMatrix& x, const std::vector<int>& labels) {
  if (x.empty() || x.rows() != labels.size()) {
    throw std::invalid_argument("KnnClassifier::fit: bad input");
  }
  const std::size_t dims = x.cols();
  mean_.assign(dims, 0.0);
  scale_.assign(dims, 1.0);
  std::vector<double> col(x.rows());
  for (std::size_t d = 0; d < dims; ++d) {
    for (std::size_t r = 0; r < x.rows(); ++r) col[r] = x.at(r, d);
    mean_[d] = stats::mean(col);
    const double sd = stats::stddev(col);
    scale_[d] = sd > 1e-12 ? sd : 1.0;
  }
  rows_ = FeatureMatrix(x.rows(), dims);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const std::span<const double> in = x.row(r);
    const std::span<double> out = rows_.row(r);
    for (std::size_t d = 0; d < dims; ++d) out[d] = (in[d] - mean_[d]) / scale_[d];
  }
  labels_ = labels;
  num_classes_ = *std::max_element(labels.begin(), labels.end()) + 1;
}

void KnnClassifier::fit(const std::vector<std::vector<double>>& rows,
                        const std::vector<int>& labels) {
  fit(FeatureMatrix::from_rows(rows), labels);
}

std::vector<double> KnnClassifier::standardize(std::span<const double> x) const {
  std::vector<double> out(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) out[d] = (x[d] - mean_[d]) / scale_[d];
  return out;
}

int KnnClassifier::predict(std::span<const double> x) const {
  if (rows_.empty()) throw std::logic_error("KnnClassifier::predict before fit");
  const std::vector<double> q = standardize(x);
  std::vector<std::pair<double, int>> dists;
  dists.reserve(rows_.rows());
  for (std::size_t i = 0; i < rows_.rows(); ++i) {
    const std::span<const double> row = rows_.row(i);
    double d2 = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) {
      const double diff = row[d] - q[d];
      d2 += diff * diff;
    }
    dists.emplace_back(d2, labels_[i]);
  }
  const std::size_t k = std::min(k_, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k), dists.end());
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i = 0; i < k; ++i) votes[static_cast<std::size_t>(dists[i].second)] += 1;
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

EvalResult cumul_cross_validate(const Dataset& data, std::size_t k_neighbors,
                                std::size_t n_points, std::size_t folds, std::uint64_t seed) {
  if (data.size() == 0) throw std::invalid_argument("cumul_cross_validate: empty dataset");
  if (folds < 2) throw std::invalid_argument("cumul_cross_validate: need >= 2 folds");
  FeatureMatrix rows(data.size(), 4 + n_points);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::vector<double> f = cumul_features(data.trace(i), n_points);
    std::copy(f.begin(), f.end(), rows.row(i).begin());
  }
  const std::vector<int>& labels = data.labels();
  const int num_classes = *std::max_element(labels.begin(), labels.end()) + 1;

  std::vector<std::size_t> fold_of(rows.rows());
  Rng rng(seed);
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == cls) idx.push_back(i);
    }
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t j = 0; j < idx.size(); ++j) fold_of[idx[j]] = j % folds;
  }

  EvalResult result;
  result.confusion = ConfusionMatrix(static_cast<std::size_t>(num_classes));
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_idx, test_idx;
    std::vector<int> train_labels;
    for (std::size_t i = 0; i < rows.rows(); ++i) {
      if (fold_of[i] == f) {
        test_idx.push_back(i);
      } else {
        train_idx.push_back(i);
        train_labels.push_back(labels[i]);
      }
    }
    if (test_idx.empty() || train_idx.empty()) continue;
    KnnClassifier clf(k_neighbors);
    clf.fit(rows.gathered(train_idx), train_labels);
    ConfusionMatrix cm(static_cast<std::size_t>(num_classes));
    for (std::size_t i : test_idx) cm.add(labels[i], clf.predict(rows.row(i)));
    result.fold_accuracies.push_back(cm.accuracy());
    result.confusion.merge(cm);
  }
  result.mean_accuracy = stats::mean(result.fold_accuracies);
  result.std_accuracy = stats::stddev(result.fold_accuracies);
  return result;
}

}  // namespace stob::wf
