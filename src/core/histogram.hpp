// Compact distribution representation for obfuscation policies.
//
// The paper (§4.1) observes that departure-time and size policies "can be
// represented as relatively compact distribution functions like histograms"
// and shared between the application and the stack (and across flows with
// the same destination). This histogram is that representation: fixed bins
// over a value range, integer token counts per bin, inverse-CDF sampling.
// The same structure backs WTF-PAD-style adaptive-padding schedules.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace stob::core {

class Histogram {
 public:
  /// Uniform-width bins covering [lo, hi); values sampled within a bin are
  /// uniform over the bin.
  Histogram(double lo, double hi, std::size_t bins);

  /// Build from observed samples (counts values into bins; out-of-range
  /// samples clamp into the edge bins).
  static Histogram fit(std::span<const double> samples, double lo, double hi,
                       std::size_t bins);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t total_tokens() const { return total_; }
  std::uint64_t tokens(std::size_t bin) const { return counts_.at(bin); }

  /// Add `n` tokens to the bin containing `value`.
  void add(double value, std::uint64_t n = 1);

  /// Inverse-CDF sample. Requires total_tokens() > 0.
  double sample(Rng& rng) const;

  /// Sample and remove one token (adaptive-padding style consumption).
  /// Refills from the snapshot taken at the first drain when exhausted.
  double sample_and_remove(Rng& rng);

  /// Mean of the represented distribution (bin mid-points weighted).
  double mean() const;

  /// Serialise to the compact wire layout that would live in shared memory:
  /// lo, hi, and one count per bin.
  std::vector<double> serialize() const;
  static Histogram deserialize(std::span<const double> data);

 private:
  std::size_t bin_of(double value) const;
  double bin_lo(std::size_t i) const;
  double bin_width() const;

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> snapshot_;  // refill source for sample_and_remove
};

}  // namespace stob::core
