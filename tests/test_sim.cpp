// Tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace stob::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now().ns(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint(300), [&] { order.push_back(3); });
  s.schedule_at(TimePoint(100), [&] { order.push_back(1); });
  s.schedule_at(TimePoint(200), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().ns(), 300);
}

TEST(Simulator, FifoTieBreakAtSameTime) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(TimePoint(50), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimePoint observed;
  s.schedule_at(TimePoint(1000), [&] {
    s.schedule_after(Duration(500), [&] { observed = s.now(); });
  });
  s.run();
  EXPECT_EQ(observed.ns(), 1500);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator s;
  TimePoint observed;
  s.schedule_at(TimePoint(1000), [&] {
    s.schedule_at(TimePoint(10), [&] { observed = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(observed.ns(), 1000);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(TimePoint(100), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, CancelInvalidIdIsNoop) {
  Simulator s;
  s.cancel(EventId{});  // must not crash or affect anything
  bool fired = false;
  s.schedule_at(TimePoint(5), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator s;
  int count = 0;
  s.schedule_at(TimePoint(100), [&] { ++count; });
  s.schedule_at(TimePoint(200), [&] { ++count; });
  s.run(TimePoint(150));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now().ns(), 150);  // clock advanced to the horizon
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StepExecutesOne) {
  Simulator s;
  int count = 0;
  s.schedule_at(TimePoint(1), [&] { ++count; });
  s.schedule_at(TimePoint(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(Duration(10), recurse);
  };
  s.schedule_at(TimePoint(0), recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now().ns(), 990);
}

TEST(Simulator, PendingCountsNonCancelled) {
  Simulator s;
  const EventId a = s.schedule_at(TimePoint(10), [] {});
  s.schedule_at(TimePoint(20), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(TimePoint(i), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST(Simulator, ManyEventsStressOrder) {
  Simulator s;
  // Insert pseudo-random times; verify monotone execution.
  std::int64_t prev = -1;
  bool monotone = true;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const auto t = static_cast<std::int64_t>(x % 1'000'000);
    s.schedule_at(TimePoint(t), [&, t] {
      if (t < prev) monotone = false;
      prev = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed(), 10000u);
}

// ------------------------- scheduler edge cases (indexed-heap specifics)

// pending() must stay exact through heavy cancellation — including cancels
// of events that already fired, which the pre-overhaul lazy-cancel core
// mis-counted (a tombstone for a fired event was never reclaimed).
TEST(Simulator, PendingExactUnderHeavyCancellation) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(s.schedule_at(TimePoint(i), [] {}));
  }
  // Cancel every other event: 50 pending removed.
  for (int i = 0; i < 100; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending(), 50u);
  EXPECT_EQ(s.cancelled(), 50u);
  // Fire half of the survivors, then cancel ALL original ids: the fired and
  // already-cancelled ones are no-ops, the still-pending ones are removed.
  s.run(TimePoint(49));
  EXPECT_EQ(s.executed(), 25u);
  EXPECT_EQ(s.pending(), 25u);
  for (const EventId& id : ids) s.cancel(id);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.cancelled(), 75u);  // only true cancellations counted
  // Cancelling everything again changes nothing.
  for (const EventId& id : ids) s.cancel(id);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.cancelled(), 75u);
  EXPECT_EQ(s.run(), 0u);
}

TEST(Simulator, SchedulingIntoThePastClampsAfterTimeAdvances) {
  Simulator s;
  s.schedule_at(TimePoint(1000), [] {});
  s.run();
  EXPECT_EQ(s.now(), TimePoint(1000));
  // Both absolute-past and negative-relative schedules clamp to now and
  // fire immediately, in FIFO order.
  std::vector<int> order;
  s.schedule_at(TimePoint(3), [&] { order.push_back(1); });
  s.schedule_after(Duration(-500), [&] { order.push_back(2); });
  s.schedule_at(TimePoint::zero(), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(s.now(), TimePoint(1000));  // no time travel
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// A callback scheduling at the *current* tick must run within the same
// run(), after every event already queued for that tick (FIFO by seq).
TEST(Simulator, ReentrantScheduleAtFromCallback) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint(10), [&] {
    order.push_back(0);
    s.schedule_at(s.now(), [&] {
      order.push_back(3);
      s.schedule_at(s.now(), [&] { order.push_back(4); });
    });
  });
  s.schedule_at(TimePoint(10), [&] { order.push_back(1); });
  s.schedule_at(TimePoint(10), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(s.now(), TimePoint(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.executed(), 5u);
}

// Event ids are generation-checked: after a node is recycled, a stale id
// for its previous occupant must not cancel (or otherwise disturb) the new
// one. With a single event in flight the scheduler reuses one node over and
// over, so every iteration exercises id reuse.
TEST(Simulator, StaleIdCannotCancelRecycledNode) {
  Simulator s;
  int fired = 0;
  const EventId first = s.schedule_at(TimePoint(1), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  for (int i = 2; i <= 50; ++i) {
    const EventId id = s.schedule_at(TimePoint(i), [&] { ++fired; });
    s.cancel(first);  // stale: its node has been recycled many times over
    EXPECT_EQ(s.pending(), 1u) << "stale cancel removed the new occupant";
    s.run();
    s.cancel(id);  // cancel-after-fire: also a no-op
  }
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(s.cancelled(), 0u);
}

// Cancelling a *live* event through an id handed out after recycling works,
// and double-cancel through a copy of the same id is inert.
TEST(Simulator, RecycledNodeCancelsThroughFreshIdOnly) {
  Simulator s;
  int fired = 0;
  // Churn the pool so the next schedule reuses a recycled node.
  for (int i = 0; i < 8; ++i) s.cancel(s.schedule_at(TimePoint(5), [&] { ++fired; }));
  const EventId live = s.schedule_at(TimePoint(7), [&] { ++fired; });
  const EventId copy = live;
  s.cancel(live);
  s.cancel(copy);
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.cancelled(), 9u);
  EXPECT_EQ(s.pending(), 0u);
}

// The callback object stays alive while it runs even though its node is
// already detached: a callback that schedules a large burst (forcing pool
// growth) and then keeps using its own capture must not read freed memory.
TEST(Simulator, CallbackSurvivesPoolGrowthItTriggers) {
  Simulator s;
  std::uint64_t sum = 0;
  std::uint64_t canary[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  s.schedule_at(TimePoint(1), [&, canary] {
    for (int i = 0; i < 1000; ++i) {
      s.schedule_after(Duration(i + 1), [&sum] { ++sum; });
    }
    std::uint64_t local = 0;
    for (const std::uint64_t v : canary) local += v;
    sum += local * 1000000;  // 36e6: detectable if the capture was clobbered
  });
  s.run();
  EXPECT_EQ(sum, 36000000u + 1000u);
  EXPECT_EQ(s.executed(), 1001u);
}


TEST(Simulator, HeapHighWaterTracksMaxSimultaneousPending) {
  Simulator s;
  EXPECT_EQ(s.heap_high_water(), 0u);
  // Phase 1: 3 events pending at once.
  for (int i = 0; i < 3; ++i) s.schedule_at(TimePoint(100 + i), [] {});
  s.run();
  EXPECT_EQ(s.heap_high_water(), 3u);
  // Phase 2: a wider fan-out raises the mark; draining never lowers it.
  s.schedule_at(TimePoint(1000), [&s] {
    for (int i = 0; i < 5; ++i) s.schedule_at(TimePoint(2000 + i), [] {});
  });
  s.run();
  EXPECT_EQ(s.heap_high_water(), 5u);
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace stob::sim
