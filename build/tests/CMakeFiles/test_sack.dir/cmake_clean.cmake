file(REMOVE_RECURSE
  "CMakeFiles/test_sack.dir/test_sack.cpp.o"
  "CMakeFiles/test_sack.dir/test_sack.cpp.o.d"
  "test_sack"
  "test_sack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
