// Streaming corpus + mmap feature store: format round trips, golden-pinned
// bytes, and hostile-input rejection.
//
// The two on-disk formats (STOBCRP1 / STOBFST1) are deliberately
// timestamp-free, so identical inputs must produce byte-identical files —
// the golden tests pin the sha256 of a tiny fixed corpus and store so any
// accidental format change (field order, padding, header size) fails
// loudly instead of silently orphaning every cached corpus. The hostile
// suite feeds truncated/corrupted/foreign files to the validators and
// asserts a structured CorpusError plus quarantine on integrity failures
// (DimMismatch leaves the file in place), never UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/sha256.hpp"
#include "wf/corpus.hpp"
#include "wf/synth_traces.hpp"
#include "wf/trace.hpp"

namespace {

using namespace stob;
using namespace stob::wf;
namespace fs = std::filesystem;

fs::path temp_file(const char* name) {
  const fs::path p = fs::temp_directory_path() / "stob_corpus_test" / name;
  fs::create_directories(p.parent_path());
  fs::remove(p);
  fs::remove(p.string() + ".quarantined");
  return p;
}

std::string file_sha(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  util::Sha256 sha;
  sha.update(bytes.data(), bytes.size());
  return sha.hex_digest();
}

/// Flip one byte at `offset` in an existing file.
void corrupt_byte(const fs::path& p, std::size_t offset) {
  std::FILE* f = std::fopen(p.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x5A, f);
  std::fclose(f);
}

/// Tiny fixed corpus: 3 deterministic synthetic traces.
void write_fixed_corpus(const fs::path& p) {
  CorpusWriter w(p);
  w.add(synth_site_trace(7, 0, 0), 0);
  w.add(synth_site_trace(7, 1, 0), 1);
  w.add(synth_background_trace(7, 0), -1);
  w.finish();
}

/// Tiny fixed store: 5 rows x 3 cols with hand-picked values.
void write_fixed_store(const fs::path& p) {
  FeatureStoreWriter w(p, 3);
  for (int r = 0; r < 5; ++r) {
    const double row[3] = {r * 1.5, r * -2.0, 1000.0 + r};
    w.append_row(row, r - 1);
  }
  w.finish();
}

// ---------------------------------------------------------- trace corpus

TEST(Corpus, RoundTripPreservesTracesAndLabels) {
  const fs::path p = temp_file("roundtrip.crp");
  std::vector<Trace> in;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    in.push_back(synth_background_trace(42, static_cast<std::uint64_t>(i)));
    labels.push_back(i % 3 - 1);
  }
  {
    CorpusWriter w(p);
    for (std::size_t i = 0; i < in.size(); ++i) w.add(in[i], labels[i]);
    EXPECT_EQ(w.trace_count(), in.size());
    w.finish();
  }

  CorpusReader r(p);
  EXPECT_EQ(r.trace_count(), in.size());
  Trace t;
  int label = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_TRUE(r.next(t, label)) << i;
    EXPECT_EQ(label, labels[i]);
    ASSERT_EQ(t.size(), in[i].size());
    for (std::size_t k = 0; k < t.size(); ++k) {
      EXPECT_EQ(t.packets()[k].time, in[i].packets()[k].time);
      EXPECT_EQ(t.packets()[k].direction, in[i].packets()[k].direction);
      EXPECT_EQ(t.packets()[k].size, in[i].packets()[k].size);
    }
  }
  EXPECT_FALSE(r.next(t, label));
  r.rewind();
  EXPECT_TRUE(r.next(t, label));

  const Dataset ds = load_corpus(p);
  EXPECT_EQ(ds.size(), in.size());
  EXPECT_EQ(ds.label(0), labels[0]);
}

TEST(Corpus, WritesAreDeterministic) {
  const fs::path a = temp_file("det_a.crp");
  const fs::path b = temp_file("det_b.crp");
  write_fixed_corpus(a);
  write_fixed_corpus(b);
  EXPECT_EQ(file_sha(a), file_sha(b));
}

TEST(Corpus, UnfinishedWriterIsRejected) {
  const fs::path p = temp_file("crashed.crp");
  {
    CorpusWriter w(p);
    w.add(synth_background_trace(1, 0), -1);
    // No finish(): the placeholder header stays zeroed (a crashed writer).
  }
  try {
    CorpusReader r(p);
    FAIL() << "crashed corpus must not open";
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::BadMagic);
  }
}

TEST(Corpus, TruncatedPayloadIsRejected) {
  const fs::path p = temp_file("trunc.crp");
  write_fixed_corpus(p);
  fs::resize_file(p, fs::file_size(p) - 16);
  try {
    CorpusReader r(p);
    FAIL() << "truncated corpus must not open";
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::Truncated);
  }
}

TEST(Corpus, CorruptPayloadIsRejected) {
  const fs::path p = temp_file("corrupt.crp");
  write_fixed_corpus(p);
  corrupt_byte(p, 96 + 13);  // somewhere inside the first record
  EXPECT_THROW(CorpusReader r(p), CorpusError);
}

// ---------------------------------------------------------- feature store

TEST(FeatureStore, RoundTripRowsLabelsAlignment) {
  const fs::path p = temp_file("roundtrip.fst");
  write_fixed_store(p);

  const FeatureStore s(p, 3);
  EXPECT_EQ(s.rows(), 5u);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_EQ(s.row_stride(), 8u);  // 3 cols rounded up to 8 doubles
  for (std::uint64_t r = 0; r < s.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.row(r)) % 64, 0u) << r;
    EXPECT_EQ(s.row(r)[0], r * 1.5);
    EXPECT_EQ(s.row(r)[1], r * -2.0);
    EXPECT_EQ(s.row(r)[2], 1000.0 + r);
    // Padding lanes are zero (part of the hashed payload).
    for (std::size_t c = s.cols(); c < s.row_stride(); ++c) EXPECT_EQ(s.row(r)[c], 0.0);
    EXPECT_EQ(s.label(r), static_cast<std::int32_t>(r) - 1);
  }
  EXPECT_EQ(s.block(1, 3), s.row(1));
  s.verify_payload();  // freshly written file must verify
  // mincore is page-granular: bound by the file size rounded up to pages.
  EXPECT_LE(s.resident_payload_bytes(), (fs::file_size(p) + 4095) / 4096 * 4096);
  s.drop_rows(0, 2);
  s.drop_pages();
  EXPECT_EQ(s.row(4)[2], 1004.0);  // mapping stays valid after advise
}

TEST(FeatureStore, GoldenPinnedBytes) {
  // Byte-identical output is the caching contract: --jobs, SIMD dispatch
  // and rewrites of the writer must never change these hashes. If this
  // test fails the format changed — bump the version, don't repin blindly.
  const fs::path c = temp_file("golden.crp");
  const fs::path f = temp_file("golden.fst");
  write_fixed_corpus(c);
  write_fixed_store(f);
  EXPECT_EQ(file_sha(c), "5d30d10d7de15523ffe7eb9a1ad2724a61d5770d85af38607852e671771fc75d");
  EXPECT_EQ(file_sha(f), "9b553e36e494c05bab5cb6f544bb38b3101e96b24ec7a74244748ba06d1cbc23");
}

TEST(FeatureStore, WrongMagicIsRejectedAndQuarantined) {
  const fs::path p = temp_file("magic.fst");
  write_fixed_store(p);
  corrupt_byte(p, 0);
  try {
    FeatureStore s(p);
    FAIL() << "foreign file must not open";
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::BadMagic);
    EXPECT_STREQ(corpus_error_name(e.code()), "bad_magic");
  }
  EXPECT_FALSE(fs::exists(p)) << "rejected file must be moved aside";
  EXPECT_TRUE(fs::exists(p.string() + ".quarantined"));
}

TEST(FeatureStore, WrongVersionIsRejected) {
  const fs::path p = temp_file("version.fst");
  write_fixed_store(p);
  corrupt_byte(p, 8);  // u32 version right after magic[8]
  try {
    FeatureStore s(p);
    FAIL();
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::BadVersion);
  }
}

TEST(FeatureStore, DimMismatchIsRejected) {
  const fs::path p = temp_file("dims.fst");
  write_fixed_store(p);  // 3 cols
  try {
    FeatureStore s(p, 175);
    FAIL();
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::DimMismatch);
  }
  // The file is structurally valid — rejecting it for this consumer's dims
  // must not quarantine it away from consumers built with the right dims.
  EXPECT_TRUE(fs::exists(p)) << "dim mismatch must not rename the file";
  EXPECT_FALSE(fs::exists(p.string() + ".quarantined"));
  const FeatureStore ok(p, 3);
  EXPECT_EQ(ok.rows(), 5u);
}

TEST(FeatureStore, OverflowingRowCountIsRejected) {
  // A 128-byte file whose header claims rows = 2^62: both size products
  // (rows * 8 and rows * 4) wrap to 0 mod 2^64, so unchained overflow
  // checks would see label_end == data_offset == map_size, an empty
  // payload whose sha trivially matches — and then serve 2^62 rows of
  // out-of-bounds reads. Every multiply must be overflow-checked.
  const fs::path p = temp_file("overflow.fst");
  unsigned char h[128] = {};
  std::memcpy(h, "STOBFST1", 8);
  const std::uint32_t version = 1;
  std::memcpy(h + 8, &version, sizeof(version));
  const std::uint64_t rows = std::uint64_t{1} << 62;
  const std::uint64_t cols = 3, stride = 8, offsets = 128;  // payload_bytes stays 0
  std::memcpy(h + 16, &rows, 8);
  std::memcpy(h + 24, &cols, 8);
  std::memcpy(h + 32, &stride, 8);
  std::memcpy(h + 40, &offsets, 8);  // labels_offset
  std::memcpy(h + 48, &offsets, 8);  // data_offset
  util::Sha256 empty_sha;
  const std::string hex = empty_sha.hex_digest();
  std::memcpy(h + 64, hex.data(), 64);
  std::ofstream(p, std::ios::binary).write(reinterpret_cast<const char*>(h), sizeof(h));
  try {
    FeatureStore s(p);
    FAIL() << "wrapping row count must not open";
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::BadHeader);
  }
  EXPECT_TRUE(fs::exists(p.string() + ".quarantined"));
}

/// Lines of /proc/self/maps that reference this test's temp directory —
/// a leaked file mapping shows up here under either name (original or
/// .quarantined; rename keeps the inode and maps shows the current path).
std::size_t test_file_mapping_count() {
  std::ifstream in("/proc/self/maps");
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    if (line.find("stob_corpus_test") != std::string::npos) ++n;
  }
  return n;
}

TEST(FeatureStore, RejectedOpenDoesNotLeakMapping) {
  const fs::path p = temp_file("leak.fst");
  write_fixed_store(p);
  corrupt_byte(p, 128 + 8);  // payload byte -> ShaMismatch on open
  const std::size_t before = test_file_mapping_count();
  for (int i = 0; i < 8; ++i) {
    EXPECT_THROW(FeatureStore s(p), CorpusError);
    fs::rename(p.string() + ".quarantined", p);  // undo quarantine, probe again
  }
  EXPECT_EQ(test_file_mapping_count(), before)
      << "validation failure in the constructor must munmap before throwing";
}

TEST(FeatureStore, TruncatedFileIsRejected) {
  const fs::path p = temp_file("trunc.fst");
  write_fixed_store(p);
  fs::resize_file(p, fs::file_size(p) - 4);
  try {
    FeatureStore s(p);
    FAIL();
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::Truncated);
  }
}

TEST(FeatureStore, CorruptPayloadFailsSha) {
  const fs::path p = temp_file("sha.fst");
  write_fixed_store(p);
  corrupt_byte(p, 128 + 8);  // a payload double
  try {
    FeatureStore s(p);
    FAIL();
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::ShaMismatch);
  }
}

TEST(FeatureStore, UnfinishedWriterIsRejected) {
  const fs::path p = temp_file("crashed.fst");
  {
    FeatureStoreWriter w(p, 3);
    const double row[3] = {1, 2, 3};
    w.append_row(row, 0);
    // no finish()
  }
  try {
    FeatureStore s(p);
    FAIL();
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::BadMagic);
  }
}

TEST(FeatureStore, InPlaceHeaderRewriteIsDetected) {
  const fs::path p = temp_file("mutated.fst");
  write_fixed_store(p);
  const FeatureStore s(p, 3);
  // Rewrite the mapped header behind the store's back (shared page cache:
  // the read-only mapping observes the new bytes).
  corrupt_byte(p, 16);  // u64 rows field
  try {
    s.block(0, 1);
    FAIL() << "mutated header must be detected by block()";
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.code(), CorpusErrorCode::Modified);
  }
}

}  // namespace
