// Trace-level WF defenses.
//
// Two families live here:
//  * the paper's §3 emulation primitives (packet splitting, delaying, their
//    combination, optionally applied to only the first N packets) used to
//    produce the 16 datasets behind Table 2, and
//  * the literature baselines summarised in Table 1 (FRONT, BuFLO, Tamaraw,
//    WTF-PAD, RegulaTor, ALPaCA-style padding), implemented as trace
//    transforms with overhead accounting.
//
// All transforms are pure: Trace in, Trace out, randomness through Rng.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "wf/trace.hpp"

namespace stob::defenses {

/// Which traffic manipulation primitives a defense uses (Table 1 columns).
struct Manipulations {
  bool padding = false;           // dummy packets / object padding
  bool timing = false;            // departure-time modification
  bool packet_size = false;       // per-packet size modification

  std::string describe() const;
};

class TraceDefense {
 public:
  virtual ~TraceDefense() = default;

  virtual wf::Trace apply(const wf::Trace& trace, Rng& rng) const = 0;
  virtual std::string name() const = 0;
  /// Protocol family the original system targeted (Table 1 "Target").
  virtual std::string target() const = 0;
  /// "Regularization" or "Obfuscation" (Table 1 "Strategy").
  virtual std::string strategy() const = 0;
  virtual Manipulations manipulations() const = 0;
};

/// Bandwidth / latency cost of a defended trace relative to the original.
struct Overhead {
  double bandwidth = 0.0;  ///< (defended_bytes - original_bytes) / original_bytes
  double latency = 0.0;    ///< (defended_duration - original_duration) / original_duration
};

Overhead measure_overhead(const wf::Trace& original, const wf::Trace& defended);

/// Average overhead of a defense over a dataset.
Overhead measure_overhead(const wf::Dataset& data, const TraceDefense& defense, Rng& rng);

// ------------------------------------------------------- §3 emulations

/// Packet splitting: every incoming (server->client) packet larger than
/// `threshold` bytes becomes two packets of half size; the second half
/// follows after its serialisation time at `link_rate`. Mirrors the paper:
/// threshold 1200 B so no fragment drops below the 536 B minimum MSS.
class SplitDefense final : public TraceDefense {
 public:
  struct Config {
    std::int64_t threshold = 1200;
    DataRate link_rate = DataRate::mbps(100);  // spaces the two halves
    bool incoming_only = true;                 // server-side deployment
  };

  SplitDefense() : SplitDefense(Config{}) {}
  explicit SplitDefense(Config cfg) : cfg_(cfg) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "split"; }
  std::string target() const override { return "TLS"; }
  std::string strategy() const override { return "Obfuscation"; }
  Manipulations manipulations() const override { return {.packet_size = true}; }

 private:
  Config cfg_;
};

/// Packet delaying: the inter-arrival gap before each incoming packet is
/// inflated by a factor drawn uniformly from [lo, hi] (paper: 10-30%).
/// Later packets shift by the accumulated delay, as they would physically.
class DelayDefense final : public TraceDefense {
 public:
  struct Config {
    double lo = 0.10;
    double hi = 0.30;
    bool incoming_only = true;
  };

  DelayDefense() : DelayDefense(Config{}) {}
  explicit DelayDefense(Config cfg) : cfg_(cfg) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "delay"; }
  std::string target() const override { return "TLS"; }
  std::string strategy() const override { return "Obfuscation"; }
  Manipulations manipulations() const override { return {.timing = true}; }

 private:
  Config cfg_;
};

/// Split + delay, the paper's "Combined" dataset.
class CombinedDefense final : public TraceDefense {
 public:
  CombinedDefense() = default;
  CombinedDefense(SplitDefense::Config split, DelayDefense::Config delay)
      : split_cfg_(split), delay_cfg_(delay) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return "combined"; }
  std::string target() const override { return "TLS"; }
  std::string strategy() const override { return "Obfuscation"; }
  Manipulations manipulations() const override {
    return {.timing = true, .packet_size = true};
  }

 private:
  SplitDefense::Config split_cfg_;
  DelayDefense::Config delay_cfg_;
};

/// Applies `defense` to the first `prefix_packets` packets only; the rest of
/// the trace is carried over unmodified (but shifted by any delay the
/// defended prefix accumulated). prefix_packets = 0 means the whole trace.
wf::Trace apply_to_prefix(const TraceDefense& defense, const wf::Trace& trace,
                          std::size_t prefix_packets, Rng& rng);

}  // namespace stob::defenses
