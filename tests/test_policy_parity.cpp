// Baseline-parity suite for the streaming policy migration.
//
// The §3 emulation primitives (split / delay / combined) used to be inline
// trace transforms; they now run as streaming policies (defenses/
// baseline_policies.hpp) through the run_policy driver. The migration gate
// is byte-identity: this file pins the legacy transform bodies (copied
// verbatim from the pre-migration trace_defense.cpp) as reference
// implementations and asserts the migrated path produces the *same trace,
// bit for bit*, across seeds, trace shapes, and Rng interleavings — and
// that the experiment grid built on top of them stays byte-identical at
// any --jobs value.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/cca_guard.hpp"
#include "defenses/baseline_policies.hpp"
#include "defenses/baselines.hpp"
#include "defenses/policy.hpp"
#include "defenses/regulator.hpp"
#include "defenses/stack_mount.hpp"
#include "defenses/trace_defense.hpp"
#include "defenses/wtfpad.hpp"
#include "exp/experiment.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

namespace stob::defenses {
namespace {

// ------------------------------------------------- legacy reference bodies

wf::Trace legacy_split(const wf::Trace& trace, const SplitDefense::Config& cfg) {
  wf::Trace out;
  for (const wf::PacketRecord& p : trace.packets()) {
    const bool in_scope = !cfg.incoming_only || p.direction < 0;
    if (in_scope && p.size > cfg.threshold) {
      const std::int64_t first = p.size / 2;
      const std::int64_t second = p.size - first;
      out.add(p.time, p.direction, first);
      const double gap = static_cast<double>(first) * 8.0 /
                         static_cast<double>(cfg.link_rate.bits_per_sec());
      out.add(p.time + gap, p.direction, second);
    } else {
      out.add(p.time, p.direction, p.size);
    }
  }
  out.normalize();
  return out;
}

wf::Trace legacy_delay(const wf::Trace& trace, const DelayDefense::Config& cfg, Rng& rng) {
  wf::Trace out;
  const auto& pkts = trace.packets();
  double shift = 0.0;
  double prev_original = pkts.empty() ? 0.0 : pkts.front().time;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const wf::PacketRecord& p = pkts[i];
    const bool in_scope = !cfg.incoming_only || p.direction < 0;
    if (i > 0 && in_scope) {
      const double gap = p.time - prev_original;
      if (gap > 0) shift += gap * rng.uniform(cfg.lo, cfg.hi);
    }
    out.add(p.time + shift, p.direction, p.size);
    prev_original = p.time;
  }
  out.normalize();
  return out;
}

wf::Trace legacy_combined(const wf::Trace& trace, const SplitDefense::Config& split,
                          const DelayDefense::Config& delay, Rng& rng) {
  return legacy_delay(legacy_split(trace, split), delay, rng);
}

// ------------------------------------------------------------ trace shapes

wf::Trace web_like_trace(std::uint64_t seed, std::size_t packets = 200) {
  Rng rng(seed);
  wf::Trace t;
  double time = 0.0;
  for (std::size_t i = 0; i < packets; ++i) {
    const bool outgoing = rng.chance(0.2);
    const std::int64_t size =
        outgoing ? rng.uniform_int(100, 700) : rng.uniform_int(400, 1514);
    t.add(time, outgoing ? +1 : -1, size);
    time += rng.uniform(0.0005, 0.01);
  }
  t.normalize();
  return t;
}

// Bursty trace with simultaneous timestamps and tiny/huge sizes — the shapes
// where an ordering or interpolation difference between the legacy transform
// and the streaming port would surface.
wf::Trace hostile_trace(std::uint64_t seed) {
  Rng rng(seed);
  wf::Trace t;
  double time = 0.0;
  for (int burst = 0; burst < 20; ++burst) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      t.add(time, rng.chance(0.5) ? +1 : -1, rng.uniform_int(1, 3000));
    }
    time += rng.chance(0.3) ? 0.0 : rng.uniform(0.0001, 0.05);
  }
  t.normalize();
  return t;
}

wf::Trace simulated_trace(std::uint64_t seed) {
  Rng rng(seed);
  const auto& sites = workload::nine_sites();
  workload::PageLoadOptions opts;
  return workload::run_page_load(sites[seed % sites.size()], rng, opts).trace;
}

std::vector<wf::Trace> parity_corpus() {
  std::vector<wf::Trace> traces;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    traces.push_back(web_like_trace(seed));
    traces.push_back(hostile_trace(seed * 31));
  }
  for (std::uint64_t seed = 1; seed <= 3; ++seed) traces.push_back(simulated_trace(seed));
  traces.push_back(wf::Trace{});                      // empty
  wf::Trace one;
  one.add(0.0, -1, 1500);                             // single splittable packet
  one.normalize();
  traces.push_back(one);
  return traces;
}

// ------------------------------------------------------------ parity gate

TEST(PolicyParity, SplitByteIdentical) {
  const SplitDefense migrated;
  for (const wf::Trace& t : parity_corpus()) {
    for (std::uint64_t seed : {1ull, 99ull, 20251117ull}) {
      Rng rng(seed);
      const wf::Trace got = migrated.apply(t, rng);
      EXPECT_EQ(got, legacy_split(t, SplitDefense::Config{}));
      // The migrated split must consume exactly as much randomness as the
      // legacy transform did (none): the stream must stay in sync.
      Rng probe(seed);
      EXPECT_EQ(rng.uniform(0.0, 1.0), probe.uniform(0.0, 1.0));
    }
  }
}

TEST(PolicyParity, DelayByteIdentical) {
  const DelayDefense migrated;
  for (const wf::Trace& t : parity_corpus()) {
    for (std::uint64_t seed : {1ull, 99ull, 20251117ull}) {
      Rng legacy_rng(seed);
      const wf::Trace want = legacy_delay(t, DelayDefense::Config{}, legacy_rng);
      Rng rng(seed);
      const wf::Trace got = migrated.apply(t, rng);
      EXPECT_EQ(got, want);
      // Identical residual Rng state: draw-for-draw replication, not just
      // identical output.
      EXPECT_EQ(rng.uniform(0.0, 1.0), legacy_rng.uniform(0.0, 1.0));
    }
  }
}

TEST(PolicyParity, CombinedByteIdentical) {
  const CombinedDefense migrated;
  for (const wf::Trace& t : parity_corpus()) {
    for (std::uint64_t seed : {1ull, 99ull, 20251117ull}) {
      Rng legacy_rng(seed);
      const wf::Trace want =
          legacy_combined(t, SplitDefense::Config{}, DelayDefense::Config{}, legacy_rng);
      Rng rng(seed);
      EXPECT_EQ(migrated.apply(t, rng), want);
      EXPECT_EQ(rng.uniform(0.0, 1.0), legacy_rng.uniform(0.0, 1.0));
    }
  }
}

TEST(PolicyParity, NonDefaultConfigsStayIdentical) {
  SplitDefense::Config scfg;
  scfg.threshold = 600;
  scfg.incoming_only = false;
  DelayDefense::Config dcfg;
  dcfg.lo = 0.5;
  dcfg.hi = 1.5;
  dcfg.incoming_only = false;
  const SplitDefense split(scfg);
  const DelayDefense delay(dcfg);
  const CombinedDefense combined(scfg, dcfg);
  for (const wf::Trace& t : parity_corpus()) {
    Rng a(5), b(5);
    EXPECT_EQ(split.apply(t, a), legacy_split(t, scfg));
    EXPECT_EQ(delay.apply(t, a), legacy_delay(t, dcfg, b));
    Rng c(5), d(5);
    EXPECT_EQ(combined.apply(t, c), legacy_combined(t, scfg, dcfg, d));
  }
}

// The registry's policy objects are the same machines the defenses wrap.
TEST(PolicyParity, RegistryPoliciesMatchDefenses) {
  for (const char* name : {"split", "delay", "combined"}) {
    const auto defense = make_policy_defense(name);
    const auto policy = make_policy(name);
    const wf::Trace t = web_like_trace(3);
    Rng a(7), b(7);
    EXPECT_EQ(defense->apply(t, a), run_policy(*policy, t, b)) << name;
  }
}

TEST(PolicyParity, UnknownPolicyNameThrows) {
  EXPECT_THROW(make_policy("no-such-policy"), std::invalid_argument);
  EXPECT_THROW(make_policy_defense(""), std::invalid_argument);
}

// ----------------------------------------------- grid-level byte identity

// The table1/chaos harnesses inherit determinism from the engine; this pins
// the defense axis specifically: same grid, --jobs 1 vs 4, every result
// byte-identical — including the migrated and the new policy-backed zoo
// entries.
TEST(PolicyParity, GridByteIdenticalAcrossJobCounts) {
  exp::ExperimentGrid grid;
  const auto& nine = workload::nine_sites();
  grid.sites.assign(nine.begin(), nine.begin() + 2);
  grid.samples = 2;
  grid.base_seed = 20251117;
  const auto zoo = all_defenses();
  grid.defenses.push_back({"none", nullptr});
  for (const auto& d : zoo) grid.defenses.push_back({d->name(), d.get()});

  exp::RunOptions serial;
  serial.jobs = 1;
  exp::RunOptions parallel = serial;
  parallel.jobs = 4;
  const auto a = exp::run_grid(grid, serial);
  const auto b = exp::run_grid(grid, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(exp::results_identical(a[i], b[i])) << "job " << i;
  }
}

// --------------------------------------------- new-policy determinism

TEST(PolicyParity, NewPoliciesDeterministicThroughDriver) {
  for (const char* name : {"regulator", "wtfpad"}) {
    for (const wf::Trace& t : parity_corpus()) {
      Rng a(42), b(42);
      const auto p1 = make_policy(name);
      const auto p2 = make_policy(name);
      EXPECT_EQ(run_policy(*p1, t, a), run_policy(*p2, t, b)) << name;
    }
  }
}

// A shared PolicyDefense must be safe to apply concurrently (the grid hands
// one TraceDefense pointer to every worker): repeated applies from fresh
// Rngs match, proving no state leaks between applies.
TEST(PolicyParity, PolicyDefenseApplyIsStateless) {
  const auto defense = make_policy_defense("wtfpad");
  const wf::Trace t = web_like_trace(11);
  Rng a(9);
  const wf::Trace first = defense->apply(t, a);
  Rng b(9);
  EXPECT_EQ(defense->apply(t, b), first);
}

// ------------------------------------------------------ in-stack mounting

TEST(SegmentMount, PageLoadCompletesUnderMountedRegulator) {
  const auto& sites = workload::nine_sites();
  workload::PageLoadOptions opts;
  SegmentMount mount(std::make_unique<RegulatorPolicy>(), /*seed=*/7);
  core::CcaGuard guard(mount);
  opts.server_conn.policy = &guard;
  Rng rng(3);
  const auto result = workload::run_page_load(sites[0], rng, opts);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.trace.size(), 0u);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace.packets()[i].time, result.trace.packets()[i - 1].time);
  }
}

TEST(SegmentMount, DeterministicAcrossRuns) {
  const auto& sites = workload::nine_sites();
  auto run_once = [&] {
    workload::PageLoadOptions opts;
    SegmentMount mount(std::make_unique<WtfPadPolicy>(), /*seed=*/21);
    core::CcaGuard guard(mount);
    opts.server_conn.policy = &guard;
    Rng rng(5);
    return workload::run_page_load(sites[1], rng, opts).trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace stob::defenses
