// Random forest classifier (bagging + per-split feature subsampling), the
// learner behind k-FP. Deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "wf/decision_tree.hpp"

namespace stob::wf {

class RandomForest {
 public:
  struct Config {
    std::size_t num_trees = 100;
    DecisionTree::Config tree;
    std::uint64_t seed = 0xF0E57ull;
    /// Bootstrap sample fraction per tree (with replacement).
    double bootstrap_fraction = 1.0;
  };

  RandomForest() : RandomForest(Config{}) {}
  explicit RandomForest(Config cfg) : cfg_(cfg) {}

  void fit(const TrainView& view);

  /// Majority vote across trees.
  int predict(std::span<const double> x) const;

  /// Mean per-class probability across trees.
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Leaf-id vector (one entry per tree); k-FP's fingerprint of a sample.
  std::vector<std::uint32_t> leaf_vector(std::span<const double> x) const;

  std::size_t tree_count() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }
  bool trained() const { return !trees_.empty(); }

 private:
  Config cfg_;
  int num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace stob::wf
