#include "wf/corpus.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>

namespace stob::wf {

// Both formats are raw little-endian structs; the code never byte-swaps.
static_assert(std::endian::native == std::endian::little,
              "corpus formats are little-endian on-disk");

namespace {

namespace fs = std::filesystem;

constexpr char kCorpusMagic[8] = {'S', 'T', 'O', 'B', 'C', 'R', 'P', '1'};
constexpr char kStoreMagic[8] = {'S', 'T', 'O', 'B', 'F', 'S', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;

struct CorpusHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t trace_count;
  std::uint64_t payload_bytes;
  char sha256_hex[64];
};
static_assert(sizeof(CorpusHeader) == 96);

struct StoreHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t rows;
  std::uint64_t cols;
  std::uint64_t row_stride;     // doubles between row starts, % 8 == 0
  std::uint64_t labels_offset;  // data_offset + rows * row_stride * 8
  std::uint64_t data_offset;    // 64-byte aligned, >= sizeof(StoreHeader)
  std::uint64_t payload_bytes;  // file size - sizeof(StoreHeader)
  char sha256_hex[64];
};
static_assert(sizeof(StoreHeader) == 128);

struct PacketOnDisk {
  double time;
  std::int32_t direction;
  std::int32_t pad;
  std::int64_t size;
};
static_assert(sizeof(PacketOnDisk) == 24);

constexpr std::size_t kDoublesPerLine = 64 / sizeof(double);

/// Move a bad file out of the way (best effort) and throw. A quarantined
/// file can never be opened again under its original name, so a corrupt
/// corpus is served exactly zero times. Reserved for integrity failures
/// (magic/version/size/sha) — a structurally valid file a consumer merely
/// cannot use (DimMismatch) is left in place for other consumers.
[[noreturn]] void quarantine_and_throw(const fs::path& path, CorpusErrorCode code,
                                       const std::string& what) {
  std::error_code ec;
  fs::rename(path, fs::path(path.string() + ".quarantined"), ec);
  throw CorpusError(code, what + " [" + path.string() + "]");
}

/// Unmaps on destruction unless release()d — open-time validation throws
/// from the reader constructors, where the member destructor never runs,
/// so without this every rejected file would leak its mapping.
struct MapGuard {
  const unsigned char* p = nullptr;
  std::size_t size = 0;
  ~MapGuard() {
    if (p != nullptr) ::munmap(const_cast<unsigned char*>(p), size);
  }
  void release() { p = nullptr; }
};

/// mmap a whole file read-only. Returns nullptr + size 0 on empty files.
const unsigned char* map_file(const fs::path& path, std::size_t& size_out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw CorpusError(CorpusErrorCode::Io, "cannot open " + path.string());
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw CorpusError(CorpusErrorCode::Io, "cannot stat " + path.string());
  }
  size_out = static_cast<std::size_t>(st.st_size);
  if (size_out == 0) {
    ::close(fd);
    return nullptr;
  }
  void* p = ::mmap(nullptr, size_out, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED) throw CorpusError(CorpusErrorCode::Io, "cannot mmap " + path.string());
  return static_cast<const unsigned char*>(p);
}

/// SHA-256 of map[offset, size), streamed in 4 MiB chunks with progressive
/// MADV_DONTNEED so verification never accumulates resident pages.
std::string hash_mapped_payload(const unsigned char* map, std::size_t offset, std::size_t size) {
  util::Sha256 sha;
  constexpr std::size_t kChunk = std::size_t{4} << 20;
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  std::size_t off = offset;
  while (off < size) {
    const std::size_t n = std::min(kChunk, size - off);
    sha.update(map + off, n);
    const std::size_t lo = off & ~(page - 1);
    ::madvise(const_cast<unsigned char*>(map) + lo, off + n - lo, MADV_DONTNEED);
    off += n;
  }
  return sha.hex_digest();
}

}  // namespace

const char* corpus_error_name(CorpusErrorCode code) {
  switch (code) {
    case CorpusErrorCode::Io: return "io";
    case CorpusErrorCode::BadMagic: return "bad_magic";
    case CorpusErrorCode::BadVersion: return "bad_version";
    case CorpusErrorCode::BadHeader: return "bad_header";
    case CorpusErrorCode::Truncated: return "truncated";
    case CorpusErrorCode::DimMismatch: return "dim_mismatch";
    case CorpusErrorCode::ShaMismatch: return "sha_mismatch";
    case CorpusErrorCode::Empty: return "empty";
    case CorpusErrorCode::Modified: return "modified";
  }
  return "unknown";
}

// ------------------------------------------------------------ CorpusWriter

CorpusWriter::CorpusWriter(const std::filesystem::path& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) throw CorpusError(CorpusErrorCode::Io, "cannot create " + path.string());
  // Placeholder header of zeros: until finish() rewrites it, the file fails
  // the magic check, so a crashed writer cannot produce a servable corpus.
  const char zeros[sizeof(CorpusHeader)] = {};
  if (std::fwrite(zeros, 1, sizeof(zeros), f_) != sizeof(zeros)) {
    std::fclose(f_);  // throwing from the ctor skips the destructor
    f_ = nullptr;
    throw CorpusError(CorpusErrorCode::Io, "write failed: " + path.string());
  }
}

CorpusWriter::~CorpusWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void CorpusWriter::write_raw(const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f_) != n) {
    throw CorpusError(CorpusErrorCode::Io, "write failed: " + path_.string());
  }
  sha_.update(p, n);
  payload_bytes_ += n;
}

void CorpusWriter::add(const Trace& trace, int label) {
  const std::uint32_t rec[2] = {static_cast<std::uint32_t>(label),
                                static_cast<std::uint32_t>(trace.size())};
  write_raw(rec, sizeof(rec));
  static thread_local std::vector<PacketOnDisk> buf;
  buf.resize(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const PacketRecord& p = trace.packets()[i];
    buf[i] = {p.time, static_cast<std::int32_t>(p.direction), 0, p.size};
  }
  if (!buf.empty()) write_raw(buf.data(), buf.size() * sizeof(PacketOnDisk));
  count_ += 1;
}

void CorpusWriter::finish() {
  if (finished_) return;
  CorpusHeader h{};
  std::memcpy(h.magic, kCorpusMagic, sizeof(h.magic));
  h.version = kFormatVersion;
  h.trace_count = count_;
  h.payload_bytes = payload_bytes_;
  const std::string hex = sha_.hex_digest();
  std::memcpy(h.sha256_hex, hex.data(), sizeof(h.sha256_hex));
  if (std::fseek(f_, 0, SEEK_SET) != 0 || std::fwrite(&h, 1, sizeof(h), f_) != sizeof(h) ||
      std::fflush(f_) != 0) {
    throw CorpusError(CorpusErrorCode::Io, "header write failed: " + path_.string());
  }
  std::fclose(f_);
  f_ = nullptr;
  finished_ = true;
}

// ------------------------------------------------------------ CorpusReader

CorpusReader::CorpusReader(const std::filesystem::path& path) {
  map_ = map_file(path, map_size_);
  MapGuard guard{map_, map_size_};  // unmap if validation throws below
  if (map_size_ < sizeof(CorpusHeader)) {
    quarantine_and_throw(path, CorpusErrorCode::Truncated, "corpus shorter than its header");
  }
  CorpusHeader h{};
  std::memcpy(&h, map_, sizeof(h));
  if (std::memcmp(h.magic, kCorpusMagic, sizeof(h.magic)) != 0) {
    quarantine_and_throw(path, CorpusErrorCode::BadMagic, "not a STOBCRP1 corpus");
  }
  if (h.version != kFormatVersion) {
    quarantine_and_throw(path, CorpusErrorCode::BadVersion, "unsupported corpus version");
  }
  if (h.trace_count == 0) {
    quarantine_and_throw(path, CorpusErrorCode::Empty, "corpus holds zero traces");
  }
  if (h.payload_bytes != map_size_ - sizeof(CorpusHeader)) {
    quarantine_and_throw(path,
                         h.payload_bytes > map_size_ - sizeof(CorpusHeader)
                             ? CorpusErrorCode::Truncated
                             : CorpusErrorCode::BadHeader,
                         "corpus payload size does not match the file");
  }
  const std::string got = hash_mapped_payload(map_, sizeof(CorpusHeader), map_size_);
  if (std::memcmp(got.data(), h.sha256_hex, sizeof(h.sha256_hex)) != 0) {
    quarantine_and_throw(path, CorpusErrorCode::ShaMismatch, "corpus payload hash mismatch");
  }
  guard.release();
  count_ = h.trace_count;
  cursor_ = sizeof(CorpusHeader);
}

CorpusReader::~CorpusReader() {
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), map_size_);
}

void CorpusReader::rewind() {
  cursor_ = sizeof(CorpusHeader);
  read_ = 0;
}

bool CorpusReader::next(Trace& trace, int& label) {
  if (read_ >= count_) return false;
  if (cursor_ + 8 > map_size_) {
    throw CorpusError(CorpusErrorCode::Truncated, "corpus record header out of bounds");
  }
  std::uint32_t rec[2];
  std::memcpy(rec, map_ + cursor_, sizeof(rec));
  cursor_ += sizeof(rec);
  const std::size_t n = rec[1];
  if (cursor_ + n * sizeof(PacketOnDisk) > map_size_) {
    throw CorpusError(CorpusErrorCode::Truncated, "corpus packet data out of bounds");
  }
  label = static_cast<std::int32_t>(rec[0]);
  auto& pkts = trace.packets();
  pkts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    PacketOnDisk p;
    std::memcpy(&p, map_ + cursor_ + i * sizeof(PacketOnDisk), sizeof(p));
    pkts[i] = {p.time, static_cast<int>(p.direction), p.size};
  }
  cursor_ += n * sizeof(PacketOnDisk);
  read_ += 1;
  return true;
}

Dataset load_corpus(const std::filesystem::path& path) {
  CorpusReader reader(path);
  Dataset out;
  Trace t;
  int label = 0;
  while (reader.next(t, label)) out.add(std::move(t), label);
  return out;
}

// ------------------------------------------------------ FeatureStoreWriter

FeatureStoreWriter::FeatureStoreWriter(const std::filesystem::path& path, std::size_t cols)
    : path_(path),
      cols_(cols),
      stride_((cols + kDoublesPerLine - 1) / kDoublesPerLine * kDoublesPerLine) {
  if (cols == 0) throw CorpusError(CorpusErrorCode::BadHeader, "store needs cols > 0");
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) throw CorpusError(CorpusErrorCode::Io, "cannot create " + path.string());
  const char zeros[sizeof(StoreHeader)] = {};
  if (std::fwrite(zeros, 1, sizeof(zeros), f_) != sizeof(zeros)) {
    std::fclose(f_);  // throwing from the ctor skips the destructor
    f_ = nullptr;
    throw CorpusError(CorpusErrorCode::Io, "write failed: " + path.string());
  }
  row_buf_.assign(stride_, 0.0);
}

FeatureStoreWriter::~FeatureStoreWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void FeatureStoreWriter::write_raw(const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f_) != n) {
    throw CorpusError(CorpusErrorCode::Io, "write failed: " + path_.string());
  }
  sha_.update(p, n);
}

void FeatureStoreWriter::append_row(std::span<const double> row, int label) {
  if (row.size() != cols_) {
    throw CorpusError(CorpusErrorCode::DimMismatch, "appended row width != store cols");
  }
  std::copy(row.begin(), row.end(), row_buf_.begin());  // padding lanes stay 0
  write_raw(row_buf_.data(), row_buf_.size() * sizeof(double));
  labels_.push_back(static_cast<std::int32_t>(label));
  rows_ += 1;
}

void FeatureStoreWriter::finish() {
  if (finished_) return;
  if (!labels_.empty()) write_raw(labels_.data(), labels_.size() * sizeof(std::int32_t));
  StoreHeader h{};
  std::memcpy(h.magic, kStoreMagic, sizeof(h.magic));
  h.version = kFormatVersion;
  h.rows = rows_;
  h.cols = cols_;
  h.row_stride = stride_;
  h.data_offset = sizeof(StoreHeader);
  h.labels_offset = h.data_offset + rows_ * stride_ * sizeof(double);
  h.payload_bytes = rows_ * stride_ * sizeof(double) + rows_ * sizeof(std::int32_t);
  const std::string hex = sha_.hex_digest();
  std::memcpy(h.sha256_hex, hex.data(), sizeof(h.sha256_hex));
  if (std::fseek(f_, 0, SEEK_SET) != 0 || std::fwrite(&h, 1, sizeof(h), f_) != sizeof(h) ||
      std::fflush(f_) != 0) {
    throw CorpusError(CorpusErrorCode::Io, "header write failed: " + path_.string());
  }
  std::fclose(f_);
  f_ = nullptr;
  finished_ = true;
}

// ------------------------------------------------------------ FeatureStore

FeatureStore::FeatureStore(const std::filesystem::path& path, std::size_t expected_cols) {
  map_ = map_file(path, map_size_);
  MapGuard guard{map_, map_size_};  // unmap if validation throws below
  if (map_size_ < sizeof(StoreHeader)) {
    quarantine_and_throw(path, CorpusErrorCode::Truncated, "store shorter than its header");
  }
  StoreHeader h{};
  std::memcpy(&h, map_, sizeof(h));
  std::memcpy(header_copy_, map_, sizeof(header_copy_));
  if (std::memcmp(h.magic, kStoreMagic, sizeof(h.magic)) != 0) {
    quarantine_and_throw(path, CorpusErrorCode::BadMagic, "not a STOBFST1 feature store");
  }
  if (h.version != kFormatVersion) {
    quarantine_and_throw(path, CorpusErrorCode::BadVersion, "unsupported store version");
  }
  if (h.rows == 0) quarantine_and_throw(path, CorpusErrorCode::Empty, "store holds zero rows");
  if (h.cols == 0 || h.row_stride % kDoublesPerLine != 0 || h.row_stride < h.cols ||
      h.data_offset < sizeof(StoreHeader) || h.data_offset % 64 != 0) {
    quarantine_and_throw(path, CorpusErrorCode::BadHeader, "store header fields inconsistent");
  }
  // All size arithmetic overflow-checked, every multiply included: a plain
  // `h.rows * sizeof(double)` would wrap *before* the checks run (e.g.
  // rows = 2^62 makes both products 0, so a 128-byte file with an
  // empty-payload sha would validate and rows() would promise 2^62 rows).
  std::uint64_t row_bytes = 0, data_bytes = 0, label_bytes = 0, with_data = 0, label_end = 0;
  if (__builtin_mul_overflow(h.rows, sizeof(double), &row_bytes) ||
      __builtin_mul_overflow(row_bytes, h.row_stride, &data_bytes) ||
      __builtin_mul_overflow(h.rows, sizeof(std::int32_t), &label_bytes) ||
      __builtin_add_overflow(h.data_offset, data_bytes, &with_data) ||
      __builtin_add_overflow(with_data, label_bytes, &label_end)) {
    quarantine_and_throw(path, CorpusErrorCode::BadHeader, "store header sizes overflow");
  }
  if (h.labels_offset != with_data) {
    quarantine_and_throw(path, CorpusErrorCode::BadHeader, "store labels_offset inconsistent");
  }
  if (map_size_ < label_end) {
    quarantine_and_throw(path, CorpusErrorCode::Truncated, "store shorter than header promises");
  }
  if (map_size_ != label_end || h.payload_bytes != map_size_ - sizeof(StoreHeader)) {
    quarantine_and_throw(path, CorpusErrorCode::BadHeader, "store size does not match header");
  }
  if (expected_cols != 0 && h.cols != expected_cols) {
    // Not an integrity failure: the file is structurally valid, this
    // consumer just expects a different feature dimensionality. Leave it in
    // place (no quarantine) so consumers built with other dims can use it.
    throw CorpusError(CorpusErrorCode::DimMismatch,
                      "store cols " + std::to_string(h.cols) + " != expected " +
                          std::to_string(expected_cols) + " [" + path.string() + "]");
  }
  const std::string got = hash_mapped_payload(map_, sizeof(StoreHeader), map_size_);
  if (std::memcmp(got.data(), h.sha256_hex, sizeof(h.sha256_hex)) != 0) {
    quarantine_and_throw(path, CorpusErrorCode::ShaMismatch, "store payload hash mismatch");
  }
  guard.release();
  rows_ = h.rows;
  cols_ = h.cols;
  stride_ = h.row_stride;
  data_ = reinterpret_cast<const double*>(map_ + h.data_offset);
  labels_ = reinterpret_cast<const std::int32_t*>(map_ + h.labels_offset);
}

FeatureStore::~FeatureStore() {
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), map_size_);
}

const double* FeatureStore::block(std::uint64_t lo, std::uint64_t n) const {
  if (lo + n > rows_) {
    throw CorpusError(CorpusErrorCode::BadHeader, "store block out of range");
  }
  if (std::memcmp(map_, header_copy_, sizeof(header_copy_)) != 0) {
    throw CorpusError(CorpusErrorCode::Modified, "store header changed after open");
  }
  return data_ + lo * stride_;
}

void FeatureStore::verify_payload() const {
  if (std::memcmp(map_, header_copy_, sizeof(header_copy_)) != 0) {
    throw CorpusError(CorpusErrorCode::Modified, "store header changed after open");
  }
  StoreHeader h{};
  std::memcpy(&h, header_copy_, sizeof(h));
  const std::string got = hash_mapped_payload(map_, sizeof(StoreHeader), map_size_);
  if (std::memcmp(got.data(), h.sha256_hex, sizeof(h.sha256_hex)) != 0) {
    throw CorpusError(CorpusErrorCode::Modified, "store payload changed after open");
  }
}

void FeatureStore::drop_pages() const {
  ::madvise(const_cast<unsigned char*>(map_), map_size_, MADV_DONTNEED);
}

void FeatureStore::drop_rows(std::uint64_t lo, std::uint64_t n) const {
  if (n == 0 || lo + n > rows_) return;
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const auto base = reinterpret_cast<std::uintptr_t>(data_ + lo * stride_);
  const auto end = reinterpret_cast<std::uintptr_t>(data_ + (lo + n) * stride_);
  const std::uintptr_t a = (base + page - 1) & ~(page - 1);  // shrink inward
  const std::uintptr_t b = end & ~(page - 1);
  if (b > a) ::madvise(reinterpret_cast<void*>(a), b - a, MADV_DONTNEED);
}

std::size_t FeatureStore::resident_payload_bytes() const {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t pages = (map_size_ + page - 1) / page;
  std::vector<unsigned char> vec(pages, 0);
  if (::mincore(const_cast<unsigned char*>(map_), map_size_, vec.data()) != 0) return 0;
  std::size_t resident = 0;
  for (unsigned char v : vec) resident += (v & 1u) != 0 ? page : 0;
  return resident;
}

}  // namespace stob::wf
