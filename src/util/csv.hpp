// Minimal CSV reader/writer for trace datasets and benchmark output.
// Implements the RFC 4180 quoting rules: cells containing the separator,
// double quotes, or newlines are written quoted (embedded quotes doubled),
// and the reader understands quoted cells — including embedded newlines —
// so write_file / read_file round-trip arbitrary cell content.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace stob::csv {

using Row = std::vector<std::string>;

/// Quote `cell` for CSV output if (and only if) it needs it: contains the
/// separator, a double quote, or a CR/LF. Embedded quotes are doubled.
std::string quote_cell(std::string_view cell, char sep = ',');

/// Split one CSV line on commas, honouring RFC 4180 quoting. A quoted cell
/// must not contain an embedded newline here (use parse_content for that —
/// a lone line has already lost the information).
Row split_line(std::string_view line, char sep = ',');

/// Parse a whole CSV document, honouring quoted cells with embedded
/// newlines. Records are separated by LF or CRLF; empty records (blank
/// lines) are skipped.
std::vector<Row> parse_content(std::string_view content, char sep = ',');

/// Read all rows of a CSV file. Throws std::runtime_error on I/O failure.
std::vector<Row> read_file(const std::filesystem::path& path, char sep = ',');

/// Write rows to a CSV file, overwriting. Throws on I/O failure.
void write_file(const std::filesystem::path& path, const std::vector<Row>& rows,
                char sep = ',');

/// Join cells into one line, quoting cells that need it.
std::string join(const Row& row, char sep = ',');

}  // namespace stob::csv
