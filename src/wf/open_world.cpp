#include "wf/open_world.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "wf/features.hpp"

namespace stob::wf {

namespace {

/// Split indices of one class into train/test deterministically.
void split_indices(std::size_t count, double train_fraction, Rng& rng,
                   std::vector<std::size_t>& order, std::size_t& train_count) {
  order.resize(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  train_count = std::max<std::size_t>(1, static_cast<std::size_t>(
                                             train_fraction * static_cast<double>(count)));
}

}  // namespace

OpenWorldResult open_world_evaluate(const Dataset& monitored, const Dataset& background,
                                    const OpenWorldConfig& cfg) {
  if (monitored.size() == 0 || background.size() == 0) {
    throw std::invalid_argument("open_world_evaluate: need monitored and background data");
  }
  const int num_monitored_classes =
      *std::max_element(monitored.labels().begin(), monitored.labels().end()) + 1;
  const int background_label = num_monitored_classes;  // one extra class

  Rng rng(cfg.seed);

  // Per-class stratified split of the monitored set.
  std::vector<std::vector<double>> train_rows;
  std::vector<int> train_labels;
  std::vector<std::size_t> mon_test;
  for (int cls = 0; cls < num_monitored_classes; ++cls) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < monitored.size(); ++i) {
      if (monitored.label(i) == cls) idx.push_back(i);
    }
    std::shuffle(idx.begin(), idx.end(), rng);
    const auto train_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.train_fraction * static_cast<double>(idx.size())));
    for (std::size_t j = 0; j < idx.size(); ++j) {
      if (j < train_count) {
        train_rows.push_back(kfp_features(monitored.trace(idx[j])));
        train_labels.push_back(cls);
      } else {
        mon_test.push_back(idx[j]);
      }
    }
  }

  // Background split (labels collapsed to one class).
  std::vector<std::size_t> bg_order;
  std::size_t bg_train = 0;
  split_indices(background.size(), cfg.train_fraction, rng, bg_order, bg_train);
  std::vector<std::size_t> bg_test;
  for (std::size_t j = 0; j < bg_order.size(); ++j) {
    if (j < bg_train) {
      train_rows.push_back(kfp_features(background.trace(bg_order[j])));
      train_labels.push_back(background_label);
    } else {
      bg_test.push_back(bg_order[j]);
    }
  }

  RandomForest forest(cfg.forest);
  forest.fit({train_rows, train_labels, num_monitored_classes + 1});

  // Fingerprints of the training set for leaf-vector k-NN.
  std::vector<std::vector<std::uint32_t>> train_leaves;
  train_leaves.reserve(train_rows.size());
  for (const auto& r : train_rows) train_leaves.push_back(forest.leaf_vector(r));

  // k-FP rule: monitored verdict only on unanimous k nearest fingerprints.
  auto classify = [&](const Trace& trace) -> int {
    const std::vector<std::uint32_t> q = forest.leaf_vector(kfp_features(trace));
    std::vector<std::pair<int, int>> scored;  // (matches, label)
    scored.reserve(train_leaves.size());
    for (std::size_t i = 0; i < train_leaves.size(); ++i) {
      int matches = 0;
      for (std::size_t t = 0; t < q.size(); ++t) matches += (train_leaves[i][t] == q[t]);
      scored.emplace_back(matches, train_labels[i]);
    }
    const std::size_t k = std::min(cfg.k_neighbors, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                      scored.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
    const int first = scored[0].second;
    if (first == background_label) return background_label;
    for (std::size_t i = 1; i < k; ++i) {
      if (scored[i].second != first) return background_label;  // not unanimous
    }
    return first;
  };

  OpenWorldResult out;
  out.monitored_tested = mon_test.size();
  out.background_tested = bg_test.size();

  std::size_t true_pos = 0, correct_site = 0;
  for (std::size_t i : mon_test) {
    const int pred = classify(monitored.trace(i));
    if (pred != background_label) {
      ++true_pos;
      if (pred == monitored.label(i)) ++correct_site;
    }
  }
  std::size_t false_pos = 0;
  for (std::size_t i : bg_test) {
    if (classify(background.trace(i)) != background_label) ++false_pos;
  }

  if (!mon_test.empty()) {
    out.tpr = static_cast<double>(true_pos) / static_cast<double>(mon_test.size());
  }
  if (!bg_test.empty()) {
    out.fpr = static_cast<double>(false_pos) / static_cast<double>(bg_test.size());
  }
  if (true_pos + false_pos > 0) {
    out.precision = static_cast<double>(true_pos) / static_cast<double>(true_pos + false_pos);
  }
  if (true_pos > 0) {
    out.monitored_accuracy = static_cast<double>(correct_site) / static_cast<double>(true_pos);
  }
  return out;
}

}  // namespace stob::wf
