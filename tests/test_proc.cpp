// Tests for the crash-isolated out-of-process experiment runner:
// util::Subprocess plumbing, the length-prefixed result frame, the worker
// payload codec, the append-only results journal (golden JSONL forms, torn
// final lines), the cell_spec_digest journal key, the deterministic
// self-fault hook, and the supervisor itself — retries, watchdog,
// quarantine, journaled resume, and the headline guarantee that
// out-of-process sweeps are byte-identical to in-process ones.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "exp/experiment.hpp"
#include "exp/job_codec.hpp"
#include "exp/proc_runner.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "util/subprocess.hpp"
#include "workload/website.hpp"

namespace stob::exp {
namespace {

// Small, fast site profiles so whole-grid tests run in well under a second.
std::vector<workload::SiteProfile> tiny_sites(std::size_t n) {
  std::vector<workload::SiteProfile> sites;
  for (std::size_t i = 0; i < n; ++i) {
    workload::SiteProfile s;
    s.name = "tiny" + std::to_string(i);
    s.html_mu = 8.5 + 0.3 * static_cast<double>(i);
    s.objects_mean = 3.0 + static_cast<double>(i);
    s.object_mu = 8.0;
    s.parallel_connections = 2;
    sites.push_back(s);
  }
  return sites;
}

/// Fresh per-test file path (the pid keeps parallel ctest runs apart).
std::filesystem::path temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string name = std::string(info->test_suite_name()) + "_" + info->name() + "_" +
                           stem + "_" + std::to_string(::getpid());
  return std::filesystem::temp_directory_path() / name;
}

struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const std::string& stem) : path(temp_path(stem)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
};

/// Read a (nonblocking) parent-side pipe to EOF after the child exited.
std::string drain_to_eof(int fd) {
  std::string out;
  char tmp[512];
  for (;;) {
    const ssize_t n = util::read_some(fd, tmp, sizeof(tmp));
    if (n > 0) {
      out.append(tmp, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;           // EOF
    if (errno != EAGAIN) break;  // real error
  }
  return out;
}

// -------------------------------------------------------------- subprocess

TEST(Subprocess, CallbackModeShipsResultFrame) {
  util::Subprocess::Options opts;
  opts.child_fn = [](int fd) { return util::write_frame(fd, "hello from child") ? 0 : 1; };
  util::Subprocess child = util::Subprocess::spawn(opts);
  const util::ExitStatus st = child.wait();  // child exit closes the pipe
  EXPECT_TRUE(st.clean());
  const auto payload = util::parse_frame(drain_to_eof(child.result_fd()));
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello from child");
}

TEST(Subprocess, ExecModeReportsExitStatus) {
  util::Subprocess::Options ok;
  ok.argv = {"/bin/true"};
  EXPECT_TRUE(util::Subprocess::spawn(ok).wait().clean());

  util::Subprocess::Options fail;
  fail.argv = {"/bin/false"};
  const util::ExitStatus st = util::Subprocess::spawn(fail).wait();
  EXPECT_TRUE(st.exited);
  EXPECT_NE(st.exit_code, 0);
}

TEST(Subprocess, ExecFailureIs127WithStderrMessage) {
  util::Subprocess::Options opts;
  opts.argv = {"/no/such/binary/anywhere"};
  util::Subprocess child = util::Subprocess::spawn(opts);
  const util::ExitStatus st = child.wait();
  EXPECT_TRUE(st.exited);
  EXPECT_EQ(st.exit_code, 127);
  EXPECT_NE(drain_to_eof(child.stderr_fd()).find("execv"), std::string::npos);
}

TEST(Subprocess, SignalDeathIsDecoded) {
  util::Subprocess::Options opts;
  opts.child_fn = [](int) {
    ::raise(SIGKILL);
    return 0;
  };
  const util::ExitStatus st = util::Subprocess::spawn(opts).wait();
  EXPECT_TRUE(st.signaled);
  EXPECT_EQ(st.term_signal, SIGKILL);
  EXPECT_FALSE(st.clean());
}

TEST(Subprocess, ThrowingChildFnExits125) {
  util::Subprocess::Options opts;
  opts.child_fn = [](int) -> int { throw std::runtime_error("boom"); };
  const util::ExitStatus st = util::Subprocess::spawn(opts).wait();
  EXPECT_TRUE(st.exited);
  EXPECT_EQ(st.exit_code, 125);
}

TEST(ResultFrame, RoundTripAndTornDetection) {
  // Binary-hostile payload: embedded NUL and a high byte.
  std::string payload = "payload ";
  payload.push_back('\0');
  payload.push_back('\x01');
  payload += " bytes";
  payload.push_back('\xff');

  std::string buf;
  util::append_frame(buf, payload);
  const auto full = util::parse_frame(buf);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, payload);

  // Every strict prefix is torn: no frame, never garbage.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_FALSE(util::parse_frame(std::string_view(buf).substr(0, cut)).has_value());
  }
  std::string bad_magic = buf;
  bad_magic[0] = 'X';
  EXPECT_FALSE(util::parse_frame(bad_magic).has_value());
}

// ------------------------------------------------------------ JSON dialect

TEST(JsonEscape, RoundTripsHostileStrings) {
  std::string hostile = "quote\" slash\\ nl\n cr\r tab\t";
  hostile.push_back('\0');
  hostile += "high\xc3\xa9";
  std::string escaped;
  obs::json_escape(escaped, hostile);
  // One printable 7-bit line: that is what keeps the journal's JSONL records
  // self-delimiting whatever a worker wrote to stderr.
  for (char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
    EXPECT_LT(static_cast<unsigned char>(c), 0x7f);
  }
  EXPECT_EQ(obs::json_unescape(escaped), hostile);
}

// ------------------------------------------------ journal: golden + replay

TEST(JournalGolden, CellLineFormatIsPinned) {
  obs::JournalCell cell;
  cell.digest = "abc123";
  cell.job = 7;
  cell.attempts = 2;
  cell.payload = "hi";
  EXPECT_EQ(obs::to_json_line(cell),
            "{\"kind\":\"cell\",\"digest\":\"abc123\",\"job\":7,\"attempts\":2,"
            "\"payload\":\"6869\"}");
}

TEST(JournalGolden, CrashLineFormatIsPinned) {
  obs::CrashRecord crash;
  crash.job = 3;
  crash.digest = "d00d";
  crash.attempts = 3;
  crash.outcome = "signal";
  crash.signal_no = 9;
  crash.exit_code = 0;
  crash.stderr_tail = "last\nline";
  EXPECT_EQ(obs::to_json_line(crash),
            "{\"kind\":\"crash\",\"digest\":\"d00d\",\"job\":3,\"attempts\":3,"
            "\"outcome\":\"signal\",\"signal\":9,\"exit\":0,\"stderr_tail\":\"last\\nline\"}");
}

TEST(Journal, HexCodecRoundTripsAllBytes) {
  std::string all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<char>(i));
  const std::string hex = obs::hex_encode(all);
  EXPECT_EQ(hex.size(), 512u);
  EXPECT_EQ(obs::hex_decode(hex), all);
  EXPECT_EQ(obs::hex_encode("hi"), "6869");
  EXPECT_EQ(obs::hex_decode("686"), "h");  // torn trailing nibble ignored
}

TEST(Journal, AppendLoadRoundTripIsLossless) {
  TempFile tmp("journal");
  obs::JournalCell cell;
  cell.digest = "digest-a";
  cell.job = 4;
  cell.attempts = 1;
  cell.payload = std::string("bin\0ary\xff", 8);
  obs::CrashRecord crash;
  crash.job = 9;
  crash.digest = "digest-b";
  crash.attempts = 3;
  crash.outcome = "timeout";
  crash.signal_no = 9;
  crash.exit_code = 0;
  crash.stderr_tail = "tail with \"quotes\" and\nnewlines";
  {
    obs::Journal j(tmp.path);
    j.append(cell);
    j.append(crash);
  }
  const obs::Journal::Loaded loaded = obs::Journal::load(tmp.path);
  EXPECT_EQ(loaded.malformed_lines, 0u);
  ASSERT_EQ(loaded.cells.size(), 1u);
  ASSERT_EQ(loaded.crashes.size(), 1u);
  EXPECT_EQ(loaded.cells[0], cell);
  EXPECT_EQ(loaded.crashes[0], crash);
}

TEST(Journal, TornFinalLineIsSkippedNotFatal) {
  TempFile tmp("torn");
  {
    obs::Journal j(tmp.path);
    obs::JournalCell a;
    a.digest = "da";
    a.job = 0;
    a.payload = "one";
    obs::JournalCell b;
    b.digest = "db";
    b.job = 1;
    b.payload = "two";
    j.append(a);
    j.append(b);
  }
  // Simulate SIGKILL mid-append: a third record cut off mid-payload, no
  // trailing newline, odd number of hex digits.
  {
    std::ofstream out(tmp.path, std::ios::binary | std::ios::app);
    out << "{\"kind\":\"cell\",\"digest\":\"dc\",\"job\":2,\"attempts\":1,\"payload\":\"746";
  }
  const obs::Journal::Loaded loaded = obs::Journal::load(tmp.path);
  ASSERT_EQ(loaded.cells.size(), 2u);
  EXPECT_EQ(loaded.malformed_lines, 1u);
  EXPECT_EQ(loaded.cells[1].payload, "two");
}

TEST(Journal, MissingFileLoadsEmpty) {
  const obs::Journal::Loaded loaded = obs::Journal::load("/no/such/dir/journal.jsonl");
  EXPECT_TRUE(loaded.cells.empty());
  EXPECT_TRUE(loaded.crashes.empty());
}

TEST(JournalGolden, IndexLineFormatIsPinned) {
  obs::IndexEntry e;
  e.digest = "feedface";
  e.bytes = 1234;
  EXPECT_EQ(obs::to_json_line(e), "{\"kind\":\"index\",\"digest\":\"feedface\",\"bytes\":1234}");
}

TEST(Journal, IndexEntriesRoundTrip) {
  TempFile tmp("index");
  obs::IndexEntry a;
  a.digest = "aaaa";
  a.bytes = 10;
  obs::IndexEntry b;
  b.digest = "bbbb";
  b.bytes = 0;
  {
    obs::Journal j(tmp.path);
    j.append(a);
    j.append(b);
  }
  const obs::Journal::Loaded loaded = obs::Journal::load(tmp.path);
  EXPECT_EQ(loaded.malformed_lines, 0u);
  ASSERT_EQ(loaded.index.size(), 2u);
  EXPECT_EQ(loaded.index[0], a);
  EXPECT_EQ(loaded.index[1], b);
}

TEST(Journal, TornMidFileEntryFollowedByValidLinesIsSkippedWithWarning) {
  // A crash can tear an entry in the *middle* of the file when a later append
  // lands on the same physical line (the torn record had no trailing
  // newline). The loader must skip the torn head, recover the glued-on valid
  // record, and keep every later line.
  obs::JournalCell a;
  a.digest = "da";
  a.job = 0;
  a.attempts = 1;
  a.payload = "one";
  obs::JournalCell b;
  b.digest = "db";
  b.job = 1;
  b.attempts = 1;
  b.payload = "two";
  obs::JournalCell c;
  c.digest = "dc";
  c.job = 2;
  c.attempts = 1;
  c.payload = "three";

  TempFile tmp("torn_mid");
  {
    std::ofstream out(tmp.path, std::ios::binary);
    out << obs::to_json_line(a) << "\n";
    // Record torn mid-payload, with record b appended onto the same line.
    const std::string torn = obs::to_json_line(c).substr(0, 30);
    out << torn << obs::to_json_line(b) << "\n";
    out << obs::to_json_line(c) << "\n";
  }
  const obs::Journal::Loaded loaded = obs::Journal::load(tmp.path);
  EXPECT_EQ(loaded.malformed_lines, 1u);
  ASSERT_EQ(loaded.cells.size(), 3u);
  EXPECT_EQ(loaded.cells[0], a);
  EXPECT_EQ(loaded.cells[1], b);  // recovered from the torn line
  EXPECT_EQ(loaded.cells[2], c);
}

TEST(Journal, TornEntryWholeLineGarbageDoesNotPoisonLaterLines) {
  obs::JournalCell a;
  a.digest = "da";
  a.job = 0;
  a.attempts = 1;
  a.payload = "one";
  TempFile tmp("torn_garbage");
  {
    std::ofstream out(tmp.path, std::ios::binary);
    out << "{\"kind\":\"cell\",\"digest\":\"dx\",\"job\":9,\"attempts\"garbage\n";
    out << std::string(64, '\xff') << "\n";
    out << obs::to_json_line(a) << "\n";
  }
  const obs::Journal::Loaded loaded = obs::Journal::load(tmp.path);
  EXPECT_EQ(loaded.malformed_lines, 2u);
  ASSERT_EQ(loaded.cells.size(), 1u);
  EXPECT_EQ(loaded.cells[0], a);
}

TEST(Journal, NonCanonicalRecordBytesAreRejected) {
  // Only byte-exact canonical lines count as finished work: a record with
  // reordered keys or extra whitespace is treated as torn, never trusted.
  TempFile tmp("noncanon");
  {
    std::ofstream out(tmp.path, std::ios::binary);
    out << "{\"kind\":\"cell\",\"job\":7,\"digest\":\"abc\",\"attempts\":1,\"payload\":\"\"}\n";
  }
  const obs::Journal::Loaded loaded = obs::Journal::load(tmp.path);
  EXPECT_TRUE(loaded.cells.empty());
  EXPECT_EQ(loaded.malformed_lines, 1u);
}

// ------------------------------------------------------------------ codec

TEST(JobCodec, RoundTripIsResultsIdentical) {
  ExperimentGrid grid;
  grid.sites = tiny_sites(1);
  grid.samples = 1;
  grid.base_seed = 99;
  RunOptions opts;
  opts.collect_metrics = true;
  opts.trace_capacity = 4096;
  opts.check_invariants = true;

  WorkerPayload payload;
  payload.result = run_job(grid, grid.job(0), opts);
  obs::ProfRecord rec;
  rec.id = 0x1234;
  rec.parent = 0x5678;
  rec.depth = 2;
  rec.worker = 1;
  rec.name = "page_load";
  rec.start_ns = 10;
  rec.wall_ns = 20;
  rec.cpu_ns = 15;
  rec.pool_hits = 3;
  rec.pool_misses = 1;
  payload.prof_records.push_back(rec);

  const std::string bytes = encode_worker_payload(payload);
  const WorkerPayload decoded = decode_worker_payload(bytes);
  EXPECT_TRUE(results_identical(payload.result, decoded.result));
  EXPECT_EQ(decoded.result.spec.seed, payload.result.spec.seed);
  ASSERT_EQ(decoded.prof_records.size(), 1u);
  EXPECT_EQ(decoded.prof_records[0].name, "page_load");
  EXPECT_EQ(decoded.prof_records[0].id, 0x1234u);
  EXPECT_EQ(decoded.prof_records[0].wall_ns, 20);
}

TEST(JobCodec, RejectsTruncationVersionSkewAndTrailingBytes) {
  WorkerPayload payload;
  payload.result.spec.index = 3;
  payload.result.metrics = "m";
  const std::string bytes = encode_worker_payload(payload);
  for (std::size_t cut : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(decode_worker_payload(std::string_view(bytes).substr(0, cut)),
                 std::runtime_error)
        << "cut=" << cut;
  }
  std::string skewed = bytes;
  skewed[0] = static_cast<char>(kWorkerPayloadVersion + 1);
  EXPECT_THROW(decode_worker_payload(skewed), std::runtime_error);
  EXPECT_THROW(decode_worker_payload(bytes + "x"), std::runtime_error);
}

// ------------------------------------------------------------- fault plan

TEST(WorkerFaultPlan, ParsesSpecsAndRejectsGarbage) {
  EXPECT_FALSE(WorkerFaultPlan::parse("").enabled());
  const WorkerFaultPlan crash = WorkerFaultPlan::parse("crash");
  EXPECT_EQ(crash.kind, WorkerFaultPlan::Kind::Crash);
  EXPECT_DOUBLE_EQ(crash.rate, 1.0);
  const WorkerFaultPlan hang = WorkerFaultPlan::parse("hang:0.25");
  EXPECT_EQ(hang.kind, WorkerFaultPlan::Kind::Hang);
  EXPECT_DOUBLE_EQ(hang.rate, 0.25);
  EXPECT_STREQ(WorkerFaultPlan::parse("exit:0.5").kind_name(), "exit");
  EXPECT_FALSE(WorkerFaultPlan::parse("crash:0").enabled());

  EXPECT_THROW(WorkerFaultPlan::parse("segv"), std::invalid_argument);
  EXPECT_THROW(WorkerFaultPlan::parse("crash:nope"), std::invalid_argument);
  EXPECT_THROW(WorkerFaultPlan::parse("crash:0.5x"), std::invalid_argument);
  EXPECT_THROW(WorkerFaultPlan::parse("crash:1.5"), std::invalid_argument);
  EXPECT_THROW(WorkerFaultPlan::parse("crash:-0.1"), std::invalid_argument);
}

TEST(WorkerFaultPlan, CoinIsDeterministicAndSparesFinalAttempt) {
  const WorkerFaultPlan plan = WorkerFaultPlan::parse("crash:0.5");
  std::size_t hits = 0;
  for (std::size_t job = 0; job < 200; ++job) {
    const bool first = plan.should_inject(job, 0, 3);
    EXPECT_EQ(first, plan.should_inject(job, 0, 3));  // pure function
    if (first) ++hits;
    // The final attempt is exempt below rate 1, so every cell eventually
    // converges to a fault-free result — the CI byte-identity gate.
    EXPECT_FALSE(plan.should_inject(job, 2, 3));
  }
  EXPECT_GT(hits, 50u);  // the coin actually lands both ways
  EXPECT_LT(hits, 150u);

  const WorkerFaultPlan always = WorkerFaultPlan::parse("exit:1");
  EXPECT_TRUE(always.should_inject(0, 2, 3));  // rate >= 1 hits final attempts
}

// ------------------------------------------------- cell digest (journal key)

ExperimentGrid digest_grid() {
  ExperimentGrid grid;
  grid.sites = tiny_sites(2);
  grid.samples = 2;
  grid.defenses = {{"none", nullptr}, {"front", nullptr}};
  grid.ccas = {"cubic", "bbr"};
  grid.base_seed = 42;
  return grid;
}

TEST(CellDigest, GoldenStableAndDistinct) {
  const ExperimentGrid grid = digest_grid();
  RunOptions opts;

  // Golden: the key is an on-disk format — a digest change silently
  // invalidates every existing journal, so it must fail loudly here first.
  EXPECT_EQ(cell_digest(grid, 0, opts),
            "610c1c1c238ed4909294e2ee487e1ae4f8e108b09f4d3c5cdf38e7ea64639ad3");
  EXPECT_EQ(cell_digest(grid, 5, opts),
            "5a05ce7716a12cd169124a3c618b43022fa6dec786c89099cf2f5027040de6e4");

  // Stability: pure function of the cell, independent of execution knobs.
  RunOptions other = opts;
  other.jobs = 7;
  other.proc.workers = 3;
  other.proc.retries = 9;
  other.proc.resume = true;
  other.proc.journal_path = "/tmp/x";
  EXPECT_EQ(cell_digest(grid, 0, opts), cell_digest(grid, 0, other));

  // Every cell's key is distinct.
  std::set<std::string> keys;
  for (std::size_t i = 0; i < grid.job_count(); ++i) keys.insert(cell_digest(grid, i, opts));
  EXPECT_EQ(keys.size(), grid.job_count());
}

TEST(CellDigest, ChangesWithAnyCellShapingInput) {
  const ExperimentGrid grid = digest_grid();
  RunOptions opts;
  // Job 3 decomposes to site 0, sample 0, defense 1, cca 1 (cca fastest).
  ASSERT_EQ(grid.job(3).site, 0u);
  ASSERT_EQ(grid.job(3).defense, 1u);
  ASSERT_EQ(grid.job(3).cca, 1u);
  const std::string base = cell_digest(grid, 3, opts);

  ExperimentGrid g2 = digest_grid();
  g2.base_seed = 43;
  EXPECT_NE(cell_digest(g2, 3, opts), base);

  g2 = digest_grid();
  g2.sites[0].name = "renamed";
  EXPECT_NE(cell_digest(g2, 3, opts), base);

  // Renaming a site the cell does not use leaves its key alone: resume
  // replays exactly the cells whose own coordinates are unchanged.
  g2 = digest_grid();
  g2.sites[1].name = "renamed";
  EXPECT_EQ(cell_digest(g2, 3, opts), base);

  g2 = digest_grid();
  g2.defenses[1].name = "tamaraw";
  EXPECT_NE(cell_digest(g2, 3, opts), base);

  g2 = digest_grid();
  g2.ccas[1] = "reno";
  EXPECT_NE(cell_digest(g2, 3, opts), base);

  // RunOptions fields that shape the payload bytes are part of the key.
  RunOptions o2 = opts;
  o2.collect_metrics = true;
  EXPECT_NE(cell_digest(grid, 3, o2), base);
  o2 = opts;
  o2.trace_capacity = 128;
  EXPECT_NE(cell_digest(grid, 3, o2), base);
  o2 = opts;
  o2.check_invariants = true;
  EXPECT_NE(cell_digest(grid, 3, o2), base);
}

// ------------------------------------------------------ supervisor (fork)

/// Fork-mode options: no exec, workers run `run_cell` in the forked child.
ProcOptions fork_opts(std::size_t workers) {
  ProcOptions proc;
  proc.workers = workers;
  proc.job_timeout = Duration::seconds(30);
  proc.backoff_base = Duration::millis(1);  // keep retry tests fast
  proc.backoff_cap = Duration::millis(8);
  return proc;
}

std::string digest_of(std::size_t i) { return "digest-" + std::to_string(i); }
std::string payload_of(std::size_t i) { return "payload-" + std::to_string(i); }

TEST(ProcRunner, PayloadsArriveInIndexOrder) {
  ProcReport report;
  const auto payloads = run_cells(8, fork_opts(3), digest_of, payload_of, &report);
  ASSERT_EQ(payloads.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(payloads[i].has_value());
    EXPECT_EQ(*payloads[i], payload_of(i));
  }
  EXPECT_EQ(report.cells, 8u);
  EXPECT_EQ(report.ran, 8u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ProcRunner, RejectsZeroWorkersAndResumeWithoutJournal) {
  EXPECT_THROW(run_cells(1, ProcOptions{}, digest_of, payload_of, nullptr),
               std::runtime_error);
  ProcOptions proc = fork_opts(1);
  proc.resume = true;
  EXPECT_THROW(run_cells(1, proc, digest_of, payload_of, nullptr), std::runtime_error);
}

TEST(ProcRunner, InjectedCrashesAreRetriedToConvergence) {
  ProcOptions proc = fork_opts(2);
  proc.fault_spec = "crash:0.5";
  proc.retries = 3;
  ProcReport report;
  const auto payloads = run_cells(8, proc, digest_of, payload_of, &report);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(payloads[i].has_value());
    EXPECT_EQ(*payloads[i], payload_of(i));  // byte-identical to fault-free
  }
  EXPECT_GT(report.injected_faults, 0u);
  EXPECT_EQ(report.retries, report.injected_faults);  // every fault recovered
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ProcRunner, CellFailingAllAttemptsIsQuarantined) {
  TempFile tmp("quarantine");
  ProcOptions proc = fork_opts(2);
  proc.fault_spec = "exit:1";  // rate 1: final attempts fault too
  proc.retries = 1;
  proc.journal_path = tmp.path.string();
  ProcReport report;
  const auto payloads = run_cells(3, proc, digest_of, payload_of, &report);
  for (const auto& p : payloads) EXPECT_FALSE(p.has_value());
  EXPECT_EQ(report.quarantined, 3u);
  EXPECT_EQ(report.ran, 0u);
  ASSERT_EQ(report.failures.size(), 3u);
  for (const obs::CrashRecord& f : report.failures) {
    EXPECT_EQ(f.outcome, "exit");
    EXPECT_EQ(f.exit_code, 3);  // execute_worker_fault's exit code
    EXPECT_EQ(f.attempts, 2u);
  }
  // The structured crash report is journaled...
  const obs::Journal::Loaded loaded = obs::Journal::load(tmp.path);
  EXPECT_EQ(loaded.crashes.size(), 3u);
  EXPECT_TRUE(loaded.cells.empty());

  // ...and crash records are NOT finished cells: a fault-free resume re-runs
  // every quarantined cell (the condition may have been transient).
  ProcOptions retry = fork_opts(2);
  retry.journal_path = tmp.path.string();
  retry.resume = true;
  ProcReport report2;
  const auto again = run_cells(3, retry, digest_of, payload_of, &report2);
  EXPECT_EQ(report2.journal_hits, 0u);
  EXPECT_EQ(report2.ran, 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(*again[i], payload_of(i));
}

TEST(ProcRunner, SignalDeathIsReportedAsSignal) {
  ProcOptions proc = fork_opts(1);
  proc.fault_spec = "crash:1";
  proc.retries = 0;
  ProcReport report;
  run_cells(1, proc, digest_of, payload_of, &report);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].outcome, "signal");
  EXPECT_EQ(report.failures[0].signal_no, SIGKILL);
}

TEST(ProcRunner, WatchdogKillsHangs) {
  ProcOptions proc = fork_opts(2);
  proc.fault_spec = "hang:1";
  proc.retries = 0;
  proc.job_timeout = Duration::millis(200);
  ProcReport report;
  const auto payloads = run_cells(2, proc, digest_of, payload_of, &report);
  EXPECT_FALSE(payloads[0].has_value());
  ASSERT_EQ(report.failures.size(), 2u);
  for (const obs::CrashRecord& f : report.failures) {
    EXPECT_EQ(f.outcome, "timeout");
    EXPECT_EQ(f.signal_no, SIGKILL);
  }
}

TEST(ProcRunner, WorkerStderrTailLandsInCrashReport) {
  ProcOptions proc = fork_opts(1);
  proc.retries = 0;
  ProcReport report;
  run_cells(
      1, proc, digest_of,
      [](std::size_t) -> std::string {
        std::fprintf(stderr, "worker about to die: reason=%d\n", 42);
        std::fflush(stderr);
        throw std::runtime_error("cell exploded");
      },
      &report);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].outcome, "exit");
  EXPECT_EQ(report.failures[0].exit_code, 125);  // Subprocess's child_fn-threw code
  EXPECT_NE(report.failures[0].stderr_tail.find("reason=42"), std::string::npos);
}

TEST(ProcRunner, JournalResumeSkipsFinishedCells) {
  TempFile tmp("resume");
  ProcOptions proc = fork_opts(2);
  proc.journal_path = tmp.path.string();
  ProcReport first;
  const auto payloads = run_cells(6, proc, digest_of, payload_of, &first);
  EXPECT_EQ(first.ran, 6u);

  ProcOptions again = proc;
  again.resume = true;
  ProcReport second;
  // A resumed run that re-ran anything would produce the poisoned payload
  // and fail the comparison below.
  const auto replayed = run_cells(
      6, again, digest_of, [](std::size_t) -> std::string { return "RE-RAN"; }, &second);
  EXPECT_EQ(second.journal_hits, 6u);
  EXPECT_EQ(second.ran, 0u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(replayed[i], payloads[i]);
}

TEST(ProcRunner, ResumeToleratesTornTailAndRunsTheRest) {
  TempFile tmp("torn_resume");
  ProcOptions proc = fork_opts(2);
  proc.journal_path = tmp.path.string();
  run_cells(4, proc, digest_of, payload_of, nullptr);
  {
    // SIGKILL mid-append: half a record with no newline.
    std::ofstream out(tmp.path, std::ios::binary | std::ios::app);
    out << "{\"kind\":\"cell\",\"digest\":\"digest-9";
  }
  ProcOptions again = proc;
  again.resume = true;
  ProcReport report;
  const auto payloads = run_cells(6, again, digest_of, payload_of, &report);
  EXPECT_EQ(report.journal_hits, 4u);
  EXPECT_EQ(report.ran, 2u);  // cells 4 and 5 were never journaled
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(*payloads[i], payload_of(i));
}

// ----------------------------------------- run_grid: proc == in-process

TEST(RunGridProc, ByteIdenticalToInProcessAtAnyWorkerCount) {
  ExperimentGrid grid;
  grid.sites = tiny_sites(2);
  grid.samples = 2;
  defenses::SplitDefense split;
  grid.defenses = {{"none", nullptr}, {"split", &split}};
  grid.base_seed = 20260808;

  RunOptions opts;
  opts.jobs = 2;
  opts.collect_metrics = true;
  opts.trace_capacity = 4096;
  opts.check_invariants = true;
  const std::vector<JobResult> in_process = run_grid(grid, opts);

  for (std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    RunOptions proc_opts = opts;
    proc_opts.proc = fork_opts(workers);
    ProcReport report;
    proc_opts.proc_report = &report;
    const std::vector<JobResult> out_of_process = run_grid(grid, proc_opts);
    ASSERT_EQ(out_of_process.size(), in_process.size());
    for (std::size_t i = 0; i < in_process.size(); ++i) {
      EXPECT_TRUE(results_identical(in_process[i], out_of_process[i]))
          << "job " << i << " differs at workers=" << workers;
      // The seed a worker process derived equals the in-process one: seeds
      // are keyed by job index, never by worker or process identity.
      EXPECT_EQ(out_of_process[i].spec.seed, job_seed(grid.base_seed, i));
    }
    EXPECT_EQ(report.ran, grid.job_count());
    EXPECT_EQ(report.quarantined, 0u);
  }
}

TEST(RunGridProc, InjectedFaultsDoNotChangeResults) {
  ExperimentGrid grid;
  grid.sites = tiny_sites(2);
  grid.samples = 1;
  grid.base_seed = 7;
  RunOptions opts;
  opts.jobs = 1;
  const std::vector<JobResult> in_process = run_grid(grid, opts);

  RunOptions faulted = opts;
  faulted.proc = fork_opts(2);
  faulted.proc.fault_spec = "crash:0.5";
  faulted.proc.retries = 3;
  ProcReport report;
  faulted.proc_report = &report;
  const std::vector<JobResult> out = run_grid(grid, faulted);
  for (std::size_t i = 0; i < in_process.size(); ++i) {
    EXPECT_TRUE(results_identical(in_process[i], out[i])) << "job " << i;
  }
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(RunGridProc, CheckDeterminismPassesInProcMode) {
  ExperimentGrid grid;
  grid.sites = tiny_sites(1);
  grid.samples = 2;
  grid.base_seed = 3;
  RunOptions opts;
  opts.jobs = 2;
  opts.check_determinism = true;  // compares against a serial in-process run
  opts.proc = fork_opts(2);
  EXPECT_NO_THROW(run_grid(grid, opts));
}

TEST(RunGridProc, QuarantinedCellsYieldPlaceholders) {
  ExperimentGrid grid;
  grid.sites = tiny_sites(1);
  grid.samples = 2;
  grid.base_seed = 3;
  RunOptions opts;
  opts.proc = fork_opts(2);
  opts.proc.fault_spec = "exit:1";
  opts.proc.retries = 0;
  ProcReport report;
  opts.proc_report = &report;
  const std::vector<JobResult> results = run_grid(grid, opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(report.quarantined, 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].completed);
    EXPECT_EQ(results[i].spec.index, i);  // placeholder still carries coords
  }
}

// --------------------------------------------------- CLI flag round trips

TEST(ProcCli, FlagsMapOntoProcOptions) {
  const char* argv[] = {"tool",      "--proc-workers", "4",          "--job-timeout", "2.5",
                        "--retries", "5",              "--journal",  "/tmp/j.jsonl",  "--resume",
                        "--inject-worker-fault",       "crash:0.25"};
  const Cli cli = parse_cli(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  const ProcOptions proc = proc_options_from_cli(cli);
  EXPECT_EQ(proc.workers, 4u);
  EXPECT_EQ(proc.job_timeout.ns(), Duration::millis(2500).ns());
  EXPECT_EQ(proc.retries, 5u);
  EXPECT_EQ(proc.journal_path, "/tmp/j.jsonl");
  EXPECT_TRUE(proc.resume);
  EXPECT_EQ(proc.fault_spec, "crash:0.25");
  ASSERT_FALSE(proc.worker_argv.empty());
  EXPECT_EQ(proc.worker_argv.size(), std::size(argv));  // verbatim re-exec base
  EXPECT_EQ(proc.worker_argv[0], "tool");
  EXPECT_FALSE(proc.worker_job.has_value());
}

TEST(ProcCli, WorkerFlagsSelectWorkerMode) {
  const char* argv[] = {"tool", "--proc-workers",       "2", "--worker-job",
                        "17",   "--worker-fd",          "5", "--worker-fault",
                        "hang", "--worker-prof-domain", "987654321"};
  const Cli cli = parse_cli(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  const ProcOptions proc = proc_options_from_cli(cli);
  ASSERT_TRUE(proc.worker_job.has_value());
  EXPECT_EQ(*proc.worker_job, 17u);
  EXPECT_EQ(proc.worker_fd, 5);
  EXPECT_EQ(proc.worker_fault, "hang");
  EXPECT_TRUE(proc.worker_profile);
  EXPECT_EQ(proc.worker_prof_domain, 987654321u);
}

TEST(ProcCli, ResumeWithoutJournalIsHardError) {
  const char* argv[] = {"tool", "--resume"};
  EXPECT_THROW(parse_cli(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(ProcCli, MalformedFaultSpecIsHardError) {
  const char* argv[] = {"tool", "--inject-worker-fault", "explode:often"};
  EXPECT_THROW(parse_cli(3, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(ProcCli, MalformedTimeoutOrRetriesIsHardError) {
  const char* bad_timeout[] = {"tool", "--job-timeout", "soon"};
  EXPECT_THROW(parse_cli(3, const_cast<char**>(bad_timeout)), std::invalid_argument);
  const char* bad_retries[] = {"tool", "--retries", "-1"};
  EXPECT_THROW(parse_cli(3, const_cast<char**>(bad_retries)), std::invalid_argument);
}

}  // namespace
}  // namespace stob::exp
