#include "wf/trace.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/stats.hpp"

namespace stob::wf {

void Trace::normalize() {
  if (packets_.empty()) return;
  std::stable_sort(packets_.begin(), packets_.end(),
                   [](const PacketRecord& a, const PacketRecord& b) { return a.time < b.time; });
  const double t0 = packets_.front().time;
  for (PacketRecord& p : packets_) p.time -= t0;
}

Trace Trace::truncated(std::size_t n) const {
  if (n >= packets_.size()) return *this;
  return Trace(std::vector<PacketRecord>(packets_.begin(),
                                         packets_.begin() + static_cast<std::ptrdiff_t>(n)));
}

std::int64_t Trace::total_bytes() const {
  std::int64_t s = 0;
  for (const auto& p : packets_) s += p.size;
  return s;
}

std::int64_t Trace::incoming_bytes() const {
  std::int64_t s = 0;
  for (const auto& p : packets_) {
    if (p.direction < 0) s += p.size;
  }
  return s;
}

std::int64_t Trace::outgoing_bytes() const {
  std::int64_t s = 0;
  for (const auto& p : packets_) {
    if (p.direction > 0) s += p.size;
  }
  return s;
}

std::size_t Trace::incoming_count() const {
  return static_cast<std::size_t>(
      std::count_if(packets_.begin(), packets_.end(),
                    [](const PacketRecord& p) { return p.direction < 0; }));
}

std::size_t Trace::outgoing_count() const {
  return packets_.size() - incoming_count();
}

double Trace::duration() const {
  if (packets_.size() < 2) return 0.0;
  return packets_.back().time - packets_.front().time;
}

// ----------------------------------------------------------------- Dataset

void Dataset::add(Trace trace, int label) {
  traces_.push_back(std::move(trace));
  labels_.push_back(label);
}

std::size_t Dataset::num_classes() const {
  return std::set<int>(labels_.begin(), labels_.end()).size();
}

Dataset Dataset::sanitized_by_download_size(double k) const {
  // Group indices per class, fence on incoming_bytes within the class.
  std::set<int> classes(labels_.begin(), labels_.end());
  Dataset out;
  for (int cls : classes) {
    std::vector<std::size_t> idx;
    std::vector<double> sizes;
    for (std::size_t i = 0; i < traces_.size(); ++i) {
      if (labels_[i] == cls) {
        idx.push_back(i);
        sizes.push_back(static_cast<double>(traces_[i].incoming_bytes()));
      }
    }
    for (std::size_t j : stats::iqr_inlier_indices(sizes, k)) {
      out.add(traces_[idx[j]], cls);
    }
  }
  return out;
}

Dataset Dataset::balanced(std::size_t per_class) const {
  std::set<int> classes(labels_.begin(), labels_.end());
  Dataset out;
  for (int cls : classes) {
    std::size_t taken = 0;
    for (std::size_t i = 0; i < traces_.size() && taken < per_class; ++i) {
      if (labels_[i] == cls) {
        out.add(traces_[i], cls);
        ++taken;
      }
    }
  }
  return out;
}

void Dataset::save_csv(const std::filesystem::path& path) const {
  std::vector<csv::Row> rows;
  rows.push_back({"trace_id", "label", "time", "direction", "size"});
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    for (const PacketRecord& p : traces_[i].packets()) {
      rows.push_back({std::to_string(i), std::to_string(labels_[i]), std::to_string(p.time),
                      std::to_string(p.direction), std::to_string(p.size)});
    }
  }
  csv::write_file(path, rows);
}

Dataset Dataset::load_csv(const std::filesystem::path& path) {
  const auto rows = csv::read_file(path);
  Dataset out;
  Trace current;
  std::int64_t current_id = -1;
  int current_label = 0;
  for (std::size_t r = 1; r < rows.size(); ++r) {  // skip header
    const auto& row = rows[r];
    if (row.size() != 5) throw std::runtime_error("dataset csv: malformed row");
    const std::int64_t id = std::stoll(row[0]);
    if (id != current_id) {
      if (current_id >= 0) out.add(std::move(current), current_label);
      current = Trace{};
      current_id = id;
      current_label = std::stoi(row[1]);
    }
    current.add(std::stod(row[2]), std::stoi(row[3]), std::stoll(row[4]));
  }
  if (current_id >= 0) out.add(std::move(current), current_label);
  return out;
}

// ----------------------------------------------------------- TraceRecorder

TraceRecorder::TraceRecorder(net::DuplexPath& path) : path_(&path) {
  path_->forward().set_tx_tap([this](const net::Packet& p, TimePoint t) {
    trace_.add(t.sec(), +1, p.wire_size().count());
  });
  path_->backward().set_rx_tap([this](const net::Packet& p, TimePoint t) {
    trace_.add(t.sec(), -1, p.wire_size().count());
  });
}

void TraceRecorder::detach() {
  if (path_ != nullptr) {
    path_->forward().set_tx_tap(nullptr);
    path_->backward().set_rx_tap(nullptr);
    path_ = nullptr;
  }
}

Trace TraceRecorder::take() {
  detach();
  Trace t = std::move(trace_);
  trace_ = Trace{};
  t.normalize();
  return t;
}

}  // namespace stob::wf
