# Empty dependencies file for test_quic.
# This may be replaced when dependencies are built.
