// Strong unit types used across the stack: durations, byte counts and data
// rates. Keeping these as distinct types (rather than raw integers) prevents
// the classic bits/bytes and ns/us confusion at API boundaries.
#pragma once

#include <chrono>
#include <concepts>
#include <cstdint>
#include <compare>
#include <ostream>

namespace stob {

/// Simulated time and durations, in nanoseconds. A plain strong wrapper is
/// used instead of std::chrono to keep event-queue keys trivially comparable
/// and cheap to hash.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration nanos(std::int64_t v) { return Duration(v); }
  static constexpr Duration micros(std::int64_t v) { return Duration(v * 1000); }
  static constexpr Duration millis(std::int64_t v) { return Duration(v * 1'000'000); }
  static constexpr Duration seconds(std::int64_t v) { return Duration(v * 1'000'000'000); }
  static constexpr Duration seconds_f(double v) {
    return Duration(static_cast<std::int64_t>(v * 1e9));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ns_ - b.ns_); }
  friend constexpr Duration operator*(Duration a, std::integral auto k) {
    return Duration(a.ns_ * static_cast<std::int64_t>(k));
  }
  friend constexpr Duration operator*(std::integral auto k, Duration a) { return a * k; }
  friend constexpr Duration operator*(Duration a, std::floating_point auto k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.ns_) * k));
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration(a.ns_ / k); }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d);

 private:
  std::int64_t ns_ = 0;
};

/// An absolute simulated time point (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint(t.ns_ + d.ns()); }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint(t.ns_ - d.ns()); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration(a.ns_ - b.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  static constexpr TimePoint zero() { return TimePoint(0); }
  static constexpr TimePoint max() { return TimePoint(INT64_MAX); }

  friend std::ostream& operator<<(std::ostream& os, TimePoint t);

 private:
  std::int64_t ns_ = 0;
};

/// Byte count. Signed so that differences are representable.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t v) : v_(v) {}

  static constexpr Bytes kilo(std::int64_t v) { return Bytes(v * 1000); }
  static constexpr Bytes kibi(std::int64_t v) { return Bytes(v * 1024); }
  static constexpr Bytes mega(std::int64_t v) { return Bytes(v * 1'000'000); }
  static constexpr Bytes mebi(std::int64_t v) { return Bytes(v * 1024 * 1024); }

  constexpr std::int64_t count() const { return v_; }
  constexpr std::int64_t bits() const { return v_ * 8; }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.v_ + b.v_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.v_ - b.v_); }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) { return Bytes(a.v_ * k); }
  friend constexpr Bytes operator/(Bytes a, std::int64_t k) { return Bytes(a.v_ / k); }
  constexpr Bytes& operator+=(Bytes o) { v_ += o.v_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { v_ -= o.v_; return *this; }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  friend std::ostream& operator<<(std::ostream& os, Bytes b);

 private:
  std::int64_t v_ = 0;
};

/// Data rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr explicit DataRate(std::int64_t bps) : bps_(bps) {}

  static constexpr DataRate bps(std::int64_t v) { return DataRate(v); }
  static constexpr DataRate kbps(std::int64_t v) { return DataRate(v * 1000); }
  static constexpr DataRate mbps(std::int64_t v) { return DataRate(v * 1'000'000); }
  static constexpr DataRate gbps(std::int64_t v) { return DataRate(v * 1'000'000'000); }

  constexpr std::int64_t bits_per_sec() const { return bps_; }
  constexpr double mbps_f() const { return static_cast<double>(bps_) / 1e6; }
  constexpr double gbps_f() const { return static_cast<double>(bps_) / 1e9; }
  constexpr bool is_zero() const { return bps_ == 0; }

  /// Time to serialise `b` bytes at this rate. Rounds up to whole ns so a
  /// non-empty packet never serialises in zero time.
  constexpr Duration transmit_time(Bytes b) const {
    if (bps_ <= 0) return Duration::seconds(3600);  // effectively "never"
    const std::int64_t bits = b.bits();
    const std::int64_t ns = (bits * 1'000'000'000 + bps_ - 1) / bps_;
    return Duration(ns);
  }

  /// Bytes that can be sent over `d` at this rate. Computed in double to
  /// avoid overflow for large rate*duration products.
  constexpr Bytes bytes_in(Duration d) const {
    return Bytes(static_cast<std::int64_t>(static_cast<double>(bps_) / 8.0 * d.sec()));
  }

  friend constexpr DataRate operator*(DataRate r, double k) {
    return DataRate(static_cast<std::int64_t>(static_cast<double>(r.bps_) * k));
  }
  friend constexpr auto operator<=>(DataRate, DataRate) = default;

  /// Rate implied by sending `b` bytes over duration `d`.
  static constexpr DataRate from(Bytes b, Duration d) {
    if (d.ns() <= 0) return DataRate(INT64_MAX);
    return DataRate(b.bits() * 1'000'000'000 / d.ns());
  }

  friend std::ostream& operator<<(std::ostream& os, DataRate r);

 private:
  std::int64_t bps_ = 0;
};

}  // namespace stob
