#include "wf/random_forest.hpp"

#include <algorithm>
#include <stdexcept>

#include "exp/worker_pool.hpp"
#include "wf/simd_kernels.hpp"

namespace stob::wf {

void RandomForest::fit(const TrainView& view) {
  if (view.size() == 0) throw std::invalid_argument("RandomForest::fit: empty data");
  num_classes_ = view.num_classes;
  trees_.assign(cfg_.num_trees, DecisionTree(cfg_.tree));

  // Fork every tree's RNG from the root stream serially, in tree order:
  // tree t's stream is a function of (seed, t) alone, so the parallel
  // schedule below cannot change what any tree sees.
  Rng rng(cfg_.seed);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(cfg_.num_trees);
  for (std::size_t t = 0; t < cfg_.num_trees; ++t) tree_rngs.push_back(rng.fork());

  const auto n = view.size();
  const auto sample_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg_.bootstrap_fraction * static_cast<double>(n)));
  exp::run_ordered<char>(cfg_.num_trees, cfg_.fit_jobs, [&](std::size_t t) {
    Rng tree_rng = tree_rngs[t];
    std::vector<std::size_t> indices(sample_n);
    for (std::size_t& i : indices) {
      i = static_cast<std::size_t>(tree_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    trees_[t].fit(view, indices, tree_rng);
    return char{0};
  });

  flatten();
}

void RandomForest::flatten() {
  flat_ = Flat{};
  std::size_t total_nodes = 0;
  std::size_t total_dists = 0;
  for (const DecisionTree& tree : trees_) {
    total_nodes += tree.nodes().size();
    total_dists += tree.dists().size();
  }
  flat_.nodes.reserve(total_nodes);
  flat_.dists.reserve(total_dists);
  flat_.tree_base.reserve(trees_.size() + 1);

  for (const DecisionTree& tree : trees_) {
    const auto node_base = static_cast<std::uint32_t>(flat_.nodes.size());
    const auto dist_base = static_cast<std::uint32_t>(flat_.dists.size());
    flat_.tree_base.push_back(node_base);
    for (const DecisionTree::Node& nd : tree.nodes()) {
      FlatNode fn;
      fn.threshold = nd.threshold;
      fn.feature = nd.feature;
      if (nd.feature >= 0) {
        fn.kid[0] = node_base + nd.left;
        fn.kid[1] = node_base + nd.right;
      } else {
        fn.kid[0] = dist_base + nd.dist_offset;
        fn.kid[1] = static_cast<std::uint32_t>(nd.majority);
      }
      flat_.nodes.push_back(fn);
    }
    flat_.dists.insert(flat_.dists.end(), tree.dists().begin(), tree.dists().end());
  }
  flat_.tree_base.push_back(static_cast<std::uint32_t>(flat_.nodes.size()));
}

std::uint32_t RandomForest::descend_flat(std::uint32_t root, const double* x) const {
  const FlatNode* nodes = flat_.nodes.data();
  std::uint32_t cur = root;
  while (nodes[cur].feature >= 0) {
    const FlatNode& nd = nodes[cur];
    cur = nd.kid[!(x[static_cast<std::size_t>(nd.feature)] <= nd.threshold)];
  }
  return cur;
}

int RandomForest::predict(std::span<const double> x) const {
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  const std::size_t num_trees = trees_.size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::uint32_t leaf = descend_flat(flat_.tree_base[t], x.data());
    votes[flat_.nodes[leaf].kid[1]] += 1;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> RandomForest::predict_proba(std::span<const double> x) const {
  const auto classes = static_cast<std::size_t>(num_classes_);
  std::vector<double> acc(classes, 0.0);
  const std::size_t num_trees = trees_.size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::uint32_t leaf = descend_flat(flat_.tree_base[t], x.data());
    const double* dist = flat_.dists.data() + flat_.nodes[leaf].kid[0];
    for (std::size_t c = 0; c < classes; ++c) acc[c] += dist[c];
  }
  for (double& v : acc) v /= static_cast<double>(num_trees);
  return acc;
}

std::vector<std::uint32_t> RandomForest::leaf_vector(std::span<const double> x) const {
  std::vector<std::uint32_t> leaves;
  const std::size_t num_trees = trees_.size();
  leaves.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    leaves.push_back(descend_flat(flat_.tree_base[t], x.data()) - flat_.tree_base[t]);
  }
  return leaves;
}

namespace {
constexpr std::size_t kBlock = 512;  // samples walked per tree pass (block rows stay L2-resident)
}

std::vector<int> RandomForest::predict_batch(const FeatureMatrix& x) const {
  const std::size_t rows = x.rows();
  const std::size_t stride = x.row_stride();
  const auto classes = static_cast<std::size_t>(num_classes_);
  const std::size_t num_trees = trees_.size();
  std::vector<int> out(rows, 0);
  std::vector<int> votes(kBlock * classes);
  std::uint32_t leaves[kBlock];
  for (std::size_t lo = 0; lo < rows; lo += kBlock) {
    const std::size_t m = std::min(rows - lo, kBlock);
    const double* base = x.data() + lo * stride;
    std::fill(votes.begin(), votes.begin() + static_cast<std::ptrdiff_t>(m * classes), 0);
    for (std::size_t t = 0; t < num_trees; ++t) {
      kernels::descend_block(flat_.nodes.data(), flat_.tree_base[t], base, stride, m, leaves);
      for (std::size_t r = 0; r < m; ++r) votes[r * classes + flat_.nodes[leaves[r]].kid[1]] += 1;
    }
    for (std::size_t r = 0; r < m; ++r) {
      const int* v = votes.data() + r * classes;
      std::size_t best = 0;
      for (std::size_t c = 1; c < classes; ++c) {
        if (v[c] > v[best]) best = c;  // first max wins, like max_element
      }
      out[lo + r] = static_cast<int>(best);
    }
  }
  return out;
}

std::vector<double> RandomForest::predict_proba_batch(const FeatureMatrix& x) const {
  const std::size_t rows = x.rows();
  const std::size_t stride = x.row_stride();
  const auto classes = static_cast<std::size_t>(num_classes_);
  const std::size_t num_trees = trees_.size();
  std::vector<double> out(rows * classes, 0.0);
  std::uint32_t leaves[kBlock];
  // Trees outer, samples inner: per sample the accumulation still happens
  // in tree order, so sums are bit-identical to the per-sample path.
  for (std::size_t lo = 0; lo < rows; lo += kBlock) {
    const std::size_t m = std::min(rows - lo, kBlock);
    const double* base = x.data() + lo * stride;
    for (std::size_t t = 0; t < num_trees; ++t) {
      kernels::descend_block(flat_.nodes.data(), flat_.tree_base[t], base, stride, m, leaves);
      for (std::size_t r = 0; r < m; ++r) {
        const double* dist = flat_.dists.data() + flat_.nodes[leaves[r]].kid[0];
        double* acc = out.data() + (lo + r) * classes;
        for (std::size_t c = 0; c < classes; ++c) acc[c] += dist[c];
      }
    }
  }
  for (double& v : out) v /= static_cast<double>(num_trees);
  return out;
}

void RandomForest::leaf_batch(const double* x, std::size_t stride, std::size_t rows,
                              std::uint32_t* out) const {
  const std::size_t num_trees = trees_.size();
  std::uint32_t leaves[kBlock];
  for (std::size_t lo = 0; lo < rows; lo += kBlock) {
    const std::size_t m = std::min(rows - lo, kBlock);
    const double* base = x + lo * stride;
    for (std::size_t t = 0; t < num_trees; ++t) {
      const std::uint32_t root = flat_.tree_base[t];
      kernels::descend_block(flat_.nodes.data(), root, base, stride, m, leaves);
      for (std::size_t r = 0; r < m; ++r) out[(lo + r) * num_trees + t] = leaves[r] - root;
    }
  }
}

std::vector<std::uint32_t> RandomForest::leaf_batch(const FeatureMatrix& x) const {
  std::vector<std::uint32_t> out(x.rows() * trees_.size(), 0);
  leaf_batch(x.data(), x.row_stride(), x.rows(), out.data());
  return out;
}

}  // namespace stob::wf
