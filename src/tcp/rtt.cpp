#include "tcp/rtt.hpp"

#include <algorithm>

namespace stob::tcp {

void RttEstimator::add_sample(Duration rtt) {
  if (rtt.ns() < 0) return;
  if (rtt < min_rtt_) min_rtt_ = rtt;
  if (!has_sample_) {
    has_sample_ = true;
    srtt_ = rtt;
    rttvar_ = Duration(rtt.ns() / 2);
  } else {
    // srtt = 7/8 srtt + 1/8 rtt ; rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
    const std::int64_t err = srtt_.ns() - rtt.ns();
    rttvar_ = Duration((3 * rttvar_.ns() + std::abs(err)) / 4);
    srtt_ = Duration((7 * srtt_.ns() + rtt.ns()) / 8);
  }
  const Duration candidate = srtt_ + std::max(Duration::millis(1), rttvar_ * 4);
  rto_ = std::clamp(candidate, cfg_.min_rto, cfg_.max_rto);
}

void RttEstimator::backoff() { rto_ = std::min(rto_ * 2, cfg_.max_rto); }

Bytes tso_autosize(DataRate pacing_rate, Bytes mss, Bytes tso_max, Duration target,
                   int min_segs) {
  if (pacing_rate.is_zero()) return tso_max;
  std::int64_t bytes = pacing_rate.bytes_in(target).count();
  const std::int64_t floor = min_segs * mss.count();
  bytes = std::clamp(bytes, floor, tso_max.count());
  // Quantise to whole MSS units (a TSO segment is a run of full packets).
  bytes = std::max<std::int64_t>(bytes / mss.count(), 1) * mss.count();
  return Bytes(bytes);
}

}  // namespace stob::tcp
