#include "util/subprocess.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <stdio.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>

namespace stob::util {

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t read_some(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

namespace {

constexpr char kFrameMagic[4] = {'S', 'F', '0', '1'};

void set_nonblock_cloexec(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    int rc;
    do {
      rc = ::close(fd);
    } while (rc < 0 && errno == EINTR);
    fd = -1;
  }
}

ExitStatus decode_status(int raw) {
  ExitStatus st;
  if (WIFEXITED(raw)) {
    st.exited = true;
    st.exit_code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    st.signaled = true;
    st.term_signal = WTERMSIG(raw);
  }
  return st;
}

/// Move `fd` onto `target` in the child, clearing FD_CLOEXEC (dup2 does,
/// except for the fd==target case which keeps the old flags).
void child_dup_onto(int fd, int target) {
  if (fd == target) {
    ::fcntl(fd, F_SETFD, 0);
    return;
  }
  ::dup2(fd, target);
  ::close(fd);
}

}  // namespace

void append_frame(std::string& out, std::string_view payload) {
  out.append(kFrameMagic, sizeof(kFrameMagic));
  const auto len = static_cast<std::uint32_t>(payload.size());
  char lenbuf[4] = {static_cast<char>(len & 0xff), static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  out.append(lenbuf, sizeof(lenbuf));
  out.append(payload);
}

bool write_frame(int fd, std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 8);
  append_frame(framed, payload);
  return write_all(fd, framed.data(), framed.size());
}

std::optional<std::string> parse_frame(std::string_view bytes) {
  if (bytes.size() < 8) return std::nullopt;
  if (::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[4 + i]));
  };
  const std::uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (bytes.size() < 8 + static_cast<std::size_t>(len)) return std::nullopt;
  return std::string(bytes.substr(8, len));
}

Subprocess Subprocess::spawn(const Options& opts) {
  const bool exec_mode = !opts.argv.empty();
  if (!exec_mode && !opts.child_fn) {
    throw std::runtime_error("Subprocess::spawn: neither argv nor child_fn given");
  }

  int result_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  if (opts.result_fd >= 0 && ::pipe(result_pipe) != 0) {
    throw std::runtime_error("Subprocess::spawn: pipe() failed");
  }
  if (opts.capture_stderr && ::pipe(err_pipe) != 0) {
    close_quietly(result_pipe[0]);
    close_quietly(result_pipe[1]);
    throw std::runtime_error("Subprocess::spawn: pipe() failed");
  }

  // Keep pending stdio out of the child: a fork()'d copy of a partially
  // filled stdout buffer would otherwise be flushed twice.
  ::fflush(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    close_quietly(result_pipe[0]);
    close_quietly(result_pipe[1]);
    close_quietly(err_pipe[0]);
    close_quietly(err_pipe[1]);
    throw std::runtime_error("Subprocess::spawn: fork() failed");
  }

  if (pid == 0) {
    // ---- child ----
    close_quietly(result_pipe[0]);
    close_quietly(err_pipe[0]);
    const int devnull = ::open("/dev/null", O_RDWR);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::dup2(devnull, STDOUT_FILENO);
      if (devnull > STDERR_FILENO) ::close(devnull);
    }
    if (opts.capture_stderr) child_dup_onto(err_pipe[1], STDERR_FILENO);
    if (result_pipe[1] >= 0) child_dup_onto(result_pipe[1], opts.result_fd);

    if (exec_mode) {
      std::vector<char*> argv;
      argv.reserve(opts.argv.size() + 1);
      for (const std::string& a : opts.argv) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      // exec failed: report on the captured stderr and die with the
      // conventional shell "command not found" code.
      ::dprintf(STDERR_FILENO, "Subprocess: execv(%s) failed: %s\n", argv[0],
                ::strerror(errno));
      ::_exit(127);
    }
    int code = 125;
    try {
      code = opts.child_fn(opts.result_fd);
    } catch (...) {
      ::dprintf(STDERR_FILENO, "Subprocess: child_fn threw\n");
      code = 125;
    }
    ::fflush(nullptr);
    ::_exit(code);
  }

  // ---- parent ----
  Subprocess p;
  p.pid_ = pid;
  close_quietly(result_pipe[1]);
  close_quietly(err_pipe[1]);
  p.result_fd_ = result_pipe[0];
  p.stderr_fd_ = err_pipe[0];
  if (p.result_fd_ >= 0) set_nonblock_cloexec(p.result_fd_);
  if (p.stderr_fd_ >= 0) set_nonblock_cloexec(p.stderr_fd_);
  return p;
}

Subprocess& Subprocess::operator=(Subprocess&& o) noexcept {
  if (this != &o) {
    if (running()) {
      kill(SIGKILL);
      wait();
    }
    close_quietly(result_fd_);
    close_quietly(stderr_fd_);
    pid_ = o.pid_;
    result_fd_ = o.result_fd_;
    stderr_fd_ = o.stderr_fd_;
    reaped_ = o.reaped_;
    status_ = o.status_;
    o.pid_ = -1;
    o.result_fd_ = -1;
    o.stderr_fd_ = -1;
    o.reaped_ = false;
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (running()) {
    kill(SIGKILL);
    wait();
  }
  close_quietly(result_fd_);
  close_quietly(stderr_fd_);
}

void Subprocess::close_result_fd() { close_quietly(result_fd_); }
void Subprocess::close_stderr_fd() { close_quietly(stderr_fd_); }

void Subprocess::kill(int sig) {
  if (running()) ::kill(pid_, sig);
}

ExitStatus Subprocess::wait() {
  if (reaped_ || pid_ <= 0) return status_;
  int raw = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &raw, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc == pid_) status_ = decode_status(raw);
  reaped_ = true;
  return status_;
}

std::optional<ExitStatus> Subprocess::try_wait() {
  if (reaped_) return status_;
  if (pid_ <= 0) return std::nullopt;
  int raw = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &raw, WNOHANG);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) return std::nullopt;
  if (rc == pid_) status_ = decode_status(raw);
  reaped_ = true;
  return status_;
}

std::string self_exe_path(const std::string& fallback) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return fallback;
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace stob::util
