// TCP end-to-end tests over the simulated stack: handshake, bulk transfer,
// loss recovery, flow control, teardown, pacing/TSO behaviour, and the
// reliability property sweep (every byte delivered exactly once in order,
// for a grid of network conditions and CCAs).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "stack/host_pair.hpp"
#include "tcp/bbr.hpp"
#include "tcp/congestion.hpp"
#include "tcp/cubic.hpp"
#include "tcp/reno.hpp"
#include "tcp/rtt.hpp"
#include "tcp/tcp_connection.hpp"

namespace stob::tcp {
namespace {

using stack::HostPair;

struct Transfer {
  HostPair hp;
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpConnection> client;
  TcpConnection* server_conn = nullptr;
  Bytes server_received;
  bool client_connected = false;
  bool server_closed = false;

  explicit Transfer(HostPair::Config cfg = HostPair::Config{},
                    TcpConnection::Config conn_cfg = TcpConnection::Config{})
      : hp(cfg) {
    listener = std::make_unique<TcpListener>(hp.server(), 80, conn_cfg);
    listener->set_accept_callback([this](TcpConnection& c) {
      server_conn = &c;
      c.on_data = [this](Bytes n) { server_received += n; };
      c.on_closed = [this] { server_closed = true; };
    });
    client = std::make_unique<TcpConnection>(hp.client(), conn_cfg);
    client->on_connected = [this] { client_connected = true; };
  }
};

TEST(TcpHandshake, Establishes) {
  Transfer t;
  t.client->connect(2, 80);
  t.hp.run();
  EXPECT_TRUE(t.client_connected);
  ASSERT_NE(t.server_conn, nullptr);
  EXPECT_EQ(t.client->state(), TcpConnection::State::Established);
  EXPECT_EQ(t.server_conn->state(), TcpConnection::State::Established);
}

TEST(TcpHandshake, SurvivesSynLoss) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(100), Duration::millis(5));
  cfg.path.forward.loss_rate = 0.5;  // drops SYNs with 50% probability
  Transfer t(cfg);
  t.client->connect(2, 80);
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_TRUE(t.client_connected);
}

TEST(TcpTransfer, SmallMessage) {
  Transfer t;
  t.client->connect(2, 80);
  t.client->send(Bytes(1000));
  t.hp.run();
  EXPECT_EQ(t.server_received.count(), 1000);
}

TEST(TcpTransfer, SendBeforeConnectIsBuffered) {
  Transfer t;
  t.client->send(Bytes(5000));  // buffered while still Closed/SynSent
  t.client->connect(2, 80);
  t.hp.run();
  EXPECT_EQ(t.server_received.count(), 5000);
}

TEST(TcpTransfer, BulkMegabyte) {
  Transfer t;
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(1));
  t.hp.run();
  EXPECT_EQ(t.server_received.count(), Bytes::mebi(1).count());
  EXPECT_EQ(t.client->stats().bytes_delivered.count(), Bytes::mebi(1).count());
}

TEST(TcpTransfer, SendBufferCapRespected) {
  TcpConnection::Config cc;
  cc.send_buffer = Bytes(10'000);
  Transfer t(HostPair::Config{}, cc);
  t.client->connect(2, 80);
  const Bytes accepted = t.client->send(Bytes(50'000));
  EXPECT_EQ(accepted.count(), 10'000);
}

TEST(TcpTransfer, ThroughputApproachesLinkRate) {
  // 100 Mbps, 10 ms one-way delay; 4 MB transfer should take just over
  // 4MB*8/100Mbps = 0.32 s once the window opens.
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(100), Duration::millis(10),
                                        Bytes::kibi(512));
  Transfer t(cfg);
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(4));
  // Step in 100 ms increments so the clock reflects completion time rather
  // than the run horizon.
  TimePoint horizon = TimePoint::zero();
  while (t.server_received < Bytes::mebi(4) && horizon < TimePoint(Duration::seconds(20).ns())) {
    horizon += Duration::millis(100);
    t.hp.run(horizon);
  }
  ASSERT_EQ(t.server_received.count(), Bytes::mebi(4).count());
  const double secs = t.hp.sim().now().sec();
  EXPECT_LT(secs, 2.0);
  const double mbps = Bytes::mebi(4).bits() / 1e6 / secs;
  EXPECT_GT(mbps, 40.0);  // at least 40% utilisation including slow start
}

TEST(TcpTransfer, DelayedAcksReduceAckCount) {
  Transfer t;
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(1));
  t.hp.run();
  ASSERT_NE(t.server_conn, nullptr);
  // Roughly one ACK per two MSS-sized packets, plus timer flushes.
  const auto acks = t.server_conn->stats().acks_sent;
  const auto packets = static_cast<std::uint64_t>(Bytes::mebi(1).count() / 1448);
  EXPECT_LT(acks, packets);
}

TEST(TcpLoss, RecoversFromForwardLoss) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10));
  cfg.path.forward.loss_rate = 0.02;
  Transfer t(cfg);
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(1));
  t.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(t.server_received.count(), Bytes::mebi(1).count());
  EXPECT_GT(t.client->stats().retransmissions, 0u);
}

TEST(TcpLoss, FastRetransmitTriggersBeforeRto) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10));
  cfg.path.forward.loss_rate = 0.01;
  Transfer t(cfg);
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(2));
  t.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(t.server_received.count(), Bytes::mebi(2).count());
  EXPECT_GT(t.client->stats().fast_retransmits, 0u);
}

TEST(TcpLoss, ReverseLossOnlyAffectsAcks) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10));
  cfg.path.backward.loss_rate = 0.05;  // ACK loss: cumulative acks tolerate it
  Transfer t(cfg);
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(1));
  t.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(t.server_received.count(), Bytes::mebi(1).count());
}

TEST(TcpClose, GracefulBothWays) {
  Transfer t;
  bool client_closed = false;
  t.client->on_closed = [&] { client_closed = true; };
  t.client->connect(2, 80);
  t.client->send(Bytes(10'000));
  // Close the client right away; the FIN must still trail the data.
  t.client->close();
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  // Client sent FIN; server conn is in CloseWait until it closes.
  ASSERT_NE(t.server_conn, nullptr);
  EXPECT_EQ(t.server_received.count(), 10'000);
  EXPECT_EQ(t.server_conn->state(), TcpConnection::State::CloseWait);
  t.server_conn->close();
  t.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(t.client->state(), TcpConnection::State::Done);
  EXPECT_EQ(t.server_conn->state(), TcpConnection::State::Done);
}

TEST(TcpClose, FinAfterBufferDrains) {
  Transfer t;
  t.client->connect(2, 80);
  t.client->send(Bytes(100'000));
  t.client->close();  // FIN must not cut the data short
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(t.server_received.count(), 100'000);
}

TEST(TcpFlowControl, ZeroWindowBlocksAndResumes) {
  TcpConnection::Config cc;
  cc.recv_buffer = Bytes(20'000);
  cc.auto_consume = false;  // server app does not read
  Transfer t(HostPair::Config{}, cc);
  t.client->connect(2, 80);
  t.client->send(Bytes(100'000));
  t.hp.run(TimePoint(Duration::seconds(5).ns()));
  ASSERT_NE(t.server_conn, nullptr);
  // Receiver buffer filled; sender blocked around the 20 kB mark.
  EXPECT_LE(t.server_received.count(), 21'000);
  EXPECT_GT(t.server_received.count(), 0);
  // App reads in rounds: each consume reopens the 20 kB window, so the
  // transfer completes after a few rounds.
  TimePoint horizon = t.hp.sim().now();
  for (int round = 0; round < 12 && t.server_received.count() < 100'000; ++round) {
    t.server_conn->consume(Bytes(100'000));
    horizon += Duration::seconds(10);
    t.hp.run(horizon);
  }
  EXPECT_EQ(t.server_received.count(), 100'000);
}

TEST(TcpBidirectional, DataBothWaysSimultaneously) {
  Transfer t;
  Bytes client_received;
  t.client->on_data = [&](Bytes n) { client_received += n; };
  t.listener->set_accept_callback([&t](TcpConnection& c) {
    t.server_conn = &c;
    c.on_data = [&t](Bytes n) { t.server_received += n; };
    c.on_connected = [&c] { c.send(Bytes(200'000)); };
  });
  t.client->connect(2, 80);
  t.client->send(Bytes(300'000));
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(t.server_received.count(), 300'000);
  EXPECT_EQ(client_received.count(), 200'000);
}

TEST(TcpTso, SuperSegmentsSplitOnWire) {
  Transfer t;
  std::int64_t max_wire_payload = 0;
  t.hp.path().forward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    max_wire_payload = std::max(max_wire_payload, p.payload.count());
  });
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(1));
  t.hp.run();
  EXPECT_EQ(t.server_received.count(), Bytes::mebi(1).count());
  // No wire packet may exceed the MSS even though the transport sent
  // multi-MSS TSO segments.
  EXPECT_LE(max_wire_payload, 1448);
  EXPECT_GT(t.hp.client().nic().tso_segments_split(), 0u);
}

TEST(TcpTso, DisabledSendsMssPackets) {
  TcpConnection::Config cc;
  cc.tso_enabled = false;
  Transfer t(HostPair::Config{}, cc);
  t.client->connect(2, 80);
  t.client->send(Bytes(200'000));
  t.hp.run();
  EXPECT_EQ(t.server_received.count(), 200'000);
  EXPECT_EQ(t.hp.client().nic().tso_segments_split(), 0u);
}

TEST(TcpNagle, CoalescesSmallWrites) {
  TcpConnection::Config cc;
  cc.nagle = true;
  Transfer t(HostPair::Config{}, cc);
  std::uint64_t data_packets = 0;
  t.hp.path().forward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    if (p.payload.count() > 0) ++data_packets;
  });
  t.client->connect(2, 80);
  t.hp.run();
  // 50 tiny writes in the same instant: Nagle allows one in-flight small
  // segment; the rest coalesce behind it.
  for (int i = 0; i < 50; ++i) t.client->send(Bytes(10));
  t.hp.run();
  EXPECT_EQ(t.server_received.count(), 500);
  EXPECT_LE(data_packets, 3u);
}

TEST(TcpRtt, SrttApproximatesPathRtt) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(100), Duration::millis(25));
  Transfer t(cfg);
  t.client->connect(2, 80);
  t.client->send(Bytes(500'000));
  t.hp.run();
  // Base RTT is 50 ms; allow serialisation/queueing/delack slack.
  EXPECT_GT(t.client->srtt().ms(), 45.0);
  EXPECT_LT(t.client->srtt().ms(), 120.0);
}

TEST(TcpStats, AccountingConsistent) {
  Transfer t;
  t.client->connect(2, 80);
  t.client->send(Bytes(250'000));
  t.hp.run();
  const auto& st = t.client->stats();
  EXPECT_EQ(st.bytes_delivered.count(), 250'000);
  EXPECT_GE(st.bytes_sent.count(), 250'000);  // includes retransmissions
  EXPECT_GT(st.segments_sent, 0u);
}

// ---------------------------------------------------------------- property
// Reliability sweep: for a grid of (cca, loss, rate, rtt) the stream is
// delivered exactly once, in order, no matter what.

using ReliabilityParams = std::tuple<std::string, double, int, int>;

class TcpReliability : public ::testing::TestWithParam<ReliabilityParams> {};

TEST_P(TcpReliability, DeliversExactlyOnce) {
  const auto& [cca, loss, mbps, rtt_ms] = GetParam();
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(mbps), Duration::millis(rtt_ms / 2),
                                        Bytes::kibi(256));
  cfg.path.forward.loss_rate = loss;
  cfg.path.backward.loss_rate = loss / 2;
  TcpConnection::Config cc;
  cc.cca = cca;
  Transfer t(cfg, cc);
  t.client->connect(2, 80);
  const Bytes payload = Bytes(300'000);
  t.client->send(payload);
  t.hp.run(TimePoint(Duration::seconds(120).ns()));
  EXPECT_EQ(t.server_received.count(), payload.count())
      << "cca=" << cca << " loss=" << loss << " mbps=" << mbps << " rtt=" << rtt_ms;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpReliability,
    ::testing::Combine(::testing::Values("reno", "cubic", "bbr"),
                       ::testing::Values(0.0, 0.01, 0.05),
                       ::testing::Values(10, 100),
                       ::testing::Values(10, 80)));

// -------------------------------------------------------- congestion units

TEST(RenoCc, SlowStartDoublesPerRtt) {
  RenoCc cc(Bytes(1000));
  const Bytes before = cc.cwnd();
  AckEvent ev;
  ev.newly_acked = before;  // a full window acked
  ev.srtt = Duration::millis(10);
  cc.on_ack(ev);
  EXPECT_EQ(cc.cwnd().count(), 2 * before.count());
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(RenoCc, LossHalvesWindow) {
  RenoCc cc(Bytes(1000));
  AckEvent ev;
  ev.newly_acked = Bytes(100'000);
  ev.srtt = Duration::millis(10);
  cc.on_ack(ev);
  const Bytes before = cc.cwnd();
  cc.on_loss(TimePoint::zero());
  EXPECT_EQ(cc.cwnd().count(), before.count() / 2);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(RenoCc, RtoResetsToOneMss) {
  RenoCc cc(Bytes(1000));
  cc.on_rto(TimePoint::zero());
  EXPECT_EQ(cc.cwnd().count(), 1000);
}

TEST(RenoCc, CongestionAvoidanceLinearGrowth) {
  RenoCc cc(Bytes(1000));
  cc.on_loss(TimePoint::zero());  // leave slow start
  const Bytes w0 = cc.cwnd();
  // One window's worth of acks -> roughly +1 MSS.
  std::int64_t acked = 0;
  while (acked < w0.count()) {
    AckEvent ev;
    ev.newly_acked = Bytes(1000);
    ev.srtt = Duration::millis(10);
    cc.on_ack(ev);
    acked += 1000;
  }
  EXPECT_NEAR(static_cast<double>(cc.cwnd().count() - w0.count()), 1000.0, 300.0);
}

TEST(RenoCc, PacingRateTracksWindow) {
  RenoCc cc(Bytes(1000));
  EXPECT_TRUE(cc.pacing_rate().is_zero());  // no srtt yet
  AckEvent ev;
  ev.newly_acked = Bytes(1000);
  ev.srtt = Duration::millis(10);
  cc.on_ack(ev);
  // cwnd 11000 bytes / 10 ms * 2 (slow start) = 17.6 Mbps.
  EXPECT_NEAR(cc.pacing_rate().mbps_f(), 17.6, 0.5);
}

TEST(CubicCc, GrowsAfterLossTowardsWmax) {
  CubicCc cc(Bytes(1000));
  // Exit slow start with a loss at 100 kB.
  AckEvent ev;
  ev.newly_acked = Bytes(90'000);
  ev.srtt = Duration::millis(20);
  ev.now = TimePoint::zero();
  cc.on_ack(ev);
  cc.on_loss(TimePoint::zero());
  const Bytes after_loss = cc.cwnd();
  EXPECT_LT(after_loss.count(), 100'000);
  // Feed acks over simulated time; window should recover.
  TimePoint now = TimePoint::zero();
  for (int i = 0; i < 200; ++i) {
    now += Duration::millis(20);
    AckEvent e;
    e.newly_acked = Bytes(10'000);
    e.srtt = Duration::millis(20);
    e.now = now;
    cc.on_ack(e);
  }
  EXPECT_GT(cc.cwnd().count(), after_loss.count());
}

TEST(CubicCc, RtoCollapsesWindow) {
  CubicCc cc(Bytes(1000));
  cc.on_rto(TimePoint::zero());
  EXPECT_EQ(cc.cwnd().count(), 1000);
}

TEST(BbrCc, LearnsBottleneckBandwidth) {
  BbrCc cc(Bytes(1000));
  TimePoint now = TimePoint::zero();
  for (int i = 0; i < 100; ++i) {
    now += Duration::millis(10);
    AckEvent ev;
    ev.now = now;
    ev.newly_acked = Bytes(12'500);
    ev.rtt_sample = Duration::millis(10);
    ev.srtt = Duration::millis(10);
    ev.delivery_rate = DataRate::mbps(10);
    ev.inflight = Bytes(12'500);
    cc.on_ack(ev);
  }
  EXPECT_EQ(cc.btlbw().bits_per_sec(), DataRate::mbps(10).bits_per_sec());
  EXPECT_EQ(cc.min_rtt().ms(), 10.0);
  EXPECT_NE(cc.mode(), BbrCc::Mode::Startup);  // full pipe detected
}

TEST(BbrCc, RtoKeepsModelAndStopsProbing) {
  BbrCc cc(Bytes(1000));
  AckEvent ev;
  ev.now = TimePoint(1);
  ev.delivery_rate = DataRate::mbps(10);
  ev.rtt_sample = Duration::millis(5);
  ev.srtt = Duration::millis(5);
  ev.newly_acked = Bytes(1000);
  cc.on_ack(ev);
  cc.on_rto(TimePoint(2));
  // The bandwidth model survives; the flow paces at the believed rate
  // without probing gain so the repair traffic cannot re-overrun the path.
  EXPECT_EQ(cc.btlbw().bits_per_sec(), DataRate::mbps(10).bits_per_sec());
  EXPECT_EQ(cc.mode(), BbrCc::Mode::ProbeBw);
  EXPECT_EQ(cc.pacing_rate().bits_per_sec(), DataRate::mbps(10).bits_per_sec());
}

TEST(BbrCc, RtoWithoutModelRestartsStartup) {
  BbrCc cc(Bytes(1000));
  cc.on_rto(TimePoint(1));
  EXPECT_TRUE(cc.btlbw().is_zero());
  EXPECT_EQ(cc.mode(), BbrCc::Mode::Startup);
}

TEST(CongestionFactory, KnownNamesAndUnknownThrows) {
  EXPECT_EQ(make_congestion_control("reno", Bytes(1448))->name(), "reno");
  EXPECT_EQ(make_congestion_control("cubic", Bytes(1448))->name(), "cubic");
  EXPECT_EQ(make_congestion_control("bbr", Bytes(1448))->name(), "bbr");
  EXPECT_THROW(make_congestion_control("vegas", Bytes(1448)), std::invalid_argument);
}

// -------------------------------------------------------------- RTT units

TEST(RttEstimator, FirstSampleInitialises) {
  RttEstimator est;
  est.add_sample(Duration::millis(100));
  EXPECT_EQ(est.srtt().ms(), 100.0);
  EXPECT_EQ(est.rttvar().ms(), 50.0);
  EXPECT_TRUE(est.has_sample());
}

TEST(RttEstimator, SmoothsTowardsSamples) {
  RttEstimator est;
  est.add_sample(Duration::millis(100));
  for (int i = 0; i < 50; ++i) est.add_sample(Duration::millis(20));
  EXPECT_NEAR(est.srtt().ms(), 20.0, 2.0);
}

TEST(RttEstimator, RtoRespectsMinimum) {
  RttEstimator est;  // default min 200 ms
  for (int i = 0; i < 20; ++i) est.add_sample(Duration::micros(100));
  EXPECT_GE(est.rto(), Duration::millis(200));
}

TEST(RttEstimator, BackoffDoubles) {
  RttEstimator est;
  est.add_sample(Duration::millis(100));
  const Duration before = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto().ns(), 2 * before.ns());
}

TEST(RttEstimator, MinRttTracked) {
  RttEstimator est;
  est.add_sample(Duration::millis(30));
  est.add_sample(Duration::millis(10));
  est.add_sample(Duration::millis(50));
  EXPECT_EQ(est.min_rtt().ms(), 10.0);
}

// ------------------------------------------------------------- TSO sizing

TEST(TsoAutosize, UnpacedUsesMax) {
  EXPECT_EQ(tso_autosize(DataRate(0), Bytes(1448), Bytes(65160)).count(), 65160);
}

TEST(TsoAutosize, TargetsOneMillisecond) {
  // 100 Mbps * 1 ms = 12500 bytes -> 8 MSS = 11584.
  const Bytes b = tso_autosize(DataRate::mbps(100), Bytes(1448), Bytes(65160));
  EXPECT_EQ(b.count(), (12500 / 1448) * 1448);
}

TEST(TsoAutosize, FloorsAtTwoMss) {
  const Bytes b = tso_autosize(DataRate::kbps(100), Bytes(1448), Bytes(65160));
  EXPECT_EQ(b.count(), 2 * 1448);
}

TEST(TsoAutosize, CapsAtMax) {
  const Bytes b = tso_autosize(DataRate::gbps(100), Bytes(1448), Bytes(65160));
  EXPECT_EQ(b.count(), 65160);
}

TEST(TsoAutosize, MultipleOfMss) {
  for (int mbps : {1, 10, 100, 1000, 10000}) {
    const Bytes b = tso_autosize(DataRate::mbps(mbps), Bytes(1448), Bytes(65160));
    EXPECT_EQ(b.count() % 1448, 0) << mbps;
  }
}

}  // namespace
}  // namespace stob::tcp
