// Tests for the parallel experiment engine (src/exp/): grid enumeration,
// job-keyed seeding, ordered worker-pool reduction, thread-local obs sink
// isolation, and the engine's central guarantee — N-thread output is
// byte-identical to 1-thread output (metrics snapshots and exported trace
// CSVs included).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"
#include "workload/website.hpp"

namespace stob::exp {
namespace {

// Small, fast site profiles (few objects, short pages) so engine tests run
// whole grids in well under a second.
std::vector<workload::SiteProfile> tiny_sites(std::size_t n) {
  std::vector<workload::SiteProfile> sites;
  for (std::size_t i = 0; i < n; ++i) {
    workload::SiteProfile s;
    s.name = "tiny" + std::to_string(i);
    s.html_mu = 8.5 + 0.3 * static_cast<double>(i);
    s.objects_mean = 3.0 + static_cast<double>(i);
    s.object_mu = 8.0;
    s.parallel_connections = 2;
    sites.push_back(s);
  }
  return sites;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------------- grid

TEST(ExperimentGrid, EnumeratesFullCartesianProduct) {
  ExperimentGrid grid;
  grid.sites = tiny_sites(3);
  grid.samples = 4;
  grid.defenses = {{"none", nullptr}, {"alt", nullptr}};
  grid.ccas = {"cubic", "reno", "bbr"};
  grid.base_seed = 7;
  EXPECT_EQ(grid.job_count(), 3u * 4u * 2u * 3u);

  const std::vector<JobSpec> jobs = grid.jobs();
  ASSERT_EQ(jobs.size(), grid.job_count());
  std::set<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> seen;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_LT(jobs[i].site, 3u);
    EXPECT_LT(jobs[i].sample, 4u);
    EXPECT_LT(jobs[i].defense, 2u);
    EXPECT_LT(jobs[i].cca, 3u);
    seen.insert({jobs[i].site, jobs[i].sample, jobs[i].defense, jobs[i].cca});
  }
  EXPECT_EQ(seen.size(), jobs.size());  // every coordinate distinct
}

TEST(ExperimentGrid, EmptyAxesContributeOnePoint) {
  ExperimentGrid grid;
  grid.sites = tiny_sites(2);
  grid.samples = 3;
  EXPECT_EQ(grid.job_count(), 6u);
  EXPECT_EQ(grid.job(5).site, 1u);
  EXPECT_EQ(grid.job(5).sample, 2u);
}

TEST(JobSeed, KeyedByIndexNotWorker) {
  // Pure function of (base, index); distinct across indices and bases.
  EXPECT_EQ(job_seed(1, 0), job_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(job_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(job_seed(41, 1), job_seed(42, 0));  // no (base, index) aliasing
}

TEST(JobSeed, NoCollisionsAcrossLargeIndexSpace) {
  // A colliding pair of jobs would silently produce duplicated samples, so
  // sweep a realistically large index space (far above any grid we run).
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 200000; ++i) seeds.insert(job_seed(20260808, i));
  EXPECT_EQ(seeds.size(), 200000u);
  // And across neighbouring bases at the same indices: resuming a sweep
  // under a tweaked base seed must not replay any old job's stream.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(seeds.count(job_seed(20260809, i))) << "base/index aliasing at " << i;
  }
}

// ------------------------------------------------------------ worker pool

TEST(WorkerPool, OrderedResultsForAnyThreadCount) {
  auto square = [](std::size_t i) { return i * i; };
  const std::vector<std::size_t> serial = run_ordered<std::size_t>(100, 1, square);
  for (std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run_ordered<std::size_t>(100, threads, square), serial);
  }
}

TEST(WorkerPool, PropagatesFirstException) {
  EXPECT_THROW(run_ordered<int>(64, 4,
                                [](std::size_t i) {
                                  if (i == 13) throw std::runtime_error("boom");
                                  return static_cast<int>(i);
                                }),
               std::runtime_error);
}

TEST(WorkerPool, JobErrorCarriesLowestFailingIndex) {
  // Failure semantics pinned for every execution path: the pool rethrows a
  // JobError for the *lowest* failing job index (deterministic across
  // scheduling), whose message names the index and the original error.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    try {
      run_ordered<int>(64, threads, [](std::size_t) -> int {
        throw std::runtime_error("boom");
      });
      FAIL() << "expected JobError at threads=" << threads;
    } catch (const JobError& e) {
      EXPECT_EQ(e.job_index(), 0u);
      const std::string what = e.what();
      EXPECT_NE(what.find("job 0"), std::string::npos) << what;
      EXPECT_NE(what.find("boom"), std::string::npos) << what;
    }
  }
}

TEST(WorkerPool, NonStdExceptionsAreWrappedToo) {
  try {
    run_ordered<int>(4, 2, [](std::size_t i) -> int {
      if (i == 2) throw 42;  // not derived from std::exception
      return static_cast<int>(i);
    });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.job_index(), 2u);
    EXPECT_NE(std::string(e.what()).find("unknown exception"), std::string::npos);
  }
}

TEST(WorkerPool, ExceptionNeverDeadlocksEvenWithManyThreads) {
  // More threads than jobs and a late-index failure: every worker must be
  // released and joined (the test finishing at all is the assertion).
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(run_ordered<int>(8, 16,
                                  [](std::size_t i) -> int {
                                    if (i >= 6) throw std::runtime_error("late");
                                    return static_cast<int>(i);
                                  }),
                 JobError);
  }
}

TEST(WorkerPool, RunGridNamesTheFailingCell) {
  // run_grid decorates the pool's JobError with the failing cell's grid
  // coordinates, so a crashing sweep names the exact (site, defense, ...)
  // combination instead of just an opaque index.
  class ThrowingDefense final : public defenses::TraceDefense {
   public:
    wf::Trace apply(const wf::Trace&, Rng&) const override {
      throw std::runtime_error("defense exploded");
    }
    std::string name() const override { return "thrower"; }
    std::string target() const override { return "TLS"; }
    std::string strategy() const override { return "Obfuscation"; }
    defenses::Manipulations manipulations() const override { return {}; }
  };
  ThrowingDefense thrower;
  ExperimentGrid grid;
  grid.sites = tiny_sites(2);
  grid.samples = 1;
  grid.defenses = {{"none", nullptr}, {"thrower", &thrower}};
  grid.base_seed = 5;
  RunOptions opts;
  opts.jobs = 2;
  try {
    run_grid(grid, opts);
    FAIL() << "expected the throwing defense to surface";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("defense exploded"), std::string::npos) << what;
    EXPECT_NE(what.find("cell"), std::string::npos) << what;
    EXPECT_NE(what.find("defense=thrower"), std::string::npos) << what;
    EXPECT_NE(what.find("site=tiny0"), std::string::npos) << what;
  }
}

TEST(WorkerPool, ZeroJobsAndMoreThreadsThanJobs) {
  EXPECT_TRUE((run_ordered<int>(0, 4, [](std::size_t) { return 1; }).empty()));
  const std::vector<int> r =
      run_ordered<int>(2, 16, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(r, (std::vector<int>{0, 1}));
}

// ----------------------------------------------- thread-local obs sinks

TEST(ThreadLocalObs, SinksAreIsolatedPerThread) {
  obs::MetricsRegistry main_reg;
  obs::ScopedMetrics guard(main_reg);
  obs::count("main.only");

  std::string worker_snapshot;
  bool worker_saw_null = false;
  std::thread worker([&] {
    // A fresh thread starts with no sinks, regardless of the main thread's.
    worker_saw_null = obs::metrics() == nullptr && obs::recorder() == nullptr;
    obs::MetricsRegistry reg;
    obs::ScopedMetrics inner(reg);
    obs::count("worker.only", 3);
    worker_snapshot = reg.snapshot();
  });
  worker.join();

  EXPECT_TRUE(worker_saw_null);
  EXPECT_EQ(worker_snapshot, "counter worker.only 3\n");
  EXPECT_EQ(main_reg.counter("main.only"), 1u);
  EXPECT_EQ(main_reg.counter("worker.only"), 0u);  // no cross-thread bleed
}

TEST(ThreadLocalObs, ParallelWorkersCountIntoOwnRegistries) {
  // TSan stress: many workers hammer the hooks concurrently, each into its
  // own scoped registry; every job must see exactly its own counts.
  const std::vector<std::uint64_t> totals =
      run_ordered<std::uint64_t>(64, 8, [](std::size_t i) {
        obs::MetricsRegistry reg;
        obs::ScopedMetrics guard(reg);
        const std::uint64_t n = 100 + i;
        for (std::uint64_t k = 0; k < n; ++k) {
          obs::count("job.ticks");
          obs::sample("job.value", static_cast<double>(k));
        }
        return reg.counter("job.ticks");
      });
  for (std::size_t i = 0; i < totals.size(); ++i) EXPECT_EQ(totals[i], 100 + i);
}

TEST(ThreadLocalObs, PacketIdScopeResetsAndRestores) {
  const std::uint64_t before = net::next_packet_id();
  {
    net::PacketIdScope scope;
    EXPECT_EQ(net::next_packet_id(), 1u);
    EXPECT_EQ(net::next_packet_id(), 2u);
  }
  EXPECT_EQ(net::next_packet_id(), before + 1);
}

// ----------------------------------------------------------- determinism

ExperimentGrid small_grid() {
  ExperimentGrid grid;
  grid.sites = tiny_sites(2);
  grid.samples = 2;
  grid.ccas = {"cubic", "reno"};
  grid.base_seed = 20260805;
  return grid;
}

TEST(EngineDeterminism, ParallelOutputByteIdenticalToSerial) {
  const ExperimentGrid grid = small_grid();
  RunOptions opts;
  opts.collect_metrics = true;
  opts.trace_capacity = 1 << 14;

  opts.jobs = 1;
  const std::vector<JobResult> serial = run_grid(grid, opts);
  opts.jobs = 8;
  const std::vector<JobResult> parallel = run_grid(grid, opts);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_identical(serial[i], parallel[i])) << "job " << i;
    EXPECT_FALSE(serial[i].metrics.empty());
    EXPECT_FALSE(serial[i].events.empty());
  }
  // The reduction (labeled dataset) is identical too.
  const wf::Dataset a = to_dataset(serial);
  const wf::Dataset b = to_dataset(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(a.trace(i), b.trace(i));
  }
}

TEST(EngineDeterminism, CheckDeterminismModePasses) {
  ExperimentGrid grid = small_grid();
  grid.ccas.clear();  // smaller grid: this mode runs everything twice
  RunOptions opts;
  opts.jobs = 4;
  opts.collect_metrics = true;
  opts.check_determinism = true;
  EXPECT_NO_THROW(run_grid(grid, opts));
}

TEST(EngineDeterminism, RepeatedSeededRunsExportIdenticalArtifacts) {
  // Two identical seeded runs must produce byte-identical
  // MetricsRegistry::snapshot() output and identical exported trace CSVs.
  const ExperimentGrid grid = small_grid();
  RunOptions opts;
  opts.jobs = 4;
  opts.collect_metrics = true;
  opts.trace_capacity = 1 << 14;

  const std::vector<JobResult> first = run_grid(grid, opts);
  const std::vector<JobResult> second = run_grid(grid, opts);
  ASSERT_EQ(first.size(), second.size());

  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].metrics, second[i].metrics) << "job " << i;

    obs::TraceRecorder rec_a(1 << 14), rec_b(1 << 14);
    for (const obs::PacketEvent& ev : first[i].events) rec_a.record(ev);
    for (const obs::PacketEvent& ev : second[i].events) rec_b.record(ev);
    const std::filesystem::path csv_a = dir / ("stob_exp_a_" + std::to_string(i) + ".csv");
    const std::filesystem::path csv_b = dir / ("stob_exp_b_" + std::to_string(i) + ".csv");
    rec_a.write_csv(csv_a);
    rec_b.write_csv(csv_b);
    const std::string bytes_a = read_file(csv_a);
    EXPECT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, read_file(csv_b)) << "job " << i;
    std::filesystem::remove(csv_a);
    std::filesystem::remove(csv_b);
  }
}

TEST(EngineDeterminism, CcaAxisChangesTraffic) {
  // Sanity that the CCA axis is actually applied: same site/sample/seed
  // under cubic vs reno should not produce identical packet traces for a
  // multi-object page (different cwnd growth => different segmentation).
  ExperimentGrid grid;
  grid.sites = tiny_sites(1);
  grid.sites[0].objects_mean = 12.0;  // enough traffic for CCAs to diverge
  grid.samples = 1;
  grid.ccas = {"cubic", "bbr"};
  grid.base_seed = 99;
  RunOptions opts;
  opts.jobs = 2;
  const std::vector<JobResult> results = run_grid(grid, opts);
  ASSERT_EQ(results.size(), 2u);
  // Job seeds differ (index-keyed), so compare only that both completed and
  // produced traffic; the axis plumbing is what's under test.
  EXPECT_FALSE(results[0].trace.empty());
  EXPECT_FALSE(results[1].trace.empty());
}


// ------------------------------------------------- profiled worker pool

TEST(ProfiledPool, ParallelStructureMatchesSerial) {
  // With a profiler installed, run_ordered records per-job spans under
  // deterministic sub-domain ids; the exported structure (ids, parents,
  // depths, names) must be byte-identical for any worker count.
  auto capture = [](std::size_t threads) {
    obs::Profiler prof(99);
    obs::ScopedProfiler guard(prof);
    std::vector<int> results;
    {
      obs::ProfSpan span("batch");
      results = run_ordered<int>(6, threads, [](std::size_t i) {
        obs::ProfSpan outer("work");
        obs::ProfSpan inner(i % 2 == 0 ? "even" : "odd");
        return static_cast<int>(i * i);
      });
    }
    return std::make_pair(prof.structure(), results);
  };
  const auto serial = capture(1);
  const auto parallel = capture(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_NE(serial.first.find(" batch\n"), std::string::npos);
  EXPECT_NE(serial.first.find(" job\n"), std::string::npos);
  EXPECT_NE(serial.first.find(" even\n"), std::string::npos);
}

TEST(ProfiledPool, ParallelMetricsMergeDeterministic) {
  // Jobs observe into per-job registries which the pool merges in index
  // order into the caller's registry: the final snapshot must not depend on
  // the worker count. Pool timing metrics go to the profiler's harness
  // registry instead, so they never pollute the deterministic snapshot.
  auto run = [](std::size_t threads) {
    obs::MetricsRegistry metrics;
    obs::ScopedMetrics mguard(metrics);
    obs::Profiler prof(7);
    obs::ScopedProfiler pguard(prof);
    run_ordered<int>(5, threads, [](std::size_t i) {
      if (obs::MetricsRegistry* m = obs::metrics()) {
        m->add("jobs.done", 1);
        m->observe("jobs.value", static_cast<double>(i));
      }
      return 0;
    });
    return std::make_pair(metrics.snapshot(), prof.harness().counter("exp.pool.jobs"));
  };
  const auto serial = run(1);
  const auto parallel = run(3);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_NE(serial.first.find("jobs.done"), std::string::npos);
  EXPECT_EQ(serial.second, 5u);
  EXPECT_EQ(parallel.second, 5u);
}

TEST(ProfiledPool, ParallelExceptionKeepsProfilerBalanced) {
  // A throwing job propagates out of run_ordered; the caller's profiler
  // must come back with every span closed so the export stays well-formed.
  obs::Profiler prof;
  obs::ScopedProfiler guard(prof);
  EXPECT_THROW(
      {
        obs::ProfSpan span("batch");
        run_ordered<int>(8, 3, [](std::size_t i) -> int {
          obs::ProfSpan work("job.work");
          if (i == 4) throw std::runtime_error("boom");
          return static_cast<int>(i);
        });
      },
      std::runtime_error);
  EXPECT_EQ(prof.open_depth(), 0u);
  for (const obs::ProfRecord& r : prof.records()) EXPECT_GE(r.wall_ns, 0);
}

// ---------------------------------------------------------------- parse_cli
//
// The CLI contract: unknown flags are hard errors (a typo must not silently
// run a benchmark with default settings), value flags demand a value,
// --jobs must be numeric, duplicates take the last value, and harnesses can
// register extra flags.

namespace {
Cli parse(std::vector<const char*> argv, const std::vector<FlagSpec>& extra = {}) {
  argv.insert(argv.begin(), "prog");
  return parse_cli(static_cast<int>(argv.size()),
                   const_cast<char**>(const_cast<const char**>(argv.data())), extra);
}
}  // namespace

TEST(ParseCli, ParsesSharedFlagsBothSpellings) {
  const Cli a = parse({"--jobs", "4", "--check-determinism", "--manifest", "m.json"});
  EXPECT_EQ(a.jobs, 4u);
  EXPECT_TRUE(a.check_determinism);
  EXPECT_EQ(a.manifest_path, "m.json");
  EXPECT_TRUE(a.profile());

  const Cli b = parse({"--jobs=8", "--trace-events=t.json"});
  EXPECT_EQ(b.jobs, 8u);
  EXPECT_EQ(b.trace_events_path, "t.json");
}

TEST(ParseCli, UnknownFlagIsHardError) {
  EXPECT_THROW(parse({"--job", "4"}), std::invalid_argument);       // typo
  EXPECT_THROW(parse({"--frobnicate"}), std::invalid_argument);
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(ParseCli, MissingOrForbiddenValueIsHardError) {
  EXPECT_THROW(parse({"--jobs"}), std::invalid_argument);           // no value
  EXPECT_THROW(parse({"--manifest"}), std::invalid_argument);
  EXPECT_THROW(parse({"--check-determinism=yes"}), std::invalid_argument);
}

TEST(ParseCli, NonNumericJobsIsHardError) {
  EXPECT_THROW(parse({"--jobs", "four"}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs", "4x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs", ""}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs", "-2"}), std::invalid_argument);
}

TEST(ParseCli, DuplicateFlagLastWins) {
  const Cli cli = parse({"--jobs", "2", "--jobs", "6", "--manifest=a", "--manifest=b"});
  EXPECT_EQ(cli.jobs, 6u);
  EXPECT_EQ(cli.manifest_path, "b");
}

TEST(ParseCli, DuplicateFlagWarningGoesToStderrNeverStdout) {
  // The drivers' byte-identity checks diff stdout, so the last-wins warning
  // must land on stderr only — and unconditionally, independent of the log
  // threshold (regression: it used to go through the leveled logger).
  const log::Level saved = log::level();
  log::set_level(log::Level::Off);
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const Cli cli = parse({"--jobs", "2", "--jobs", "6"});
  const std::string out = ::testing::internal::GetCapturedStdout();
  const std::string err = ::testing::internal::GetCapturedStderr();
  log::set_level(saved);
  EXPECT_EQ(cli.jobs, 6u);
  EXPECT_EQ(out, "");
  EXPECT_NE(err.find("--jobs given more than once"), std::string::npos);
}

TEST(ParseCli, CacheFlags) {
  ::unsetenv("STOB_CACHE");
  const Cli off = parse({"--jobs", "2"});
  EXPECT_EQ(off.cache_dir, "");
  EXPECT_FALSE(off.cache_stats);
  EXPECT_FALSE(off.cache_gc);

  const Cli on = parse({"--cache", "/tmp/c", "--cache-stats", "--cache-gc", "512M"});
  EXPECT_EQ(on.cache_dir, "/tmp/c");
  EXPECT_TRUE(on.cache_stats);
  EXPECT_TRUE(on.cache_gc);
  EXPECT_EQ(on.cache_gc_limit, 512ull << 20);

  EXPECT_EQ(parse({"--cache-gc=1K", "--cache=d"}).cache_gc_limit, 1024u);
  EXPECT_EQ(parse({"--cache-gc=2g", "--cache=d"}).cache_gc_limit, 2ull << 30);
  EXPECT_EQ(parse({"--cache-gc=0", "--cache=d"}).cache_gc_limit, 0u);
  EXPECT_THROW(parse({"--cache-gc", "10X", "--cache=d"}), std::invalid_argument);
  EXPECT_THROW(parse({"--cache-gc", "", "--cache=d"}), std::invalid_argument);
  EXPECT_THROW(parse({"--cache-gc", "K", "--cache=d"}), std::invalid_argument);
}

TEST(ParseCli, CacheEnvDefaultAndNoCacheOverride) {
  ::setenv("STOB_CACHE", "/tmp/envcache", 1);
  EXPECT_EQ(parse({}).cache_dir, "/tmp/envcache");
  EXPECT_EQ(parse({"--cache", "/tmp/flag"}).cache_dir, "/tmp/flag");
  EXPECT_EQ(parse({"--no-cache"}).cache_dir, "");
  // --no-cache beats --cache regardless of order: it exists so CI can force
  // a cold run against any inherited environment.
  EXPECT_EQ(parse({"--no-cache", "--cache", "/tmp/flag"}).cache_dir, "");
  ::unsetenv("STOB_CACHE");
  EXPECT_EQ(parse({}).cache_dir, "");
}

TEST(ParseCli, CacheStatsAndGcRequireACache) {
  ::unsetenv("STOB_CACHE");
  EXPECT_THROW(parse({"--cache-stats"}), std::invalid_argument);
  EXPECT_THROW(parse({"--cache-gc", "1G"}), std::invalid_argument);
  EXPECT_THROW(parse({"--no-cache", "--cache=d", "--cache-stats"}), std::invalid_argument);
}

TEST(CacheSessionTest, WorkerModeNeverOpensTheCache) {
  Cli cli;
  cli.cache_dir = (std::filesystem::temp_directory_path() /
                   ("cache_session_worker_" + std::to_string(::getpid())))
                      .string();
  cli.worker_mode = true;
  const CacheSession session = CacheSession::from_cli(cli);
  EXPECT_EQ(session.cache(), nullptr);
  EXPECT_FALSE(std::filesystem::exists(cli.cache_dir));
  session.finish("test");  // disabled session: must be a no-op
}

TEST(ParseCli, ExtraFlagsRegisterAndParse) {
  const std::vector<FlagSpec> extra = {{"--pareto", true}, {"--smoke", false}};
  const Cli cli = parse({"--smoke", "--pareto", "out.csv"}, extra);
  EXPECT_TRUE(cli.has("--smoke"));
  EXPECT_EQ(cli.get("--pareto"), "out.csv");
  EXPECT_EQ(cli.get("--absent", "fallback"), "fallback");
  // Extra flags are only known when registered.
  EXPECT_THROW(parse({"--pareto", "out.csv"}), std::invalid_argument);
}

}  // namespace
}  // namespace stob::exp
