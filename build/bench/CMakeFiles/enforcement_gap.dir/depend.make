# Empty dependencies file for enforcement_gap.
# This may be replaced when dependencies are built.
