// Golden-trace regression corpus.
//
// Runs a canonical matrix of simulations — 3 in-stack defenses x
// {Reno, CUBIC, BBR} x {TCP page load, QUIC-lite push} x one adverse-mix
// fault profile — records every stack layer with a TraceRecorder, and
// compares the SHA-256 of the JSONL export against the hashes committed in
// tests/golden/hashes.txt.
//
// The corpus was recorded against the pre-overhaul (lazy-cancel
// priority_queue) simulator core, so any event-loop replacement must
// reproduce the seed behaviour byte-for-byte to pass. A hash mismatch
// means observable wire behaviour changed: either a bug, or an intentional
// semantic change that must be called out in review and re-recorded with
//   STOB_GOLDEN_UPDATE=1 ./build/tests/test_golden_trace
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cca_guard.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "obs/trace_recorder.hpp"
#include "quic/quic_connection.hpp"
#include "stack/host_pair.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

#ifndef STOB_GOLDEN_DIR
#error "STOB_GOLDEN_DIR must point at the committed golden corpus"
#endif

namespace stob {
namespace {

constexpr std::uint64_t kSeed = 0x601dE27Ace5ull;
constexpr std::size_t kRecorderCapacity = 1 << 20;

// One in-stack defense configuration. Policies are stateful (DelayPolicy
// carries an Rng and per-flow departure state), so each run builds a fresh
// chain; this bundles the ownership.
struct DefenseChain {
  std::string name;
  std::vector<std::unique_ptr<core::Policy>> owned;
  core::Policy* root = nullptr;  // nullptr = stock stack
};

DefenseChain make_defense(int which) {
  DefenseChain d;
  switch (which) {
    case 0:
      d.name = "none";
      break;
    case 1: {
      d.name = "split";
      d.owned.push_back(std::make_unique<core::SplitPolicy>());
      d.root = d.owned[0].get();
      break;
    }
    default: {
      // The paper's "Combined" point: split + delay, clamped by the CCA
      // guard so the policy can never outpace what the CCA alone allows.
      d.name = "split-delay-guard";
      d.owned.push_back(std::make_unique<core::SplitPolicy>());
      d.owned.push_back(std::make_unique<core::DelayPolicy>());
      auto composite = std::make_unique<core::CompositePolicy>(
          std::vector<core::Policy*>{d.owned[0].get(), d.owned[1].get()});
      auto guard = std::make_unique<core::CcaGuard>(*composite);
      d.root = guard.get();
      d.owned.push_back(std::move(composite));
      d.owned.push_back(std::move(guard));
      break;
    }
  }
  return d;
}

// Small fixed site so the corpus runs in milliseconds of wall clock but
// still exercises handshake, parallel connections, think time and objects.
workload::SiteProfile golden_site() {
  workload::SiteProfile site;
  site.name = "golden";
  site.html_mu = 9.6;
  site.objects_mean = 8.0;
  site.object_mu = 9.0;
  site.parallel_connections = 3;
  site.base_one_way_delay = Duration::millis(12);
  site.access_rate = DataRate::mbps(50);
  return site;
}

std::string run_tcp(const std::string& cca, core::Policy* policy) {
  net::PacketIdScope id_scope;  // packet ids restart at 1, like exp jobs
  Rng rng(kSeed);
  workload::PageLoadOptions opt;
  opt.client_conn.cca = cca;
  opt.server_conn.cca = cca;
  opt.server_conn.policy = policy;
  opt.tls_records = true;
  opt.path_faults = fault::PathProfile::symmetric(fault::adverse_mix());

  obs::TraceRecorder recorder(kRecorderCapacity);
  obs::ScopedRecorder scoped(recorder);
  const workload::PageLoadResult result = workload::run_page_load(golden_site(), rng, opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(recorder.overwritten(), 0u) << "golden recorder capacity too small";
  return recorder.to_jsonl();
}

std::string run_quic(const std::string& cca, core::Policy* policy) {
  net::PacketIdScope id_scope;  // packet ids restart at 1, like exp jobs
  stack::HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(12));
  stack::HostPair hp(cfg);
  fault::PathFaults faults(hp.sim(), hp.path(),
                           fault::PathProfile::symmetric(fault::adverse_mix()), Rng(kSeed));

  quic::QuicConnection::Config conn_cfg;
  conn_cfg.cca = cca;
  conn_cfg.policy = policy;

  obs::TraceRecorder recorder(kRecorderCapacity);
  obs::ScopedRecorder scoped(recorder);

  quic::QuicListener listener(hp.server(), 443, conn_cfg);
  listener.set_accept_callback([](quic::QuicConnection& c) {
    c.on_connected = [&c] {
      c.send_stream(0, Bytes::kibi(200));
      c.finish_stream(0);
      c.send_stream(4, Bytes::kibi(40));
      c.finish_stream(4);
    };
  });

  quic::QuicConnection client(hp.client(), quic::QuicConnection::Config{});
  Bytes received;
  client.on_stream_data = [&](std::uint64_t, Bytes n, bool) { received += n; };
  client.connect(hp.server().id(), 443);
  hp.run(TimePoint(Duration::seconds(60).ns()));

  EXPECT_EQ(received.count(), Bytes::kibi(240).count()) << "incomplete QUIC transfer";
  EXPECT_EQ(recorder.overwritten(), 0u) << "golden recorder capacity too small";
  return recorder.to_jsonl();
}

std::map<std::string, std::string> compute_corpus() {
  std::map<std::string, std::string> hashes;
  const std::vector<std::string> ccas = {"reno", "cubic", "bbr"};
  for (int defense = 0; defense < 3; ++defense) {
    for (const std::string& cca : ccas) {
      {
        DefenseChain chain = make_defense(defense);
        hashes["tcp." + cca + "." + chain.name + ".adverse-mix"] =
            util::sha256_hex(run_tcp(cca, chain.root));
      }
      {
        DefenseChain chain = make_defense(defense);
        hashes["quic." + cca + "." + chain.name + ".adverse-mix"] =
            util::sha256_hex(run_quic(cca, chain.root));
      }
    }
  }
  return hashes;
}

std::string golden_path() { return std::string(STOB_GOLDEN_DIR) + "/hashes.txt"; }

std::map<std::string, std::string> load_golden() {
  std::map<std::string, std::string> out;
  std::ifstream in(golden_path());
  std::string key, hash;
  while (in >> key >> hash) out[key] = hash;
  return out;
}

TEST(GoldenTrace, CanonicalMatrixUnchanged) {
  const std::map<std::string, std::string> corpus = compute_corpus();

  if (std::getenv("STOB_GOLDEN_UPDATE") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    for (const auto& [key, hash] : corpus) out << key << " " << hash << "\n";
    GTEST_SKIP() << "golden corpus re-recorded at " << golden_path();
  }

  const std::map<std::string, std::string> golden = load_golden();
  ASSERT_FALSE(golden.empty()) << "missing golden corpus " << golden_path()
                               << " — record it with STOB_GOLDEN_UPDATE=1";
  EXPECT_EQ(golden.size(), corpus.size());
  for (const auto& [key, hash] : corpus) {
    const auto it = golden.find(key);
    ASSERT_NE(it, golden.end()) << "no golden entry for " << key;
    EXPECT_EQ(it->second, hash)
        << "wire trace drifted for " << key
        << " — if intentional, re-record with STOB_GOLDEN_UPDATE=1";
  }
}

// The corpus is only as strong as its determinism: the same matrix point
// must hash identically across repeated in-process runs (fresh Rng, fresh
// policies, fresh simulator each time).
TEST(GoldenTrace, RunsAreDeterministic) {
  DefenseChain a = make_defense(2);
  const std::string first = run_tcp("cubic", a.root);
  DefenseChain b = make_defense(2);
  const std::string second = run_tcp("cubic", b.root);
  EXPECT_EQ(util::sha256_hex(first), util::sha256_hex(second));

  DefenseChain c = make_defense(1);
  const std::string qa = run_quic("bbr", c.root);
  DefenseChain d = make_defense(1);
  const std::string qb = run_quic("bbr", d.root);
  EXPECT_EQ(util::sha256_hex(qa), util::sha256_hex(qb));
}

}  // namespace
}  // namespace stob
