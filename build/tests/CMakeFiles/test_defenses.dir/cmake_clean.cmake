file(REMOVE_RECURSE
  "CMakeFiles/test_defenses.dir/test_defenses.cpp.o"
  "CMakeFiles/test_defenses.dir/test_defenses.cpp.o.d"
  "test_defenses"
  "test_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
