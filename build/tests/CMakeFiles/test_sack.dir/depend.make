# Empty dependencies file for test_sack.
# This may be replaced when dependencies are built.
