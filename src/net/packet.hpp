// Packet model.
//
// The simulator moves packet *metadata*, not payload bytes: a packet knows
// its flow, its header/payload sizes and its transport-level header fields
// (sequence numbers, flags, frames). This is exactly the information a
// website-fingerprinting adversary observes (plus the encrypted payload
// length), and it is sufficient to implement TCP/QUIC semantics, so nothing
// relevant is lost by not carrying data.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <variant>

#include "net/small_vec.hpp"
#include "util/units.hpp"

namespace stob::net {

using HostId = std::uint32_t;
using Port = std::uint16_t;

/// Transport protocol carried by a packet.
enum class Proto : std::uint8_t { Tcp, Udp };

/// 5-tuple identifying a flow, from the sender's perspective.
struct FlowKey {
  HostId src_host = 0;
  HostId dst_host = 0;
  Port src_port = 0;
  Port dst_port = 0;
  Proto proto = Proto::Tcp;

  /// The same flow as seen from the other endpoint.
  FlowKey reversed() const { return {dst_host, src_host, dst_port, src_port, proto}; }

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = k.src_host;
    h = h * 0x100000001B3ull ^ k.dst_host;
    h = h * 0x100000001B3ull ^ k.src_port;
    h = h * 0x100000001B3ull ^ k.dst_port;
    h = h * 0x100000001B3ull ^ static_cast<std::uint64_t>(k.proto);
    return static_cast<std::size_t>(h * 0x9E3779B97F4A7C15ull >> 16);
  }
};

// Wire overhead constants (Ethernet + IP + L4), in bytes.
inline constexpr std::int64_t kEthIpTcpHeader = 14 + 20 + 32;  // TCP w/ timestamps
inline constexpr std::int64_t kEthIpUdpHeader = 14 + 20 + 8;
inline constexpr std::int64_t kQuicShortHeader = 18;           // short hdr + PN + AEAD tag part
inline constexpr std::int64_t kDefaultMtu = 1500;
inline constexpr std::int64_t kDefaultMss = 1460;  // wire default before header opts
inline constexpr std::int64_t kMinTcpMss = 536;    // RFC 879 minimum default

/// TCP flag bits.
enum TcpFlags : std::uint8_t {
  kTcpSyn = 1 << 0,
  kTcpAck = 1 << 1,
  kTcpFin = 1 << 2,
  kTcpRst = 1 << 3,
};

/// TCP header fields relevant to the simulation. Sequence numbers are
/// absolute 64-bit stream offsets (no wraparound modelling needed).
struct TcpHeader {
  std::uint64_t seq = 0;       // first payload byte's stream offset
  std::uint64_t ack = 0;       // next expected byte (valid when kTcpAck set)
  std::uint8_t flags = 0;
  std::int64_t rwnd = 0;       // advertised receive window, bytes
  std::uint64_t ts_val = 0;    // timestamp option (echoed for RTT sampling)
  std::uint64_t ts_ecr = 0;
  /// SACK blocks: out-of-order byte ranges [first, second) the receiver
  /// holds (at most 3, newest first, as in the TCP SACK option). Inline
  /// capacity 3 means SACK never allocates.
  SmallVec<std::pair<std::uint64_t, std::uint64_t>, 3> sack;

  bool has(TcpFlags f) const { return (flags & f) != 0; }
};

/// QUIC frames carried in a UDP datagram, reduced to what the simulated
/// transport needs.
struct QuicStreamFrame {
  std::uint64_t stream_id = 0;
  std::uint64_t offset = 0;
  std::int64_t length = 0;
  bool fin = false;
};

struct QuicAckFrame {
  std::uint64_t largest_acked = 0;
  // Contiguously acked range [largest_acked - first_range, largest_acked].
  std::uint64_t first_range = 0;
};

struct QuicPaddingFrame {
  std::int64_t length = 0;  // bytes of padding (dummy data)
};

using QuicFrame = std::variant<QuicStreamFrame, QuicAckFrame, QuicPaddingFrame>;

/// A UDP datagram carrying one QUIC packet.
struct QuicHeader {
  std::uint64_t packet_number = 0;
  bool ack_eliciting = false;
  /// Inline capacity 4 covers the stream+ack+padding mixes the simulated
  /// transport emits; larger frame lists spill to the thread-local pool.
  SmallVec<QuicFrame, 4> frames;
};

/// One simulated packet. Copyable; taps copy the metadata they record.
struct Packet {
  std::uint64_t id = 0;  // globally unique, for tracing/debugging
  FlowKey flow;
  Bytes header;          // wire overhead (L2+L3+L4(+QUIC))
  Bytes payload;         // transport payload carried
  bool is_dummy = false; // defense-injected padding packet
  /// Payload damaged in transit (fault layer). The receiving host drops the
  /// packet at checksum validation instead of delivering it upward.
  bool corrupted = false;
  TimePoint enqueued_at; // stamped when handed to the qdisc
  TimePoint sent_at;     // stamped when serialisation onto the wire begins

  /// Earliest departure time (EDT), set by transport pacing and/or Stob
  /// policies; honoured by pacing-aware qdiscs (fq). Zero means "now".
  TimePoint not_before = TimePoint::zero();

  /// If > 0, this packet is a TSO super-segment: the NIC splits it into
  /// wire packets of at most `tso_mss` payload bytes each, sent back-to-back
  /// at line rate (the "micro burst" the paper describes).
  std::int64_t tso_mss = 0;

  std::variant<TcpHeader, QuicHeader> l4 = TcpHeader{};

  Bytes wire_size() const { return header + payload; }

  TcpHeader& tcp() { return std::get<TcpHeader>(l4); }
  const TcpHeader& tcp() const { return std::get<TcpHeader>(l4); }
  bool is_tcp() const { return std::holds_alternative<TcpHeader>(l4); }

  QuicHeader& quic() { return std::get<QuicHeader>(l4); }
  const QuicHeader& quic() const { return std::get<QuicHeader>(l4); }
  bool is_quic() const { return std::holds_alternative<QuicHeader>(l4); }
};

std::ostream& operator<<(std::ostream& os, const Packet& p);
std::ostream& operator<<(std::ostream& os, const FlowKey& k);

/// Per-thread packet id source (monotonic within a thread). Ids exist for
/// debugging and for correlating obs::PacketEvent rows within one
/// simulation; they are never compared across simulations. The counter is
/// thread-local so concurrent experiment workers neither contend on it nor
/// observe each other's allocations.
std::uint64_t next_packet_id();

/// RAII scope that resets the calling thread's packet id counter to 1 and
/// restores the previous value on exit. The experiment engine wraps each
/// job in one of these so a job's exported trace (which embeds packet ids)
/// is byte-identical no matter which worker ran it or what ran before.
class PacketIdScope {
 public:
  PacketIdScope();
  ~PacketIdScope();
  PacketIdScope(const PacketIdScope&) = delete;
  PacketIdScope& operator=(const PacketIdScope&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace stob::net
