file(REMOVE_RECURSE
  "CMakeFiles/figure3_throughput.dir/figure3_throughput.cpp.o"
  "CMakeFiles/figure3_throughput.dir/figure3_throughput.cpp.o.d"
  "figure3_throughput"
  "figure3_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
