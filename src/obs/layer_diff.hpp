// Per-layer enforcement-gap analysis.
//
// Given the flight-recorder events of one flow, this module aligns the
// per-layer TX sequences (TLS records -> TCP/QUIC segments -> qdisc
// releases -> NIC wire packets -> wire serialisation) by stream offset and
// reports how much each layer distorted the sequence the layer above
// emitted: unit-count ratios (segments merged/split), size mismatches, and
// added-delay percentiles. This is the paper's app-vs-wire "enforcement
// gap" as a library call, usable from tests, examples and every bench —
// bench/enforcement_gap consumes it instead of ad-hoc bookkeeping, so the
// bench and the library can never disagree.
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "obs/trace_recorder.hpp"
#include "util/csv.hpp"

namespace stob::obs {

/// Descriptive statistics of one layer's TX sequence for a flow.
struct LayerStats {
  Layer layer = Layer::App;
  std::size_t events = 0;
  std::int64_t bytes = 0;       ///< total payload bytes observed
  double mean_size = 0.0;       ///< bytes per unit
  // Inter-departure gaps between consecutive units, microseconds.
  double gap_mean_us = 0.0;
  double gap_std_us = 0.0;
  double gap_p50_us = 0.0;
  double gap_p90_us = 0.0;
  double gap_p99_us = 0.0;
};

/// Distortion introduced between two adjacent layers.
struct LayerTransition {
  Layer from = Layer::App;
  Layer to = Layer::App;
  std::size_t from_units = 0;   ///< distinct units (deduped by offset) above
  std::size_t to_units = 0;     ///< distinct units below
  double count_ratio = 0.0;     ///< to_units / from_units (>1 = splitting)
  double size_mismatch_pct = 0.0;  ///< % of from-units not re-emitted at identical (offset,size)
  std::uint64_t split_units = 0;   ///< from-units emitted as more than one to-unit
  std::uint64_t merged_units = 0;  ///< to-units spanning more than one from-unit
  // Added delay: to-unit time minus covering from-unit time, microseconds.
  double delay_p50_us = 0.0;
  double delay_p90_us = 0.0;
  double delay_p99_us = 0.0;

  /// True when this boundary changed the sequence at all (resizing,
  /// splitting, merging, or delaying it).
  bool distorted() const {
    return size_mismatch_pct > 0.0 || split_units > 0 || merged_units > 0 || delay_p50_us > 0.0;
  }
};

struct LayerDiffReport {
  net::FlowKey flow;
  std::vector<LayerStats> layers;            ///< stack order, present layers only
  std::vector<LayerTransition> transitions;  ///< between adjacent present layers

  const LayerStats* layer(Layer l) const;
  const LayerTransition* transition(Layer from, Layer to) const;

  /// Human-readable table.
  std::string to_string() const;

  /// CSV: one "layer" row per layer, one "transition" row per boundary.
  std::vector<csv::Row> to_csv_rows() const;
  void write_csv(const std::filesystem::path& path) const;
  /// JSONL: one object per layer and per transition.
  void write_jsonl(const std::filesystem::path& path) const;
};

/// TX-path events of `flow` at `layer` (payload-carrying only), time-ordered.
std::vector<PacketEvent> tx_events(std::span<const PacketEvent> events,
                                   const net::FlowKey& flow, Layer layer);

/// Inter-departure gaps (microseconds) between consecutive TX units of
/// `flow` observed at `layer`. The wire-layer version of this vector is what
/// bench/enforcement_gap scores against its target schedule.
std::vector<double> layer_gaps_us(std::span<const PacketEvent> events,
                                  const net::FlowKey& flow, Layer layer);

/// Build the per-layer report for one flow.
LayerDiffReport layer_diff(std::span<const PacketEvent> events, const net::FlowKey& flow);
LayerDiffReport layer_diff(const TraceRecorder& recorder, const net::FlowKey& flow);

/// Flows present in the events with their TX payload-event counts, busiest
/// first — convenient for picking the dominant data flow of a capture.
std::vector<std::pair<net::FlowKey, std::size_t>> flows_by_activity(
    std::span<const PacketEvent> events);

}  // namespace stob::obs
