// Traffic traces as a website-fingerprinting adversary records them: one
// (timestamp, direction, size) triple per packet, observed at a vantage
// point near the client (what tcpdump on the client's access link sees).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "net/path.hpp"
#include "util/units.hpp"

namespace stob::wf {

/// Direction convention follows the WF literature: +1 = outgoing (client to
/// server), -1 = incoming (server to client).
struct PacketRecord {
  double time = 0.0;      ///< seconds since the first packet of the trace
  int direction = 0;      ///< +1 outgoing, -1 incoming
  std::int64_t size = 0;  ///< wire size in bytes

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<PacketRecord> packets) : packets_(std::move(packets)) {}

  std::vector<PacketRecord>& packets() { return packets_; }
  const std::vector<PacketRecord>& packets() const { return packets_; }
  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }

  void add(double time, int direction, std::int64_t size) {
    packets_.push_back({time, direction, size});
  }

  /// Shift timestamps so the first packet is at t = 0 and sort by time
  /// (stable, so simultaneous packets keep capture order).
  void normalize();

  /// First `n` packets only (the censorship early-detection setting, §3).
  Trace truncated(std::size_t n) const;

  std::int64_t total_bytes() const;
  std::int64_t incoming_bytes() const;  ///< total download size (sanitiser key)
  std::int64_t outgoing_bytes() const;
  std::size_t incoming_count() const;
  std::size_t outgoing_count() const;
  double duration() const;  ///< seconds, 0 if fewer than 2 packets

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::vector<PacketRecord> packets_;
};

/// Labeled trace collection with serialisation, the unit the attack trains
/// and evaluates on.
class Dataset {
 public:
  void add(Trace trace, int label);

  std::size_t size() const { return traces_.size(); }
  const Trace& trace(std::size_t i) const { return traces_.at(i); }
  int label(std::size_t i) const { return labels_.at(i); }
  const std::vector<int>& labels() const { return labels_; }
  std::size_t num_classes() const;

  /// The paper's sanitisation: within each class, drop traces whose total
  /// download size falls outside the Tukey fence [Q1 - k*IQR, Q3 + k*IQR].
  Dataset sanitized_by_download_size(double k = 1.5) const;

  /// Per-class truncation to an equal number of samples (balanced classes).
  Dataset balanced(std::size_t per_class) const;

  /// Apply a transformation to every trace (defense application).
  template <typename Fn>
  Dataset transformed(Fn&& fn) const {
    Dataset out;
    for (std::size_t i = 0; i < traces_.size(); ++i) out.add(fn(traces_[i]), labels_[i]);
    return out;
  }

  /// CSV round trip. Format: trace_id,label,time,direction,size per packet.
  void save_csv(const std::filesystem::path& path) const;
  static Dataset load_csv(const std::filesystem::path& path);

 private:
  std::vector<Trace> traces_;
  std::vector<int> labels_;
};

/// Records a Trace from a DuplexPath at the client's vantage point:
/// departures on the forward (client->server) pipe count as outgoing,
/// arrivals on the backward pipe as incoming. Pure ACKs are recorded too —
/// the adversary sees every packet.
class TraceRecorder {
 public:
  explicit TraceRecorder(net::DuplexPath& path);

  /// Stop recording (detaches the taps).
  void detach();

  /// The recorded trace, normalised.
  Trace take();

  std::size_t packets_seen() const { return trace_.size(); }

 private:
  net::DuplexPath* path_;
  Trace trace_;
};

}  // namespace stob::wf
