// Tests for the Stob core: histogram distributions, built-in policies, the
// CCA guard invariant, the policy table, and end-to-end enforcement of
// policies through the live TCP stack.
#include <gtest/gtest.h>

#include <memory>

#include "core/cca_guard.hpp"
#include "core/histogram.hpp"
#include "core/policies.hpp"
#include "core/policy.hpp"
#include "core/policy_table.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"

namespace stob::core {
namespace {

SegmentContext make_ctx(std::int64_t cca_segment = 65160, std::int64_t mss = 1448,
                        std::int64_t departure_ns = 1'000'000) {
  SegmentContext ctx;
  ctx.flow = {1, 2, 40000, 443, net::Proto::Tcp};
  ctx.now = TimePoint(departure_ns);
  ctx.cca_segment = Bytes(cca_segment);
  ctx.mss = Bytes(mss);
  ctx.cca_departure = TimePoint(departure_ns);
  ctx.cca_pacing_rate = DataRate::gbps(1);
  return ctx;
}

// --------------------------------------------------------------- Histogram

TEST(Histogram, BinningAndTotals) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5, 3);
  h.add(9.9);
  EXPECT_EQ(h.total_tokens(), 5u);
  EXPECT_EQ(h.tokens(0), 1u);
  EXPECT_EQ(h.tokens(5), 3u);
  EXPECT_EQ(h.tokens(9), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.tokens(0), 1u);
  EXPECT_EQ(h.tokens(9), 1u);
}

TEST(Histogram, SampleWithinRange) {
  Histogram h(1.0, 3.0, 4);
  h.add(1.5, 10);
  h.add(2.5, 10);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = h.sample(rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 3.0);
  }
}

TEST(Histogram, SampleFollowsWeights) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5, 900);
  h.add(1.5, 100);
  Rng rng(7);
  int low = 0;
  for (int i = 0; i < 10000; ++i) low += h.sample(rng) < 1.0;
  EXPECT_NEAR(low / 10000.0, 0.9, 0.02);
}

TEST(Histogram, SampleEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  Rng rng(1);
  EXPECT_THROW(h.sample(rng), std::logic_error);
}

TEST(Histogram, SampleAndRemoveDrainsAndRefills) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3);
  Rng rng(2);
  for (int i = 0; i < 3; ++i) (void)h.sample_and_remove(rng);
  // Drained to zero -> refilled from the snapshot.
  EXPECT_EQ(h.total_tokens(), 3u);
}

TEST(Histogram, FitFromSamples) {
  std::vector<double> samples{0.1, 0.1, 0.9};
  const Histogram h = Histogram::fit(samples, 0.0, 1.0, 2);
  EXPECT_EQ(h.tokens(0), 2u);
  EXPECT_EQ(h.tokens(1), 1u);
}

TEST(Histogram, SerializeRoundTrip) {
  Histogram h(0.5, 4.5, 8);
  h.add(1.0, 5);
  h.add(4.0, 2);
  const Histogram back = Histogram::deserialize(h.serialize());
  EXPECT_EQ(back.lo(), 0.5);
  EXPECT_EQ(back.hi(), 4.5);
  EXPECT_EQ(back.total_tokens(), 7u);
  EXPECT_EQ(back.tokens(1), 5u);
}

TEST(Histogram, MeanMatchesTokens) {
  Histogram h(0.0, 10.0, 10);
  h.add(2.5, 1);
  h.add(7.5, 1);
  EXPECT_NEAR(h.mean(), 5.0, 1e-9);
}

TEST(Histogram, BadConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- policies

TEST(NullPolicy, Passthrough) {
  NullPolicy p;
  const SegmentContext ctx = make_ctx();
  const SegmentDecision d = p.on_segment(ctx);
  EXPECT_EQ(d.segment, ctx.cca_segment);
  EXPECT_EQ(d.wire_mss, ctx.mss);
  EXPECT_EQ(d.departure, ctx.cca_departure);
}

TEST(SplitPolicy, HalvesAboveThreshold) {
  SplitPolicy p;
  const SegmentDecision d = p.on_segment(make_ctx());
  EXPECT_EQ(d.wire_mss.count(), 724);  // ceil(1448 / 2)
}

TEST(SplitPolicy, LeavesSmallMssAlone) {
  SplitPolicy p;
  const SegmentDecision d = p.on_segment(make_ctx(65160, 1000));
  EXPECT_EQ(d.wire_mss.count(), 1000);
}

TEST(SplitPolicy, RespectsMinimumSize) {
  SplitPolicy p(SplitPolicy::Config{.threshold = 500, .min_size = 536});
  const SegmentDecision d = p.on_segment(make_ctx(65160, 900));
  EXPECT_EQ(d.wire_mss.count(), 536);  // half would be 450 < minimum
}

TEST(DelayPolicy, FirstSegmentUndelayed) {
  DelayPolicy p;
  const SegmentContext ctx = make_ctx();
  const SegmentDecision d = p.on_segment(ctx);
  EXPECT_EQ(d.departure, ctx.cca_departure);
}

TEST(DelayPolicy, InflatesGapWithinBounds) {
  DelayPolicy p;
  SegmentContext ctx = make_ctx();
  (void)p.on_segment(ctx);  // departure t=1ms recorded
  SegmentContext next = make_ctx();
  next.cca_departure = TimePoint(2'000'000);  // 1 ms gap
  next.now = next.cca_departure;
  for (int i = 0; i < 50; ++i) {
    DelayPolicy fresh;
    (void)fresh.on_segment(ctx);
    const SegmentDecision d = fresh.on_segment(next);
    const double inflation =
        static_cast<double>((d.departure - TimePoint(1'000'000)).ns()) / 1'000'000.0 - 1.0;
    EXPECT_GE(inflation, 0.10 - 1e-9);
    EXPECT_LE(inflation, 0.30 + 1e-9);
  }
}

TEST(DelayPolicy, AlwaysAtOrAfterCcaSchedule) {
  // Fed a fixed CCA schedule, every non-first departure lands strictly
  // after the CCA's own departure time and within the 30% inflation bound.
  // (In the live stack the transport's pacing feeds back the delayed
  // departure, so inflation compounds there; see StackEnforcement tests.)
  DelayPolicy p;
  for (int i = 0; i < 5; ++i) {
    SegmentContext ctx = make_ctx();
    ctx.cca_departure = TimePoint((i + 1) * 1'000'000);
    ctx.now = ctx.cca_departure;
    const TimePoint dep = p.on_segment(ctx).departure;
    if (i == 0) {
      EXPECT_EQ(dep, ctx.cca_departure);
    } else {
      EXPECT_GT(dep, ctx.cca_departure);
      EXPECT_LE(dep.ns(), ctx.cca_departure.ns() + 300'000);
    }
  }
}

TEST(DelayPolicy, FlowStateResetOnStart) {
  DelayPolicy p;
  SegmentContext ctx = make_ctx();
  (void)p.on_segment(ctx);
  p.on_flow_start(ctx.flow);
  // After reset, the "first segment" rule applies again.
  SegmentContext ctx2 = make_ctx();
  ctx2.cca_departure = TimePoint(9'000'000);
  const SegmentDecision d = p.on_segment(ctx2);
  EXPECT_EQ(d.departure, ctx2.cca_departure);
}

TEST(CompositePolicy, AppliesBothStages) {
  SplitPolicy split;
  DelayPolicy delay;
  CompositePolicy combo({&split, &delay});
  SegmentContext ctx = make_ctx();
  (void)combo.on_segment(ctx);
  SegmentContext next = make_ctx();
  next.cca_departure = TimePoint(2'000'000);
  next.now = next.cca_departure;
  const SegmentDecision d = combo.on_segment(next);
  EXPECT_EQ(d.wire_mss.count(), 724);                 // split applied
  EXPECT_GT(d.departure, next.cca_departure);         // delay applied
  EXPECT_EQ(combo.name(), "composite(split+delay)");
}

TEST(SweepSizePolicy, AlphaZeroIsPassthrough) {
  SweepSizePolicy p;
  const SegmentContext ctx = make_ctx();
  const SegmentDecision d = p.on_segment(ctx);
  EXPECT_EQ(d.segment, ctx.cca_segment);
  EXPECT_EQ(d.wire_mss, ctx.mss);
}

TEST(SweepSizePolicy, CyclesPacketSize) {
  SweepSizePolicy::Config cfg;
  cfg.alpha = 10;
  SweepSizePolicy p(cfg);
  std::vector<std::int64_t> sizes;
  for (int i = 0; i < 12; ++i) sizes.push_back(p.on_segment(make_ctx()).wire_mss.count());
  EXPECT_EQ(sizes[0], 1448);        // 1500 - 52
  EXPECT_EQ(sizes[1], 1438);        // one alpha step down
  EXPECT_EQ(sizes[10], 1348);       // 1500 - 10*10 - 52
  EXPECT_EQ(sizes[11], 1448);       // reset
}

TEST(SweepSizePolicy, TsoShrinksAndFloorsAtOneSegment) {
  SweepSizePolicy::Config cfg;
  cfg.alpha = 44;  // dec = 11 per step: 44, 33, 22, 11, 1, 1, ...
  SweepSizePolicy p(cfg);
  std::vector<std::int64_t> segs;
  for (int i = 0; i < 9; ++i) {
    const SegmentDecision d = p.on_segment(make_ctx());
    segs.push_back(d.segment.count() / d.wire_mss.count());
  }
  EXPECT_EQ(segs[0], 44);
  EXPECT_EQ(segs[1], 33);
  EXPECT_GE(segs[4], 1);
  for (std::int64_t s : segs) EXPECT_GE(s, 1);
}

TEST(HistogramDelayPolicy, AddsSampledDelay) {
  Histogram h(0.001, 0.002, 4);
  h.add(0.0015, 100);
  HistogramDelayPolicy p(std::move(h));
  const SegmentContext ctx = make_ctx();
  const SegmentDecision d = p.on_segment(ctx);
  const Duration added = d.departure - ctx.cca_departure;
  EXPECT_GE(added.sec(), 0.001);
  EXPECT_LE(added.sec(), 0.002);
}

// ---------------------------------------------------------------- CcaGuard

/// A deliberately aggressive policy: bigger segments, earlier departures.
class RoguePolicy final : public Policy {
 public:
  SegmentDecision on_segment(const SegmentContext& ctx) override {
    return {ctx.cca_segment * 2, ctx.mss * 2, ctx.cca_departure - Duration::millis(1)};
  }
  std::string name() const override { return "rogue"; }
};

TEST(CcaGuard, ClampsAggressiveDecisions) {
  RoguePolicy rogue;
  CcaGuard guard(rogue);
  const SegmentContext ctx = make_ctx();
  const SegmentDecision d = guard.on_segment(ctx);
  EXPECT_EQ(d.segment, ctx.cca_segment);
  EXPECT_EQ(d.wire_mss, ctx.mss);
  EXPECT_EQ(d.departure, ctx.cca_departure);
  EXPECT_EQ(guard.segment_clamps(), 1u);
  EXPECT_EQ(guard.mss_clamps(), 1u);
  EXPECT_EQ(guard.departure_clamps(), 1u);
}

TEST(CcaGuard, CompliantPolicyUntouched) {
  SplitPolicy split;
  CcaGuard guard(split);
  for (int i = 0; i < 10; ++i) (void)guard.on_segment(make_ctx());
  EXPECT_EQ(guard.segment_clamps(), 0u);
  EXPECT_EQ(guard.mss_clamps(), 0u);
  EXPECT_EQ(guard.departure_clamps(), 0u);
}

TEST(CcaGuard, PropertyNeverMoreAggressive) {
  // For a zoo of policies, the guarded decision never exceeds the CCA's
  // segment/mss and never departs earlier.
  RoguePolicy rogue;
  SplitPolicy split;
  DelayPolicy delay;
  SweepSizePolicy::Config sweep_cfg;
  sweep_cfg.alpha = 20;
  SweepSizePolicy sweep(sweep_cfg);
  std::vector<Policy*> zoo{&rogue, &split, &delay, &sweep};
  Rng rng(3);
  for (Policy* p : zoo) {
    CcaGuard guard(*p);
    for (int i = 0; i < 200; ++i) {
      SegmentContext ctx = make_ctx(rng.uniform_int(1448, 65160), 1448,
                                    rng.uniform_int(1, 100) * 1'000'000);
      const SegmentDecision d = guard.on_segment(ctx);
      ASSERT_LE(d.segment.count(), ctx.cca_segment.count()) << p->name();
      ASSERT_LE(d.wire_mss.count(), ctx.mss.count()) << p->name();
      ASSERT_GE(d.departure.ns(), ctx.cca_departure.ns()) << p->name();
      ASSERT_GE(d.segment.count(), 1) << p->name();
      ASSERT_GE(d.wire_mss.count(), 1) << p->name();
    }
  }
}

// ------------------------------------------------------------- PolicyTable

TEST(PolicyTable, PrecedenceOrder) {
  PolicyTable table;
  auto flow_p = std::make_shared<NullPolicy>();
  auto dst_p = std::make_shared<SplitPolicy>();
  auto def_p = std::make_shared<DelayPolicy>();
  const net::FlowKey flow{1, 2, 40000, 443, net::Proto::Tcp};

  table.set_default(def_p);
  EXPECT_EQ(table.lookup(flow), def_p.get());
  table.set_for_destination(2, dst_p);
  EXPECT_EQ(table.lookup(flow), dst_p.get());
  table.set_for_flow(flow, flow_p);
  EXPECT_EQ(table.lookup(flow), flow_p.get());

  table.clear_for_flow(flow);
  EXPECT_EQ(table.lookup(flow), dst_p.get());
  table.clear_for_destination(2);
  EXPECT_EQ(table.lookup(flow), def_p.get());
}

TEST(PolicyTable, UnmatchedIsNull) {
  PolicyTable table;
  EXPECT_EQ(table.lookup({1, 2, 3, 4, net::Proto::Tcp}), nullptr);
}

TEST(DispatchPolicy, PassthroughWhenUnmatched) {
  PolicyTable table;
  DispatchPolicy dispatch(table);
  const SegmentContext ctx = make_ctx();
  const SegmentDecision d = dispatch.on_segment(ctx);
  EXPECT_EQ(d.wire_mss, ctx.mss);
}

TEST(DispatchPolicy, RoutesToInstalledPolicy) {
  PolicyTable table;
  table.set_for_destination(2, std::make_shared<SplitPolicy>());
  DispatchPolicy dispatch(table);
  const SegmentDecision d = dispatch.on_segment(make_ctx());
  EXPECT_EQ(d.wire_mss.count(), 724);
}

// ------------------------------------------- end-to-end stack enforcement

struct PolicyTransfer {
  stack::HostPair hp;
  std::unique_ptr<tcp::TcpListener> listener;
  std::unique_ptr<tcp::TcpConnection> client;
  Bytes client_received;

  explicit PolicyTransfer(core::Policy* server_policy) {
    tcp::TcpConnection::Config server_cfg;
    server_cfg.policy = server_policy;
    listener = std::make_unique<tcp::TcpListener>(hp.server(), 443, server_cfg);
    listener->set_accept_callback([this](tcp::TcpConnection& c) {
      c.on_connected = [&c] { c.send(Bytes(500'000)); };  // server pushes data
    });
    tcp::TcpConnection::Config client_cfg;
    client = std::make_unique<tcp::TcpConnection>(hp.client(), client_cfg);
    client->on_data = [this](Bytes n) { client_received += n; };
    client->connect(2, 443);
  }
};

TEST(StackEnforcement, SplitPolicyShrinksWirePackets) {
  SplitPolicy split;
  PolicyTransfer t(&split);
  std::int64_t max_payload = 0;
  t.hp.path().backward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    max_payload = std::max(max_payload, p.payload.count());
  });
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(t.client_received.count(), 500'000);
  EXPECT_LE(max_payload, 724);  // every wire packet at most half the MSS
}

TEST(StackEnforcement, DelayPolicyStillDeliversEverything) {
  DelayPolicy delay;
  PolicyTransfer t(&delay);
  t.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(t.client_received.count(), 500'000);
}

TEST(StackEnforcement, GuardedRoguePolicyIsHarmless) {
  RoguePolicy rogue;
  CcaGuard guard(rogue);
  PolicyTransfer t(&guard);
  std::int64_t max_payload = 0;
  t.hp.path().backward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    max_payload = std::max(max_payload, p.payload.count());
  });
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(t.client_received.count(), 500'000);
  EXPECT_LE(max_payload, 1448);  // never above MSS despite the rogue policy
  EXPECT_GT(guard.mss_clamps(), 0u);
}

TEST(StackEnforcement, DelaySlowsCompletion) {
  // The same transfer takes measurably longer under an aggressive delay
  // policy than under the null policy.
  auto completion_time = [](core::Policy* p) {
    PolicyTransfer t(p);
    TimePoint horizon = TimePoint::zero();
    while (t.client_received.count() < 500'000 &&
           horizon < TimePoint(Duration::seconds(60).ns())) {
      horizon += Duration::millis(50);
      t.hp.run(horizon);
    }
    return t.hp.sim().now();
  };
  NullPolicy null;
  DelayPolicy::Config cfg;
  cfg.lo_frac = 0.25;
  cfg.hi_frac = 0.30;
  DelayPolicy slow(cfg);
  EXPECT_GT(completion_time(&slow).ns(), completion_time(&null).ns());
}

}  // namespace
}  // namespace stob::core
