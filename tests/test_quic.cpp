// QUIC-lite end-to-end tests: handshake, stream delivery, multiplexing,
// loss recovery via PN-threshold detection and PTO, pacing, Stob policy
// hooks at packetisation, and a reliability property sweep.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/cca_guard.hpp"
#include "core/policies.hpp"
#include "quic/quic_connection.hpp"
#include "stack/host_pair.hpp"

namespace stob::quic {
namespace {

using stack::HostPair;

struct QuicPair {
  HostPair hp;
  std::unique_ptr<QuicListener> listener;
  std::unique_ptr<QuicConnection> client;
  QuicConnection* server_conn = nullptr;
  Bytes server_received;
  bool server_fin = false;
  bool client_connected = false;

  explicit QuicPair(HostPair::Config cfg = HostPair::Config{},
                    QuicConnection::Config conn_cfg = QuicConnection::Config{}) : hp(cfg) {
    listener = std::make_unique<QuicListener>(hp.server(), 443, conn_cfg);
    listener->set_accept_callback([this](QuicConnection& c) {
      server_conn = &c;
      c.on_stream_data = [this](std::uint64_t, Bytes n, bool fin) {
        server_received += n;
        if (fin) server_fin = true;
      };
    });
    client = std::make_unique<QuicConnection>(hp.client(), conn_cfg);
    client->on_connected = [this] { client_connected = true; };
  }
};

TEST(QuicHandshake, Establishes) {
  QuicPair q;
  q.client->connect(2, 443);
  q.hp.run();
  EXPECT_TRUE(q.client_connected);
  EXPECT_TRUE(q.client->established());
  ASSERT_NE(q.server_conn, nullptr);
  EXPECT_TRUE(q.server_conn->established());
}

TEST(QuicHandshake, InitialIsPaddedTo1200) {
  QuicPair q;
  std::int64_t first_payload = 0;
  q.hp.path().forward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    if (first_payload == 0) first_payload = p.payload.count();
  });
  q.client->connect(2, 443);
  q.hp.run();
  EXPECT_GE(first_payload, 1200);
}

TEST(QuicHandshake, SurvivesInitialLoss) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(100), Duration::millis(5));
  cfg.path.forward.loss_rate = 0.4;
  QuicPair q(cfg);
  q.client->connect(2, 443);
  q.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_TRUE(q.client_connected);
}

TEST(QuicStream, DeliversSmallMessage) {
  QuicPair q;
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(5000));
  q.hp.run();
  EXPECT_EQ(q.server_received.count(), 5000);
}

TEST(QuicStream, SendBeforeEstablishedIsQueued) {
  QuicPair q;
  q.client->send_stream(0, Bytes(3000));
  q.client->connect(2, 443);
  q.hp.run();
  EXPECT_EQ(q.server_received.count(), 3000);
}

TEST(QuicStream, BulkTransfer) {
  QuicPair q;
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes::mebi(1));
  q.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(q.server_received.count(), Bytes::mebi(1).count());
}

TEST(QuicStream, FinSignalled) {
  QuicPair q;
  q.client->connect(2, 443);
  q.client->send_stream(4, Bytes(10'000));
  q.client->finish_stream(4);
  q.hp.run(TimePoint(Duration::seconds(10).ns()));
  EXPECT_EQ(q.server_received.count(), 10'000);
  EXPECT_TRUE(q.server_fin);
}

TEST(QuicStream, PureFinOnEmptyStream) {
  QuicPair q;
  q.client->connect(2, 443);
  q.client->finish_stream(8);
  q.hp.run(TimePoint(Duration::seconds(10).ns()));
  EXPECT_TRUE(q.server_fin);
  EXPECT_EQ(q.server_received.count(), 0);
}

TEST(QuicStream, MultiplexedStreams) {
  QuicPair q;
  std::map<std::uint64_t, std::int64_t> per_stream;
  q.listener->set_accept_callback([&](QuicConnection& c) {
    q.server_conn = &c;
    c.on_stream_data = [&](std::uint64_t id, Bytes n, bool) { per_stream[id] += n.count(); };
  });
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(40'000));
  q.client->send_stream(4, Bytes(60'000));
  q.client->send_stream(8, Bytes(20'000));
  q.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(per_stream[0], 40'000);
  EXPECT_EQ(per_stream[4], 60'000);
  EXPECT_EQ(per_stream[8], 20'000);
}

TEST(QuicStream, BidirectionalData) {
  QuicPair q;
  Bytes client_received;
  q.client->on_stream_data = [&](std::uint64_t, Bytes n, bool) { client_received += n; };
  q.listener->set_accept_callback([&q](QuicConnection& c) {
    q.server_conn = &c;
    c.on_stream_data = [&q, &c](std::uint64_t id, Bytes n, bool) {
      q.server_received += n;
      // Echo-style response on first data.
      if (q.server_received.count() >= 1000 && c.stats().bytes_sent.count() == 0) {
        c.send_stream(id + 1, Bytes(50'000));
      }
    };
  });
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(1000));
  q.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(q.server_received.count(), 1000);
  EXPECT_EQ(client_received.count(), 50'000);
}

TEST(QuicLoss, RecoversViaPacketThreshold) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10));
  cfg.path.forward.loss_rate = 0.02;
  QuicPair q(cfg);
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(500'000));
  q.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(q.server_received.count(), 500'000);
  EXPECT_GT(q.client->stats().packets_lost, 0u);
}

TEST(QuicLoss, PtoRecoversTailLoss) {
  // Lose a burst at the very end by cranking loss high mid-transfer is hard
  // to stage deterministically; instead use heavy loss on a small transfer:
  // only PTO can recover a lost final packet (no later PNs to trigger the
  // threshold).
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(5));
  cfg.path.forward.loss_rate = 0.3;
  QuicPair q(cfg);
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(20'000));
  q.hp.run(TimePoint(Duration::seconds(120).ns()));
  EXPECT_EQ(q.server_received.count(), 20'000);
}

TEST(QuicPacing, WirePacketsRespectMaxPayload) {
  QuicPair q;
  std::int64_t max_payload = 0;
  q.hp.path().forward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    max_payload = std::max(max_payload, p.payload.count());
  });
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(300'000));
  q.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_LE(max_payload, 1350);
}

TEST(QuicPolicy, SplitPolicyShrinksDatagrams) {
  core::SplitPolicy split;  // halves anything above 1200
  QuicConnection::Config cc;
  cc.policy = &split;
  QuicPair q(HostPair::Config{}, cc);
  std::int64_t max_data_payload = 0;
  q.hp.path().forward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    // Skip the padded Initial, which is fixed-size by spec.
    if (p.is_quic() && p.quic().packet_number > 0) {
      max_data_payload = std::max(max_data_payload, p.payload.count());
    }
  });
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(200'000));
  q.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(q.server_received.count(), 200'000);
  EXPECT_LE(max_data_payload, 675);  // half of 1350
}

TEST(QuicPolicy, GuardedDelayStillDelivers) {
  core::DelayPolicy delay;
  core::CcaGuard guard(delay);
  QuicConnection::Config cc;
  cc.policy = &guard;
  QuicPair q(HostPair::Config{}, cc);
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(100'000));
  q.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(q.server_received.count(), 100'000);
  EXPECT_EQ(guard.departure_clamps(), 0u);  // delay is CCA-compliant
}

TEST(QuicStats, Accounting) {
  QuicPair q;
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(100'000));
  q.hp.run(TimePoint(Duration::seconds(30).ns()));
  const auto& st = q.client->stats();
  EXPECT_GT(st.packets_sent, 70u);  // ~1350 B per packet
  EXPECT_GE(st.bytes_sent.count(), 100'000);
  ASSERT_NE(q.server_conn, nullptr);
  EXPECT_EQ(q.server_conn->stats().stream_bytes_delivered.count(), 100'000);
}

// Property sweep over CCAs and loss rates: exactly-once in-order delivery.
using QuicParams = std::tuple<std::string, double>;

class QuicReliability : public ::testing::TestWithParam<QuicParams> {};

TEST_P(QuicReliability, DeliversExactlyOnce) {
  const auto& [cca, loss] = GetParam();
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10),
                                        Bytes::kibi(256));
  cfg.path.forward.loss_rate = loss;
  cfg.path.backward.loss_rate = loss / 2;
  QuicConnection::Config cc;
  cc.cca = cca;
  QuicPair q(cfg, cc);
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(200'000));
  q.hp.run(TimePoint(Duration::seconds(120).ns()));
  EXPECT_EQ(q.server_received.count(), 200'000) << cca << " loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(Grid, QuicReliability,
                         ::testing::Combine(::testing::Values("reno", "cubic", "bbr"),
                                            ::testing::Values(0.0, 0.02, 0.05)));

}  // namespace
}  // namespace stob::quic
