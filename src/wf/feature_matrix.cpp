#include "wf/feature_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace stob::wf {

FeatureMatrix FeatureMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  FeatureMatrix m;
  if (rows.empty()) return m;
  m.cols_ = rows[0].size();
  m.data_.reserve(rows.size() * m.cols_);
  for (const std::vector<double>& r : rows) {
    if (r.size() != m.cols_) throw std::invalid_argument("FeatureMatrix: ragged rows");
    m.data_.insert(m.data_.end(), r.begin(), r.end());
  }
  return m;
}

void FeatureMatrix::set_cols(std::size_t cols) {
  if (!data_.empty()) throw std::logic_error("FeatureMatrix::set_cols on non-empty matrix");
  cols_ = cols;
}

void FeatureMatrix::append_row(std::span<const double> values) {
  if (cols_ == 0 && data_.empty()) cols_ = values.size();
  if (values.size() != cols_) throw std::invalid_argument("FeatureMatrix: row width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
}

FeatureMatrix FeatureMatrix::gathered(std::span<const std::size_t> indices) const {
  FeatureMatrix out;
  out.cols_ = cols_;
  out.data_.resize(indices.size() * cols_);
  double* dst = out.data_.data();
  for (std::size_t i : indices) {
    std::copy_n(data_.data() + i * cols_, cols_, dst);
    dst += cols_;
  }
  return out;
}

}  // namespace stob::wf
