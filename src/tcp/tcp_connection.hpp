// TCP connection over the simulated host stack.
//
// Implements the mechanisms the paper's argument depends on:
//  * socket-buffer deferral: app writes are buffered and transmitted when
//    window/pacing/CPU allow, asynchronously from send(),
//  * congestion window, receive window, RTO with exponential backoff,
//    NewReno fast retransmit/recovery, delayed ACKs, optional Nagle,
//  * Linux-style pacing via earliest-departure-time (EDT) timestamps
//    enforced by the fq qdisc,
//  * TSO autosizing (~1 ms of data at the pacing rate) with the NIC
//    splitting super-segments into MSS-sized wire packets at line rate,
//  * TCP Small Queues: bounded unsent bytes below the transport,
//  * Stob policy hooks at exactly the three control points the paper
//    identifies: TSO segment size, wire packet size, departure time.
//
// Sequence numbers are absolute 64-bit stream offsets starting at 0; the
// SYN consumes no sequence space, the FIN consumes one unit (as in TCP).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "core/policy.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "stack/host.hpp"
#include "tcp/congestion.hpp"
#include "tcp/rtt.hpp"

namespace stob::tcp {

class TcpConnection {
 public:
  enum class State {
    Closed,
    SynSent,
    SynReceived,
    Established,
    FinWait1,   // our FIN sent, not yet acked
    FinWait2,   // our FIN acked, waiting for peer FIN
    CloseWait,  // peer FIN received, app has not closed yet
    LastAck,    // peer FIN received and our FIN sent
    Done,
  };

  struct Config {
    Bytes send_buffer = Bytes::mebi(4);   ///< cap on unsent application bytes
    Bytes recv_buffer = Bytes::mebi(1);   ///< advertised-window cap
    std::int64_t mss = 1448;              ///< 1500 MTU - IP(20) - TCP w/opts(32)
    bool tso_enabled = true;
    Bytes tso_max = Bytes(65160);         ///< 45 * 1448 (~64 KB GSO limit)
    bool pacing_enabled = true;
    bool nagle = false;
    std::string cca = "cubic";
    /// Initial congestion window in MSS units; 0 = stack default (10).
    /// CDNs commonly tune this (10..32), which shapes the first bursts.
    int initial_cwnd_segments = 0;
    int delack_segments = 2;
    Duration delack_timeout = Duration::millis(25);
    /// Immediate ACKs for the first N data segments of the connection
    /// (Linux quickack): keeps the peer's startup bandwidth samples and
    /// window growth honest before delayed ACKs kick in.
    int quickack_segments = 16;
    RttEstimator::Config rtt;
    /// TSQ budget; 0 selects max(128 KiB, 2 * current TSO size).
    Bytes tsq_limit = Bytes(0);
    /// Stob policy consulted for every data segment; not owned. nullptr
    /// means stock behaviour.
    core::Policy* policy = nullptr;
    /// Deliver and discard received bytes immediately (keeps the advertised
    /// window open). Disable to exercise flow control via consume().
    bool auto_consume = true;
  };

  struct Stats {
    std::uint64_t segments_sent = 0;       // data segments (incl. retx)
    std::uint64_t retransmissions = 0;
    std::uint64_t rto_fires = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t dup_acks_received = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t ooo_segments = 0;
    Bytes bytes_sent;                      // payload, incl. retx
    Bytes bytes_delivered;                 // payload acked (excl. FIN)
    Bytes bytes_received;                  // payload delivered in order
  };

  TcpConnection(stack::Host& host, Config cfg);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Active open towards (dst, dst_port). Allocates a local ephemeral port.
  void connect(net::HostId dst, net::Port dst_port);

  /// Passive open: adopt an incoming SYN (called by TcpListener).
  void accept(const net::Packet& syn);

  /// Append `n` bytes of application data to the send buffer. Returns the
  /// bytes actually buffered (may be less if the buffer cap is hit).
  Bytes send(Bytes n);

  /// Graceful close: a FIN is sent once the send buffer drains.
  void close();

  /// Consume received bytes (only meaningful with auto_consume = false);
  /// reopens the advertised window.
  void consume(Bytes n);

  // Application callbacks.
  std::function<void()> on_connected;
  std::function<void(Bytes)> on_data;     ///< newly in-order payload bytes
  std::function<void()> on_peer_closed;   ///< peer's FIN consumed (half-close)
  std::function<void()> on_closed;        ///< both directions shut down

  // Introspection.
  State state() const { return state_; }
  const net::FlowKey& key() const { return key_; }
  const Stats& stats() const { return stats_; }
  Bytes cwnd() const { return cca_->cwnd(); }
  DataRate pacing_rate() const { return cca_->pacing_rate(); }
  Duration srtt() const { return rtt_.srtt(); }
  /// Current retransmission timeout (with any exponential backoff applied).
  Duration rto() const { return rtt_.rto(); }
  CongestionControl& cca() { return *cca_; }
  Bytes inflight() const { return Bytes(static_cast<std::int64_t>(snd_nxt_ - snd_una_)); }
  Bytes unsent() const { return Bytes(unsent_bytes_); }
  std::int64_t mss() const { return cfg_.mss; }
  Bytes advertised_window() const;

 private:
  struct SentSeg {
    std::uint64_t seq = 0;
    std::int64_t len = 0;  // payload bytes (the FIN's virtual byte has len 1)
    TimePoint sent;
    int retx_count = 0;
    std::int64_t delivered_at_send = 0;  // snd_una_ when (first) sent
    bool app_limited = false;
    bool is_fin = false;
    bool sacked = false;            // covered by a received SACK block
    bool retx_in_episode = false;   // already retransmitted this recovery episode
  };

  void open_common(net::HostId dst, net::Port dst_port, net::Port src_port);
  void handle_packet(net::Packet p);
  void handle_handshake(const net::Packet& p);
  void process_ack(const net::TcpHeader& h, bool has_payload);
  void process_data(const net::Packet& p);
  void deliver_in_order();

  void send_more();
  /// Emits one data segment starting at `seq` of at most `len` bytes.
  /// Returns emitted payload length (policy may shrink it).
  std::int64_t emit_segment(std::uint64_t seq, std::int64_t len, bool is_retx);
  void retransmit_head();
  /// Mark rtx-queue segments covered by the ACK's SACK blocks.
  void apply_sack(const net::TcpHeader& h);
  /// RFC 6675-style loss recovery: retransmit inferred-lost holes while
  /// the pipe estimate has room under cwnd. Returns segments retransmitted.
  std::size_t retransmit_holes();
  void send_control(std::uint8_t flags);
  void send_ack_now();
  void schedule_delayed_ack();
  void maybe_send_fin();
  void check_done();

  void arm_rto();
  void disarm_rto();
  void on_rto_fire();
  void arm_persist();
  void on_persist_fire();

  std::int64_t usable_window() const;
  Bytes tsq_budget() const;

  stack::Host& host_;
  sim::Simulator& sim_;
  Config cfg_;
  net::FlowKey key_;
  State state_ = State::Closed;
  Stats stats_;

  std::unique_ptr<CongestionControl> cca_;
  RttEstimator rtt_;

  // --- sender state ---
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::int64_t unsent_bytes_ = 0;     // app bytes not yet segmented
  std::int64_t snd_wnd_ = 0;          // peer advertised window
  std::deque<SentSeg> rtx_queue_;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  std::int64_t sacked_bytes_ = 0;
  std::uint64_t high_sack_end_ = 0;   // highest SACKed byte seen
  bool all_lost_after_rto_ = false;   // RTO: treat every unsacked seg as lost
  TimePoint pacing_next_ = TimePoint::zero();
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::uint64_t fin_seq_ = 0;
  sim::EventId rto_timer_;
  bool rto_armed_ = false;
  sim::EventId persist_timer_;
  bool persist_armed_ = false;
  bool cpu_continuation_pending_ = false;
  bool pacing_wakeup_pending_ = false;
  TimePoint last_departure_;  // effective departure of the last emitted segment
  std::uint64_t last_tso_bytes_ = 0;

  // --- receiver state ---
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  // start -> end (exclusive)
  std::int64_t unconsumed_ = 0;
  bool fin_received_ = false;
  std::uint64_t fin_in_seq_ = 0;  // peer FIN position (valid if fin_received_)
  bool fin_consumed_ = false;
  int delack_count_ = 0;
  int quickack_budget_ = 0;
  sim::EventId delack_timer_;
  bool delack_armed_ = false;

  /// Liveness token: scheduled lambdas that cannot be cancelled from the
  /// destructor (CPU-completion continuations) hold a weak_ptr to this and
  /// become no-ops if the connection is destroyed first.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// Listening socket: creates a TcpConnection per incoming SYN and owns it.
class TcpListener {
 public:
  using AcceptCb = std::function<void(TcpConnection&)>;

  TcpListener(stack::Host& host, net::Port port, TcpConnection::Config conn_cfg);
  ~TcpListener();

  /// Invoked right after the connection object is created (before the
  /// handshake completes) so the app can attach callbacks.
  void set_accept_callback(AcceptCb cb) { accept_cb_ = std::move(cb); }

  std::size_t connection_count() const { return conns_.size(); }

 private:
  void on_packet(net::Packet p);

  stack::Host& host_;
  net::Port port_;
  TcpConnection::Config conn_cfg_;
  AcceptCb accept_cb_;
  std::vector<std::unique_ptr<TcpConnection>> conns_;
};

}  // namespace stob::tcp
