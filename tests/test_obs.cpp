// Tests for the observability subsystem: flight-recorder ring buffer,
// exporter round-trips, metrics determinism across identical runs, and the
// per-layer enforcement-gap (layer-diff) report on a defended page load.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "obs/layer_diff.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace_recorder.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"
#include "util/csv.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

namespace stob::obs {
namespace {

PacketEvent make_event(std::int64_t t_ns, std::uint64_t seq, std::int64_t bytes,
                       Layer layer = Layer::Tcp) {
  PacketEvent ev;
  ev.time = TimePoint(t_ns);
  ev.flow = {1, 2, 40000, 443, net::Proto::Tcp};
  ev.layer = layer;
  ev.dir = Direction::Tx;
  ev.kind = EventKind::Send;
  ev.bytes = bytes;
  ev.seq = seq;
  ev.packet_id = seq + 100;
  return ev;
}

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

// ------------------------------------------------------------- ring buffer

TEST(TraceRecorder, RecordsUpToCapacity) {
  TraceRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 0u);
  for (int i = 0; i < 5; ++i) rec.record(make_event(i, static_cast<std::uint64_t>(i), 100));
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.overwritten(), 0u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].time.ns(), i);
}

TEST(TraceRecorder, WraparoundKeepsNewestOldestFirst) {
  TraceRecorder rec(8);
  for (int i = 0; i < 20; ++i) rec.record(make_event(i, static_cast<std::uint64_t>(i), 100));
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  // Flight-recorder semantics: the 8 newest (12..19), oldest first.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].time.ns(), static_cast<std::int64_t>(12 + i));
  }
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) rec.record(make_event(i, 0, 1));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, ScopedInstallRestoresPrevious) {
  EXPECT_EQ(recorder(), nullptr);
  TraceRecorder outer(4);
  {
    ScopedRecorder a(outer);
    EXPECT_EQ(recorder(), &outer);
    TraceRecorder inner(4);
    {
      ScopedRecorder b(inner);
      EXPECT_EQ(recorder(), &inner);
    }
    EXPECT_EQ(recorder(), &outer);
  }
  EXPECT_EQ(recorder(), nullptr);
}

// --------------------------------------------------------------- exporters

TEST(TraceRecorder, CsvRowRoundTrip) {
  const PacketEvent ev = make_event(123456789, 4242, 1448, Layer::Qdisc);
  const auto parsed = TraceRecorder::from_csv_row(TraceRecorder::to_csv_row(ev));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ev);
}

TEST(TraceRecorder, CsvFileRoundTrip) {
  TraceRecorder rec(64);
  rec.record(make_event(10, 0, 100, Layer::Tls));
  rec.record(make_event(20, 100, 1448, Layer::Tcp));
  rec.record(make_event(30, 100, 1448, Layer::Wire));
  const auto path = temp_path("obs_trace_roundtrip.csv");
  rec.write_csv(path);

  const auto rows = csv::read_file(path);
  ASSERT_EQ(rows.size(), 4u);  // header + 3 events
  EXPECT_EQ(rows[0], TraceRecorder::csv_header());
  const auto original = rec.events();
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto parsed = TraceRecorder::from_csv_row(rows[i + 1]);
    ASSERT_TRUE(parsed.has_value()) << "row " << i;
    EXPECT_EQ(*parsed, original[i]);
  }
  std::filesystem::remove(path);
}

TEST(TraceRecorder, FromCsvRowRejectsMalformed) {
  EXPECT_FALSE(TraceRecorder::from_csv_row({}).has_value());
  EXPECT_FALSE(TraceRecorder::from_csv_row({"1", "2", "3"}).has_value());
  csv::Row row = TraceRecorder::to_csv_row(make_event(1, 2, 3));
  row[1] = "warp";  // not a layer
  EXPECT_FALSE(TraceRecorder::from_csv_row(row).has_value());
  row = TraceRecorder::to_csv_row(make_event(1, 2, 3));
  row[0] = "soon";  // not a time
  EXPECT_FALSE(TraceRecorder::from_csv_row(row).has_value());
}

TEST(TraceRecorder, JsonlExport) {
  TraceRecorder rec(16);
  rec.record(make_event(1000, 0, 517, Layer::Tls));
  rec.record(make_event(2000, 0, 517, Layer::Tcp));
  const auto path = temp_path("obs_trace.jsonl");
  rec.write_jsonl(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"flow\":\"1:40000>2:443/tcp\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CountersGaugesDistributions) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("tcp.segments_sent");
  m.add("tcp.segments_sent", 4);
  m.set("sim.events_pending", 17.0);
  m.observe("qdisc.sojourn_us", 10.0);
  m.observe("qdisc.sojourn_us", 30.0);

  EXPECT_EQ(m.counter("tcp.segments_sent"), 5u);
  EXPECT_EQ(m.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("sim.events_pending"), 17.0);
  const auto* d = m.distribution("qdisc.sojourn_us");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 20.0);
  EXPECT_DOUBLE_EQ(d->min, 10.0);
  EXPECT_DOUBLE_EQ(d->max, 30.0);

  const auto hist = d->to_histogram(4);
  EXPECT_EQ(hist.total_tokens(), 2u);
}

TEST(Metrics, SnapshotIsSortedAndCsvParses) {
  MetricsRegistry m;
  m.add("zzz.last");
  m.add("aaa.first");
  m.observe("mid.dist", 1.0);
  const std::string snap = m.snapshot();
  EXPECT_LT(snap.find("aaa.first"), snap.find("zzz.last"));

  const auto path = temp_path("obs_metrics.csv");
  m.write_csv(path);
  const auto rows = csv::read_file(path);
  ASSERT_EQ(rows.size(), 4u);  // header + 2 counters + 1 dist
  EXPECT_EQ(rows[0][0], "kind");
  std::filesystem::remove(path);
}

/// One deterministic bulk transfer with tracing + metrics installed.
std::string run_traced_transfer(TraceRecorder* rec) {
  MetricsRegistry m;
  ScopedMetrics sm(m);
  TraceRecorder unused(1);
  ScopedRecorder sr(rec != nullptr ? *rec : unused);
  stack::HostPair hp;
  tcp::TcpListener listener(hp.server(), 443, tcp::TcpConnection::Config{});
  tcp::TcpConnection sender(hp.client(), tcp::TcpConnection::Config{});
  sender.on_connected = [&] { sender.send(Bytes::kibi(512)); };
  sender.connect(hp.server().id(), 443);
  hp.run(TimePoint(Duration::seconds(30).ns()));
  scrape_simulator(hp.sim(), m);
  return m.snapshot();
}

TEST(Metrics, DeterministicAcrossIdenticalRuns) {
  const std::string a = run_traced_transfer(nullptr);
  const std::string b = run_traced_transfer(nullptr);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The scrape and the transport/qdisc/nic/wire hooks all contributed.
  EXPECT_NE(a.find("counter tcp.segments_sent"), std::string::npos);
  EXPECT_NE(a.find("counter qdisc.dequeued"), std::string::npos);
  EXPECT_NE(a.find("counter nic.wire_packets"), std::string::npos);
  EXPECT_NE(a.find("counter wire.packets"), std::string::npos);
  EXPECT_NE(a.find("gauge sim.events_executed"), std::string::npos);
  EXPECT_NE(a.find("dist tcp.cwnd_bytes"), std::string::npos);
}

TEST(Metrics, DisabledHooksRecordNothing) {
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(recorder(), nullptr);
  stack::HostPair hp;
  tcp::TcpListener listener(hp.server(), 443, tcp::TcpConnection::Config{});
  tcp::TcpConnection sender(hp.client(), tcp::TcpConnection::Config{});
  sender.on_connected = [&] { sender.send(Bytes::kibi(64)); };
  sender.connect(hp.server().id(), 443);
  hp.run(TimePoint(Duration::seconds(30).ns()));
  // Nothing to assert beyond "no crash, no install": the hooks were inert.
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(recorder(), nullptr);
}

// -------------------------------------------------------------- layer diff

TEST(LayerDiff, TraceEventsCoverAllLayersOfATransfer) {
  TraceRecorder rec(1 << 16);
  run_traced_transfer(&rec);
  const auto events = rec.events();
  ASSERT_FALSE(events.empty());
  const auto flows = flows_by_activity(events);
  ASSERT_FALSE(flows.empty());
  const net::FlowKey flow = flows.front().first;  // the sender's data flow

  const LayerDiffReport report = layer_diff(events, flow);
  // TCP, qdisc, NIC and wire must all have seen the data.
  EXPECT_NE(report.layer(Layer::Tcp), nullptr);
  EXPECT_NE(report.layer(Layer::Qdisc), nullptr);
  EXPECT_NE(report.layer(Layer::Nic), nullptr);
  EXPECT_NE(report.layer(Layer::Wire), nullptr);
  EXPECT_GE(report.layers.size(), 4u);
  EXPECT_EQ(report.transitions.size(), report.layers.size() - 1);
  // Wire payload bytes can't exceed what TCP emitted... but both carry the
  // same stream, so totals match up to retransmissions.
  EXPECT_GE(report.layer(Layer::Wire)->bytes, report.layer(Layer::Tcp)->bytes);
}

TEST(LayerDiff, DefendedPageLoadShowsDistortionAtQdiscAndNic) {
  core::SplitPolicy split;          // halve wire packets > 1200 B
  core::DelayPolicy delay;          // inflate departure gaps 10-30%
  core::CompositePolicy combined({&split, &delay});

  workload::PageLoadOptions opt;
  opt.server_conn.policy = &combined;
  opt.tls_records = true;
  opt.tls.pad_to = 512;             // RFC 8446 record padding

  TraceRecorder rec(1 << 18);
  ScopedRecorder guard(rec);
  Rng rng(7);
  const auto& site = workload::nine_sites()[0];
  const workload::PageLoadResult res = workload::run_page_load(site, rng, opt);
  ASSERT_TRUE(res.completed);

  const auto events = rec.events();
  const auto flows = flows_by_activity(events);
  ASSERT_FALSE(flows.empty());
  // Busiest flow = the server's response flow (it carries the page).
  const net::FlowKey flow = flows.front().first;
  EXPECT_EQ(flow.src_port, 443);

  const LayerDiffReport report = layer_diff(events, flow);

  // ISSUE acceptance: events at >= 4 distinct layers for one defended flow.
  EXPECT_GE(report.layers.size(), 4u);
  EXPECT_NE(report.layer(Layer::Tls), nullptr);
  EXPECT_NE(report.layer(Layer::Tcp), nullptr);
  EXPECT_NE(report.layer(Layer::Qdisc), nullptr);
  EXPECT_NE(report.layer(Layer::Nic), nullptr);
  EXPECT_NE(report.layer(Layer::Wire), nullptr);

  // The delay policy pushes departures into the future: the qdisc (EDT
  // enforcement point) must report added delay over TCP's emission times.
  const LayerTransition* tcp_qdisc = report.transition(Layer::Tcp, Layer::Qdisc);
  ASSERT_NE(tcp_qdisc, nullptr);
  EXPECT_GT(tcp_qdisc->delay_p90_us, 0.0);
  EXPECT_TRUE(tcp_qdisc->distorted());

  // The split policy halves the wire MSS below the segment size, so the NIC
  // (TSO) layer must report segments split into multiple wire packets.
  const LayerTransition* qdisc_nic = report.transition(Layer::Qdisc, Layer::Nic);
  ASSERT_NE(qdisc_nic, nullptr);
  EXPECT_GT(qdisc_nic->split_units, 0u);
  EXPECT_GT(qdisc_nic->count_ratio, 1.0);
  EXPECT_GT(qdisc_nic->size_mismatch_pct, 0.0);
  EXPECT_TRUE(qdisc_nic->distorted());

  // Report exporters produce the enforcement-gap artifacts.
  const auto csv_path = temp_path("obs_layer_diff.csv");
  const auto jsonl_path = temp_path("obs_layer_diff.jsonl");
  report.write_csv(csv_path);
  report.write_jsonl(jsonl_path);
  const auto rows = csv::read_file(csv_path);
  EXPECT_EQ(rows.size(), 1 + report.layers.size() + report.transitions.size());
  EXPECT_FALSE(report.to_string().empty());
  std::filesystem::remove(csv_path);
  std::filesystem::remove(jsonl_path);
}

TEST(LayerDiff, UndefendedBulkFlowPreservesSizesAtQdisc) {
  TraceRecorder rec(1 << 16);
  run_traced_transfer(&rec);
  const auto events = rec.events();
  const auto flows = flows_by_activity(events);
  ASSERT_FALSE(flows.empty());
  const LayerDiffReport report = layer_diff(events, flows.front().first);
  // The qdisc releases exactly the segments TCP handed it: same units, no
  // splits or merges (only delay can differ).
  const LayerTransition* t = report.transition(Layer::Tcp, Layer::Qdisc);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->from_units, t->to_units);
  EXPECT_EQ(t->split_units, 0u);
  EXPECT_EQ(t->merged_units, 0u);
  EXPECT_DOUBLE_EQ(t->size_mismatch_pct, 0.0);
}

TEST(LayerDiff, GapsMatchEventTimes) {
  std::vector<PacketEvent> events;
  events.push_back(make_event(1000, 0, 100, Layer::Wire));
  events.push_back(make_event(4000, 100, 100, Layer::Wire));
  events.push_back(make_event(9000, 200, 100, Layer::Wire));
  const auto gaps = layer_gaps_us(events, events[0].flow, Layer::Wire);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 3.0);
  EXPECT_DOUBLE_EQ(gaps[1], 5.0);
}


// ------------------------------------------------------------ span profiler

TEST(Profiler, DisabledSpanIsNoop) {
  ASSERT_EQ(profiler(), nullptr);
  {
    ProfSpan span("nothing-listens");
    ProfSpan nested("still-nothing");
  }
  EXPECT_EQ(profiler(), nullptr);
}

TEST(Profiler, NestingParentsAndDepths) {
  Profiler prof;
  ScopedProfiler guard(prof);
  {
    ProfSpan outer("outer");
    {
      ProfSpan inner("inner");
      EXPECT_EQ(prof.open_depth(), 2u);
    }
    ProfSpan sibling("sibling");
  }
  ASSERT_EQ(prof.records().size(), 3u);
  const auto& recs = prof.records();
  EXPECT_EQ(recs[0].name, "outer");
  EXPECT_EQ(recs[0].parent, 0u);
  EXPECT_EQ(recs[0].depth, 0u);
  EXPECT_EQ(recs[1].name, "inner");
  EXPECT_EQ(recs[1].parent, recs[0].id);
  EXPECT_EQ(recs[1].depth, 1u);
  EXPECT_EQ(recs[2].parent, recs[0].id);
  // All closed, with usable timings.
  for (const ProfRecord& r : recs) EXPECT_GE(r.wall_ns, 0);
  EXPECT_EQ(prof.open_depth(), 0u);
}

TEST(Profiler, SpanIdsAreDeterministic) {
  // Same id domain + same open order => identical ids and structure, no
  // matter when or where the spans ran.
  auto capture = [] {
    Profiler prof(42);
    ScopedProfiler guard(prof);
    {
      ProfSpan a("a");
      ProfSpan b("b");
    }
    ProfSpan c("c");
    return prof.structure();
  };
  const std::string first = capture();
  const std::string second = capture();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find(" a\n"), std::string::npos);
  // A different domain yields different ids for the same program.
  auto first_id = [](std::uint64_t domain) {
    Profiler p(domain);
    ScopedProfiler guard(p);
    { ProfSpan a("a"); }
    return p.records()[0].id;
  };
  EXPECT_EQ(first_id(42), first_id(42));
  EXPECT_NE(first_id(42), first_id(43));
}

TEST(Profiler, UnwindOnExceptionClosesSpans) {
  Profiler prof;
  ScopedProfiler guard(prof);
  try {
    ProfSpan outer("outer");
    ProfSpan inner("inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(prof.open_depth(), 0u);
  ASSERT_EQ(prof.records().size(), 2u);
  for (const ProfRecord& r : prof.records()) EXPECT_GE(r.wall_ns, 0);
}

TEST(Profiler, SpliceReparentsShiftsAndRebasesLanes) {
  Profiler child(sub_domain(7, 0));
  {
    ScopedProfiler guard(child);
    ProfSpan root("job");
    ProfSpan nested("work");
  }
  std::vector<ProfRecord> captured = child.take_records();
  ASSERT_EQ(captured.size(), 2u);

  Profiler parent(7);
  ScopedProfiler guard(parent);
  const std::size_t pool_span = parent.open("pool");
  parent.splice(std::move(captured), 1'000'000, /*worker=*/3);
  parent.close(pool_span);

  ASSERT_EQ(parent.records().size(), 3u);
  const auto& recs = parent.records();
  EXPECT_EQ(recs[0].name, "pool");
  EXPECT_EQ(recs[1].name, "job");
  EXPECT_EQ(recs[1].parent, recs[0].id);  // re-parented under the open span
  EXPECT_EQ(recs[1].depth, 1u);
  EXPECT_EQ(recs[1].worker, 3u);
  EXPECT_GE(recs[1].start_ns, 1'000'000);
  EXPECT_EQ(recs[2].name, "work");
  EXPECT_EQ(recs[2].depth, 2u);
  EXPECT_EQ(recs[2].worker, 3u);  // child recorded on lane 0 -> this worker's lane
}

TEST(Profiler, TraceEventGoldenFile) {
  // Fixed records => the writer's output must match the committed golden
  // byte for byte (format stability is what Perfetto/chrome://tracing and
  // the determinism tests rely on).
  std::vector<ProfRecord> recs;
  ProfRecord a;
  a.id = 0x0102030405060708ull;
  a.parent = 0;
  a.depth = 0;
  a.worker = 0;
  a.name = "alpha";
  a.start_ns = 1500;
  a.wall_ns = 250000;
  a.cpu_ns = 125000;
  a.pool_hits = 3;
  a.pool_misses = 1;
  recs.push_back(a);
  ProfRecord b;
  b.id = 0x1112131415161718ull;
  b.parent = a.id;
  b.depth = 1;
  b.worker = 2;
  b.name = "beta \"quoted\"";
  b.start_ns = 2500;
  b.wall_ns = 1000;
  b.cpu_ns = 500;
  recs.push_back(b);
  ProfRecord open_span;
  open_span.id = 0x2122232425262728ull;
  open_span.worker = 1;
  open_span.name = "open";
  open_span.wall_ns = -1;  // still open: lane is announced, event skipped
  recs.push_back(open_span);

  const std::string json = trace_event_json(recs, "golden");
  std::ifstream golden(std::string(STOB_GOLDEN_DIR) + "/trace_event.json");
  ASSERT_TRUE(golden.good()) << "missing tests/golden/trace_event.json";
  std::stringstream ss;
  ss << golden.rdbuf();
  EXPECT_EQ(json, ss.str());
}

// ------------------------------------------------------------ run manifest

TEST(Manifest, RollupAggregatesByName) {
  Profiler prof;
  ScopedProfiler guard(prof);
  for (int i = 0; i < 3; ++i) ProfSpan span("phase");
  { ProfSpan span("other"); }
  const std::vector<PhaseRollup> phases = rollup_phases(prof.records());
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "other");  // sorted by name
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[1].name, "phase");
  EXPECT_EQ(phases[1].count, 3u);
}

TEST(Manifest, DeterministicJsonExcludesHarnessFields) {
  Profiler prof;
  {
    ScopedProfiler guard(prof);
    ProfSpan span("stage");
  }
  MetricsRegistry metrics;
  metrics.add("tcp.segments", 12);
  RunManifest m = build_manifest("tool_x", prof, &metrics, /*jobs=*/4, /*base_seed=*/7);
  m.set_config("samples", "10");

  const std::string full = m.to_json();
  const std::string det = m.deterministic_json();
  // Harness-only fields appear in the full form only.
  EXPECT_NE(full.find("\"jobs\""), std::string::npos);
  EXPECT_NE(full.find("\"harness\""), std::string::npos);
  EXPECT_NE(full.find("\"wall_ms\""), std::string::npos);
  EXPECT_EQ(det.find("\"jobs\""), std::string::npos);
  EXPECT_EQ(det.find("\"harness\""), std::string::npos);
  EXPECT_EQ(det.find("\"wall_ms\""), std::string::npos);
  EXPECT_EQ(det.find("\"git_rev\""), std::string::npos);
  // Deterministic fields appear in both.
  for (const std::string& form : {full, det}) {
    EXPECT_NE(form.find("\"tool\": \"tool_x\""), std::string::npos);
    EXPECT_NE(form.find("\"cell_spec_digest\""), std::string::npos);
    EXPECT_NE(form.find("\"metrics_sha256\""), std::string::npos);
    EXPECT_NE(form.find("\"name\": \"stage\", \"count\": 1"), std::string::npos);
  }
  EXPECT_EQ(m.metrics_lines, 1u);
  EXPECT_EQ(m.metrics_sha256.size(), 64u);
}

// Golden test for the JSON string escaper with hostile config values:
// quotes, backslashes, every flavour of control character, and non-ASCII
// bytes. Control characters AND bytes >= 0x7f must come out as \u00XX
// (with an unsigned value — a sign-extended char would emit \uffXX...),
// so the manifest is pure ASCII regardless of input encoding.
TEST(Manifest, JsonEscapesControlAndNonAsciiBytes) {
  RunManifest m;
  m.tool = "esc";
  m.set_config("quotes", "say \"hi\" \\ done");
  // Split literals: "\x01e" would parse as the single byte 0x1e.
  m.set_config("ctl", std::string("a\nb\rc\td\x01") + "e\x1f" + "f");
  m.set_config("high", "caf\xc3\xa9 \xff\x80");  // UTF-8 é, then raw bytes
  m.set_config("del", "x\x7fy");
  const std::string json = m.to_json();

  EXPECT_NE(json.find(R"(say \"hi\" \\ done)"), std::string::npos);
  EXPECT_NE(json.find("a\\nb\\rc\\td\\u0001e\\u001ff"), std::string::npos);
  EXPECT_NE(json.find("caf\\u00c3\\u00a9 \\u00ff\\u0080"), std::string::npos);
  EXPECT_NE(json.find("x\\u007fy"), std::string::npos);
  // The whole manifest is 7-bit ASCII with no raw control characters
  // outside the structural newlines.
  for (char c : json) {
    const auto u = static_cast<unsigned char>(c);
    EXPECT_TRUE(u == '\n' || (u >= 0x20 && u < 0x7f)) << "raw byte " << static_cast<int>(u);
  }
}

TEST(Manifest, CellSpecDigestIgnoresJobsAndTimings) {
  RunManifest a;
  a.tool = "t";
  a.base_seed = 5;
  a.set_config("k", "v");
  RunManifest b = a;
  b.jobs = 16;
  b.total_wall_ms = 123.0;
  b.git_rev = "deadbee";
  EXPECT_EQ(a.cell_spec_digest(), b.cell_spec_digest());
  b.set_config("k", "other");
  EXPECT_NE(a.cell_spec_digest(), b.cell_spec_digest());
  RunManifest c = a;
  c.base_seed = 6;
  EXPECT_NE(a.cell_spec_digest(), c.cell_spec_digest());
}

// ---------------------------------------------------------- metrics merge

TEST(MetricsRegistry, MergeCountersGaugesDistributions) {
  MetricsRegistry a;
  a.add("c", 2);
  a.set("g", 1.0);
  a.observe("d", 1.0);
  a.observe("d", 3.0);
  MetricsRegistry b;
  b.add("c", 3);
  b.add("only_b", 1);
  b.set("g", 7.0);
  b.observe("d", 5.0);
  b.observe("e", 2.0);

  a.merge(b);
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 7.0);  // last write (the merged-in) wins
  const MetricsRegistry::Distribution* d = a.distribution("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 3u);
  EXPECT_DOUBLE_EQ(d->mean(), 3.0);
  EXPECT_DOUBLE_EQ(d->min, 1.0);
  EXPECT_DOUBLE_EQ(d->max, 5.0);
  EXPECT_EQ(d->reservoir.size(), 3u);
  ASSERT_NE(a.distribution("e"), nullptr);
  EXPECT_EQ(a.distribution("e")->count(), 1u);
}

TEST(MetricsRegistry, MergeOrderIndependentSnapshot) {
  // Merging per-job registries in job order must give one deterministic
  // snapshot: same inputs => byte-identical text, regardless of which run
  // produced them.
  auto job_registry = [](double base) {
    MetricsRegistry m;
    m.add("jobs", 1);
    m.observe("plt", base);
    m.observe("plt", base * 2);
    return m;
  };
  MetricsRegistry run1;
  for (int i = 1; i <= 4; ++i) run1.merge(job_registry(i));
  MetricsRegistry run2;
  for (int i = 1; i <= 4; ++i) run2.merge(job_registry(i));
  EXPECT_EQ(run1.snapshot(), run2.snapshot());
  EXPECT_EQ(run1.counter("jobs"), 4u);
}

}  // namespace
}  // namespace stob::obs
