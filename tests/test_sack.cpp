// Tests for SACK-based loss recovery: receiver-side block advertisement,
// sender-side loss inference, pipe-limited hole retransmission, and
// recovery efficiency on large-BDP paths (the case plain NewReno crawls on).
#include <gtest/gtest.h>

#include <memory>

#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"

namespace stob::tcp {
namespace {

using stack::HostPair;

struct Transfer {
  HostPair hp;
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpConnection> client;
  Bytes server_received;

  explicit Transfer(HostPair::Config cfg, TcpConnection::Config conn_cfg) : hp(cfg) {
    listener = std::make_unique<TcpListener>(hp.server(), 80, conn_cfg);
    listener->set_accept_callback([this](TcpConnection& c) {
      c.on_data = [this](Bytes n) { server_received += n; };
    });
    client = std::make_unique<TcpConnection>(hp.client(), conn_cfg);
  }
};

TEST(Sack, AcksCarryOooRanges) {
  // Force out-of-order delivery via loss and inspect the ACK stream.
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10));
  cfg.path.forward.loss_rate = 0.05;
  Transfer t(cfg, TcpConnection::Config{});
  bool saw_sack = false;
  t.hp.path().backward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    if (p.is_tcp() && !p.tcp().sack.empty()) {
      saw_sack = true;
      // Blocks must be valid ranges above the cumulative ack.
      for (const auto& [start, end] : p.tcp().sack) {
        EXPECT_LT(start, end);
        EXPECT_GE(start, p.tcp().ack);
      }
      EXPECT_LE(p.tcp().sack.size(), 3u);
    }
  });
  t.client->connect(2, 80);
  t.client->send(Bytes(500'000));
  t.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(t.server_received.count(), 500'000);
  EXPECT_TRUE(saw_sack);
}

TEST(Sack, NoSackBlocksWithoutLoss) {
  Transfer t(HostPair::Config{}, TcpConnection::Config{});
  bool saw_sack = false;
  t.hp.path().backward().set_tx_tap([&](const net::Packet& p, TimePoint) {
    if (p.is_tcp() && !p.tcp().sack.empty()) saw_sack = true;
  });
  t.client->connect(2, 80);
  t.client->send(Bytes(500'000));
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(t.server_received.count(), 500'000);
  EXPECT_FALSE(saw_sack);  // in-order delivery: nothing to report
}

TEST(Sack, LargeBdpBulkSustainsThroughput) {
  // 1 Gb/s, 20 ms RTT (BDP 2.5 MB), small buffer. Either HyStart exits
  // slow start before the buffer overflows (no loss at all), or the
  // overshoot episode is repaired by SACK recovery fast enough that bulk
  // throughput stays near line rate — plain NewReno (one hole per RTT)
  // would crawl for minutes. Both acceptable outcomes show up as high
  // delivered volume with at most a couple of RTOs.
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::gbps(1), Duration::millis(10),
                                        Bytes::mebi(2));
  TcpConnection::Config cc;
  cc.cca = "cubic";
  cc.recv_buffer = Bytes::mebi(16);
  cc.send_buffer = Bytes::mebi(256);
  Transfer t(cfg, cc);
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(256));
  t.hp.run(TimePoint(Duration::seconds(2).ns()));
  // At least ~60% of the ideal 1 Gb/s x 2 s.
  EXPECT_GT(t.server_received.count(), 150'000'000);
  // No degeneration into serial RTO recovery.
  EXPECT_LE(t.client->stats().rto_fires, 2u);
}

TEST(Sack, HeavyRandomLossStillExactlyOnce) {
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10));
  cfg.path.forward.loss_rate = 0.10;  // brutal
  cfg.path.backward.loss_rate = 0.05;
  Transfer t(cfg, TcpConnection::Config{});
  t.client->connect(2, 80);
  t.client->send(Bytes(300'000));
  t.hp.run(TimePoint(Duration::seconds(120).ns()));
  EXPECT_EQ(t.server_received.count(), 300'000);
}

TEST(Sack, RetransmissionsAreBounded) {
  // SACK must prevent go-back-N style waste under mild loss: retransmitted
  // bytes should stay within a few percent of the stream size.
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(50), Duration::millis(10));
  cfg.path.forward.loss_rate = 0.01;
  Transfer t(cfg, TcpConnection::Config{});
  t.client->connect(2, 80);
  t.client->send(Bytes::mebi(2));
  t.hp.run(TimePoint(Duration::seconds(120).ns()));
  ASSERT_EQ(t.server_received.count(), Bytes::mebi(2).count());
  const double waste =
      static_cast<double>(t.client->stats().bytes_sent.count() - Bytes::mebi(2).count()) /
      static_cast<double>(Bytes::mebi(2).count());
  EXPECT_LT(waste, 0.08);  // ~1% loss should not cause >8% retransmission
}

}  // namespace
}  // namespace stob::tcp
