// Reproduces Table 1 of the paper: the WF defense landscape — each
// defense's target, strategy and traffic-manipulation primitives — extended
// with *measured* numbers on the simulated 9-site dataset:
//
//   * bandwidth overhead (the paper quotes ~80% for FRONT and 309% for
//     QCSD-style padding; padding-based defenses should dominate here),
//   * latency overhead (timing defenses trade time instead of bytes),
//   * residual k-FP accuracy (protection actually delivered).
//
// This is the quantitative backbone of the paper's §2.3 argument: current
// defenses lean on padding because stacks offer no robust timing/sizing
// control, and padding is the expensive primitive.
//
// Environment knobs: STOB_SAMPLES (default 24), STOB_TREES (default 60),
// STOB_FOLDS (default 3), STOB_SEED.
#include <cstdio>
#include <cstdlib>

#include "defenses/baselines.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

}  // namespace

int main() {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 24));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 60));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 3));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));

  std::printf("=== Table 1: WF defense summary with measured overheads ===\n");
  std::printf("dataset: 9 simulated sites x %zu samples; k-FP %zu trees, %zu folds\n\n",
              samples, trees, folds);

  workload::PageLoadOptions options;
  const wf::Dataset data =
      workload::collect_dataset(workload::nine_sites(), samples, seed, options)
          .sanitized_by_download_size(0.75);

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;
  const wf::EvalResult undefended = wf::cross_validate(data, kfp_cfg, folds, seed);

  std::printf("%-12s %-6s %-15s %-24s %9s %9s %10s\n", "Defense", "Target", "Strategy",
              "Manipulation", "BW-ovh", "Lat-ovh", "kFP-acc");
  std::printf("%-12s %-6s %-15s %-24s %9s %9s %9.3f\n", "(none)", "-", "-", "-", "-", "-",
              undefended.mean_accuracy);

  for (const auto& defense : defenses::all_defenses()) {
    Rng rng(seed ^ 0xD3F3ull);
    const defenses::Overhead ovh = defenses::measure_overhead(data, *defense, rng);
    Rng rng2(seed ^ 0xD3F3ull);
    const wf::Dataset defended =
        data.transformed([&](const wf::Trace& t) { return defense->apply(t, rng2); });
    const wf::EvalResult res = wf::cross_validate(defended, kfp_cfg, folds, seed);
    std::printf("%-12s %-6s %-15s %-24s %8.1f%% %8.1f%% %9.3f\n", defense->name().c_str(),
                defense->target().c_str(), defense->strategy().c_str(),
                defense->manipulations().describe().c_str(), ovh.bandwidth * 100.0,
                ovh.latency * 100.0, res.mean_accuracy);
    std::fflush(stdout);
  }

  std::printf("\nReference points from the literature: FRONT ~80%% bandwidth overhead,\n");
  std::printf("QCSD-style padding ~309%%; timing-only defenses cost 0%% bandwidth (the\n");
  std::printf("paper's case for stack-level timing/sizing control instead of padding).\n");
  return 0;
}
