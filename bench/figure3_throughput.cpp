// Reproduces Figure 3 of the paper: single-connection throughput under the
// incremental packet-size / TSO-size reduction strategy, over a 100 Gb/s
// link, as a function of the maximum reduction degree alpha.
//
// The paper ran iperf3 between two Xeon servers with ConnectX-6 NICs; here
// the link is a simulated 100 Gb/s pipe and the sender pays calibrated CPU
// costs per stack traversal (per TSO segment), per wire packet and per byte.
// The costs are calibrated so that the default configuration is link-bound
// (~90+ Gb/s) and the most aggressive reduction approaches the paper's
// 19.7 Gb/s floor.
//
// Besides the combined sweep (the paper's strategy), two ablation series
// isolate the packet-size-only and TSO-size-only contributions.
//
// Environment knobs: STOB_ALPHA_MAX (default 100), STOB_ALPHA_STEP (10).
#include <cstdio>
#include <cstdlib>

#include "core/policies.hpp"
#include "workload/bulk.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

workload::BulkTransferResult run_alpha(int alpha, bool reduce_pkt, bool reduce_tso) {
  core::SweepSizePolicy::Config sweep_cfg;
  sweep_cfg.alpha = alpha;
  if (!reduce_pkt) {
    // TSO-only ablation: keep the packet size at the default by zeroing the
    // per-step packet reduction (alpha drives only the TSO schedule).
    sweep_cfg.pkt_steps = 0;
  }
  if (!reduce_tso) {
    sweep_cfg.tso_steps = 0;
  }
  core::SweepSizePolicy sweep(sweep_cfg);

  workload::BulkTransferOptions opt;
  opt.link_rate = DataRate::gbps(100);
  opt.one_way_delay = Duration::micros(25);
  // Calibrated single-core costs: ~1.8 us per stack traversal (sendmsg ->
  // qdisc -> driver), 80 ns per wire-packet descriptor/completion, and a
  // small per-byte DMA-touch cost.
  opt.sender_cpu = {Duration::nanos(1800), Duration::nanos(80), 0.0015};
  opt.conn.cca = "bbr";
  opt.conn.policy = alpha > 0 ? &sweep : nullptr;
  opt.warmup = Duration::millis(15);
  opt.measure = Duration::millis(30);
  return workload::run_bulk_transfer(opt);
}

}  // namespace

int main() {
  const int alpha_max = static_cast<int>(env_int("STOB_ALPHA_MAX", 100));
  const int alpha_step = static_cast<int>(env_int("STOB_ALPHA_STEP", 10));

  std::printf("=== Figure 3: packet and TSO size adjustment vs throughput ===\n");
  std::printf("iperf3-like single flow, 100 Gb/s link, BBR, fq pacing, calibrated CPU model\n");
  std::printf("packet size cycles 1500 -> 1500 - alpha*10; TSO cycles 44 -> max(44-(alpha/4)*8, 1) segs\n\n");
  std::printf("%-7s %-16s %-16s %-16s %-10s %-10s\n", "alpha", "combined(Gbps)", "pkt-only(Gbps)",
              "tso-only(Gbps)", "wirepkts", "cpu-util");

  double floor_gbps = 1e9;
  for (int alpha = 0; alpha <= alpha_max; alpha += alpha_step) {
    const auto combined = run_alpha(alpha, true, true);
    const auto pkt_only = run_alpha(alpha, true, false);
    const auto tso_only = run_alpha(alpha, false, true);
    floor_gbps = std::min(floor_gbps, combined.goodput.gbps_f());
    std::printf("%-7d %-16.1f %-16.1f %-16.1f %-10llu %-10.2f\n", alpha,
                combined.goodput.gbps_f(), pkt_only.goodput.gbps_f(),
                tso_only.goodput.gbps_f(),
                static_cast<unsigned long long>(combined.wire_packets),
                combined.sender_cpu_utilisation);
    std::fflush(stdout);
  }

  std::printf("\nminimum combined throughput: %.1f Gb/s (paper: \"preserves 19.7 Gb/s or higher\")\n",
              floor_gbps);
  return 0;
}
