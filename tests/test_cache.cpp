// Tests for the content-addressed experiment result cache (exp/result_cache):
// the golden on-disk entry format, key derivation and its invalidation
// surface (cell digest, profiler capture, config salt, STOB_CACHE_SALT),
// quarantine of corrupted/truncated/skewed entries, the headline
// differential guarantee — cold, warm and cache-free runs are
// byte-identical at any --jobs / --proc-workers — plus eviction (gc),
// SIGKILL-mid-commit crash consistency, and a concurrent mixed hit/miss
// stress kept honest by TSan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "exp/experiment.hpp"
#include "exp/job_codec.hpp"
#include "exp/proc_runner.hpp"
#include "exp/result_cache.hpp"
#include "obs/journal.hpp"
#include "obs/manifest.hpp"
#include "obs/prof.hpp"
#include "util/subprocess.hpp"
#include "workload/website.hpp"

namespace stob::exp {
namespace {

namespace fs = std::filesystem;

// Small, fast site profiles so whole-grid tests run in well under a second.
std::vector<workload::SiteProfile> tiny_sites(std::size_t n) {
  std::vector<workload::SiteProfile> sites;
  for (std::size_t i = 0; i < n; ++i) {
    workload::SiteProfile s;
    s.name = "tiny" + std::to_string(i);
    s.html_mu = 8.5 + 0.3 * static_cast<double>(i);
    s.objects_mean = 3.0 + static_cast<double>(i);
    s.object_mu = 8.0;
    s.parallel_connections = 2;
    sites.push_back(s);
  }
  return sites;
}

/// Fresh per-test path (the pid keeps parallel ctest runs apart).
fs::path temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string name = std::string(info->test_suite_name()) + "_" + info->name() + "_" +
                           stem + "_" + std::to_string(::getpid());
  return fs::temp_directory_path() / name;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem) : path(temp_path(stem)) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// A syntactically valid (64 hex chars) cache key made of one repeated digit.
std::string key_of(char c) { return std::string(64, c); }

std::size_t count_files(const fs::path& dir) {
  std::size_t n = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file()) ++n;
  }
  return n;
}

/// Fork-mode proc options: no exec, workers run the cell in a forked child.
ProcOptions fork_opts(std::size_t workers) {
  ProcOptions proc;
  proc.workers = workers;
  proc.job_timeout = Duration::seconds(30);
  proc.backoff_base = Duration::millis(1);
  proc.backoff_cap = Duration::millis(8);
  return proc;
}

/// The grid the differential tests run: 2 sites x 1 sample x 2 defenses x
/// 2 CCAs = 8 cells, with every optional sink armed so payloads carry
/// metrics, captured events and invariant verdicts.
struct CacheGrid {
  defenses::SplitDefense split;
  ExperimentGrid grid;
  RunOptions opts;

  CacheGrid() {
    grid.sites = tiny_sites(2);
    grid.samples = 1;
    grid.defenses = {{"none", nullptr}, {"split", &split}};
    grid.ccas = {"cubic", "bbr"};
    grid.base_seed = 20260808;
    opts.jobs = 2;
    opts.collect_metrics = true;
    opts.trace_capacity = 4096;
    opts.check_invariants = true;
  }

  /// Entry key of cell `i` exactly as run_grid derives it (unprofiled).
  std::string key(std::size_t i) const {
    return ResultCache::entry_key(cell_digest(grid, i, opts), false, run_config_salt(opts));
  }
};

// --------------------------------------------------------------- entry key

TEST(EntryKey, IsHexAndSensitiveToEveryComponent) {
  const std::string base = ResultCache::entry_key("digest-a", false, "salt-a");
  EXPECT_EQ(base.size(), 64u);
  for (char c : base) EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));

  // Pure function: same inputs, same key.
  EXPECT_EQ(base, ResultCache::entry_key("digest-a", false, "salt-a"));
  // Every component is load-bearing.
  EXPECT_NE(base, ResultCache::entry_key("digest-b", false, "salt-a"));
  EXPECT_NE(base, ResultCache::entry_key("digest-a", true, "salt-a"));
  EXPECT_NE(base, ResultCache::entry_key("digest-a", false, "salt-b"));
}

TEST(EntryKey, ConfigSaltCoversPageOptionsAndEnvEscapeHatch) {
  ::unsetenv("STOB_CACHE_SALT");
  RunOptions opts;
  const std::string base = run_config_salt(opts);

  // Execution knobs never reach the salt: a cache is shared across --jobs
  // and --proc-workers settings.
  RunOptions knobs = opts;
  knobs.jobs = 7;
  knobs.proc = fork_opts(3);
  knobs.proc.retries = 9;
  EXPECT_EQ(run_config_salt(knobs), base);

  // Page options that shape the simulated bytes do.
  RunOptions tls = opts;
  tls.page.tls_records = true;
  EXPECT_NE(run_config_salt(tls), base);
  RunOptions jitter = opts;
  jitter.page.delay_jitter = 0.5;
  EXPECT_NE(run_config_salt(jitter), base);

  // STOB_CACHE_SALT folds in verbatim — the code-change escape hatch.
  ::setenv("STOB_CACHE_SALT", "rev2", 1);
  EXPECT_NE(run_config_salt(opts), base);
  ::unsetenv("STOB_CACHE_SALT");
  EXPECT_EQ(run_config_salt(opts), base);
}

// ------------------------------------------------------ entry format golden

TEST(EntryFormatGolden, EncodedBytesArePinned) {
  // The entry format is an on-disk contract: changing it must bump
  // kCacheEntryVersion (so old caches quarantine loudly) and this golden.
  TempDir dir("golden");
  const ResultCache cache(dir.path, 7);
  const std::string key = key_of('a');
  const std::string expected =
      "stobcache 1\n"
      "key aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\n"
      "codec 7\n"
      "len 5\n"
      "sha256 2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824\n"
      "\n"
      "hello";
  EXPECT_EQ(cache.encode_entry(key, "hello"), expected);
  EXPECT_EQ(kCacheEntryVersion, 1u);
}

TEST(EntryFormat, RoundTripsEveryByteValue) {
  TempDir dir("roundtrip");
  const ResultCache cache(dir.path, 3);
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  const std::string key = key_of('b');
  const std::string bytes = cache.encode_entry(key, payload);
  std::string why;
  const std::optional<std::string> back = cache.decode_entry(bytes, key, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(*back, payload);
  // The empty payload is a valid entry too (a quarantined cell's slot).
  const std::string empty = cache.encode_entry(key, "");
  EXPECT_EQ(cache.decode_entry(empty, key), "");
}

TEST(EntryFormat, EveryCorruptionIsRejectedWithItsReason) {
  TempDir dir("reject");
  const ResultCache cache(dir.path, 7);
  const std::string key = key_of('c');
  const std::string good = cache.encode_entry(key, "payload-bytes");
  ASSERT_TRUE(cache.decode_entry(good, key).has_value());

  const auto reason = [&](std::string bytes, std::string_view probe_key) {
    std::string why = "(accepted)";
    EXPECT_FALSE(cache.decode_entry(bytes, probe_key, &why).has_value());
    return why;
  };

  EXPECT_EQ(reason("", key), "magic");
  EXPECT_EQ(reason("garbage\n" + good, key), "magic");
  {
    std::string v = good;
    v[10] = '2';  // "stobcache 1" -> "stobcache 2"
    EXPECT_EQ(reason(v, key), "version");
  }
  EXPECT_EQ(reason(good, key_of('d')), "key");  // wrong cell's entry
  {
    const ResultCache skew(dir.path / "skew", 8);
    std::string why;
    EXPECT_FALSE(skew.decode_entry(good, key, &why).has_value());
    EXPECT_EQ(why, "codec");
  }
  {
    std::string v = good;
    const std::size_t at = v.find("len 13");
    ASSERT_NE(at, std::string::npos);
    v.replace(at, 6, "len 12");
    EXPECT_EQ(reason(v, key), "len");
  }
  EXPECT_EQ(reason(good.substr(0, good.size() - 1), key), "len");  // truncated
  EXPECT_EQ(reason(good + "x", key), "len");                       // padded
  {
    std::string v = good;
    v[v.size() - 1] ^= 0x01;  // flip one payload byte, length intact
    EXPECT_EQ(reason(v, key), "sha256");
  }
  {
    std::string v = good;
    v.erase(v.find("\n\n"), 1);  // blank separator line lost
    EXPECT_FALSE(cache.decode_entry(v, key).has_value());
  }
}

// ----------------------------------------------------- store / load / stats

TEST(StoreLoad, MissThenStoreThenHitWithStats) {
  TempDir dir("basic");
  ResultCache cache(dir.path, kWorkerPayloadVersion);
  const std::string key = key_of('1');

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(cache.store(key, "the-payload"));
  const std::optional<std::string> hit = cache.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "the-payload");

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.probes, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.bytes_read, 11u);  // payload bytes only
  EXPECT_GT(s.bytes_written, 11u);  // whole entry, header included
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.5);
  // The CI hit-ratio gate greps this exact shape.
  EXPECT_NE(cache.stats_line().find("1/2 hits (50.0%)"), std::string::npos);
  EXPECT_NE(cache.stats_line().find("1 stores"), std::string::npos);

  // Commits land in the index with the entry's on-disk size.
  const obs::Journal::Loaded idx = obs::Journal::load(dir.path / "index.jsonl");
  ASSERT_EQ(idx.index.size(), 1u);
  EXPECT_EQ(idx.index[0].digest, key);
  EXPECT_EQ(idx.index[0].bytes, fs::file_size(cache.entry_path(key)));
}

TEST(StoreLoad, MalformedKeyIsRejectedNotTraversed) {
  TempDir dir("badkey");
  ResultCache cache(dir.path, 1);
  EXPECT_THROW(cache.entry_path("../../etc/passwd"), std::invalid_argument);
  EXPECT_THROW(cache.entry_path(""), std::invalid_argument);
  EXPECT_THROW(cache.entry_path("ABCD"), std::invalid_argument);  // upper hex
}

TEST(StoreLoad, CorruptEntryIsQuarantinedAndNeverServed) {
  TempDir dir("quarantine");
  ResultCache cache(dir.path, 1);
  const std::string key = key_of('2');
  ASSERT_TRUE(cache.store(key, "original"));

  // Corrupt the committed entry in place (payload flip: sha mismatch).
  const fs::path path = cache.entry_path(key);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
  // Moved aside, not deleted: the corpse is kept for post-mortems...
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(count_files(dir.path / "quarantine"), 1u);
  // ...and the slot is clean: a recompute stores and serves again.
  EXPECT_TRUE(cache.store(key, "recomputed"));
  EXPECT_EQ(cache.load(key), "recomputed");
}

TEST(StoreLoad, TruncatedEntryIsQuarantined) {
  TempDir dir("truncated");
  ResultCache cache(dir.path, 1);
  const std::string key = key_of('3');
  ASSERT_TRUE(cache.store(key, "a payload long enough to truncate"));
  const fs::path path = cache.entry_path(key);
  fs::resize_file(path, fs::file_size(path) / 2);  // torn write
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(path));
}

TEST(StoreLoad, CodecSkewedEntryIsQuarantinedNotMisread) {
  TempDir dir("skew");
  const std::string key = key_of('4');
  {
    ResultCache old_rev(dir.path, 1);
    ASSERT_TRUE(old_rev.store(key, "old-codec-bytes"));
  }
  ResultCache new_rev(dir.path, 2);
  EXPECT_FALSE(new_rev.load(key).has_value());
  EXPECT_EQ(new_rev.stats().quarantined, 1u);
}

// ------------------------------------- differential: cold == warm == none

TEST(RunGridCached, ColdWarmAndCacheFreeRunsAreIdenticalAcrossJobs) {
  CacheGrid t;
  const std::vector<JobResult> baseline = run_grid(t.grid, t.opts);

  TempDir dir("diff");
  // Cold populate at jobs=4.
  {
    ResultCache cache(dir.path, kWorkerPayloadVersion);
    RunOptions cold = t.opts;
    cold.jobs = 4;
    cold.cache = &cache;
    const std::vector<JobResult> results = run_grid(t.grid, cold);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(results_identical(baseline[i], results[i])) << "cold job " << i;
    }
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().stores, t.grid.job_count());
  }
  // Warm re-run at jobs=1: every cell served, nothing recomputed, bytes
  // identical to both the cold cached run and the cache-free baseline.
  {
    ResultCache cache(dir.path, kWorkerPayloadVersion);
    RunOptions warm = t.opts;
    warm.jobs = 1;
    warm.cache = &cache;
    const std::vector<JobResult> results = run_grid(t.grid, warm);
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(results_identical(baseline[i], results[i])) << "warm job " << i;
    }
    EXPECT_EQ(cache.stats().hits, t.grid.job_count());
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 1.0);
  }
}

TEST(RunGridCached, OnlyInvalidatedCellsAreRecomputed) {
  CacheGrid t;
  TempDir dir("invalidate");
  ResultCache cache(dir.path, kWorkerPayloadVersion);
  RunOptions run = t.opts;
  run.cache = &cache;
  run_grid(t.grid, run);
  ASSERT_EQ(cache.stats().stores, t.grid.job_count());

  // Rename site 0: its 4 cells get new digests, site 1's 4 keep theirs — an
  // incremental sweep re-simulates exactly the invalidated half.
  ExperimentGrid edited = t.grid;
  edited.sites[0].name = "edited";
  ResultCache warm(dir.path, kWorkerPayloadVersion);
  run.cache = &warm;
  run_grid(edited, run);
  EXPECT_EQ(warm.stats().hits, 4u);
  EXPECT_EQ(warm.stats().misses, 4u);
  EXPECT_EQ(warm.stats().stores, 4u);
}

TEST(RunGridCached, CacheSaltEnvInvalidatesEverything) {
  CacheGrid t;
  TempDir dir("salt");
  RunOptions run = t.opts;
  {
    ResultCache cache(dir.path, kWorkerPayloadVersion);
    run.cache = &cache;
    run_grid(t.grid, run);
  }
  ::setenv("STOB_CACHE_SALT", "defense-logic-changed", 1);
  ResultCache warm(dir.path, kWorkerPayloadVersion);
  run.cache = &warm;
  run_grid(t.grid, run);
  ::unsetenv("STOB_CACHE_SALT");
  EXPECT_EQ(warm.stats().hits, 0u);
  EXPECT_EQ(warm.stats().stores, t.grid.job_count());
}

TEST(RunGridCached, CheckDeterminismVerifiesWarmRuns) {
  CacheGrid t;
  TempDir dir("verify");
  ResultCache cache(dir.path, kWorkerPayloadVersion);
  RunOptions run = t.opts;
  run.cache = &cache;
  run_grid(t.grid, run);  // cold populate

  // The reference run never consults the cache, so determinism mode is a
  // differential test of every served payload.
  run.check_determinism = true;
  EXPECT_NO_THROW(run_grid(t.grid, run));
}

TEST(RunGridCached, PoisonedEntryIsCaughtByDeterminismMode) {
  CacheGrid t;
  TempDir dir("poison");
  ResultCache cache(dir.path, kWorkerPayloadVersion);
  RunOptions run = t.opts;
  run.cache = &cache;
  run_grid(t.grid, run);

  // Swap cell 1's entry for cell 0's payload. The entry itself is *valid*
  // (header, length and sha all check out) — content addressing hashes the
  // inputs, not the output — so only a differential run can catch it.
  const std::optional<std::string> payload0 = cache.load(t.key(0));
  ASSERT_TRUE(payload0.has_value());
  ASSERT_TRUE(cache.store(t.key(1), *payload0));

  run.check_determinism = true;
  EXPECT_THROW(run_grid(t.grid, run), std::runtime_error);
}

TEST(RunGridCached, ProfiledWarmRunProducesIdenticalManifest) {
  CacheGrid t;
  TempDir dir("prof");
  ResultCache cache(dir.path, kWorkerPayloadVersion);

  const auto manifest_of = [&](ResultCache* c) {
    obs::Profiler p;
    {
      obs::ScopedProfiler guard(p);
      obs::ProfSpan span("collect");
      RunOptions run = t.opts;
      run.cache = c;
      run_grid(t.grid, run);
    }
    return obs::build_manifest("test_cache", p, nullptr, t.opts.jobs, t.grid.base_seed)
        .deterministic_json();
  };

  const std::string plain = manifest_of(nullptr);
  const std::string cold = manifest_of(&cache);   // misses: profiled keyspace
  const std::string warm = manifest_of(&cache);   // hits: spliced prof records
  EXPECT_EQ(cold, plain);
  EXPECT_EQ(warm, plain);
  // Profiled payloads live under their own keys: the cold profiled run
  // missed even though an unprofiled entry set could share the directory.
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().hits, cache.stats().stores);
}

// ------------------------------------------------- proc-mode supervisor

TEST(RunGridProcCache, ColdStoresWarmHitsByteIdentically) {
  CacheGrid t;
  const std::vector<JobResult> baseline = run_grid(t.grid, t.opts);

  TempDir dir("proc");
  ResultCache cache(dir.path, kWorkerPayloadVersion);
  RunOptions proc_run = t.opts;
  proc_run.proc = fork_opts(2);
  proc_run.cache = &cache;
  ProcReport cold;
  proc_run.proc_report = &cold;
  const std::vector<JobResult> cold_results = run_grid(t.grid, proc_run);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(results_identical(baseline[i], cold_results[i])) << "cold job " << i;
  }
  EXPECT_EQ(cold.ran, t.grid.job_count());
  EXPECT_EQ(cold.cache_stores, t.grid.job_count());
  EXPECT_EQ(cold.cache_hits, 0u);

  // Warm at a different worker count: no worker ever forks.
  proc_run.proc = fork_opts(4);
  ProcReport warm;
  proc_run.proc_report = &warm;
  const std::vector<JobResult> warm_results = run_grid(t.grid, proc_run);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(results_identical(baseline[i], warm_results[i])) << "warm job " << i;
  }
  EXPECT_EQ(warm.cache_hits, t.grid.job_count());
  EXPECT_EQ(warm.ran, 0u);
  EXPECT_EQ(warm.cache_stores, 0u);
}

TEST(RunGridProcCache, EntriesAreSharedAcrossInProcessAndProcModes) {
  CacheGrid t;
  TempDir dir("cross");
  ResultCache cache(dir.path, kWorkerPayloadVersion);
  // Populate in process...
  RunOptions run = t.opts;
  run.cache = &cache;
  run_grid(t.grid, run);
  // ...hit from the proc supervisor: same keys, same entries.
  run.proc = fork_opts(2);
  ProcReport report;
  run.proc_report = &report;
  run_grid(t.grid, run);
  EXPECT_EQ(report.cache_hits, t.grid.job_count());
  EXPECT_EQ(report.ran, 0u);
}

TEST(RunGridProcCache, CacheHitsAreJournaledSoResumeSurvivesEviction) {
  CacheGrid t;
  TempDir dir("journal");
  ResultCache cache(dir.path / "cache", kWorkerPayloadVersion);
  RunOptions run = t.opts;
  run.cache = &cache;
  run_grid(t.grid, run);  // in-process populate

  // Warm proc run journals its cache hits as finished cells...
  const fs::path journal = dir.path / "journal.jsonl";
  run.proc = fork_opts(2);
  run.proc.journal_path = journal.string();
  ProcReport warm;
  run.proc_report = &warm;
  const std::vector<JobResult> warm_results = run_grid(t.grid, run);
  EXPECT_EQ(warm.cache_hits, t.grid.job_count());

  // ...so after the cache is evicted to nothing, --resume still replays the
  // whole grid from the journal without running a single worker.
  const ResultCache::GcReport gone = cache.gc(0);
  EXPECT_EQ(gone.entries_evicted, t.grid.job_count());
  run.proc.resume = true;
  ProcReport resumed;
  run.proc_report = &resumed;
  const std::vector<JobResult> replayed = run_grid(t.grid, run);
  EXPECT_EQ(resumed.journal_hits, t.grid.job_count());
  EXPECT_EQ(resumed.cache_hits, 0u);
  EXPECT_EQ(resumed.ran, 0u);
  for (std::size_t i = 0; i < warm_results.size(); ++i) {
    EXPECT_TRUE(results_identical(warm_results[i], replayed[i])) << "job " << i;
  }
}

// ------------------------------------------------------------------- gc

TEST(Gc, EvictsOldestFirstCleansJunkAndRewritesTheIndex) {
  TempDir dir("gc");
  ResultCache cache(dir.path, 1);
  const std::string k1 = key_of('1'), k2 = key_of('2'), k3 = key_of('3');
  ASSERT_TRUE(cache.store(k1, std::string(100, 'x')));
  ASSERT_TRUE(cache.store(k2, std::string(100, 'y')));
  ASSERT_TRUE(cache.store(k3, std::string(100, 'z')));
  const std::uint64_t each = fs::file_size(cache.entry_path(k1));

  // Junk to sweep: a stale in-flight commit and a quarantine corpse.
  { std::ofstream(dir.path / "tmp" / "stale.123.0") << "half an entry"; }
  { std::ofstream(dir.path / "quarantine" / "corpse") << "bad bytes"; }

  const ResultCache::GcReport report = cache.gc(2 * each);
  EXPECT_EQ(report.entries_evicted, 1u);
  EXPECT_EQ(report.entries_kept, 2u);
  EXPECT_EQ(report.junk_removed, 2u);
  EXPECT_EQ(report.bytes_kept, 2 * each);
  EXPECT_EQ(report.bytes_evicted, each);

  // Oldest commit went; the two newest survive and still hit.
  EXPECT_FALSE(cache.load(k1).has_value());
  EXPECT_TRUE(cache.load(k2).has_value());
  EXPECT_TRUE(cache.load(k3).has_value());
  EXPECT_EQ(count_files(dir.path / "tmp"), 0u);
  EXPECT_EQ(count_files(dir.path / "quarantine"), 0u);

  // The index was rewritten to exactly the surviving set...
  const obs::Journal::Loaded idx = obs::Journal::load(dir.path / "index.jsonl");
  std::set<std::string> indexed;
  for (const obs::IndexEntry& e : idx.index) indexed.insert(e.digest);
  EXPECT_EQ(indexed, (std::set<std::string>{k2, k3}));
  // ...and the append handle survived the rewrite: new commits land in it.
  ASSERT_TRUE(cache.store(key_of('4'), "fresh"));
  const obs::Journal::Loaded after = obs::Journal::load(dir.path / "index.jsonl");
  EXPECT_EQ(after.index.size(), 3u);
  EXPECT_EQ(after.index.back().digest, key_of('4'));
}

TEST(Gc, UnindexedEntryStillHitsButRanksOldest) {
  TempDir dir("unindexed");
  ResultCache cache(dir.path, 1);
  const std::string k1 = key_of('1'), k2 = key_of('2'), k3 = key_of('3');
  ASSERT_TRUE(cache.store(k1, std::string(50, 'x')));
  ASSERT_TRUE(cache.store(k2, std::string(50, 'y')));
  // k3 lands on disk without an index record — what a crash between the
  // rename and the index append leaves behind.
  const fs::path p3 = cache.entry_path(k3);
  fs::create_directories(p3.parent_path());
  { std::ofstream(p3, std::ios::binary) << cache.encode_entry(k3, std::string(50, 'z')); }

  // A valid unindexed entry is served: the index is never consulted to hit.
  EXPECT_EQ(cache.load(k3), std::string(50, 'z'));

  // Under pressure it is the first evicted (no commit record = oldest).
  const std::uint64_t each = fs::file_size(cache.entry_path(k1));
  const ResultCache::GcReport report = cache.gc(2 * each);
  EXPECT_EQ(report.entries_evicted, 1u);
  EXPECT_FALSE(cache.load(k3).has_value());
  EXPECT_TRUE(cache.load(k1).has_value());
  EXPECT_TRUE(cache.load(k2).has_value());
}

// ------------------------------------------------------ crash consistency

TEST(CrashConsistency, SigkillMidCommitLeavesEarlierEntriesAndNoTornOnes) {
  TempDir dir("sigkill");
  const std::string survivor = key_of('a');
  const std::string doomed = key_of('b');

  // The child commits one entry, then dies by SIGKILL between the tmp write
  // and the rename of a second commit — the worst possible moment.
  util::Subprocess::Options opts;
  opts.result_fd = -1;
  opts.child_fn = [&](int) {
    ResultCache child(dir.path, 1);
    if (!child.store(survivor, "landed before the crash")) return 9;
    child.commit_hook_for_testing = [] { ::kill(::getpid(), SIGKILL); };
    child.store(doomed, "never committed");
    return 7;  // unreachable: the hook killed us
  };
  util::Subprocess child = util::Subprocess::spawn(opts);
  const util::ExitStatus status = child.wait();
  ASSERT_TRUE(status.signaled);
  ASSERT_EQ(status.term_signal, SIGKILL);

  // The completed commit survives; the torn one is invisible — only a stray
  // tmp file remains, which gc sweeps as junk.
  ResultCache cache(dir.path, 1);
  EXPECT_EQ(cache.load(survivor), "landed before the crash");
  EXPECT_FALSE(cache.load(doomed).has_value());
  EXPECT_EQ(cache.stats().quarantined, 0u);  // nothing corrupt: a miss, not a wound
  EXPECT_GE(count_files(dir.path / "tmp"), 1u);
  const ResultCache::GcReport report = cache.gc(1u << 20);
  EXPECT_GE(report.junk_removed, 1u);
  EXPECT_EQ(cache.load(survivor), "landed before the crash");
}

// ------------------------------------------------------------- concurrency

TEST(Stress, ConcurrentMixedHitsMissesAndStoresAreRaceFree) {
  // Run under TSan (ctest -R test_cache_tsan): threads race load/store on a
  // shared key set, including same-key double-stores (atomic rename wins).
  TempDir dir("stress");
  ResultCache cache(dir.path, 1);
  constexpr std::size_t kKeys = 8;
  const auto payload_of = [](std::size_t k) {
    return "payload-" + std::string(1 + k * 37, static_cast<char>('a' + k));
  };

  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < 40; ++i) {
        const std::size_t k = (t + i) % kKeys;
        const std::string key = key_of(static_cast<char>('0' + k));
        const std::optional<std::string> hit = cache.load(key);
        if (hit.has_value()) {
          if (*hit != payload_of(k)) ok = false;  // never a torn/foreign read
        } else {
          cache.store(key, payload_of(k));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(ok);
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(cache.load(key_of(static_cast<char>('0' + k))), payload_of(k));
  }
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.probes, 4u * 40u + kKeys);
  EXPECT_EQ(s.hits + s.misses, s.probes);
  EXPECT_GE(s.stores, kKeys);
}

}  // namespace
}  // namespace stob::exp
