// QUIC + Stob: the paper's observation (§2.3) that QUIC has the same
// problem as TCP — packetisation and scheduling belong to the transport,
// not the application — and the same stack-level hook solves it.
//
// Runs two identical QUIC transfers, one stock and one with a guarded
// split+delay policy at the packetisation hook, and compares the wire
// behaviour an eavesdropper sees.
//
// Build & run:   ./build/examples/quic_stob
#include <cstdio>
#include <vector>

#include "core/cca_guard.hpp"
#include "core/policies.hpp"
#include "quic/quic_connection.hpp"
#include "stack/host_pair.hpp"
#include "util/stats.hpp"

using namespace stob;

namespace {

struct WireStats {
  double mean_payload = 0;
  double mean_gap_us = 0;
  std::size_t packets = 0;
  double seconds = 0;
};

WireStats run_transfer(core::Policy* policy) {
  stack::HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(200), Duration::millis(8));
  stack::HostPair hp(cfg);

  quic::QuicConnection::Config conn_cfg;
  conn_cfg.cca = "bbr";
  conn_cfg.policy = policy;

  quic::QuicListener listener(hp.server(), 443, conn_cfg);
  listener.set_accept_callback([&](quic::QuicConnection& c) {
    c.on_connected = [&c] {
      c.send_stream(0, Bytes::mebi(2));
      c.finish_stream(0);
    };
  });

  std::vector<double> payloads, times;
  hp.path().backward().set_tx_tap([&](const net::Packet& p, TimePoint t) {
    if (p.is_quic() && p.payload.count() > 100) {  // data packets only
      payloads.push_back(static_cast<double>(p.payload.count()));
      times.push_back(t.sec());
    }
  });

  quic::QuicConnection client(hp.client(), quic::QuicConnection::Config{});
  Bytes received;
  client.on_stream_data = [&](std::uint64_t, Bytes n, bool) { received += n; };
  client.connect(hp.server().id(), 443);
  hp.run(TimePoint(Duration::seconds(60).ns()));

  WireStats out;
  out.packets = payloads.size();
  out.mean_payload = stats::mean(payloads);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < times.size(); ++i) gaps.push_back((times[i] - times[i - 1]) * 1e6);
  out.mean_gap_us = stats::mean(gaps);
  out.seconds = times.empty() ? 0 : times.back();
  if (received.count() != Bytes::mebi(2).count()) std::printf("WARNING: incomplete transfer!\n");
  return out;
}

}  // namespace

int main() {
  core::SplitPolicy split;
  core::DelayPolicy delay;
  core::CompositePolicy combo({&split, &delay});
  core::CcaGuard guarded(combo);

  std::printf("2 MB server push over QUIC-lite (BBR, 200 Mb/s, 16 ms RTT)\n\n");
  const WireStats stock = run_transfer(nullptr);
  const WireStats stob = run_transfer(&guarded);

  std::printf("%-22s %10s %14s %12s %10s\n", "stack", "packets", "mean-payload", "mean-gap",
              "duration");
  std::printf("%-22s %10zu %12.0f B %10.1f us %8.3f s\n", "stock QUIC", stock.packets,
              stock.mean_payload, stock.mean_gap_us, stock.seconds);
  std::printf("%-22s %10zu %12.0f B %10.1f us %8.3f s\n", "QUIC + Stob policy", stob.packets,
              stob.mean_payload, stob.mean_gap_us, stob.seconds);
  std::printf("\nguard clamps: %llu departures (0 = policy stayed within the CCA schedule)\n",
              static_cast<unsigned long long>(guarded.departure_clamps()));
  std::printf("The same Policy object drives TCP and QUIC: the hook lives at the\n");
  std::printf("transport's packetisation point, exactly where the paper puts Stob.\n");
  return 0;
}
