// CcaGuard — the paper's safety rule (§4.2): "Stob must ensure that it does
// not generate more aggressive traffic to the network (e.g., higher pacing
// rate than what CCA desired)."
//
// The guard wraps any policy and clamps its decisions so that
//   * the super-segment never exceeds what the CCA/autosizing chose,
//   * the wire packet size never exceeds the negotiated MSS,
//   * no segment departs before the CCA's pacing schedule would have sent
//     it (departure >= cca_departure).
// Since segment sizes can only shrink and departures can only move later,
// the guarded flow's cumulative bytes-by-time curve is bounded above by the
// unmodified CCA schedule — i.e. never more aggressive. Clamps are counted
// so experiments can verify a policy was already compliant.
#pragma once

#include "core/policy.hpp"

namespace stob::core {

class CcaGuard final : public Policy {
 public:
  explicit CcaGuard(Policy& inner) : inner_(inner) {}

  SegmentDecision on_segment(const SegmentContext& ctx) override;
  void on_flow_start(const net::FlowKey& flow) override { inner_.on_flow_start(flow); }
  void on_flow_end(const net::FlowKey& flow) override { inner_.on_flow_end(flow); }
  std::string name() const override { return "guard(" + inner_.name() + ")"; }

  /// How many decisions had to be clamped per dimension.
  std::uint64_t segment_clamps() const { return segment_clamps_; }
  std::uint64_t mss_clamps() const { return mss_clamps_; }
  std::uint64_t departure_clamps() const { return departure_clamps_; }

 private:
  Policy& inner_;
  std::uint64_t segment_clamps_ = 0;
  std::uint64_t mss_clamps_ = 0;
  std::uint64_t departure_clamps_ = 0;
};

}  // namespace stob::core
