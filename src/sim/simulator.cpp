#include "sim/simulator.hpp"

#include <utility>

namespace stob::sim {

void Simulator::remove_at(std::size_t pos) {
  const Slot last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail slot itself
  // Re-seat the former tail at the vacated position; it may need to move
  // either direction relative to its new neighbourhood.
  if (pos > 0 && before(last, heap_[(pos - 1) / 4])) {
    sift_up(pos, last);
  } else {
    sift_down(pos, last);
  }
}

void Simulator::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint32_t node = id.slot_ - 1;
  if (node >= meta_.size()) return;
  NodeMeta& m = meta_[node];
  // Generation mismatch ⇒ the event already fired or was cancelled and the
  // node may now belong to someone else; a stale handle must not touch it.
  if (m.gen != id.gen_ || m.heap_pos == kNoPos) return;
  const std::size_t pos = m.heap_pos;
  release_node(node);
  remove_at(pos);
  ++cancelled_total_;
}

}  // namespace stob::sim
