#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace stob {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_spare_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  // Subtract as uint64_t: `hi - lo` in int64_t overflows (UB) for wide
  // bounds like (INT64_MIN, INT64_MAX); unsigned wraparound is defined and
  // yields the correct range width.
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % range;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  // Add in uint64_t as well: `lo + int64_t(v % range)` overflows for ranges
  // wider than INT64_MAX. Unsigned wraparound plus the (C++20 modular)
  // cast back lands exactly in [lo, hi].
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + v % range);
}

double Rng::uniform(double lo, double hi) {
  // 53 random mantissa bits -> uniform in [0,1).
  const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: lambda must be > 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

double Rng::rayleigh(double sigma) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return sigma * std::sqrt(-2.0 * std::log(u));
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) throw std::invalid_argument("pareto: xm, alpha must be > 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("weighted_index: weights must sum to > 0");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: r landed exactly on total
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace stob
