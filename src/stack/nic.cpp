#include "stack/nic.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace stob::stack {

Nic::Nic(sim::Simulator& sim, std::unique_ptr<Qdisc> qdisc)
    : Nic(sim, std::move(qdisc), Config{}) {}

Nic::Nic(sim::Simulator& sim, std::unique_ptr<Qdisc> qdisc, Config cfg)
    : sim_(sim), qdisc_(std::move(qdisc)), cfg_(cfg) {
  assert(qdisc_);
}

void Nic::attach_egress(net::Pipe& pipe) {
  egress_ = &pipe;
  pipe.set_tx_complete([this](const net::Packet& p) { on_wire_complete(p); });
}

void Nic::transmit(net::Packet p) {
  p.enqueued_at = sim_.now();
  qdisc_->enqueue(std::move(p));
  pump();
}

void Nic::set_completion_handler(const net::FlowKey& flow, CompletionHandler handler) {
  completions_[flow] = std::move(handler);
}

void Nic::clear_completion_handler(const net::FlowKey& flow) { completions_.erase(flow); }

Bytes Nic::flow_unsent(const net::FlowKey& flow) const {
  auto it = ring_per_flow_.find(flow);
  const Bytes in_ring = it == ring_per_flow_.end() ? Bytes(0) : Bytes(it->second);
  return qdisc_->flow_backlog(flow) + in_ring;
}

void Nic::pump() {
  if (egress_ == nullptr) return;
  const TimePoint now = sim_.now();
  while (ring_bytes_ < cfg_.tx_ring) {
    std::optional<net::Packet> p = qdisc_->dequeue(now);
    if (!p) break;
    push_to_wire(std::move(*p));
  }
  // Arm (or rearm) a wakeup for the next paced packet. The ring-space guard
  // is load-bearing in both directions:
  //  * without it, a full ring + an already-eligible head (next_ready ==
  //    now) would self-schedule at the current timestamp forever;
  //  * with it, skipping the rearm (after cancelling above) is safe only
  //    because a full ring implies ring_bytes_ > 0, i.e. packets are in
  //    flight in the egress pipe, and every serialisation completion calls
  //    on_wire_complete -> pump(), which re-evaluates the qdisc and rearms
  //    once space exists. Paced packets parked in the qdisc behind a full
  //    ring therefore always have a live drain path (regression-tested by
  //    Nic.PacedPacketSurvivesFullRing).
  sim_.cancel(wakeup_);
  wakeup_ = sim::EventId();
  const TimePoint next = qdisc_->next_ready(now);
  if (next != TimePoint::max() && ring_bytes_ < cfg_.tx_ring) {
    wakeup_ = sim_.schedule_at(next, [this] {
      wakeup_ = sim::EventId();
      pump();
    });
  }
}

void Nic::push_to_wire(net::Packet p) {
  const std::int64_t payload = p.payload.count();
  if (p.tso_mss > 0 && payload > p.tso_mss) {
    // Hardware segmentation: equal-size packets at line rate, the last one
    // possibly short. Only TCP super-segments use this path.
    ++tso_segments_split_;
    obs::count("nic.tso_splits");
    obs::sample("nic.split_factor",
                static_cast<double>((payload + p.tso_mss - 1) / p.tso_mss));
    const std::int64_t mss = p.tso_mss;
    std::int64_t offset = 0;
    std::int64_t pushed = 0;
    while (offset < payload) {
      const std::int64_t chunk = std::min(mss, payload - offset);
      net::Packet wire = p;
      wire.id = net::next_packet_id();
      wire.payload = Bytes(chunk);
      wire.tso_mss = 0;
      if (wire.is_tcp()) {
        wire.tcp().seq = p.tcp().seq + static_cast<std::uint64_t>(offset);
        // FIN applies to the last byte only.
        if (offset + chunk < payload) wire.tcp().flags &= static_cast<std::uint8_t>(~net::kTcpFin);
      }
      offset += chunk;
      ring_bytes_ += wire.wire_size();
      pushed += wire.wire_size().count();
      ring_per_flow_[wire.flow] += wire.wire_size().count();
      ++wire_packets_sent_;
      obs::count("nic.wire_packets");
      obs::record_packet(obs::Layer::Nic, obs::Direction::Tx, obs::EventKind::Send, wire,
                         sim_.now());
      egress_->send(std::move(wire));
    }
    // Ring-bound invariant: the ring may overshoot tx_ring by at most the
    // burst just pushed (a whole super-segment enters once pump() saw room).
    obs::note_queue_depth(obs::QueueKind::NicRing, ring_bytes_.count(),
                          cfg_.tx_ring.count() + pushed);
    return;
  }
  ring_bytes_ += p.wire_size();
  ring_per_flow_[p.flow] += p.wire_size().count();
  ++wire_packets_sent_;
  obs::count("nic.wire_packets");
  obs::record_packet(obs::Layer::Nic, obs::Direction::Tx, obs::EventKind::Send, p, sim_.now());
  obs::note_queue_depth(obs::QueueKind::NicRing, ring_bytes_.count(),
                        cfg_.tx_ring.count() + p.wire_size().count());
  egress_->send(std::move(p));
}

void Nic::on_wire_complete(const net::Packet& p) {
  const Bytes size = p.wire_size();
  ring_bytes_ -= size;
  auto rit = ring_per_flow_.find(p.flow);
  if (rit != ring_per_flow_.end()) {
    rit->second -= size.count();
    if (rit->second <= 0) ring_per_flow_.erase(rit);
  }
  auto it = completions_.find(p.flow);
  if (it != completions_.end()) it->second(size);
  pump();
}

TimePoint CpuModel::dispatch(TimePoint now, Bytes payload, std::int64_t wire_packets) {
  if (!enabled()) return now;
  const Duration cost =
      costs_.per_segment + costs_.per_wire_packet * wire_packets +
      Duration::nanos(static_cast<std::int64_t>(costs_.per_byte_ns *
                                                static_cast<double>(payload.count())));
  const TimePoint start = std::max(now, free_at_);
  free_at_ = start + cost;
  busy_accum_ += cost;
  return free_at_;
}

}  // namespace stob::stack
