// Reader and regression gate for the perf-trajectory snapshots
// (BENCH_*.json) that bench/perf_suite emits.
//
// This is deliberately a schema-specific reader, not a general JSON parser:
// it understands exactly the "stob-bench-v1" layout our own emitter writes
// (top-level git_rev/smoke, a flat "benchmarks" array of one-line objects,
// and optionally a nested "baseline" snapshot, which it ignores). Parsing
// stops at the "baseline" key so entries embedded in an old snapshot are
// never double-counted. Synthetic ".speedup_vs_baseline" rows are skipped.
//
// bench/perf_report uses compare() + gate() to turn two snapshots into a
// speedup table and a CI exit code; tests drive the same functions with
// hand-built snapshots (including an injected synthetic regression).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace stob::bench {

struct BenchEntry {
  std::string name;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  std::uint64_t allocs = 0;
  int iters = 0;
};

struct BenchSnapshot {
  std::string git_rev;
  bool smoke = false;
  std::vector<BenchEntry> entries;

  const BenchEntry* find(std::string_view name) const;
};

/// Parse a stob-bench-v1 snapshot. Throws std::runtime_error when the text
/// is not recognisably that schema (missing "benchmarks" array).
BenchSnapshot parse_snapshot(std::string_view json);
BenchSnapshot load_snapshot(const std::filesystem::path& path);

/// One row of a baseline-vs-fresh comparison. `ratio` is
/// fresh.events_per_sec / baseline.events_per_sec — > 1 is a speedup.
struct Comparison {
  std::string name;
  double baseline_eps = 0.0;
  double fresh_eps = 0.0;
  double ratio = 0.0;
};

/// Pair up every baseline entry with the same-named fresh entry, in
/// baseline order. Baseline entries missing from the fresh run get
/// fresh_eps == 0 and ratio == 0 (the coverage gate below flags them).
/// Fresh-only entries follow the baseline rows, in fresh order, with
/// baseline_eps == 0 and ratio == 0 — a newly added benchmark is reported,
/// not silently dropped from the table.
std::vector<Comparison> compare(const BenchSnapshot& baseline, const BenchSnapshot& fresh);

struct GateOptions {
  /// Largest tolerated slowdown: a benchmark fails when its fresh
  /// events/sec drops below (1 - max_regression) x baseline. 0.25 absorbs
  /// normal run-to-run noise on shared runners while still catching the
  /// step changes a bad commit causes.
  double max_regression = 0.25;
  /// When false (default) the throughput gate only applies if both
  /// snapshots have the same smoke flag — full-run numbers are not
  /// comparable to smoke numbers, but the coverage gate still applies.
  bool ignore_smoke_mismatch = false;
};

struct GateResult {
  bool ok = true;
  /// Baseline benchmarks absent from the fresh run (coverage failures).
  std::vector<std::string> missing;
  /// Benchmarks whose ratio fell below the regression threshold.
  std::vector<Comparison> regressions;
  /// Candidate-only benchmarks (present fresh, absent from the baseline).
  /// Purely informational: a suite gaining coverage must never fail the
  /// gate — only losing coverage (`missing`) does.
  std::vector<std::string> added;
  /// True when the throughput gate was skipped due to a smoke mismatch.
  bool ratios_skipped = false;
};

/// Evaluate the regression gate over a comparison table.
GateResult gate(const BenchSnapshot& baseline, const BenchSnapshot& fresh,
                const GateOptions& opts = {});

}  // namespace stob::bench
