// Built-in Stob obfuscation policies (§4.2 of the paper).
//
// Each policy manipulates one or more of the three stack-level knobs
// (TSO segment size, wire packet size, departure time). They are the
// in-stack counterparts of the trace-level emulations in §3:
//
//  * SplitPolicy      — halve wire packets above a threshold,
//  * DelayPolicy      — inflate inter-departure gaps by U(lo, hi) percent,
//  * CompositePolicy  — chain policies (e.g. split + delay = "Combined"),
//  * SweepSizePolicy  — the Figure 3 strategy: incrementally reduce packet
//                       size and TSO size, resetting at the configured
//                       maximum reduction degree alpha,
//  * HistogramDelayPolicy — departure perturbation sampled from a compact
//                       shared-memory histogram (§4.1).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/histogram.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace stob::core {

/// Halves the wire packet size whenever the effective MSS exceeds
/// `threshold` bytes — the in-stack version of the paper's packet-splitting
/// countermeasure (packets > 1200 B become two packets of half size). The
/// resulting size never goes below `min_size` (RFC 879's 536 B minimum MSS
/// in the paper's parameterisation).
class SplitPolicy final : public Policy {
 public:
  struct Config {
    std::int64_t threshold = 1200;  // apply when wire payload would exceed this
    std::int64_t min_size = 536;    // never create packets smaller than this
  };

  SplitPolicy() : SplitPolicy(Config{}) {}
  explicit SplitPolicy(Config cfg) : cfg_(cfg) {}

  SegmentDecision on_segment(const SegmentContext& ctx) override;
  std::string name() const override { return "split"; }

 private:
  Config cfg_;
};

/// Inflates the gap between consecutive segment departures by a factor
/// drawn uniformly from [lo_frac, hi_frac] (the paper uses 10-30%).
/// Per-flow state remembers the previous departure.
class DelayPolicy final : public Policy {
 public:
  struct Config {
    double lo_frac = 0.10;
    double hi_frac = 0.30;
    std::uint64_t seed = 0xDE1A7ull;
  };

  DelayPolicy() : DelayPolicy(Config{}) {}
  explicit DelayPolicy(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

  SegmentDecision on_segment(const SegmentContext& ctx) override;
  void on_flow_start(const net::FlowKey& flow) override;
  void on_flow_end(const net::FlowKey& flow) override;
  std::string name() const override { return "delay"; }

 private:
  Config cfg_;
  Rng rng_;
  std::unordered_map<net::FlowKey, TimePoint, net::FlowKeyHash> last_departure_;
};

/// Applies a chain of policies in order. Each later policy sees the earlier
/// policy's decision folded into its context (cca_segment/mss/departure), so
/// "split then delay" composes the way the paper's Combined dataset does.
class CompositePolicy final : public Policy {
 public:
  explicit CompositePolicy(std::vector<Policy*> chain) : chain_(std::move(chain)) {}

  SegmentDecision on_segment(const SegmentContext& ctx) override;
  void on_flow_start(const net::FlowKey& flow) override;
  void on_flow_end(const net::FlowKey& flow) override;
  std::string name() const override;

 private:
  std::vector<Policy*> chain_;  // not owned
};

/// The Figure 3 strategy: over consecutive data transmissions of a flow,
/// reduce the wire packet size from `mtu` by alpha per step down to
/// mtu - alpha*10 (then reset), and reduce the TSO size from 44 segments by
/// alpha/4 per step down to 44 - (alpha/4)*8 (floor 1 segment, then reset).
class SweepSizePolicy final : public Policy {
 public:
  struct Config {
    int alpha = 0;                // maximum reduction degree (x-axis of Fig. 3)
    std::int64_t mtu = 1500;      // default wire packet size, bytes
    std::int64_t header_overhead = 52;  // IP + TCP headers inside the MTU
    int tso_default_segs = 44;    // default TSO size, in MSS units
    int pkt_steps = 10;           // reset after this many reductions
    int tso_steps = 8;
  };

  SweepSizePolicy() : SweepSizePolicy(Config{}) {}
  explicit SweepSizePolicy(Config cfg) : cfg_(cfg) {}

  SegmentDecision on_segment(const SegmentContext& ctx) override;
  void on_flow_start(const net::FlowKey& flow) override;
  void on_flow_end(const net::FlowKey& flow) override;
  std::string name() const override { return "sweep-size"; }

 private:
  struct FlowState {
    int pkt_step = 0;
    int tso_step = 0;
  };

  Config cfg_;
  std::unordered_map<net::FlowKey, FlowState, net::FlowKeyHash> state_;
};

/// Adds a departure-time perturbation sampled from a histogram (seconds).
/// The histogram is the compact shared-memory representation of §4.1; an
/// application or administrator fits it offline and installs it.
class HistogramDelayPolicy final : public Policy {
 public:
  HistogramDelayPolicy(Histogram delays, std::uint64_t seed = 0x415Dull)
      : delays_(std::move(delays)), rng_(seed) {}

  SegmentDecision on_segment(const SegmentContext& ctx) override;
  std::string name() const override { return "histogram-delay"; }

 private:
  Histogram delays_;
  Rng rng_;
};

}  // namespace stob::core
