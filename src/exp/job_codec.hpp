// Binary codec for shipping one job's full output across a process
// boundary (the out-of-process runner's result frames and the journal's
// payload field).
//
// The encoding is exact: doubles travel as raw bit patterns, so a decoded
// JobResult is results_identical() to the original and out-of-process
// sweeps stay byte-identical to in-process ones. Alongside the JobResult
// the payload carries the worker's per-job profiler capture (span ids /
// names / parents), which the supervisor splices into the caller's
// profiler in job-index order — the same reduction the in-process worker
// pool performs — so run-manifest span structure is worker-mode invariant.
//
// Fixed-width little-endian-on-x86 host encoding: frames and journals are
// machine-local artifacts consumed by the run (or resume) that wrote them,
// never interchange formats. A leading version byte rejects frames from a
// different code rev instead of misreading them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/prof.hpp"

namespace stob::exp {

/// Codec format version (the payload's leading byte). Folded into
/// exp::cell_digest so journals written by a different codec rev never
/// match on resume — they re-run instead of mis-decoding.
inline constexpr std::uint8_t kWorkerPayloadVersion = 1;

/// Everything a worker sends back for one cell.
struct WorkerPayload {
  JobResult result;
  std::vector<obs::ProfRecord> prof_records;
};

std::string encode_worker_payload(const WorkerPayload& payload);

/// Throws std::runtime_error on a malformed or version-mismatched payload.
WorkerPayload decode_worker_payload(std::string_view bytes);

}  // namespace stob::exp
