#include "core/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace stob::core {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("histogram: bad range/bins");
  counts_.assign(bins, 0);
}

Histogram Histogram::fit(std::span<const double> samples, double lo, double hi,
                         std::size_t bins) {
  Histogram h(lo, hi, bins);
  for (double s : samples) h.add(s);
  return h;
}

double Histogram::bin_width() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::size_t Histogram::bin_of(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  return std::min(static_cast<std::size_t>((value - lo_) / bin_width()), counts_.size() - 1);
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * bin_width();
}

void Histogram::add(double value, std::uint64_t n) {
  counts_[bin_of(value)] += n;
  total_ += n;
}

double Histogram::sample(Rng& rng) const {
  if (total_ == 0) throw std::logic_error("histogram: sampling an empty histogram");
  std::uint64_t target = static_cast<std::uint64_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(total_) - 1));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (target < counts_[i]) {
      return bin_lo(i) + rng.uniform(0.0, bin_width());
    }
    target -= counts_[i];
  }
  return hi_;  // unreachable with consistent total_
}

double Histogram::sample_and_remove(Rng& rng) {
  if (total_ == 0) throw std::logic_error("histogram: sampling an empty histogram");
  if (snapshot_.empty()) snapshot_ = counts_;
  std::uint64_t target = static_cast<std::uint64_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(total_) - 1));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (target < counts_[i]) {
      const double v = bin_lo(i) + rng.uniform(0.0, bin_width());
      counts_[i] -= 1;
      total_ -= 1;
      if (total_ == 0) {  // refill from the snapshot (WTF-PAD behaviour)
        counts_ = snapshot_;
        for (std::uint64_t c : counts_) total_ += c;
      }
      return v;
    }
    target -= counts_[i];
  }
  return hi_;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(counts_[i]) * (bin_lo(i) + bin_width() / 2.0);
  }
  return acc / static_cast<double>(total_);
}

std::vector<double> Histogram::serialize() const {
  std::vector<double> out;
  out.reserve(2 + counts_.size());
  out.push_back(lo_);
  out.push_back(hi_);
  for (std::uint64_t c : counts_) out.push_back(static_cast<double>(c));
  return out;
}

Histogram Histogram::deserialize(std::span<const double> data) {
  if (data.size() < 3) throw std::invalid_argument("histogram: truncated serialisation");
  Histogram h(data[0], data[1], data.size() - 2);
  for (std::size_t i = 2; i < data.size(); ++i) {
    const auto c = static_cast<std::uint64_t>(data[i]);
    h.counts_[i - 2] = c;
    h.total_ += c;
  }
  return h;
}

}  // namespace stob::core
