file(REMOVE_RECURSE
  "CMakeFiles/censorship_curve.dir/censorship_curve.cpp.o"
  "CMakeFiles/censorship_curve.dir/censorship_curve.cpp.o.d"
  "censorship_curve"
  "censorship_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censorship_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
