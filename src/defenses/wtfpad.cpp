#include "defenses/wtfpad.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stob::defenses {

// -------------------------------------------------------------- PadHistogram

PadHistogram::PadHistogram(Spec spec) : spec_(spec) {
  const std::size_t bins = std::max<std::size_t>(spec_.bins, 1);
  edges_.resize(bins + 1);
  if (spec_.log_bins) {
    const double llo = std::log(std::max(spec_.lo, 1e-9));
    const double lhi = std::log(std::max(spec_.hi, spec_.lo * 2.0));
    for (std::size_t i = 0; i <= bins; ++i) {
      edges_[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                     static_cast<double>(bins));
    }
  } else {
    for (std::size_t i = 0; i <= bins; ++i) {
      edges_[i] = spec_.lo + (spec_.hi - spec_.lo) * static_cast<double>(i) /
                                 static_cast<double>(bins);
    }
  }

  // Token mass: geometric decay across finite bins, then the infinity share
  // carved out of the total. Every bin keeps at least one token so the
  // support never collapses.
  std::vector<double> weight(bins);
  double wsum = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    weight[i] = std::pow(spec_.decay, static_cast<double>(i));
    wsum += weight[i];
  }
  const double inf_share = std::clamp(spec_.infinity_weight, 0.0, 0.95);
  const auto total = static_cast<double>(std::max<std::uint64_t>(spec_.tokens, bins + 1));
  const double finite_mass = total * (1.0 - inf_share);
  initial_.assign(bins + 1, 0);
  for (std::size_t i = 0; i < bins; ++i) {
    initial_[i] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(finite_mass * weight[i] / wsum)));
  }
  initial_[bins] = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(total * inf_share)));
  counts_ = initial_;
  total_ = 0;
  for (std::uint64_t c : counts_) total_ += c;
}

double PadHistogram::sample(Rng& rng) {
  if (total_ == 0) {
    counts_ = initial_;
    for (std::uint64_t c : counts_) total_ += c;
    ++refills_;
  }
  std::uint64_t target = static_cast<std::uint64_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(total_)));
  std::size_t bin = 0;
  for (; bin < counts_.size(); ++bin) {
    if (target <= counts_[bin]) break;
    target -= counts_[bin];
  }
  --counts_[bin];
  --total_;
  if (bin == counts_.size() - 1) return std::numeric_limits<double>::infinity();
  // Uniform within the bin keeps sampled delays off the bin edges.
  return rng.uniform(edges_[bin], edges_[bin + 1]);
}

// -------------------------------------------------------------- WtfPadPolicy

void WtfPadPolicy::begin(Rng& rng) {
  rng_ = rng.fork();
  machines_[0] = Machine{+1, Mode::Idle, 0.0, false, PadHistogram(cfg_.client_burst),
                         PadHistogram(cfg_.client_gap)};
  machines_[1] = Machine{-1, Mode::Idle, 0.0, false, PadHistogram(cfg_.server_burst),
                         PadHistogram(cfg_.server_gap)};
}

void WtfPadPolicy::arm(Machine& m, double now, Mode source) {
  // Draw from the histogram the target mode prescribes; infinity ends the
  // mode (Gap falls back to Burst, Burst falls back to Idle).
  Mode mode = source;
  while (true) {
    PadHistogram& h = mode == Mode::Gap ? m.gap : m.burst;
    const double delay = h.sample(rng_);
    if (std::isfinite(delay)) {
      m.mode = mode;
      m.timeout = now + delay;
      m.armed = true;
      return;
    }
    if (mode == Mode::Gap) {
      mode = Mode::Burst;  // fake burst over; maybe start another
      continue;
    }
    m.mode = Mode::Idle;
    m.armed = false;
    return;
  }
}

void WtfPadPolicy::fire_until(Machine& m, double until, std::vector<PacketOut>& out) {
  while (m.armed && m.timeout <= until) {
    const double t = m.timeout;
    out.push_back({t, m.direction, cfg_.dummy_size, true});
    // Burst timeout = real burst ended: fabricate a gap-mode burst. Gap
    // timeout = continue the fake burst.
    arm(m, t, Mode::Gap);
  }
}

void WtfPadPolicy::on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) {
  // Deterministic interleaving: fire every timer due before this packet, in
  // global time order across both machines.
  while (true) {
    Machine* next = nullptr;
    for (Machine& m : machines_) {
      if (m.armed && m.timeout <= ev.time && (next == nullptr || m.timeout < next->timeout)) {
        next = &m;
      }
    }
    if (next == nullptr) break;
    const double t = next->timeout;
    out.push_back({t, next->direction, cfg_.dummy_size, true});
    arm(*next, t, Mode::Gap);
  }

  out.push_back({ev.time, ev.direction, ev.size, false});  // zero-delay forward
  Machine& m = machines_[ev.direction > 0 ? 0 : 1];
  arm(m, ev.time, Mode::Burst);  // real packet always re-enters burst mode
}

void WtfPadPolicy::finish(double end_time, std::vector<PacketOut>& out) {
  // Pad only while there is real traffic to hide: timers past the last real
  // packet are dropped, as the other padding baselines do with stragglers.
  for (Machine& m : machines_) fire_until(m, end_time, out);
}

}  // namespace stob::defenses
