// Run manifests: one JSON record per bench/sweep invocation describing what
// ran (tool, git rev, config, seeds), what it measured (metrics-snapshot
// digest), and where the time went (per-phase span rollups from the
// profiler).
//
// The manifest splits cleanly into a *deterministic* part — tool, config,
// seeds, phase names and span counts, metrics digest — and a *harness* part
// (wall/CPU timings, pool counters, worker utilization) that depends on
// scheduling and machine load. deterministic_json() emits only the former,
// so `table2_kfp --check-determinism` can assert that manifests from
// different worker counts are identical minus timing.
//
// cell_spec_digest() hashes the deterministic inputs (tool + config +
// base seed, *not* the worker count) and is deliberately the precursor of
// the ROADMAP's content-addressed experiment cache key: two invocations
// with equal digests are re-running the same cells.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace stob::obs {

/// Aggregate of every closed span sharing one name.
struct PhaseRollup {
  std::string name;
  std::uint64_t count = 0;  ///< deterministic (span structure)
  // Harness side: timing and allocator behaviour.
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
};

/// Rollup of `records` by span name, sorted by name (deterministic order).
std::vector<PhaseRollup> rollup_phases(const std::vector<ProfRecord>& records);

class RunManifest {
 public:
  std::string tool;     ///< bench driver name ("table2_kfp", "perf_suite", ...)
  std::string git_rev;  ///< short HEAD rev, or "unknown"
  std::uint64_t base_seed = 0;
  std::size_t jobs = 0;  ///< worker count (harness detail, not cell spec)
  /// Tool configuration as sorted key/value pairs (samples, folds, trees,
  /// scenario lists — everything that selects *which* cells run).
  std::vector<std::pair<std::string, std::string>> config;
  /// SHA-256 of the run-level MetricsRegistry snapshot plus the metric
  /// count; empty digest when the run collected no metrics.
  std::string metrics_sha256;
  std::uint64_t metrics_lines = 0;
  std::vector<PhaseRollup> phases;
  // Harness section (omitted from the deterministic form).
  double total_wall_ms = 0.0;
  double total_cpu_ms = 0.0;
  std::string harness_metrics;  ///< Profiler::harness() snapshot text

  void set_config(std::string key, std::string value);

  /// SHA-256 over (tool, base_seed, sorted config): the content-addressed
  /// cache-key precursor. Independent of jobs, timings and git rev.
  std::string cell_spec_digest() const;

  /// Full manifest JSON (include_harness = true) or the deterministic form
  /// with every timing/scheduling-dependent field stripped.
  std::string to_json(bool include_harness = true) const;
  std::string deterministic_json() const { return to_json(false); }

  void write(const std::filesystem::path& path) const;
};

/// Assemble a manifest from a finished profiler capture: phase rollups from
/// its records, totals from its root spans, harness metrics from its
/// attached registry (plus the calling thread's buffer-pool counters), and
/// the digest of `metrics` (the run-level deterministic registry; may be
/// null). Config/seeds are left for the caller to fill.
RunManifest build_manifest(std::string tool, const Profiler& prof,
                           const MetricsRegistry* metrics, std::size_t jobs,
                           std::uint64_t base_seed);

/// Short git revision of the working tree (STOB_GIT_REV overrides; falls
/// back to `git rev-parse`, then "unknown"). Shared by manifests and the
/// perf trajectory (bench/perf_suite).
std::string git_rev();

}  // namespace stob::obs
