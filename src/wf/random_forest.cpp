#include "wf/random_forest.hpp"

#include <algorithm>
#include <stdexcept>

#include "exp/worker_pool.hpp"

namespace stob::wf {

void RandomForest::fit(const TrainView& view) {
  if (view.size() == 0) throw std::invalid_argument("RandomForest::fit: empty data");
  num_classes_ = view.num_classes;
  trees_.assign(cfg_.num_trees, DecisionTree(cfg_.tree));

  // Fork every tree's RNG from the root stream serially, in tree order:
  // tree t's stream is a function of (seed, t) alone, so the parallel
  // schedule below cannot change what any tree sees.
  Rng rng(cfg_.seed);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(cfg_.num_trees);
  for (std::size_t t = 0; t < cfg_.num_trees; ++t) tree_rngs.push_back(rng.fork());

  const auto n = view.size();
  const auto sample_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg_.bootstrap_fraction * static_cast<double>(n)));
  exp::run_ordered<char>(cfg_.num_trees, cfg_.fit_jobs, [&](std::size_t t) {
    Rng tree_rng = tree_rngs[t];
    std::vector<std::size_t> indices(sample_n);
    for (std::size_t& i : indices) {
      i = static_cast<std::size_t>(tree_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    trees_[t].fit(view, indices, tree_rng);
    return char{0};
  });

  flatten();
}

void RandomForest::flatten() {
  flat_ = Flat{};
  std::size_t total_nodes = 0;
  std::size_t total_dists = 0;
  for (const DecisionTree& tree : trees_) {
    total_nodes += tree.nodes().size();
    total_dists += tree.dists().size();
  }
  flat_.nodes.reserve(total_nodes);
  flat_.dists.reserve(total_dists);
  flat_.tree_base.reserve(trees_.size() + 1);

  for (const DecisionTree& tree : trees_) {
    const auto node_base = static_cast<std::uint32_t>(flat_.nodes.size());
    const auto dist_base = static_cast<std::uint32_t>(flat_.dists.size());
    flat_.tree_base.push_back(node_base);
    for (const DecisionTree::Node& nd : tree.nodes()) {
      FlatNode fn;
      fn.threshold = nd.threshold;
      fn.feature = nd.feature;
      if (nd.feature >= 0) {
        fn.kid[0] = node_base + nd.left;
        fn.kid[1] = node_base + nd.right;
      } else {
        fn.kid[0] = dist_base + nd.dist_offset;
        fn.kid[1] = static_cast<std::uint32_t>(nd.majority);
      }
      flat_.nodes.push_back(fn);
    }
    flat_.dists.insert(flat_.dists.end(), tree.dists().begin(), tree.dists().end());
  }
  flat_.tree_base.push_back(static_cast<std::uint32_t>(flat_.nodes.size()));
}

std::uint32_t RandomForest::descend_flat(std::uint32_t root, const double* x) const {
  const FlatNode* nodes = flat_.nodes.data();
  std::uint32_t cur = root;
  while (nodes[cur].feature >= 0) {
    const FlatNode& nd = nodes[cur];
    cur = nd.kid[!(x[static_cast<std::size_t>(nd.feature)] <= nd.threshold)];
  }
  return cur;
}

int RandomForest::predict(std::span<const double> x) const {
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  const std::size_t num_trees = trees_.size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::uint32_t leaf = descend_flat(flat_.tree_base[t], x.data());
    votes[flat_.nodes[leaf].kid[1]] += 1;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> RandomForest::predict_proba(std::span<const double> x) const {
  const auto classes = static_cast<std::size_t>(num_classes_);
  std::vector<double> acc(classes, 0.0);
  const std::size_t num_trees = trees_.size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::uint32_t leaf = descend_flat(flat_.tree_base[t], x.data());
    const double* dist = flat_.dists.data() + flat_.nodes[leaf].kid[0];
    for (std::size_t c = 0; c < classes; ++c) acc[c] += dist[c];
  }
  for (double& v : acc) v /= static_cast<double>(num_trees);
  return acc;
}

std::vector<std::uint32_t> RandomForest::leaf_vector(std::span<const double> x) const {
  std::vector<std::uint32_t> leaves;
  const std::size_t num_trees = trees_.size();
  leaves.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    leaves.push_back(descend_flat(flat_.tree_base[t], x.data()) - flat_.tree_base[t]);
  }
  return leaves;
}

namespace {
constexpr std::size_t kBlock = 512;  // samples walked per tree pass (block rows stay L2-resident)
}

void RandomForest::descend_block(std::uint32_t root, const double* const* rows, std::size_t m,
                                 std::uint32_t* leaves) const {
  const FlatNode* nodes = flat_.nodes.data();
  // One branch-free level step for one lane; a lane already at its leaf
  // (feature < 0) re-selects the leaf via conditional moves.
  const auto step = [nodes](std::uint32_t c, std::int32_t f, const double* x) {
    const FlatNode& nd = nodes[c];
    const std::size_t i = f < 0 ? 0 : static_cast<std::size_t>(f);
    const std::uint32_t next = nd.kid[!(x[i] <= nd.threshold)];
    return f < 0 ? c : next;
  };
  // Four lanes in flight: their dependent node loads overlap instead of
  // serializing, and the group exits once all four reached a leaf (max of
  // four path lengths, not tree depth).
  std::size_t r = 0;
  for (; r + 4 <= m; r += 4) {
    std::uint32_t c0 = root, c1 = root, c2 = root, c3 = root;
    const double* x0 = rows[r];
    const double* x1 = rows[r + 1];
    const double* x2 = rows[r + 2];
    const double* x3 = rows[r + 3];
    while (true) {
      const std::int32_t f0 = nodes[c0].feature;
      const std::int32_t f1 = nodes[c1].feature;
      const std::int32_t f2 = nodes[c2].feature;
      const std::int32_t f3 = nodes[c3].feature;
      if ((f0 & f1 & f2 & f3) < 0) break;  // all four at leaves
      c0 = step(c0, f0, x0);
      c1 = step(c1, f1, x1);
      c2 = step(c2, f2, x2);
      c3 = step(c3, f3, x3);
    }
    leaves[r] = c0;
    leaves[r + 1] = c1;
    leaves[r + 2] = c2;
    leaves[r + 3] = c3;
  }
  for (; r < m; ++r) leaves[r] = descend_flat(root, rows[r]);
}

std::vector<int> RandomForest::predict_batch(const FeatureMatrix& x) const {
  const std::size_t rows = x.rows();
  const auto classes = static_cast<std::size_t>(num_classes_);
  const std::size_t num_trees = trees_.size();
  std::vector<int> out(rows, 0);
  std::vector<int> votes(kBlock * classes);
  const double* row_ptr[kBlock];
  std::uint32_t leaves[kBlock];
  for (std::size_t lo = 0; lo < rows; lo += kBlock) {
    const std::size_t m = std::min(rows - lo, kBlock);
    for (std::size_t r = 0; r < m; ++r) row_ptr[r] = x.row(lo + r).data();
    std::fill(votes.begin(), votes.begin() + static_cast<std::ptrdiff_t>(m * classes), 0);
    for (std::size_t t = 0; t < num_trees; ++t) {
      descend_block(flat_.tree_base[t], row_ptr, m, leaves);
      for (std::size_t r = 0; r < m; ++r) votes[r * classes + flat_.nodes[leaves[r]].kid[1]] += 1;
    }
    for (std::size_t r = 0; r < m; ++r) {
      const int* v = votes.data() + r * classes;
      std::size_t best = 0;
      for (std::size_t c = 1; c < classes; ++c) {
        if (v[c] > v[best]) best = c;  // first max wins, like max_element
      }
      out[lo + r] = static_cast<int>(best);
    }
  }
  return out;
}

std::vector<double> RandomForest::predict_proba_batch(const FeatureMatrix& x) const {
  const std::size_t rows = x.rows();
  const auto classes = static_cast<std::size_t>(num_classes_);
  const std::size_t num_trees = trees_.size();
  std::vector<double> out(rows * classes, 0.0);
  const double* row_ptr[kBlock];
  std::uint32_t leaves[kBlock];
  // Trees outer, samples inner: per sample the accumulation still happens
  // in tree order, so sums are bit-identical to the per-sample path.
  for (std::size_t lo = 0; lo < rows; lo += kBlock) {
    const std::size_t m = std::min(rows - lo, kBlock);
    for (std::size_t r = 0; r < m; ++r) row_ptr[r] = x.row(lo + r).data();
    for (std::size_t t = 0; t < num_trees; ++t) {
      descend_block(flat_.tree_base[t], row_ptr, m, leaves);
      for (std::size_t r = 0; r < m; ++r) {
        const double* dist = flat_.dists.data() + flat_.nodes[leaves[r]].kid[0];
        double* acc = out.data() + (lo + r) * classes;
        for (std::size_t c = 0; c < classes; ++c) acc[c] += dist[c];
      }
    }
  }
  for (double& v : out) v /= static_cast<double>(num_trees);
  return out;
}

std::vector<std::uint32_t> RandomForest::leaf_batch(const FeatureMatrix& x) const {
  const std::size_t rows = x.rows();
  const std::size_t num_trees = trees_.size();
  std::vector<std::uint32_t> out(rows * num_trees, 0);
  const double* row_ptr[kBlock];
  std::uint32_t leaves[kBlock];
  for (std::size_t lo = 0; lo < rows; lo += kBlock) {
    const std::size_t m = std::min(rows - lo, kBlock);
    for (std::size_t r = 0; r < m; ++r) row_ptr[r] = x.row(lo + r).data();
    for (std::size_t t = 0; t < num_trees; ++t) {
      const std::uint32_t root = flat_.tree_base[t];
      descend_block(root, row_ptr, m, leaves);
      for (std::size_t r = 0; r < m; ++r) out[(lo + r) * num_trees + t] = leaves[r] - root;
    }
  }
  return out;
}

}  // namespace stob::wf
