// Minimal SHA-256 (FIPS 180-4), used to fingerprint exported traces.
//
// The golden-trace regression corpus (tests/golden/) stores one hash per
// canonical simulation instead of megabytes of JSONL; any behavioural drift
// in the stack — scheduler order, packetisation, fault decisions — changes
// the exported trace and therefore the digest. Not a security boundary,
// just a compact, stable fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace stob::util {

class Sha256 {
 public:
  Sha256();

  /// Absorb `len` bytes. May be called repeatedly (streaming).
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalise and return the digest as 64 lowercase hex characters. The
  /// object must not be updated after this.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
};

/// One-shot convenience: SHA-256 of `s` as lowercase hex.
std::string sha256_hex(std::string_view s);

}  // namespace stob::util
