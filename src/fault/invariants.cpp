#include "fault/invariants.hpp"

#include <sstream>

#include "util/log.hpp"

namespace stob::fault {

void StackInvariantChecker::check(bool ok, const char* invariant, const std::string& detail) {
  ++checks_;
  if (ok) return;
  report(invariant, detail);
}

void StackInvariantChecker::report(const char* invariant, const std::string& detail) {
  ++violations_;
  std::ostringstream os;
  os << "stack invariant violated: " << invariant << " — " << detail;
  // Fail loudly with a flight-recorder dump when one is installed.
  if (obs::TraceRecorder* r = obs::recorder(); r != nullptr && cfg_.dump_events > 0) {
    const std::vector<obs::PacketEvent> events = r->events();
    const std::size_t n = std::min(cfg_.dump_events, events.size());
    os << "\nflight recorder (last " << n << " of " << events.size() << " events):";
    for (std::size_t i = events.size() - n; i < events.size(); ++i) {
      os << "\n  " << obs::TraceRecorder::to_json(events[i]);
    }
  }
  const std::string msg = os.str();
  STOB_ERROR("invariants") << msg;
  if (reports_.size() < cfg_.max_reports) reports_.push_back(msg);
  if (cfg_.throw_on_violation) throw StackInvariantError(msg);
}

void StackInvariantChecker::inject_violation_for_test() {
  report("injected-for-test", "deliberate violation via test hook");
}

void StackInvariantChecker::on_departure(const obs::DepartureEvent& ev) {
  std::ostringstream id;
  id << "flow [" << ev.flow << "] t=" << ev.now;

  check(ev.departure >= ev.cca_departure, "cca-departure-never-earlier",
        [&] {
          std::ostringstream os;
          os << id.str() << " departure " << ev.departure << " < cca_departure "
             << ev.cca_departure;
          return os.str();
        }());
  check(ev.bytes <= ev.cca_segment, "cca-segment-never-larger",
        [&] {
          std::ostringstream os;
          os << id.str() << " bytes " << ev.bytes << " > cca_segment " << ev.cca_segment;
          return os.str();
        }());
  if (ev.window_limited) {
    check(ev.inflight + ev.bytes <= ev.cwnd + ev.cwnd_slack, "cwnd-respected",
          [&] {
            std::ostringstream os;
            os << id.str() << " inflight " << ev.inflight << " + bytes " << ev.bytes
               << " > cwnd " << ev.cwnd << " + slack " << ev.cwnd_slack;
            return os.str();
          }());
  }
}

void StackInvariantChecker::on_packet(const obs::PacketEvent& ev) {
  FlowState& fs = flows_[ev.flow];
  std::ostringstream id;
  id << "flow [" << ev.flow << "] t=" << ev.time << " pkt#" << ev.packet_id;

  switch (ev.layer) {
    case obs::Layer::Tls:
      if (ev.dir == obs::Direction::Tx && ev.kind == obs::EventKind::Send) {
        fs.tls_tx += ev.bytes;
      }
      break;

    case obs::Layer::Tcp:
      if (ev.dir != obs::Direction::Tx) break;
      if (ev.kind == obs::EventKind::Send && ev.bytes > 0) {
        // New-data sequence numbers never regress.
        check(!fs.have_tcp_seq || ev.seq >= fs.last_tcp_seq, "tcp-seq-monotonic",
              id.str() + " seq " + std::to_string(ev.seq) + " < previous " +
                  std::to_string(fs.last_tcp_seq));
        fs.have_tcp_seq = true;
        fs.last_tcp_seq = ev.seq;
        const std::uint64_t end = ev.seq + static_cast<std::uint64_t>(ev.bytes);
        if (end > fs.tcp_high) fs.tcp_high = end;
        // TLS -> TCP conservation: the transport never invents stream bytes
        // the record layer did not seal (checkable only when TLS framing is
        // in use on this flow).
        if (fs.tls_tx > 0) {
          check(fs.tcp_high <= static_cast<std::uint64_t>(fs.tls_tx), "tls-tcp-conservation",
                id.str() + " tcp stream high " + std::to_string(fs.tcp_high) +
                    " > sealed tls bytes " + std::to_string(fs.tls_tx));
        }
      } else if (ev.kind == obs::EventKind::Retransmit) {
        // No retransmission of data that is already cumulatively acked.
        if (fs.have_una && ev.bytes > 0) {
          check(ev.seq + static_cast<std::uint64_t>(ev.bytes) > fs.una, "no-retx-of-acked",
                id.str() + " retx [" + std::to_string(ev.seq) + ", " +
                    std::to_string(ev.seq + static_cast<std::uint64_t>(ev.bytes)) +
                    ") entirely below una " + std::to_string(fs.una));
        }
      }
      break;

    case obs::Layer::Quic:
      if (ev.dir != obs::Direction::Tx) break;
      if (ev.kind == obs::EventKind::Send || ev.kind == obs::EventKind::Retransmit) {
        // QUIC never reuses a packet number.
        check(!fs.have_quic_pn || ev.seq > fs.last_quic_pn, "quic-pn-strictly-increasing",
              id.str() + " pn " + std::to_string(ev.seq) + " <= previous " +
                  std::to_string(fs.last_quic_pn));
        fs.have_quic_pn = true;
        fs.last_quic_pn = ev.seq;
      }
      break;

    case obs::Layer::Qdisc:
      if (ev.kind == obs::EventKind::Enqueue) {
        fs.qdisc_in += ev.bytes;
      } else if (ev.kind == obs::EventKind::Dequeue) {
        fs.qdisc_out += ev.bytes;
        check(fs.qdisc_out <= fs.qdisc_in, "qdisc-conservation",
              id.str() + " qdisc released " + std::to_string(fs.qdisc_out) +
                  " > admitted " + std::to_string(fs.qdisc_in));
      }
      break;

    case obs::Layer::Nic:
      if (ev.dir == obs::Direction::Tx && ev.kind == obs::EventKind::Send) {
        fs.nic_tx += ev.bytes;
        if (fs.qdisc_in > 0) {
          check(fs.nic_tx <= fs.qdisc_out, "qdisc-nic-conservation",
                id.str() + " nic pushed " + std::to_string(fs.nic_tx) +
                    " > qdisc released " + std::to_string(fs.qdisc_out));
        }
      }
      break;

    case obs::Layer::Wire:
      if (ev.dir == obs::Direction::Tx && ev.kind == obs::EventKind::Send) {
        fs.wire_tx += ev.bytes;
        if (fs.nic_tx > 0) {
          check(fs.wire_tx <= fs.nic_tx, "nic-wire-conservation",
                id.str() + " wire tx " + std::to_string(fs.wire_tx) + " > nic pushed " +
                    std::to_string(fs.nic_tx));
        }
      } else if (ev.dir == obs::Direction::Rx && ev.kind == obs::EventKind::Receive) {
        fs.wire_rx += ev.bytes;
        if (fs.wire_tx > 0) {
          // The fault layer's duplication budget is the only legitimate way
          // to receive more bytes than were transmitted.
          check(fs.wire_rx <= fs.wire_tx + fs.dup_budget, "wire-conservation",
                id.str() + " wire rx " + std::to_string(fs.wire_rx) + " > wire tx " +
                    std::to_string(fs.wire_tx) + " + dup budget " +
                    std::to_string(fs.dup_budget));
        }
      }
      break;

    default:
      break;
  }
}

void StackInvariantChecker::on_ack_advance(const net::FlowKey& flow, std::uint64_t una) {
  FlowState& fs = flows_[flow];
  fs.have_una = true;
  fs.una = una;
}

void StackInvariantChecker::on_queue_depth(obs::QueueKind kind, std::int64_t depth,
                                           std::int64_t bound) {
  const char* name =
      kind == obs::QueueKind::QdiscBacklog ? "qdisc-backlog-bound" : "nic-ring-bound";
  check(depth >= 0 && depth <= bound, name,
        "depth " + std::to_string(depth) + " outside [0, " + std::to_string(bound) + "]");
}

void StackInvariantChecker::on_fault(obs::FaultKind kind, const net::Packet& p, TimePoint) {
  if (kind == obs::FaultKind::Duplicate) flows_[p.flow].dup_budget += p.payload.count();
}

}  // namespace stob::fault
