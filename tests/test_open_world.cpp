// Open-world k-FP evaluation tests: the unanimity rule, metric accounting,
// and behaviour on separable vs indistinguishable data.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wf/open_world.hpp"

namespace stob::wf {
namespace {

/// Monitored sites with strong structure; background with diffuse random
/// structure (every background trace unlike the others).
Dataset monitored_sites(int classes, int samples, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int c = 0; c < classes; ++c) {
    for (int s = 0; s < samples; ++s) {
      Trace t;
      double time = 0;
      for (int b = 0; b < 3 + 2 * c; ++b) {
        t.add(time, +1, 580 + 10 * c);
        time += rng.uniform(0.008, 0.012);
        for (int k = 0; k < 8 + 6 * c; ++k) {
          t.add(time, -1, 1100 + 60 * c);
          time += rng.uniform(0.001, 0.002);
        }
      }
      d.add(std::move(t), c);
    }
  }
  return d;
}

Dataset random_background(int samples, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int s = 0; s < samples; ++s) {
    Trace t;
    double time = 0;
    const int bursts = static_cast<int>(rng.uniform_int(2, 20));
    for (int b = 0; b < bursts; ++b) {
      t.add(time, +1, rng.uniform_int(200, 900));
      time += rng.uniform(0.002, 0.05);
      const int pkts = static_cast<int>(rng.uniform_int(2, 40));
      for (int k = 0; k < pkts; ++k) {
        t.add(time, -1, rng.uniform_int(400, 1514));
        time += rng.uniform(0.0005, 0.004);
      }
    }
    d.add(std::move(t), 0);
  }
  return d;
}

OpenWorldConfig small_config() {
  OpenWorldConfig cfg;
  cfg.forest.num_trees = 40;
  cfg.k_neighbors = 3;
  return cfg;
}

TEST(OpenWorld, DetectsMonitoredAndRejectsBackground) {
  const Dataset mon = monitored_sites(4, 20, 31);
  const Dataset bg = random_background(80, 37);
  const OpenWorldResult res = open_world_evaluate(mon, bg, small_config());
  EXPECT_GT(res.tpr, 0.6);
  EXPECT_LT(res.fpr, 0.2);
  EXPECT_GT(res.monitored_accuracy, 0.8);  // true positives name the right site
  EXPECT_GT(res.monitored_tested, 0u);
  EXPECT_GT(res.background_tested, 0u);
}

TEST(OpenWorld, DeterministicForSeed) {
  const Dataset mon = monitored_sites(3, 14, 41);
  const Dataset bg = random_background(40, 43);
  const OpenWorldResult a = open_world_evaluate(mon, bg, small_config());
  const OpenWorldResult b = open_world_evaluate(mon, bg, small_config());
  EXPECT_EQ(a.tpr, b.tpr);
  EXPECT_EQ(a.fpr, b.fpr);
}

TEST(OpenWorld, UnanimityTradesTprForFpr) {
  // Raising k makes the unanimity requirement stricter: fewer monitored
  // detections, but never more background false positives.
  const Dataset mon = monitored_sites(4, 18, 51);
  const Dataset bg = random_background(60, 53);
  OpenWorldConfig loose = small_config();
  loose.k_neighbors = 1;
  OpenWorldConfig strict = small_config();
  strict.k_neighbors = 6;
  const OpenWorldResult l = open_world_evaluate(mon, bg, loose);
  const OpenWorldResult s = open_world_evaluate(mon, bg, strict);
  EXPECT_GE(l.tpr, s.tpr);
  EXPECT_GE(l.fpr, s.fpr);
}

TEST(OpenWorld, EmptyInputsThrow) {
  const Dataset mon = monitored_sites(2, 6, 61);
  EXPECT_THROW(open_world_evaluate(mon, Dataset{}, small_config()), std::invalid_argument);
  EXPECT_THROW(open_world_evaluate(Dataset{}, mon, small_config()), std::invalid_argument);
}

TEST(OpenWorld, MetricsWithinBounds) {
  const Dataset mon = monitored_sites(3, 10, 71);
  const Dataset bg = random_background(30, 73);
  const OpenWorldResult res = open_world_evaluate(mon, bg, small_config());
  EXPECT_GE(res.tpr, 0.0);
  EXPECT_LE(res.tpr, 1.0);
  EXPECT_GE(res.fpr, 0.0);
  EXPECT_LE(res.fpr, 1.0);
  EXPECT_GE(res.precision, 0.0);
  EXPECT_LE(res.precision, 1.0);
}

}  // namespace
}  // namespace stob::wf
