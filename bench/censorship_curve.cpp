// Extension of Table 2 (§3's censorship argument): k-FP accuracy as a
// function of the observed prefix length N, for each countermeasure. The
// paper's claim is that the countermeasures *slow the growth* of attack
// confidence — a censor that must decide early sees a less fingerprintable
// prefix — even when whole-trace accuracy is unaffected (or helped).
//
// Runs on the parallel experiment engine: collection is a (site x sample)
// job grid, and each (N, countermeasure) point of the curve is one job.
//
// Flags: --jobs N (default hardware concurrency), --check-determinism.
// Environment knobs: STOB_SAMPLES (default 50), STOB_TREES (default 80),
// STOB_FOLDS (default 5), STOB_SEED, STOB_JOBS.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 50));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 80));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 5));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));
  const exp::Cli cli = exp::parse_cli(argc, argv);
  const std::size_t jobs = cli.jobs == 0 ? exp::default_jobs() : cli.jobs;

  std::printf("=== Censorship curve: k-FP accuracy vs observed prefix length ===\n");
  // Worker count goes to stderr: stdout must be byte-identical for any
  // --jobs value (the determinism contract the engine provides).
  std::fprintf(stderr, "censorship_curve: running with %zu jobs\n", jobs);
  std::printf("9 simulated sites x %zu samples; k-FP %zu trees, %zu folds\n\n", samples, trees,
              folds);

  exp::ExperimentGrid grid;
  grid.sites = workload::nine_sites();
  grid.samples = samples;
  grid.base_seed = seed;
  exp::RunOptions run;
  run.jobs = jobs;
  run.check_determinism = cli.check_determinism;
  run.proc = exp::proc_options_from_cli(cli);
  exp::ProcReport proc_report;
  run.proc_report = &proc_report;
  const exp::CacheSession cache = exp::CacheSession::from_cli(cli);
  run.cache = cache.cache();
  const wf::Dataset data =
      exp::to_dataset(exp::run_grid(grid, run)).sanitized_by_download_size(0.75);
  if (run.proc.workers > 0) {
    exp::print_proc_summary("censorship_curve", run.proc, proc_report);
  }
  cache.finish("censorship_curve");

  defenses::SplitDefense split;
  defenses::DelayDefense delay;
  defenses::CombinedDefense combined;
  struct Variant {
    const char* name;
    const defenses::TraceDefense* defense;
  };
  const std::vector<Variant> variants{
      {"Original", nullptr}, {"Split", &split}, {"Delayed", &delay}, {"Combined", &combined}};
  const std::vector<std::size_t> prefixes{5, 10, 15, 20, 30, 45, 60, 90, 150, 0};

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;

  // One job per curve point; per-cell rng re-derived as in the serial loop.
  const std::vector<wf::EvalResult> cells = exp::run_ordered<wf::EvalResult>(
      prefixes.size() * variants.size(), jobs, [&](std::size_t cell) {
        const std::size_t n = prefixes[cell / variants.size()];
        const Variant& v = variants[cell % variants.size()];
        Rng rng(seed ^ 0xCC5ull);
        const wf::Dataset defended = data.transformed([&](const wf::Trace& t) {
          wf::Trace out =
              v.defense != nullptr ? defenses::apply_to_prefix(*v.defense, t, n, rng) : t;
          return n == 0 ? out : out.truncated(n);
        });
        return wf::cross_validate(defended, kfp_cfg, folds, seed);
      });

  std::printf("%-6s", "N");
  for (const auto& v : variants) std::printf("  %-10s", v.name);
  std::printf("\n");
  for (std::size_t p = 0; p < prefixes.size(); ++p) {
    std::printf("%-6s", prefixes[p] == 0 ? "All" : std::to_string(prefixes[p]).c_str());
    for (std::size_t v = 0; v < variants.size(); ++v) {
      std::printf("  %-10.3f", cells[p * variants.size() + v].mean_accuracy);
    }
    std::printf("\n");
  }

  std::printf("\nReading: with countermeasures the curve climbs more slowly — the censor\n");
  std::printf("needs more packets for the same confidence, delaying the blocking decision.\n");
  return 0;
}
