#include "wf/features.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "util/stats.hpp"

namespace stob::wf {

namespace {

/// Helper collecting (name, value) pairs so names and values never drift.
/// Values land in caller-owned storage via a write cursor, so a dataset's
/// rows go straight into the contiguous FeatureMatrix without a per-trace
/// vector in between.
class FeatureBuilder {
 public:
  explicit FeatureBuilder(std::span<double> out) : out_(out) {}

  void add(std::string_view name, double value) {
    if (cursor_ < out_.size()) out_[cursor_++] = std::isfinite(value) ? value : 0.0;
    if (names_ != nullptr) names_->emplace_back(name);
  }

  /// Summary-statistic bundle over a value list. Mean and stddev accumulate
  /// over the original order (their rounding depends on it); the order
  /// statistics share one sort of the list instead of re-sorting per
  /// quantile, which yields the same values.
  void add_stats(std::string_view prefix, std::span<const double> xs) {
    add2(prefix, "_mean", stats::mean(xs));
    add2(prefix, "_std", stats::stddev(xs));
    sorted_.assign(xs.begin(), xs.end());
    std::sort(sorted_.begin(), sorted_.end());
    add2(prefix, "_min", sorted_.empty() ? 0.0 : sorted_.front());
    add2(prefix, "_max", sorted_.empty() ? 0.0 : sorted_.back());
    add2(prefix, "_median", stats::percentile_sorted(sorted_, 50.0));
    add2(prefix, "_p75", stats::percentile_sorted(sorted_, 75.0));
  }

  void collect_names(std::vector<std::string>* names) { names_ = names; }
  bool collecting_names() const { return names_ != nullptr; }

 private:
  /// add() without building the concatenated name unless names are wanted.
  void add2(std::string_view prefix, std::string_view suffix, double value) {
    if (cursor_ < out_.size()) out_[cursor_++] = std::isfinite(value) ? value : 0.0;
    if (names_ != nullptr) {
      std::string name;
      name.reserve(prefix.size() + suffix.size());
      name.append(prefix).append(suffix);
      names_->push_back(std::move(name));
    }
  }

  std::span<double> out_;
  std::size_t cursor_ = 0;
  std::vector<std::string>* names_ = nullptr;
  std::vector<double> sorted_;
};

/// The single implementation walked both for names and values.
void build(const Trace& trace, FeatureBuilder& fb) {
  const auto& pkts = trace.packets();
  const double n = static_cast<double>(pkts.size());

  std::vector<double> in_times, out_times, all_times;
  std::vector<double> in_sizes, out_sizes;
  all_times.reserve(pkts.size());
  in_times.reserve(pkts.size());
  out_times.reserve(pkts.size());
  in_sizes.reserve(pkts.size());
  out_sizes.reserve(pkts.size());
  for (const PacketRecord& p : pkts) {
    all_times.push_back(p.time);
    if (p.direction > 0) {
      out_times.push_back(p.time);
      out_sizes.push_back(static_cast<double>(p.size));
    } else {
      in_times.push_back(p.time);
      in_sizes.push_back(static_cast<double>(p.size));
    }
  }

  // ---- 1. Counts and fractions.
  fb.add("count_total", n);
  fb.add("count_in", static_cast<double>(in_times.size()));
  fb.add("count_out", static_cast<double>(out_times.size()));
  fb.add("frac_in", n > 0 ? static_cast<double>(in_times.size()) / n : 0.0);
  fb.add("frac_out", n > 0 ? static_cast<double>(out_times.size()) / n : 0.0);

  // ---- 2. First/last 30 packet composition.
  const std::size_t head = std::min<std::size_t>(30, pkts.size());
  double head_in = 0, head_out = 0;
  for (std::size_t i = 0; i < head; ++i) (pkts[i].direction > 0 ? head_out : head_in) += 1;
  fb.add("first30_in", head_in);
  fb.add("first30_out", head_out);
  double tail_in = 0, tail_out = 0;
  for (std::size_t i = pkts.size() >= 30 ? pkts.size() - 30 : 0; i < pkts.size(); ++i) {
    (pkts[i].direction > 0 ? tail_out : tail_in) += 1;
  }
  fb.add("last30_in", tail_in);
  fb.add("last30_out", tail_out);

  // ---- 3. Packet ordering: for the i-th outgoing (resp. incoming) packet,
  // its absolute position in the trace.
  std::vector<double> out_positions, in_positions;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    (pkts[i].direction > 0 ? out_positions : in_positions).push_back(static_cast<double>(i));
  }
  fb.add("order_out_mean", stats::mean(out_positions));
  fb.add("order_out_std", stats::stddev(out_positions));
  fb.add("order_in_mean", stats::mean(in_positions));
  fb.add("order_in_std", stats::stddev(in_positions));

  // ---- 4. Concentration of outgoing packets (chunks of 20 packets).
  std::vector<double> conc;
  for (std::size_t base = 0; base < pkts.size(); base += 20) {
    double c = 0;
    for (std::size_t i = base; i < std::min(base + 20, pkts.size()); ++i) {
      if (pkts[i].direction > 0) c += 1;
    }
    conc.push_back(c);
  }
  fb.add_stats("conc20_out", conc);
  fb.add("conc20_out_sum", stats::sum(conc));

  // Alternative concentration: chunks of 30, decimated (k-FP's "alternative
  // concentration" keeps every other chunk to reduce dimensionality).
  std::vector<double> conc30;
  for (std::size_t base = 0; base < pkts.size(); base += 30) {
    double c = 0;
    for (std::size_t i = base; i < std::min(base + 30, pkts.size()); ++i) {
      if (pkts[i].direction > 0) c += 1;
    }
    conc30.push_back(c);
  }
  std::vector<double> conc30_alt;
  for (std::size_t i = 0; i < conc30.size(); i += 2) conc30_alt.push_back(conc30[i]);
  fb.add_stats("conc30alt_out", conc30_alt);

  // ---- 5. Bursts: maximal runs of consecutive outgoing packets.
  std::vector<double> bursts;
  double run = 0;
  for (const PacketRecord& p : pkts) {
    if (p.direction > 0) {
      run += 1;
    } else if (run > 0) {
      bursts.push_back(run);
      run = 0;
    }
  }
  if (run > 0) bursts.push_back(run);
  fb.add("burst_count", static_cast<double>(bursts.size()));
  fb.add_stats("burst_len", bursts);
  fb.add("burst_gt5", static_cast<double>(std::count_if(
                          bursts.begin(), bursts.end(), [](double b) { return b > 5; })));
  fb.add("burst_gt10", static_cast<double>(std::count_if(
                           bursts.begin(), bursts.end(), [](double b) { return b > 10; })));
  fb.add("burst_gt15", static_cast<double>(std::count_if(
                           bursts.begin(), bursts.end(), [](double b) { return b > 15; })));

  // Incoming bursts as well (download trains are site-specific).
  std::vector<double> in_bursts;
  run = 0;
  for (const PacketRecord& p : pkts) {
    if (p.direction < 0) {
      run += 1;
    } else if (run > 0) {
      in_bursts.push_back(run);
      run = 0;
    }
  }
  if (run > 0) in_bursts.push_back(run);
  fb.add("in_burst_count", static_cast<double>(in_bursts.size()));
  fb.add_stats("in_burst_len", in_bursts);

  // ---- 6. Inter-arrival times: total / in / out.
  auto gaps = [](const std::vector<double>& ts) {
    std::vector<double> g;
    if (ts.size() > 1) g.reserve(ts.size() - 1);
    for (std::size_t i = 1; i < ts.size(); ++i) g.push_back(ts[i] - ts[i - 1]);
    return g;
  };
  const std::vector<double> gap_all = gaps(all_times);
  const std::vector<double> gap_in = gaps(in_times);
  const std::vector<double> gap_out = gaps(out_times);
  fb.add_stats("iat_all", gap_all);
  fb.add_stats("iat_in", gap_in);
  fb.add_stats("iat_out", gap_out);

  // First-20-gap statistics (early-connection behaviour, relevant to the
  // censorship setting where only a prefix is observed).
  std::vector<double> gap_head(gap_all.begin(),
                               gap_all.begin() + std::min<std::size_t>(20, gap_all.size()));
  fb.add_stats("iat_first20", gap_head);

  // ---- 7. Transmission time quantiles. One sort per list feeds all three
  // quantiles (same sorted order, hence same interpolated values, as the
  // sort-per-call stats::percentile).
  fb.add("time_total", trace.duration());
  std::vector<double> sorted_times;
  const auto sort_times = [&sorted_times](const std::vector<double>& ts) {
    sorted_times.assign(ts.begin(), ts.end());
    std::sort(sorted_times.begin(), sorted_times.end());
  };
  sort_times(all_times);
  fb.add("time_q25_all", stats::percentile_sorted(sorted_times, 25.0));
  fb.add("time_q50_all", stats::percentile_sorted(sorted_times, 50.0));
  fb.add("time_q75_all", stats::percentile_sorted(sorted_times, 75.0));
  sort_times(in_times);
  fb.add("time_q25_in", stats::percentile_sorted(sorted_times, 25.0));
  fb.add("time_q50_in", stats::percentile_sorted(sorted_times, 50.0));
  fb.add("time_q75_in", stats::percentile_sorted(sorted_times, 75.0));
  sort_times(out_times);
  fb.add("time_q25_out", stats::percentile_sorted(sorted_times, 25.0));
  fb.add("time_q50_out", stats::percentile_sorted(sorted_times, 50.0));
  fb.add("time_q75_out", stats::percentile_sorted(sorted_times, 75.0));

  // ---- 8. Packets per second.
  std::vector<double> pps;
  if (!all_times.empty()) {
    const auto seconds = static_cast<std::size_t>(all_times.back()) + 1;
    pps.assign(std::min<std::size_t>(seconds, 120), 0.0);  // cap at 2 minutes
    for (double t : all_times) {
      const auto s = static_cast<std::size_t>(t);
      if (s < pps.size()) pps[s] += 1.0;
    }
  }
  fb.add_stats("pps", pps);
  fb.add("pps_sum", stats::sum(pps));

  // ---- 9. Volume (sizes are visible to the adversary even under TLS).
  fb.add("bytes_total", static_cast<double>(trace.total_bytes()));
  fb.add("bytes_in", static_cast<double>(trace.incoming_bytes()));
  fb.add("bytes_out", static_cast<double>(trace.outgoing_bytes()));
  fb.add_stats("size_in", in_sizes);
  fb.add_stats("size_out", out_sizes);

  // Size histogram coarse shape: share of incoming packets in size bands.
  double in_small = 0, in_mid = 0, in_full = 0;
  for (double s : in_sizes) {
    if (s < 600) {
      in_small += 1;
    } else if (s < 1400) {
      in_mid += 1;
    } else {
      in_full += 1;
    }
  }
  const double in_n = std::max<double>(1.0, static_cast<double>(in_sizes.size()));
  fb.add("in_size_frac_small", in_small / in_n);
  fb.add("in_size_frac_mid", in_mid / in_n);
  fb.add("in_size_frac_full", in_full / in_n);

  // ---- 10. Cumulative byte milestones: time to reach fractions of the
  // total download (robust early-trace features).
  const double total_in_bytes = static_cast<double>(trace.incoming_bytes());
  for (double frac : {0.25, 0.5, 0.75}) {
    double reached = 0.0;
    double acc = 0.0;
    for (const PacketRecord& p : pkts) {
      if (p.direction < 0) {
        acc += static_cast<double>(p.size);
        if (total_in_bytes > 0 && acc >= frac * total_in_bytes) {
          reached = p.time;
          break;
        }
      }
    }
    if (fb.collecting_names()) {
      fb.add("time_to_in_frac_" + std::to_string(static_cast<int>(frac * 100)), reached);
    } else {
      fb.add({}, reached);
    }
  }
}

std::vector<std::string> compute_names() {
  std::vector<std::string> names;
  FeatureBuilder fb({});
  fb.collect_names(&names);
  build(Trace{}, fb);
  return names;
}

}  // namespace

const std::vector<std::string>& kfp_feature_names() {
  static const std::vector<std::string> names = compute_names();
  return names;
}

std::size_t kfp_feature_count() { return kfp_feature_names().size(); }

std::vector<double> kfp_features(const Trace& trace) {
  std::vector<double> out(kfp_feature_count(), 0.0);
  FeatureBuilder fb(out);
  build(trace, fb);
  return out;
}

void kfp_features_into(const Trace& trace, std::span<double> out) {
  FeatureBuilder fb(out);
  build(trace, fb);
}

FeatureMatrix kfp_features(const Dataset& dataset) {
  FeatureMatrix m(dataset.size(), kfp_feature_count());
  for (std::size_t i = 0; i < dataset.size(); ++i) kfp_features_into(dataset.trace(i), m.row(i));
  return m;
}

}  // namespace stob::wf
