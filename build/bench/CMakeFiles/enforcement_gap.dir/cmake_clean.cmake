file(REMOVE_RECURSE
  "CMakeFiles/enforcement_gap.dir/enforcement_gap.cpp.o"
  "CMakeFiles/enforcement_gap.dir/enforcement_gap.cpp.o.d"
  "enforcement_gap"
  "enforcement_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enforcement_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
