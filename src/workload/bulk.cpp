#include "workload/bulk.hpp"

#include "tcp/tcp_connection.hpp"

namespace stob::workload {

BulkTransferResult run_bulk_transfer(const BulkTransferOptions& options) {
  stack::HostPair::Config hp_cfg;
  hp_cfg.path = net::DuplexPath::symmetric(options.link_rate, options.one_way_delay,
                                           options.queue_capacity);
  hp_cfg.client.cpu = options.sender_cpu;
  stack::HostPair hp(hp_cfg);

  tcp::TcpConnection::Config conn_cfg = options.conn;
  // Bulk transfers need a deep socket buffer so the sender is never
  // app-limited; keep topping up below.
  conn_cfg.send_buffer = Bytes::mebi(64);

  tcp::TcpListener listener(hp.server(), 5201, options.conn);
  Bytes received;
  Bytes received_at_warmup;
  listener.set_accept_callback([&](tcp::TcpConnection& c) {
    c.on_data = [&received](Bytes n) { received += n; };
  });

  tcp::TcpConnection sender(hp.client(), conn_cfg);
  sender.connect(hp.server().id(), 5201);
  sender.send(Bytes::mebi(64));

  // Keep the send buffer topped up so the flow is never app-limited.
  std::function<void()> top_up = [&] {
    if (sender.unsent() < Bytes::mebi(16)) sender.send(Bytes::mebi(16));
    hp.sim().schedule_after(Duration::millis(1), top_up);
  };
  hp.sim().schedule_after(Duration::millis(1), top_up);

  const TimePoint warmup_end = TimePoint::zero() + options.warmup;
  const TimePoint measure_end = warmup_end + options.measure;

  std::uint64_t wire_at_warmup = 0;
  std::uint64_t tso_at_warmup = 0;
  Duration cpu_at_warmup;

  hp.run(warmup_end);
  received_at_warmup = received;
  wire_at_warmup = hp.client().nic().wire_packets_sent();
  tso_at_warmup = hp.client().nic().tso_segments_split();
  cpu_at_warmup = hp.client().cpu().busy_time();

  hp.run(measure_end);

  BulkTransferResult result;
  result.goodput = DataRate::from(received - received_at_warmup, options.measure);
  result.wire_packets = hp.client().nic().wire_packets_sent() - wire_at_warmup;
  result.tso_segments = hp.client().nic().tso_segments_split() - tso_at_warmup;
  result.sender_cpu_utilisation =
      (hp.client().cpu().busy_time() - cpu_at_warmup) / options.measure;
  return result;
}

}  // namespace stob::workload
