#include "obs/journal.hpp"

#include <fcntl.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"

namespace stob::obs {

namespace {

const char kHex[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// ------------------------------------------------------- field extraction
//
// Not a general JSON parser: it reads back exactly the dialect to_json_line
// emits (fixed key order, keys always before the free-form stderr_tail, all
// strings escaped by obs::json_escape). The first occurrence of `"key":` in
// a line is therefore always the real field.

bool find_raw_string(std::string_view line, std::string_view key, std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  std::size_t i = pos + needle.size();
  std::string raw;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) return false;  // torn mid-escape
      raw += c;
      raw += line[++i];
      continue;
    }
    if (c == '"') {
      *out = raw;
      return true;
    }
    raw += c;
  }
  return false;  // no closing quote: torn line
}

bool find_string(std::string_view line, std::string_view key, std::string* out) {
  std::string raw;
  if (!find_raw_string(line, key, &raw)) return false;
  *out = json_unescape(raw);
  return true;
}

bool find_u64(std::string_view line, std::string_view key, std::uint64_t* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  std::size_t i = pos + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  std::uint64_t v = 0;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
  }
  *out = v;
  return true;
}

bool find_int(std::string_view line, std::string_view key, int* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  std::size_t i = pos + needle.size();
  bool neg = false;
  if (i < line.size() && line[i] == '-') {
    neg = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  int v = 0;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    v = v * 10 + (line[i] - '0');
  }
  *out = neg ? -v : v;
  return true;
}

/// Parse the record at the head of `text` into *out. Returns the bytes
/// consumed — the record is accepted only when its head bytes are exactly
/// the canonical serialization its parsed fields reproduce — or 0 when the
/// head is torn, garbage, or non-canonical. The canonical check is what
/// makes mid-file tears safe: a torn append glued to the next record would
/// otherwise donate fields to a hybrid first-occurrence parse.
std::size_t parse_one(std::string_view text, Journal::Loaded* out) {
  std::string kind;
  if (!find_string(text, "kind", &kind)) return 0;
  const auto accept = [&text](const auto& rec) -> std::size_t {
    const std::string canon = to_json_line(rec);
    return text.substr(0, canon.size()) == canon ? canon.size() : 0;
  };
  if (kind == "cell") {
    JournalCell cell;
    std::uint64_t attempts = 0;
    std::string payload_hex;
    if (!find_string(text, "digest", &cell.digest) || !find_u64(text, "job", &cell.job) ||
        !find_u64(text, "attempts", &attempts) ||
        !find_raw_string(text, "payload", &payload_hex)) {
      return 0;
    }
    if (payload_hex.size() % 2 != 0) return 0;  // torn mid-byte
    cell.attempts = static_cast<std::uint32_t>(attempts);
    cell.payload = hex_decode(payload_hex);
    const std::size_t used = accept(cell);
    if (used > 0) out->cells.push_back(std::move(cell));
    return used;
  }
  if (kind == "crash") {
    CrashRecord crash;
    std::uint64_t attempts = 0;
    if (!find_string(text, "digest", &crash.digest) || !find_u64(text, "job", &crash.job) ||
        !find_u64(text, "attempts", &attempts) ||
        !find_string(text, "outcome", &crash.outcome) ||
        !find_int(text, "signal", &crash.signal_no) ||
        !find_int(text, "exit", &crash.exit_code) ||
        !find_string(text, "stderr_tail", &crash.stderr_tail)) {
      return 0;
    }
    crash.attempts = static_cast<std::uint32_t>(attempts);
    const std::size_t used = accept(crash);
    if (used > 0) out->crashes.push_back(std::move(crash));
    return used;
  }
  if (kind == "index") {
    IndexEntry entry;
    if (!find_string(text, "digest", &entry.digest) || !find_u64(text, "bytes", &entry.bytes)) {
      return 0;
    }
    const std::size_t used = accept(entry);
    if (used > 0) out->index.push_back(std::move(entry));
    return used;
  }
  return 0;
}

/// One physical line may hold several records when an append was torn (no
/// trailing newline) and later appends landed on the same line. Walk the
/// line record by record; on a torn/garbage head, scan forward to the next
/// record opener and keep going — skip-and-warn, so one torn entry never
/// swallows its valid successors.
void parse_physical_line(std::string_view line, Journal::Loaded* out) {
  while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const auto first = line.find_first_not_of(" \t");
  if (first == std::string_view::npos) return;  // blank line: not an error
  line.remove_prefix(first);
  bool torn = false;
  while (!line.empty()) {
    const std::size_t used = parse_one(line, out);
    if (used > 0) {
      line.remove_prefix(used);
      continue;
    }
    torn = true;
    // `{"kind":"` cannot occur inside a record (payloads are hex, strings
    // are escaped so a raw quote never follows a raw brace).
    const std::size_t next = line.find("{\"kind\":\"", 1);
    if (next == std::string_view::npos) break;
    line.remove_prefix(next);
  }
  if (torn) out->malformed_lines += 1;
}

}  // namespace

std::string hex_encode(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    const auto u = static_cast<unsigned char>(c);
    out += kHex[u >> 4];
    out += kHex[u & 0xf];
  }
  return out;
}

std::string hex_decode(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    const int hi = hex_val(hex[i]);
    const int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) break;
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

std::string to_json_line(const JournalCell& cell) {
  std::string out = "{\"kind\":\"cell\",\"digest\":\"";
  json_escape(out, cell.digest);
  out += "\",\"job\":" + std::to_string(cell.job);
  out += ",\"attempts\":" + std::to_string(cell.attempts);
  out += ",\"payload\":\"" + hex_encode(cell.payload) + "\"}";
  return out;
}

std::string to_json_line(const CrashRecord& crash) {
  std::string out = "{\"kind\":\"crash\",\"digest\":\"";
  json_escape(out, crash.digest);
  out += "\",\"job\":" + std::to_string(crash.job);
  out += ",\"attempts\":" + std::to_string(crash.attempts);
  out += ",\"outcome\":\"";
  json_escape(out, crash.outcome);
  out += "\",\"signal\":" + std::to_string(crash.signal_no);
  out += ",\"exit\":" + std::to_string(crash.exit_code);
  out += ",\"stderr_tail\":\"";
  json_escape(out, crash.stderr_tail);
  out += "\"}";
  return out;
}

std::string to_json_line(const IndexEntry& entry) {
  std::string out = "{\"kind\":\"index\",\"digest\":\"";
  json_escape(out, entry.digest);
  out += "\",\"bytes\":" + std::to_string(entry.bytes) + "}";
  return out;
}

Journal::Journal(const std::filesystem::path& path) {
  f_ = std::fopen(path.string().c_str(), "ab");
  if (f_ == nullptr) {
    throw std::runtime_error("journal: cannot open '" + path.string() + "' for append");
  }
  // Workers must not inherit the journal descriptor across exec: only the
  // supervisor appends.
  ::fcntl(::fileno(f_), F_SETFD, FD_CLOEXEC);
}

Journal::~Journal() {
  if (f_ != nullptr) std::fclose(f_);
}

Journal::Journal(Journal&& o) noexcept : f_(std::exchange(o.f_, nullptr)) {}

Journal& Journal::operator=(Journal&& o) noexcept {
  if (this != &o) {
    if (f_ != nullptr) std::fclose(f_);
    f_ = std::exchange(o.f_, nullptr);
  }
  return *this;
}

namespace {
void append_line(std::FILE* f, const std::string& line) {
  if (f == nullptr) return;
  // One fwrite per record (line + newline) keeps a concurrent reader's view
  // line-atomic in practice; the flush makes the record durable against the
  // supervisor being killed right after the append returns.
  const std::string full = line + "\n";
  std::fwrite(full.data(), 1, full.size(), f);
  std::fflush(f);
}
}  // namespace

void Journal::append(const JournalCell& cell) { append_line(f_, to_json_line(cell)); }
void Journal::append(const CrashRecord& crash) { append_line(f_, to_json_line(crash)); }
void Journal::append(const IndexEntry& entry) { append_line(f_, to_json_line(entry)); }

Journal::Loaded Journal::load(const std::filesystem::path& path) {
  Loaded out;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return out;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    const bool last = end == std::string::npos;
    if (last) end = text.size();
    if (end > start) {
      parse_physical_line(std::string_view(text.data() + start, end - start), &out);
    }
    if (last) break;
    start = end + 1;
  }
  return out;
}

}  // namespace stob::obs
