#include "tcp/tcp_connection.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace stob::tcp {

namespace {
constexpr int kMaxRetries = 8;  // give up (abort) after this many retx of one segment
}

TcpConnection::TcpConnection(stack::Host& host, Config cfg)
    : host_(host),
      sim_(host.simulator()),
      cfg_(cfg),
      cca_(make_congestion_control(cfg.cca, Bytes(cfg.mss),
                                   Bytes(cfg.initial_cwnd_segments * cfg.mss))),
      rtt_(cfg.rtt) {
  quickack_budget_ = cfg.quickack_segments;
}

TcpConnection::~TcpConnection() {
  if (state_ != State::Closed) {
    host_.unregister_flow(key_.reversed());
    host_.nic().clear_completion_handler(key_);
  }
  disarm_rto();
  if (delack_armed_) sim_.cancel(delack_timer_);
  if (persist_armed_) sim_.cancel(persist_timer_);
}

Bytes TcpConnection::advertised_window() const {
  std::int64_t ooo_bytes = 0;
  for (const auto& [start, end] : ooo_) ooo_bytes += static_cast<std::int64_t>(end - start);
  const std::int64_t wnd = cfg_.recv_buffer.count() - unconsumed_ - ooo_bytes;
  return Bytes(std::max<std::int64_t>(wnd, 0));
}

void TcpConnection::open_common(net::HostId dst, net::Port dst_port, net::Port src_port) {
  key_ = net::FlowKey{host_.id(), dst, src_port, dst_port, net::Proto::Tcp};
  host_.register_flow(key_.reversed(), [this](net::Packet p) { handle_packet(std::move(p)); });
  host_.nic().set_completion_handler(key_, [this](Bytes) {
    if (state_ == State::Established || state_ == State::CloseWait) send_more();
  });
  if (cfg_.policy != nullptr) cfg_.policy->on_flow_start(key_);
}

void TcpConnection::connect(net::HostId dst, net::Port dst_port) {
  assert(state_ == State::Closed);
  open_common(dst, dst_port, host_.allocate_port());
  state_ = State::SynSent;
  send_control(net::kTcpSyn);
  arm_rto();
}

void TcpConnection::accept(const net::Packet& syn) {
  assert(state_ == State::Closed);
  assert(syn.is_tcp() && syn.tcp().has(net::kTcpSyn));
  open_common(syn.flow.src_host, syn.flow.src_port, syn.flow.dst_port);
  snd_wnd_ = syn.tcp().rwnd;
  state_ = State::SynReceived;
  send_control(net::kTcpSyn | net::kTcpAck);
  arm_rto();
}

Bytes TcpConnection::send(Bytes n) {
  const std::int64_t room = cfg_.send_buffer.count() - unsent_bytes_;
  const std::int64_t accepted = std::clamp<std::int64_t>(n.count(), 0, room);
  unsent_bytes_ += accepted;
  if (state_ == State::Established || state_ == State::CloseWait) send_more();
  return Bytes(accepted);
}

void TcpConnection::close() {
  if (fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  maybe_send_fin();
}

void TcpConnection::consume(Bytes n) {
  const bool was_zero = advertised_window().count() <= 0;
  unconsumed_ = std::max<std::int64_t>(unconsumed_ - n.count(), 0);
  // Window update so a blocked sender can resume.
  if (was_zero && advertised_window().count() > 0) send_ack_now();
}

// --------------------------------------------------------------- RX demux

void TcpConnection::handle_packet(net::Packet p) {
  if (!p.is_tcp()) return;
  switch (state_) {
    case State::Closed:
      return;
    case State::SynSent:
    case State::SynReceived:
      handle_handshake(p);
      return;
    case State::Done:
      // TIME_WAIT-like behaviour: re-ack retransmitted FIN/data so the peer
      // can finish.
      if (p.tcp().has(net::kTcpFin) || p.payload.count() > 0) send_ack_now();
      return;
    default:
      break;
  }
  const net::TcpHeader& h = p.tcp();
  if (h.has(net::kTcpAck)) process_ack(h, p.payload.count() > 0);
  if (p.payload.count() > 0 || h.has(net::kTcpFin)) process_data(p);
}

void TcpConnection::handle_handshake(const net::Packet& p) {
  const net::TcpHeader& h = p.tcp();
  if (state_ == State::SynSent) {
    if (h.has(net::kTcpSyn) && h.has(net::kTcpAck)) {
      snd_wnd_ = h.rwnd;
      state_ = State::Established;
      disarm_rto();
      send_ack_now();
      if (on_connected) on_connected();
      send_more();
    }
    return;
  }
  // SynReceived.
  if (h.has(net::kTcpSyn) && !h.has(net::kTcpAck)) {
    send_control(net::kTcpSyn | net::kTcpAck);  // retransmitted SYN
    return;
  }
  if (h.has(net::kTcpAck)) {
    snd_wnd_ = h.rwnd;
    state_ = State::Established;
    disarm_rto();
    if (on_connected) on_connected();
    net::Packet copy = p;
    if (copy.payload.count() > 0 || copy.tcp().has(net::kTcpFin)) process_data(copy);
    send_more();
  }
}

// --------------------------------------------------------------- ACK path

void TcpConnection::process_ack(const net::TcpHeader& h, bool has_payload) {
  const std::int64_t prev_wnd = snd_wnd_;
  snd_wnd_ = h.rwnd;

  if (h.ack > snd_una_ && h.ack <= snd_nxt_) {
    const std::int64_t newly = static_cast<std::int64_t>(h.ack - snd_una_);
    const TimePoint now = sim_.now();

    // Pop fully-acked segments. RTT/delivery-rate samples come from the
    // HEAD segment only, and only if it was never retransmitted (Karn's
    // rule): segments further back may have been delivered long ago and
    // merely unblocked by a gap fill, so their "RTT" would include the
    // reordering wait and poison the estimator.
    Duration rtt_sample;
    DataRate delivery_rate;
    bool app_limited = false;
    bool is_head = true;
    while (!rtx_queue_.empty()) {
      SentSeg& seg = rtx_queue_.front();
      if (seg.seq + static_cast<std::uint64_t>(seg.len) <= h.ack) {
        if (is_head && now > seg.sent) {
          // RTT: Karn's rule, never sample a retransmitted segment.
          if (seg.retx_count == 0) rtt_sample = now - seg.sent;
          // Delivery rate: safe to sample even retransmitted heads — if
          // the ACK was for an earlier transmission the interval is too
          // long and the rate is underestimated, which a max filter (BBR)
          // tolerates; without this, long repair episodes starve the
          // bandwidth model entirely.
          const std::int64_t delivered =
              static_cast<std::int64_t>(h.ack) - seg.delivered_at_send;
          const Duration interval = now - seg.sent;
          if (interval.ns() > 0 && delivered > 0) {
            delivery_rate = DataRate::from(Bytes(delivered), interval);
          }
          app_limited = seg.app_limited;
        }
        is_head = false;
        if (seg.sacked) sacked_bytes_ -= seg.len;
        rtx_queue_.pop_front();
      } else if (seg.seq < h.ack) {
        // Partial overlap: trim the acked prefix.
        const std::int64_t cut = static_cast<std::int64_t>(h.ack - seg.seq);
        seg.seq = h.ack;
        seg.len -= cut;
        break;
      } else {
        break;
      }
    }

    snd_una_ = h.ack;
    obs::note_ack_advance(key_, snd_una_);
    stats_.bytes_delivered =
        Bytes(static_cast<std::int64_t>(fin_sent_ ? std::min(snd_una_, fin_seq_) : snd_una_));
    dupacks_ = 0;

    if (rtt_sample.ns() > 0) rtt_.add_sample(rtt_sample);

    apply_sack(h);
    if (all_lost_after_rto_ && snd_una_ >= recover_) all_lost_after_rto_ = false;
    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
      } else {
        retransmit_holes();  // SACK-based partial-ACK retransmission
      }
    } else if (all_lost_after_rto_ || sacked_bytes_ > 0) {
      // Holes exist outside a dupack episode (e.g. after an RTO): keep
      // repairing them under the pipe limit.
      retransmit_holes();
    }

    AckEvent ev;
    ev.now = now;
    ev.newly_acked = Bytes(newly);
    ev.rtt_sample = rtt_sample;
    ev.srtt = rtt_.srtt();
    ev.delivery_rate = delivery_rate;
    ev.inflight = inflight();
    ev.is_app_limited = app_limited;
    cca_->on_ack(ev);

    if (rtx_queue_.empty()) {
      disarm_rto();
    } else {
      arm_rto();  // restart on forward progress
    }

    if (fin_sent_ && snd_una_ > fin_seq_) {
      if (state_ == State::FinWait1) state_ = State::FinWait2;
      check_done();
      if (state_ == State::Done) return;
    }
    send_more();
    return;
  }

  // Potential duplicate ACK: same ack, a *pure* ACK (data segments with a
  // stale ack field must not count, RFC 5681), outstanding data, and not a
  // window-opening update. (The window may shrink legitimately as the
  // receiver buffers out-of-order data, so only growth disqualifies.)
  if (h.ack == snd_una_ && !has_payload && !rtx_queue_.empty() && snd_wnd_ <= prev_wnd &&
      !h.has(net::kTcpSyn) && !h.has(net::kTcpFin)) {
    ++stats_.dup_acks_received;
    apply_sack(h);
    ++dupacks_;
    // RFC 6582: do not start a new recovery episode while an earlier one
    // (fast retransmit or RTO) still covers unacked data.
    if (dupacks_ == 3 && !in_recovery_ && !all_lost_after_rto_ && snd_una_ >= recover_) {
      in_recovery_ = true;
      recover_ = snd_nxt_;
      for (SentSeg& seg : rtx_queue_) seg.retx_in_episode = false;
      cca_->on_loss(sim_.now());
      ++stats_.fast_retransmits;
      if (retransmit_holes() == 0) retransmit_head();
    } else if (dupacks_ > 3 && in_recovery_) {
      retransmit_holes();  // every further dupack may SACK new data
    }
  } else if (snd_wnd_ > prev_wnd) {
    send_more();  // window update may unblock us
  }
}

// -------------------------------------------------------------- data path

void TcpConnection::process_data(const net::Packet& p) {
  obs::record_packet(obs::Layer::Tcp, obs::Direction::Rx, obs::EventKind::Receive, p, sim_.now());
  const net::TcpHeader& h = p.tcp();
  const std::uint64_t start = h.seq;
  const std::uint64_t end = start + static_cast<std::uint64_t>(p.payload.count());

  if (h.has(net::kTcpFin) && !fin_received_) {
    fin_received_ = true;
    fin_in_seq_ = end;  // FIN sits after this packet's payload
  }

  bool ooo = false;
  if (end <= rcv_nxt_ && !(h.has(net::kTcpFin) && !fin_consumed_)) {
    // Entirely duplicate data: re-ack immediately.
    send_ack_now();
    return;
  }
  if (start > rcv_nxt_) {
    ooo = true;
    ++stats_.ooo_segments;
    if (end > start) {
      // Insert and coalesce [start, end) into the out-of-order set.
      auto [it, inserted] = ooo_.emplace(start, end);
      if (!inserted && it->second < end) it->second = end;
      // Merge with neighbours.
      auto cur = ooo_.lower_bound(start);
      if (cur != ooo_.begin()) --cur;
      while (cur != ooo_.end()) {
        auto nxt = std::next(cur);
        if (nxt == ooo_.end()) break;
        if (nxt->first <= cur->second) {
          cur->second = std::max(cur->second, nxt->second);
          ooo_.erase(nxt);
        } else {
          cur = nxt;
        }
      }
    }
  } else if (end > rcv_nxt_) {
    rcv_nxt_ = end;
  }

  deliver_in_order();

  if (fin_received_ && !fin_consumed_ && rcv_nxt_ == fin_in_seq_) {
    fin_consumed_ = true;
    rcv_nxt_ = fin_in_seq_ + 1;  // FIN consumes one sequence unit
    if (state_ == State::Established) state_ = State::CloseWait;
    send_ack_now();
    if (on_peer_closed) on_peer_closed();
    check_done();
    return;
  }

  if (ooo) {
    send_ack_now();  // duplicate ACK announces the gap
  } else if (quickack_budget_ > 0) {
    --quickack_budget_;
    send_ack_now();
  } else if (++delack_count_ >= cfg_.delack_segments) {
    send_ack_now();
  } else {
    schedule_delayed_ack();
  }
}

void TcpConnection::deliver_in_order() {
  // Pull contiguous out-of-order ranges.
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->first <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, it->second);
    it = ooo_.erase(it);
  }
  const std::int64_t total =
      static_cast<std::int64_t>(fin_consumed_ ? rcv_nxt_ - 1 : rcv_nxt_);
  const std::int64_t newly = total - stats_.bytes_received.count();
  if (newly > 0) {
    stats_.bytes_received = Bytes(total);
    if (!cfg_.auto_consume) unconsumed_ += newly;
    if (on_data) on_data(Bytes(newly));
  }
}

// ---------------------------------------------------------------- TX path

std::int64_t TcpConnection::usable_window() const {
  const std::int64_t wnd = std::min<std::int64_t>(cca_->cwnd().count(), snd_wnd_);
  return wnd - inflight().count();
}

Bytes TcpConnection::tsq_budget() const {
  if (cfg_.tsq_limit.count() > 0) return cfg_.tsq_limit;
  // Linux tcp_small_queue_check: ~1 ms of data at the pacing rate or two
  // TSO segments, whichever is larger, capped at the global limit. Keeping
  // this tight matters: a generous budget parks paced packets in the local
  // qdisc, which inflates RTT samples and wedges model-based CCAs.
  const DataRate rate = cfg_.pacing_enabled ? cca_->pacing_rate() : DataRate(0);
  const std::int64_t rate_based =
      rate.is_zero() ? 0 : rate.bytes_in(Duration::millis(1)).count();
  // ~2 ms of data at the pacing rate, floored at two segments: enough to
  // ride out completion latency at 100 Gb/s without parking a deep local
  // queue at access-link rates (Linux raises tcp_limit_output_bytes for
  // fast NICs for the same reason).
  const std::int64_t budget =
      std::max({2 * static_cast<std::int64_t>(last_tso_bytes_), 2 * rate_based, 2 * cfg_.mss});
  return Bytes(std::min<std::int64_t>(budget, 16 * 1024 * 1024));
}

void TcpConnection::send_more() {
  if (state_ != State::Established && state_ != State::CloseWait) {
    maybe_send_fin();
    return;
  }
  while (unsent_bytes_ > 0) {
    if (cpu_continuation_pending_) return;
    // Internal pacing: hold the next segment inside TCP until its slot in
    // the pacing schedule. Without this, window-permitted data would park
    // in the local qdisc with future EDTs while counting as in-flight,
    // inflating RTT samples and wedging model-based CCAs in Drain.
    if (pacing_next_ > sim_.now()) {
      if (!pacing_wakeup_pending_) {
        pacing_wakeup_pending_ = true;
        sim_.schedule_at(pacing_next_, [this, alive = std::weak_ptr<int>(alive_)] {
          if (alive.expired()) return;
          pacing_wakeup_pending_ = false;
          send_more();
        });
      }
      break;
    }
    const std::int64_t usable = usable_window();
    if (usable <= 0) {
      if (snd_wnd_ <= inflight().count() && snd_wnd_ == 0) arm_persist();
      break;
    }
    if (host_.nic().flow_unsent(key_) >= tsq_budget()) break;  // TCP small queues
    std::int64_t candidate = std::min(unsent_bytes_, usable);
    if (cfg_.nagle && candidate < cfg_.mss && inflight().count() > 0) break;

    const std::uint64_t seq = snd_nxt_;
    const std::int64_t emitted = emit_segment(seq, candidate, /*is_retx=*/false);
    if (emitted <= 0) break;

    SentSeg seg;
    seg.seq = seq;
    seg.len = emitted;
    seg.sent = std::max(sim_.now(), last_departure_);
    seg.delivered_at_send = static_cast<std::int64_t>(snd_una_);
    seg.app_limited = (unsent_bytes_ - emitted) == 0 && usable > emitted;
    rtx_queue_.push_back(seg);
    snd_nxt_ += static_cast<std::uint64_t>(emitted);
    unsent_bytes_ -= emitted;
    if (!rto_armed_) arm_rto();
  }
  maybe_send_fin();
}

std::int64_t TcpConnection::emit_segment(std::uint64_t seq, std::int64_t len, bool is_retx) {
  assert(len > 0);
  const TimePoint now = sim_.now();
  const DataRate cca_rate = cfg_.pacing_enabled ? cca_->pacing_rate() : DataRate(0);
  const Bytes tso = cfg_.tso_enabled
                        ? tso_autosize(cca_rate, Bytes(cfg_.mss), cfg_.tso_max)
                        : Bytes(cfg_.mss);
  const std::int64_t candidate = std::min<std::int64_t>(len, tso.count());

  TimePoint cca_departure = now;
  if (!cca_rate.is_zero()) cca_departure = std::max(now, pacing_next_);

  core::SegmentContext ctx;
  ctx.flow = key_;
  ctx.now = now;
  ctx.stream_offset = seq;
  ctx.cca_segment = Bytes(candidate);
  ctx.mss = Bytes(cfg_.mss);
  ctx.cca_departure = cca_departure;
  ctx.cca_pacing_rate = cca_rate;
  ctx.is_retransmission = is_retx;

  core::SegmentDecision d = cfg_.policy != nullptr
                                ? cfg_.policy->on_segment(ctx)
                                : core::SegmentDecision::passthrough(ctx);

  const std::int64_t seg_len = std::clamp<std::int64_t>(d.segment.count(), 1, candidate);
  const std::int64_t wire_mss = std::clamp<std::int64_t>(d.wire_mss.count(), 1, cfg_.mss);
  const TimePoint departure = std::max(d.departure, now);

  last_tso_bytes_ = static_cast<std::uint64_t>(candidate);
  last_departure_ = departure;

  // Reserve pacing credit at the CCA's rate: the next segment may not start
  // before this one would have finished at the CCA-approved rate.
  if (!cca_rate.is_zero()) {
    pacing_next_ = departure + cca_rate.transmit_time(Bytes(seg_len));
  }

  const std::int64_t wire_pkts = (seg_len + wire_mss - 1) / wire_mss;
  const TimePoint cpu_done = host_.cpu().dispatch(now, Bytes(seg_len), wire_pkts);

  net::Packet pkt;
  pkt.id = net::next_packet_id();
  pkt.flow = key_;
  pkt.header = Bytes(net::kEthIpTcpHeader);
  pkt.payload = Bytes(seg_len);
  pkt.not_before = std::max(departure, cpu_done);
  if (seg_len > wire_mss) pkt.tso_mss = wire_mss;
  net::TcpHeader h;
  h.seq = seq;
  h.ack = rcv_nxt_;
  h.flags = net::kTcpAck;
  h.rwnd = advertised_window().count();
  for (auto it = ooo_.rbegin(); it != ooo_.rend() && h.sack.size() < 3; ++it) {
    h.sack.emplace_back(it->first, it->second);
  }
  pkt.l4 = h;

  ++stats_.segments_sent;
  stats_.bytes_sent += Bytes(seg_len);
  if (is_retx) ++stats_.retransmissions;

  if (obs::listener() != nullptr) {
    obs::DepartureEvent dep;
    dep.flow = key_;
    dep.now = now;
    dep.departure = pkt.not_before;
    dep.cca_departure = cca_departure;
    dep.bytes = seg_len;
    dep.cca_segment = candidate;
    dep.cwnd = cca_->cwnd().count();
    dep.inflight = inflight().count();
    // New data was admitted under usable_window(), so inflight + bytes <=
    // cwnd holds exactly; retransmissions are pipe-limited instead.
    dep.window_limited = !is_retx;
    dep.is_retransmission = is_retx;
    obs::note_departure(dep);
  }
  obs::record_packet(obs::Layer::Tcp, obs::Direction::Tx,
                     is_retx ? obs::EventKind::Retransmit : obs::EventKind::Send, pkt, now);
  obs::count(is_retx ? "tcp.retransmissions" : "tcp.segments_sent");
  obs::sample("tcp.cwnd_bytes", static_cast<double>(cca_->cwnd().count()));
  if (pkt.not_before > now) obs::sample("tcp.pacing_delay_us", (pkt.not_before - now).us());

  // Sending data carries an ACK: any pending delayed ACK is satisfied.
  if (delack_armed_) {
    sim_.cancel(delack_timer_);
    delack_armed_ = false;
  }
  delack_count_ = 0;

  if (cpu_done > now) {
    // The CPU is busy until cpu_done; the segment reaches the qdisc then,
    // and further segmentation work is deferred as well.
    cpu_continuation_pending_ = true;
    sim_.schedule_at(cpu_done, [this, pkt, alive = std::weak_ptr<int>(alive_)]() {
      if (alive.expired()) return;
      host_.nic().transmit(pkt);
      cpu_continuation_pending_ = false;
      send_more();
    });
  } else {
    host_.nic().transmit(pkt);
  }
  return seg_len;
}

void TcpConnection::retransmit_head() {
  if (rtx_queue_.empty()) return;
  SentSeg& head = rtx_queue_.front();
  if (head.retx_count >= kMaxRetries) {
    // Abort the connection.
    state_ = State::Done;
    disarm_rto();
    if (on_closed) on_closed();
    return;
  }
  head.retx_count += 1;
  head.sent = sim_.now();  // refreshed to the effective departure below
  head.delivered_at_send = static_cast<std::int64_t>(snd_una_);
  if (head.is_fin) {
    send_control(net::kTcpAck | net::kTcpFin);
    return;
  }
  const std::int64_t emitted = emit_segment(head.seq, head.len, /*is_retx=*/true);
  rtx_queue_.front().sent = std::max(sim_.now(), last_departure_);
  if (emitted < head.len) {
    // The policy shrank the retransmission; keep the tail as its own
    // (already sent once) segment so ordering by seq is preserved.
    SentSeg retxd = head;
    retxd.len = emitted;
    head.seq += static_cast<std::uint64_t>(emitted);
    head.len -= emitted;
    rtx_queue_.push_front(retxd);
  }
}

void TcpConnection::apply_sack(const net::TcpHeader& h) {
  if (h.sack.empty()) return;
  for (SentSeg& seg : rtx_queue_) {
    if (seg.sacked) continue;
    const std::uint64_t seg_end = seg.seq + static_cast<std::uint64_t>(seg.len);
    for (const auto& [start, end] : h.sack) {
      if (seg.seq >= start && seg_end <= end) {
        seg.sacked = true;
        sacked_bytes_ += seg.len;
        high_sack_end_ = std::max(high_sack_end_, seg_end);
        break;
      }
    }
  }
}

std::size_t TcpConnection::retransmit_holes() {
  if (rtx_queue_.empty()) return 0;
  const TimePoint now = sim_.now();
  // Loss inference (RFC 6675): a segment is lost once SACKed data extends
  // at least 3 MSS beyond it; after an RTO everything unsacked is lost.
  auto is_lost = [&](const SentSeg& seg) {
    if (seg.sacked) return false;
    if (all_lost_after_rto_) return true;
    return seg.seq + static_cast<std::uint64_t>(seg.len) +
               3 * static_cast<std::uint64_t>(cfg_.mss) <=
           high_sack_end_;
  };
  // Pipe estimate: unsacked-and-not-lost bytes still in the network, plus
  // retransmissions of this episode that have not timed out.
  std::int64_t pipe = 0;
  for (const SentSeg& seg : rtx_queue_) {
    if (seg.sacked) continue;
    if (!is_lost(seg)) {
      pipe += seg.len;
    } else if (seg.retx_in_episode && now - seg.sent < rtt_.rto()) {
      pipe += seg.len;  // its retransmission is in flight
    }
  }
  const std::int64_t cwnd = cca_->cwnd().count();
  std::size_t sent_count = 0;
  for (std::size_t i = 0; i < rtx_queue_.size() && pipe < cwnd; ++i) {
    SentSeg& seg = rtx_queue_[i];
    if (seg.sacked || !is_lost(seg)) continue;
    // Retransmit each hole once per episode; allow again if its own
    // retransmission has plausibly been lost (per-segment RTO).
    if (seg.retx_in_episode && now - seg.sent < rtt_.rto()) continue;
    if (seg.retx_count >= kMaxRetries) {
      state_ = State::Done;
      disarm_rto();
      if (on_closed) on_closed();
      return sent_count;
    }
    seg.retx_count += 1;
    seg.retx_in_episode = true;
    seg.delivered_at_send = static_cast<std::int64_t>(snd_una_);
    ++sent_count;
    if (seg.is_fin) {
      seg.sent = now;
      send_control(net::kTcpAck | net::kTcpFin);
      pipe += seg.len;
      continue;
    }
    const std::int64_t emitted = emit_segment(seg.seq, seg.len, /*is_retx=*/true);
    seg.sent = std::max(now, last_departure_);
    if (emitted < seg.len) {
      // Policy shrank the retransmission: split the entry, keep order.
      SentSeg tail = seg;
      tail.seq += static_cast<std::uint64_t>(emitted);
      tail.len -= emitted;
      tail.retx_in_episode = false;
      seg.len = emitted;
      rtx_queue_.insert(rtx_queue_.begin() + static_cast<std::ptrdiff_t>(i) + 1, tail);
    }
    pipe += emitted;
  }
  return sent_count;
}

void TcpConnection::send_control(std::uint8_t flags) {
  net::Packet pkt;
  pkt.id = net::next_packet_id();
  pkt.flow = key_;
  pkt.header = Bytes(net::kEthIpTcpHeader);
  pkt.payload = Bytes(0);
  net::TcpHeader h;
  h.flags = flags;
  h.rwnd = advertised_window().count();
  if (flags & net::kTcpAck) {
    h.ack = rcv_nxt_;
    // SACK option: advertise up to 3 out-of-order ranges, newest/highest
    // first (as real receivers do) so the sender's loss inference covers
    // the whole hole region quickly.
    for (auto it = ooo_.rbegin(); it != ooo_.rend() && h.sack.size() < 3; ++it) {
      h.sack.emplace_back(it->first, it->second);
    }
  }
  if (flags & net::kTcpFin) h.seq = fin_seq_;
  pkt.l4 = h;
  if ((flags & net::kTcpAck) && !(flags & (net::kTcpSyn | net::kTcpFin))) ++stats_.acks_sent;
  host_.nic().transmit(pkt);
}

void TcpConnection::send_ack_now() {
  if (delack_armed_) {
    sim_.cancel(delack_timer_);
    delack_armed_ = false;
  }
  delack_count_ = 0;
  send_control(net::kTcpAck);
}

void TcpConnection::schedule_delayed_ack() {
  if (delack_armed_) return;
  delack_armed_ = true;
  delack_timer_ = sim_.schedule_after(cfg_.delack_timeout, [this] {
    delack_armed_ = false;
    delack_count_ = 0;
    send_control(net::kTcpAck);
  });
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_ || unsent_bytes_ > 0) return;
  if (state_ != State::Established && state_ != State::CloseWait) return;
  fin_seq_ = snd_nxt_;
  SentSeg seg;
  seg.seq = snd_nxt_;
  seg.len = 1;  // virtual FIN byte
  seg.sent = sim_.now();
  seg.delivered_at_send = static_cast<std::int64_t>(snd_una_);
  seg.is_fin = true;
  rtx_queue_.push_back(seg);
  snd_nxt_ += 1;
  fin_sent_ = true;
  state_ = state_ == State::CloseWait ? State::LastAck : State::FinWait1;
  send_control(net::kTcpAck | net::kTcpFin);
  if (!rto_armed_) arm_rto();
}

void TcpConnection::check_done() {
  const bool our_side_done = fin_sent_ && snd_una_ > fin_seq_;
  if (our_side_done && fin_consumed_ && state_ != State::Done) {
    state_ = State::Done;
    disarm_rto();
    if (persist_armed_) {
      sim_.cancel(persist_timer_);
      persist_armed_ = false;
    }
    if (on_closed) on_closed();
  }
}

// ----------------------------------------------------------------- timers

void TcpConnection::arm_rto() {
  disarm_rto();
  rto_armed_ = true;
  rto_timer_ = sim_.schedule_after(rtt_.rto(), [this] {
    rto_armed_ = false;
    on_rto_fire();
  });
}

void TcpConnection::disarm_rto() {
  if (rto_armed_) {
    sim_.cancel(rto_timer_);
    rto_armed_ = false;
  }
}

void TcpConnection::on_rto_fire() {
  if (state_ == State::SynSent) {
    ++stats_.rto_fires;
    rtt_.backoff();
    send_control(net::kTcpSyn);
    arm_rto();
    return;
  }
  if (state_ == State::SynReceived) {
    ++stats_.rto_fires;
    rtt_.backoff();
    send_control(net::kTcpSyn | net::kTcpAck);
    arm_rto();
    return;
  }
  if (rtx_queue_.empty()) return;
  ++stats_.rto_fires;
  obs::count("tcp.rto_fires");
  rtt_.backoff();
  cca_->on_rto(sim_.now());
  in_recovery_ = false;
  dupacks_ = 0;
  all_lost_after_rto_ = true;  // RFC 6675: RTO invalidates the whole pipe
  recover_ = snd_nxt_;
  for (SentSeg& seg : rtx_queue_) seg.retx_in_episode = false;
  pacing_next_ = TimePoint::zero();  // the pacing schedule is stale after idle
  if (retransmit_holes() == 0) retransmit_head();
  if (state_ != State::Done) arm_rto();
}

void TcpConnection::arm_persist() {
  if (persist_armed_ || unsent_bytes_ <= 0) return;
  persist_armed_ = true;
  persist_timer_ = sim_.schedule_after(rtt_.rto(), [this] {
    persist_armed_ = false;
    on_persist_fire();
  });
}

void TcpConnection::on_persist_fire() {
  if (state_ != State::Established && state_ != State::CloseWait) return;
  if (unsent_bytes_ <= 0) return;
  if (snd_wnd_ > inflight().count()) {
    send_more();
    return;
  }
  // Zero-window probe: force out one byte beyond the advertised window.
  const std::uint64_t seq = snd_nxt_;
  const std::int64_t emitted = emit_segment(seq, 1, /*is_retx=*/false);
  if (emitted > 0) {
    SentSeg seg;
    seg.seq = seq;
    seg.len = emitted;
    seg.sent = sim_.now();
    seg.delivered_at_send = static_cast<std::int64_t>(snd_una_);
    rtx_queue_.push_back(seg);
    snd_nxt_ += static_cast<std::uint64_t>(emitted);
    unsent_bytes_ -= emitted;
    if (!rto_armed_) arm_rto();
  }
  arm_persist();
}

// --------------------------------------------------------------- listener

TcpListener::TcpListener(stack::Host& host, net::Port port, TcpConnection::Config conn_cfg)
    : host_(host), port_(port), conn_cfg_(conn_cfg) {
  host_.bind_listener(port_, net::Proto::Tcp,
                      [this](net::Packet p) { on_packet(std::move(p)); });
}

TcpListener::~TcpListener() { host_.unbind_listener(port_, net::Proto::Tcp); }

void TcpListener::on_packet(net::Packet p) {
  if (!p.is_tcp() || !p.tcp().has(net::kTcpSyn) || p.tcp().has(net::kTcpAck)) return;
  // Reap finished connections before accepting new ones.
  std::erase_if(conns_, [](const std::unique_ptr<TcpConnection>& c) {
    return c->state() == TcpConnection::State::Done;
  });
  auto conn = std::make_unique<TcpConnection>(host_, conn_cfg_);
  TcpConnection& ref = *conn;
  conns_.push_back(std::move(conn));
  // accept() first so the connection's flow key is set by the time the
  // application's accept callback runs; no data can arrive before the
  // handshake completes, so attaching callbacks here is race-free.
  ref.accept(p);
  if (accept_cb_) accept_cb_(ref);
}

}  // namespace stob::tcp
