file(REMOVE_RECURSE
  "CMakeFiles/table1_defenses.dir/table1_defenses.cpp.o"
  "CMakeFiles/table1_defenses.dir/table1_defenses.cpp.o.d"
  "table1_defenses"
  "table1_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
