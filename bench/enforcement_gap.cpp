// §2.3 experiment: the paper's motivating claim that application-level
// timing intent is destroyed by the stack, while in-stack enforcement
// (Stob) is exact.
//
// A sender wants its data packets spaced exactly GAP apart on the wire.
//   (a) App-level: the application writes one MSS of data every GAP from a
//       timer — the approach WF defense prototypes take. Socket-buffer
//       deferral (window stalls) and TSO coalescing then distort the
//       on-wire schedule.
//   (b) In-stack: the application writes bulk data; a Stob policy sets each
//       segment's departure time (EDT) to last + GAP with one MSS per
//       departure, enforced by the fq qdisc at the bottom of the stack.
//
// Measurement rides on the observability subsystem: a TraceRecorder captures
// every layer crossing and obs::layer_gaps_us scores the wire schedule —
// the same code path tests and examples use, so the bench cannot drift from
// the library. The in-stack run also prints the full per-layer diff report.
//
// Shape to expect: the app-level gaps are bimodal (near-zero from coalesced
// bursts, then RTT-scale stalls) while the in-stack gaps sit tightly on the
// target.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/policy.hpp"
#include "obs/layer_diff.hpp"
#include "obs/trace_recorder.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"
#include "util/stats.hpp"

namespace {

using namespace stob;

constexpr Duration kGap = Duration::micros(500);
constexpr std::int64_t kChunk = 1448;  // one MSS per intended packet
constexpr int kChunks = 400;

/// In-stack uniform-gap policy: one MSS per departure, each departure at
/// least kGap after the previous one (and never before the CCA schedule).
class UniformGapPolicy final : public core::Policy {
 public:
  core::SegmentDecision on_segment(const core::SegmentContext& ctx) override {
    core::SegmentDecision d = core::SegmentDecision::passthrough(ctx);
    d.segment = Bytes(std::min<std::int64_t>(kChunk, ctx.cca_segment.count()));
    const TimePoint earliest = last_.ns() == 0 ? ctx.cca_departure : last_ + kGap;
    d.departure = std::max(ctx.cca_departure, earliest);
    last_ = d.departure;
    return d;
  }
  std::string name() const override { return "uniform-gap"; }

 private:
  TimePoint last_;
};

struct GapStats {
  double mean_us = 0;
  double std_us = 0;
  double within_20pct = 0;  // fraction of gaps within +-20% of the target
  std::size_t packets = 0;
};

GapStats run(bool app_level, obs::LayerDiffReport* report) {
  stack::HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(100), Duration::millis(20),
                                        Bytes::kibi(256));
  stack::HostPair hp(cfg);

  obs::TraceRecorder recorder(1 << 18);
  obs::ScopedRecorder scoped(recorder);

  UniformGapPolicy policy;
  tcp::TcpConnection::Config conn_cfg;
  if (!app_level) conn_cfg.policy = &policy;

  tcp::TcpListener listener(hp.server(), 443, tcp::TcpConnection::Config{});
  tcp::TcpConnection sender(hp.client(), conn_cfg);

  sender.connect(hp.server().id(), 443);
  // Both locals must outlive hp.run(): the callbacks fire inside it.
  int remaining = kChunks;
  std::function<void()> tick = [&] {
    if (remaining-- <= 0) return;
    sender.send(Bytes(kChunk));
    hp.sim().schedule_after(kGap, tick);
  };
  if (app_level) {
    // The application enforces the schedule itself: one write per timer.
    sender.on_connected = [&] { tick(); };
  } else {
    // The application just posts the data; the stack enforces the schedule.
    sender.on_connected = [&] { sender.send(Bytes(kChunk * kChunks)); };
  }
  hp.run(TimePoint(Duration::seconds(10).ns()));

  const std::vector<obs::PacketEvent> events = recorder.events();
  if (report != nullptr) *report = obs::layer_diff(events, sender.key());

  GapStats out;
  out.packets = obs::tx_events(events, sender.key(), obs::Layer::Wire).size();
  const std::vector<double> gaps_us = obs::layer_gaps_us(events, sender.key(), obs::Layer::Wire);
  out.mean_us = stats::mean(gaps_us);
  out.std_us = stats::stddev(gaps_us);
  const double target = kGap.us();
  const auto close_count = std::count_if(gaps_us.begin(), gaps_us.end(), [&](double g) {
    return g >= 0.8 * target && g <= 1.2 * target;
  });
  out.within_20pct = gaps_us.empty() ? 0.0 : static_cast<double>(close_count) /
                                                 static_cast<double>(gaps_us.size());
  return out;
}

}  // namespace

int main() {
  std::printf("=== Enforcement gap (Section 2.3): app-level vs in-stack timing control ===\n");
  std::printf("intent: one %lld-byte packet every %.0f us; 100 Mb/s, 40 ms RTT path\n\n",
              static_cast<long long>(kChunk), kGap.us());

  obs::LayerDiffReport app_report;
  obs::LayerDiffReport stack_report;
  const GapStats app = run(/*app_level=*/true, &app_report);
  const GapStats stack = run(/*app_level=*/false, &stack_report);

  std::printf("%-22s %10s %12s %12s %14s\n", "enforcement", "packets", "gap-mean", "gap-std",
              "within +-20%");
  std::printf("%-22s %10zu %10.1fus %10.1fus %13.1f%%\n", "application-level", app.packets,
              app.mean_us, app.std_us, app.within_20pct * 100.0);
  std::printf("%-22s %10zu %10.1fus %10.1fus %13.1f%%\n", "in-stack (Stob)", stack.packets,
              stack.mean_us, stack.std_us, stack.within_20pct * 100.0);

  std::printf("\nPer-layer view of the app-level run (where the intent is lost):\n%s",
              app_report.to_string().c_str());
  std::printf("\nPer-layer view of the in-stack run (the schedule survives to the wire):\n%s",
              stack_report.to_string().c_str());

  std::printf("\nReading: the stack defers and coalesces the app's writes (window stalls,\n");
  std::printf("TSO batching), so few wire gaps match the intent; the in-stack policy sets\n");
  std::printf("per-packet departure times where they are enforced, and nearly all do.\n");
  return 0;
}
