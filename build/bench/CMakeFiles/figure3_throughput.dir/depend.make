# Empty dependencies file for figure3_throughput.
# This may be replaced when dependencies are built.
