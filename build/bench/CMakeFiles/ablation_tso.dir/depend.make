# Empty dependencies file for ablation_tso.
# This may be replaced when dependencies are built.
