// Tests for the WF toolkit: traces, recording, datasets, k-FP features,
// decision trees, random forests, the k-FP classifier and its evaluation
// protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "wf/decision_tree.hpp"
#include "wf/features.hpp"
#include "wf/kfp.hpp"
#include "wf/random_forest.hpp"
#include "wf/trace.hpp"

namespace stob::wf {
namespace {

Trace simple_trace() {
  Trace t;
  t.add(0.00, +1, 600);
  t.add(0.05, -1, 1514);
  t.add(0.06, -1, 1514);
  t.add(0.07, -1, 900);
  t.add(0.10, +1, 600);
  t.add(0.15, -1, 1514);
  return t;
}

// ------------------------------------------------------------------- Trace

TEST(Trace, Accounting) {
  const Trace t = simple_trace();
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.incoming_count(), 4u);
  EXPECT_EQ(t.outgoing_count(), 2u);
  EXPECT_EQ(t.incoming_bytes(), 1514 + 1514 + 900 + 1514);
  EXPECT_EQ(t.outgoing_bytes(), 1200);
  EXPECT_EQ(t.total_bytes(), t.incoming_bytes() + t.outgoing_bytes());
  EXPECT_NEAR(t.duration(), 0.15, 1e-12);
}

TEST(Trace, NormalizeShiftsAndSorts) {
  Trace t;
  t.add(5.0, +1, 100);
  t.add(3.0, -1, 200);
  t.normalize();
  EXPECT_DOUBLE_EQ(t.packets()[0].time, 0.0);
  EXPECT_EQ(t.packets()[0].direction, -1);
  EXPECT_DOUBLE_EQ(t.packets()[1].time, 2.0);
}

TEST(Trace, TruncatedPrefix) {
  const Trace t = simple_trace();
  const Trace head = t.truncated(3);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(head.packets()[2].size, 1514);
  EXPECT_EQ(t.truncated(100).size(), 6u);  // longer than trace: unchanged
}

TEST(Dataset, SanitizeDropsOutliers) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    Trace t;
    t.add(0.0, -1, 10'000 + i * 100);  // tight cluster
    d.add(std::move(t), 0);
  }
  Trace outlier;
  outlier.add(0.0, -1, 10'000'000);
  d.add(std::move(outlier), 0);
  const Dataset clean = d.sanitized_by_download_size();
  EXPECT_EQ(clean.size(), 10u);
}

TEST(Dataset, SanitizePerClass) {
  Dataset d;
  // Class 0 around 10 kB, class 1 around 1 MB: neither class's traces must
  // be judged against the other's distribution.
  for (int i = 0; i < 8; ++i) {
    Trace a, b;
    a.add(0.0, -1, 10'000 + i);
    b.add(0.0, -1, 1'000'000 + i);
    d.add(std::move(a), 0);
    d.add(std::move(b), 1);
  }
  const Dataset clean = d.sanitized_by_download_size();
  EXPECT_EQ(clean.size(), 16u);
}

TEST(Dataset, BalancedTruncates) {
  Dataset d;
  for (int i = 0; i < 5; ++i) {
    Trace t;
    t.add(0.0, -1, 100);
    d.add(std::move(t), i % 2);
  }
  const Dataset b = d.balanced(2);
  EXPECT_EQ(b.size(), 4u);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset d;
  d.add(simple_trace(), 3);
  d.add(simple_trace().truncated(2), 7);
  const auto path = std::filesystem::temp_directory_path() / "stob_ds_test.csv";
  d.save_csv(path);
  const Dataset back = Dataset::load_csv(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.label(0), 3);
  EXPECT_EQ(back.label(1), 7);
  EXPECT_EQ(back.trace(0).size(), 6u);
  EXPECT_EQ(back.trace(1).size(), 2u);
  EXPECT_EQ(back.trace(0).packets()[1].size, 1514);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- features

TEST(Features, CountMatchesNames) {
  EXPECT_EQ(kfp_features(simple_trace()).size(), kfp_feature_count());
  EXPECT_EQ(kfp_feature_names().size(), kfp_feature_count());
  EXPECT_GT(kfp_feature_count(), 100u);  // a real k-FP-scale feature set
}

TEST(Features, EmptyTraceIsFiniteZeros) {
  const auto f = kfp_features(Trace{});
  ASSERT_EQ(f.size(), kfp_feature_count());
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Features, DeterministicForSameTrace) {
  EXPECT_EQ(kfp_features(simple_trace()), kfp_features(simple_trace()));
}

TEST(Features, CountsAreCorrect) {
  const auto names = kfp_feature_names();
  const auto f = kfp_features(simple_trace());
  auto value_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return f[i];
    }
    ADD_FAILURE() << "missing feature " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(value_of("count_total"), 6.0);
  EXPECT_DOUBLE_EQ(value_of("count_in"), 4.0);
  EXPECT_DOUBLE_EQ(value_of("count_out"), 2.0);
  EXPECT_DOUBLE_EQ(value_of("bytes_in"), 5442.0);
  EXPECT_DOUBLE_EQ(value_of("time_total"), 0.15);
}

TEST(Features, SensitiveToDirectionPattern) {
  Trace a = simple_trace();
  Trace b = simple_trace();
  for (auto& p : b.packets()) p.direction = -p.direction;
  EXPECT_NE(kfp_features(a), kfp_features(b));
}

// ----------------------------------------------------------- decision tree

struct TwoBlobs {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  FeatureMatrix x;

  explicit TwoBlobs(int n = 100, double sep = 4.0, std::uint64_t seed = 9) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      rows.push_back({rng.normal(0, 1), rng.normal(0, 1), rng.uniform(0, 1)});
      labels.push_back(0);
      rows.push_back({rng.normal(sep, 1), rng.normal(sep, 1), rng.uniform(0, 1)});
      labels.push_back(1);
    }
    x = FeatureMatrix::from_rows(rows);
  }
  TrainView view() const { return {&x, labels, 2}; }
};

TEST(DecisionTree, FitsSeparableData) {
  TwoBlobs blobs;
  DecisionTree::Config cfg;
  cfg.max_features = 3;  // use all features
  DecisionTree tree(cfg);
  std::vector<std::size_t> idx(blobs.rows.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(1);
  tree.fit(blobs.view(), idx, rng);
  int correct = 0;
  for (std::size_t i = 0; i < blobs.rows.size(); ++i) {
    correct += tree.predict(blobs.rows[i]) == blobs.labels[i];
  }
  EXPECT_EQ(correct, static_cast<int>(blobs.rows.size()));  // training fit
  EXPECT_TRUE(tree.trained());
}

TEST(DecisionTree, RespectsMaxDepth) {
  TwoBlobs blobs(200, 0.5);  // heavily overlapping: deep tree needed
  DecisionTree::Config cfg;
  cfg.max_depth = 3;
  DecisionTree tree(cfg);
  std::vector<std::size_t> idx(blobs.rows.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(1);
  tree.fit(blobs.view(), idx, rng);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTree, ProbaSumsToOne) {
  TwoBlobs blobs;
  DecisionTree tree;
  std::vector<std::size_t> idx(blobs.rows.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(2);
  tree.fit(blobs.view(), idx, rng);
  const auto p = tree.predict_proba(blobs.rows[0]);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
}

TEST(DecisionTree, EmptyFitThrows) {
  DecisionTree tree;
  FeatureMatrix x;
  std::vector<int> labels;
  TrainView view{&x, labels, 2};
  std::vector<std::size_t> idx;
  Rng rng(1);
  EXPECT_THROW(tree.fit(view, idx, rng), std::invalid_argument);
}

TEST(DecisionTree, SingleClassIsLeaf) {
  const std::vector<std::vector<double>> rows{{1.0}, {2.0}, {3.0}};
  const FeatureMatrix x = FeatureMatrix::from_rows(rows);
  std::vector<int> labels{1, 1, 1};
  TrainView view{&x, labels, 2};
  std::vector<std::size_t> idx{0, 1, 2};
  DecisionTree tree;
  Rng rng(1);
  tree.fit(view, idx, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(rows[0]), 1);
}

// ------------------------------------------------------------ random forest

TEST(RandomForest, BeatsChanceOnNoisyBlobs) {
  TwoBlobs train(150, 2.0, 11), test(50, 2.0, 22);
  RandomForest::Config cfg;
  cfg.num_trees = 30;
  RandomForest forest(cfg);
  forest.fit(train.view());
  int correct = 0;
  for (std::size_t i = 0; i < test.rows.size(); ++i) {
    correct += forest.predict(test.rows[i]) == test.labels[i];
  }
  // Blobs separated by 2 sigma overlap; Bayes-optimal is ~92%.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.rows.size()), 0.8);
}

TEST(RandomForest, DeterministicForSeed) {
  TwoBlobs blobs(50, 1.0, 5);
  RandomForest::Config cfg;
  cfg.num_trees = 10;
  RandomForest a(cfg), b(cfg);
  a.fit(blobs.view());
  b.fit(blobs.view());
  for (std::size_t i = 0; i < blobs.rows.size(); ++i) {
    EXPECT_EQ(a.predict(blobs.rows[i]), b.predict(blobs.rows[i]));
  }
}

TEST(RandomForest, LeafVectorHasOneEntryPerTree) {
  TwoBlobs blobs(30);
  RandomForest::Config cfg;
  cfg.num_trees = 7;
  RandomForest forest(cfg);
  forest.fit(blobs.view());
  EXPECT_EQ(forest.leaf_vector(blobs.rows[0]).size(), 7u);
}

TEST(RandomForest, ProbaAveragesTrees) {
  TwoBlobs blobs(80);
  RandomForest forest;
  forest.fit(blobs.view());
  const auto p = forest.predict_proba(blobs.rows[0]);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GT(p[0], 0.5);  // first row belongs to class 0's blob
}

// -------------------------------------------------------------------- k-FP

/// Synthetic "websites": class-dependent trace shapes with noise.
Dataset synthetic_sites(int classes, int samples_per_class, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int c = 0; c < classes; ++c) {
    for (int s = 0; s < samples_per_class; ++s) {
      Trace t;
      double time = 0.0;
      const int bursts = 3 + c;
      for (int b = 0; b < bursts; ++b) {
        t.add(time, +1, 600);
        time += rng.uniform(0.01, 0.02);
        const int in_pkts = 5 + 4 * c + static_cast<int>(rng.uniform_int(0, 3));
        for (int k = 0; k < in_pkts; ++k) {
          t.add(time, -1, 1200 + 40 * c);
          time += rng.uniform(0.001, 0.003);
        }
        time += rng.uniform(0.005, 0.02);
      }
      t.normalize();
      d.add(std::move(t), c);
    }
  }
  return d;
}

TEST(KFingerprint, HighAccuracyOnSeparableSites) {
  const Dataset data = synthetic_sites(5, 20, 31);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 40;
  const EvalResult res = cross_validate(data, cfg, 4);
  EXPECT_GT(res.mean_accuracy, 0.9);
  EXPECT_EQ(res.fold_accuracies.size(), 4u);
}

TEST(KFingerprint, KnnModeAlsoWorks) {
  const Dataset data = synthetic_sites(4, 16, 37);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 30;
  cfg.use_knn = true;
  const EvalResult res = cross_validate(data, cfg, 4);
  EXPECT_GT(res.mean_accuracy, 0.85);
}

TEST(KFingerprint, PredictBeforeFitThrows) {
  KFingerprint clf;
  EXPECT_THROW(clf.predict(simple_trace()), std::logic_error);
}

TEST(KFingerprint, DeterministicEvaluation) {
  const Dataset data = synthetic_sites(3, 12, 41);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 15;
  const EvalResult a = cross_validate(data, cfg, 3, 77);
  const EvalResult b = cross_validate(data, cfg, 3, 77);
  EXPECT_EQ(a.mean_accuracy, b.mean_accuracy);
  EXPECT_EQ(a.fold_accuracies, b.fold_accuracies);
}

TEST(KFingerprint, AccuracyGrowsWithPrefixLength) {
  // The paper's core observation: more packets -> higher attack accuracy.
  const Dataset data = synthetic_sites(5, 20, 43);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 40;
  const Dataset head = data.transformed([](const Trace& t) { return t.truncated(5); });
  const EvalResult short_res = cross_validate(head, cfg, 4);
  const EvalResult full_res = cross_validate(data, cfg, 4);
  EXPECT_GE(full_res.mean_accuracy, short_res.mean_accuracy);
}

TEST(CrossValidate, AggregatesFoldAccuracies) {
  const Dataset data = synthetic_sites(3, 12, 59);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 15;
  const EvalResult res = cross_validate(data, cfg, 3, 5);
  ASSERT_EQ(res.fold_accuracies.size(), 3u);
  for (double a : res.fold_accuracies) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_DOUBLE_EQ(res.mean_accuracy, stats::mean(res.fold_accuracies));
  EXPECT_DOUBLE_EQ(res.std_accuracy, stats::stddev(res.fold_accuracies));
  // Every sample lands in the merged confusion matrix exactly once, and its
  // trace equals the unweighted mean of the folds only when folds are equal
  // sized (they are here: 36 samples / 3 folds).
  std::size_t total = 0;
  double diag = 0;
  for (int a = 0; a < 3; ++a) {
    for (int p = 0; p < 3; ++p) total += res.confusion.at(a, p);
  }
  for (int c = 0; c < 3; ++c) diag += static_cast<double>(res.confusion.at(c, c));
  EXPECT_EQ(total, data.size());
  EXPECT_NEAR(res.confusion.accuracy(), diag / static_cast<double>(total), 1e-12);
  EXPECT_NEAR(res.confusion.accuracy(), res.mean_accuracy, 1e-12);
}

TEST(ConfusionMatrix, AccuracyAndMerge) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  a.add(1, 0);
  b.add(1, 1);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.at(1, 1), 2u);
  EXPECT_NEAR(a.accuracy(), 0.75, 1e-9);
}

TEST(CrossValidate, RejectsBadArguments) {
  const Dataset data = synthetic_sites(2, 4, 1);
  KFingerprint::Config cfg;
  EXPECT_THROW(cross_validate(data, cfg, 1), std::invalid_argument);
  FeatureMatrix x;
  std::vector<int> labels;
  EXPECT_THROW(cross_validate(x, labels, cfg, 3), std::invalid_argument);
}

}  // namespace
}  // namespace stob::wf
