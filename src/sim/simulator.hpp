// Discrete-event simulation core.
//
// The whole network stack runs on top of this: every asynchronous activity
// (link serialisation, qdisc dequeue, TCP timers, application think time) is
// an event scheduled at an absolute TimePoint. Events at the same time fire
// in scheduling order (FIFO tie-break), which keeps runs deterministic.
//
// Hot-path design (see DESIGN.md §11): the ready queue is an indexed 4-ary
// min-heap of 24-byte slots ordered on (when, seq). Callbacks live in a
// stable node pool beside the heap; each heap slot carries its node index
// and a dense side-array maps nodes back to heap positions, so cancel() is
// a true O(log n) heap removal — no tombstone set, no lazy-skip
// bookkeeping, and pending() is exact by construction. Event ids are
// (node, generation) pairs: nodes are recycled through a freelist and bump
// their generation on every release, so a stale id for a recycled node can
// never cancel the new occupant. Callbacks are sim::Event (small-buffer
// optimised) constructed in place in their node, so the common
// schedule/fire cycle performs zero heap allocations and moves each
// capture exactly once.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "util/units.hpp"

namespace stob::sim {

/// Handle to a scheduled event; allows cancellation (e.g. TCP retransmission
/// timers that are rearmed on every ACK). Generation-checked: a handle to an
/// event that already fired or was cancelled is harmlessly inert even after
/// its pool node has been reused.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return slot_ != 0; }

 private:
  friend class Simulator;
  EventId(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;  // node index + 1; 0 = invalid
  std::uint32_t gen_ = 0;   // must match the node's generation to act
};

class Simulator {
 public:
  using Callback = Event;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Schedule `cb` to run at absolute time `when` (clamped to now if in the
  /// past). Returns a handle usable with cancel(). Accepts any void()
  /// callable; the capture is constructed directly in the scheduler's node
  /// pool (no intermediate copies, no allocation for hot-path sizes).
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(TimePoint when, F&& cb) {
    if (when < now_) when = now_;  // never schedule into the past
    const std::uint32_t node = acquire_node();
    if constexpr (std::is_same_v<std::decay_t<F>, Event>) {
      assert(cb);
      cb_ref(node) = std::forward<F>(cb);
    } else {
      cb_ref(node).emplace(std::forward<F>(cb));
    }
    const Slot slot{when.ns(), (next_seq_++ << kNodeBits) | node};
    heap_.push_back(slot);  // placeholder; sift_up assigns the final position
    if (heap_.size() > heap_high_water_) heap_high_water_ = heap_.size();
    sift_up(heap_.size() - 1, slot);
    return EventId(node + 1, meta_[node].gen);
  }

  /// Schedule `cb` to run `delay` from now.
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_after(Duration delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid id is a harmless no-op (timers race with the events that
  /// disarm them).
  void cancel(EventId id);

  /// Run until the queue drains or `until`, whichever first.
  /// Returns the number of events executed.
  /// Defined inline so the dispatch loop (pop, node recycle, callback
  /// invoke) compiles into the caller's translation unit.
  std::size_t run(TimePoint until = TimePoint::max()) {
    std::size_t n = 0;
    while (step(until)) ++n;
    if (now_ < until && until != TimePoint::max()) now_ = until;
    return n;
  }

  /// Run at most one event. Returns false if the queue is empty or the next
  /// event is after `until`.
  bool step(TimePoint until = TimePoint::max()) {
    if (heap_.empty()) return false;
    const Slot top = heap_[0];
    if (top.when_ns > until.ns()) return false;
    // Detach the event before invoking: bump the generation (so a stale
    // EventId for this event is already inert) and pull it out of the heap,
    // but invoke the callback in place — chunked storage keeps its address
    // stable even if the callback grows the pool — and only put the node on
    // the freelist afterwards, so a re-entrant schedule cannot reuse
    // storage that is still executing.
    const std::uint32_t node = top.node();
    {
      NodeMeta& m = meta_[node];
      ++m.gen;
      m.heap_pos = kNoPos;
    }
    pop_root();
    now_ = TimePoint(top.when_ns);
    ++executed_;
    Event& cb = cb_ref(node);
    cb();
    cb = Event{};  // destroy the capture now that it has run
    // meta_ may have been reallocated by callbacks scheduling; re-index.
    meta_[node].heap_pos = free_head_;  // freelist link
    free_head_ = node;
    return true;
  }

  /// Number of pending events. Exact: cancelled events leave the heap
  /// immediately.
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Total events cancelled since construction (cancellation churn — mostly
  /// transport timers rearmed before firing). Counts only events that were
  /// actually pending when cancelled.
  std::uint64_t cancelled() const { return cancelled_total_; }

  /// Largest number of simultaneously pending events ever reached — the
  /// run's event-memory footprint (nodes, like freed pool chunks, are never
  /// returned to the allocator). Deterministic for a deterministic run;
  /// obs::scrape_simulator exports it so manifests capture it per job.
  std::size_t heap_high_water() const { return heap_high_water_; }

 private:
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

  /// aux packs (seq << kNodeBits) | node: 40 bits of FIFO sequence over 24
  /// bits of node index. Comparing aux directly is the seq comparison —
  /// node bits only discriminate when seqs are equal, which cannot happen.
  /// Limits: ≤16.7M *concurrently pending* events (asserted in
  /// acquire_node) and ≤2^40 ≈ 1.1e12 total schedules per Simulator.
  static constexpr std::uint32_t kNodeBits = 24;
  static constexpr std::uint64_t kNodeMask = (std::uint64_t{1} << kNodeBits) - 1;

  /// 16-byte heap slot (4 per cache line); the callback stays put in its
  /// pool node so sift operations move only these.
  struct Slot {
    std::int64_t when_ns;
    std::uint64_t aux;  // (seq << kNodeBits) | node
    std::uint32_t node() const { return static_cast<std::uint32_t>(aux & kNodeMask); }
  };

  /// Per-node bookkeeping, kept out of the (large) callback array so the
  /// backref writes done by sift operations stay in a dense 8-byte-stride
  /// side table. heap_pos doubles as the freelist link while the node is
  /// free: a node is never both in the heap and on the freelist, and every
  /// read of heap_pos (in cancel) is gated by the generation check, which
  /// fails for freed nodes because release bumps gen.
  struct NodeMeta {
    std::uint32_t heap_pos = kNoPos;  // or next free node while free
    std::uint32_t gen = 1;
  };

  static bool before(const Slot& a, const Slot& b) {
#if defined(__SIZEOF_INT128__)
    // when_ns is never negative (schedule_at clamps to now, and now starts
    // at 0), so (when, aux) compares lexicographically as one unsigned
    // 128-bit key — branchless, which matters in the sift-down best-child
    // tournament where the outcome is data-dependent.
    const auto key = [](const Slot& s) {
      return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(s.when_ns)) << 64) |
             s.aux;
    };
    return key(a) < key(b);
#else
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.aux < b.aux;  // seq lives in the high bits
#endif
  }

  // Callback storage is chunked so Event addresses are stable for the
  // lifetime of their node: step() can invoke a callback in place (no
  // move-out) even if the callback schedules enough new events to grow the
  // pool mid-dispatch.
  static constexpr std::size_t kChunkShift = 8;  // 256 Events per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Event& cb_ref(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::uint32_t acquire_node() {
    if (free_head_ != kNoPos) {
      const std::uint32_t idx = free_head_;
      free_head_ = meta_[idx].heap_pos;  // freelist link; place() overwrites
      return idx;
    }
    assert(meta_.size() <= kNodeMask && "more than 2^24 concurrently pending events");
    if (meta_.size() == chunks_.size() * kChunkSize) {
      chunks_.emplace_back(new Event[kChunkSize]);
    }
    meta_.emplace_back();
    return static_cast<std::uint32_t>(meta_.size() - 1);
  }

  void release_node(std::uint32_t idx) {
    NodeMeta& m = meta_[idx];
    cb_ref(idx) = Event{};
    ++m.gen;  // invalidate every outstanding EventId for this node
    m.heap_pos = free_head_;
    free_head_ = idx;
  }

  void place(std::size_t pos, const Slot& slot) {
    heap_[pos] = slot;
    meta_[slot.node()].heap_pos = static_cast<std::uint32_t>(pos);
  }

  void sift_up(std::size_t pos, Slot slot) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 4;
      if (!before(slot, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, slot);
  }

  // 4-ary layout: children of i are 4i+1..4i+4, parent is (i-1)/4. Wider
  // nodes halve the tree depth vs. a binary heap and keep the sift-down
  // working set inside one or two cache lines of 16-byte slots. Defined
  // inline so pop_root()/step() compile into the caller's TU.
  void sift_down(std::size_t pos, Slot slot) {
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first_child = 4 * pos + 1;
      if (first_child >= size) break;
      std::size_t best = first_child;
      const std::size_t last_child = first_child + 4 < size ? first_child + 4 : size;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], slot)) break;
      place(pos, heap_[best]);
      pos = best;
    }
    place(pos, slot);
  }

  void remove_at(std::size_t pos);

  /// remove_at(0) without the interior-position checks — the hot pop path.
  void pop_root() {
    const Slot last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, last);
  }

  TimePoint now_;
  std::size_t heap_high_water_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::vector<Slot> heap_;
  std::vector<std::unique_ptr<Event[]>> chunks_;  // node pool: stable callback storage
  std::vector<NodeMeta> meta_;  // node pool: heap backref / generation / freelist
  std::uint32_t free_head_ = kNoPos;
};

}  // namespace stob::sim
