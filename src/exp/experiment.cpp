#include "exp/experiment.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "exp/job_codec.hpp"
#include "exp/worker_pool.hpp"
#include "fault/invariants.hpp"
#include "net/packet.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "util/log.hpp"
#include "util/subprocess.hpp"

namespace stob::exp {

std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // Two rounds of splitmix64 over (base_seed, index): round one decorrelates
  // the base, round two folds the index in, so neighbouring jobs get
  // unrelated streams and job 0 of seed s != job 1 of seed s-1.
  auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  };
  return mix(mix(base_seed) ^ job_index);
}

JobSpec ExperimentGrid::job(std::size_t index) const {
  JobSpec spec;
  spec.index = index;
  const std::size_t c = cca_axis();
  const std::size_t d = defense_axis();
  spec.cca = index % c;
  index /= c;
  spec.defense = index % d;
  index /= d;
  spec.sample = index % samples;
  index /= samples;
  spec.site = index % sites.size();
  spec.fault = index / sites.size();
  spec.seed = job_seed(base_seed, spec.index);
  return spec;
}

std::vector<JobSpec> ExperimentGrid::jobs() const {
  std::vector<JobSpec> out;
  out.reserve(job_count());
  for (std::size_t i = 0; i < job_count(); ++i) out.push_back(job(i));
  return out;
}

JobResult run_job(const ExperimentGrid& grid, const JobSpec& spec, const RunOptions& opts) {
  // Fresh per-job world: packet ids restart at 1, obs sinks are installed
  // on this thread only, and all randomness flows from the job seed.
  net::PacketIdScope id_scope;
  Rng rng(spec.seed);

  workload::PageLoadOptions page = opts.page;
  if (!grid.ccas.empty()) {
    page.client_conn.cca = grid.ccas[spec.cca];
    page.server_conn.cca = grid.ccas[spec.cca];
  }
  if (!grid.faults.empty()) page.path_faults = grid.faults[spec.fault];

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder(opts.trace_capacity > 0 ? opts.trace_capacity : 1);
  fault::StackInvariantChecker checker;
  std::optional<obs::ScopedMetrics> scoped_metrics;
  std::optional<obs::ScopedRecorder> scoped_recorder;
  std::optional<obs::ScopedListener> scoped_listener;
  if (opts.collect_metrics) scoped_metrics.emplace(registry);
  if (opts.trace_capacity > 0) scoped_recorder.emplace(recorder);
  if (opts.check_invariants) scoped_listener.emplace(checker);

  workload::PageLoadResult loaded = [&] {
    obs::ProfSpan span("page_load");
    return workload::run_page_load(grid.sites[spec.site], rng, page);
  }();

  JobResult result;
  result.spec = spec;
  result.trace = std::move(loaded.trace);
  result.page_load_time = loaded.page_load_time;
  result.response_bytes = loaded.response_bytes;
  result.objects_fetched = loaded.objects_fetched;
  result.completed = loaded.completed;
  result.sim_events = loaded.sim_events;
  if (!grid.defenses.empty()) {
    const DefenseAxis& axis = grid.defenses[spec.defense];
    if (axis.defense != nullptr) {
      obs::ProfSpan span("defense");
      result.trace = axis.defense->apply(result.trace, rng);
    }
  }
  if (opts.collect_metrics) result.metrics = registry.snapshot();
  if (opts.trace_capacity > 0) result.events = recorder.events();
  if (opts.check_invariants) {
    result.invariant_checks = checker.checks();
    result.invariant_violations = checker.violations();
    result.first_violation = checker.first_report();
  }
  return result;
}

std::string run_config_salt(const RunOptions& opts) {
  const workload::PageLoadOptions& p = opts.page;
  std::string out = "config:v1";
  const auto add = [&out](const std::string& key, const std::string& value) {
    out += '|';
    out += key;
    out += '=';
    out += value;
  };
  // Doubles go in as exact bit patterns: formatting them would alias
  // nearby configs, and the salt needs equality, not readability.
  const auto bits = [](double d) {
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof u);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(u));
    return std::string(buf);
  };
  const auto conn = [&](const std::string& side, const tcp::TcpConnection::Config& c) {
    add(side + ".send_buffer", std::to_string(c.send_buffer.count()));
    add(side + ".recv_buffer", std::to_string(c.recv_buffer.count()));
    add(side + ".mss", std::to_string(c.mss));
    add(side + ".tso", c.tso_enabled ? "1" : "0");
    add(side + ".tso_max", std::to_string(c.tso_max.count()));
    add(side + ".pacing", c.pacing_enabled ? "1" : "0");
    add(side + ".nagle", c.nagle ? "1" : "0");
    add(side + ".cca", c.cca);
    add(side + ".initial_cwnd", std::to_string(c.initial_cwnd_segments));
    add(side + ".delack_segments", std::to_string(c.delack_segments));
    add(side + ".delack_timeout", std::to_string(c.delack_timeout.ns()));
    add(side + ".quickack", std::to_string(c.quickack_segments));
    add(side + ".min_rto", std::to_string(c.rtt.min_rto.ns()));
    add(side + ".max_rto", std::to_string(c.rtt.max_rto.ns()));
    add(side + ".initial_rto", std::to_string(c.rtt.initial_rto.ns()));
    add(side + ".tsq_limit", std::to_string(c.tsq_limit.count()));
    add(side + ".policy", c.policy != nullptr ? c.policy->name() : "stock");
    add(side + ".auto_consume", c.auto_consume ? "1" : "0");
  };
  conn("client", p.client_conn);
  conn("server", p.server_conn);
  add("rate_sigma", bits(p.rate_sigma));
  add("delay_jitter", bits(p.delay_jitter));
  add("tls_records", p.tls_records ? "1" : "0");
  add("tls.max_record", std::to_string(p.tls.max_record));
  add("tls.overhead", std::to_string(p.tls.overhead));
  add("tls.pad_to", std::to_string(p.tls.pad_to));
  add("path_faults", p.path_faults.name);
  add("timeout", std::to_string(p.timeout.ns()));
  if (const char* env = std::getenv("STOB_CACHE_SALT")) add("env_salt", env);
  return out;
}

std::string cell_digest(const ExperimentGrid& grid, std::size_t index, const RunOptions& opts) {
  const JobSpec spec = grid.job(index);
  // Reuse the run-manifest digest machinery: set_config keeps the entries
  // sorted by key, so the digest is independent of the order fields are
  // added here (pinned by tests/test_proc.cpp).
  obs::RunManifest m;
  m.tool = "cell";
  m.base_seed = spec.seed;
  m.set_config("site", grid.sites.empty() ? std::to_string(spec.site) : grid.sites[spec.site].name);
  m.set_config("sample", std::to_string(spec.sample));
  m.set_config("defense",
               grid.defenses.empty() ? std::string("none") : grid.defenses[spec.defense].name);
  m.set_config("cca", grid.ccas.empty() ? std::string("default") : grid.ccas[spec.cca]);
  m.set_config("fault",
               grid.faults.empty() ? std::string("none") : grid.faults[spec.fault].name);
  // Everything that shapes the payload bytes beyond the coordinates: the
  // requested sinks and the codec rev the payload is encoded with.
  m.set_config("collect_metrics", opts.collect_metrics ? "1" : "0");
  m.set_config("trace_capacity", std::to_string(opts.trace_capacity));
  m.set_config("check_invariants", opts.check_invariants ? "1" : "0");
  m.set_config("codec", std::to_string(kWorkerPayloadVersion));
  return m.cell_spec_digest();
}

namespace {

/// Human-readable grid coordinates for error messages and crash reports.
std::string describe_cell(const ExperimentGrid& grid, const JobSpec& spec) {
  std::string out =
      "site=" + (grid.sites.empty() ? std::to_string(spec.site) : grid.sites[spec.site].name);
  out += " sample=" + std::to_string(spec.sample);
  out +=
      " defense=" + (grid.defenses.empty() ? std::string("none") : grid.defenses[spec.defense].name);
  out += " cca=" + (grid.ccas.empty() ? std::string("default") : grid.ccas[spec.cca]);
  out += " fault=" + (grid.faults.empty() ? std::string("none") : grid.faults[spec.fault].name);
  out += " seed=" + std::to_string(spec.seed);
  return out;
}

/// Run one cell and encode the worker payload, capturing per-job profiler
/// records exactly the way run_ordered_profiled does (a "job" span wrapping
/// the cell, span-id domain derived from the job index) so the supervisor's
/// splice reproduces the in-process span structure byte for byte.
std::string run_cell_payload(const ExperimentGrid& grid, std::size_t index,
                             const RunOptions& opts, bool capture_prof,
                             std::uint64_t prof_domain) {
  WorkerPayload payload;
  if (capture_prof) {
    obs::Profiler job_prof(obs::sub_domain(prof_domain, index));
    {
      obs::ScopedProfiler guard(job_prof);
      obs::ProfSpan span("job");
      payload.result = run_job(grid, grid.job(index), opts);
    }
    payload.prof_records = job_prof.take_records();
  } else {
    payload.result = run_job(grid, grid.job(index), opts);
  }
  return encode_worker_payload(payload);
}

/// Worker-process entry: run the one assigned cell, ship the result frame,
/// and _exit without ever returning into the driver's reporting code.
[[noreturn]] void run_worker_and_exit(const ExperimentGrid& grid, const RunOptions& opts) {
  const std::size_t index = *opts.proc.worker_job;
  // The deterministic self-fault hook fires before any real work so a
  // "crash" can never have half-written observable state.
  execute_worker_fault(opts.proc.worker_fault);
  if (index >= grid.job_count()) {
    std::fprintf(stderr, "worker: job index %zu out of range (grid has %zu cells)\n", index,
                 grid.job_count());
    ::_exit(2);
  }
  int code = 0;
  try {
    const std::string payload = run_cell_payload(grid, index, opts, opts.proc.worker_profile,
                                                 opts.proc.worker_prof_domain);
    if (!util::write_frame(opts.proc.worker_fd, payload)) code = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: job %zu threw: %s\n", index, e.what());
    code = 1;
  }
  std::fflush(nullptr);
  ::_exit(code);
}

/// Supervisor path of run_grid: fan the grid out to worker processes and
/// decode the payloads back into ordered JobResults. Quarantined cells get
/// a placeholder result (completed = false) so downstream reductions keep
/// their shape instead of the whole sweep dying with the cell.
std::vector<JobResult> run_grid_proc(const ExperimentGrid& grid, const RunOptions& opts,
                                     ProcReport* report) {
  obs::Profiler* prof = obs::profiler();
  ProcOptions proc = opts.proc;
  if (prof != nullptr) {
    proc.worker_profile = true;
    proc.worker_prof_domain = prof->id_domain();
  }
  const bool capture_prof = prof != nullptr;
  const std::uint64_t prof_domain = capture_prof ? prof->id_domain() : 0;

  const std::size_t count = grid.job_count();

  // Cache hooks: the supervisor probes before scheduling a worker and
  // commits every worker-produced frame. Keyed exactly like the in-process
  // cached path, so in-process and proc sweeps share entries.
  CellCache hooks;
  std::vector<std::string> keys;
  if (opts.cache != nullptr) {
    const std::string salt = run_config_salt(opts);
    keys.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = ResultCache::entry_key(cell_digest(grid, i, opts), capture_prof, salt);
    }
    hooks.probe = [&](std::size_t i) { return opts.cache->load(keys[i]); };
    hooks.commit = [&](std::size_t i, const std::string& payload) {
      opts.cache->store(keys[i], payload);
    };
  }

  const auto payloads = run_cells(
      count, proc, [&](std::size_t i) { return cell_digest(grid, i, opts); },
      [&](std::size_t i) { return run_cell_payload(grid, i, opts, capture_prof, prof_domain); },
      report, opts.cache != nullptr ? &hooks : nullptr);

  std::vector<JobResult> results(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!payloads[i].has_value()) {
      results[i].spec = grid.job(i);  // quarantined placeholder
      continue;
    }
    WorkerPayload payload;
    try {
      payload = decode_worker_payload(*payloads[i]);
    } catch (const std::exception& e) {
      throw std::runtime_error("exp: undecodable worker payload for job " + std::to_string(i) +
                               " [cell " + describe_cell(grid, grid.job(i)) + "]: " + e.what());
    }
    if (prof != nullptr) prof->splice(std::move(payload.prof_records), 0, 0);
    results[i] = std::move(payload.result);
  }
  return results;
}

/// Uninstall the calling thread's profiler for a scope. The cached path
/// captures per-job spans explicitly (run_cell_payload, true grid index),
/// so the worker pool must take its unprofiled path — the profiled pool
/// would wrap each *miss-list* index in a second "job" span under a
/// compacted sub-domain, breaking cold-vs-warm span identity.
class ProfilerSuppression {
 public:
  ProfilerSuppression() : saved_(obs::profiler()) { obs::install_profiler(nullptr); }
  ~ProfilerSuppression() { obs::install_profiler(saved_); }
  ProfilerSuppression(const ProfilerSuppression&) = delete;
  ProfilerSuppression& operator=(const ProfilerSuppression&) = delete;

 private:
  obs::Profiler* saved_;
};

/// In-process cached path of run_grid: probe every cell, run only the
/// misses (worker pool, payload capture identical to proc workers), commit
/// each miss as soon as it finishes, then decode hits and misses alike in
/// job order — so the reduction, the spliced span structure and therefore
/// stdout/CSV/manifests cannot depend on which cells were cached.
std::vector<JobResult> run_grid_cached(const ExperimentGrid& grid, const RunOptions& opts) {
  obs::Profiler* prof = obs::profiler();
  const bool capture_prof = prof != nullptr;
  const std::uint64_t prof_domain = capture_prof ? prof->id_domain() : 0;
  ResultCache& cache = *opts.cache;
  const std::string salt = run_config_salt(opts);
  const std::size_t count = grid.job_count();

  std::vector<std::string> payloads(count);
  std::vector<std::size_t> misses;
  std::vector<std::string> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys[i] = ResultCache::entry_key(cell_digest(grid, i, opts), capture_prof, salt);
    if (std::optional<std::string> hit = cache.load(keys[i])) {
      payloads[i] = std::move(*hit);
    } else {
      misses.push_back(i);
    }
  }

  if (!misses.empty()) {
    ProfilerSuppression quiet;
    std::vector<std::string> fresh;
    try {
      fresh = run_ordered<std::string>(misses.size(), opts.jobs, [&](std::size_t k) {
        const std::size_t i = misses[k];
        std::string payload = run_cell_payload(grid, i, opts, capture_prof, prof_domain);
        // Commit per cell, not per sweep: a killed run keeps every finished
        // cell, which is what makes crashed sweeps incremental.
        cache.store(keys[i], payload);
        return payload;
      });
    } catch (const JobError& e) {
      const std::size_t i = misses[e.job_index()];
      throw JobError(i, std::string(e.what()) + " [cell " + describe_cell(grid, grid.job(i)) +
                            "]");
    }
    for (std::size_t k = 0; k < misses.size(); ++k) payloads[misses[k]] = std::move(fresh[k]);
  }

  std::vector<JobResult> results(count);
  for (std::size_t i = 0; i < count; ++i) {
    WorkerPayload payload;
    try {
      payload = decode_worker_payload(payloads[i]);
    } catch (const std::exception& e) {
      throw std::runtime_error("exp: undecodable cached payload for job " + std::to_string(i) +
                               " [cell " + describe_cell(grid, grid.job(i)) + "]: " + e.what());
    }
    if (prof != nullptr) prof->splice(std::move(payload.prof_records), 0, 0);
    results[i] = std::move(payload.result);
  }
  return results;
}

}  // namespace

std::vector<JobResult> run_grid(const ExperimentGrid& grid, const RunOptions& opts) {
  // Worker mode first: the worker's argv still carries the supervisor's
  // --proc-workers flag, so checking workers > 0 before this would fork
  // grandchildren forever.
  if (opts.proc.worker_job.has_value()) run_worker_and_exit(grid, opts);

  auto run_with = [&](std::size_t threads) {
    try {
      return run_ordered<JobResult>(
          grid.job_count(), threads,
          [&](std::size_t i) { return run_job(grid, grid.job(i), opts); });
    } catch (const JobError& e) {
      throw JobError(e.job_index(), std::string(e.what()) + " [cell " +
                                        describe_cell(grid, grid.job(e.job_index())) + "]");
    }
  };
  ProcReport report;
  std::vector<JobResult> results = [&] {
    obs::ProfSpan span("grid.run");
    if (opts.proc.workers > 0) return run_grid_proc(grid, opts, &report);
    if (opts.cache != nullptr) return run_grid_cached(grid, opts);
    return run_with(opts.jobs);
  }();
  if (opts.proc.workers > 0 && opts.proc_report != nullptr) *opts.proc_report = report;
  if (opts.check_determinism) {
    // The reference run is serial *and in-process*, so in proc mode this
    // directly asserts out-of-process == in-process, byte for byte.
    obs::ProfSpan span("grid.verify");
    std::set<std::size_t> quarantined;
    for (const obs::CrashRecord& f : report.failures) {
      quarantined.insert(static_cast<std::size_t>(f.job));
    }
    const std::vector<JobResult> serial = run_with(1);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (quarantined.count(i) != 0) continue;  // placeholder, nothing to compare
      if (!results_identical(results[i], serial[i])) {
        throw std::runtime_error("experiment engine determinism violation at job " +
                                 std::to_string(i));
      }
    }
  }
  return results;
}

bool results_identical(const JobResult& a, const JobResult& b) {
  return a.spec.index == b.spec.index && a.spec.seed == b.spec.seed && a.trace == b.trace &&
         a.page_load_time == b.page_load_time && a.response_bytes == b.response_bytes &&
         a.objects_fetched == b.objects_fetched && a.completed == b.completed &&
         a.sim_events == b.sim_events &&
         a.metrics == b.metrics && a.events == b.events &&
         a.invariant_checks == b.invariant_checks &&
         a.invariant_violations == b.invariant_violations &&
         a.first_violation == b.first_violation;
}

wf::Dataset to_dataset(const std::vector<JobResult>& results) {
  wf::Dataset data;
  for (const JobResult& r : results) {
    data.add(r.trace, static_cast<int>(r.spec.site));
  }
  return data;
}

namespace {

double parse_seconds(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size() || v < 0.0) throw std::invalid_argument("bad");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("exp: " + flag + " expects a non-negative number of seconds, got '" +
                                value + "'");
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  const bool all_digits =
      !value.empty() && value.find_first_not_of("0123456789") == std::string::npos;
  if (!all_digits) {
    throw std::invalid_argument("exp: " + flag + " expects a non-negative integer, got '" +
                                value + "'");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("exp: " + flag + " value '" + value + "' out of range");
  }
}

/// Byte budget with an optional K/M/G suffix (powers of 1024): "512M".
std::uint64_t parse_byte_size(const std::string& flag, const std::string& value) {
  std::string digits = value;
  std::uint64_t mult = 1;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'K': case 'k': mult = 1ull << 10; digits.pop_back(); break;
      case 'M': case 'm': mult = 1ull << 20; digits.pop_back(); break;
      case 'G': case 'g': mult = 1ull << 30; digits.pop_back(); break;
      default: break;
    }
  }
  const bool all_digits =
      !digits.empty() && digits.find_first_not_of("0123456789") == std::string::npos;
  if (!all_digits) {
    throw std::invalid_argument("exp: " + flag + " expects BYTES with optional K/M/G suffix, got '" +
                                value + "'");
  }
  std::uint64_t n = 0;
  try {
    n = std::stoull(digits);
  } catch (const std::exception&) {
    throw std::invalid_argument("exp: " + flag + " value '" + value + "' out of range");
  }
  if (mult != 1 && n > std::numeric_limits<std::uint64_t>::max() / mult) {
    throw std::invalid_argument("exp: " + flag + " value '" + value + "' out of range");
  }
  return n * mult;
}

std::size_t parse_jobs(const std::string& flag, const std::string& value) {
  // Digits only: stoull would silently accept (and wrap) "-2", and "4x"
  // must not parse as 4.
  const bool all_digits =
      !value.empty() && value.find_first_not_of("0123456789") == std::string::npos;
  unsigned long long n = 0;
  if (all_digits) {
    try {
      n = std::stoull(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("exp: " + flag + " value '" + value + "' out of range");
    }
  } else {
    throw std::invalid_argument("exp: " + flag + " expects a non-negative integer, got '" +
                                value + "'");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

Cli parse_cli(int argc, char** argv, const std::vector<FlagSpec>& extra_flags) {
  Cli cli;
  if (const char* env = std::getenv("STOB_JOBS")) {
    cli.jobs = parse_jobs("STOB_JOBS", env);
  }
  // Environment default for the cache directory; --cache overrides it and
  // --no-cache clears it (a CI job must be able to force a cold run).
  if (const char* env = std::getenv("STOB_CACHE")) cli.cache_dir = env;
  bool no_cache = false;

  cli.argv.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) cli.argv.emplace_back(argv[i]);

  // Shared flags first, then the harness-specific ones. The --worker-*
  // flags are appended by the proc supervisor when it re-execs the driver;
  // users never pass them directly.
  std::vector<FlagSpec> known = {{"--jobs", true},
                                 {"--check-determinism", false},
                                 {"--manifest", true},
                                 {"--trace-events", true},
                                 {"--cache", true},
                                 {"--no-cache", false},
                                 {"--cache-stats", false},
                                 {"--cache-gc", true},
                                 {"--proc-workers", true},
                                 {"--job-timeout", true},
                                 {"--retries", true},
                                 {"--journal", true},
                                 {"--resume", false},
                                 {"--inject-worker-fault", true},
                                 {"--worker-job", true},
                                 {"--worker-fd", true},
                                 {"--worker-fault", true},
                                 {"--worker-prof-domain", true}};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());

  std::map<std::string, int> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Split "--flag=value" spellings; "--flag value" takes the next argv.
    std::string name = arg;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos && arg.rfind("--", 0) == 0) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }

    const FlagSpec* spec = nullptr;
    for (const FlagSpec& f : known) {
      if (f.name == name) {
        spec = &f;
        break;
      }
    }
    if (spec == nullptr) {
      throw std::invalid_argument("exp: unknown flag '" + arg +
                                  "' (use --flag or --flag=value; known flags: --jobs, "
                                  "--check-determinism, --manifest, --trace-events, "
                                  "--cache, --no-cache, --cache-stats, --cache-gc, "
                                  "--proc-workers, --job-timeout, --retries, --journal, "
                                  "--resume, --inject-worker-fault" +
                                  [&] {
                                    std::string s;
                                    for (const FlagSpec& f : extra_flags) s += ", " + f.name;
                                    return s;
                                  }() +
                                  ")");
    }
    if (spec->takes_value && !value.has_value()) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("exp: flag '" + name + "' expects a value");
      }
      value = argv[++i];
    }
    if (!spec->takes_value && value.has_value()) {
      throw std::invalid_argument("exp: flag '" + name + "' does not take a value");
    }
    if (++seen[name] > 1) {
      // Unconditionally on stderr: stdout is under the byte-identity
      // contract the drivers' diff checks rely on, and the log threshold
      // must not be able to swallow a user-facing CLI diagnostic.
      std::fprintf(stderr, "exp: flag %s given more than once; last value wins\n", name.c_str());
    }

    if (name == "--jobs") {
      cli.jobs = parse_jobs(name, *value);
    } else if (name == "--check-determinism") {
      cli.check_determinism = true;
    } else if (name == "--manifest") {
      cli.manifest_path = *value;
    } else if (name == "--trace-events") {
      cli.trace_events_path = *value;
    } else if (name == "--cache") {
      cli.cache_dir = *value;
    } else if (name == "--no-cache") {
      no_cache = true;
    } else if (name == "--cache-stats") {
      cli.cache_stats = true;
    } else if (name == "--cache-gc") {
      cli.cache_gc = true;
      cli.cache_gc_limit = parse_byte_size(name, *value);
    } else if (name == "--proc-workers") {
      cli.proc_workers = parse_jobs(name, *value);
    } else if (name == "--job-timeout") {
      cli.job_timeout_s = parse_seconds(name, *value);
    } else if (name == "--retries") {
      cli.retries = static_cast<std::size_t>(parse_u64(name, *value));
    } else if (name == "--journal") {
      cli.journal_path = *value;
    } else if (name == "--resume") {
      cli.resume = true;
    } else if (name == "--inject-worker-fault") {
      WorkerFaultPlan::parse(*value);  // reject malformed specs at the CLI
      cli.inject_worker_fault = *value;
    } else if (name == "--worker-job") {
      cli.worker_mode = true;
      cli.worker_job = static_cast<std::size_t>(parse_u64(name, *value));
    } else if (name == "--worker-fd") {
      cli.worker_fd = static_cast<int>(parse_u64(name, *value));
    } else if (name == "--worker-fault") {
      cli.worker_fault = *value;
    } else if (name == "--worker-prof-domain") {
      cli.worker_profile = true;
      cli.worker_prof_domain = parse_u64(name, *value);
    } else {
      cli.extra[name] = spec->takes_value ? *value : "1";
    }
  }
  if (cli.resume && cli.journal_path.empty()) {
    throw std::invalid_argument("exp: --resume needs --journal PATH (the journal to replay)");
  }
  if (no_cache) cli.cache_dir.clear();
  if (cli.cache_dir.empty() && (cli.cache_stats || cli.cache_gc)) {
    throw std::invalid_argument(
        "exp: --cache-stats/--cache-gc need a cache (--cache DIR or STOB_CACHE, and not "
        "--no-cache)");
  }
  return cli;
}

ProcOptions proc_options_from_cli(const Cli& cli) {
  ProcOptions proc;
  proc.workers = cli.proc_workers;
  proc.job_timeout = Duration::seconds_f(cli.job_timeout_s);
  proc.retries = cli.retries;
  proc.journal_path = cli.journal_path;
  proc.resume = cli.resume;
  proc.fault_spec = cli.inject_worker_fault;
  if (cli.proc_workers > 0) proc.worker_argv = cli.argv;
  if (cli.worker_mode) proc.worker_job = cli.worker_job;
  proc.worker_fd = cli.worker_fd;
  proc.worker_fault = cli.worker_fault;
  proc.worker_profile = cli.worker_profile;
  proc.worker_prof_domain = cli.worker_prof_domain;
  return proc;
}

CacheSession CacheSession::from_cli(const Cli& cli) {
  CacheSession session;
  // Workers inherit the supervisor's argv (cache flags included) on
  // re-exec, but must never open the cache themselves: they publish result
  // frames and the supervisor commits them.
  if (cli.cache_dir.empty() || cli.worker_mode) return session;
  session.cache_ = std::make_shared<ResultCache>(cli.cache_dir, kWorkerPayloadVersion);
  session.stats_ = cli.cache_stats;
  session.gc_ = cli.cache_gc;
  session.gc_limit_ = cli.cache_gc_limit;
  return session;
}

void CacheSession::finish(const char* tool) const {
  if (cache_ == nullptr) return;
  if (stats_) std::fprintf(stderr, "%s: %s\n", tool, cache_->stats_line().c_str());
  if (gc_) {
    const ResultCache::GcReport r = cache_->gc(gc_limit_);
    std::fprintf(stderr,
                 "%s: cache gc: kept %zu entries (%llu bytes), evicted %zu entries "
                 "(%llu bytes), removed %zu junk files\n",
                 tool, r.entries_kept, static_cast<unsigned long long>(r.bytes_kept),
                 r.entries_evicted, static_cast<unsigned long long>(r.bytes_evicted),
                 r.junk_removed);
  }
}

}  // namespace stob::exp
