#include "exp/result_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include "util/log.hpp"
#include "util/sha256.hpp"

namespace stob::exp {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMagic = "stobcache";

bool is_hex_key(std::string_view key) {
  if (key.empty() || key.size() > 128) return false;
  for (char c : key) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

/// Whole file as bytes, or nullopt when it cannot be read (missing file is
/// the common case on a cold cache — not an error).
std::optional<std::string> read_file(const fs::path& path) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

bool write_file_durable(const fs::path& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = ok && std::fflush(f) == 0;
  // The rename must never expose a page-cache-only entry as committed.
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

/// "name value\n" starting at *pos; advances *pos past the newline.
bool take_header_line(std::string_view bytes, std::size_t* pos, std::string_view name,
                      std::string_view* value) {
  const std::size_t end = bytes.find('\n', *pos);
  if (end == std::string_view::npos) return false;
  const std::string_view line = bytes.substr(*pos, end - *pos);
  if (line.size() < name.size() + 1 || line.substr(0, name.size()) != name ||
      line[name.size()] != ' ') {
    return false;
  }
  *value = line.substr(name.size() + 1);
  *pos = end + 1;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

ResultCache::ResultCache(std::filesystem::path dir, std::uint32_t codec)
    : dir_(std::move(dir)), codec_(codec) {
  std::error_code ec;
  for (const char* sub : {"objects", "tmp", "quarantine"}) {
    fs::create_directories(dir_ / sub, ec);
    if (ec) {
      throw std::runtime_error("cache: cannot create '" + (dir_ / sub).string() +
                               "': " + ec.message());
    }
  }
  index_ = obs::Journal(dir_ / "index.jsonl");
}

std::string ResultCache::entry_key(std::string_view cell_digest, bool profiled,
                                   std::string_view config_salt) {
  // The salt is hashed first so its free-form contents cannot collide with
  // the framing of the key preimage.
  std::string preimage = "stobcache:";
  preimage += std::to_string(kCacheEntryVersion);
  preimage += "|digest=";
  preimage += cell_digest;
  preimage += "|prof=";
  preimage += profiled ? '1' : '0';
  preimage += "|salt=";
  preimage += util::sha256_hex(config_salt);
  return util::sha256_hex(preimage);
}

std::filesystem::path ResultCache::entry_path(std::string_view key) const {
  if (!is_hex_key(key)) throw std::invalid_argument("cache: malformed entry key");
  const std::string name(key);
  const std::string shard = name.substr(0, 2);
  return dir_ / "objects" / shard / (name + ".entry");
}

std::filesystem::path ResultCache::tmp_path(std::string_view key) {
  // pid + per-process sequence keeps concurrent sweeps sharing one cache
  // directory from ever colliding on an in-flight name.
  const std::uint64_t seq = tmp_seq_.fetch_add(1, std::memory_order_relaxed);
  return dir_ / "tmp" /
         (std::string(key.substr(0, 16)) + "." + std::to_string(::getpid()) + "." +
          std::to_string(seq));
}

std::string ResultCache::encode_entry(std::string_view key, std::string_view payload) const {
  std::string out(kMagic);
  out += ' ';
  out += std::to_string(kCacheEntryVersion);
  out += "\nkey ";
  out += key;
  out += "\ncodec ";
  out += std::to_string(codec_);
  out += "\nlen ";
  out += std::to_string(payload.size());
  out += "\nsha256 ";
  out += util::sha256_hex(payload);
  out += "\n\n";
  out += payload;
  return out;
}

std::optional<std::string> ResultCache::decode_entry(std::string_view bytes, std::string_view key,
                                                     std::string* why) const {
  const auto fail = [why](const char* reason) -> std::optional<std::string> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  std::size_t pos = 0;
  std::string_view v;
  std::uint64_t num = 0;
  if (!take_header_line(bytes, &pos, kMagic, &v)) return fail("magic");
  if (!parse_u64(v, &num) || num != kCacheEntryVersion) return fail("version");
  if (!take_header_line(bytes, &pos, "key", &v)) return fail("key");
  if (v != key) return fail("key");
  if (!take_header_line(bytes, &pos, "codec", &v)) return fail("codec");
  if (!parse_u64(v, &num) || num != codec_) return fail("codec");
  if (!take_header_line(bytes, &pos, "len", &v)) return fail("len");
  std::uint64_t len = 0;
  if (!parse_u64(v, &len)) return fail("len");
  if (!take_header_line(bytes, &pos, "sha256", &v)) return fail("sha256");
  const std::string digest(v);
  if (pos >= bytes.size() || bytes[pos] != '\n') return fail("magic");
  pos += 1;
  // Exact length: a truncated *or* padded payload both fail here, before
  // the hash is even computed.
  if (bytes.size() - pos != len) return fail("len");
  const std::string_view payload = bytes.substr(pos);
  if (util::sha256_hex(payload) != digest) return fail("sha256");
  return std::string(payload);
}

void ResultCache::quarantine(const std::filesystem::path& path) {
  const std::uint64_t seq = quarantine_seq_.fetch_add(1, std::memory_order_relaxed);
  const fs::path dest = dir_ / "quarantine" /
                        (path.filename().string() + "." + std::to_string(::getpid()) + "." +
                         std::to_string(seq));
  std::error_code ec;
  fs::rename(path, dest, ec);
  // A concurrent process may have quarantined it first; losing that race
  // leaves nothing to move and nothing to clean up.
  if (ec) fs::remove(path, ec);
}

std::optional<std::string> ResultCache::load(std::string_view key) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  const fs::path path = entry_path(key);
  const std::optional<std::string> bytes = read_file(path);
  if (!bytes.has_value()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string why;
  std::optional<std::string> payload = decode_entry(*bytes, key, &why);
  if (!payload.has_value()) {
    STOB_WARN("cache") << "entry " << std::string(key.substr(0, 12)) << "… failed " << why
                       << " validation; quarantined, cell will be recomputed";
    quarantine(path);
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(payload->size(), std::memory_order_relaxed);
  return payload;
}

bool ResultCache::store(std::string_view key, std::string_view payload) {
  const std::string entry = encode_entry(key, payload);
  const fs::path dest = entry_path(key);
  const fs::path tmp = tmp_path(key);
  std::error_code ec;
  fs::create_directories(dest.parent_path(), ec);
  if (ec || !write_file_durable(tmp, entry)) {
    STOB_WARN("cache") << "cannot write " << tmp.string() << "; entry dropped";
    fs::remove(tmp, ec);
    return false;
  }
  if (commit_hook_for_testing) commit_hook_for_testing();
  fs::rename(tmp, dest, ec);
  if (ec) {
    STOB_WARN("cache") << "cannot commit " << dest.string() << ": " << ec.message();
    fs::remove(tmp, ec);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    index_.append(obs::IndexEntry{std::string(key), entry.size()});
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(entry.size(), std::memory_order_relaxed);
  return true;
}

ResultCache::GcReport ResultCache::gc(std::uint64_t max_total_bytes) {
  GcReport report;
  std::error_code ec;

  // In-flight leftovers and quarantined corpses are junk by definition —
  // a live commit's tmp file can race this sweep, but losing one means the
  // committer re-stores on the next run, never a wrong result.
  for (const char* sub : {"tmp", "quarantine"}) {
    for (const auto& e : fs::directory_iterator(dir_ / sub, ec)) {
      if (fs::remove(e.path(), ec)) report.junk_removed += 1;
    }
  }

  // Every entry on disk, keyed by its digest.
  struct OnDisk {
    fs::path path;
    std::uint64_t bytes = 0;
  };
  std::map<std::string, OnDisk> entries;
  for (const auto& shard : fs::directory_iterator(dir_ / "objects", ec)) {
    for (const auto& e : fs::directory_iterator(shard.path(), ec)) {
      if (e.path().extension() != ".entry") continue;
      std::error_code sec;
      const std::uint64_t size = fs::file_size(e.path(), sec);
      if (!sec) entries[e.path().stem().string()] = OnDisk{e.path(), size};
    }
  }

  // Rank by commit order (last index mention wins); entries the index never
  // saw — e.g. a crash between rename and index append — rank oldest.
  const fs::path index_path = dir_ / "index.jsonl";
  const obs::Journal::Loaded loaded = obs::Journal::load(index_path);
  std::map<std::string, std::size_t> last_pos;
  for (std::size_t i = 0; i < loaded.index.size(); ++i) last_pos[loaded.index[i].digest] = i;
  std::vector<std::pair<std::size_t, std::string>> ranked;  // (order, key)
  ranked.reserve(entries.size());
  for (const auto& [key, info] : entries) {
    const auto it = last_pos.find(key);
    ranked.emplace_back(it == last_pos.end() ? 0 : it->second + 1, key);
  }
  std::sort(ranked.begin(), ranked.end());

  std::uint64_t total = 0;
  for (const auto& [key, info] : entries) total += info.bytes;
  std::size_t evict_upto = 0;
  while (evict_upto < ranked.size() && total > max_total_bytes) {
    const OnDisk& victim = entries[ranked[evict_upto].second];
    if (fs::remove(victim.path, ec)) {
      report.entries_evicted += 1;
      report.bytes_evicted += victim.bytes;
    }
    total -= victim.bytes;
    evict_upto += 1;
  }

  // Rewrite the index to exactly the surviving set (atomic, same protocol
  // as an entry commit), then reopen our append handle — the old descriptor
  // points at the unlinked inode after the rename.
  std::string fresh;
  for (std::size_t i = evict_upto; i < ranked.size(); ++i) {
    const std::string& key = ranked[i].second;
    fresh += obs::to_json_line(obs::IndexEntry{key, entries[key].bytes});
    fresh += '\n';
    report.entries_kept += 1;
    report.bytes_kept += entries[key].bytes;
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    const fs::path tmp = dir_ / "tmp" / ("index." + std::to_string(::getpid()));
    if (write_file_durable(tmp, fresh)) {
      fs::rename(tmp, index_path, ec);
      if (ec) fs::remove(tmp, ec);
    }
    index_ = obs::Journal(index_path);
  }
  return report;
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.probes = probes_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return s;
}

std::string ResultCache::stats_line() const {
  const Stats s = stats();
  char ratio[16];
  std::snprintf(ratio, sizeof ratio, "%.1f", 100.0 * s.hit_ratio());
  std::string out = "cache: " + std::to_string(s.hits) + "/" + std::to_string(s.probes) +
                    " hits (" + ratio + "%), " + std::to_string(s.misses) + " misses, " +
                    std::to_string(s.stores) + " stores, " + std::to_string(s.quarantined) +
                    " quarantined, " + std::to_string(s.bytes_read) + " bytes in, " +
                    std::to_string(s.bytes_written) + " bytes out";
  return out;
}

}  // namespace stob::exp
