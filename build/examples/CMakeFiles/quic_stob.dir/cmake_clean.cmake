file(REMOVE_RECURSE
  "CMakeFiles/quic_stob.dir/quic_stob.cpp.o"
  "CMakeFiles/quic_stob.dir/quic_stob.cpp.o.d"
  "quic_stob"
  "quic_stob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_stob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
