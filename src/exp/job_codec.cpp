#include "exp/job_codec.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace stob::exp {

namespace {

constexpr std::uint8_t kVersion = kWorkerPayloadVersion;

// ---------------------------------------------------------------- writer

struct Writer {
  std::string out;

  void u8(std::uint8_t v) { out.push_back(static_cast<char>(v)); }
  void raw(const void* p, std::size_t n) { out.append(static_cast<const char*>(p), n); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));  // bit-exact round trip, NaNs included
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
};

// ---------------------------------------------------------------- reader

struct Reader {
  std::string_view in;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > in.size()) throw std::runtime_error("job_codec: truncated payload");
  }
  void raw(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, in.data() + pos, n);
    pos += n;
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in[pos++]);
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(in.substr(pos, n));
    pos += n;
    return s;
  }
  std::size_t count(std::uint64_t n) const {
    // A hostile/torn length prefix must not drive a giant allocation.
    if (n > in.size()) throw std::runtime_error("job_codec: implausible element count");
    return static_cast<std::size_t>(n);
  }
};

}  // namespace

std::string encode_worker_payload(const WorkerPayload& payload) {
  const JobResult& r = payload.result;
  Writer w;
  w.u8(kVersion);

  w.u64(r.spec.index);
  w.u64(r.spec.site);
  w.u64(r.spec.sample);
  w.u64(r.spec.defense);
  w.u64(r.spec.cca);
  w.u64(r.spec.fault);
  w.u64(r.spec.seed);

  w.u64(r.trace.size());
  for (const wf::PacketRecord& p : r.trace.packets()) {
    w.f64(p.time);
    w.i32(p.direction);
    w.i64(p.size);
  }

  w.i64(r.page_load_time.ns());
  w.i64(r.response_bytes);
  w.u64(r.objects_fetched);
  w.u8(r.completed ? 1 : 0);
  w.u64(r.sim_events);
  w.str(r.metrics);

  w.u64(r.events.size());
  for (const obs::PacketEvent& e : r.events) {
    w.i64(e.time.ns());
    w.u64(e.flow.src_host);
    w.u64(e.flow.dst_host);
    w.u32(e.flow.src_port);
    w.u32(e.flow.dst_port);
    w.u8(static_cast<std::uint8_t>(e.flow.proto));
    w.u8(static_cast<std::uint8_t>(e.layer));
    w.u8(static_cast<std::uint8_t>(e.dir));
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.i64(e.bytes);
    w.u64(e.seq);
    w.u64(e.packet_id);
  }

  w.u64(r.invariant_checks);
  w.u64(r.invariant_violations);
  w.str(r.first_violation);

  w.u64(payload.prof_records.size());
  for (const obs::ProfRecord& rec : payload.prof_records) {
    w.u64(rec.id);
    w.u64(rec.parent);
    w.u32(rec.depth);
    w.u32(rec.worker);
    w.str(rec.name);
    w.i64(rec.start_ns);
    w.i64(rec.wall_ns);
    w.i64(rec.cpu_ns);
    w.u64(rec.pool_hits);
    w.u64(rec.pool_misses);
  }
  return std::move(w.out);
}

WorkerPayload decode_worker_payload(std::string_view bytes) {
  Reader rd{bytes};
  if (rd.u8() != kVersion) throw std::runtime_error("job_codec: payload version mismatch");

  WorkerPayload payload;
  JobResult& r = payload.result;
  r.spec.index = static_cast<std::size_t>(rd.u64());
  r.spec.site = static_cast<std::size_t>(rd.u64());
  r.spec.sample = static_cast<std::size_t>(rd.u64());
  r.spec.defense = static_cast<std::size_t>(rd.u64());
  r.spec.cca = static_cast<std::size_t>(rd.u64());
  r.spec.fault = static_cast<std::size_t>(rd.u64());
  r.spec.seed = rd.u64();

  const std::size_t packets = rd.count(rd.u64());
  r.trace.packets().reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    const double time = rd.f64();
    const int dir = rd.i32();
    const std::int64_t size = rd.i64();
    r.trace.packets().push_back({time, dir, size});
  }

  r.page_load_time = Duration(rd.i64());
  r.response_bytes = rd.i64();
  r.objects_fetched = static_cast<std::size_t>(rd.u64());
  r.completed = rd.u8() != 0;
  r.sim_events = rd.u64();
  r.metrics = rd.str();

  const std::size_t events = rd.count(rd.u64());
  r.events.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    obs::PacketEvent e;
    e.time = TimePoint(rd.i64());
    e.flow.src_host = static_cast<net::HostId>(rd.u64());
    e.flow.dst_host = static_cast<net::HostId>(rd.u64());
    e.flow.src_port = static_cast<decltype(e.flow.src_port)>(rd.u32());
    e.flow.dst_port = static_cast<decltype(e.flow.dst_port)>(rd.u32());
    e.flow.proto = static_cast<decltype(e.flow.proto)>(rd.u8());
    e.layer = static_cast<obs::Layer>(rd.u8());
    e.dir = static_cast<obs::Direction>(rd.u8());
    e.kind = static_cast<obs::EventKind>(rd.u8());
    e.bytes = rd.i64();
    e.seq = rd.u64();
    e.packet_id = rd.u64();
    r.events.push_back(e);
  }

  r.invariant_checks = rd.u64();
  r.invariant_violations = rd.u64();
  r.first_violation = rd.str();

  const std::size_t records = rd.count(rd.u64());
  payload.prof_records.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    obs::ProfRecord rec;
    rec.id = rd.u64();
    rec.parent = rd.u64();
    rec.depth = rd.u32();
    rec.worker = rd.u32();
    rec.name = rd.str();
    rec.start_ns = rd.i64();
    rec.wall_ns = rd.i64();
    rec.cpu_ns = rd.i64();
    rec.pool_hits = rd.u64();
    rec.pool_misses = rd.u64();
    payload.prof_records.push_back(std::move(rec));
  }
  if (rd.pos != bytes.size()) throw std::runtime_error("job_codec: trailing bytes");
  return payload;
}

}  // namespace stob::exp
