#include "defenses/regulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stob::defenses {

void RegulatorPolicy::begin(Rng& /*rng*/) {
  down_queue_.clear();
  up_queue_.clear();
  surge_start_ = 0.0;
  next_slot_ = 0.0;
  idle_ = true;
  scheduled_downloads_ = 0;
  upload_credit_ = 0.0;
  dummies_sent_ = 0;
}

double RegulatorPolicy::rate_at(double t) const {
  const double decayed = cfg_.initial_rate * std::pow(cfg_.decay, t - surge_start_);
  return std::max(decayed, cfg_.min_rate);
}

void RegulatorPolicy::emit_upload(double t, std::vector<PacketOut>& out) {
  if (!up_queue_.empty()) {
    const std::int64_t size = up_queue_.front();
    up_queue_.pop_front();
    out.push_back({t, +1, std::max(size, cfg_.packet_size), false});
  } else if (dummies_sent_ < cfg_.padding_budget) {
    ++dummies_sent_;
    out.push_back({t, +1, cfg_.packet_size, true});
  }
}

void RegulatorPolicy::run_schedule(double until, bool draining, std::vector<PacketOut>& out) {
  while (!idle_ && next_slot_ <= until) {
    const double t = next_slot_;
    const double rate = rate_at(t);
    if (!down_queue_.empty()) {
      const std::int64_t size = down_queue_.front();
      down_queue_.pop_front();
      out.push_back({t, -1, std::max(size, cfg_.packet_size), false});
    } else if (!draining && dummies_sent_ < cfg_.padding_budget) {
      ++dummies_sent_;
      out.push_back({t, -1, cfg_.packet_size, true});
    } else if (draining && !up_queue_.empty()) {
      // Tail drain with no downloads left: flush uploads on the schedule.
      emit_upload(t, out);
      next_slot_ = t + 1.0 / rate;
      continue;
    } else {
      // Nothing to send and no budget: the schedule sleeps until the next
      // real download arrival starts a fresh surge.
      idle_ = true;
      break;
    }
    ++scheduled_downloads_;

    // Upload rate-coupling: one token per `upload_ratio` scheduled downloads.
    upload_credit_ += 1.0 / std::max(cfg_.upload_ratio, 1.0);
    if (upload_credit_ >= 1.0) {
      upload_credit_ -= 1.0;
      emit_upload(t, out);
    }

    // Surge detection: a backlog burst restarts the schedule at full rate.
    if (static_cast<double>(down_queue_.size()) > cfg_.surge_threshold * rate_at(t)) {
      surge_start_ = t;
    }
    next_slot_ = t + 1.0 / rate_at(t);
  }
}

void RegulatorPolicy::on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) {
  run_schedule(ev.time, /*draining=*/false, out);
  if (ev.direction < 0) {
    if (idle_) {
      // First download of a quiet period: new surge starting now.
      idle_ = false;
      surge_start_ = ev.time;
      next_slot_ = ev.time;
    }
    down_queue_.push_back(ev.size);
  } else {
    up_queue_.push_back(ev.size);
  }
}

void RegulatorPolicy::finish(double /*end_time*/, std::vector<PacketOut>& out) {
  // Drain every queued real packet on the decaying schedule; min_rate keeps
  // the slot gap bounded so this terminates.
  if (idle_ && (!down_queue_.empty() || !up_queue_.empty())) {
    idle_ = false;
    surge_start_ = next_slot_;
  }
  while (!down_queue_.empty() || !up_queue_.empty()) {
    run_schedule(std::numeric_limits<double>::infinity(), /*draining=*/true, out);
    if (idle_ && (!down_queue_.empty() || !up_queue_.empty())) {
      // Schedule went idle with payload left (e.g. uploads but no download
      // slots): restart to flush the rest.
      idle_ = false;
      surge_start_ = next_slot_;
    }
  }
}

}  // namespace stob::defenses
