// Fixed-size worker pool primitive for the experiment engine: an ordered
// parallel map over a dense job index space.
//
// Workers pull indices from a shared atomic counter (dynamic load balancing
// — page loads for heavy sites take longer than light ones), but every
// result is written to results[i], so the merged output is in job order and
// byte-identical regardless of thread count or scheduling. Determinism must
// therefore live entirely in the job function: anything keyed by *worker*
// identity or completion order would leak nondeterminism.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace stob::exp {

/// Number of workers to use when the caller doesn't say: hardware
/// concurrency, clamped to at least 1 (hw_concurrency may report 0).
std::size_t default_jobs();

/// Run fn(0) .. fn(count-1) on `threads` workers (0 = default_jobs()) and
/// return the results in index order. R must be default-constructible and
/// movable. If any job throws, the remaining indices are abandoned, all
/// workers are joined, and the first exception is rethrown.
template <typename R, typename Fn>
std::vector<R> run_ordered(std::size_t count, std::size_t threads, Fn&& fn) {
  std::vector<R> results(count);
  if (count == 0) return results;
  if (threads == 0) threads = default_jobs();
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
          }
          // Park the counter past the end so siblings wind down promptly.
          next.store(count, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace stob::exp
