// Reproduces Table 2 of the paper: k-FP Random Forest closed-world accuracy
// on 9 sites, under {Original, Split, Delayed, Combined} countermeasures
// applied to the first {15, 30, 45, all} packets, with the attack evaluated
// on the same prefix.
//
// Pipeline (mirrors §3):
//  1. collect `samples` page loads for each of the 9 site profiles through
//     the simulated stack (tcpdump-at-client vantage) — parallel (site x
//     sample) jobs on the experiment engine,
//  2. sanitise: per class, drop traces outside the IQR fence on total
//     download size, then balance classes,
//  3. build the 16 datasets (4 countermeasures x 4 scopes),
//  4. evaluate k-FP with stratified cross-validation — one parallel job per
//     (scope, countermeasure) cell; report mean +- std.
//
// Flags: --jobs N (default hardware concurrency), --check-determinism.
// Environment knobs: STOB_SAMPLES (default 100), STOB_FOLDS (default 5),
// STOB_TREES (default 100), STOB_SEED, STOB_JOBS.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "wf/features.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

struct Variant {
  std::string name;
  const defenses::TraceDefense* defense;  // nullptr = Original
};

}  // namespace

int main(int argc, char** argv) {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 100));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 5));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 100));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));
  const exp::Cli cli = exp::parse_cli(argc, argv);
  const std::size_t jobs = cli.jobs == 0 ? exp::default_jobs() : cli.jobs;

  std::printf("=== Table 2: k-FP Random Forest accuracy (closed world, 9 sites) ===\n");
  // Worker count goes to stderr: stdout must be byte-identical for any
  // --jobs value (the determinism contract the engine provides).
  std::fprintf(stderr, "table2_kfp: running with %zu jobs\n", jobs);
  std::printf("samples/site=%zu folds=%zu trees=%zu seed=%llu\n\n", samples, folds, trees,
              static_cast<unsigned long long>(seed));

  // 1. Collect traces through the simulated stack (parallel page loads).
  exp::ExperimentGrid grid;
  grid.sites = workload::nine_sites();
  grid.samples = samples;
  grid.base_seed = seed;
  exp::RunOptions run;
  run.jobs = jobs;
  run.check_determinism = cli.check_determinism;
  std::fflush(stdout);
  const wf::Dataset raw = exp::to_dataset(exp::run_grid(grid, run));
  std::printf("collected %zu traces\n", raw.size());

  // 2. Sanitise (IQR fence on download size) and balance, as in the paper
  //    (they kept 74 of 100 samples per site).
  const wf::Dataset clean = raw.sanitized_by_download_size(0.75);
  std::size_t min_per_class = clean.size();
  {
    std::vector<std::size_t> per_class(clean.num_classes(), 0);
    for (std::size_t i = 0; i < clean.size(); ++i) {
      per_class[static_cast<std::size_t>(clean.label(i))] += 1;
    }
    for (std::size_t c : per_class) min_per_class = std::min(min_per_class, c);
  }
  const wf::Dataset data = clean.balanced(min_per_class);
  std::printf("sanitised to %zu traces (%zu per site)\n\n", data.size(), min_per_class);

  // 3. The four countermeasure variants of §3.
  defenses::SplitDefense split;
  defenses::DelayDefense delay;
  defenses::CombinedDefense combined;
  const std::vector<Variant> variants{
      {"Original", nullptr}, {"Split", &split}, {"Delayed", &delay}, {"Combined", &combined}};
  const std::vector<std::size_t> scopes{15, 30, 45, 0};  // 0 = whole trace

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;

  // 4. One parallel job per (scope, variant) cell; each cell re-derives its
  //    rng exactly as the serial loop did, so the table is --jobs-invariant.
  const auto eval_cell = [&](std::size_t cell) {
    const std::size_t scope = scopes[cell / variants.size()];
    const Variant& v = variants[cell % variants.size()];
    // Defense applied to the first `scope` packets (whole trace when 0),
    // then the attack sees the same prefix.
    Rng rng(seed ^ 0xDEFull);
    wf::Dataset defended = data.transformed([&](const wf::Trace& t) {
      wf::Trace out =
          v.defense != nullptr ? defenses::apply_to_prefix(*v.defense, t, scope, rng) : t;
      return scope == 0 ? out : out.truncated(scope);
    });
    return wf::cross_validate(defended, kfp_cfg, folds, seed);
  };
  const std::size_t cell_count = scopes.size() * variants.size();
  const std::vector<wf::EvalResult> cells =
      exp::run_ordered<wf::EvalResult>(cell_count, jobs, eval_cell);

  // --check-determinism also covers the attack stage: re-run every cell at a
  // different worker count and demand identical EvalResults (fold accuracies,
  // confusion matrices, everything).
  if (cli.check_determinism) {
    const std::size_t other_jobs = jobs == 1 ? 2 : 1;
    const std::vector<wf::EvalResult> again =
        exp::run_ordered<wf::EvalResult>(cell_count, other_jobs, eval_cell);
    for (std::size_t cell = 0; cell < cell_count; ++cell) {
      if (cells[cell] != again[cell]) {
        std::fprintf(stderr,
                     "table2_kfp: attack determinism violation in cell %zu "
                     "(jobs=%zu vs jobs=%zu)\n",
                     cell, jobs, other_jobs);
        return 1;
      }
    }
    std::fprintf(stderr, "table2_kfp: attack stage identical at jobs=%zu and jobs=%zu\n", jobs,
                 other_jobs);
  }

  std::printf("%-5s", "N");
  for (const Variant& v : variants) std::printf("  %-17s", v.name.c_str());
  std::printf("\n");
  for (std::size_t s = 0; s < scopes.size(); ++s) {
    std::printf("%-5s", scopes[s] == 0 ? "All" : std::to_string(scopes[s]).c_str());
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const wf::EvalResult& res = cells[s * variants.size() + v];
      std::printf("  %.3f +- %.3f   ", res.mean_accuracy, res.std_accuracy);
    }
    std::printf("\n");
  }

  std::printf("\nPaper's Table 2 for comparison:\n");
  std::printf("N     Original          Split             Delayed           Combined\n");
  std::printf("15    0.798 +- 0.017    0.825 +- 0.024    0.825 +- 0.030    0.795 +- 0.031\n");
  std::printf("30    0.884 +- 0.007    0.860 +- 0.013    0.855 +- 0.030    0.850 +- 0.062\n");
  std::printf("45    0.938 +- 0.016    0.897 +- 0.030    0.913 +- 0.021    0.904 +- 0.004\n");
  std::printf("All   0.963 +- 0.002    0.980 +- 0.008    0.980 +- 0.014    0.992 +- 0.009\n");
  return 0;
}
