#include "net/packet.hpp"

namespace stob::net {

namespace {
thread_local std::uint64_t t_packet_id_counter = 1;
}  // namespace

std::uint64_t next_packet_id() { return t_packet_id_counter++; }

PacketIdScope::PacketIdScope() : saved_(t_packet_id_counter) { t_packet_id_counter = 1; }
PacketIdScope::~PacketIdScope() { t_packet_id_counter = saved_; }

std::ostream& operator<<(std::ostream& os, const FlowKey& k) {
  return os << (k.proto == Proto::Tcp ? "tcp" : "udp") << " " << k.src_host << ":" << k.src_port
            << "->" << k.dst_host << ":" << k.dst_port;
}

std::ostream& operator<<(std::ostream& os, const Packet& p) {
  os << "pkt#" << p.id << " [" << p.flow << "] " << p.wire_size();
  if (p.is_tcp()) {
    const TcpHeader& h = p.tcp();
    os << " seq=" << h.seq;
    if (h.has(kTcpSyn)) os << " SYN";
    if (h.has(kTcpAck)) os << " ack=" << h.ack;
    if (h.has(kTcpFin)) os << " FIN";
    if (h.has(kTcpRst)) os << " RST";
  } else if (p.is_quic()) {
    os << " quic pn=" << p.quic().packet_number;
  }
  if (p.is_dummy) os << " DUMMY";
  if (p.corrupted) os << " CORRUPT";
  return os;
}

}  // namespace stob::net
