#include "obs/prof.hpp"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>

#include "util/buffer_pool.hpp"

namespace stob::obs {

namespace detail {
thread_local Profiler* g_profiler = nullptr;
}  // namespace detail

void install_profiler(Profiler* p) noexcept { detail::g_profiler = p; }

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time of the calling thread. Spans live on one thread, so this is the
/// span's attributable share of process CPU (summing a run's span CPU over
/// all workers reconstructs the process figure without double counting).
std::int64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t sub_domain(std::uint64_t domain, std::uint64_t index) {
  return splitmix64(splitmix64(domain) ^ index);
}

Profiler::Profiler(std::uint64_t id_domain)
    : id_domain_(id_domain), epoch_wall_ns_(wall_now_ns()) {}

std::int64_t Profiler::now_ns() const { return wall_now_ns() - epoch_wall_ns_; }

std::uint64_t Profiler::next_id() {
  // mix(domain, seq): seq is open order, which is deterministic program
  // order — never wall-clock or thread identity. 0 is reserved for "root".
  const std::uint64_t id = splitmix64(splitmix64(id_domain_) ^ ++seq_);
  return id != 0 ? id : 1;
}

std::size_t Profiler::open(std::string_view name) {
  ProfRecord rec;
  rec.id = next_id();
  rec.parent = stack_.empty() ? 0 : records_[stack_.back()].id;
  rec.depth = static_cast<std::uint32_t>(stack_.size());
  rec.name.assign(name);
  rec.start_ns = now_ns();
  rec.cpu_ns = thread_cpu_ns();  // epoch; close() rewrites with the delta
  const mem::PoolStats pool = mem::pool_stats();
  rec.pool_hits = pool.hits;      // epochs, rewritten on close
  rec.pool_misses = pool.misses;
  const std::size_t index = records_.size();
  records_.push_back(std::move(rec));
  stack_.push_back(index);
  return index;
}

void Profiler::close(std::size_t index) {
  assert(!stack_.empty() && stack_.back() == index &&
         "ProfSpan close out of LIFO order");
  stack_.pop_back();
  ProfRecord& rec = records_[index];
  rec.wall_ns = now_ns() - rec.start_ns;
  rec.cpu_ns = thread_cpu_ns() - rec.cpu_ns;
  const mem::PoolStats pool = mem::pool_stats();
  rec.pool_hits = pool.hits - rec.pool_hits;
  rec.pool_misses = pool.misses - rec.pool_misses;
}

void Profiler::splice(std::vector<ProfRecord> records, std::int64_t shift_ns,
                      std::uint32_t worker) {
  const std::uint64_t attach = stack_.empty() ? 0 : records_[stack_.back()].id;
  const auto base_depth = static_cast<std::uint32_t>(stack_.size());
  records_.reserve(records_.size() + records.size());
  for (ProfRecord& rec : records) {
    if (rec.parent == 0) rec.parent = attach;
    rec.depth += base_depth;
    rec.start_ns += shift_ns;
    // Nested pools (a profiled pool inside a job) already assigned inner
    // lanes; fold them under this worker's lane block so lanes stay unique.
    rec.worker = rec.worker == 0 ? worker : worker * 64 + rec.worker;
    records_.push_back(std::move(rec));
  }
}

std::vector<ProfRecord> Profiler::take_records() {
  std::vector<ProfRecord> out = std::move(records_);
  records_.clear();
  stack_.clear();
  return out;
}

void Profiler::clear() {
  records_.clear();
  stack_.clear();
  seq_ = 0;
  harness_.clear();
}

std::string Profiler::structure() const {
  char buf[64];
  std::string out;
  for (const ProfRecord& rec : records_) {
    std::snprintf(buf, sizeof(buf), "%016llx %016llx %u ",
                  static_cast<unsigned long long>(rec.id),
                  static_cast<unsigned long long>(rec.parent), rec.depth);
    out += buf;
    out += rec.name;
    out += '\n';
  }
  return out;
}

// ----------------------------------------------------- trace_event export

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string trace_event_json(const std::vector<ProfRecord>& records,
                             std::string_view process_name) {
  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"";
  append_json_escaped(out, process_name);
  out += "\"}}";
  // One thread_name metadata event per lane seen, in first-use order.
  std::vector<std::uint32_t> lanes;
  for (const ProfRecord& rec : records) {
    bool seen = false;
    for (std::uint32_t lane : lanes) seen = seen || lane == rec.worker;
    if (!seen) {
      lanes.push_back(rec.worker);
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"name\":\"%s %u\"}}",
                    rec.worker, rec.worker == 0 ? "main" : "worker", rec.worker);
      out += buf;
    }
  }
  for (const ProfRecord& rec : records) {
    if (rec.wall_ns < 0) continue;  // still open — not a complete event
    out += ",\n{\"name\":\"";
    append_json_escaped(out, rec.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"stob\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"id\":\"%016llx\",\"cpu_ms\":%.6f,"
                  "\"pool_hits\":%llu,\"pool_misses\":%llu}}",
                  rec.worker, static_cast<double>(rec.start_ns) / 1e3,
                  static_cast<double>(rec.wall_ns) / 1e3,
                  static_cast<unsigned long long>(rec.id),
                  static_cast<double>(rec.cpu_ns) / 1e6,
                  static_cast<unsigned long long>(rec.pool_hits),
                  static_cast<unsigned long long>(rec.pool_misses));
    out += buf;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void write_trace_event(const std::filesystem::path& path,
                       const std::vector<ProfRecord>& records,
                       std::string_view process_name) {
  std::ofstream f(path);
  f << trace_event_json(records, process_name);
}

}  // namespace stob::obs
