// Website workload models.
//
// The paper's §3 experiment captures 9 popular websites with tcpdump. Real
// websites are not reachable from this environment, so each site is modelled
// by a parameterised profile: page structure (HTML size, object count and
// size distributions), server behaviour (think time), client behaviour
// (parallel connections) and path characteristics (CDN proximity). The
// profiles differ in exactly the dimensions WF attacks exploit — download
// volume, object count, burst structure, timing — which is what makes the
// closed-world classification task meaningful; per-sample randomness models
// load variability between visits.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace stob::workload {

struct SiteProfile {
  std::string name;

  // Page structure.
  double html_mu = 10.0;        ///< lognormal mu of the main HTML bytes
  double html_sigma = 0.25;
  double objects_mean = 20.0;   ///< object count ~ round(lognormal)
  double objects_sigma = 0.20;
  double object_mu = 9.5;       ///< lognormal mu of object bytes
  double object_sigma = 0.9;
  double large_object_prob = 0.05;  ///< chance an object is a large asset
  double large_object_mu = 12.5;    ///< lognormal mu of large assets

  // Client/server behaviour.
  int parallel_connections = 4;
  double think_ms_mean = 8.0;   ///< server think time per request, exponential-ish
  double request_bytes_mean = 500.0;  ///< URL/cookie sizes differ per site

  /// TLS handshake response (ServerHello + certificate chain). Nearly
  /// constant per site — chains only change on redeployment — which is why
  /// the first packets of a connection are already so identifying.
  double tls_response_mean = 4300.0;
  double tls_response_sigma = 380.0;

  /// Server initial congestion window, MSS units (CDN-tuned, 10..32).
  int server_initial_cwnd = 10;

  // Path characteristics (CDN distance).
  Duration base_one_way_delay = Duration::millis(10);
  DataRate access_rate = DataRate::mbps(80);
};

/// One concrete page-load instance sampled from a profile.
struct PagePlan {
  std::int64_t html_bytes = 0;
  std::vector<std::int64_t> object_bytes;
  std::vector<Duration> think_times;       ///< per object (index-aligned)
  std::vector<std::int64_t> request_bytes; ///< per object
  Duration html_think;
  std::int64_t html_request_bytes = 0;
  std::int64_t tls_response_bytes = 0;
  int parallel_connections = 1;

  std::int64_t total_response_bytes() const;
};

/// Sample a concrete page load from the profile.
PagePlan sample_page(const SiteProfile& profile, Rng& rng);

/// The nine sites of the paper's §3 dataset (bing, github, instagram,
/// netflix, office, spotify, whatsapp, wikipedia, youtube), with distinct,
/// plausible parameterisations.
const std::vector<SiteProfile>& nine_sites();

}  // namespace stob::workload
