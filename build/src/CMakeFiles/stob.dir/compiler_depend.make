# Empty compiler generated dependencies file for stob.
# This may be replaced when dependencies are built.
