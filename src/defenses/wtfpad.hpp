// Full adaptive-padding WTF-PAD (Juarez et al., ESORICS'16) as a streaming
// Stob policy.
//
// Unlike the trace-level sketch in baselines.cpp (fill long gaps with a
// fixed burst), this is the two-histogram adaptive-padding state machine,
// one per direction:
//
//   Idle --real pkt--> Burst: arm a timeout drawn from the *burst*
//       histogram H_B (the expected intra-burst inter-arrival).
//   Burst, real packet before timeout: still inside a real burst — re-arm
//       from H_B, send nothing.
//   Burst, timeout expires: the real burst died early — inject a dummy and
//       switch to Gap mode, timeouts drawn from the *gap* histogram H_G,
//       fabricating a fake burst that hides where the real one ended.
//   Gap, timeout expires: another dummy, re-arm from H_G.
//   Sampling the histogram's "infinity bin" ends the mode: infinity from
//       H_G falls back to Burst (arm from H_B); infinity from H_B returns
//       to Idle. A real packet in any state resets to Burst.
//
// Histograms are token-based: each draw consumes a token and the histogram
// refills from its initial distribution when it drains (the paper's token
// replenishment). Distributions are configurable per direction and mode
// (range, bin count, linear or log-spaced bins, geometric token decay,
// infinity-bin weight) — the "configurable distributions" knob the defense
// exposes for tuning to a traffic profile.
//
// Real packets are never delayed (WTF-PAD is a zero-delay defense); dummies
// past the end of the real trace are dropped, mirroring how the other
// padding baselines bound page tails. Randomness comes from a generator
// forked off the job Rng in begin(), so output is a pure function of
// (job seed, input events).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "defenses/policy.hpp"

namespace stob::defenses {

/// Token histogram with an infinity bin, the WTF-PAD sampling primitive.
class PadHistogram {
 public:
  struct Spec {
    double lo = 0.0005;      ///< smallest delay, seconds
    double hi = 0.05;        ///< upper edge of the largest finite bin
    std::size_t bins = 20;
    bool log_bins = true;    ///< log-spaced bin edges (WTF-PAD's choice)
    double decay = 0.85;     ///< token mass ratio between adjacent bins
    double infinity_weight = 0.1;  ///< share of tokens in the infinity bin
    std::uint64_t tokens = 400;    ///< total tokens per refill
  };

  PadHistogram() : PadHistogram(Spec{}) {}
  explicit PadHistogram(Spec spec);

  /// Draw a delay and consume its token; returns +infinity when the
  /// infinity bin is hit. Refills from the initial distribution on drain.
  double sample(Rng& rng);

  std::uint64_t tokens_left() const { return total_; }
  std::uint64_t refills() const { return refills_; }

 private:
  Spec spec_;
  std::vector<double> edges_;            // bins + 1 finite edges
  std::vector<std::uint64_t> initial_;   // finite bins + trailing infinity bin
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t refills_ = 0;
};

class WtfPadPolicy final : public Policy {
 public:
  struct Config {
    PadHistogram::Spec client_burst{0.0005, 0.02, 20, true, 0.85, 0.15, 400};
    PadHistogram::Spec client_gap{0.001, 0.06, 20, true, 0.85, 0.30, 400};
    PadHistogram::Spec server_burst{0.0002, 0.01, 20, true, 0.85, 0.10, 400};
    PadHistogram::Spec server_gap{0.0005, 0.04, 20, true, 0.85, 0.25, 400};
    std::int64_t dummy_size = 1514;
  };

  WtfPadPolicy() : WtfPadPolicy(Config{}) {}
  explicit WtfPadPolicy(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "wtfpad"; }
  void begin(Rng& rng) override;
  void on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) override;
  void finish(double end_time, std::vector<PacketOut>& out) override;

 private:
  enum class Mode { Idle, Burst, Gap };

  struct Machine {
    int direction = 0;
    Mode mode = Mode::Idle;
    double timeout = 0.0;  // absolute time of the armed timer
    bool armed = false;
    PadHistogram burst;
    PadHistogram gap;
  };

  /// Fire every armed timeout at time <= `until` (dummies are emitted with
  /// the timeout's timestamp, so interleaving with real packets is exact).
  void fire_until(Machine& m, double until, std::vector<PacketOut>& out);
  void arm(Machine& m, double now, Mode source);

  Config cfg_;
  Rng rng_;
  std::array<Machine, 2> machines_;  // [0] = client (+1), [1] = server (-1)
};

}  // namespace stob::defenses
