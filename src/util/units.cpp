#include "util/units.hpp"

#include <iomanip>

namespace stob {

std::ostream& operator<<(std::ostream& os, Duration d) {
  const std::int64_t ns = d.ns();
  if (ns % 1'000'000'000 == 0) return os << ns / 1'000'000'000 << "s";
  if (ns % 1'000'000 == 0) return os << ns / 1'000'000 << "ms";
  if (ns % 1'000 == 0) return os << ns / 1'000 << "us";
  return os << ns << "ns";
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t=" << std::fixed << std::setprecision(6) << t.sec() << "s";
}

std::ostream& operator<<(std::ostream& os, Bytes b) { return os << b.count() << "B"; }

std::ostream& operator<<(std::ostream& os, DataRate r) {
  const std::int64_t bps = r.bits_per_sec();
  if (bps >= 1'000'000'000) return os << std::fixed << std::setprecision(2) << r.gbps_f() << "Gbps";
  if (bps >= 1'000'000) return os << std::fixed << std::setprecision(2) << r.mbps_f() << "Mbps";
  return os << bps << "bps";
}

}  // namespace stob
