#include "exp/worker_pool.hpp"

namespace stob::exp {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace detail {

void reduce_profiles(std::vector<JobProfile>& jobs, obs::Profiler& prof,
                     obs::MetricsRegistry* caller_metrics, std::size_t threads,
                     std::int64_t pool_start_ns, std::int64_t pool_end_ns) {
  constexpr double kNsPerMs = 1e6;
  obs::MetricsRegistry& h = prof.harness();
  // Busy time per worker lane; lane 0 is the caller thread (serial path),
  // lanes 1..threads are pool workers.
  std::vector<double> busy_ms(threads + 1, 0.0);
  std::size_t ran = 0;
  double max_end_ms = 0.0;
  double second_end_ms = 0.0;
  // Index order throughout: span splicing, metrics merging, and the harness
  // distributions all reduce over jobs[0..n) in the same order on every
  // run, so everything derived here except the measured values themselves
  // is reproducible across worker counts.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobProfile& j = jobs[i];
    if (!j.ran) continue;  // abandoned after a sibling threw
    ++ran;
    prof.splice(std::move(j.records), j.start_ns, j.worker);
    if (caller_metrics != nullptr) caller_metrics->merge(j.metrics);
    const double wait_ms = static_cast<double>(j.start_ns - pool_start_ns) / kNsPerMs;
    const double run_ms = static_cast<double>(j.end_ns - j.start_ns) / kNsPerMs;
    const double end_ms = static_cast<double>(j.end_ns - pool_start_ns) / kNsPerMs;
    h.observe("exp.pool.queue_wait_ms", wait_ms);
    h.observe("exp.pool.run_ms", run_ms);
    h.observe("exp.pool.drain_ms", static_cast<double>(pool_end_ns - j.end_ns) / kNsPerMs);
    if (j.worker < busy_ms.size()) busy_ms[j.worker] += run_ms;
    if (end_ms > max_end_ms) {
      second_end_ms = max_end_ms;
      max_end_ms = end_ms;
    } else if (end_ms > second_end_ms) {
      second_end_ms = end_ms;
    }
  }
  double total_busy_ms = 0.0;
  for (double b : busy_ms) {
    if (b > 0.0) h.observe("exp.pool.worker_busy_ms", b);
    total_busy_ms += b;
  }
  const double pool_wall_ms = static_cast<double>(pool_end_ns - pool_start_ns) / kNsPerMs;
  h.set("exp.pool.workers", static_cast<double>(threads));
  h.add("exp.pool.jobs", ran);
  if (pool_wall_ms > 0.0 && threads > 0) {
    // Utilization: fraction of available worker-time spent inside jobs.
    h.set("exp.pool.utilization",
          total_busy_ms / (pool_wall_ms * static_cast<double>(threads)));
    // Straggler ratio: the tail between the last and second-to-last job
    // finishing, as a fraction of pool wall time — near 0 is a balanced
    // finish, near 1 means one job dominated the end of the run.
    h.set("exp.pool.straggler_ratio",
          ran > 1 ? (max_end_ms - second_end_ms) / pool_wall_ms : 0.0);
  }
}

}  // namespace detail

}  // namespace stob::exp
