// Minimal CSV reader/writer for trace datasets and benchmark output. Handles
// the unquoted numeric/identifier cells this project produces; it is not a
// general RFC 4180 parser.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace stob::csv {

using Row = std::vector<std::string>;

/// Split one CSV line on commas (no quoting).
Row split_line(std::string_view line, char sep = ',');

/// Read all rows of a CSV file. Throws std::runtime_error on I/O failure.
std::vector<Row> read_file(const std::filesystem::path& path, char sep = ',');

/// Write rows to a CSV file, overwriting. Throws on I/O failure.
void write_file(const std::filesystem::path& path, const std::vector<Row>& rows,
                char sep = ',');

/// Join cells into one line.
std::string join(const Row& row, char sep = ',');

}  // namespace stob::csv
