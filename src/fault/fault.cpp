#include "fault/fault.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace stob::fault {

// ------------------------------------------------------------- scenarios

Profile clean() { return Profile{}; }

Profile bursty_loss() {
  Profile p;
  p.name = "bursty-loss";
  p.bursty = {0.03, 0.25, 0.0005, 0.30};
  return p;
}

Profile reordering() {
  Profile p;
  p.name = "reordering";
  p.reorder = {0.05, 4, Duration::millis(1)};
  return p;
}

Profile duplication() {
  Profile p;
  p.name = "duplication";
  p.duplicate = {0.03};
  return p;
}

Profile corruption() {
  Profile p;
  p.name = "corruption";
  p.corrupt = {0.02};
  return p;
}

Profile jitter_heavy() {
  Profile p;
  p.name = "jitter-heavy";
  p.jitter = {Duration::millis(8)};
  return p;
}

Profile bandwidth_oscillation() {
  Profile p;
  p.name = "bw-oscillation";
  p.oscillation = {0.25, Duration::seconds(2)};
  return p;
}

Profile link_flap() {
  Profile p;
  p.name = "link-flap";
  p.flap = {Duration::seconds(3), Duration::millis(300)};
  return p;
}

Profile adverse_mix() {
  Profile p;
  p.name = "adverse-mix";
  p.bursty = {0.01, 0.35, 0.0002, 0.15};
  p.reorder = {0.02, 3, Duration::millis(1)};
  p.duplicate = {0.005};
  p.corrupt = {0.005};
  p.jitter = {Duration::millis(3)};
  return p;
}

std::vector<PathProfile> all_scenarios() {
  std::vector<PathProfile> out;
  for (Profile p : {clean(), bursty_loss(), reordering(), duplication(), corruption(),
                    jitter_heavy(), bandwidth_oscillation(), link_flap(), adverse_mix()}) {
    out.push_back(PathProfile::symmetric(std::move(p)));
  }
  return out;
}

// -------------------------------------------------------------- injector

FaultInjector::FaultInjector(sim::Simulator& sim, net::Pipe& pipe, Profile profile, Rng rng)
    : sim_(sim),
      pipe_(pipe),
      profile_(std::move(profile)),
      rng_(rng),
      attached_at_(sim.now()),
      base_rate_(pipe.config().rate),
      last_inorder_arrival_(sim.now()) {
  pipe_.set_fault_model(this);
  if (profile_.oscillation.enabled()) schedule_oscillation();
}

FaultInjector::~FaultInjector() {
  if (pipe_.fault_model() == this) pipe_.set_fault_model(nullptr);
}

bool FaultInjector::link_down(TimePoint now) const {
  if (!profile_.flap.enabled()) return false;
  if (now - attached_at_ >= profile_.active_for) return false;
  const std::int64_t cycle = (profile_.flap.up + profile_.flap.down).ns();
  if (cycle <= 0) return false;
  const std::int64_t phase = (now - attached_at_).ns() % cycle;
  return phase >= profile_.flap.up.ns();
}

void FaultInjector::schedule_oscillation() {
  const Duration half = profile_.oscillation.period / 2;
  sim_.schedule_after(half, [this] {
    if (sim_.now() - attached_at_ >= profile_.active_for) {
      pipe_.set_rate(base_rate_);
      rate_low_ = false;
      return;  // horizon reached: link stays at base rate, no more events
    }
    rate_low_ = !rate_low_;
    pipe_.set_rate(rate_low_ ? base_rate_ * profile_.oscillation.low_mult : base_rate_);
    schedule_oscillation();
  });
}

void FaultInjector::on_transmitted(net::Pipe& pipe, net::Packet p) {
  ++stats_.inspected;
  const TimePoint now = sim_.now();

  if (link_down(now)) {
    ++stats_.flap_lost;
    obs::note_fault(obs::FaultKind::Flap, p, now);
    pipe.count_lost(p);
    return;
  }

  bool lost = false;
  if (profile_.bursty.enabled()) {
    // Advance the Gilbert-Elliott chain once per packet, then sample loss
    // at the new state's rate.
    if (ge_bad_) {
      if (rng_.chance(profile_.bursty.p_exit_bad)) ge_bad_ = false;
    } else if (rng_.chance(profile_.bursty.p_enter_bad)) {
      ge_bad_ = true;
    }
    lost = rng_.chance(ge_bad_ ? profile_.bursty.loss_bad : profile_.bursty.loss_good);
  }
  if (!lost && profile_.iid_loss > 0.0) lost = rng_.chance(profile_.iid_loss);
  if (lost) {
    ++stats_.lost;
    obs::note_fault(obs::FaultKind::Loss, p, now);
    pipe.count_lost(p);
    return;
  }

  if (profile_.corrupt.enabled() && rng_.chance(profile_.corrupt.probability)) {
    p.corrupted = true;
    ++stats_.corrupted;
    obs::note_fault(obs::FaultKind::Corrupt, p, now);
  }

  const bool duplicate =
      profile_.duplicate.enabled() && rng_.chance(profile_.duplicate.probability);
  // The duplicate budget must reach any listener before either copy's rx.
  if (duplicate) {
    ++stats_.duplicated;
    obs::note_fault(obs::FaultKind::Duplicate, p, now);
  }
  net::Packet dup = duplicate ? p : net::Packet{};

  Duration extra;
  if (profile_.reorder.enabled() && rng_.chance(profile_.reorder.probability)) {
    // Hold this packet so the ones behind it overtake; held packets skip
    // the in-order clamp (overtaking is the point).
    extra = profile_.reorder.hold *
            rng_.uniform_int(1, static_cast<std::int64_t>(std::max(profile_.reorder.depth, 1)));
    ++stats_.reordered;
    obs::note_fault(obs::FaultKind::Reorder, p, now);
  } else {
    if (profile_.jitter.enabled()) {
      extra = Duration(rng_.uniform_int(0, profile_.jitter.max.ns()));
      if (extra > Duration()) obs::note_fault(obs::FaultKind::Jitter, p, now);
    }
    // Jitter is order-preserving: never schedule an arrival before the
    // previous in-order packet's arrival.
    TimePoint arrival = now + pipe.config().delay + extra;
    if (arrival < last_inorder_arrival_) {
      extra += last_inorder_arrival_ - arrival;
      arrival = last_inorder_arrival_;
    }
    last_inorder_arrival_ = arrival;
  }
  ++stats_.delivered;
  pipe.deliver(std::move(p), extra);

  // The copy trails the original by a microsecond so both arrivals are
  // distinct, ordered events.
  if (duplicate) pipe.deliver(std::move(dup), extra + Duration::micros(1));
}

PathFaults::PathFaults(sim::Simulator& sim, net::DuplexPath& path, const PathProfile& profile,
                       Rng rng)
    : forward_(sim, path.forward(), profile.forward, rng.fork()),
      backward_(sim, path.backward(), profile.backward, rng.fork()) {}

}  // namespace stob::fault
