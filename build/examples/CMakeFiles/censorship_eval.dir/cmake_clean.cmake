file(REMOVE_RECURSE
  "CMakeFiles/censorship_eval.dir/censorship_eval.cpp.o"
  "CMakeFiles/censorship_eval.dir/censorship_eval.cpp.o.d"
  "censorship_eval"
  "censorship_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censorship_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
