#include "defenses/baseline_policies.hpp"

namespace stob::defenses {

// -------------------------------------------------------- SplitStreamPolicy

void SplitStreamPolicy::begin(Rng& /*rng*/) {}

void SplitStreamPolicy::on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) {
  const bool in_scope = !cfg_.incoming_only || ev.direction < 0;
  if (in_scope && ev.size > cfg_.threshold) {
    const std::int64_t first = ev.size / 2;
    const std::int64_t second = ev.size - first;
    out.push_back({ev.time, ev.direction, first, false});
    // The second half leaves after the first half's serialisation time.
    const double gap = static_cast<double>(first) * 8.0 /
                       static_cast<double>(cfg_.link_rate.bits_per_sec());
    out.push_back({ev.time + gap, ev.direction, second, false});
  } else {
    out.push_back({ev.time, ev.direction, ev.size, false});
  }
}

// -------------------------------------------------------- DelayStreamPolicy

void DelayStreamPolicy::begin(Rng& rng) {
  rng_ = &rng;
  shift_ = 0.0;
  prev_original_ = 0.0;
  first_ = true;
}

void DelayStreamPolicy::on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) {
  const bool in_scope = !cfg_.incoming_only || ev.direction < 0;
  if (!first_ && in_scope) {
    const double gap = ev.time - prev_original_;
    if (gap > 0) shift_ += gap * rng_->uniform(cfg_.lo, cfg_.hi);
  }
  out.push_back({ev.time + shift_, ev.direction, ev.size, false});
  prev_original_ = ev.time;
  first_ = false;
}

}  // namespace stob::defenses
