// Crash-isolated out-of-process experiment runner.
//
// run_cells() is a single-threaded supervisor that executes a dense index
// space of grid cells in child worker processes (util::Subprocess), one
// process per cell attempt, multiplexed with poll(). It turns the failure
// modes that kill a single-address-space sweep — a segfaulting cell, an
// OOM kill, a wedged simulation — into per-cell events:
//
//   * crash (signal) / nonzero exit / torn result frame → the cell is
//     retried with capped exponential backoff;
//   * hang → a per-job wall-clock watchdog SIGKILLs the worker, then the
//     same retry path applies;
//   * a cell that fails every attempt is *quarantined*: the sweep keeps
//     going, and the cell gets a structured CrashRecord (outcome, signal /
//     exit code, attempt count, captured stderr tail) in the report and
//     the journal.
//
// Every finished cell is appended to an obs::Journal keyed by its
// content-addressed cell_spec_digest; `resume` reloads the journal and
// replays matching cells instead of re-running them, so a sweep killed at
// any point (SIGKILL of the supervisor included) completes incrementally.
//
// Determinism: the supervisor only moves opaque result payloads around —
// cells are pure functions of their spec, payloads are decoded in job-index
// order by the caller, and retries/backoff/scheduling affect timing only.
// The self-fault hook (WorkerFaultPlan, `--inject-worker-fault`) makes that
// claim testable: it deterministically injects crash/hang/exit faults into
// worker attempts, *never on a cell's final attempt* (unless rate >= 1), so
// a faulted sweep converges to output byte-identical to a fault-free run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/journal.hpp"
#include "util/units.hpp"

namespace stob::exp {

/// Deterministic self-fault hook for testing the supervisor. Parsed from
/// "crash|hang|exit[:rate]" (rate defaults to 1). The injection coin for
/// (cell, attempt) is a pure splitmix64 function — independent of
/// scheduling — and a cell's final attempt is exempt unless rate >= 1, so
/// any rate < 1 exercises retries without ever changing sweep output.
struct WorkerFaultPlan {
  enum class Kind : std::uint8_t { None, Crash, Hang, Exit };
  Kind kind = Kind::None;
  double rate = 0.0;

  /// Throws std::invalid_argument on a malformed spec. Empty = no faults.
  static WorkerFaultPlan parse(const std::string& spec);

  bool enabled() const { return kind != Kind::None && rate > 0.0; }
  bool should_inject(std::size_t job, std::size_t attempt, std::size_t max_attempts) const;
  const char* kind_name() const;  ///< "crash" / "hang" / "exit" / ""
};

/// Execute an injected fault inside a worker process: "crash" raises
/// SIGKILL (uncatchable, so the outcome is sanitizer-invariant), "hang"
/// wedges until the watchdog fires, "exit" _exits nonzero. Any other value
/// (including "") returns and the worker proceeds normally.
void execute_worker_fault(std::string_view kind);

/// Supervisor configuration (CLI-shaped; see exp::proc_options_from_cli).
struct ProcOptions {
  /// Concurrent worker processes; 0 disables out-of-process mode.
  std::size_t workers = 0;
  /// Per-attempt wall-clock watchdog; expiry means SIGKILL + retry.
  Duration job_timeout = Duration::seconds(120);
  /// Retries after the first failed attempt (total attempts = retries + 1).
  std::size_t retries = 2;
  /// Capped exponential backoff between a cell's attempts.
  Duration backoff_base = Duration::millis(50);
  Duration backoff_cap = Duration::seconds(2);
  /// Append finished cells here (empty = no journal).
  std::string journal_path;
  /// Replay journaled cells whose digest matches instead of re-running.
  bool resume = false;
  /// Self-fault hook, e.g. "crash:0.1" (see WorkerFaultPlan).
  std::string fault_spec;
  /// Non-empty: fork/exec these argv as the worker (the supervisor appends
  /// the --worker-* flags). Empty: fork-only workers running the caller's
  /// in-process cell function — no exec, used by tests/library callers.
  std::vector<std::string> worker_argv;

  // -- worker-side fields (set only inside a spawned worker process) --
  std::optional<std::size_t> worker_job;  ///< cell index to run, then _exit
  int worker_fd = 3;                      ///< descriptor for the result frame
  std::string worker_fault;               ///< fault to execute before the job
  std::uint64_t worker_prof_domain = 0;   ///< caller profiler's id domain
  bool worker_profile = false;            ///< capture per-job span records
};

/// What the supervisor did, cell by cell aggregated. Failures only holds
/// quarantined cells (every attempt failed); transient failures that a
/// retry recovered show up in `retries` only.
struct ProcReport {
  std::size_t cells = 0;          ///< total cells in the run
  std::size_t ran = 0;            ///< cells executed by workers this run
  std::size_t journal_hits = 0;   ///< cells replayed from the journal
  std::size_t cache_hits = 0;     ///< cells served by the result cache
  std::size_t cache_stores = 0;   ///< worker results committed to the cache
  std::size_t retries = 0;        ///< extra attempts scheduled
  std::size_t injected_faults = 0;  ///< attempts the self-fault hook hit
  std::size_t quarantined = 0;    ///< cells that failed all attempts
  std::vector<obs::CrashRecord> failures;
};

/// Supervisor-side hooks into the content-addressed result cache: `probe`
/// is consulted before a cell is scheduled (a hit skips the worker), and
/// `commit` is called with every worker-produced payload — workers publish
/// frames, only the supervisor commits them, so a crashing worker can never
/// tear a cache entry. Journal-replayed cells are neither probed nor
/// committed (a journal payload's key context is unknown to the runner).
struct CellCache {
  std::function<std::optional<std::string>(std::size_t)> probe;
  std::function<void(std::size_t, const std::string&)> commit;
};

/// Execute cells [0, count) out of process and return each cell's result
/// payload in index order (nullopt = quarantined). `digest(i)` is the
/// journal key for cell i; `run_cell(i)` produces cell i's payload and is
/// invoked *in the forked child* when `opts.worker_argv` is empty (exec
/// mode never calls it — the exec'd binary computes the payload itself).
/// Throws std::runtime_error on supervisor-level failures (journal cannot
/// be opened, workers cannot be spawned at all).
std::vector<std::optional<std::string>> run_cells(
    std::size_t count, const ProcOptions& opts,
    const std::function<std::string(std::size_t)>& digest,
    const std::function<std::string(std::size_t)>& run_cell, ProcReport* report,
    const CellCache* cache = nullptr);

/// One-line supervisor summary (and one line per quarantined cell) on
/// stderr — never stdout, which stays byte-identical across modes.
void print_proc_summary(const char* tool, const ProcOptions& opts, const ProcReport& report);

}  // namespace stob::exp
