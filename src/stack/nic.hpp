// NIC model: pulls packets from the qdisc when they become eligible, applies
// TSO (splitting a transport super-segment into MSS-sized wire packets sent
// back-to-back at line rate — the "micro burst"), pushes them into the
// egress pipe with bounded in-flight bytes (tx ring backpressure), and
// reports per-flow completions so the transport can implement TCP Small
// Queues.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "net/pipe.hpp"
#include "sim/simulator.hpp"
#include "stack/qdisc.hpp"

namespace stob::stack {

class Nic {
 public:
  struct Config {
    /// Max bytes the NIC keeps posted into the egress pipe before waiting
    /// for serialisation completions.
    Bytes tx_ring = Bytes::kibi(256);
  };

  /// Per-flow completion callback: `wire_bytes` of the flow finished
  /// serialising onto the wire.
  using CompletionHandler = std::function<void(Bytes wire_bytes)>;

  Nic(sim::Simulator& sim, std::unique_ptr<Qdisc> qdisc);  // default Config
  Nic(sim::Simulator& sim, std::unique_ptr<Qdisc> qdisc, Config cfg);

  /// Egress pipe; must outlive the NIC. Installs a tx-complete hook on it.
  void attach_egress(net::Pipe& pipe);

  Qdisc& qdisc() { return *qdisc_; }
  const Qdisc& qdisc() const { return *qdisc_; }

  /// Hand a packet to the qdisc and try to make progress.
  void transmit(net::Packet p);

  /// Register/unregister a TSQ completion handler for a flow.
  void set_completion_handler(const net::FlowKey& flow, CompletionHandler handler);
  void clear_completion_handler(const net::FlowKey& flow);

  /// Bytes a flow currently has queued in qdisc + tx ring (TSQ accounting).
  Bytes flow_unsent(const net::FlowKey& flow) const;

  std::uint64_t tso_segments_split() const { return tso_segments_split_; }
  std::uint64_t wire_packets_sent() const { return wire_packets_sent_; }

 private:
  /// Move eligible packets from the qdisc into the pipe while ring space
  /// remains; arms a wakeup timer when the head packet is paced out.
  void pump();
  void push_to_wire(net::Packet p);
  void on_wire_complete(const net::Packet& p);

  sim::Simulator& sim_;
  std::unique_ptr<Qdisc> qdisc_;
  Config cfg_;
  net::Pipe* egress_ = nullptr;

  Bytes ring_bytes_;  // bytes posted to the pipe, not yet serialised
  sim::EventId wakeup_;
  std::unordered_map<net::FlowKey, CompletionHandler, net::FlowKeyHash> completions_;
  std::unordered_map<net::FlowKey, std::int64_t, net::FlowKeyHash> ring_per_flow_;
  std::uint64_t tso_segments_split_ = 0;
  std::uint64_t wire_packets_sent_ = 0;
};

/// Single-core CPU cost model used by the Figure 3 reproduction: transport
/// work is serialised through one core, so per-segment and per-packet costs
/// bound throughput once TSO/packet sizes shrink.
class CpuModel {
 public:
  struct Costs {
    Duration per_segment = Duration::nanos(0);  // one stack traversal (tcp_sendmsg..dev_queue_xmit)
    Duration per_wire_packet = Duration::nanos(0);  // descriptor/completion work per wire packet
    double per_byte_ns = 0.0;                       // copy/DMA-touch cost
  };

  CpuModel() = default;
  explicit CpuModel(Costs costs) : costs_(costs) {}

  bool enabled() const {
    return costs_.per_segment.ns() > 0 || costs_.per_wire_packet.ns() > 0 ||
           costs_.per_byte_ns > 0.0;
  }

  /// Account one transport segment dispatch of `payload` bytes that the NIC
  /// will split into `wire_packets` packets. Returns the time the CPU
  /// finishes this work (the earliest moment the segment can enter the
  /// qdisc). With a disabled model this is just `now`.
  TimePoint dispatch(TimePoint now, Bytes payload, std::int64_t wire_packets);

  Duration busy_time() const { return busy_accum_; }

 private:
  Costs costs_;
  TimePoint free_at_ = TimePoint::zero();
  Duration busy_accum_;
};

}  // namespace stob::stack
