// Ablation for the TSO autosizing design choice (DESIGN.md §5).
//
// The paper explains (§4.2) that Linux picks the TSO size from the pacing
// rate (~1 ms of data): large segments for CPU efficiency when the rate is
// high, small segments for fine-grained pacing when it is low — and that a
// TSO segment is an unbreakable line-rate micro burst, which is why Stob
// interposes on exactly this decision.
//
// This bench compares rate-based autosizing against a fixed 64 kB TSO at
// several bottleneck rates and reports goodput, the mean transport dispatch
// size (= micro-burst granularity) and wire packets per dispatch. The
// trade-off to expect: identical goodput, but autosizing shrinks the burst
// unit by an order of magnitude at access-link rates.
#include <cstdio>
#include <vector>

#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"

namespace {

using namespace stob;

struct Result {
  double mbps = 0;
  double mean_dispatch_kb = 0;  // payload bytes per TSO super-segment
  double pkts_per_dispatch = 0;
};

Result run(DataRate rate, bool autosize) {
  stack::HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(rate, Duration::millis(10), Bytes::mebi(4));
  stack::HostPair hp(cfg);

  tcp::TcpConnection::Config conn;
  conn.cca = "bbr";
  conn.recv_buffer = Bytes::mebi(64);
  if (!autosize) conn.tso_enabled = true;  // both use TSO;
  // Fixed mode is emulated by disabling the rate-based shrink: a huge
  // "target" makes autosizing always return tso_max.
  // (tso_autosize caps at tso_max for any rate when the target window is
  // large, so we instead pin the floor by bypassing pacing-based sizing.)

  tcp::TcpListener listener(hp.server(), 5201, conn);
  Bytes received;
  listener.set_accept_callback([&](tcp::TcpConnection& c) {
    c.on_data = [&received](Bytes n) { received += n; };
  });

  tcp::TcpConnection::Config sender_cfg = conn;
  sender_cfg.send_buffer = Bytes::mebi(1024);
  if (!autosize) sender_cfg.pacing_enabled = false;  // unpaced -> always 64 kB TSO
  tcp::TcpConnection sender(hp.client(), sender_cfg);
  sender.connect(hp.server().id(), 5201);
  sender.send(Bytes::mebi(1024));

  const TimePoint warm = TimePoint(Duration::millis(400).ns());
  hp.run(warm);
  const Bytes at_warm = received;
  const auto segs_at_warm = sender.stats().segments_sent;
  const auto bytes_at_warm = sender.stats().bytes_sent;
  const auto wire_at_warm = hp.client().nic().wire_packets_sent();
  const Duration window = Duration::millis(400);
  hp.run(warm + window);

  Result r;
  r.mbps = DataRate::from(received - at_warm, window).mbps_f();
  const double segs = static_cast<double>(sender.stats().segments_sent - segs_at_warm);
  const double bytes = static_cast<double>((sender.stats().bytes_sent - bytes_at_warm).count());
  const double wire = static_cast<double>(hp.client().nic().wire_packets_sent() - wire_at_warm);
  if (segs > 0) {
    r.mean_dispatch_kb = bytes / segs / 1000.0;
    r.pkts_per_dispatch = wire / segs;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: rate-based TSO autosizing vs fixed 64 kB (20 ms RTT, BBR) ===\n\n");
  std::printf("%-10s %-22s %12s %16s %14s\n", "link", "TSO sizing", "goodput", "mean dispatch",
              "pkts/dispatch");
  for (const auto& [name, rate] :
       std::vector<std::pair<const char*, DataRate>>{{"50Mbps", DataRate::mbps(50)},
                                                     {"200Mbps", DataRate::mbps(200)},
                                                     {"1Gbps", DataRate::gbps(1)}}) {
    const Result a = run(rate, true);
    const Result f = run(rate, false);
    std::printf("%-10s %-22s %10.1fM %14.1fkB %14.1f\n", name, "rate-based (Linux)", a.mbps,
                a.mean_dispatch_kb, a.pkts_per_dispatch);
    std::printf("%-10s %-22s %10.1fM %14.1fkB %14.1f\n", name, "fixed 64 kB (unpaced)", f.mbps,
                f.mean_dispatch_kb, f.pkts_per_dispatch);
    std::fflush(stdout);
  }
  std::printf("\nReading: goodput is equivalent, but autosizing dispatches ~1 ms of data\n");
  std::printf("per TSO segment — the micro-burst unit a WF adversary can observe, and\n");
  std::printf("the knob Stob reuses for obfuscation without throughput collapse.\n");
  return 0;
}
