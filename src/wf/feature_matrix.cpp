#include "wf/feature_matrix.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace stob::wf {

namespace {

constexpr std::size_t kDoublesPerLine = FeatureMatrix::kRowAlign / sizeof(double);

std::size_t padded_stride(std::size_t cols) {
  return (cols + kDoublesPerLine - 1) / kDoublesPerLine * kDoublesPerLine;
}

}  // namespace

std::unique_ptr<double[], FeatureMatrix::AlignedDelete> FeatureMatrix::allocate(std::size_t n) {
  if (n == 0) return nullptr;
  // Value-initialised: padding lanes start (and stay) zero.
  return std::unique_ptr<double[], AlignedDelete>(new (std::align_val_t(kRowAlign))
                                                      double[n]());
}

FeatureMatrix::FeatureMatrix(std::size_t rows, std::size_t cols)
    : cols_(cols), stride_(padded_stride(cols)), rows_(rows), cap_rows_(rows) {
  data_ = allocate(rows_ * stride_);
}

FeatureMatrix::FeatureMatrix(const FeatureMatrix& other)
    : cols_(other.cols_), stride_(other.stride_), rows_(other.rows_), cap_rows_(other.rows_) {
  data_ = allocate(rows_ * stride_);
  if (rows_ > 0) std::memcpy(data_.get(), other.data_.get(), rows_ * stride_ * sizeof(double));
}

FeatureMatrix& FeatureMatrix::operator=(const FeatureMatrix& other) {
  if (this != &other) *this = FeatureMatrix(other);
  return *this;
}

FeatureMatrix FeatureMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  FeatureMatrix m;
  if (rows.empty()) return m;
  m = FeatureMatrix(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) throw std::invalid_argument("FeatureMatrix: ragged rows");
    std::copy(rows[r].begin(), rows[r].end(), m.row(r).begin());
  }
  return m;
}

void FeatureMatrix::set_cols(std::size_t cols) {
  if (rows_ != 0) throw std::logic_error("FeatureMatrix::set_cols on non-empty matrix");
  cols_ = cols;
  stride_ = padded_stride(cols);
  cap_rows_ = 0;
  data_.reset();
}

void FeatureMatrix::reserve_rows(std::size_t cap_rows) {
  if (cap_rows <= cap_rows_) return;
  auto grown = allocate(cap_rows * stride_);
  if (rows_ > 0) std::memcpy(grown.get(), data_.get(), rows_ * stride_ * sizeof(double));
  data_ = std::move(grown);
  cap_rows_ = cap_rows;
}

void FeatureMatrix::append_row(std::span<const double> values) {
  if (cols_ == 0 && rows_ == 0) {
    cols_ = values.size();
    stride_ = padded_stride(cols_);
  }
  if (values.size() != cols_) throw std::invalid_argument("FeatureMatrix: row width mismatch");
  if (rows_ == cap_rows_) reserve_rows(std::max<std::size_t>(8, cap_rows_ * 2));
  std::copy(values.begin(), values.end(), data_.get() + rows_ * stride_);
  rows_ += 1;
}

FeatureMatrix FeatureMatrix::gathered(std::span<const std::size_t> indices) const {
  FeatureMatrix out(indices.size(), cols_);
  double* dst = out.data_.get();
  for (std::size_t i : indices) {
    std::memcpy(dst, data_.get() + i * stride_, stride_ * sizeof(double));
    dst += stride_;
  }
  return out;
}

bool operator==(const FeatureMatrix& a, const FeatureMatrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  for (std::size_t r = 0; r < a.rows_; ++r) {
    const std::span<const double> ra = a.row(r);
    const std::span<const double> rb = b.row(r);
    if (!std::equal(ra.begin(), ra.end(), rb.begin())) return false;
  }
  return true;
}

}  // namespace stob::wf
