// CART decision tree for classification (Gini impurity, exact threshold
// search over sorted feature values, per-node random feature subsampling as
// used inside random forests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "wf/feature_matrix.hpp"

namespace stob::wf {

/// Training-set view: contiguous row-major features plus labels[i] in
/// 0..num_classes-1. The matrix outlives the view.
struct TrainView {
  const FeatureMatrix* x = nullptr;
  std::span<const int> labels;
  int num_classes = 0;

  std::size_t size() const { return x == nullptr ? 0 : x->rows(); }
  std::size_t features() const { return x == nullptr ? 0 : x->cols(); }
  double value(std::size_t row, std::size_t feature) const { return x->at(row, feature); }
};

class DecisionTree {
 public:
  struct Config {
    int max_depth = 32;
    std::size_t min_samples_split = 2;
    std::size_t min_samples_leaf = 1;
    /// Features examined per split; 0 = floor(sqrt(F)) (forest default).
    std::size_t max_features = 0;
  };

  /// Node layout shared with RandomForest's flattened pool: internal nodes
  /// carry feature/threshold and child links, leaves a class-distribution
  /// offset. The root is always node 0.
  struct Node {
    std::int32_t feature = -1;       // -1 marks a leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::int32_t majority = 0;       // cached argmax of the distribution
    std::uint32_t dist_offset = 0;   // into dists() (leaves only)
  };

  DecisionTree() : DecisionTree(Config{}) {}
  explicit DecisionTree(Config cfg) : cfg_(cfg) {}

  /// Fit on the (optionally bootstrapped) index subset of `view`.
  void fit(const TrainView& view, std::span<const std::size_t> indices, Rng& rng);

  /// Predicted class for one feature vector.
  int predict(std::span<const double> x) const;

  /// Per-class probability estimate (leaf class distribution).
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Id of the leaf the sample lands in (k-FP uses leaf co-occurrence as a
  /// similarity measure).
  std::uint32_t leaf_id(std::span<const double> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  bool trained() const { return !nodes_.empty(); }

  /// Raw node pool / flattened per-leaf class distributions, for
  /// RandomForest's structure-of-arrays flattening.
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<double>& dists() const { return dists_; }

 private:
  /// Sort element of the split search: order-mapped feature value plus a
  /// payload packing (bootstrap multiplicity << 32 | label).
  struct KV {
    std::uint64_t key;
    std::uint64_t payload;
  };

  /// Per-fit scratch reused across nodes so build() allocates nothing on
  /// the hot path.
  struct Workspace {
    std::vector<std::size_t> feats;        // feature subsample permutation
    std::vector<KV> kv, kv_scratch;        // split-search sort buffers
    std::vector<std::uint64_t> payload;    // per node element, shared by features
    std::vector<double> weight;            // bootstrap multiplicity per training row
    std::vector<double> left_counts, right_counts, dist;
  };

  std::uint32_t build(const TrainView& view, std::vector<std::size_t>& idx, std::size_t lo,
                      std::size_t hi, double weighted_n, int depth, Rng& rng, Workspace& ws);
  std::uint32_t make_leaf(const TrainView& view, std::span<const std::size_t> idx,
                          double weighted_n, Workspace& ws);
  const Node& descend(std::span<const double> x) const;

  Config cfg_;
  int num_classes_ = 0;
  int depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> dists_;  // flattened per-leaf class distributions
};

}  // namespace stob::wf
