// Tests for trace-level defenses: the §3 emulation primitives (split,
// delay, combined, prefix scoping) and the Table 1 baselines, including the
// invariants DESIGN.md commits to (byte preservation, monotone timestamps,
// bounded inflation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "defenses/baselines.hpp"
#include "defenses/policy.hpp"
#include "defenses/regulator.hpp"
#include "defenses/trace_defense.hpp"
#include "defenses/wtfpad.hpp"

namespace stob::defenses {
namespace {

wf::Trace web_like_trace(std::uint64_t seed = 7, std::size_t packets = 200) {
  Rng rng(seed);
  wf::Trace t;
  double time = 0.0;
  for (std::size_t i = 0; i < packets; ++i) {
    const bool outgoing = rng.chance(0.2);
    const std::int64_t size =
        outgoing ? rng.uniform_int(100, 700) : rng.uniform_int(400, 1514);
    t.add(time, outgoing ? +1 : -1, size);
    time += rng.uniform(0.0005, 0.01);
  }
  t.normalize();
  return t;
}

// ----------------------------------------------------------- SplitDefense

TEST(SplitDefense, PreservesTotalBytes) {
  SplitDefense d;
  Rng rng(1);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  EXPECT_EQ(defended.total_bytes(), original.total_bytes());
}

TEST(SplitDefense, SplitsOnlyLargeIncoming) {
  SplitDefense d;
  Rng rng(1);
  wf::Trace t;
  t.add(0.0, -1, 1500);  // split
  t.add(0.1, -1, 1000);  // below threshold: kept
  t.add(0.2, +1, 1500);  // outgoing: kept (server-side deployment)
  const wf::Trace out = d.apply(t, rng);
  EXPECT_EQ(out.size(), 4u);
  std::size_t large_incoming = 0;
  for (const auto& p : out.packets()) {
    if (p.direction < 0 && p.size > 1200) ++large_incoming;
  }
  EXPECT_EQ(large_incoming, 0u);
}

TEST(SplitDefense, HalvesRespectMinimumMss) {
  SplitDefense d;  // threshold 1200 guarantees halves >= 600 > 536
  Rng rng(1);
  // All incoming packets above the threshold, so every one is split and
  // every resulting fragment must respect the 536 B minimum.
  Rng gen(42);
  wf::Trace t;
  for (int i = 0; i < 50; ++i) t.add(0.01 * i, -1, gen.uniform_int(1201, 1514));
  const wf::Trace out = d.apply(t, rng);
  EXPECT_EQ(out.size(), 100u);
  for (const auto& p : out.packets()) EXPECT_GE(p.size, 536);
}

TEST(SplitDefense, TimestampsMonotone) {
  SplitDefense d;
  Rng rng(1);
  const wf::Trace out = d.apply(web_like_trace(), rng);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out.packets()[i].time, out.packets()[i - 1].time);
  }
}

// ----------------------------------------------------------- DelayDefense

TEST(DelayDefense, PreservesPacketMultiset) {
  DelayDefense d;
  Rng rng(2);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  ASSERT_EQ(defended.size(), original.size());
  // Same direction/size sequence (order preserved, only times change).
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(defended.packets()[i].direction, original.packets()[i].direction);
    EXPECT_EQ(defended.packets()[i].size, original.packets()[i].size);
  }
}

TEST(DelayDefense, OnlyStretchesTime) {
  DelayDefense d;
  Rng rng(3);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  EXPECT_GT(defended.duration(), original.duration());
  // Inflation bounded: every incoming gap grew by at most 30% cumulative.
  EXPECT_LE(defended.duration(), original.duration() * 1.31);
  for (std::size_t i = 1; i < defended.size(); ++i) {
    EXPECT_GE(defended.packets()[i].time, defended.packets()[i - 1].time);
  }
}

TEST(DelayDefense, ZeroBandwidthOverhead) {
  DelayDefense d;
  Rng rng(4);
  const wf::Trace original = web_like_trace();
  const Overhead o = measure_overhead(original, d.apply(original, rng));
  EXPECT_DOUBLE_EQ(o.bandwidth, 0.0);
  EXPECT_GT(o.latency, 0.0);
}

// -------------------------------------------------------- CombinedDefense

TEST(CombinedDefense, SplitsAndDelays) {
  CombinedDefense d;
  Rng rng(5);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  EXPECT_GT(defended.size(), original.size());        // splitting happened
  EXPECT_GT(defended.duration(), original.duration());  // delaying happened
  EXPECT_EQ(defended.total_bytes(), original.total_bytes());
}

// ------------------------------------------------------------ prefix scope

TEST(PrefixScope, OnlyPrefixModified) {
  SplitDefense d;
  Rng rng(6);
  const wf::Trace original = web_like_trace(8, 100);
  const wf::Trace defended = apply_to_prefix(d, original, 30, rng);
  // Packets after the prefix keep their sizes (split would halve them).
  const auto& orig = original.packets();
  const auto& def = defended.packets();
  ASSERT_GE(def.size(), orig.size());
  const std::size_t added = def.size() - orig.size();
  for (std::size_t i = 30; i < orig.size(); ++i) {
    EXPECT_EQ(def[i + added].size, orig[i].size);
    EXPECT_EQ(def[i + added].direction, orig[i].direction);
  }
}

TEST(PrefixScope, ZeroMeansWholeTrace) {
  SplitDefense d;
  Rng rng(7);
  const wf::Trace original = web_like_trace(9, 50);
  Rng rng2(7);
  EXPECT_EQ(apply_to_prefix(d, original, 0, rng).size(), d.apply(original, rng2).size());
}

TEST(PrefixScope, DelayShiftsTail) {
  DelayDefense d;
  Rng rng(8);
  const wf::Trace original = web_like_trace(10, 100);
  const wf::Trace defended = apply_to_prefix(d, original, 30, rng);
  ASSERT_EQ(defended.size(), original.size());
  // The tail shifted right but gaps within the tail are unchanged.
  const auto& orig = original.packets();
  const auto& def = defended.packets();
  EXPECT_GE(def[50].time, orig[50].time);
  EXPECT_NEAR(def[60].time - def[50].time, orig[60].time - orig[50].time, 1e-9);
}

// ---------------------------------------------------------------- baselines

TEST(FrontDefense, AddsDummiesBothDirections) {
  FrontDefense d;
  Rng rng(9);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  EXPECT_GT(defended.size(), original.size());
  EXPECT_GT(defended.outgoing_count(), original.outgoing_count());
  EXPECT_GT(defended.incoming_count(), original.incoming_count());
  EXPECT_GT(defended.total_bytes(), original.total_bytes());
}

TEST(FrontDefense, SubstantialBandwidthOverhead) {
  // FRONT is padding-heavy (the paper cites ~80% bandwidth overhead).
  FrontDefense d;
  Rng rng(10);
  wf::Dataset data;
  for (int i = 0; i < 10; ++i) data.add(web_like_trace(20 + i), 0);
  const Overhead o = measure_overhead(data, d, rng);
  EXPECT_GT(o.bandwidth, 0.2);
}

TEST(BufloDefense, ConstantSizeAndInterval) {
  BufloDefense d;
  Rng rng(11);
  const wf::Trace defended = d.apply(web_like_trace(), rng);
  std::map<double, int> out_times;
  for (const auto& p : defended.packets()) {
    EXPECT_EQ(p.size, 1514);
  }
  // Per-direction inter-departure times are multiples of the interval.
  std::vector<double> in_times;
  for (const auto& p : defended.packets()) {
    if (p.direction < 0) in_times.push_back(p.time);
  }
  for (std::size_t i = 1; i < in_times.size(); ++i) {
    const double gap = in_times[i] - in_times[i - 1];
    EXPECT_NEAR(gap / 0.012, std::round(gap / 0.012), 1e-6);
  }
}

TEST(BufloDefense, EnforcesMinimumDuration) {
  BufloDefense::Config cfg;
  cfg.min_duration = 5.0;
  BufloDefense d(cfg);
  Rng rng(12);
  wf::Trace tiny;
  tiny.add(0.0, +1, 100);
  tiny.add(0.01, -1, 500);
  const wf::Trace defended = d.apply(tiny, rng);
  EXPECT_GE(defended.duration(), 5.0 - 0.02);
}

TEST(TamarawDefense, PadsToMultiple) {
  TamarawDefense d;
  Rng rng(13);
  const wf::Trace defended = d.apply(web_like_trace(), rng);
  const std::size_t in_count = defended.incoming_count();
  const std::size_t out_count = defended.outgoing_count();
  EXPECT_EQ(in_count % 100, 0u);
  EXPECT_EQ(out_count % 100, 0u);
}

TEST(WtfPadDefense, FillsLargeGapsOnly) {
  WtfPadDefense d;
  Rng rng(14);
  wf::Trace t;
  t.add(0.0, -1, 1000);
  t.add(0.001, -1, 1000);  // small gap: untouched
  t.add(0.5, -1, 1000);    // 499 ms gap: dummies injected
  const wf::Trace defended = d.apply(t, rng);
  EXPECT_GT(defended.size(), t.size());
  // Injected packets live inside the large gap.
  std::size_t in_gap = 0;
  for (const auto& p : defended.packets()) {
    if (p.time > 0.001 && p.time < 0.5) ++in_gap;
  }
  EXPECT_GT(in_gap, 0u);
}

TEST(WtfPadDefense, NoDelayAddedToRealPackets) {
  WtfPadDefense d;
  Rng rng(15);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  // Every original packet still exists at its original time.
  std::multiset<double> times;
  for (const auto& p : defended.packets()) times.insert(p.time);
  for (const auto& p : original.packets()) {
    EXPECT_TRUE(times.count(p.time) > 0);
  }
}

TEST(RegulatorDefense, ReshapesDownloadCompletely) {
  RegulatorDefense d;
  Rng rng(16);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  // At least as many download packets as the original needed (all data
  // eventually delivered through the schedule).
  EXPECT_GE(defended.incoming_count(), original.incoming_count());
  for (const auto& p : defended.packets()) EXPECT_EQ(p.size, 1514);
}

TEST(PadToConstant, SizesQuantised) {
  PadToConstantDefense d;
  Rng rng(17);
  const wf::Trace defended = d.apply(web_like_trace(), rng);
  for (const auto& p : defended.packets()) {
    if (p.direction < 0) EXPECT_EQ(p.size % 512, 0);
  }
}

TEST(PadToConstant, NeverShrinks) {
  PadToConstantDefense d;
  Rng rng(18);
  const wf::Trace original = web_like_trace();
  const wf::Trace defended = d.apply(original, rng);
  ASSERT_EQ(defended.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_GE(defended.packets()[i].size, original.packets()[i].size);
  }
}

TEST(AllDefenses, ApplyCleanlyAndReportMetadata) {
  Rng rng(19);
  const wf::Trace original = web_like_trace();
  for (const auto& d : all_defenses()) {
    const wf::Trace defended = d->apply(original, rng);
    EXPECT_FALSE(defended.empty()) << d->name();
    EXPECT_FALSE(d->name().empty());
    EXPECT_FALSE(d->target().empty());
    EXPECT_TRUE(d->strategy() == "Obfuscation" || d->strategy() == "Regularization")
        << d->name();
    EXPECT_NE(d->manipulations().describe(), "none") << d->name();
    // Timestamps monotone for every defense.
    for (std::size_t i = 1; i < defended.size(); ++i) {
      ASSERT_GE(defended.packets()[i].time, defended.packets()[i - 1].time) << d->name();
    }
  }
}

TEST(Overhead, MeasuresRelativeCosts) {
  wf::Trace a, b;
  a.add(0.0, -1, 1000);
  a.add(1.0, -1, 1000);
  b.add(0.0, -1, 1500);
  b.add(2.0, -1, 1500);
  const Overhead o = measure_overhead(a, b);
  EXPECT_DOUBLE_EQ(o.bandwidth, 0.5);
  EXPECT_DOUBLE_EQ(o.latency, 1.0);
}

// ------------------------------------------------------------ PadHistogram

TEST(PadHistogram, SamplesWithinRangeOrInfinity) {
  PadHistogram::Spec spec;
  spec.lo = 0.001;
  spec.hi = 0.02;
  spec.infinity_weight = 0.2;
  PadHistogram hist(spec);
  Rng rng(4);
  bool saw_infinity = false;
  for (int i = 0; i < 2000; ++i) {
    const double d = hist.sample(rng);
    if (std::isinf(d)) {
      saw_infinity = true;
    } else {
      EXPECT_GE(d, spec.lo);
      EXPECT_LE(d, spec.hi);
    }
  }
  EXPECT_TRUE(saw_infinity);  // 20% infinity mass must show up in 2000 draws
}

TEST(PadHistogram, ConsumesTokensAndRefills) {
  PadHistogram::Spec spec;
  spec.tokens = 50;
  PadHistogram hist(spec);
  const std::uint64_t initial = hist.tokens_left();
  EXPECT_GT(initial, 0u);
  Rng rng(1);
  hist.sample(rng);
  EXPECT_EQ(hist.tokens_left(), initial - 1);
  for (std::uint64_t i = 1; i < initial + 1; ++i) hist.sample(rng);
  // Drained past the initial supply: the histogram must have replenished.
  EXPECT_GE(hist.refills(), 1u);
  EXPECT_GT(hist.tokens_left(), 0u);
}

TEST(PadHistogram, DeterministicGivenRngState) {
  PadHistogram a, b;
  Rng ra(77), rb(77);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.sample(ra), b.sample(rb));
}

// -------------------------------------------------------- RegulatorPolicy

TEST(RegulatorPolicy, PadsEveryDownloadToConstantSize) {
  RegulatorPolicy policy;
  Rng rng(5);
  const wf::Trace out = run_policy(policy, web_like_trace(), rng);
  for (const auto& p : out.packets()) {
    if (p.direction < 0) EXPECT_EQ(p.size, 1514);
  }
}

TEST(RegulatorPolicy, DeliversAllPayloadWithinBudget) {
  RegulatorPolicy::Config cfg;
  cfg.padding_budget = 40;
  RegulatorPolicy policy(cfg);
  Rng rng(5);
  const wf::Trace original = web_like_trace();
  const wf::Trace out = run_policy(policy, original, rng);
  EXPECT_GE(out.total_bytes(), original.total_bytes());
  // Download slot count = real downloads + at most `padding_budget` dummies.
  std::size_t real_down = 0, out_down = 0;
  for (const auto& p : original.packets()) real_down += p.direction < 0;
  for (const auto& p : out.packets()) out_down += p.direction < 0;
  EXPECT_GE(out_down, real_down);
  EXPECT_LE(out_down, real_down + static_cast<std::size_t>(cfg.padding_budget));
}

TEST(RegulatorPolicy, DrawsNothingFromJobRng) {
  RegulatorPolicy policy;
  Rng rng(123), probe(123);
  run_policy(policy, web_like_trace(), rng);
  EXPECT_EQ(rng.uniform(0.0, 1.0), probe.uniform(0.0, 1.0));
}

TEST(RegulatorPolicy, SurgeScheduleDecays) {
  // A single early burst: with no later arrivals the schedule's slot gaps
  // must widen (the decaying rate) until the queue drains.
  wf::Trace t;
  for (int i = 0; i < 60; ++i) t.add(0.001 * i, -1, 1000);
  t.normalize();
  RegulatorPolicy::Config cfg;
  cfg.padding_budget = 0;  // payload slots only, so gaps show the schedule
  RegulatorPolicy policy(cfg);
  Rng rng(1);
  const wf::Trace out = run_policy(policy, t, rng);
  std::vector<double> down_times;
  for (const auto& p : out.packets()) {
    if (p.direction < 0) down_times.push_back(p.time);
  }
  ASSERT_GT(down_times.size(), 10u);
  const double early = down_times[5] - down_times[4];
  const double late = down_times[down_times.size() - 1] - down_times[down_times.size() - 2];
  EXPECT_GT(late, early);  // rate decayed => slots spread out
}

// ----------------------------------------------------------- WtfPadPolicy

TEST(WtfPadPolicy, NeverDelaysRealPackets) {
  WtfPadPolicy policy;
  Rng rng(5);
  const wf::Trace original = web_like_trace();
  const wf::Trace out = run_policy(policy, original, rng);
  // Every original (time, direction, size) triple survives untouched.
  std::multimap<std::pair<double, int>, std::int64_t> remaining;
  for (const auto& p : out.packets()) {
    remaining.insert({{p.time, p.direction}, p.size});
  }
  for (const auto& p : original.packets()) {
    auto range = remaining.equal_range({p.time, p.direction});
    bool found = false;
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == p.size) {
        remaining.erase(it);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "real packet at t=" << p.time << " was altered";
  }
}

TEST(WtfPadPolicy, InjectsDummiesIntoGapsButNotPastEnd) {
  WtfPadPolicy policy;
  Rng rng(5);
  const wf::Trace original = web_like_trace(7, 300);
  const wf::Trace out = run_policy(policy, original, rng);
  EXPECT_GT(out.size(), original.size());  // adaptive padding fired
  const double end = original.packets().back().time;
  for (const auto& p : out.packets()) EXPECT_LE(p.time, end);
}

TEST(WtfPadPolicy, OutputIsPureFunctionOfSeedAndInput) {
  const wf::Trace original = web_like_trace();
  Rng a(9), b(9), c(10);
  WtfPadPolicy p1, p2, p3;
  const wf::Trace out_a = run_policy(p1, original, a);
  EXPECT_EQ(out_a, run_policy(p2, original, b));
  EXPECT_NE(out_a, run_policy(p3, original, c));  // padding follows the fork
}

}  // namespace
}  // namespace stob::defenses
