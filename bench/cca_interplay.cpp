// §5.1 experiment: interplay between Stob's packet-sequence control and
// congestion control.
//
// Two questions:
//  1. Safety — with the CcaGuard wrapper, does an obfuscating policy ever
//     make the flow more aggressive than the CCA's own schedule? (The
//     guard counts clamps; an already-compliant policy shows zero.)
//  2. Cost — how much throughput does each CCA lose under delay/split
//     policies, and does BBR (whose bandwidth model depends on the pacing
//     schedule and resulting ACK timing) suffer more than loss-based CCAs?
//
// Environment knobs: STOB_MEASURE_MS (default 200).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/cca_guard.hpp"
#include "core/policies.hpp"
#include "workload/bulk.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

double measure_gbps(const std::string& cca, core::Policy* policy, Duration measure) {
  workload::BulkTransferOptions opt;
  opt.link_rate = DataRate::gbps(10);
  opt.one_way_delay = Duration::millis(5);  // a WAN-ish path: pacing matters
  opt.conn.cca = cca;
  opt.conn.policy = policy;
  // The BDP is 12.5 MB: the receive window must not be the bottleneck, the
  // bottleneck buffer must accommodate BBR's 2xBDP inflight cap (BBRv1's
  // shallow-buffer loss pathology is out of scope for this experiment),
  // and slow start needs a dozen RTTs before the measurement window opens.
  opt.conn.recv_buffer = Bytes::mebi(64);
  opt.queue_capacity = Bytes::mebi(24);
  opt.warmup = Duration::millis(400);
  opt.measure = measure;
  return workload::run_bulk_transfer(opt).goodput.gbps_f();
}

}  // namespace

int main() {
  const Duration measure = Duration::millis(env_int("STOB_MEASURE_MS", 200));

  std::printf("=== CCA interplay (Section 5.1): policies vs congestion control ===\n");
  std::printf("10 Gb/s link, 10 ms RTT, fq pacing; goodput over %lld ms after warmup\n\n",
              static_cast<long long>(measure.ms()));

  std::printf("%-8s %-12s %-12s %-12s %-12s\n", "CCA", "baseline", "delay", "split",
              "delay+split");
  for (const std::string cca : {"reno", "cubic", "bbr"}) {
    core::DelayPolicy delay;
    core::SplitPolicy split;
    core::DelayPolicy delay2;
    core::SplitPolicy split2;
    core::CompositePolicy both({&split2, &delay2});
    const double base = measure_gbps(cca, nullptr, measure);
    const double with_delay = measure_gbps(cca, &delay, measure);
    const double with_split = measure_gbps(cca, &split, measure);
    const double with_both = measure_gbps(cca, &both, measure);
    std::printf("%-8s %-12.2f %-12.2f %-12.2f %-12.2f\n", cca.c_str(), base, with_delay,
                with_split, with_both);
    std::fflush(stdout);
  }

  // Safety check: guard a compliant and a rogue policy; report clamps.
  std::printf("\n--- CcaGuard safety: clamp counts over a 10 Gb/s BBR transfer ---\n");
  {
    core::DelayPolicy compliant;
    core::CcaGuard guard(compliant);
    (void)measure_gbps("bbr", &guard, measure);
    std::printf("guard(delay):  segment=%llu mss=%llu departure=%llu  (expect all zero)\n",
                static_cast<unsigned long long>(guard.segment_clamps()),
                static_cast<unsigned long long>(guard.mss_clamps()),
                static_cast<unsigned long long>(guard.departure_clamps()));
  }
  {
    /// A policy that tries to send earlier than the CCA schedule.
    class Rusher final : public core::Policy {
     public:
      core::SegmentDecision on_segment(const core::SegmentContext& ctx) override {
        core::SegmentDecision d = core::SegmentDecision::passthrough(ctx);
        d.departure = ctx.cca_departure - Duration::micros(50);
        return d;
      }
      std::string name() const override { return "rusher"; }
    } rusher;
    core::CcaGuard guard(rusher);
    (void)measure_gbps("bbr", &guard, measure);
    std::printf("guard(rusher): segment=%llu mss=%llu departure=%llu  (departures clamped)\n",
                static_cast<unsigned long long>(guard.segment_clamps()),
                static_cast<unsigned long long>(guard.mss_clamps()),
                static_cast<unsigned long long>(guard.departure_clamps()));
  }

  std::printf("\nReading: loss-based CCAs (reno/cubic) tolerate departure perturbation;\n");
  std::printf("BBR's bandwidth model sees the perturbed ACK clock, so its cost is larger —\n");
  std::printf("the co-design problem the paper raises in Section 5.1.\n");
  return 0;
}
