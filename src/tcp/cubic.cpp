#include "tcp/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace stob::tcp {

namespace {
constexpr double kC = 0.4;         // CUBIC scaling constant (segments/sec^3)
constexpr double kBeta = 0.7;      // multiplicative decrease factor
constexpr std::int64_t kMaxWindow = 1'073'741'824;
}  // namespace

CubicCc::CubicCc(Bytes mss, Bytes initial_window)
    : mss_(mss.count()),
      cwnd_(initial_window.count() > 0 ? initial_window.count() : 10 * mss_),
      ssthresh_(kMaxWindow) {}

double CubicCc::w_cubic(double t_sec) const {
  // RFC 9438 computes in segments; convert around mss.
  const double seg = static_cast<double>(mss_);
  const double d = t_sec - k_;
  return (kC * d * d * d + w_max_ / seg) * seg;
}

void CubicCc::on_ack(const AckEvent& ev) {
  srtt_ = ev.srtt;
  if (ev.rtt_sample.ns() > 0 && ev.rtt_sample < min_rtt_) min_rtt_ = ev.rtt_sample;
  const std::int64_t acked = ev.newly_acked.count();
  if (acked <= 0) return;

  if (in_slow_start()) {
    // HyStart-style delay-based exit (see reno.cpp).
    if (ev.rtt_sample.ns() > 0 && min_rtt_.ns() > 0 &&
        ev.rtt_sample > min_rtt_ + std::max(Duration::millis(4), min_rtt_ / 8)) {
      ssthresh_ = cwnd_;
      return;
    }
    cwnd_ = std::min(cwnd_ + acked, kMaxWindow);
    return;
  }

  if (!epoch_valid_) {
    epoch_valid_ = true;
    epoch_start_ = ev.now;
    if (w_max_ < static_cast<double>(cwnd_)) w_max_ = static_cast<double>(cwnd_);
    const double seg = static_cast<double>(mss_);
    const double wdiff = std::max(0.0, (w_max_ - static_cast<double>(cwnd_)) / seg);
    k_ = std::cbrt(wdiff / kC);
    w_est_ = static_cast<double>(cwnd_);
  }

  const double t = (ev.now - epoch_start_).sec() + srtt_.sec();
  const double target = w_cubic(t);

  // Reno-friendly region: grow w_est like Reno and use it if larger.
  const double seg = static_cast<double>(mss_);
  w_est_ += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * static_cast<double>(acked) / w_est_ * seg;
  double next = std::max(target, w_est_);

  // Standard CUBIC growth clamp: at most 1.5x per RTT worth of acks.
  next = std::min(next, static_cast<double>(cwnd_) + static_cast<double>(acked) * 1.5);
  if (next > static_cast<double>(cwnd_)) {
    cwnd_ = std::min(static_cast<std::int64_t>(next), kMaxWindow);
  }
}

void CubicCc::on_loss(TimePoint /*now*/) {
  // Fast convergence.
  if (static_cast<double>(cwnd_) < w_max_) {
    w_max_ = static_cast<double>(cwnd_) * (1.0 + kBeta) / 2.0;
  } else {
    w_max_ = static_cast<double>(cwnd_);
  }
  cwnd_ = std::max(static_cast<std::int64_t>(static_cast<double>(cwnd_) * kBeta), 2 * mss_);
  ssthresh_ = cwnd_;
  epoch_valid_ = false;
}

void CubicCc::on_rto(TimePoint /*now*/) {
  w_max_ = static_cast<double>(cwnd_);
  ssthresh_ = std::max(static_cast<std::int64_t>(static_cast<double>(cwnd_) * kBeta), 2 * mss_);
  cwnd_ = mss_;
  epoch_valid_ = false;
}

DataRate CubicCc::pacing_rate() const {
  if (srtt_.ns() <= 0) return DataRate(0);
  const double factor = in_slow_start() ? 2.0 : 1.2;
  const double bps = static_cast<double>(cwnd_) * 8.0 / srtt_.sec() * factor;
  return DataRate(static_cast<std::int64_t>(bps));
}

}  // namespace stob::tcp
