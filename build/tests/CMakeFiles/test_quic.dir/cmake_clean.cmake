file(REMOVE_RECURSE
  "CMakeFiles/test_quic.dir/test_quic.cpp.o"
  "CMakeFiles/test_quic.dir/test_quic.cpp.o.d"
  "test_quic"
  "test_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
