// Parallel batch experiment engine.
//
// Every paper artifact in this repo is a loop over a (website, seed,
// defense, CCA) grid of independent simulations; evaluation wall-clock, not
// the simulator, bounds how far the evaluation can scale. This module turns
// that loop into data-parallel jobs with three hard guarantees:
//
//  1. *Job-keyed determinism.* Each job's Rng is seeded from (base_seed,
//     job index) — never from worker id or scheduling order — so job i
//     produces the same bytes whether it runs on thread 0 of 1 or thread 7
//     of 8.
//  2. *Isolated state.* Each job builds its own sim::Simulator (inside
//     run_page_load), runs inside a net::PacketIdScope, and installs its
//     own thread-local obs sinks (TraceRecorder / MetricsRegistry), so jobs
//     share no mutable state.
//  3. *Ordered reduction.* Results are merged in job order, so the
//     collected dataset / metrics / trace exports are byte-identical
//     regardless of thread count (assertable via RunOptions::
//     check_determinism).
//
// This is the same shape as a data-parallel training/eval harness: sharded
// jobs, per-worker state, deterministic seeding, ordered reduction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "exp/proc_runner.hpp"
#include "exp/result_cache.hpp"
#include "fault/fault.hpp"
#include "obs/trace_recorder.hpp"
#include "util/units.hpp"
#include "wf/trace.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

namespace stob::exp {

/// Seed for job `job_index` of a grid rooted at `base_seed`. Pure function
/// of its arguments (splitmix64 mixing) so any job can be re-run in
/// isolation, and statistically independent across indices.
std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t job_index);

/// One point on the defense axis. A null defense means "undefended".
struct DefenseAxis {
  std::string name = "none";
  const defenses::TraceDefense* defense = nullptr;
};

/// Fully resolved coordinates of one job.
struct JobSpec {
  std::size_t index = 0;
  std::size_t site = 0;     ///< index into ExperimentGrid::sites
  std::size_t sample = 0;   ///< repetition number within the site
  std::size_t defense = 0;  ///< index into defenses (0 when axis empty)
  std::size_t cca = 0;      ///< index into ccas (0 when axis empty)
  std::size_t fault = 0;    ///< index into faults (0 when axis empty)
  std::uint64_t seed = 0;   ///< job_seed(base_seed, index)
};

/// The experiment grid: the cartesian product faults x sites x samples x
/// defenses x ccas, enumerated in that axis order (cca fastest, fault
/// slowest). Empty defense / cca / fault axes contribute one implicit
/// point: undefended / the PageLoadOptions' configured CCA / the
/// PageLoadOptions' configured path_faults.
class ExperimentGrid {
 public:
  std::vector<workload::SiteProfile> sites;
  std::size_t samples = 1;
  std::vector<DefenseAxis> defenses;
  std::vector<std::string> ccas;
  std::vector<fault::PathProfile> faults;
  std::uint64_t base_seed = 0;

  std::size_t defense_axis() const { return defenses.empty() ? 1 : defenses.size(); }
  std::size_t cca_axis() const { return ccas.empty() ? 1 : ccas.size(); }
  std::size_t fault_axis() const { return faults.empty() ? 1 : faults.size(); }
  std::size_t job_count() const {
    return sites.size() * samples * defense_axis() * cca_axis() * fault_axis();
  }

  /// Decompose a dense index into grid coordinates (with its seed).
  JobSpec job(std::size_t index) const;
  std::vector<JobSpec> jobs() const;
};

/// Everything one job produced. `metrics` / `events` are filled only when
/// the corresponding RunOptions sink is enabled.
struct JobResult {
  JobSpec spec;
  wf::Trace trace;
  Duration page_load_time;
  std::int64_t response_bytes = 0;
  std::size_t objects_fetched = 0;
  bool completed = false;
  std::uint64_t sim_events = 0;           ///< simulator events this job executed
  std::string metrics;                    ///< MetricsRegistry::snapshot()
  std::vector<obs::PacketEvent> events;   ///< flight-recorder capture
  // Filled when RunOptions::check_invariants is set.
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
  std::string first_violation;            ///< first checker report, if any
};

struct RunOptions {
  workload::PageLoadOptions page;
  /// Worker count; 0 = default_jobs() (hardware concurrency).
  std::size_t jobs = 0;
  /// Install a per-job MetricsRegistry and keep its snapshot.
  bool collect_metrics = false;
  /// When > 0, install a per-job TraceRecorder with this capacity and keep
  /// the captured events.
  std::size_t trace_capacity = 0;
  /// Install a per-job fault::StackInvariantChecker and record its verdict
  /// in JobResult (violations are reported, never thrown, so one bad job
  /// cannot mask the rest of the sweep).
  bool check_invariants = false;
  /// Determinism mode: after the parallel run, re-run the whole grid on one
  /// thread and throw std::runtime_error unless every job's output is
  /// byte-identical.
  bool check_determinism = false;
  /// Out-of-process execution (crash isolation; see exp/proc_runner.hpp).
  /// proc.workers > 0 routes run_grid through the process supervisor;
  /// proc.worker_job set means *this process is a worker*: run that one
  /// cell, write the result frame to proc.worker_fd, and _exit.
  ProcOptions proc;
  /// When non-null and proc mode ran, filled with the supervisor's report.
  ProcReport* proc_report = nullptr;
  /// Content-addressed result cache (not owned; see exp/result_cache.hpp).
  /// Non-null routes every cell through probe-or-run-and-store, in process
  /// and in proc mode alike; results stay byte-identical to a cache-free
  /// run. The check_determinism reference run never consults the cache, so
  /// determinism mode also differentially verifies cached payloads.
  ResultCache* cache = nullptr;
};

/// Run a single job (always safe to call from any thread).
JobResult run_job(const ExperimentGrid& grid, const JobSpec& spec, const RunOptions& opts);

/// Run the whole grid on a worker pool; results are in job order.
std::vector<JobResult> run_grid(const ExperimentGrid& grid, const RunOptions& opts = {});

/// True when two results (typically the same job from different runs) are
/// byte-equivalent: trace, counters, metrics snapshot and captured events.
bool results_identical(const JobResult& a, const JobResult& b);

/// Content-addressed journal key for cell `index` of `grid`: SHA-256 (via
/// obs::RunManifest::cell_spec_digest) over the cell's full coordinates —
/// seed, site name, sample, defense name, CCA, fault-profile name — plus
/// every RunOptions field that shapes the result payload (metrics /
/// flight-recorder / invariant sinks) and the worker-payload codec version.
/// Stable across --jobs, worker mode and field-declaration order; changes
/// whenever anything that could change the cell's bytes changes, so a
/// resumed journal can never replay a stale or mismatched payload.
std::string cell_digest(const ExperimentGrid& grid, std::size_t index, const RunOptions& opts);

/// Canonical dump of every RunOptions::page field that shapes a cell's
/// bytes but is not a grid coordinate (connection configs, jitter params,
/// TLS framing, fault profile, timeout) — the cache-key salt that keeps an
/// entry from outliving a config change cell_digest cannot see. The
/// STOB_CACHE_SALT environment variable is folded in verbatim as the escape
/// hatch for invalidating after a *code* change (the cache cannot hash the
/// binary: sanitizer and debug builds of one rev must share entries).
std::string run_config_salt(const RunOptions& opts);

/// Labeled dataset from ordered results (label = site index), the engine's
/// standard reduction for WF evaluation.
wf::Dataset to_dataset(const std::vector<JobResult>& results);

// ------------------------------------------------------------------- CLI

/// Flags shared by the bench harnesses: --jobs N (or STOB_JOBS; default
/// hardware concurrency), --check-determinism, and the observability
/// outputs --manifest PATH (run_manifest.json) / --trace-events PATH
/// (Chrome trace_event JSON). Either output flag implies profiling: the
/// driver installs an obs::Profiler for the run.
///
/// Result-cache flags (see exp/result_cache.hpp): --cache DIR (or
/// STOB_CACHE; empty = off), --no-cache (force off, overriding the
/// environment), --cache-stats (stderr stats line after the run),
/// --cache-gc BYTES (evict down to BYTES after the run; accepts K/M/G
/// suffixes).
///
/// Out-of-process runner flags (see exp/proc_runner.hpp): --proc-workers N
/// (0 = in-process, the default), --job-timeout SECONDS, --retries N,
/// --journal PATH, --resume, --inject-worker-fault crash|hang|exit[:rate].
/// The supervisor re-execs the driver binary with --worker-job N
/// --worker-fd FD [--worker-fault KIND] [--worker-prof-domain D] appended;
/// those worker flags are parsed here too but are never user-facing.
struct Cli {
  std::size_t jobs = 0;
  bool check_determinism = false;
  std::string manifest_path;      ///< empty = no manifest
  std::string trace_events_path;  ///< empty = no trace_event export

  // Content-addressed result cache.
  std::string cache_dir;             ///< empty = caching off
  bool cache_stats = false;          ///< report hit/miss stats on stderr
  bool cache_gc = false;             ///< run eviction after the sweep
  std::uint64_t cache_gc_limit = 0;  ///< --cache-gc byte budget

  // Out-of-process runner (supervisor side).
  std::size_t proc_workers = 0;        ///< 0 = run the grid in-process
  double job_timeout_s = 120.0;        ///< per-attempt watchdog, seconds
  std::size_t retries = 2;             ///< attempts = retries + 1
  std::string journal_path;            ///< results journal (empty = none)
  bool resume = false;                 ///< replay journaled cells
  std::string inject_worker_fault;     ///< self-fault spec (tests/CI)
  /// Verbatim copy of argv: the supervisor's worker re-exec base.
  std::vector<std::string> argv;

  // Out-of-process runner (worker side; set only in spawned workers).
  bool worker_mode = false;            ///< --worker-job was given
  std::size_t worker_job = 0;          ///< cell index to run, then _exit
  int worker_fd = 3;                   ///< result-frame descriptor
  std::string worker_fault;            ///< fault to execute before the job
  bool worker_profile = false;         ///< --worker-prof-domain was given
  std::uint64_t worker_prof_domain = 0;

  /// Values of harness-specific flags registered through FlagSpec. Boolean
  /// flags map to "1"; value flags map to the (last) supplied value.
  std::map<std::string, std::string> extra;

  bool profile() const { return !manifest_path.empty() || !trace_events_path.empty(); }
  bool has(const std::string& flag) const { return extra.count(flag) != 0; }
  std::string get(const std::string& flag, const std::string& fallback = "") const {
    auto it = extra.find(flag);
    return it == extra.end() ? fallback : it->second;
  }
};

/// A harness-specific flag parse_cli should accept in addition to the
/// shared set, e.g. {"--pareto", true} or {"--smoke", false}.
struct FlagSpec {
  std::string name;         ///< including leading dashes
  bool takes_value = false;
};

/// Parse the shared flag set plus any `extra_flags`. Contract (pinned by
/// tests/test_exp.cpp):
///  * an unrecognised flag is a hard error (std::invalid_argument) — typos
///    must not silently degrade a benchmark run;
///  * a value flag with no value is a hard error;
///  * non-numeric --jobs is a hard error;
///  * a flag given twice warns and the last occurrence wins.
/// Both "--flag value" and "--flag=value" spellings are accepted.
Cli parse_cli(int argc, char** argv, const std::vector<FlagSpec>& extra_flags = {});

/// Map the CLI's out-of-process flags onto supervisor options. Sets
/// worker_argv to the CLI's verbatim argv (the driver re-execs itself) and
/// forwards the worker-side fields, so a driver only needs
/// `run.proc = proc_options_from_cli(cli)` to support every runner flag.
ProcOptions proc_options_from_cli(const Cli& cli);

/// Driver-side lifetime wrapper for the result cache: opens the directory
/// named by the CLI, hands run_grid a ResultCache*, and handles the
/// --cache-stats / --cache-gc epilogue. A driver needs three lines:
///
///   exp::CacheSession cache = exp::CacheSession::from_cli(cli);
///   run.cache = cache.cache();
///   ...run... ; cache.finish("my_tool");
struct CacheSession {
  /// Disabled session (null cache) when the CLI has no cache directory or
  /// this process is a proc-runner worker — workers publish frames and the
  /// supervisor commits them, so a worker must never open the cache.
  static CacheSession from_cli(const Cli& cli);

  ResultCache* cache() const { return cache_.get(); }
  /// Stats line and gc pass per the CLI flags, on stderr only (stdout is
  /// under the byte-identity contract). Safe to call on a disabled session.
  void finish(const char* tool) const;

  std::shared_ptr<ResultCache> cache_;
  bool stats_ = false;
  bool gc_ = false;
  std::uint64_t gc_limit_ = 0;
};

}  // namespace stob::exp
