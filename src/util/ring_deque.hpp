// Pool-backed growable ring buffer (FIFO).
//
// Packet queues (pipe serialiser, qdisc backlogs) are strict FIFOs, but
// std::deque is a poor fit for them: with today's ~288-byte Packet a
// libstdc++ deque block holds a single element, so every push is a heap
// allocation and every pop a free — one malloc/free pair per packet
// through every queue. RingDeque stores elements in one power-of-two
// circular array served by the thread-local buffer pool, so steady-state
// queue traffic costs an index increment and a move.
//
// Only the FIFO surface the queues need: push_back/emplace_back, front,
// pop_front, size/empty, clear. Move-only (the queues own their packets).
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

#include "util/buffer_pool.hpp"

namespace stob::util {

template <typename T>
class RingDeque {
 public:
  RingDeque() noexcept = default;

  RingDeque(RingDeque&& other) noexcept
      : buf_(other.buf_), cap_(other.cap_), head_(other.head_), size_(other.size_) {
    other.buf_ = nullptr;
    other.cap_ = other.head_ = other.size_ = 0;
  }

  RingDeque& operator=(RingDeque&& other) noexcept {
    if (this != &other) {
      destroy();
      buf_ = other.buf_;
      cap_ = other.cap_;
      head_ = other.head_;
      size_ = other.size_;
      other.buf_ = nullptr;
      other.cap_ = other.head_ = other.size_ = 0;
    }
    return *this;
  }

  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;

  ~RingDeque() { destroy(); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void push_back(T&& v) { emplace_back(std::move(v)); }
  void push_back(const T& v) { emplace_back(v); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* slot = buf_ + ((head_ + size_) & (cap_ - 1));
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_front() {
    assert(size_ > 0);
    buf_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  void clear() noexcept {
    while (size_ > 0) pop_front();
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    T* fresh = static_cast<T*>(mem::pool_alloc(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      T& src = buf_[(head_ + i) & (cap_ - 1)];
      ::new (static_cast<void*>(fresh + i)) T(std::move(src));
      src.~T();
    }
    if (buf_ != nullptr) mem::pool_free(buf_, cap_ * sizeof(T));
    buf_ = fresh;
    cap_ = new_cap;
    head_ = 0;
  }

  void destroy() noexcept {
    clear();
    if (buf_ != nullptr) {
      mem::pool_free(buf_, cap_ * sizeof(T));
      buf_ = nullptr;
      cap_ = 0;
    }
  }

  T* buf_ = nullptr;
  std::size_t cap_ = 0;   // always a power of two once allocated
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace stob::util
