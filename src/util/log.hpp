// Lightweight leveled logging to stderr. Default level is Warn so that tests
// and benchmarks stay quiet; raise to Debug/Trace when debugging the stack.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace stob::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
Level level();
void set_level(Level lvl);

/// Emit one line at `lvl` tagged with `component`.
void write(Level lvl, std::string_view component, std::string_view message);

namespace detail {

class LineBuilder {
 public:
  LineBuilder(Level lvl, std::string_view component) : lvl_(lvl), component_(component) {}
  ~LineBuilder() { write(lvl_, component_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace stob::log

// Streaming macros; the stream expression is not evaluated when filtered out.
#define STOB_LOG(lvl, component)                            \
  if (::stob::log::level() > (lvl)) {                       \
  } else                                                    \
    ::stob::log::detail::LineBuilder((lvl), (component))

#define STOB_TRACE(component) STOB_LOG(::stob::log::Level::Trace, component)
#define STOB_DEBUG(component) STOB_LOG(::stob::log::Level::Debug, component)
#define STOB_INFO(component) STOB_LOG(::stob::log::Level::Info, component)
#define STOB_WARN(component) STOB_LOG(::stob::log::Level::Warn, component)
#define STOB_ERROR(component) STOB_LOG(::stob::log::Level::Error, component)
