#include "wf/leaf_knn.hpp"

#include <algorithm>

#include "wf/simd_kernels.hpp"

namespace stob::wf {

namespace {
constexpr std::size_t kTrainBlock = 64;  // train fingerprints kept hot per tile
constexpr std::size_t kQueryBlock = 8;   // queries sharing one train tile
}

void leaf_match_counts(std::span<const std::uint32_t> train_leaves, std::size_t n_train,
                       std::span<const std::uint32_t> query, std::span<int> counts) {
  const std::size_t trees = query.size();
  kernels::leaf_match_block(train_leaves.data(), n_train, trees, query.data(), counts.data());
}

void leaf_match_matrix(std::span<const std::uint32_t> train_leaves, std::size_t n_train,
                       std::span<const std::uint32_t> query_leaves, std::size_t n_query,
                       std::size_t trees, std::span<int> counts) {
  for (std::size_t q_lo = 0; q_lo < n_query; q_lo += kQueryBlock) {
    const std::size_t q_hi = std::min(n_query, q_lo + kQueryBlock);
    for (std::size_t i_lo = 0; i_lo < n_train; i_lo += kTrainBlock) {
      const std::size_t i_hi = std::min(n_train, i_lo + kTrainBlock);
      for (std::size_t q = q_lo; q < q_hi; ++q) {
        const std::uint32_t* qrow = query_leaves.data() + q * trees;
        int* out = counts.data() + q * n_train;
        kernels::leaf_match_block(train_leaves.data() + i_lo * trees, i_hi - i_lo, trees, qrow,
                                  out + i_lo);
      }
    }
  }
}

}  // namespace stob::wf
