// Named metrics registry: counters, gauges and streaming distributions.
//
// Complements the flight recorder (trace_recorder.hpp) with aggregate
// signals — retransmits, cwnd samples, qdisc depth/drops, TSO split counts,
// pacing-release delays, simulator internals — that are cheap enough to keep
// for a whole run. Distributions reuse stats::Welford for O(1) streaming
// moments plus a bounded sample reservoir from which a core::Histogram can
// be fitted when a full shape is wanted.
//
// Like tracing, metrics are opt-in via a thread-local slot: with no
// registry installed every hook is one (TLS) pointer load and branch — the
// single-threaded fast path is identical to the former process-global slot.
// Thread-locality means each worker thread of the parallel experiment
// engine (src/exp/) installs its own registry with no hook-site locking.
// Snapshots are emitted in sorted name order, so two identical
// deterministic sim runs produce byte-identical snapshots.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/histogram.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace stob::sim {
class Simulator;
}

namespace stob::obs {

class MetricsRegistry {
 public:
  /// Streaming view of an observed value series.
  struct Distribution {
    stats::Welford welford;
    double min = 0.0;
    double max = 0.0;
    /// First kReservoirCap samples, kept so a shape (core::Histogram) can be
    /// reconstructed without unbounded memory.
    std::vector<double> reservoir;

    std::size_t count() const { return welford.count(); }
    double mean() const { return welford.mean(); }
    double stddev() const { return welford.stddev(); }

    /// Fit a core::Histogram over the retained samples ([min, max] range).
    core::Histogram to_histogram(std::size_t bins = 32) const;
  };

  static constexpr std::size_t kReservoirCap = 4096;

  /// Increment the named counter.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Set the named gauge to `value` (last write wins).
  void set(std::string_view name, double value);

  /// Feed one sample into the named distribution.
  void observe(std::string_view name, double value);

  std::uint64_t counter(std::string_view name) const;  ///< 0 when absent
  double gauge(std::string_view name) const;           ///< 0 when absent
  const Distribution* distribution(std::string_view name) const;  ///< nullptr when absent

  /// Fold another registry in: counters add, gauges last-write (the other
  /// registry's value wins), distributions Welford-merge with min/max and
  /// the sample reservoir appended up to kReservoirCap. Merging per-worker
  /// (really per-job) registries in job-index order yields one run-level
  /// snapshot that is deterministic for any worker count — the experiment
  /// engine's profiled pool does exactly that.
  void merge(const MetricsRegistry& other);

  bool empty() const { return counters_.empty() && gauges_.empty() && dists_.empty(); }
  void clear();

  /// Deterministic text rendering, one metric per line, sorted by name.
  std::string snapshot() const;

  /// CSV rows (kind,name,count,value,mean,stddev,min,max), sorted by name.
  std::vector<csv::Row> to_csv_rows() const;
  void write_csv(const std::filesystem::path& path) const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Distribution, std::less<>> dists_;
};

/// Copy a simulator's internals (events executed / pending / cancelled,
/// event-heap high-water mark) into gauges — call at the end of a run, or
/// periodically from a scheduled probe. All values are deterministic for a
/// deterministic simulation, so per-job snapshots stay --jobs-invariant.
void scrape_simulator(const sim::Simulator& sim, MetricsRegistry& m);

/// Copy the calling thread's util/buffer_pool counters (hits / misses /
/// spills / cached / outstanding) into gauges. Freelist warmth depends on
/// what ran earlier on the thread, so these are *not* deterministic across
/// worker counts — scrape into a harness registry (Profiler::harness()),
/// never into a per-job registry that determinism checks compare.
void scrape_pool(MetricsRegistry& m);

// ---------------------------------------------------------------- install

namespace detail {
extern thread_local MetricsRegistry* g_metrics;  // nullptr = metrics disabled
}  // namespace detail

/// Registry installed on the calling thread, or nullptr.
inline MetricsRegistry* metrics() noexcept { return detail::g_metrics; }

/// Install (or, with nullptr, remove) the calling thread's registry.
void install_metrics(MetricsRegistry* m) noexcept;

class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry& m) : prev_(metrics()) { install_metrics(&m); }
  ~ScopedMetrics() { install_metrics(prev_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

// One-line hook helpers: no-ops (one load + branch) when disabled.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (MetricsRegistry* m = detail::g_metrics) m->add(name, delta);
}
inline void sample(std::string_view name, double value) {
  if (MetricsRegistry* m = detail::g_metrics) m->observe(name, value);
}
inline void set_gauge(std::string_view name, double value) {
  if (MetricsRegistry* m = detail::g_metrics) m->set(name, value);
}

}  // namespace stob::obs
