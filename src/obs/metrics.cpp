#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/simulator.hpp"
#include "util/buffer_pool.hpp"

namespace stob::obs {

namespace detail {
thread_local MetricsRegistry* g_metrics = nullptr;
}  // namespace detail

void install_metrics(MetricsRegistry* m) noexcept { detail::g_metrics = m; }

namespace {

/// Shortest round-trippable rendering; deterministic for identical doubles.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

core::Histogram MetricsRegistry::Distribution::to_histogram(std::size_t bins) const {
  const double lo = min;
  // A degenerate (constant) series still needs a non-empty bin range.
  const double hi = max > min ? max : min + 1.0;
  return core::Histogram::fit(reservoir, lo, hi, bins == 0 ? 1 : bins);
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = dists_.find(name);
  if (it == dists_.end()) it = dists_.emplace(std::string(name), Distribution{}).first;
  Distribution& d = it->second;
  if (d.welford.count() == 0) {
    d.min = d.max = value;
  } else {
    d.min = std::min(d.min, value);
    d.max = std::max(d.max, value);
  }
  d.welford.add(value);
  if (d.reservoir.size() < kReservoirCap) d.reservoir.push_back(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const MetricsRegistry::Distribution* MetricsRegistry::distribution(std::string_view name) const {
  auto it = dists_.find(name);
  return it == dists_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) set(name, v);
  for (const auto& [name, od] : other.dists_) {
    auto it = dists_.find(name);
    if (it == dists_.end()) {
      dists_.emplace(name, od);
      continue;
    }
    Distribution& d = it->second;
    if (od.welford.count() > 0) {
      d.min = d.welford.count() == 0 ? od.min : std::min(d.min, od.min);
      d.max = d.welford.count() == 0 ? od.max : std::max(d.max, od.max);
    }
    d.welford.merge(od.welford);
    for (double v : od.reservoir) {
      if (d.reservoir.size() >= kReservoirCap) break;
      d.reservoir.push_back(v);
    }
  }
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  dists_.clear();
}

std::string MetricsRegistry::snapshot() const {
  std::string out;
  for (const auto& [name, v] : counters_) {
    out += "counter " + name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges_) {
    out += "gauge " + name + " " + format_double(v) + "\n";
  }
  for (const auto& [name, d] : dists_) {
    out += "dist " + name + " count=" + std::to_string(d.count()) +
           " mean=" + format_double(d.mean()) + " stddev=" + format_double(d.stddev()) +
           " min=" + format_double(d.min) + " max=" + format_double(d.max) + "\n";
  }
  return out;
}

std::vector<csv::Row> MetricsRegistry::to_csv_rows() const {
  std::vector<csv::Row> rows;
  rows.push_back({"kind", "name", "count", "value", "mean", "stddev", "min", "max"});
  for (const auto& [name, v] : counters_) {
    rows.push_back({"counter", name, std::to_string(v), "", "", "", "", ""});
  }
  for (const auto& [name, v] : gauges_) {
    rows.push_back({"gauge", name, "", format_double(v), "", "", "", ""});
  }
  for (const auto& [name, d] : dists_) {
    rows.push_back({"dist", name, std::to_string(d.count()), "", format_double(d.mean()),
                    format_double(d.stddev()), format_double(d.min), format_double(d.max)});
  }
  return rows;
}

void MetricsRegistry::write_csv(const std::filesystem::path& path) const {
  csv::write_file(path, to_csv_rows());
}

void scrape_simulator(const sim::Simulator& sim, MetricsRegistry& m) {
  m.set("sim.events_executed", static_cast<double>(sim.executed()));
  m.set("sim.events_pending", static_cast<double>(sim.pending()));
  m.set("sim.events_cancelled", static_cast<double>(sim.cancelled()));
  m.set("sim.heap_high_water", static_cast<double>(sim.heap_high_water()));
}

void scrape_pool(MetricsRegistry& m) {
  const mem::PoolStats s = mem::pool_stats();
  m.set("mem.pool_hits", static_cast<double>(s.hits));
  m.set("mem.pool_misses", static_cast<double>(s.misses));
  m.set("mem.pool_spills", static_cast<double>(s.spills));
  m.set("mem.pool_cached", static_cast<double>(s.cached));
  m.set("mem.pool_outstanding", static_cast<double>(s.outstanding));
}

}  // namespace stob::obs
