// Dispatched hot-loop kernels of the WF attack engine: blocked forest
// descent, leaf-agreement counting, and the vectorizable pieces of k-FP
// feature extraction.
//
// Every kernel has a `_scalar` variant (the reference path, always
// compiled, byte-for-byte the pre-SIMD engine) and an undecorated entry
// point that dispatches on simd::active_level(). All SIMD variants are
// *exact*: they vectorize only comparisons, integer-valued accumulation
// (counts and 0/1 sums, exact in any order below 2^53) and independent
// subtractions, so scalar and dispatched results are bit-identical — the
// parity suite asserts equality, never closeness. Float reductions whose
// rounding depends on accumulation order (feature means/stddevs) stay
// scalar in the original order; see the kernel table in DESIGN.md §17.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wf/forest_layout.hpp"

namespace stob::wf::kernels {

// ------------------------------------------------------- forest descent
//
// Walk one tree (rooted at nodes[root]) for m samples stored row-major at
// x + r*stride, leaving the absolute leaf index of sample r in leaves[r].
// The scalar variant keeps 4 lanes in flight so dependent node loads
// overlap; the AVX2 variant runs 8 lanes with gathered node fields and
// blend-selected children. NaN features descend to kid[1] in both (the
// scalar `!(x <= thr)` and the ordered _CMP_LE_OQ compare agree).

void descend_block_scalar(const FlatNode* nodes, std::uint32_t root, const double* x,
                          std::size_t stride, std::size_t m, std::uint32_t* leaves);

void descend_block(const FlatNode* nodes, std::uint32_t root, const double* x,
                   std::size_t stride, std::size_t m, std::uint32_t* leaves);

// ------------------------------------------------- leaf-agreement counts
//
// counts[i] = #positions where query and train row i hold the same leaf id
// (k-FP's tree-agreement similarity). The AVX2 variant compares 8 uint32 a
// cycle and accumulates match masks (cmpeq yields -1 per match, so
// subtracting the mask counts); NEON accumulates vceqq_u32 masks the same
// way. Integer counting: exact at every level.

void leaf_match_block_scalar(const std::uint32_t* train, std::size_t n_train,
                             std::size_t trees, const std::uint32_t* query, int* counts);

void leaf_match_block(const std::uint32_t* train, std::size_t n_train, std::size_t trees,
                      const std::uint32_t* query, int* counts);

// ------------------------------------------------- feature-scan kernels
//
// The exact-by-construction pieces of k-FP extraction (features.cpp).

/// out[i] = xs[i+1] - xs[i] for i in [0, n-1); no-op when n < 2.
/// Independent subtractions — identical to the scalar gap loop.
void pair_diffs_scalar(const double* xs, std::size_t n, double* out);
void pair_diffs(const double* xs, std::size_t n, double* out);

/// Number of entries strictly greater than thr (burst-length thresholds).
std::size_t count_gt_scalar(const double* xs, std::size_t n, double thr);
std::size_t count_gt(const double* xs, std::size_t n, double thr);

/// Sum of integer-valued doubles (0/1 direction indicators, packet counts
/// per chunk). Exact in any accumulation order while the running sum stays
/// below 2^53, which a packet count always does.
double sum_ints_scalar(const double* xs, std::size_t n);
double sum_ints(const double* xs, std::size_t n);

/// Histogram of xs into (-inf, lo), [lo, hi), [hi, inf) — the incoming
/// packet-size bands. Counts returned as doubles (they feed features).
void band_counts_scalar(const double* xs, std::size_t n, double lo, double hi,
                        double* below, double* mid, double* above);
void band_counts(const double* xs, std::size_t n, double lo, double hi, double* below,
                 double* mid, double* above);

}  // namespace stob::wf::kernels
