#include "wf/random_forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace stob::wf {

void RandomForest::fit(const TrainView& view) {
  if (view.rows.empty()) throw std::invalid_argument("RandomForest::fit: empty data");
  num_classes_ = view.num_classes;
  trees_.assign(cfg_.num_trees, DecisionTree(cfg_.tree));
  Rng rng(cfg_.seed);
  const auto n = view.rows.size();
  const auto sample_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg_.bootstrap_fraction * static_cast<double>(n)));
  std::vector<std::size_t> indices(sample_n);
  for (DecisionTree& tree : trees_) {
    Rng tree_rng = rng.fork();
    for (std::size_t& i : indices) {
      i = static_cast<std::size_t>(tree_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    tree.fit(view, indices, tree_rng);
  }
}

int RandomForest::predict(std::span<const double> x) const {
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (const DecisionTree& tree : trees_) votes[static_cast<std::size_t>(tree.predict(x))] += 1;
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> RandomForest::predict_proba(std::span<const double> x) const {
  std::vector<double> acc(static_cast<std::size_t>(num_classes_), 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> p = tree.predict_proba(x);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

std::vector<std::uint32_t> RandomForest::leaf_vector(std::span<const double> x) const {
  std::vector<std::uint32_t> leaves;
  leaves.reserve(trees_.size());
  for (const DecisionTree& tree : trees_) leaves.push_back(tree.leaf_id(x));
  return leaves;
}

}  // namespace stob::wf
