#include "wf/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace stob::wf {

namespace {

double gini(std::span<const double> counts, double total) {
  if (total <= 0) return 0.0;
  double acc = 0.0;
  for (double c : counts) {
    const double p = c / total;
    acc += p * p;
  }
  return 1.0 - acc;
}

// Order-preserving bijection from finite doubles to uint64: integer
// comparison of keys matches double comparison of values, so the split
// search sorts 8-byte integer keys instead of doubles. -0.0 is collapsed
// to +0.0 first so key equality coincides with double equality — the
// scan's "no cut between equal values" rule must see ±0.0 as one run.
std::uint64_t key_of(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return (b & 0x8000000000000000ull) != 0 ? ~b : b | 0x8000000000000000ull;
}

double value_of(std::uint64_t k) {
  std::uint64_t b = (k & 0x8000000000000000ull) != 0 ? k ^ 0x8000000000000000ull : ~k;
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

/// Sort the (key, payload) elements by key. Tie order among equal keys is
/// free: cuts are only valid at equal-value run boundaries, where the
/// accumulated class counts are exact integers independent of intra-run
/// order. Small runs use insertion sort, mid-size std::sort, large runs a
/// skip-pass LSD radix (stable, byte digits).
namespace {

template <typename KVT>
void sort_kv(KVT* kv, std::size_t n, std::vector<KVT>& scratch) {
  if (n < 2) return;
  if (n <= 48) {
    for (std::size_t i = 1; i < n; ++i) {
      const KVT e = kv[i];
      std::size_t j = i;
      while (j > 0 && kv[j - 1].key > e.key) {
        kv[j] = kv[j - 1];
        --j;
      }
      kv[j] = e;
    }
    return;
  }
  if (n < 512) {
    std::sort(kv, kv + n, [](const KVT& a, const KVT& b) { return a.key < b.key; });
    return;
  }

  // One pass builds all eight digit histograms; uniform digits (common:
  // nearby feature values share exponent bytes) skip their scatter pass.
  std::uint32_t hist[8][256] = {};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = kv[i].key;
    for (int d = 0; d < 8; ++d) ++hist[d][(k >> (8 * d)) & 0xFF];
  }
  scratch.resize(n);
  KVT* src = kv;
  KVT* dst = scratch.data();
  for (int d = 0; d < 8; ++d) {
    if (hist[d][(src[0].key >> (8 * d)) & 0xFF] == n) continue;  // uniform digit
    std::uint32_t offsets[256];
    std::uint32_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += hist[d][b];
    }
    for (std::size_t i = 0; i < n; ++i) dst[offsets[(src[i].key >> (8 * d)) & 0xFF]++] = src[i];
    std::swap(src, dst);
  }
  if (src != kv) std::copy_n(src, n, kv);
}

}  // namespace

void DecisionTree::fit(const TrainView& view, std::span<const std::size_t> indices, Rng& rng) {
  if (view.num_classes <= 0 || view.size() == 0 || indices.empty()) {
    throw std::invalid_argument("DecisionTree::fit: empty training data");
  }
  num_classes_ = view.num_classes;
  nodes_.clear();
  dists_.clear();
  depth_ = 0;

  // Collapse bootstrap duplicates into integer weights: a row drawn m
  // times contributes m to every count, so all impurity arithmetic (sums
  // of exact small integers) is bit-identical to carrying m copies, while
  // sorts and scans shrink to the ~63% unique rows.
  Workspace ws;
  ws.weight.assign(view.size(), 0.0);
  for (std::size_t i : indices) ws.weight[i] += 1.0;
  std::vector<std::size_t> idx;
  idx.reserve(indices.size());
  for (std::size_t r = 0; r < view.size(); ++r) {
    if (ws.weight[r] > 0.0) idx.push_back(r);
  }
  ws.left_counts.resize(static_cast<std::size_t>(num_classes_));
  ws.right_counts.resize(static_cast<std::size_t>(num_classes_));
  build(view, idx, 0, idx.size(), static_cast<double>(indices.size()), 0, rng, ws);
}

std::uint32_t DecisionTree::make_leaf(const TrainView& view, std::span<const std::size_t> idx,
                                      double weighted_n, Workspace& ws) {
  Node node;
  node.feature = -1;
  node.dist_offset = static_cast<std::uint32_t>(dists_.size());
  ws.dist.assign(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t i : idx) {
    ws.dist[static_cast<std::size_t>(view.labels[i])] += ws.weight[i];
  }
  int best = 0;
  for (int c = 0; c < num_classes_; ++c) {
    dists_.push_back(ws.dist[static_cast<std::size_t>(c)] / weighted_n);
    if (ws.dist[static_cast<std::size_t>(c)] > ws.dist[static_cast<std::size_t>(best)]) best = c;
  }
  node.majority = best;
  nodes_.push_back(node);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::uint32_t DecisionTree::build(const TrainView& view, std::vector<std::size_t>& idx,
                                  std::size_t lo, std::size_t hi, double weighted_n, int depth,
                                  Rng& rng, Workspace& ws) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = hi - lo;  // unique rows; weighted_n counts duplicates
  const std::span<const std::size_t> here(idx.data() + lo, n);

  // Purity check.
  bool pure = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (view.labels[here[i]] != view.labels[here[0]]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= cfg_.max_depth ||
      weighted_n < static_cast<double>(cfg_.min_samples_split)) {
    return make_leaf(view, here, weighted_n, ws);
  }

  const std::size_t num_features = view.features();
  std::size_t mtry = cfg_.max_features;
  if (mtry == 0) mtry = static_cast<std::size_t>(std::sqrt(static_cast<double>(num_features)));
  mtry = std::clamp<std::size_t>(mtry, 1, num_features);

  // Sample `mtry` distinct features (partial Fisher-Yates).
  ws.feats.resize(num_features);
  std::iota(ws.feats.begin(), ws.feats.end(), 0);
  for (std::size_t i = 0; i < mtry; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(num_features - 1)));
    std::swap(ws.feats[i], ws.feats[j]);
  }

  // (weight, label) payloads are per-element, shared by every candidate
  // feature of this node.
  ws.payload.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = here[i];
    ws.payload[i] = (static_cast<std::uint64_t>(ws.weight[row]) << 32) |
                    static_cast<std::uint32_t>(view.labels[row]);
  }

  // Exact best-split search over the sampled features.
  double best_score = std::numeric_limits<double>::infinity();
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;
  double best_wl = 0.0;

  ws.kv.resize(n);
  KV* kv = ws.kv.data();
  double* left_counts = ws.left_counts.data();
  double* right_counts = ws.right_counts.data();
  const auto classes = static_cast<std::size_t>(num_classes_);
  const double min_leaf = static_cast<double>(cfg_.min_samples_leaf);

  for (std::size_t fi = 0; fi < mtry; ++fi) {
    const std::size_t f = ws.feats[fi];
    for (std::size_t i = 0; i < n; ++i) {
      kv[i] = KV{key_of(view.value(here[i], f)), ws.payload[i]};
    }
    sort_kv(kv, n, ws.kv_scratch);
    if (kv[0].key == kv[n - 1].key) continue;  // constant feature

    std::fill_n(left_counts, classes, 0.0);
    std::fill_n(right_counts, classes, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      right_counts[kv[i].payload & 0xFFFFFFFFull] += static_cast<double>(kv[i].payload >> 32);
    }

    double wl = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const std::size_t c = kv[i].payload & 0xFFFFFFFFull;
      const auto w = static_cast<double>(kv[i].payload >> 32);
      left_counts[c] += w;
      right_counts[c] -= w;
      wl += w;
      if (kv[i].key == kv[i + 1].key) continue;  // not a valid cut
      const double wr = weighted_n - wl;
      if (wl < min_leaf || wr < min_leaf) continue;
      const double score =
          (wl * gini({left_counts, classes}, wl) + wr * gini({right_counts, classes}, wr)) /
          weighted_n;
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = (value_of(kv[i].key) + value_of(kv[i + 1].key)) / 2.0;
        best_wl = wl;
      }
    }
  }

  if (best_feature < 0) return make_leaf(view, here, weighted_n, ws);

  // Partition indices in place: <= threshold to the left. Duplicates of a
  // row travel together, so unique-index partitioning splits exactly the
  // multiset the duplicated partition would.
  const auto bf = static_cast<std::size_t>(best_feature);
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(lo), idx.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](std::size_t i) { return view.value(i, bf) <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == lo || mid == hi) {
    return make_leaf(view, here, weighted_n, ws);  // degenerate partition
  }

  const auto node_index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const std::uint32_t left = build(view, idx, lo, mid, best_wl, depth + 1, rng, ws);
  const std::uint32_t right = build(view, idx, mid, hi, weighted_n - best_wl, depth + 1, rng, ws);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

const DecisionTree::Node& DecisionTree::descend(std::span<const double> x) const {
  assert(!nodes_.empty());
  std::uint32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& nd = nodes_[cur];
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[cur];
}

int DecisionTree::predict(std::span<const double> x) const { return descend(x).majority; }

std::vector<double> DecisionTree::predict_proba(std::span<const double> x) const {
  const Node& leaf = descend(x);
  return std::vector<double>(
      dists_.begin() + leaf.dist_offset,
      dists_.begin() + leaf.dist_offset + static_cast<std::uint32_t>(num_classes_));
}

std::uint32_t DecisionTree::leaf_id(std::span<const double> x) const {
  std::uint32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& nd = nodes_[cur];
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return cur;
}

}  // namespace stob::wf
