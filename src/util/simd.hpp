// Runtime SIMD dispatch for the WF attack kernels.
//
// Policy (DESIGN.md §17): the build compiles at baseline codegen flags;
// vector kernels live in functions carrying a per-function target
// attribute, and every call site picks an implementation through
// active_level(), decided once per process:
//
//   * compile-time kill switch — a -DSTOB_SIMD=off CMake configure defines
//     STOB_SIMD_DISABLED and active_level() is constant Scalar (the CI
//     forced-scalar leg);
//   * runtime override — STOB_SIMD=off|scalar|0 in the environment forces
//     Scalar without a rebuild (CI byte-identity checks run one binary in
//     both modes);
//   * CPUID — on x86-64, AVX2 when __builtin_cpu_supports says so; on
//     AArch64, NEON (architecturally guaranteed); otherwise Scalar.
//
// Every kernel keeps an always-available scalar implementation, and all
// shipped SIMD paths are *exact* (compares, integer counting, independent
// subtractions, integer-valued sums), so the level never changes results —
// only wall clock. Tests pin that: scalar vs dispatched outputs are
// compared with EXPECT_EQ, never NEAR.
#pragma once

namespace stob::simd {

enum class Level {
  Scalar = 0,
  Avx2 = 1,
  Neon = 2,
};

/// The instruction-set level every dispatched kernel uses in this process.
/// Decided on first call (environment + CPUID) and constant afterwards.
Level active_level();

/// Human-readable name ("scalar", "avx2", "neon") for logs and manifests.
/// Never printed on stdout paths under the byte-identity contract.
const char* level_name(Level level);

}  // namespace stob::simd
