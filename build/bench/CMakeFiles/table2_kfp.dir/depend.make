# Empty dependencies file for table2_kfp.
# This may be replaced when dependencies are built.
