// Chaos sweep: every fault scenario x {Reno, CUBIC, BBR} x the full defense
// zoo, with the runtime stack-invariant checker armed on every job.
//
// This is the robustness backbone for the paper's claim: in-stack defenses
// must stay safe ("never more aggressive than the CCA") not just on clean
// paths but exactly where transports misbehave — bursty loss, reordering,
// duplication, corruption, jitter, capacity swings, link flaps. The sweep
// reports, per scenario:
//
//   * completion rate and mean page-load time / goodput (how badly the
//     adverse path degrades the workload),
//   * mean defense bandwidth-overhead drift vs the clean scenario (does an
//     impaired path change what a defense costs?),
//   * invariant checks performed and violations found (must be zero).
//
// Runs on the parallel experiment engine: stdout is byte-identical for any
// --jobs value, and --check-determinism re-runs the grid serially to prove
// it. Exit status is 1 if any stack invariant was violated.
//
// Flags: --jobs N (or STOB_JOBS), --check-determinism, --manifest PATH /
// --trace-events PATH (either turns the span profiler on), --smoke (1 site
// x 1 sample — the CI grid), and the out-of-process runner set:
// --proc-workers N, --job-timeout S, --retries N, --journal PATH, --resume,
// --inject-worker-fault crash|hang|exit[:rate]. Result cache: --cache DIR
// (or STOB_CACHE), --no-cache, --cache-stats, --cache-gc BYTES.
// Environment knobs: STOB_SITES (default 2), STOB_SAMPLES (default 2),
// STOB_SEED.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "defenses/baselines.hpp"
#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "fault/fault.hpp"
#include "obs/manifest.hpp"
#include "obs/prof.hpp"
#include "workload/page_load.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

struct ScenarioRow {
  std::string name;
  std::size_t jobs = 0, completed = 0;
  double plt_sum = 0.0;         // seconds, completed jobs only
  double goodput_sum = 0.0;     // Mbit/s, completed jobs only
  double overhead_sum = 0.0;    // defended bytes / undefended bytes - 1
  std::size_t overhead_n = 0;
  std::uint64_t checks = 0, violations = 0;
  std::string first_violation;
};

}  // namespace

int main(int argc, char** argv) {
  const exp::Cli cli = exp::parse_cli(argc, argv, {{"--smoke", false}});
  const bool smoke = cli.has("--smoke");
  const auto sites = smoke ? 1 : static_cast<std::size_t>(env_int("STOB_SITES", 2));
  const auto samples = smoke ? 1 : static_cast<std::size_t>(env_int("STOB_SAMPLES", 2));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));
  const std::size_t jobs = cli.jobs == 0 ? exp::default_jobs() : cli.jobs;

  exp::ExperimentGrid grid;
  const std::vector<workload::SiteProfile>& nine = workload::nine_sites();
  grid.sites.assign(nine.begin(), nine.begin() + std::min(sites, nine.size()));
  grid.samples = samples;
  grid.ccas = {"reno", "cubic", "bbr"};
  grid.faults = fault::all_scenarios();
  grid.base_seed = seed;

  const std::vector<std::unique_ptr<defenses::TraceDefense>> zoo = defenses::all_defenses();
  grid.defenses.push_back({"none", nullptr});
  for (const auto& d : zoo) grid.defenses.push_back({d->name(), d.get()});

  std::printf("=== Chaos sweep: fault scenarios x CCAs x defenses, invariants armed ===\n");
  std::printf("grid: %zu scenarios x %zu sites x %zu samples x %zu defenses x %zu ccas = %zu jobs\n\n",
              grid.faults.size(), grid.sites.size(), grid.samples, grid.defenses.size(),
              grid.ccas.size(), grid.job_count());
  // Worker count goes to stderr: stdout must be byte-identical for any
  // --jobs value (the engine's determinism contract).
  std::fprintf(stderr, "chaos_sweep: running %zu jobs with %zu workers\n", grid.job_count(), jobs);

  obs::Profiler prof;
  std::optional<obs::ScopedProfiler> prof_guard;
  if (cli.profile()) prof_guard.emplace(prof);

  exp::RunOptions run;
  run.jobs = jobs;
  run.check_invariants = true;
  run.check_determinism = cli.check_determinism;
  run.proc = exp::proc_options_from_cli(cli);
  exp::ProcReport proc_report;
  run.proc_report = &proc_report;
  const exp::CacheSession cache = exp::CacheSession::from_cli(cli);
  run.cache = cache.cache();
  const std::vector<exp::JobResult> results = [&] {
    obs::ProfSpan span("sweep");
    return exp::run_grid(grid, run);
  }();
  if (run.proc.workers > 0) exp::print_proc_summary("chaos_sweep", run.proc, proc_report);
  cache.finish("chaos_sweep");

  // Reduce in job order. The undefended (defense 0) twin of every defended
  // job precedes it within the same (fault, site, sample) block, so the
  // overhead baseline is a straight lookback.
  const std::size_t ccas = grid.ccas.size();
  std::vector<ScenarioRow> rows(grid.faults.size());
  for (const exp::JobResult& r : results) {
    ScenarioRow& row = rows[r.spec.fault];
    row.name = grid.faults[r.spec.fault].name;
    ++row.jobs;
    if (r.completed) {
      ++row.completed;
      const double secs = r.page_load_time.sec();
      row.plt_sum += secs;
      if (secs > 0.0) {
        row.goodput_sum += static_cast<double>(r.response_bytes) * 8.0 / secs / 1e6;
      }
    }
    if (r.spec.defense > 0) {
      const exp::JobResult& base = results[r.spec.index - r.spec.defense * ccas];
      const std::int64_t undef = base.trace.total_bytes();
      if (undef > 0) {
        row.overhead_sum +=
            static_cast<double>(r.trace.total_bytes()) / static_cast<double>(undef) - 1.0;
        ++row.overhead_n;
      }
    }
    row.checks += r.invariant_checks;
    row.violations += r.invariant_violations;
    if (row.first_violation.empty() && !r.first_violation.empty()) {
      row.first_violation = r.first_violation;
    }
  }

  const double clean_overhead =
      rows[0].overhead_n > 0 ? rows[0].overhead_sum / static_cast<double>(rows[0].overhead_n)
                             : 0.0;
  std::printf("%-16s %6s %9s %9s %9s %12s %12s %10s\n", "scenario", "done", "plt(s)",
              "goodput", "bw-ovh", "ovh-drift", "checks", "violations");
  std::uint64_t total_violations = 0;
  for (const ScenarioRow& row : rows) {
    const double done = row.jobs > 0 ? static_cast<double>(row.completed) /
                                           static_cast<double>(row.jobs)
                                     : 0.0;
    const double plt =
        row.completed > 0 ? row.plt_sum / static_cast<double>(row.completed) : 0.0;
    const double goodput =
        row.completed > 0 ? row.goodput_sum / static_cast<double>(row.completed) : 0.0;
    const double ovh =
        row.overhead_n > 0 ? row.overhead_sum / static_cast<double>(row.overhead_n) : 0.0;
    std::printf("%-16s %5.0f%% %9.3f %7.2fMb %8.1f%% %11.1f%% %12llu %10llu\n",
                row.name.c_str(), done * 100.0, plt, goodput, ovh * 100.0,
                (ovh - clean_overhead) * 100.0,
                static_cast<unsigned long long>(row.checks),
                static_cast<unsigned long long>(row.violations));
    total_violations += row.violations;
  }

  if (cli.profile()) {
    prof_guard.reset();  // all spans closed; stop recording before export
    if (!cli.manifest_path.empty()) {
      obs::RunManifest m = obs::build_manifest("chaos_sweep", prof, nullptr, jobs, seed);
      m.set_config("sites", std::to_string(grid.sites.size()));
      m.set_config("samples", std::to_string(samples));
      m.set_config("scenarios", std::to_string(grid.faults.size()));
      m.set_config("defenses", std::to_string(grid.defenses.size()));
      m.set_config("ccas", std::to_string(grid.ccas.size()));
      m.write(cli.manifest_path);
      std::fprintf(stderr, "chaos_sweep: wrote %s\n", cli.manifest_path.c_str());
    }
    if (!cli.trace_events_path.empty()) {
      obs::write_trace_event(cli.trace_events_path, prof.records(), "chaos_sweep");
      std::fprintf(stderr, "chaos_sweep: wrote %s\n", cli.trace_events_path.c_str());
    }
  }

  if (total_violations > 0) {
    std::printf("\nSTACK INVARIANT VIOLATIONS: %llu\n",
                static_cast<unsigned long long>(total_violations));
    for (const ScenarioRow& row : rows) {
      if (!row.first_violation.empty()) {
        std::printf("[%s] %s\n", row.name.c_str(), row.first_violation.c_str());
      }
    }
    return 1;
  }
  std::printf("\nAll stack invariants held across every scenario.\n");
  // Quarantined cells mean the table above is missing data: report success
  // on stdout determinism but fail the invocation.
  return proc_report.quarantined > 0 ? 2 : 0;
}
