// Tests for the network substrate: packets, pipes, duplex paths, taps.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet.hpp"
#include "net/path.hpp"
#include "net/pipe.hpp"
#include "sim/simulator.hpp"

namespace stob::net {
namespace {

Packet make_packet(std::int64_t payload, FlowKey flow = {1, 2, 1000, 80, Proto::Tcp}) {
  Packet p;
  p.id = next_packet_id();
  p.flow = flow;
  p.header = Bytes(kEthIpTcpHeader);
  p.payload = Bytes(payload);
  return p;
}

TEST(Packet, FlowKeyReversal) {
  const FlowKey k{1, 2, 1000, 80, Proto::Tcp};
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.src_host, 2u);
  EXPECT_EQ(r.dst_host, 1u);
  EXPECT_EQ(r.src_port, 80);
  EXPECT_EQ(r.dst_port, 1000);
  EXPECT_EQ(r.reversed(), k);
}

TEST(Packet, FlowKeyHashDistinguishes) {
  FlowKeyHash h;
  const FlowKey a{1, 2, 1000, 80, Proto::Tcp};
  const FlowKey b{1, 2, 1001, 80, Proto::Tcp};
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(a));
}

TEST(Packet, WireSize) {
  const Packet p = make_packet(1000);
  EXPECT_EQ(p.wire_size().count(), 1000 + kEthIpTcpHeader);
}

TEST(Packet, UniqueIds) {
  const auto a = next_packet_id();
  const auto b = next_packet_id();
  EXPECT_NE(a, b);
}

TEST(Pipe, DeliversWithSerialisationAndDelay) {
  sim::Simulator s;
  // 8 Mbps, 1 ms delay: 1000B wire packet -> 1 ms serialise + 1 ms delay.
  Pipe pipe(s, {DataRate::mbps(8), Duration::millis(1), Bytes(0), 0.0});
  TimePoint delivered_at;
  pipe.set_sink([&](Packet) { delivered_at = s.now(); });
  Packet p = make_packet(1000 - kEthIpTcpHeader);
  pipe.send(std::move(p));
  s.run();
  EXPECT_EQ(delivered_at.ns(), 2'000'000);
  EXPECT_EQ(pipe.delivered_packets(), 1u);
}

TEST(Pipe, BackToBackSerialisation) {
  sim::Simulator s;
  Pipe pipe(s, {DataRate::mbps(8), Duration::millis(0), Bytes(0), 0.0});
  std::vector<TimePoint> deliveries;
  pipe.set_sink([&](Packet) { deliveries.push_back(s.now()); });
  for (int i = 0; i < 3; ++i) pipe.send(make_packet(1000 - kEthIpTcpHeader));
  s.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].ns(), 1'000'000);
  EXPECT_EQ(deliveries[1].ns(), 2'000'000);
  EXPECT_EQ(deliveries[2].ns(), 3'000'000);
}

TEST(Pipe, PreservesOrder) {
  sim::Simulator s;
  Pipe pipe(s, {DataRate::gbps(1), Duration::micros(10), Bytes(0), 0.0});
  std::vector<std::uint64_t> ids;
  pipe.set_sink([&](Packet p) { ids.push_back(p.id); });
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(100);
    sent.push_back(p.id);
    pipe.send(std::move(p));
  }
  s.run();
  EXPECT_EQ(ids, sent);
}

TEST(Pipe, DropTailWhenFull) {
  sim::Simulator s;
  // Tiny queue: 2 full packets' worth.
  Pipe pipe(s, {DataRate::kbps(64), Duration::millis(1), Bytes(3000), 0.0});
  pipe.set_sink([](Packet) {});
  for (int i = 0; i < 10; ++i) pipe.send(make_packet(1400));
  EXPECT_GT(pipe.dropped_packets(), 0u);
  s.run();
  EXPECT_EQ(pipe.delivered_packets() + pipe.dropped_packets(), 10u);
}

TEST(Pipe, UnboundedQueueNeverDrops) {
  sim::Simulator s;
  Pipe pipe(s, {DataRate::kbps(64), Duration::millis(1), Bytes(0), 0.0});
  pipe.set_sink([](Packet) {});
  for (int i = 0; i < 100; ++i) pipe.send(make_packet(1400));
  s.run();
  EXPECT_EQ(pipe.dropped_packets(), 0u);
  EXPECT_EQ(pipe.delivered_packets(), 100u);
}

TEST(Pipe, LossModelDropsApproximately) {
  sim::Simulator s;
  Pipe pipe(s, {DataRate::gbps(1), Duration::micros(1), Bytes(0), 0.25});
  int received = 0;
  pipe.set_sink([&](Packet) { ++received; });
  for (int i = 0; i < 2000; ++i) pipe.send(make_packet(100));
  s.run();
  EXPECT_NEAR(static_cast<double>(received) / 2000.0, 0.75, 0.05);
  EXPECT_EQ(pipe.lost_packets() + pipe.delivered_packets(), 2000u);
}

TEST(Pipe, LostPacketFiresTxAccountingButNoRxTap) {
  // Loss happens after serialisation: the sender side (tx tap, tx_complete,
  // i.e. the NIC ring free) must see the packet, the receiver side (rx tap,
  // sink) must not.
  sim::Simulator s;
  Pipe pipe(s, {DataRate::gbps(1), Duration::millis(1), Bytes(0), 1.0});
  int tx_taps = 0, rx_taps = 0, completions = 0, sunk = 0;
  pipe.set_tx_tap([&](const Packet&, TimePoint) { ++tx_taps; });
  pipe.set_rx_tap([&](const Packet&, TimePoint) { ++rx_taps; });
  pipe.set_tx_complete([&](const Packet&) { ++completions; });
  pipe.set_sink([&](Packet) { ++sunk; });
  pipe.send(make_packet(1000));
  s.run();
  EXPECT_EQ(tx_taps, 1);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rx_taps, 0);
  EXPECT_EQ(sunk, 0);
  EXPECT_EQ(pipe.lost_packets(), 1u);
  EXPECT_EQ(pipe.delivered_packets(), 0u);
}

TEST(Pipe, TapsObserveTxAndRx) {
  sim::Simulator s;
  Pipe pipe(s, {DataRate::mbps(8), Duration::millis(1), Bytes(0), 0.0});
  TimePoint tx_at, rx_at;
  pipe.set_tx_tap([&](const Packet&, TimePoint t) { tx_at = t; });
  pipe.set_rx_tap([&](const Packet&, TimePoint t) { rx_at = t; });
  pipe.set_sink([](Packet) {});
  pipe.send(make_packet(1000 - kEthIpTcpHeader));
  s.run();
  EXPECT_EQ(tx_at.ns(), 0);           // serialisation starts immediately
  EXPECT_EQ(rx_at.ns(), 2'000'000);   // after serialise + propagate
}

TEST(Pipe, TxCompleteFreesAtSerialisationEnd) {
  sim::Simulator s;
  Pipe pipe(s, {DataRate::mbps(8), Duration::millis(5), Bytes(0), 0.0});
  TimePoint complete_at;
  pipe.set_tx_complete([&](const Packet&) { complete_at = s.now(); });
  pipe.set_sink([](Packet) {});
  pipe.send(make_packet(1000 - kEthIpTcpHeader));
  s.run();
  EXPECT_EQ(complete_at.ns(), 1'000'000);  // independent of propagation delay
}

TEST(Pipe, QueueDepthAccounting) {
  sim::Simulator s;
  Pipe pipe(s, {DataRate::kbps(64), Duration::millis(1), Bytes(0), 0.0});
  pipe.set_sink([](Packet) {});
  for (int i = 0; i < 5; ++i) pipe.send(make_packet(1000 - kEthIpTcpHeader));
  EXPECT_GT(pipe.max_queued_bytes().count(), 0);
  s.run();
  EXPECT_EQ(pipe.queued_bytes().count(), 0);
}

TEST(DuplexPath, SymmetricRtt) {
  sim::Simulator s;
  DuplexPath path(s, DuplexPath::symmetric(DataRate::gbps(1), Duration::millis(5)));
  EXPECT_EQ(path.base_rtt().ms(), 10.0);
}

TEST(DuplexPath, DirectionsAreIndependent) {
  sim::Simulator s;
  DuplexPath path(s, DuplexPath::symmetric(DataRate::mbps(8), Duration::millis(1)));
  int fwd = 0, bwd = 0;
  path.forward().set_sink([&](Packet) { ++fwd; });
  path.backward().set_sink([&](Packet) { ++bwd; });
  path.forward().send(make_packet(100));
  path.backward().send(make_packet(100));
  path.backward().send(make_packet(100));
  s.run();
  EXPECT_EQ(fwd, 1);
  EXPECT_EQ(bwd, 2);
}

TEST(DuplexPath, AsymmetricDirectionsDiffer) {
  sim::Simulator s;
  // ADSL-shaped: fat/short downlink, thin/long uplink.
  DuplexPath path(s, DuplexPath::asymmetric(DataRate::mbps(5), Duration::millis(15),
                                            DataRate::mbps(50), Duration::millis(5)));
  EXPECT_EQ(path.forward().config().rate.bits_per_sec(), DataRate::mbps(5).bits_per_sec());
  EXPECT_EQ(path.backward().config().rate.bits_per_sec(), DataRate::mbps(50).bits_per_sec());
  EXPECT_EQ(path.forward().config().delay.ns(), Duration::millis(15).ns());
  EXPECT_EQ(path.backward().config().delay.ns(), Duration::millis(5).ns());
  EXPECT_EQ(path.base_rtt().ms(), 20.0);
}

TEST(DuplexPath, PipeSelectorByDirection) {
  sim::Simulator s;
  DuplexPath path(s, DuplexPath::symmetric(DataRate::mbps(8), Duration::millis(1)));
  EXPECT_EQ(&path.pipe(Direction::ClientToServer), &path.forward());
  EXPECT_EQ(&path.pipe(Direction::ServerToClient), &path.backward());
}

}  // namespace
}  // namespace stob::net
