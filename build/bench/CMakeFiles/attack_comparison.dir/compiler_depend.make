# Empty compiler generated dependencies file for attack_comparison.
# This may be replaced when dependencies are built.
