#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stob::csv {

Row split_line(std::string_view line, char sep) {
  Row cells;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      cells.emplace_back(line.substr(start));
      break;
    }
    cells.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return cells;
}

std::vector<Row> read_file(const std::filesystem::path& path, char sep) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open " + path.string());
  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(split_line(line, sep));
  }
  return rows;
}

void write_file(const std::filesystem::path& path, const std::vector<Row>& rows, char sep) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("csv: cannot open for write " + path.string());
  for (const Row& row : rows) out << join(row, sep) << '\n';
  if (!out) throw std::runtime_error("csv: write failed for " + path.string());
}

std::string join(const Row& row, char sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << sep;
    os << row[i];
  }
  return os.str();
}

}  // namespace stob::csv
