#include "wf/leaf_knn.hpp"

#include <algorithm>

namespace stob::wf {

namespace {
constexpr std::size_t kTrainBlock = 64;  // train fingerprints kept hot per tile
constexpr std::size_t kQueryBlock = 8;   // queries sharing one train tile
}

void leaf_match_counts(std::span<const std::uint32_t> train_leaves, std::size_t n_train,
                       std::span<const std::uint32_t> query, std::span<int> counts) {
  const std::size_t trees = query.size();
  const std::uint32_t* q = query.data();
  for (std::size_t i = 0; i < n_train; ++i) {
    const std::uint32_t* row = train_leaves.data() + i * trees;
    int c = 0;
    for (std::size_t t = 0; t < trees; ++t) c += static_cast<int>(row[t] == q[t]);
    counts[i] = c;
  }
}

void leaf_match_matrix(std::span<const std::uint32_t> train_leaves, std::size_t n_train,
                       std::span<const std::uint32_t> query_leaves, std::size_t n_query,
                       std::size_t trees, std::span<int> counts) {
  for (std::size_t q_lo = 0; q_lo < n_query; q_lo += kQueryBlock) {
    const std::size_t q_hi = std::min(n_query, q_lo + kQueryBlock);
    for (std::size_t i_lo = 0; i_lo < n_train; i_lo += kTrainBlock) {
      const std::size_t i_hi = std::min(n_train, i_lo + kTrainBlock);
      for (std::size_t q = q_lo; q < q_hi; ++q) {
        const std::uint32_t* qrow = query_leaves.data() + q * trees;
        int* out = counts.data() + q * n_train;
        for (std::size_t i = i_lo; i < i_hi; ++i) {
          const std::uint32_t* row = train_leaves.data() + i * trees;
          int c = 0;
          for (std::size_t t = 0; t < trees; ++t) c += static_cast<int>(row[t] == qrow[t]);
          out[i] = c;
        }
      }
    }
  }
}

}  // namespace stob::wf
