#include "quic/quic_connection.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace stob::quic {

namespace {
constexpr std::int64_t kInitialSize = 1200;  // RFC 9000 minimum Initial datagram
constexpr std::int64_t kFrameOverhead = 8;   // stream frame header estimate
}  // namespace

QuicConnection::QuicConnection(stack::Host& host, Config cfg)
    : host_(host),
      sim_(host.simulator()),
      cfg_(cfg),
      cca_(tcp::make_congestion_control(cfg.cca, Bytes(cfg.max_payload))),
      rtt_(cfg.rtt) {}

QuicConnection::~QuicConnection() {
  if (key_.src_port != 0 || key_.dst_port != 0) {
    host_.unregister_flow(key_.reversed());
  }
  if (pto_armed_) sim_.cancel(pto_timer_);
  if (ack_armed_) sim_.cancel(ack_timer_);
}

void QuicConnection::open_common(net::HostId dst, net::Port dst_port, net::Port src_port) {
  key_ = net::FlowKey{host_.id(), dst, src_port, dst_port, net::Proto::Udp};
  host_.register_flow(key_.reversed(), [this](net::Packet p) { handle_datagram(std::move(p)); });
  if (cfg_.policy != nullptr) cfg_.policy->on_flow_start(key_);
}

void QuicConnection::connect(net::HostId dst, net::Port dst_port) {
  open_common(dst, dst_port, host_.allocate_port());
  is_client_ = true;
  (void)emit_packet(/*force_padding_to_initial=*/true);
  arm_pto();
}

void QuicConnection::accept(const net::Packet& initial) {
  begin_accept(initial.flow);
  complete_accept(initial);
}

void QuicConnection::begin_accept(const net::FlowKey& client_flow) {
  open_common(client_flow.src_host, client_flow.src_port, client_flow.dst_port);
  established_ = true;
}

void QuicConnection::complete_accept(const net::Packet& initial) {
  net::Packet copy = initial;
  handle_datagram(std::move(copy));
  if (on_connected) on_connected();
}

void QuicConnection::send_stream(std::uint64_t stream_id, Bytes n) {
  if (n.count() <= 0) return;
  SendStream& st = send_streams_[stream_id];
  st.pending.emplace_back(st.next_offset, n.count());
  st.next_offset += static_cast<std::uint64_t>(n.count());
  st.queued += n.count();
  if (established_) send_pending();
}

void QuicConnection::finish_stream(std::uint64_t stream_id) {
  SendStream& st = send_streams_[stream_id];
  st.fin_queued = true;
  st.fin_offset = st.next_offset;
  if (established_) send_pending();
}

// ------------------------------------------------------------------ receive

void QuicConnection::handle_datagram(net::Packet p) {
  if (!p.is_quic()) return;
  const net::QuicHeader& h = p.quic();

  if (!established_ && is_client_) {
    established_ = true;
    pto_backoff_ = 0;
    if (on_connected) on_connected();
  }

  // Track received packet numbers for ACK generation. recv_contiguous_ is
  // the highest PN such that everything at or below it has been seen; pipes
  // deliver in order, so a gap only appears after a loss.
  if (!any_received_ || h.packet_number > largest_received_) {
    largest_received_ = h.packet_number;
  }
  if (!any_received_) {
    any_received_ = true;
    recv_contiguous_ = h.packet_number;
  } else if (h.packet_number == recv_contiguous_ + 1) {
    recv_contiguous_ = h.packet_number;
  }

  obs::record_packet(obs::Layer::Quic, obs::Direction::Rx, obs::EventKind::Receive, p, sim_.now());

  bool eliciting = false;
  for (const net::QuicFrame& frame : h.frames) {
    if (const auto* ack = std::get_if<net::QuicAckFrame>(&frame)) {
      process_ack(*ack);
    } else if (const auto* sf = std::get_if<net::QuicStreamFrame>(&frame)) {
      eliciting = true;
      process_stream_frame(*sf);
    } else {
      eliciting = true;  // padding/ping
    }
  }
  if (eliciting) {
    ++unacked_eliciting_;
    maybe_ack();
  }
  send_pending();
}

void QuicConnection::process_stream_frame(const net::QuicStreamFrame& frame) {
  RecvStream& st = recv_streams_[frame.stream_id];
  if (frame.fin) {
    st.fin_known = true;
    st.fin_offset = frame.offset + static_cast<std::uint64_t>(frame.length);
  }
  if (frame.length > 0) {
    const std::uint64_t start = frame.offset;
    const std::uint64_t end = start + static_cast<std::uint64_t>(frame.length);
    auto [it, inserted] = st.ooo.emplace(start, end);
    if (!inserted && it->second < end) it->second = end;
  }
  // Advance the in-order point.
  std::uint64_t before = st.delivered;
  auto it = st.ooo.begin();
  while (it != st.ooo.end() && it->first <= st.delivered) {
    st.delivered = std::max(st.delivered, it->second);
    it = st.ooo.erase(it);
  }
  const std::int64_t newly = static_cast<std::int64_t>(st.delivered - before);
  const bool fin_now = st.fin_known && !st.fin_delivered && st.delivered >= st.fin_offset;
  if (fin_now) st.fin_delivered = true;
  if (newly > 0 || fin_now) {
    stats_.stream_bytes_delivered += Bytes(newly);
    if (on_stream_data) on_stream_data(frame.stream_id, Bytes(newly), fin_now);
  }
}

void QuicConnection::maybe_ack() {
  if (unacked_eliciting_ >= cfg_.ack_every) {
    send_ack_now();
    return;
  }
  if (!ack_armed_) {
    ack_armed_ = true;
    ack_timer_ = sim_.schedule_after(cfg_.ack_delay, [this] {
      ack_armed_ = false;
      if (unacked_eliciting_ > 0) send_ack_now();
    });
  }
}

void QuicConnection::send_ack_now() {
  if (ack_armed_) {
    sim_.cancel(ack_timer_);
    ack_armed_ = false;
  }
  unacked_eliciting_ = 0;

  net::Packet pkt;
  pkt.id = net::next_packet_id();
  pkt.flow = key_;
  pkt.header = Bytes(net::kEthIpUdpHeader + net::kQuicShortHeader);
  pkt.payload = Bytes(16);  // ACK frame wire size estimate
  net::QuicHeader h;
  h.packet_number = next_pn_++;
  h.ack_eliciting = false;
  // Single-range ACK: when the contiguous run reaches the largest received
  // PN, everything from 0 is covered; otherwise (a gap right below the
  // newest packet) only the newest is acknowledged — the gap shows up as a
  // shrunken range and triggers PN-threshold loss detection at the sender.
  net::QuicAckFrame ack;
  ack.largest_acked = largest_received_;
  ack.first_range = recv_contiguous_ == largest_received_ ? largest_received_ : 0;
  h.frames.emplace_back(ack);
  pkt.l4 = std::move(h);
  ++stats_.acks_sent;
  host_.nic().transmit(std::move(pkt));
}

// --------------------------------------------------------------------- ACK

void QuicConnection::process_ack(const net::QuicAckFrame& ack) {
  const TimePoint now = sim_.now();
  const std::uint64_t lo =
      ack.largest_acked >= ack.first_range ? ack.largest_acked - ack.first_range : 0;

  std::int64_t newly_acked = 0;
  Duration rtt_sample;
  DataRate delivery_rate;
  for (auto it = sent_.begin(); it != sent_.end();) {
    if (it->first >= lo && it->first <= ack.largest_acked) {
      const SentPacket& sp = it->second;
      if (sp.ack_eliciting) inflight_ -= sp.size.count();
      newly_acked += sp.size.count();
      delivered_total_ += sp.size.count();
      if (it->first == ack.largest_acked) {
        rtt_sample = now - sp.sent;
        const std::int64_t delivered = delivered_total_ - sp.delivered_at_send;
        const Duration interval = now - sp.sent;
        if (interval.ns() > 0 && delivered > 0) {
          delivery_rate = DataRate::from(Bytes(delivered), interval);
        }
      }
      it = sent_.erase(it);
    } else {
      ++it;
    }
  }
  if (newly_acked <= 0) return;
  pto_backoff_ = 0;

  if (rtt_sample.ns() > 0) rtt_.add_sample(rtt_sample);

  tcp::AckEvent ev;
  ev.now = now;
  ev.newly_acked = Bytes(newly_acked);
  ev.rtt_sample = rtt_sample;
  ev.srtt = rtt_.srtt();
  ev.delivery_rate = delivery_rate;
  ev.inflight = Bytes(inflight_);
  cca_->on_ack(ev);

  detect_losses(ack.largest_acked, now);

  if (sent_.empty()) {
    if (pto_armed_) {
      sim_.cancel(pto_timer_);
      pto_armed_ = false;
    }
  } else {
    arm_pto();
  }
  send_pending();
}

void QuicConnection::detect_losses(std::uint64_t largest_acked, TimePoint now) {
  bool any_lost = false;
  for (auto it = sent_.begin(); it != sent_.end();) {
    const bool pn_lost = it->first + static_cast<std::uint64_t>(cfg_.packet_threshold) <=
                         largest_acked;
    if (pn_lost) {
      ++stats_.packets_lost;
      obs::count("quic.packets_lost");
      if (it->second.ack_eliciting) inflight_ -= it->second.size.count();
      requeue_lost(it->second);
      it = sent_.erase(it);
      any_lost = true;
    } else {
      ++it;
    }
  }
  if (any_lost) cca_->on_loss(now);
}

void QuicConnection::requeue_lost(const SentPacket& packet) {
  for (const net::QuicStreamFrame& f : packet.stream_frames) {
    SendStream& st = send_streams_[f.stream_id];
    if (f.length > 0) {
      st.pending.emplace_front(f.offset, f.length);
      st.queued += f.length;
    }
    if (f.fin) {
      st.fin_queued = true;
      st.fin_offset = f.offset + static_cast<std::uint64_t>(f.length);
      st.fin_sent_pure = false;  // a lost pure FIN must be retransmittable
    }
  }
}

// -------------------------------------------------------------------- send

void QuicConnection::send_pending() {
  if (!established_) return;
  while (inflight_ < cca_->cwnd().count()) {
    bool have_data = false;
    for (const auto& [id, st] : send_streams_) {
      if (!st.pending.empty() || (st.fin_queued && st.queued == 0)) {
        have_data = true;
        break;
      }
    }
    if (!have_data) break;
    if (emit_packet(false) <= 0) break;
  }
}

std::int64_t QuicConnection::emit_packet(bool force_padding_to_initial) {
  const TimePoint now = sim_.now();
  const DataRate cca_rate = cfg_.pacing_enabled ? cca_->pacing_rate() : DataRate(0);
  TimePoint cca_departure = now;
  if (!cca_rate.is_zero()) cca_departure = std::max(now, pacing_next_);

  // Stob hook: QUIC's packetisation decision point.
  core::SegmentContext ctx;
  ctx.flow = key_;
  ctx.now = now;
  ctx.cca_segment = Bytes(cfg_.max_payload);
  ctx.mss = Bytes(cfg_.max_payload);
  ctx.cca_departure = cca_departure;
  ctx.cca_pacing_rate = cca_rate;
  core::SegmentDecision d = cfg_.policy != nullptr
                                ? cfg_.policy->on_segment(ctx)
                                : core::SegmentDecision::passthrough(ctx);
  const std::int64_t budget =
      std::clamp<std::int64_t>(d.wire_mss.count(), 64, cfg_.max_payload);
  const TimePoint departure = std::max(d.departure, now);

  net::QuicHeader h;
  h.packet_number = next_pn_++;
  SentPacket sp;
  sp.pn = h.packet_number;
  sp.sent = now;
  sp.delivered_at_send = delivered_total_;

  std::int64_t payload = 0;

  // Piggyback an ACK when one is pending.
  if (unacked_eliciting_ > 0) {
    net::QuicAckFrame ack;
    if (recv_contiguous_ == largest_received_) {
      ack.largest_acked = largest_received_;
      ack.first_range = largest_received_;
    } else {
      ack.largest_acked = largest_received_;
      ack.first_range = 0;
    }
    h.frames.emplace_back(ack);
    payload += 16;
    unacked_eliciting_ = 0;
    if (ack_armed_) {
      sim_.cancel(ack_timer_);
      ack_armed_ = false;
    }
  }

  // Stream frames, round-robin over streams with pending data. No stream
  // data rides in the Initial: 1-RTT data starts only once the handshake
  // completes (and, server-side, the application has attached callbacks).
  std::int64_t stream_payload = 0;
  for (auto& [id, st] : send_streams_) {
    if (!established_) break;
    while (!st.pending.empty() && payload + kFrameOverhead < budget) {
      auto& [off, len] = st.pending.front();
      const std::int64_t take = std::min<std::int64_t>(len, budget - payload - kFrameOverhead);
      if (take <= 0) break;
      net::QuicStreamFrame sf;
      sf.stream_id = id;
      sf.offset = off;
      sf.length = take;
      sf.fin = st.fin_queued && off + static_cast<std::uint64_t>(take) == st.fin_offset;
      h.frames.emplace_back(sf);
      sp.stream_frames.push_back(sf);
      payload += take + kFrameOverhead;
      stream_payload += take;
      st.queued -= take;
      off += static_cast<std::uint64_t>(take);
      len -= take;
      if (len == 0) st.pending.pop_front();
    }
    // Pure FIN (no data left).
    if (st.pending.empty() && st.fin_queued && st.queued == 0 && payload + kFrameOverhead <= budget) {
      bool fin_already = false;
      for (const auto& f : sp.stream_frames) {
        if (f.stream_id == id && f.fin) fin_already = true;
      }
      if (!fin_already && !st.fin_sent_pure) {
        net::QuicStreamFrame sf;
        sf.stream_id = id;
        sf.offset = st.fin_offset;
        sf.length = 0;
        sf.fin = true;
        h.frames.emplace_back(sf);
        sp.stream_frames.push_back(sf);
        payload += kFrameOverhead;
        st.fin_sent_pure = true;
      }
    }
  }

  if (force_padding_to_initial) {
    const std::int64_t pad = kInitialSize - payload;
    if (pad > 0) {
      h.frames.emplace_back(net::QuicPaddingFrame{pad});
      payload += pad;
    }
  }

  const bool eliciting = stream_payload > 0 || force_padding_to_initial ||
                         sp.stream_frames.size() > 0;
  if (payload == 0 || (!eliciting && stream_payload == 0 && !force_padding_to_initial)) {
    // Nothing useful to send (roll back the packet number).
    --next_pn_;
    return 0;
  }
  h.ack_eliciting = eliciting;

  net::Packet pkt;
  pkt.id = net::next_packet_id();
  pkt.flow = key_;
  pkt.header = Bytes(net::kEthIpUdpHeader + net::kQuicShortHeader);
  pkt.payload = Bytes(payload);
  pkt.not_before = departure;
  pkt.l4 = std::move(h);

  sp.size = Bytes(payload);
  sp.ack_eliciting = eliciting;
  if (eliciting) inflight_ += payload;
  sent_.emplace(sp.pn, std::move(sp));

  if (!cca_rate.is_zero()) {
    pacing_next_ = departure + cca_rate.transmit_time(Bytes(payload));
  }

  ++stats_.packets_sent;
  stats_.bytes_sent += Bytes(payload);
  if (obs::listener() != nullptr) {
    obs::DepartureEvent dep;
    dep.flow = key_;
    dep.now = now;
    dep.departure = pkt.not_before;
    dep.cca_departure = cca_departure;
    dep.bytes = payload;
    dep.cca_segment = cfg_.max_payload;
    dep.cwnd = cca_->cwnd().count();
    dep.inflight = eliciting ? inflight_ - payload : inflight_;
    // QUIC admits a packet whenever inflight < cwnd (send_pending's loop
    // condition), so an emission may overshoot cwnd by payload - 1 bytes.
    dep.cwnd_slack = payload > 0 ? payload - 1 : 0;
    dep.window_limited = established_ && stream_payload > 0 && !force_padding_to_initial;
    obs::note_departure(dep);
  }
  obs::record_packet(obs::Layer::Quic, obs::Direction::Tx, obs::EventKind::Send, pkt, now);
  obs::count("quic.packets_sent");
  obs::sample("quic.cwnd_bytes", static_cast<double>(cca_->cwnd().count()));
  host_.nic().transmit(std::move(pkt));
  if (eliciting && !pto_armed_) arm_pto();
  return stream_payload;
}

// --------------------------------------------------------------------- PTO

void QuicConnection::arm_pto() {
  if (pto_armed_) {
    sim_.cancel(pto_timer_);
    pto_armed_ = false;
  }
  Duration pto = rtt_.has_sample()
                     ? rtt_.srtt() + std::max(Duration::millis(1), rtt_.rttvar() * 4) +
                           cfg_.ack_delay
                     : Duration::seconds(1);
  pto = pto * (std::int64_t{1} << std::min(pto_backoff_, 10));
  pto_armed_ = true;
  pto_timer_ = sim_.schedule_after(pto, [this] {
    pto_armed_ = false;
    on_pto_fire();
  });
}

void QuicConnection::on_pto_fire() {
  if (sent_.empty()) return;
  ++stats_.pto_fires;
  obs::count("quic.pto_fires");
  ++pto_backoff_;
  // Probe: retransmit the oldest unacked packet's frames.
  const SentPacket oldest = sent_.begin()->second;
  if (oldest.ack_eliciting) inflight_ -= oldest.size.count();
  sent_.erase(sent_.begin());
  if (!established_ && is_client_) {
    (void)emit_packet(/*force_padding_to_initial=*/true);
  } else {
    requeue_lost(oldest);
    send_pending();
  }
  arm_pto();
}

// ---------------------------------------------------------------- listener

QuicListener::QuicListener(stack::Host& host, net::Port port, QuicConnection::Config conn_cfg)
    : host_(host), port_(port), conn_cfg_(conn_cfg) {
  host_.bind_listener(port_, net::Proto::Udp,
                      [this](net::Packet p) { on_packet(std::move(p)); });
}

QuicListener::~QuicListener() { host_.unbind_listener(port_, net::Proto::Udp); }

void QuicListener::on_packet(net::Packet p) {
  if (!p.is_quic()) return;
  auto conn = std::make_unique<QuicConnection>(host_, conn_cfg_);
  QuicConnection& ref = *conn;
  conns_.push_back(std::move(conn));
  // Staged accept: the flow key exists when the application's callback
  // runs, and the callbacks it installs see the very first datagram.
  ref.begin_accept(p.flow);
  if (accept_cb_) accept_cb_(ref);
  ref.complete_accept(p);
}

}  // namespace stob::quic
