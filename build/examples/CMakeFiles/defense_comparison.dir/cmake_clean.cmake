file(REMOVE_RECURSE
  "CMakeFiles/defense_comparison.dir/defense_comparison.cpp.o"
  "CMakeFiles/defense_comparison.dir/defense_comparison.cpp.o.d"
  "defense_comparison"
  "defense_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
