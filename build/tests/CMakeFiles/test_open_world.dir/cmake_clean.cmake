file(REMOVE_RECURSE
  "CMakeFiles/test_open_world.dir/test_open_world.cpp.o"
  "CMakeFiles/test_open_world.dir/test_open_world.cpp.o.d"
  "test_open_world"
  "test_open_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_open_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
