#include "defenses/trace_defense.hpp"

#include <algorithm>

#include "defenses/baseline_policies.hpp"
#include "defenses/policy.hpp"

namespace stob::defenses {

std::string Manipulations::describe() const {
  std::string out;
  auto append = [&out](const char* s) {
    if (!out.empty()) out += ", ";
    out += s;
  };
  if (padding) append("padding");
  if (timing) append("timing");
  if (packet_size) append("packet size");
  return out.empty() ? "none" : out;
}

Overhead measure_overhead(const wf::Trace& original, const wf::Trace& defended) {
  Overhead o;
  const double ob = static_cast<double>(original.total_bytes());
  const double db = static_cast<double>(defended.total_bytes());
  if (ob > 0) o.bandwidth = (db - ob) / ob;
  const double od = original.duration();
  const double dd = defended.duration();
  if (od > 0) o.latency = (dd - od) / od;
  return o;
}

Overhead measure_overhead(const wf::Dataset& data, const TraceDefense& defense, Rng& rng) {
  Overhead acc;
  if (data.size() == 0) return acc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Overhead o = measure_overhead(data.trace(i), defense.apply(data.trace(i), rng));
    acc.bandwidth += o.bandwidth;
    acc.latency += o.latency;
  }
  acc.bandwidth /= static_cast<double>(data.size());
  acc.latency /= static_cast<double>(data.size());
  return acc;
}

// ------------------------------------------------------------ SplitDefense
//
// The §3 emulation primitives are implemented as streaming policies
// (baseline_policies.hpp) and replayed here through the policy driver; the
// parity suite pins this path byte-identical to the original inline
// transforms.

wf::Trace SplitDefense::apply(const wf::Trace& trace, Rng& rng) const {
  SplitStreamPolicy policy(cfg_);
  return run_policy(policy, trace, rng);
}

// ------------------------------------------------------------ DelayDefense

wf::Trace DelayDefense::apply(const wf::Trace& trace, Rng& rng) const {
  DelayStreamPolicy policy(cfg_);
  return run_policy(policy, trace, rng);
}

// --------------------------------------------------------- CombinedDefense

wf::Trace CombinedDefense::apply(const wf::Trace& trace, Rng& rng) const {
  std::vector<std::unique_ptr<Policy>> stages;
  stages.push_back(std::make_unique<SplitStreamPolicy>(split_cfg_));
  stages.push_back(std::make_unique<DelayStreamPolicy>(delay_cfg_));
  ChainPolicy chain(std::move(stages));
  return run_policy(chain, trace, rng);
}

// ---------------------------------------------------------- prefix scoping

wf::Trace apply_to_prefix(const TraceDefense& defense, const wf::Trace& trace,
                          std::size_t prefix_packets, Rng& rng) {
  if (prefix_packets == 0 || prefix_packets >= trace.size()) {
    return defense.apply(trace, rng);
  }
  const auto& pkts = trace.packets();
  wf::Trace prefix(std::vector<wf::PacketRecord>(
      pkts.begin(), pkts.begin() + static_cast<std::ptrdiff_t>(prefix_packets)));
  const double prefix_orig_end = pkts[prefix_packets - 1].time;
  wf::Trace defended_prefix = defense.apply(prefix, rng);

  // The unmodified tail shifts by however much the defended prefix stretched.
  const double defended_end =
      defended_prefix.empty() ? 0.0 : defended_prefix.packets().back().time;
  const double shift = std::max(0.0, defended_end - prefix_orig_end);

  wf::Trace out = defended_prefix;
  for (std::size_t i = prefix_packets; i < pkts.size(); ++i) {
    out.add(pkts[i].time + shift, pkts[i].direction, pkts[i].size);
  }
  out.normalize();
  return out;
}

}  // namespace stob::defenses
