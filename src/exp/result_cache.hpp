// Content-addressed on-disk cache for experiment cell results.
//
// Grid cells are pure functions of (seed, site, defense, CCA, fault
// profile, sink options, codec rev) — exactly what exp::cell_digest hashes.
// This module turns that purity into incremental sweeps: a finished cell's
// job_codec payload is stored under a key derived from its cell digest plus
// a config salt (everything that shapes the bytes but is not a grid
// coordinate: PageLoadOptions, profiler capture, STOB_CACHE_SALT), so a
// re-run after editing one defense re-simulates only the cells whose keys
// changed while stdout/CSV/manifests stay byte-identical to a cold run.
//
// On-disk layout (machine-local, never an interchange format):
//
//   DIR/objects/<k0k1>/<key>.entry   one file per cell (see entry format)
//   DIR/tmp/                         in-flight commits (unique names)
//   DIR/quarantine/                  corrupt entries, kept for post-mortems
//   DIR/index.jsonl                  append-only commit log (obs::Journal
//                                    JSONL discipline, torn-line tolerant)
//
// Commit protocol: encode → write + fsync a unique file in tmp/ → rename(2)
// into objects/ (atomic on POSIX: readers see the old entry or the complete
// new one, never a torn write) → append an index record. A crash between
// rename and index append leaves a valid *unindexed* entry: it still hits
// (the read path goes straight to the object file, lock-free), and gc()
// merely ranks it oldest. The index exists for eviction order and stats,
// never for correctness.
//
// Read path: open, read, validate (magic, format version, key echo, codec
// rev, length, payload SHA-256). Any validation failure quarantines the
// file and reports a miss — a corrupt or truncated entry is recomputed,
// never served. No locks are taken: concurrent readers, writers and even
// concurrent sweeps sharing one DIR are safe because every mutation is a
// whole-file rename.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/journal.hpp"

namespace stob::exp {

/// Entry format version: the first header line of every cache entry. Bump
/// when the entry layout changes — old caches then quarantine-and-recompute
/// loudly instead of misreading (pinned by a golden test in test_cache).
inline constexpr std::uint32_t kCacheEntryVersion = 1;

class ResultCache {
 public:
  struct Stats {
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t quarantined = 0;  ///< corrupt entries moved aside
    std::uint64_t bytes_read = 0;   ///< payload bytes served from hits
    std::uint64_t bytes_written = 0;  ///< entry bytes committed by stores

    double hit_ratio() const {
      return probes == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes);
    }
  };

  struct GcReport {
    std::size_t entries_kept = 0;
    std::size_t entries_evicted = 0;
    std::size_t junk_removed = 0;  ///< tmp leftovers + quarantined files
    std::uint64_t bytes_kept = 0;
    std::uint64_t bytes_evicted = 0;
  };

  /// Open (creating if needed) a cache rooted at `dir`. `codec` is the
  /// job-codec payload version entries are written with; an entry recorded
  /// under a different codec rev is quarantined on load (the key already
  /// folds the codec in via cell_digest — this is belt and braces). Throws
  /// std::runtime_error when the directory tree cannot be created.
  explicit ResultCache(std::filesystem::path dir,
                       std::uint32_t codec = 0);

  /// Cache key for one cell: SHA-256 over the cell's content digest, the
  /// entry-format version, whether the payload carries a profiler capture,
  /// and the run's config salt (exp::run_config_salt). Pure function —
  /// jobs/timing/proc knobs never reach it.
  static std::string entry_key(std::string_view cell_digest, bool profiled,
                               std::string_view config_salt);

  /// Validated payload for `key`, or nullopt (miss). A present-but-invalid
  /// entry is moved to quarantine/ and reported as a miss. Lock-free and
  /// safe from any thread.
  std::optional<std::string> load(std::string_view key);

  /// Commit `payload` under `key` (atomic rename-in; see the commit
  /// protocol above). Best-effort: an I/O failure warns and returns false —
  /// a broken cache must never kill the sweep. Safe from any thread.
  bool store(std::string_view key, std::string_view payload);

  /// Evict oldest-first (index order; unindexed entries rank oldest) until
  /// the objects/ tree holds at most `max_total_bytes`, remove tmp/ and
  /// quarantine/ junk, and rewrite the index to the surviving set.
  GcReport gc(std::uint64_t max_total_bytes);

  Stats stats() const;
  /// One human line for stderr: "N/M hits (p%), ... " — the cache-hit
  /// ratio the CI gate parses.
  std::string stats_line() const;

  const std::filesystem::path& dir() const { return dir_; }
  std::filesystem::path entry_path(std::string_view key) const;

  // ---- format internals, public for the golden / crash-consistency tests
  std::string encode_entry(std::string_view key, std::string_view payload) const;
  /// Payload when `bytes` is a valid entry for `key`; otherwise nullopt
  /// with a one-word reason ("magic", "version", "key", "codec", "len",
  /// "sha256") in *why when given.
  std::optional<std::string> decode_entry(std::string_view bytes, std::string_view key,
                                          std::string* why = nullptr) const;
  /// Unique in-flight path for a commit of `key` (step 1 of the protocol).
  std::filesystem::path tmp_path(std::string_view key);
  /// Test hook: invoked between the tmp write and the rename — the
  /// SIGKILL-mid-commit crash-consistency test raises its signal here.
  std::function<void()> commit_hook_for_testing;

 private:
  void quarantine(const std::filesystem::path& path);

  std::filesystem::path dir_;
  std::uint32_t codec_ = 0;
  obs::Journal index_;
  std::mutex index_mu_;
  std::atomic<std::uint64_t> tmp_seq_{0};
  std::atomic<std::uint64_t> quarantine_seq_{0};

  mutable std::atomic<std::uint64_t> probes_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> stores_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
  mutable std::atomic<std::uint64_t> bytes_read_{0};
  mutable std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace stob::exp
