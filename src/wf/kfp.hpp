// k-FP website-fingerprinting attack (Hayes & Danezis) and its closed-world
// evaluation protocol, as used in Table 2 of the paper: a random forest over
// the k-FP feature set, evaluated with stratified cross-validation and
// reported as accuracy mean ± std.
//
// Two classification modes:
//  * forest vote (the "k-FP Random Forest accuracy" the paper tabulates),
//  * k-NN over leaf-id vectors (k-FP's original open-world mechanism),
// selectable via Config::use_knn.
//
// Training data lives in a contiguous FeatureMatrix; prediction and the
// leaf k-NN stage have batched entry points that the evaluation protocol
// uses. Batched and per-sample paths give identical results, and
// cross_validate(jobs > 1) is byte-identical to a serial run.
#pragma once

#include <cstdint>
#include <vector>

#include "wf/feature_matrix.hpp"
#include "wf/features.hpp"
#include "wf/random_forest.hpp"
#include "wf/trace.hpp"

namespace stob::wf {

class KFingerprint {
 public:
  struct Config {
    RandomForest::Config forest;
    bool use_knn = false;       ///< leaf-vector k-NN instead of forest vote
    std::size_t k_neighbors = 3;
  };

  KFingerprint() : KFingerprint(Config{}) {}
  explicit KFingerprint(Config cfg) : cfg_(cfg) {}

  /// Train on a labeled dataset (features are extracted internally).
  void fit(const Dataset& train);

  /// Train on pre-extracted features (row i is labels[i]'s feature vector).
  void fit(const FeatureMatrix& x, const std::vector<int>& labels);

  int predict(const Trace& trace) const;
  int predict(std::span<const double> features) const;

  /// Batched predict; out[i] corresponds to x.row(i). Identical to calling
  /// predict() per row.
  std::vector<int> predict_batch(const FeatureMatrix& x) const;

  const RandomForest& forest() const { return forest_; }

 private:
  int knn_select(std::span<const int> counts) const;
  int knn_predict(std::span<const double> features) const;

  Config cfg_;
  RandomForest forest_;
  int num_classes_ = 0;
  // k-NN mode: training-sample fingerprints, row-major n_train x trees
  // (RandomForest::leaf_batch layout).
  std::vector<std::uint32_t> train_leaves_;
  std::vector<int> train_labels_;
};

/// Square confusion matrix; entry (t, p) counts true class t predicted p.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes = 0)
      : classes_(classes), counts_(classes * classes, 0) {}

  void add(int truth, int predicted) {
    counts_[static_cast<std::size_t>(truth) * classes_ + static_cast<std::size_t>(predicted)] += 1;
  }
  std::uint64_t at(int truth, int predicted) const {
    return counts_[static_cast<std::size_t>(truth) * classes_ +
                   static_cast<std::size_t>(predicted)];
  }
  std::size_t classes() const { return classes_; }
  double accuracy() const;
  /// Merge another matrix of the same shape.
  void merge(const ConfusionMatrix& other);

  friend bool operator==(const ConfusionMatrix&, const ConfusionMatrix&) = default;

 private:
  std::size_t classes_;
  std::vector<std::uint64_t> counts_;
};

struct EvalResult {
  double mean_accuracy = 0.0;
  double std_accuracy = 0.0;
  std::vector<double> fold_accuracies;
  ConfusionMatrix confusion{0};

  friend bool operator==(const EvalResult&, const EvalResult&) = default;
};

/// Stratified k-fold cross-validation of k-FP on `data` (closed world).
/// Deterministic for a given seed; `jobs` parallelises folds without
/// changing any result byte.
EvalResult cross_validate(const Dataset& data, const KFingerprint::Config& cfg,
                          std::size_t folds = 5, std::uint64_t seed = 0x5EEDull,
                          std::size_t jobs = 1);

/// Same protocol on pre-extracted features (lets callers extract once and
/// evaluate many truncations/defenses cheaply).
EvalResult cross_validate(const FeatureMatrix& x, const std::vector<int>& labels,
                          const KFingerprint::Config& cfg, std::size_t folds = 5,
                          std::uint64_t seed = 0x5EEDull, std::size_t jobs = 1);

}  // namespace stob::wf
