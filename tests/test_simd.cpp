// Scalar vs dispatched kernel parity for the WF attack engine.
//
// Every SIMD kernel in wf/simd_kernels.hpp is exact by construction
// (compares, integer counting, independent subtractions, integer-valued
// sums), so this suite asserts EXPECT_EQ — bit-identical outputs, never
// EXPECT_NEAR. On an AVX2 machine these tests pit the vector paths against
// the scalar reference; on the forced-scalar CI leg (-DSTOB_SIMD=OFF or
// STOB_SIMD=off) both sides resolve to the scalar path and the suite
// degenerates to a self-consistency check, which is the intended behavior.
//
// Also pins the FeatureMatrix alignment contract the descent kernel
// depends on: 64-byte row starts and an 8-double-multiple stride.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"
#include "wf/feature_matrix.hpp"
#include "wf/forest_layout.hpp"
#include "wf/simd_kernels.hpp"

namespace {

using namespace stob;
using namespace stob::wf;

// ------------------------------------------------------------ test forest

/// Append a random complete tree of `depth` to `pool`, returning its root
/// index. Kid indices are absolute (pool-wide), matching the real flattened
/// forest layout.
std::uint32_t build_tree(std::vector<FlatNode>& pool, Rng& rng, int depth, int features) {
  const auto idx = static_cast<std::uint32_t>(pool.size());
  pool.push_back({});
  if (depth == 0) {
    pool[idx].feature = -1;
    pool[idx].kid[0] = idx;      // distribution offset (unused by descent)
    pool[idx].kid[1] = idx % 7;  // majority class (unused by descent)
    return idx;
  }
  pool[idx].feature = static_cast<std::int32_t>(rng.next() % features);
  pool[idx].threshold = rng.normal(0.0, 1.0);
  const std::uint32_t left = build_tree(pool, rng, depth - 1, features);
  const std::uint32_t right = build_tree(pool, rng, depth - 1, features);
  pool[idx].kid[0] = left;
  pool[idx].kid[1] = right;
  return idx;
}

TEST(SimdDispatch, LevelIsStableAndNamed) {
  const simd::Level first = simd::active_level();
  EXPECT_EQ(first, simd::active_level());
  EXPECT_NE(simd::level_name(first), nullptr);
}

TEST(SimdKernels, DescendBlockParity) {
  Rng rng(0xDE5CEull);
  const int features = 17;
  std::vector<FlatNode> pool;
  std::vector<std::uint32_t> roots;
  for (int depth : {0, 1, 3, 6}) roots.push_back(build_tree(pool, rng, depth, features));

  // Block sizes around the 8-lane AVX2 width, including a ragged tail.
  for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{16}, std::size_t{23}}) {
    const std::size_t stride = 24;  // padded: stride > features
    std::vector<double> x(m * stride, 0.0);
    for (double& v : x) v = rng.normal(0.0, 1.0);
    // NaN features must descend identically (to kid[1]) in both paths.
    if (m > 2) x[1 * stride + 3] = std::numeric_limits<double>::quiet_NaN();
    for (std::uint32_t root : roots) {
      std::vector<std::uint32_t> ref(m, 0), got(m, 1);
      kernels::descend_block_scalar(pool.data(), root, x.data(), stride, m, ref.data());
      kernels::descend_block(pool.data(), root, x.data(), stride, m, got.data());
      for (std::size_t r = 0; r < m; ++r) {
        EXPECT_EQ(ref[r], got[r]) << "m=" << m << " root=" << root << " row=" << r;
        EXPECT_EQ(pool[ref[r]].feature, -1) << "descent must end on a leaf";
      }
    }
  }
}

TEST(SimdKernels, DescendThresholdTieParity) {
  // x == threshold exactly: both paths must take the `<=` branch.
  std::vector<FlatNode> pool(3);
  pool[0].feature = 0;
  pool[0].threshold = 1.25;  // exactly representable
  pool[0].kid[0] = 1;
  pool[0].kid[1] = 2;
  pool[1].feature = -1;
  pool[2].feature = -1;
  const double xs[] = {1.25, std::nextafter(1.25, 2.0), std::nextafter(1.25, 0.0)};
  for (double v : xs) {
    std::uint32_t ref = 9, got = 7;
    kernels::descend_block_scalar(pool.data(), 0, &v, 1, 1, &ref);
    kernels::descend_block(pool.data(), 0, &v, 1, 1, &got);
    EXPECT_EQ(ref, got) << "x=" << v;
  }
}

TEST(SimdKernels, LeafMatchBlockParity) {
  Rng rng(0x1EAFull);
  for (std::size_t trees : {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{31},
                            std::size_t{32}, std::size_t{100}}) {
    for (std::size_t n_train : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      std::vector<std::uint32_t> train(n_train * trees);
      std::vector<std::uint32_t> query(trees);
      // Small id range so matches actually occur.
      for (auto& v : train) v = static_cast<std::uint32_t>(rng.next() % 4);
      for (auto& v : query) v = static_cast<std::uint32_t>(rng.next() % 4);
      std::vector<int> ref(n_train, -1), got(n_train, -2);
      kernels::leaf_match_block_scalar(train.data(), n_train, trees, query.data(), ref.data());
      kernels::leaf_match_block(train.data(), n_train, trees, query.data(), got.data());
      EXPECT_EQ(ref, got) << "trees=" << trees << " n_train=" << n_train;
    }
  }
}

TEST(SimdKernels, FeatureScanParity) {
  Rng rng(0xFEA75ull);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
                        std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{33},
                        std::size_t{1000}}) {
    std::vector<double> xs(n);
    for (double& v : xs) v = std::floor(rng.normal(600.0, 500.0));
    // Plant exact boundary values: count_gt is strict, band edges half-open.
    if (n > 4) {
      xs[0] = 5.0;
      xs[1] = 600.0;
      xs[2] = 1400.0;
      xs[3] = -0.0;
    }

    std::vector<double> dref(n > 0 ? n - 1 : 0, -1.0), dgot(n > 0 ? n - 1 : 0, -2.0);
    kernels::pair_diffs_scalar(xs.data(), n, dref.data());
    kernels::pair_diffs(xs.data(), n, dgot.data());
    EXPECT_EQ(dref, dgot) << "pair_diffs n=" << n;

    for (double thr : {5.0, 600.0, -1.0}) {
      EXPECT_EQ(kernels::count_gt_scalar(xs.data(), n, thr), kernels::count_gt(xs.data(), n, thr))
          << "count_gt n=" << n << " thr=" << thr;
    }

    EXPECT_EQ(kernels::sum_ints_scalar(xs.data(), n), kernels::sum_ints(xs.data(), n))
        << "sum_ints n=" << n;

    double b0 = -1, m0 = -1, a0 = -1, b1 = -2, m1 = -2, a1 = -2;
    kernels::band_counts_scalar(xs.data(), n, 600.0, 1400.0, &b0, &m0, &a0);
    kernels::band_counts(xs.data(), n, 600.0, 1400.0, &b1, &m1, &a1);
    EXPECT_EQ(b0, b1) << "band below n=" << n;
    EXPECT_EQ(m0, m1) << "band mid n=" << n;
    EXPECT_EQ(a0, a1) << "band above n=" << n;
    EXPECT_EQ(b0 + m0 + a0, static_cast<double>(n));
  }
}

// ------------------------------------------------ FeatureMatrix alignment

TEST(FeatureMatrixAlignment, RowsStartOnCacheLines) {
  for (std::size_t cols : {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{150},
                           std::size_t{175}}) {
    FeatureMatrix x(5, cols);
    EXPECT_EQ(x.row_stride() % 8, 0u) << "stride must be a whole AVX-512 vector of doubles";
    EXPECT_GE(x.row_stride(), cols);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto addr = reinterpret_cast<std::uintptr_t>(x.row(r).data());
      EXPECT_EQ(addr % FeatureMatrix::kRowAlign, 0u) << "cols=" << cols << " row=" << r;
    }
    // Padding lanes stay zero so raw-storage hashing is deterministic.
    if (x.row_stride() > cols) {
      const double* raw = x.data();
      for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = cols; c < x.row_stride(); ++c) {
          EXPECT_EQ(raw[r * x.row_stride() + c], 0.0);
        }
      }
    }
  }
}

TEST(FeatureMatrixAlignment, AppendGrowsKeepAlignment) {
  FeatureMatrix x;
  std::vector<double> row(11, 1.5);
  for (int i = 0; i < 100; ++i) x.append_row(row);
  EXPECT_EQ(x.rows(), 100u);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(x.row(r).data()) % FeatureMatrix::kRowAlign, 0u);
  }
}

}  // namespace
