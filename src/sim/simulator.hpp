// Discrete-event simulation core.
//
// The whole network stack runs on top of this: every asynchronous activity
// (link serialisation, qdisc dequeue, TCP timers, application think time) is
// an event scheduled at an absolute TimePoint. Events at the same time fire
// in scheduling order (FIFO tie-break), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace stob::sim {

/// Handle to a scheduled event; allows cancellation (e.g. TCP retransmission
/// timers that are rearmed on every ACK).
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Schedule `cb` to run at absolute time `when` (clamped to now if in the
  /// past). Returns a handle usable with cancel().
  EventId schedule_at(TimePoint when, Callback cb);

  /// Schedule `cb` to run `delay` from now.
  EventId schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op (timers race with the events that disarm them).
  void cancel(EventId id);

  /// Run until the queue drains or `until`, whichever first.
  /// Returns the number of events executed.
  std::size_t run(TimePoint until = TimePoint::max());

  /// Run at most one event. Returns false if the queue is empty or the next
  /// event is after `until`.
  bool step(TimePoint until = TimePoint::max());

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return queue_.size() - cancelled_in_queue_; }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Total events cancelled since construction (cancellation churn — mostly
  /// transport timers rearmed before firing).
  std::uint64_t cancelled() const { return cancelled_total_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;  // FIFO tie-break and cancellation key
    Callback cb;

    // Min-heap on (when, seq) via greater-than for priority_queue.
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::size_t cancelled_in_queue_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace stob::sim
