#include "defenses/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "defenses/policy.hpp"

namespace stob::defenses {

// ------------------------------------------------------------ FrontDefense

wf::Trace FrontDefense::apply(const wf::Trace& trace, Rng& rng) const {
  wf::Trace out = trace;
  // FRONT front-loads dummies on a Rayleigh schedule whose window was tuned
  // for Tor page loads (seconds). Our direct page loads finish in hundreds
  // of milliseconds, so the sampled window is scaled into the page duration
  // — keeping the *shape* (dense early cover, thinning tail) while padding
  // only while there is traffic to hide; stragglers past the page end are
  // dropped rather than extending the connection.
  const double page_end = std::max(trace.duration(), 0.05);
  const double scale = page_end / cfg_.window_max;
  auto inject = [&](int direction, int max_dummies) {
    const auto n = static_cast<int>(rng.uniform_int(1, max_dummies));
    const double window = rng.uniform(cfg_.window_min, cfg_.window_max) * scale;
    for (int i = 0; i < n; ++i) {
      const double t = rng.rayleigh(window / 2.0);
      if (t <= page_end) out.add(t, direction, cfg_.dummy_size);
    }
  };
  inject(+1, cfg_.client_dummies_max);
  inject(-1, cfg_.server_dummies_max);
  out.normalize();
  return out;
}

// ------------------------------------------------------------ BufloDefense

wf::Trace BufloDefense::apply(const wf::Trace& trace, Rng& /*rng*/) const {
  // Per direction: real packets occupy the next slots of a fixed-interval
  // schedule; empty slots up to max(data end, min_duration) become dummies.
  wf::Trace out;
  for (int dir : {+1, -1}) {
    std::size_t queued = 0;  // real packets waiting for a slot
    std::size_t next_real = 0;
    std::vector<double> real_times;
    for (const wf::PacketRecord& p : trace.packets()) {
      if (p.direction == dir) real_times.push_back(p.time);
    }
    const double data_end = real_times.empty() ? 0.0 : real_times.back();
    const double end = std::max(cfg_.min_duration, data_end);
    for (double t = 0.0; t <= end || next_real < real_times.size(); t += cfg_.interval) {
      // Count real packets that have arrived by this slot.
      while (next_real + queued < real_times.size() &&
             real_times[next_real + queued] <= t) {
        ++queued;
      }
      if (queued > 0) {
        --queued;
        ++next_real;
        out.add(t, dir, cfg_.packet_size);
      } else {
        out.add(t, dir, cfg_.packet_size);  // dummy fills the slot
      }
      if (t > end + 120.0) break;  // safety against pathological schedules
    }
  }
  out.normalize();
  return out;
}

// ---------------------------------------------------------- TamarawDefense

wf::Trace TamarawDefense::apply(const wf::Trace& trace, Rng& /*rng*/) const {
  wf::Trace out;
  for (int dir : {+1, -1}) {
    const double interval = dir > 0 ? cfg_.interval_out : cfg_.interval_in;
    std::vector<double> real_times;
    for (const wf::PacketRecord& p : trace.packets()) {
      if (p.direction == dir) real_times.push_back(p.time);
    }
    // Schedule real packets onto the grid.
    std::size_t sent = 0;
    std::size_t count = 0;
    double t = 0.0;
    std::size_t arrived = 0;
    while (sent < real_times.size()) {
      while (arrived < real_times.size() && real_times[arrived] <= t) ++arrived;
      out.add(t, dir, cfg_.packet_size);  // slot carries data if any arrived
      ++count;
      if (arrived > sent) ++sent;
      t += interval;
    }
    // Pad the per-direction count up to a multiple of L.
    const auto mult = static_cast<std::size_t>(cfg_.pad_multiple);
    const std::size_t target = ((count + mult - 1) / mult) * mult;
    for (; count < target; ++count, t += interval) out.add(t, dir, cfg_.packet_size);
  }
  out.normalize();
  return out;
}

// ----------------------------------------------------------- WtfPadDefense

WtfPadDefense::WtfPadDefense(Config cfg)
    : cfg_(cfg), inter_dummy_(0.0005, 0.05, 32) {
  // Default burst-mode histogram: short inter-dummy gaps, geometric-ish
  // token decay (more tokens on short gaps).
  for (std::size_t b = 0; b < inter_dummy_.bin_count(); ++b) {
    const double v = 0.0005 + (0.05 - 0.0005) * (static_cast<double>(b) + 0.5) / 32.0;
    inter_dummy_.add(v, 32 - static_cast<std::uint64_t>(b));
  }
}

wf::Trace WtfPadDefense::apply(const wf::Trace& trace, Rng& rng) const {
  wf::Trace out = trace;
  const auto& pkts = trace.packets();
  core::Histogram hist = inter_dummy_;  // local copy; sampling mutates tokens
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    const double gap = pkts[i].time - pkts[i - 1].time;
    if (gap <= cfg_.gap_threshold) continue;
    // Unusually long silence: fill the start of the gap with a short dummy
    // burst in the direction of the preceding packet (adaptive padding).
    double t = pkts[i - 1].time;
    for (int d = 0; d < cfg_.max_dummies_per_gap; ++d) {
      t += hist.sample_and_remove(rng);
      if (t >= pkts[i].time) break;
      out.add(t, pkts[i - 1].direction, cfg_.dummy_size);
    }
  }
  out.normalize();
  return out;
}

// -------------------------------------------------------- RegulatorDefense

wf::Trace RegulatorDefense::apply(const wf::Trace& trace, Rng& /*rng*/) const {
  // Downloads ride a decaying surge schedule; a new surge starts whenever
  // the backlog of undelivered download packets exceeds the threshold
  // fraction of what the schedule has emitted so far.
  std::vector<double> down_times;
  for (const wf::PacketRecord& p : trace.packets()) {
    if (p.direction < 0) down_times.push_back(p.time);
  }
  wf::Trace out;
  double surge_start = 0.0;
  std::size_t delivered = 0;
  std::size_t emitted = 0;
  double t = 0.0;
  while (delivered < down_times.size() && t < down_times.back() + 60.0) {
    const double rate = cfg_.initial_rate * std::pow(cfg_.decay, t - surge_start);
    const double step = 1.0 / std::max(rate, 1.0);
    t += step;
    std::size_t arrived = 0;
    while (arrived + delivered < down_times.size() &&
           down_times[arrived + delivered] <= t) {
      ++arrived;
    }
    // Surge restart: backlog became large relative to the schedule.
    if (static_cast<double>(arrived) >
        cfg_.surge_threshold * std::max<double>(1.0, rate * 0.25)) {
      surge_start = t;
    }
    out.add(t, -1, cfg_.packet_size);
    ++emitted;
    if (arrived > 0) ++delivered;
    // Upload coupling: one padded upload packet per `upload_ratio` downloads.
    if (emitted % std::max<std::size_t>(1, static_cast<std::size_t>(cfg_.upload_ratio)) == 0) {
      out.add(t, +1, cfg_.packet_size);
    }
  }
  out.normalize();
  return out;
}

// ---------------------------------------------------- PadToConstantDefense

wf::Trace PadToConstantDefense::apply(const wf::Trace& trace, Rng& /*rng*/) const {
  wf::Trace out;
  for (const wf::PacketRecord& p : trace.packets()) {
    std::int64_t size = p.size;
    if (!cfg_.incoming_only || p.direction < 0) {
      size = ((size + cfg_.quantum - 1) / cfg_.quantum) * cfg_.quantum;
    }
    out.add(p.time, p.direction, size);
  }
  out.normalize();
  return out;
}

std::vector<std::unique_ptr<TraceDefense>> all_defenses() {
  std::vector<std::unique_ptr<TraceDefense>> v;
  v.push_back(std::make_unique<SplitDefense>());
  v.push_back(std::make_unique<DelayDefense>());
  v.push_back(std::make_unique<CombinedDefense>());
  v.push_back(std::make_unique<FrontDefense>());
  v.push_back(std::make_unique<BufloDefense>());
  v.push_back(std::make_unique<TamarawDefense>());
  v.push_back(std::make_unique<WtfPadDefense>());
  v.push_back(std::make_unique<RegulatorDefense>());
  v.push_back(std::make_unique<PadToConstantDefense>());
  // Streaming-policy ports (defenses/policy.hpp): the *full* RegulaTor and
  // adaptive-padding WTF-PAD state machines, lowercase to distinguish them
  // from the capitalised trace-level sketches above.
  v.push_back(make_policy_defense("regulator"));
  v.push_back(make_policy_defense("wtfpad"));
  return v;
}

}  // namespace stob::defenses
