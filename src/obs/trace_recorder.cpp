#include "obs/trace_recorder.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>

namespace stob::obs {

namespace detail {
thread_local TraceRecorder* g_recorder = nullptr;
thread_local StackListener* g_listener = nullptr;
}  // namespace detail

void install_recorder(TraceRecorder* r) noexcept { detail::g_recorder = r; }

void install_listener(StackListener* l) noexcept { detail::g_listener = l; }

std::string_view to_string(Layer layer) {
  switch (layer) {
    case Layer::App: return "app";
    case Layer::Tls: return "tls";
    case Layer::Tcp: return "tcp";
    case Layer::Quic: return "quic";
    case Layer::Qdisc: return "qdisc";
    case Layer::Nic: return "nic";
    case Layer::Wire: return "wire";
  }
  return "?";
}

std::string_view to_string(Direction dir) { return dir == Direction::Tx ? "tx" : "rx"; }

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Send: return "send";
    case EventKind::Receive: return "recv";
    case EventKind::Retransmit: return "retx";
    case EventKind::Enqueue: return "enq";
    case EventKind::Dequeue: return "deq";
    case EventKind::Drop: return "drop";
  }
  return "?";
}

namespace {

template <typename Enum>
std::optional<Enum> parse_enum(std::string_view s, std::initializer_list<Enum> values) {
  for (Enum v : values) {
    if (to_string(v) == s) return v;
  }
  return std::nullopt;
}

template <typename Int>
std::optional<Int> parse_int(std::string_view s) {
  Int v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) { buf_.resize(capacity == 0 ? 1 : capacity); }

void TraceRecorder::record(const PacketEvent& ev) {
  buf_[head_] = ev;
  head_ = (head_ + 1) % buf_.size();
  ++total_;
}

std::size_t TraceRecorder::size() const {
  return total_ < buf_.size() ? static_cast<std::size_t>(total_) : buf_.size();
}

std::uint64_t TraceRecorder::overwritten() const {
  return total_ < buf_.size() ? 0 : total_ - buf_.size();
}

void TraceRecorder::clear() {
  head_ = 0;
  total_ = 0;
}

std::vector<PacketEvent> TraceRecorder::events() const {
  std::vector<PacketEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest event: head_ when wrapped, index 0 otherwise.
  const std::size_t start = total_ < buf_.size() ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) out.push_back(buf_[(start + i) % buf_.size()]);
  return out;
}

csv::Row TraceRecorder::csv_header() {
  return {"time_ns", "layer",    "dir",      "kind",  "src_host", "dst_host",
          "src_port", "dst_port", "proto",    "bytes", "seq",      "packet_id"};
}

csv::Row TraceRecorder::to_csv_row(const PacketEvent& ev) {
  return {std::to_string(ev.time.ns()),
          std::string(to_string(ev.layer)),
          std::string(to_string(ev.dir)),
          std::string(to_string(ev.kind)),
          std::to_string(ev.flow.src_host),
          std::to_string(ev.flow.dst_host),
          std::to_string(ev.flow.src_port),
          std::to_string(ev.flow.dst_port),
          ev.flow.proto == net::Proto::Tcp ? "tcp" : "udp",
          std::to_string(ev.bytes),
          std::to_string(ev.seq),
          std::to_string(ev.packet_id)};
}

std::optional<PacketEvent> TraceRecorder::from_csv_row(const csv::Row& row) {
  if (row.size() != csv_header().size()) return std::nullopt;
  PacketEvent ev;
  const auto time = parse_int<std::int64_t>(row[0]);
  const auto layer = parse_enum<Layer>(
      row[1], {Layer::App, Layer::Tls, Layer::Tcp, Layer::Quic, Layer::Qdisc, Layer::Nic,
               Layer::Wire});
  const auto dir = parse_enum<Direction>(row[2], {Direction::Tx, Direction::Rx});
  const auto kind = parse_enum<EventKind>(
      row[3], {EventKind::Send, EventKind::Receive, EventKind::Retransmit, EventKind::Enqueue,
               EventKind::Dequeue, EventKind::Drop});
  const auto src_host = parse_int<net::HostId>(row[4]);
  const auto dst_host = parse_int<net::HostId>(row[5]);
  const auto src_port = parse_int<net::Port>(row[6]);
  const auto dst_port = parse_int<net::Port>(row[7]);
  const auto bytes = parse_int<std::int64_t>(row[9]);
  const auto seq = parse_int<std::uint64_t>(row[10]);
  const auto packet_id = parse_int<std::uint64_t>(row[11]);
  if (!time || !layer || !dir || !kind || !src_host || !dst_host || !src_port || !dst_port ||
      !bytes || !seq || !packet_id || (row[8] != "tcp" && row[8] != "udp")) {
    return std::nullopt;
  }
  ev.time = TimePoint(*time);
  ev.layer = *layer;
  ev.dir = *dir;
  ev.kind = *kind;
  ev.flow = {*src_host, *dst_host, *src_port, *dst_port,
             row[8] == "tcp" ? net::Proto::Tcp : net::Proto::Udp};
  ev.bytes = *bytes;
  ev.seq = *seq;
  ev.packet_id = *packet_id;
  return ev;
}

std::string TraceRecorder::to_json(const PacketEvent& ev) {
  std::string out;
  out.reserve(192);
  out += "{\"t_ns\":" + std::to_string(ev.time.ns());
  out += ",\"layer\":\"" + std::string(to_string(ev.layer)) + "\"";
  out += ",\"dir\":\"" + std::string(to_string(ev.dir)) + "\"";
  out += ",\"kind\":\"" + std::string(to_string(ev.kind)) + "\"";
  out += ",\"flow\":\"" + std::to_string(ev.flow.src_host) + ":" +
         std::to_string(ev.flow.src_port) + ">" + std::to_string(ev.flow.dst_host) + ":" +
         std::to_string(ev.flow.dst_port) +
         (ev.flow.proto == net::Proto::Tcp ? "/tcp" : "/udp") + "\"";
  out += ",\"bytes\":" + std::to_string(ev.bytes);
  out += ",\"seq\":" + std::to_string(ev.seq);
  out += ",\"pkt\":" + std::to_string(ev.packet_id);
  out += "}";
  return out;
}

void TraceRecorder::write_csv(const std::filesystem::path& path) const {
  std::vector<csv::Row> rows;
  rows.reserve(size() + 1);
  rows.push_back(csv_header());
  for (const PacketEvent& ev : events()) rows.push_back(to_csv_row(ev));
  csv::write_file(path, rows);
}

void TraceRecorder::write_jsonl(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  out << to_jsonl();
}

std::string TraceRecorder::to_jsonl() const {
  std::string out;
  out.reserve(size() * 160);
  for (const PacketEvent& ev : events()) {
    out += to_json(ev);
    out += '\n';
  }
  return out;
}

}  // namespace stob::obs
