// Convenience harness: two hosts connected by a duplex path, with the
// simulator owned by the harness. Used by tests, examples and the workload
// layer (client/server page loads, iperf-like transfers).
#pragma once

#include "net/path.hpp"
#include "sim/simulator.hpp"
#include "stack/host.hpp"

namespace stob::stack {

class HostPair {
 public:
  struct Config {
    net::DuplexPath::Config path =
        net::DuplexPath::symmetric(DataRate::mbps(100), Duration::millis(10));
    Host::Config client;
    Host::Config server;
  };

  HostPair() : HostPair(Config{}) {}

  explicit HostPair(Config cfg)
      : path_(sim_, cfg.path), client_(sim_, 1, cfg.client), server_(sim_, 2, cfg.server) {
    client_.attach_egress(path_.forward());
    server_.attach_egress(path_.backward());
    path_.forward().set_sink([this](net::Packet p) { server_.receive(std::move(p)); });
    path_.backward().set_sink([this](net::Packet p) { client_.receive(std::move(p)); });
  }

  sim::Simulator& sim() { return sim_; }
  Host& client() { return client_; }
  Host& server() { return server_; }
  net::DuplexPath& path() { return path_; }

  /// Run the simulation until quiescent or `until`.
  std::size_t run(TimePoint until = TimePoint::max()) { return sim_.run(until); }

 private:
  sim::Simulator sim_;
  net::DuplexPath path_;
  Host client_;
  Host server_;
};

}  // namespace stob::stack
