# Empty dependencies file for test_open_world.
# This may be replaced when dependencies are built.
