file(REMOVE_RECURSE
  "CMakeFiles/table2_kfp.dir/table2_kfp.cpp.o"
  "CMakeFiles/table2_kfp.dir/table2_kfp.cpp.o.d"
  "table2_kfp"
  "table2_kfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
