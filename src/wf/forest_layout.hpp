// Packed node layout of the flattened random forest, shared between
// RandomForest (which builds the pool) and the descent kernels in
// simd_kernels.cpp (which walk it, scalar or gather-based).
//
// One node is 24 bytes, so a descent step reads a single cache line and the
// AVX2 kernel can fetch any field of 8 nodes with one 32-bit-index gather
// (byte offset node*24 + field). Internal nodes (feature >= 0) use kid as
// absolute left/right child indices into the pool; leaves reuse the two
// slots as {distribution offset, majority class}.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stob::wf {

struct FlatNode {
  double threshold = 0.0;
  std::int32_t feature = -1;  // -1 marks a leaf
  std::uint32_t kid[2] = {0, 0};
};

// The AVX2 descent gathers fields at byte offset node*24 + {0, 8, 12} with
// 32-bit indices; both the size and the field offsets are load-bearing.
static_assert(sizeof(FlatNode) == 24, "descent kernels assume 24-byte packed nodes");
static_assert(offsetof(FlatNode, threshold) == 0);
static_assert(offsetof(FlatNode, feature) == 8);
static_assert(offsetof(FlatNode, kid) == 12);

}  // namespace stob::wf
