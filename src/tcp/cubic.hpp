// CUBIC congestion control (RFC 9438 style, simplified: no HyStart).
#pragma once

#include "tcp/congestion.hpp"

namespace stob::tcp {

class CubicCc final : public CongestionControl {
 public:
  explicit CubicCc(Bytes mss, Bytes initial_window = Bytes(0));

  void on_ack(const AckEvent& ev) override;
  void on_loss(TimePoint now) override;
  void on_rto(TimePoint now) override;
  Bytes cwnd() const override { return Bytes(cwnd_); }
  DataRate pacing_rate() const override;
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override { return "cubic"; }

 private:
  /// CUBIC window (in bytes) at time t after the last congestion event.
  double w_cubic(double t_sec) const;

  std::int64_t mss_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  Duration srtt_;
  Duration min_rtt_ = Duration::seconds(3600);

  // CUBIC state.
  double w_max_ = 0.0;          // window before the last reduction, bytes
  double k_ = 0.0;              // time to regrow to w_max, seconds
  TimePoint epoch_start_ = TimePoint::zero();
  bool epoch_valid_ = false;
  double w_est_ = 0.0;          // Reno-friendly estimate, bytes
};

}  // namespace stob::tcp
