// Deterministic adverse-network fault injection.
//
// net::Pipe models a clean link with at most i.i.d. loss; real paths burst,
// reorder, duplicate, corrupt, jitter, and change capacity mid-flow —
// exactly the conditions under which transport loss recovery and defense
// schedules interact worst. This layer attaches composable impairment
// models to a pipe through the net::FaultModel hook:
//
//   * Gilbert-Elliott bursty loss (two-state Markov chain, per packet),
//   * packet reordering (random hold of 1..depth quanta so later packets
//     overtake),
//   * duplication (the same packet delivered twice),
//   * payload corruption (delivered but dropped at the receiving host's
//     checksum, so the transport sees a loss the wire trace does not),
//   * delay jitter (order-preserving extra latency),
//   * bandwidth oscillation (the link rate squares between its base value
//     and a fraction of it),
//   * link flap (periodic blackout windows that drop everything in flight).
//
// All randomness flows from one seeded Rng per injector, so fault-injected
// runs stay byte-reproducible under the src/exp engine: same seed, same
// impairment decisions, for any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/path.hpp"
#include "net/pipe.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace stob::fault {

/// Two-state Markov (Gilbert-Elliott) loss: bursts of heavy loss in the
/// Bad state, near-clean Good state. Transition probabilities are applied
/// once per packet. Disabled while p_enter_bad == 0.
struct GilbertElliottConfig {
  double p_enter_bad = 0.0;  ///< P(Good -> Bad) per packet
  double p_exit_bad = 0.0;   ///< P(Bad -> Good) per packet
  double loss_good = 0.0;    ///< per-packet loss probability in Good
  double loss_bad = 0.0;     ///< per-packet loss probability in Bad

  bool enabled() const { return p_enter_bad > 0.0; }
};

/// With `probability`, hold a packet for uniform(1, depth) * hold so the
/// packets behind it arrive first (netem-style delay-swap reordering).
struct ReorderConfig {
  double probability = 0.0;
  int depth = 3;                      ///< maximum hold quanta
  Duration hold = Duration::millis(1);  ///< one hold quantum

  bool enabled() const { return probability > 0.0; }
};

struct DuplicateConfig {
  double probability = 0.0;
  bool enabled() const { return probability > 0.0; }
};

/// Corrupted packets are *delivered* (they occupy the wire and the rx path)
/// but the receiving host drops them at checksum validation, so corruption
/// reaches the transport as loss while staying visible to a wire observer.
struct CorruptConfig {
  double probability = 0.0;
  bool enabled() const { return probability > 0.0; }
};

/// Uniform extra one-way delay in [0, max]. Order-preserving: a jittered
/// packet is never scheduled to arrive before the packet ahead of it.
struct JitterConfig {
  Duration max;
  bool enabled() const { return max > Duration(); }
};

/// Square-wave bottleneck capacity: the pipe rate alternates between its
/// base value and base * low_mult every period/2, for the profile's active
/// window, then returns to base.
struct OscillationConfig {
  double low_mult = 0.0;  ///< 0 disables; e.g. 0.25 = dips to a quarter rate
  Duration period = Duration::seconds(2);

  bool enabled() const { return low_mult > 0.0; }
};

/// Periodic blackout: the link repeats `up` available / `down` dead. While
/// down every packet finishing serialisation is discarded (the sender's
/// NIC still frees normally). Pure function of time, so no timer events.
struct FlapConfig {
  Duration up;
  Duration down;

  bool enabled() const { return down > Duration(); }
};

/// One direction's complete impairment recipe.
struct Profile {
  std::string name = "clean";
  double iid_loss = 0.0;  ///< independent per-packet loss, on top of GE
  GilbertElliottConfig bursty;
  ReorderConfig reorder;
  DuplicateConfig duplicate;
  CorruptConfig corrupt;
  JitterConfig jitter;
  OscillationConfig oscillation;
  FlapConfig flap;
  /// Horizon for the time-driven impairments (oscillation, flap): after
  /// this much time from attach the link stays up at its base rate, so a
  /// simulation's event queue always drains.
  Duration active_for = Duration::seconds(90);

  bool any() const {
    return iid_loss > 0.0 || bursty.enabled() || reorder.enabled() || duplicate.enabled() ||
           corrupt.enabled() || jitter.enabled() || oscillation.enabled() || flap.enabled();
  }
};

/// Per-direction profiles for a DuplexPath (forward = client -> server).
struct PathProfile {
  std::string name = "clean";
  Profile forward;
  Profile backward;

  bool any() const { return forward.any() || backward.any(); }

  static PathProfile symmetric(Profile p) {
    PathProfile pp;
    pp.name = p.name;
    pp.forward = p;
    pp.backward = p;
    return pp;
  }
};

// ------------------------------------------------------------- scenarios

Profile clean();
Profile bursty_loss();
Profile reordering();
Profile duplication();
Profile corruption();
Profile jitter_heavy();
Profile bandwidth_oscillation();
Profile link_flap();
/// Everything at once, each impairment milder: the "bad Wi-Fi" path.
Profile adverse_mix();

/// The chaos-sweep scenario matrix: symmetric PathProfiles for every named
/// scenario above, clean first.
std::vector<PathProfile> all_scenarios();

// -------------------------------------------------------------- injector

/// Attaches a Profile to one net::Pipe via the FaultModel hook and drives
/// every impairment decision from its own seeded Rng. Detaches itself on
/// destruction (must be destroyed before the pipe).
class FaultInjector final : public net::FaultModel {
 public:
  struct Stats {
    std::uint64_t inspected = 0;   ///< packets that finished serialising
    std::uint64_t lost = 0;        ///< GE/i.i.d. losses
    std::uint64_t flap_lost = 0;   ///< discarded during a blackout window
    std::uint64_t corrupted = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t delivered = 0;   ///< originals handed to Pipe::deliver
  };

  FaultInjector(sim::Simulator& sim, net::Pipe& pipe, Profile profile, Rng rng);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void on_transmitted(net::Pipe& pipe, net::Packet p) override;

  const Profile& profile() const { return profile_; }
  const Stats& stats() const { return stats_; }
  /// True while the flap model has the link blacked out at `now`.
  bool link_down(TimePoint now) const;

 private:
  void schedule_oscillation();

  sim::Simulator& sim_;
  net::Pipe& pipe_;
  Profile profile_;
  Rng rng_;
  Stats stats_;
  TimePoint attached_at_;
  DataRate base_rate_;
  bool ge_bad_ = false;                 // Gilbert-Elliott state
  bool rate_low_ = false;               // oscillation state
  TimePoint last_inorder_arrival_;      // jitter order-preservation clamp
};

/// Fault injectors for both directions of a DuplexPath. Forks the supplied
/// Rng once per direction (forward first) so a PathProfile is one
/// deterministic function of (profile, seed).
class PathFaults {
 public:
  PathFaults(sim::Simulator& sim, net::DuplexPath& path, const PathProfile& profile, Rng rng);

  FaultInjector& forward() { return forward_; }
  FaultInjector& backward() { return backward_; }
  const FaultInjector& forward() const { return forward_; }
  const FaultInjector& backward() const { return backward_; }

 private:
  FaultInjector forward_;
  FaultInjector backward_;
};

}  // namespace stob::fault
