// TCP NewReno congestion control (RFC 5681/6582 behaviour, byte-counting).
#pragma once

#include "tcp/congestion.hpp"

namespace stob::tcp {

class RenoCc final : public CongestionControl {
 public:
  explicit RenoCc(Bytes mss, Bytes initial_window = Bytes(0));

  void on_ack(const AckEvent& ev) override;
  void on_loss(TimePoint now) override;
  void on_rto(TimePoint now) override;
  Bytes cwnd() const override { return Bytes(cwnd_); }
  DataRate pacing_rate() const override;
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override { return "reno"; }

  Bytes ssthresh() const { return Bytes(ssthresh_); }

 private:
  std::int64_t mss_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  Duration srtt_;
  Duration min_rtt_ = Duration::seconds(3600);
};

}  // namespace stob::tcp
