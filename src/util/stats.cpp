#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stob::stats {

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  // std::clamp with a NaN p is UB, and a NaN rank cast to size_t is UB too;
  // make the convention explicit: a non-finite p propagates NaN.
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  // lo == hi at p == 100 (and for single-element inputs); the blend below
  // then returns xs[lo] exactly, with no 0 * inf pitfalls since frac == 0.
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double iqr(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());  // one sort for both quartiles
  return percentile_sorted(sorted, 75.0) - percentile_sorted(sorted, 25.0);
}

std::vector<std::size_t> iqr_inlier_indices(std::span<const double> xs, double k) {
  std::vector<std::size_t> keep;
  if (xs.empty()) return keep;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double q1 = percentile_sorted(sorted, 25.0);
  const double q3 = percentile_sorted(sorted, 75.0);
  const double fence = k * (q3 - q1);
  const double lo = q1 - fence;
  const double hi = q3 + fence;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] >= lo && xs[i] <= hi) keep.push_back(i);
  }
  return keep;
}

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  n_ += other.n_;
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace stob::stats
