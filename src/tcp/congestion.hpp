// Congestion-control interface shared by TCP and the QUIC-lite transport.
//
// The connection feeds the controller ACK/loss events (with RTT and
// delivery-rate samples) and reads back a congestion window and a pacing
// rate. The pacing rate is what Stob's departure-time control must respect
// (§4.2, §5.1 of the paper).
#pragma once

#include <memory>
#include <string>

#include "util/units.hpp"

namespace stob::tcp {

struct AckEvent {
  TimePoint now;
  Bytes newly_acked;          ///< bytes cumulatively acknowledged by this ACK
  Duration rtt_sample;        ///< zero if no valid sample (retransmitted seg)
  Duration srtt;              ///< smoothed RTT after incorporating the sample
  DataRate delivery_rate;     ///< rate sample for this ACK (0 if unknown)
  Bytes inflight;             ///< bytes in flight after this ACK
  bool is_app_limited = false;///< the sampled segment was sent while app-limited
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ev) = 0;

  /// Loss detected by duplicate ACKs (fast retransmit).
  virtual void on_loss(TimePoint now) = 0;

  /// Retransmission timeout.
  virtual void on_rto(TimePoint now) = 0;

  virtual Bytes cwnd() const = 0;

  /// Pacing rate the flow should not exceed; zero disables pacing.
  virtual DataRate pacing_rate() const = 0;

  virtual bool in_slow_start() const = 0;
  virtual std::string name() const = 0;
};

/// Factory: "reno", "cubic" or "bbr". Throws std::invalid_argument on an
/// unknown name. `mss` sets the window quantum; `initial_window` overrides
/// the default 10*MSS initial congestion window (0 keeps the default).
std::unique_ptr<CongestionControl> make_congestion_control(const std::string& name, Bytes mss,
                                                           Bytes initial_window = Bytes(0));

}  // namespace stob::tcp
