// Adverse-network walkthrough: an asymmetric access path with different
// impairments per direction, a TCP transfer riding over it, and the runtime
// stack-invariant checker auditing every event.
//
//  1. Build an ADSL-shaped asymmetric path (thin/slow uplink, fat/quick
//     downlink) with DuplexPath::asymmetric.
//  2. Attach per-direction fault profiles: the uplink suffers bursty
//     Gilbert-Elliott loss, the downlink jitters and occasionally corrupts
//     payloads (dropped at the client's checksum validation).
//  3. Run a bulk download and report what the fault layer did, what the
//     transport recovered from, and the checker's verdict.
//
// Build & run:   ./build/examples/adverse_network
#include <cstdio>
#include <memory>

#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "obs/trace_recorder.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"

using namespace stob;

int main() {
  // --- 1. Asymmetric path: 5 Mb/s / 15 ms up, 50 Mb/s / 5 ms down. ---------
  stack::HostPair::Config net_cfg;
  net_cfg.path = net::DuplexPath::asymmetric(DataRate::mbps(5), Duration::millis(15),
                                             DataRate::mbps(50), Duration::millis(5));
  stack::HostPair net(net_cfg);

  // --- 2. Per-direction impairments. ---------------------------------------
  fault::PathProfile profile;
  profile.name = "adsl-adverse";
  profile.forward.name = "bursty-uplink";
  profile.forward.bursty = {0.02, 0.30, 0.0005, 0.25};
  profile.backward.name = "noisy-downlink";
  profile.backward.jitter = {Duration::millis(4)};
  profile.backward.corrupt = {0.01};
  fault::PathFaults faults(net.sim(), net.path(), profile, Rng(7));

  // --- 3. Armed checker + a bulk download. ---------------------------------
  fault::StackInvariantChecker checker;
  obs::ScopedListener audit(checker);

  tcp::TcpListener listener(net.server(), 80, tcp::TcpConnection::Config{});
  tcp::TcpConnection* server_conn = nullptr;
  listener.set_accept_callback([&server_conn](tcp::TcpConnection& c) {
    server_conn = &c;
    // The server answers every request byte with 500 response bytes.
    c.on_data = [&c](Bytes n) { c.send(Bytes(n.count() * 500)); };
  });
  tcp::TcpConnection client(net.client(), tcp::TcpConnection::Config{});
  Bytes downloaded;
  TimePoint finished;
  client.on_data = [&](Bytes n) {
    downloaded += n;
    finished = net.sim().now();
  };
  client.on_connected = [&] { client.send(Bytes(2000)); };  // ~1 MB response
  client.connect(2, 80);
  net.run(TimePoint(Duration::seconds(60).ns()));

  std::printf("downloaded %lld bytes in %.2f s\n",
              static_cast<long long>(downloaded.count()), finished.sec());
  const fault::FaultInjector::Stats& up = faults.forward().stats();
  const fault::FaultInjector::Stats& down = faults.backward().stats();
  std::printf("uplink   (%s): %llu packets, %llu lost in bursts\n",
              profile.forward.name.c_str(), static_cast<unsigned long long>(up.inspected),
              static_cast<unsigned long long>(up.lost));
  std::printf("downlink (%s): %llu packets, %llu corrupted, %llu jittered-in-order\n",
              profile.backward.name.c_str(), static_cast<unsigned long long>(down.inspected),
              static_cast<unsigned long long>(down.corrupted),
              static_cast<unsigned long long>(down.delivered));
  std::printf("client checksum drops: %llu, server retransmissions: %llu\n",
              static_cast<unsigned long long>(net.client().checksum_drops()),
              static_cast<unsigned long long>(
                  server_conn != nullptr ? server_conn->stats().retransmissions : 0));
  std::printf("stack invariants: %llu checks, %llu violations\n",
              static_cast<unsigned long long>(checker.checks()),
              static_cast<unsigned long long>(checker.violations()));
  if (checker.violations() > 0) {
    std::printf("%s\n", checker.first_report().c_str());
    return 1;
  }
  return 0;
}
