#include "wf/kfp.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "exp/worker_pool.hpp"
#include "obs/prof.hpp"
#include "util/stats.hpp"
#include "wf/leaf_knn.hpp"

namespace stob::wf {

void KFingerprint::fit(const Dataset& train) {
  fit(kfp_features(train), train.labels());
}

void KFingerprint::fit(const FeatureMatrix& x, const std::vector<int>& labels) {
  if (x.rows() != labels.size() || x.empty()) {
    throw std::invalid_argument("KFingerprint::fit: rows/labels mismatch or empty");
  }
  obs::ProfSpan span("wf.fit");
  num_classes_ = *std::max_element(labels.begin(), labels.end()) + 1;
  TrainView view{&x, labels, num_classes_};
  forest_ = RandomForest(cfg_.forest);
  forest_.fit(view);
  train_leaves_.clear();
  train_labels_.clear();
  if (cfg_.use_knn) {
    obs::ProfSpan leaf_span("wf.leaf_index");
    train_leaves_ = forest_.leaf_batch(x);
    train_labels_ = labels;
  }
}

int KFingerprint::predict(const Trace& trace) const { return predict(kfp_features(trace)); }

int KFingerprint::predict(std::span<const double> features) const {
  if (!forest_.trained()) throw std::logic_error("KFingerprint::predict before fit");
  return cfg_.use_knn ? knn_predict(features) : forest_.predict(features);
}

/// Neighbour selection over precomputed leaf-agreement counts. Verbatim the
/// historical per-sample logic (scored vector in train order, partial_sort
/// on matches, map-ordered vote) so batched and per-sample paths pick the
/// same neighbours even on ties.
int KFingerprint::knn_select(std::span<const int> counts) const {
  std::vector<std::pair<int, int>> scored;  // (matches, label)
  scored.reserve(train_labels_.size());
  for (std::size_t i = 0; i < train_labels_.size(); ++i) {
    scored.emplace_back(counts[i], train_labels_[i]);
  }
  const std::size_t k = std::min(cfg_.k_neighbors, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
  std::map<int, int> votes;
  for (std::size_t i = 0; i < k; ++i) votes[scored[i].second] += 1;
  return std::max_element(votes.begin(), votes.end(), [](const auto& a, const auto& b) {
           return a.second < b.second;
         })->first;
}

int KFingerprint::knn_predict(std::span<const double> features) const {
  const std::vector<std::uint32_t> q = forest_.leaf_vector(features);
  std::vector<int> counts(train_labels_.size());
  leaf_match_counts(train_leaves_, train_labels_.size(), q, counts);
  return knn_select(counts);
}

std::vector<int> KFingerprint::predict_batch(const FeatureMatrix& x) const {
  if (!forest_.trained()) throw std::logic_error("KFingerprint::predict_batch before fit");
  obs::ProfSpan span("wf.predict");
  if (!cfg_.use_knn) return forest_.predict_batch(x);

  const std::size_t n_query = x.rows();
  const std::size_t n_train = train_labels_.size();
  const std::size_t trees = forest_.tree_count();
  const std::vector<std::uint32_t> query_leaves = forest_.leaf_batch(x);
  std::vector<int> out(n_query, 0);
  // Chunk queries so the agreement matrix stays modest for large test sets.
  constexpr std::size_t kChunk = 256;
  std::vector<int> counts;
  for (std::size_t lo = 0; lo < n_query; lo += kChunk) {
    const std::size_t hi = std::min(n_query, lo + kChunk);
    counts.assign((hi - lo) * n_train, 0);
    leaf_match_matrix(train_leaves_, n_train,
                      {query_leaves.data() + lo * trees, (hi - lo) * trees}, hi - lo, trees,
                      counts);
    for (std::size_t q = lo; q < hi; ++q) {
      out[q] = knn_select({counts.data() + (q - lo) * n_train, n_train});
    }
  }
  return out;
}

// --------------------------------------------------------- ConfusionMatrix

double ConfusionMatrix::accuracy() const {
  std::uint64_t correct = 0, total = 0;
  for (std::size_t t = 0; t < classes_; ++t) {
    for (std::size_t p = 0; p < classes_; ++p) {
      const std::uint64_t c = counts_[t * classes_ + p];
      total += c;
      if (t == p) correct += c;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.classes_ != classes_) throw std::invalid_argument("confusion: shape mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

// ----------------------------------------------------------- cross_validate

EvalResult cross_validate(const Dataset& data, const KFingerprint::Config& cfg,
                          std::size_t folds, std::uint64_t seed, std::size_t jobs) {
  FeatureMatrix x = [&] {
    obs::ProfSpan span("wf.features");
    return kfp_features(data);
  }();
  return cross_validate(x, data.labels(), cfg, folds, seed, jobs);
}

EvalResult cross_validate(const FeatureMatrix& x, const std::vector<int>& labels,
                          const KFingerprint::Config& cfg, std::size_t folds, std::uint64_t seed,
                          std::size_t jobs) {
  if (x.rows() != labels.size() || x.empty()) {
    throw std::invalid_argument("cross_validate: rows/labels mismatch or empty");
  }
  if (folds < 2) throw std::invalid_argument("cross_validate: need >= 2 folds");
  obs::ProfSpan span("wf.cross_validate");
  const int num_classes = *std::max_element(labels.begin(), labels.end()) + 1;

  // Stratified fold assignment: shuffle within each class, deal round-robin.
  const std::size_t n = x.rows();
  std::vector<std::size_t> fold_of(n);
  Rng rng(seed);
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == cls) idx.push_back(i);
    }
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t j = 0; j < idx.size(); ++j) fold_of[idx[j]] = j % folds;
  }

  // Folds are independent given the assignment (each fold's forest seed
  // depends only on (seed, f)), so they can run in parallel; the ordered
  // reduction below keeps merge order — and therefore every result byte —
  // identical to the serial loop.
  struct FoldOutcome {
    ConfusionMatrix cm{0};
    bool valid = false;
  };
  const std::vector<FoldOutcome> outcomes =
      exp::run_ordered<FoldOutcome>(folds, jobs, [&](std::size_t f) {
        std::vector<std::size_t> train_idx, test_idx;
        for (std::size_t i = 0; i < n; ++i) {
          (fold_of[i] == f ? test_idx : train_idx).push_back(i);
        }
        FoldOutcome out;
        if (test_idx.empty() || train_idx.empty()) return out;

        std::vector<int> train_labels;
        train_labels.reserve(train_idx.size());
        for (std::size_t i : train_idx) train_labels.push_back(labels[i]);

        KFingerprint::Config fold_cfg = cfg;
        fold_cfg.forest.seed = seed ^ (0x9E3779B97F4A7C15ull * (f + 1));
        KFingerprint clf(fold_cfg);
        clf.fit(x.gathered(train_idx), train_labels);

        const std::vector<int> predicted = clf.predict_batch(x.gathered(test_idx));
        out.cm = ConfusionMatrix(static_cast<std::size_t>(num_classes));
        for (std::size_t j = 0; j < test_idx.size(); ++j) {
          out.cm.add(labels[test_idx[j]], predicted[j]);
        }
        out.valid = true;
        return out;
      });

  EvalResult result;
  result.confusion = ConfusionMatrix(static_cast<std::size_t>(num_classes));
  for (const FoldOutcome& out : outcomes) {
    if (!out.valid) continue;
    result.fold_accuracies.push_back(out.cm.accuracy());
    result.confusion.merge(out.cm);
  }
  result.mean_accuracy = stats::mean(result.fold_accuracies);
  result.std_accuracy = stats::stddev(result.fold_accuracies);
  return result;
}

}  // namespace stob::wf
