#include "obs/layer_diff.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "util/stats.hpp"

namespace stob::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Canonical top-to-bottom order of TX observation points.
constexpr Layer kStackOrder[] = {Layer::Tls,   Layer::Tcp, Layer::Quic,
                                 Layer::Qdisc, Layer::Nic, Layer::Wire};

/// Is `ev` a payload-carrying TX observation at `layer`? Each layer has one
/// canonical departure kind: the qdisc's is the (post-pacing) dequeue; the
/// others emit Send/Retransmit. ACK-only packets (bytes == 0) are excluded.
bool is_tx_unit(const PacketEvent& ev, const net::FlowKey& flow, Layer layer) {
  if (ev.flow != flow || ev.dir != Direction::Tx || ev.layer != layer || ev.bytes <= 0) {
    return false;
  }
  if (layer == Layer::Qdisc) return ev.kind == EventKind::Dequeue;
  return ev.kind == EventKind::Send || ev.kind == EventKind::Retransmit;
}

/// Distinct transmission units of a layer: TX events deduped by stream
/// offset (retransmissions keep the first emission), sorted by offset. This
/// is the sequence the layer *intends*, against which the layer below is
/// compared.
std::vector<PacketEvent> distinct_units(std::span<const PacketEvent> events,
                                        const net::FlowKey& flow, Layer layer) {
  std::vector<PacketEvent> units;
  for (const PacketEvent& ev : events) {
    if (is_tx_unit(ev, flow, layer)) units.push_back(ev);
  }
  std::stable_sort(units.begin(), units.end(), [](const PacketEvent& a, const PacketEvent& b) {
    return a.seq != b.seq ? a.seq < b.seq : a.time < b.time;
  });
  units.erase(std::unique(units.begin(), units.end(),
                          [](const PacketEvent& a, const PacketEvent& b) { return a.seq == b.seq; }),
              units.end());
  return units;
}

LayerStats make_layer_stats(Layer layer, std::span<const PacketEvent> txs) {
  LayerStats s;
  s.layer = layer;
  s.events = txs.size();
  for (const PacketEvent& ev : txs) s.bytes += ev.bytes;
  s.mean_size = txs.empty() ? 0.0 : static_cast<double>(s.bytes) / static_cast<double>(txs.size());
  std::vector<double> gaps;
  gaps.reserve(txs.size());
  for (std::size_t i = 1; i < txs.size(); ++i) {
    gaps.push_back((txs[i].time - txs[i - 1].time).us());
  }
  s.gap_mean_us = stats::mean(gaps);
  s.gap_std_us = stats::stddev(gaps);
  s.gap_p50_us = stats::percentile(gaps, 50.0);
  s.gap_p90_us = stats::percentile(gaps, 90.0);
  s.gap_p99_us = stats::percentile(gaps, 99.0);
  return s;
}

/// Index of the from-unit covering stream offset `seq`: the last unit whose
/// offset is <= seq. Units are offset-sorted and start at the stream origin,
/// so this is the unit whose byte range the offset falls into.
std::size_t covering_index(const std::vector<PacketEvent>& from, std::uint64_t seq) {
  auto it = std::upper_bound(from.begin(), from.end(), seq,
                             [](std::uint64_t s, const PacketEvent& ev) { return s < ev.seq; });
  if (it == from.begin()) return 0;
  return static_cast<std::size_t>(std::distance(from.begin(), it)) - 1;
}

LayerTransition make_transition(Layer from_layer, Layer to_layer,
                                const std::vector<PacketEvent>& from,
                                const std::vector<PacketEvent>& to) {
  LayerTransition t;
  t.from = from_layer;
  t.to = to_layer;
  t.from_units = from.size();
  t.to_units = to.size();
  t.count_ratio =
      from.empty() ? 0.0 : static_cast<double>(to.size()) / static_cast<double>(from.size());

  // Exact re-emissions: a from-unit survives when some to-unit carries the
  // identical (offset, size). Everything else was resized, split or merged.
  std::size_t preserved = 0;
  for (const PacketEvent& f : from) {
    const bool match = std::any_of(to.begin(), to.end(), [&](const PacketEvent& g) {
      return g.seq == f.seq && g.bytes == f.bytes;
    });
    if (match) ++preserved;
  }
  t.size_mismatch_pct =
      from.empty() ? 0.0
                   : 100.0 * static_cast<double>(from.size() - preserved) /
                         static_cast<double>(from.size());

  std::vector<std::uint64_t> covers(from.size(), 0);  // to-units per from-unit
  std::vector<double> delays;
  delays.reserve(to.size());
  for (const PacketEvent& g : to) {
    const std::size_t i = covering_index(from, g.seq);
    ++covers[i];
    // A to-unit merges when its byte range extends into the next from-unit.
    if (i + 1 < from.size() && g.seq + static_cast<std::uint64_t>(g.bytes) > from[i + 1].seq) {
      ++t.merged_units;
    }
    const double d = (g.time - from[i].time).us();
    delays.push_back(d > 0.0 ? d : 0.0);
  }
  for (std::uint64_t c : covers) {
    if (c > 1) ++t.split_units;
  }
  t.delay_p50_us = stats::percentile(delays, 50.0);
  t.delay_p90_us = stats::percentile(delays, 90.0);
  t.delay_p99_us = stats::percentile(delays, 99.0);
  return t;
}

}  // namespace

std::vector<PacketEvent> tx_events(std::span<const PacketEvent> events, const net::FlowKey& flow,
                                   Layer layer) {
  std::vector<PacketEvent> out;
  for (const PacketEvent& ev : events) {
    if (is_tx_unit(ev, flow, layer)) out.push_back(ev);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PacketEvent& a, const PacketEvent& b) { return a.time < b.time; });
  return out;
}

std::vector<double> layer_gaps_us(std::span<const PacketEvent> events, const net::FlowKey& flow,
                                  Layer layer) {
  const std::vector<PacketEvent> txs = tx_events(events, flow, layer);
  std::vector<double> gaps;
  gaps.reserve(txs.size());
  for (std::size_t i = 1; i < txs.size(); ++i) {
    gaps.push_back((txs[i].time - txs[i - 1].time).us());
  }
  return gaps;
}

const LayerStats* LayerDiffReport::layer(Layer l) const {
  for (const LayerStats& s : layers) {
    if (s.layer == l) return &s;
  }
  return nullptr;
}

const LayerTransition* LayerDiffReport::transition(Layer from, Layer to) const {
  for (const LayerTransition& t : transitions) {
    if (t.from == from && t.to == to) return &t;
  }
  return nullptr;
}

LayerDiffReport layer_diff(std::span<const PacketEvent> events, const net::FlowKey& flow) {
  LayerDiffReport report;
  report.flow = flow;

  std::vector<Layer> present;
  std::vector<std::vector<PacketEvent>> units;
  for (Layer layer : kStackOrder) {
    const std::vector<PacketEvent> txs = tx_events(events, flow, layer);
    if (txs.empty()) continue;
    report.layers.push_back(make_layer_stats(layer, txs));
    present.push_back(layer);
    units.push_back(distinct_units(events, flow, layer));
  }
  for (std::size_t i = 1; i < present.size(); ++i) {
    report.transitions.push_back(
        make_transition(present[i - 1], present[i], units[i - 1], units[i]));
  }
  return report;
}

LayerDiffReport layer_diff(const TraceRecorder& recorder, const net::FlowKey& flow) {
  const std::vector<PacketEvent> events = recorder.events();
  return layer_diff(events, flow);
}

std::vector<std::pair<net::FlowKey, std::size_t>> flows_by_activity(
    std::span<const PacketEvent> events) {
  std::unordered_map<net::FlowKey, std::size_t, net::FlowKeyHash> counts;
  for (const PacketEvent& ev : events) {
    if (ev.dir == Direction::Tx && ev.bytes > 0) ++counts[ev.flow];
  }
  std::vector<std::pair<net::FlowKey, std::size_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    const net::FlowKey& x = a.first;
    const net::FlowKey& y = b.first;
    return std::tie(x.src_host, x.dst_host, x.src_port, x.dst_port) <
           std::tie(y.src_host, y.dst_host, y.src_port, y.dst_port);
  });
  return out;
}

std::string LayerDiffReport::to_string() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "layer-diff flow %u:%u>%u:%u/%s\n", flow.src_host,
                flow.src_port, flow.dst_host, flow.dst_port,
                flow.proto == net::Proto::Tcp ? "tcp" : "udp");
  out += line;
  out += "  layer   events      bytes  mean_sz   gap_p50us   gap_p90us   gap_p99us\n";
  for (const LayerStats& s : layers) {
    std::snprintf(line, sizeof(line), "  %-6s %7zu %10lld %8.1f %11.1f %11.1f %11.1f\n",
                  std::string(obs::to_string(s.layer)).c_str(), s.events,
                  static_cast<long long>(s.bytes), s.mean_size, s.gap_p50_us, s.gap_p90_us,
                  s.gap_p99_us);
    out += line;
  }
  out += "  transition     units    ratio  mismatch%  split  merged   dly_p50us   dly_p99us\n";
  for (const LayerTransition& t : transitions) {
    std::snprintf(line, sizeof(line),
                  "  %-5s>%-6s %4zu>%-4zu %7.2f %9.1f %6llu %7llu %11.1f %11.1f\n",
                  std::string(obs::to_string(t.from)).c_str(),
                  std::string(obs::to_string(t.to)).c_str(), t.from_units, t.to_units,
                  t.count_ratio, t.size_mismatch_pct,
                  static_cast<unsigned long long>(t.split_units),
                  static_cast<unsigned long long>(t.merged_units), t.delay_p50_us, t.delay_p99_us);
    out += line;
  }
  return out;
}

std::vector<csv::Row> LayerDiffReport::to_csv_rows() const {
  std::vector<csv::Row> rows;
  rows.push_back({"kind", "layer_from", "layer_to", "events", "bytes", "mean_size", "gap_mean_us",
                  "gap_std_us", "p50_us", "p90_us", "p99_us", "from_units", "to_units",
                  "count_ratio", "size_mismatch_pct", "split_units", "merged_units"});
  for (const LayerStats& s : layers) {
    rows.push_back({"layer", std::string(obs::to_string(s.layer)), "", std::to_string(s.events),
                    std::to_string(s.bytes), format_double(s.mean_size),
                    format_double(s.gap_mean_us), format_double(s.gap_std_us),
                    format_double(s.gap_p50_us), format_double(s.gap_p90_us),
                    format_double(s.gap_p99_us), "", "", "", "", "", ""});
  }
  for (const LayerTransition& t : transitions) {
    rows.push_back({"transition", std::string(obs::to_string(t.from)),
                    std::string(obs::to_string(t.to)), "", "", "", "", "",
                    format_double(t.delay_p50_us), format_double(t.delay_p90_us),
                    format_double(t.delay_p99_us), std::to_string(t.from_units),
                    std::to_string(t.to_units), format_double(t.count_ratio),
                    format_double(t.size_mismatch_pct), std::to_string(t.split_units),
                    std::to_string(t.merged_units)});
  }
  return rows;
}

void LayerDiffReport::write_csv(const std::filesystem::path& path) const {
  csv::write_file(path, to_csv_rows());
}

void LayerDiffReport::write_jsonl(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  const std::string flow_str = std::to_string(flow.src_host) + ":" + std::to_string(flow.src_port) +
                               ">" + std::to_string(flow.dst_host) + ":" +
                               std::to_string(flow.dst_port) +
                               (flow.proto == net::Proto::Tcp ? "/tcp" : "/udp");
  for (const LayerStats& s : layers) {
    out << "{\"kind\":\"layer\",\"flow\":\"" << flow_str << "\",\"layer\":\""
        << obs::to_string(s.layer) << "\",\"events\":" << s.events << ",\"bytes\":" << s.bytes
        << ",\"mean_size\":" << format_double(s.mean_size)
        << ",\"gap_mean_us\":" << format_double(s.gap_mean_us)
        << ",\"gap_std_us\":" << format_double(s.gap_std_us)
        << ",\"gap_p50_us\":" << format_double(s.gap_p50_us)
        << ",\"gap_p90_us\":" << format_double(s.gap_p90_us)
        << ",\"gap_p99_us\":" << format_double(s.gap_p99_us) << "}\n";
  }
  for (const LayerTransition& t : transitions) {
    out << "{\"kind\":\"transition\",\"flow\":\"" << flow_str << "\",\"from\":\""
        << obs::to_string(t.from) << "\",\"to\":\"" << obs::to_string(t.to)
        << "\",\"from_units\":" << t.from_units << ",\"to_units\":" << t.to_units
        << ",\"count_ratio\":" << format_double(t.count_ratio)
        << ",\"size_mismatch_pct\":" << format_double(t.size_mismatch_pct)
        << ",\"split_units\":" << t.split_units << ",\"merged_units\":" << t.merged_units
        << ",\"delay_p50_us\":" << format_double(t.delay_p50_us)
        << ",\"delay_p90_us\":" << format_double(t.delay_p90_us)
        << ",\"delay_p99_us\":" << format_double(t.delay_p99_us) << "}\n";
  }
}

}  // namespace stob::obs
