#include "stack/tls_record.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

namespace stob::stack {

namespace {

std::int64_t padded(std::int64_t plaintext, const TlsConfig& cfg) {
  if (cfg.pad_to <= 0) return plaintext;
  return (plaintext + cfg.pad_to - 1) / cfg.pad_to * cfg.pad_to;
}

}  // namespace

std::int64_t tls_sealed_size(std::int64_t plaintext, const TlsConfig& cfg) {
  std::int64_t wire = 0;
  while (plaintext > 0) {
    const std::int64_t chunk = std::min(plaintext, cfg.max_record);
    wire += std::min(padded(chunk, cfg), cfg.max_record) + cfg.overhead;
    plaintext -= chunk;
  }
  return wire;
}

std::int64_t TlsSession::seal(std::int64_t plaintext, TimePoint now) {
  std::int64_t wire_total = 0;
  while (plaintext > 0) {
    const std::int64_t chunk = std::min(plaintext, cfg_.max_record);
    const std::int64_t body = std::min(padded(chunk, cfg_), cfg_.max_record);
    const std::int64_t wire = body + cfg_.overhead;
    padding_bytes_ += body - chunk;
    in_flight_.push_back({wire, chunk});
    ++records_sealed_;
    obs::count("tls.records_sealed");
    if (body > chunk) {
      obs::count("tls.padding_bytes", static_cast<std::uint64_t>(body - chunk));
    }
    if (obs::recorder() != nullptr || obs::listener() != nullptr) {
      obs::PacketEvent ev;
      ev.time = now;
      ev.flow = flow_;
      ev.layer = obs::Layer::Tls;
      ev.dir = obs::Direction::Tx;
      ev.kind = obs::EventKind::Send;
      ev.bytes = wire;
      ev.seq = static_cast<std::uint64_t>(send_offset_);
      if (obs::TraceRecorder* r = obs::recorder()) r->record(ev);
      if (obs::StackListener* l = obs::listener()) l->on_packet(ev);
    }
    send_offset_ += wire;
    wire_total += wire;
    plaintext -= chunk;
  }
  return wire_total;
}

std::int64_t TlsSession::open(std::int64_t wire, TimePoint now) {
  std::int64_t plaintext = 0;
  buffered_ += wire;
  while (!in_flight_.empty() && buffered_ >= in_flight_.front().wire) {
    const Record rec = in_flight_.front();
    buffered_ -= rec.wire;
    plaintext += rec.plaintext;
    in_flight_.pop_front();
    if (obs::recorder() != nullptr || obs::listener() != nullptr) {
      obs::PacketEvent ev;
      ev.time = now;
      ev.flow = flow_;
      ev.layer = obs::Layer::Tls;
      ev.dir = obs::Direction::Rx;
      ev.kind = obs::EventKind::Receive;
      ev.bytes = rec.wire;
      ev.seq = static_cast<std::uint64_t>(recv_offset_);
      if (obs::TraceRecorder* r = obs::recorder()) r->record(ev);
      if (obs::StackListener* l = obs::listener()) l->on_packet(ev);
    }
    recv_offset_ += rec.wire;
  }
  return plaintext;
}

}  // namespace stob::stack
