// Million-trace open-world evaluation over memory-mapped feature stores.
//
// Two phases, both deterministic and --jobs-invariant on stdout:
//
//  1. --generate N: synthesise a monitored corpus (--sites x --instances
//     page loads) and N background page loads, extract k-FP features, and
//     stream them into STOBFST1 stores under --corpus DIR
//     (monitored.fst / background.fst). Every row is a pure function of
//     (seed, identity), extraction uses only exact kernels, and chunks are
//     appended in order — so the store files are byte-identical for every
//     --jobs value AND for scalar vs SIMD dispatch (CI diffs them).
//  2. Evaluation: mmap both stores and run wf::open_world_stream — the
//     background corpus is streamed block-wise with pages dropped behind
//     the pass, so peak memory stays constant in corpus size (peak RSS is
//     reported on stderr as peak_rss_kb=).
//
// Flags: --corpus DIR (required), --generate N, --smoke (tiny sizes,
// implies --generate), --sites S, --instances I, --bg-train B,
// --block-rows R, --jobs N. Environment: STOB_TREES, STOB_SEED.
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "wf/corpus.hpp"
#include "wf/features.hpp"
#include "wf/open_world.hpp"
#include "wf/synth_traces.hpp"

namespace {

using namespace stob;
namespace fs = std::filesystem;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

std::uint64_t flag_u64(const exp::Cli& cli, const std::string& name, std::uint64_t fallback) {
  const std::string v = cli.get(name);
  return v.empty() ? fallback : static_cast<std::uint64_t>(std::atoll(v.c_str()));
}

/// One generated chunk: `rows * features` values plus one label per row.
struct Chunk {
  std::vector<double> values;
  std::vector<int> labels;
};

/// Stream `total` rows into `file`. make_row(r, out_span) fills row r's
/// features and returns its label; rows are pure functions of r, chunks
/// are generated in parallel but appended in index order, and memory is
/// bounded by one wave of chunks (never the whole corpus).
template <typename MakeRow>
void generate_store(const fs::path& file, std::uint64_t total, std::size_t features,
                    std::size_t jobs, MakeRow make_row) {
  wf::FeatureStoreWriter writer(file, features);
  constexpr std::uint64_t kChunkRows = 2048;
  const std::uint64_t chunks = (total + kChunkRows - 1) / kChunkRows;
  const std::uint64_t wave = std::max<std::uint64_t>(1, 4 * std::max<std::size_t>(1, jobs));
  for (std::uint64_t wave_lo = 0; wave_lo < chunks; wave_lo += wave) {
    const std::uint64_t wave_n = std::min(wave, chunks - wave_lo);
    const std::vector<Chunk> results = exp::run_ordered<Chunk>(
        static_cast<std::size_t>(wave_n), jobs, [&](std::size_t c) {
          const std::uint64_t lo = (wave_lo + c) * kChunkRows;
          const std::uint64_t n = std::min(kChunkRows, total - lo);
          Chunk chunk;
          chunk.values.assign(n * features, 0.0);
          chunk.labels.resize(n);
          for (std::uint64_t i = 0; i < n; ++i) {
            chunk.labels[i] =
                make_row(lo + i, std::span<double>(chunk.values.data() + i * features, features));
          }
          return chunk;
        });
    for (const Chunk& chunk : results) {
      for (std::size_t i = 0; i < chunk.labels.size(); ++i) {
        writer.append_row({chunk.values.data() + i * features, features}, chunk.labels[i]);
      }
    }
  }
  writer.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const exp::Cli cli = exp::parse_cli(argc, argv,
                                      {{"--corpus", true},
                                       {"--generate", true},
                                       {"--smoke", false},
                                       {"--sites", true},
                                       {"--instances", true},
                                       {"--bg-train", true},
                                       {"--block-rows", true}});
  if (!cli.has("--corpus")) {
    std::fprintf(stderr, "openworld_scale: --corpus DIR is required\n");
    return 2;
  }
  const fs::path dir = cli.get("--corpus");
  const bool smoke = cli.has("--smoke");
  const std::size_t jobs = cli.jobs == 0 ? exp::default_jobs() : cli.jobs;
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", smoke ? 30 : 100));
  const std::uint64_t sites = flag_u64(cli, "--sites", smoke ? 6 : 20);
  const std::uint64_t instances = flag_u64(cli, "--instances", smoke ? 30 : 100);
  const std::uint64_t bg_train = flag_u64(cli, "--bg-train", smoke ? 200 : 1000);
  const std::uint64_t block_rows = flag_u64(cli, "--block-rows", smoke ? 512 : 8192);
  std::uint64_t generate = flag_u64(cli, "--generate", 0);
  if (smoke && generate == 0) generate = 3000;

  const std::size_t features = wf::kfp_feature_count();
  const fs::path mon_path = dir / "monitored.fst";
  const fs::path bg_path = dir / "background.fst";

  std::printf("=== openworld_scale: streaming open-world k-FP over mmap'd stores ===\n");
  std::fprintf(stderr, "openworld_scale: running with %zu jobs\n", jobs);

  if (generate > 0) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::uint64_t mon_total = sites * instances;
    generate_store(mon_path, mon_total, features, jobs, [&](std::uint64_t r, std::span<double> out) {
      const int site = static_cast<int>(r / instances);
      wf::kfp_features_into(wf::synth_site_trace(seed, site, r % instances), out);
      return site;
    });
    generate_store(bg_path, generate, features, jobs, [&](std::uint64_t r, std::span<double> out) {
      wf::kfp_features_into(wf::synth_background_trace(seed, r), out);
      return -1;
    });
    std::printf("generated monitored=%llu (sites=%llu x instances=%llu) background=%llu\n",
                static_cast<unsigned long long>(mon_total),
                static_cast<unsigned long long>(sites),
                static_cast<unsigned long long>(instances),
                static_cast<unsigned long long>(generate));
  }

  try {
    const wf::FeatureStore monitored(mon_path, features);
    const wf::FeatureStore background(bg_path, features);

    wf::OpenWorldStreamConfig cfg;
    cfg.forest.num_trees = trees;
    cfg.forest.fit_jobs = jobs;
    cfg.seed = seed;
    cfg.bg_train_count = bg_train;
    cfg.block_rows = block_rows;
    cfg.jobs = jobs;
    const wf::OpenWorldResult res = wf::open_world_stream(monitored, background, cfg);

    std::printf("monitored rows=%llu  background rows=%llu  trees=%zu seed=%llu\n",
                static_cast<unsigned long long>(monitored.rows()),
                static_cast<unsigned long long>(background.rows()), trees,
                static_cast<unsigned long long>(seed));
    std::printf("tpr=%.4f fpr=%.6f precision=%.4f site_accuracy=%.4f\n", res.tpr, res.fpr,
                res.precision, res.monitored_accuracy);
    std::printf("monitored_tested=%zu background_tested=%zu\n", res.monitored_tested,
                res.background_tested);
  } catch (const wf::CorpusError& e) {
    std::fprintf(stderr, "openworld_scale: corpus error (%s): %s\n",
                 wf::corpus_error_name(e.code()), e.what());
    return 1;
  }

  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  std::fprintf(stderr, "peak_rss_kb=%ld\n", ru.ru_maxrss);
  return 0;
}
