// CUMUL website-fingerprinting attack (Panchenko et al., NDSS 2016).
//
// Second, independent attack family used to check that defense conclusions
// are not an artefact of k-FP's feature set. CUMUL summarises a trace by
// its *cumulative* signed-size curve: incoming bytes add, outgoing bytes
// subtract, and the curve is resampled at n equidistant points; four volume
// features are prepended. The original uses an RBF-SVM; we pair the
// features with a standardised k-nearest-neighbour classifier, which is
// accurate in this closed-world regime and dependency-free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wf/feature_matrix.hpp"
#include "wf/kfp.hpp"
#include "wf/trace.hpp"

namespace stob::wf {

/// CUMUL feature vector: [count_in, count_out, bytes_in, bytes_out,
/// curve_0..curve_{n-1}]. Always 4 + n values.
std::vector<double> cumul_features(const Trace& trace, std::size_t n_points = 100);

/// k-NN classifier with per-feature standardisation (z-scores computed on
/// the training set) and Euclidean distance. Training rows are held in one
/// contiguous FeatureMatrix so the distance scan streams memory.
class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

  void fit(const FeatureMatrix& x, const std::vector<int>& labels);
  void fit(const std::vector<std::vector<double>>& rows, const std::vector<int>& labels);
  int predict(std::span<const double> x) const;
  bool trained() const { return !rows_.empty(); }

 private:
  std::vector<double> standardize(std::span<const double> x) const;

  std::size_t k_;
  FeatureMatrix rows_;  // standardized training rows
  std::vector<int> labels_;
  std::vector<double> mean_;
  std::vector<double> scale_;
  int num_classes_ = 0;
};

/// Stratified cross-validation of CUMUL+kNN on a dataset; same protocol and
/// EvalResult shape as the k-FP evaluation so benches can compare attacks.
EvalResult cumul_cross_validate(const Dataset& data, std::size_t k_neighbors = 5,
                                std::size_t n_points = 100, std::size_t folds = 5,
                                std::uint64_t seed = 0x5EEDull);

}  // namespace stob::wf
