file(REMOVE_RECURSE
  "CMakeFiles/ablation_tso.dir/ablation_tso.cpp.o"
  "CMakeFiles/ablation_tso.dir/ablation_tso.cpp.o.d"
  "ablation_tso"
  "ablation_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
