#include "core/policies.hpp"

#include <algorithm>

namespace stob::core {

// -------------------------------------------------------------- SplitPolicy

SegmentDecision SplitPolicy::on_segment(const SegmentContext& ctx) {
  SegmentDecision d = SegmentDecision::passthrough(ctx);
  if (ctx.mss.count() > cfg_.threshold) {
    const std::int64_t half = (ctx.mss.count() + 1) / 2;
    d.wire_mss = Bytes(std::max(half, cfg_.min_size));
  }
  return d;
}

// -------------------------------------------------------------- DelayPolicy

void DelayPolicy::on_flow_start(const net::FlowKey& flow) {
  last_departure_.erase(flow);
}

void DelayPolicy::on_flow_end(const net::FlowKey& flow) { last_departure_.erase(flow); }

SegmentDecision DelayPolicy::on_segment(const SegmentContext& ctx) {
  SegmentDecision d = SegmentDecision::passthrough(ctx);
  auto it = last_departure_.find(ctx.flow);
  if (it == last_departure_.end()) {
    last_departure_[ctx.flow] = d.departure;
    return d;  // first segment of the flow: nothing to inflate yet
  }
  const TimePoint last = it->second;
  const Duration gap = d.departure - last;
  if (gap.ns() > 0) {
    const double frac = rng_.uniform(cfg_.lo_frac, cfg_.hi_frac);
    d.departure = last + gap * (1.0 + frac);
  }
  it->second = d.departure;
  return d;
}

// ---------------------------------------------------------- CompositePolicy

SegmentDecision CompositePolicy::on_segment(const SegmentContext& ctx) {
  SegmentContext cur = ctx;
  SegmentDecision d = SegmentDecision::passthrough(ctx);
  for (Policy* p : chain_) {
    d = p->on_segment(cur);
    // Later policies refine the earlier decision.
    cur.cca_segment = d.segment;
    cur.mss = d.wire_mss;
    cur.cca_departure = d.departure;
  }
  return d;
}

void CompositePolicy::on_flow_start(const net::FlowKey& flow) {
  for (Policy* p : chain_) p->on_flow_start(flow);
}

void CompositePolicy::on_flow_end(const net::FlowKey& flow) {
  for (Policy* p : chain_) p->on_flow_end(flow);
}

std::string CompositePolicy::name() const {
  std::string n = "composite(";
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    if (i) n += "+";
    n += chain_[i]->name();
  }
  return n + ")";
}

// ---------------------------------------------------------- SweepSizePolicy

SegmentDecision SweepSizePolicy::on_segment(const SegmentContext& ctx) {
  SegmentDecision d = SegmentDecision::passthrough(ctx);
  if (cfg_.alpha <= 0) return d;
  FlowState& st = state_[ctx.flow];

  // Wire packet size: mtu - alpha * step, cycling over pkt_steps.
  const std::int64_t pkt = cfg_.mtu - static_cast<std::int64_t>(cfg_.alpha) * st.pkt_step;
  const std::int64_t payload = std::max<std::int64_t>(pkt - cfg_.header_overhead, 64);
  d.wire_mss = Bytes(std::min(payload, ctx.mss.count()));
  st.pkt_step = (st.pkt_step + 1) % (cfg_.pkt_steps + 1);

  // TSO size in segments: 44 - (alpha/4) * step, floor 1, cycling.
  const int dec = cfg_.alpha / 4;
  const int segs = std::max(1, cfg_.tso_default_segs - dec * st.tso_step);
  st.tso_step = (st.tso_step + 1) % (cfg_.tso_steps + 1);
  const std::int64_t seg_bytes =
      std::min<std::int64_t>(static_cast<std::int64_t>(segs) * d.wire_mss.count(),
                             ctx.cca_segment.count());
  d.segment = Bytes(std::max<std::int64_t>(seg_bytes, 1));
  return d;
}

void SweepSizePolicy::on_flow_start(const net::FlowKey& flow) { state_.erase(flow); }

void SweepSizePolicy::on_flow_end(const net::FlowKey& flow) { state_.erase(flow); }

// ------------------------------------------------------ HistogramDelayPolicy

SegmentDecision HistogramDelayPolicy::on_segment(const SegmentContext& ctx) {
  SegmentDecision d = SegmentDecision::passthrough(ctx);
  if (delays_.total_tokens() > 0) {
    const double secs = std::max(0.0, delays_.sample(rng_));
    d.departure = d.departure + Duration::seconds_f(secs);
  }
  return d;
}

}  // namespace stob::core
