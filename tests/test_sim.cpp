// Tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace stob::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now().ns(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint(300), [&] { order.push_back(3); });
  s.schedule_at(TimePoint(100), [&] { order.push_back(1); });
  s.schedule_at(TimePoint(200), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().ns(), 300);
}

TEST(Simulator, FifoTieBreakAtSameTime) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(TimePoint(50), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimePoint observed;
  s.schedule_at(TimePoint(1000), [&] {
    s.schedule_after(Duration(500), [&] { observed = s.now(); });
  });
  s.run();
  EXPECT_EQ(observed.ns(), 1500);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator s;
  TimePoint observed;
  s.schedule_at(TimePoint(1000), [&] {
    s.schedule_at(TimePoint(10), [&] { observed = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(observed.ns(), 1000);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(TimePoint(100), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, CancelInvalidIdIsNoop) {
  Simulator s;
  s.cancel(EventId{});  // must not crash or affect anything
  bool fired = false;
  s.schedule_at(TimePoint(5), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator s;
  int count = 0;
  s.schedule_at(TimePoint(100), [&] { ++count; });
  s.schedule_at(TimePoint(200), [&] { ++count; });
  s.run(TimePoint(150));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now().ns(), 150);  // clock advanced to the horizon
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StepExecutesOne) {
  Simulator s;
  int count = 0;
  s.schedule_at(TimePoint(1), [&] { ++count; });
  s.schedule_at(TimePoint(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(Duration(10), recurse);
  };
  s.schedule_at(TimePoint(0), recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now().ns(), 990);
}

TEST(Simulator, PendingCountsNonCancelled) {
  Simulator s;
  const EventId a = s.schedule_at(TimePoint(10), [] {});
  s.schedule_at(TimePoint(20), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(TimePoint(i), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST(Simulator, ManyEventsStressOrder) {
  Simulator s;
  // Insert pseudo-random times; verify monotone execution.
  std::int64_t prev = -1;
  bool monotone = true;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const auto t = static_cast<std::int64_t>(x % 1'000'000);
    s.schedule_at(TimePoint(t), [&, t] {
      if (t < prev) monotone = false;
      prev = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed(), 10000u);
}

}  // namespace
}  // namespace stob::sim
