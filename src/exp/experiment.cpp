#include "exp/experiment.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "exp/job_codec.hpp"
#include "exp/worker_pool.hpp"
#include "fault/invariants.hpp"
#include "net/packet.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "util/log.hpp"
#include "util/subprocess.hpp"

namespace stob::exp {

std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // Two rounds of splitmix64 over (base_seed, index): round one decorrelates
  // the base, round two folds the index in, so neighbouring jobs get
  // unrelated streams and job 0 of seed s != job 1 of seed s-1.
  auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  };
  return mix(mix(base_seed) ^ job_index);
}

JobSpec ExperimentGrid::job(std::size_t index) const {
  JobSpec spec;
  spec.index = index;
  const std::size_t c = cca_axis();
  const std::size_t d = defense_axis();
  spec.cca = index % c;
  index /= c;
  spec.defense = index % d;
  index /= d;
  spec.sample = index % samples;
  index /= samples;
  spec.site = index % sites.size();
  spec.fault = index / sites.size();
  spec.seed = job_seed(base_seed, spec.index);
  return spec;
}

std::vector<JobSpec> ExperimentGrid::jobs() const {
  std::vector<JobSpec> out;
  out.reserve(job_count());
  for (std::size_t i = 0; i < job_count(); ++i) out.push_back(job(i));
  return out;
}

JobResult run_job(const ExperimentGrid& grid, const JobSpec& spec, const RunOptions& opts) {
  // Fresh per-job world: packet ids restart at 1, obs sinks are installed
  // on this thread only, and all randomness flows from the job seed.
  net::PacketIdScope id_scope;
  Rng rng(spec.seed);

  workload::PageLoadOptions page = opts.page;
  if (!grid.ccas.empty()) {
    page.client_conn.cca = grid.ccas[spec.cca];
    page.server_conn.cca = grid.ccas[spec.cca];
  }
  if (!grid.faults.empty()) page.path_faults = grid.faults[spec.fault];

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder(opts.trace_capacity > 0 ? opts.trace_capacity : 1);
  fault::StackInvariantChecker checker;
  std::optional<obs::ScopedMetrics> scoped_metrics;
  std::optional<obs::ScopedRecorder> scoped_recorder;
  std::optional<obs::ScopedListener> scoped_listener;
  if (opts.collect_metrics) scoped_metrics.emplace(registry);
  if (opts.trace_capacity > 0) scoped_recorder.emplace(recorder);
  if (opts.check_invariants) scoped_listener.emplace(checker);

  workload::PageLoadResult loaded = [&] {
    obs::ProfSpan span("page_load");
    return workload::run_page_load(grid.sites[spec.site], rng, page);
  }();

  JobResult result;
  result.spec = spec;
  result.trace = std::move(loaded.trace);
  result.page_load_time = loaded.page_load_time;
  result.response_bytes = loaded.response_bytes;
  result.objects_fetched = loaded.objects_fetched;
  result.completed = loaded.completed;
  result.sim_events = loaded.sim_events;
  if (!grid.defenses.empty()) {
    const DefenseAxis& axis = grid.defenses[spec.defense];
    if (axis.defense != nullptr) {
      obs::ProfSpan span("defense");
      result.trace = axis.defense->apply(result.trace, rng);
    }
  }
  if (opts.collect_metrics) result.metrics = registry.snapshot();
  if (opts.trace_capacity > 0) result.events = recorder.events();
  if (opts.check_invariants) {
    result.invariant_checks = checker.checks();
    result.invariant_violations = checker.violations();
    result.first_violation = checker.first_report();
  }
  return result;
}

std::string cell_digest(const ExperimentGrid& grid, std::size_t index, const RunOptions& opts) {
  const JobSpec spec = grid.job(index);
  // Reuse the run-manifest digest machinery: set_config keeps the entries
  // sorted by key, so the digest is independent of the order fields are
  // added here (pinned by tests/test_proc.cpp).
  obs::RunManifest m;
  m.tool = "cell";
  m.base_seed = spec.seed;
  m.set_config("site", grid.sites.empty() ? std::to_string(spec.site) : grid.sites[spec.site].name);
  m.set_config("sample", std::to_string(spec.sample));
  m.set_config("defense",
               grid.defenses.empty() ? std::string("none") : grid.defenses[spec.defense].name);
  m.set_config("cca", grid.ccas.empty() ? std::string("default") : grid.ccas[spec.cca]);
  m.set_config("fault",
               grid.faults.empty() ? std::string("none") : grid.faults[spec.fault].name);
  // Everything that shapes the payload bytes beyond the coordinates: the
  // requested sinks and the codec rev the payload is encoded with.
  m.set_config("collect_metrics", opts.collect_metrics ? "1" : "0");
  m.set_config("trace_capacity", std::to_string(opts.trace_capacity));
  m.set_config("check_invariants", opts.check_invariants ? "1" : "0");
  m.set_config("codec", std::to_string(kWorkerPayloadVersion));
  return m.cell_spec_digest();
}

namespace {

/// Human-readable grid coordinates for error messages and crash reports.
std::string describe_cell(const ExperimentGrid& grid, const JobSpec& spec) {
  std::string out =
      "site=" + (grid.sites.empty() ? std::to_string(spec.site) : grid.sites[spec.site].name);
  out += " sample=" + std::to_string(spec.sample);
  out +=
      " defense=" + (grid.defenses.empty() ? std::string("none") : grid.defenses[spec.defense].name);
  out += " cca=" + (grid.ccas.empty() ? std::string("default") : grid.ccas[spec.cca]);
  out += " fault=" + (grid.faults.empty() ? std::string("none") : grid.faults[spec.fault].name);
  out += " seed=" + std::to_string(spec.seed);
  return out;
}

/// Run one cell and encode the worker payload, capturing per-job profiler
/// records exactly the way run_ordered_profiled does (a "job" span wrapping
/// the cell, span-id domain derived from the job index) so the supervisor's
/// splice reproduces the in-process span structure byte for byte.
std::string run_cell_payload(const ExperimentGrid& grid, std::size_t index,
                             const RunOptions& opts, bool capture_prof,
                             std::uint64_t prof_domain) {
  WorkerPayload payload;
  if (capture_prof) {
    obs::Profiler job_prof(obs::sub_domain(prof_domain, index));
    {
      obs::ScopedProfiler guard(job_prof);
      obs::ProfSpan span("job");
      payload.result = run_job(grid, grid.job(index), opts);
    }
    payload.prof_records = job_prof.take_records();
  } else {
    payload.result = run_job(grid, grid.job(index), opts);
  }
  return encode_worker_payload(payload);
}

/// Worker-process entry: run the one assigned cell, ship the result frame,
/// and _exit without ever returning into the driver's reporting code.
[[noreturn]] void run_worker_and_exit(const ExperimentGrid& grid, const RunOptions& opts) {
  const std::size_t index = *opts.proc.worker_job;
  // The deterministic self-fault hook fires before any real work so a
  // "crash" can never have half-written observable state.
  execute_worker_fault(opts.proc.worker_fault);
  if (index >= grid.job_count()) {
    std::fprintf(stderr, "worker: job index %zu out of range (grid has %zu cells)\n", index,
                 grid.job_count());
    ::_exit(2);
  }
  int code = 0;
  try {
    const std::string payload = run_cell_payload(grid, index, opts, opts.proc.worker_profile,
                                                 opts.proc.worker_prof_domain);
    if (!util::write_frame(opts.proc.worker_fd, payload)) code = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: job %zu threw: %s\n", index, e.what());
    code = 1;
  }
  std::fflush(nullptr);
  ::_exit(code);
}

/// Supervisor path of run_grid: fan the grid out to worker processes and
/// decode the payloads back into ordered JobResults. Quarantined cells get
/// a placeholder result (completed = false) so downstream reductions keep
/// their shape instead of the whole sweep dying with the cell.
std::vector<JobResult> run_grid_proc(const ExperimentGrid& grid, const RunOptions& opts,
                                     ProcReport* report) {
  obs::Profiler* prof = obs::profiler();
  ProcOptions proc = opts.proc;
  if (prof != nullptr) {
    proc.worker_profile = true;
    proc.worker_prof_domain = prof->id_domain();
  }
  const bool capture_prof = prof != nullptr;
  const std::uint64_t prof_domain = capture_prof ? prof->id_domain() : 0;

  const std::size_t count = grid.job_count();
  const auto payloads = run_cells(
      count, proc, [&](std::size_t i) { return cell_digest(grid, i, opts); },
      [&](std::size_t i) { return run_cell_payload(grid, i, opts, capture_prof, prof_domain); },
      report);

  std::vector<JobResult> results(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!payloads[i].has_value()) {
      results[i].spec = grid.job(i);  // quarantined placeholder
      continue;
    }
    WorkerPayload payload;
    try {
      payload = decode_worker_payload(*payloads[i]);
    } catch (const std::exception& e) {
      throw std::runtime_error("exp: undecodable worker payload for job " + std::to_string(i) +
                               " [cell " + describe_cell(grid, grid.job(i)) + "]: " + e.what());
    }
    if (prof != nullptr) prof->splice(std::move(payload.prof_records), 0, 0);
    results[i] = std::move(payload.result);
  }
  return results;
}

}  // namespace

std::vector<JobResult> run_grid(const ExperimentGrid& grid, const RunOptions& opts) {
  // Worker mode first: the worker's argv still carries the supervisor's
  // --proc-workers flag, so checking workers > 0 before this would fork
  // grandchildren forever.
  if (opts.proc.worker_job.has_value()) run_worker_and_exit(grid, opts);

  auto run_with = [&](std::size_t threads) {
    try {
      return run_ordered<JobResult>(
          grid.job_count(), threads,
          [&](std::size_t i) { return run_job(grid, grid.job(i), opts); });
    } catch (const JobError& e) {
      throw JobError(e.job_index(), std::string(e.what()) + " [cell " +
                                        describe_cell(grid, grid.job(e.job_index())) + "]");
    }
  };
  ProcReport report;
  std::vector<JobResult> results = [&] {
    obs::ProfSpan span("grid.run");
    if (opts.proc.workers > 0) return run_grid_proc(grid, opts, &report);
    return run_with(opts.jobs);
  }();
  if (opts.proc.workers > 0 && opts.proc_report != nullptr) *opts.proc_report = report;
  if (opts.check_determinism) {
    // The reference run is serial *and in-process*, so in proc mode this
    // directly asserts out-of-process == in-process, byte for byte.
    obs::ProfSpan span("grid.verify");
    std::set<std::size_t> quarantined;
    for (const obs::CrashRecord& f : report.failures) {
      quarantined.insert(static_cast<std::size_t>(f.job));
    }
    const std::vector<JobResult> serial = run_with(1);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (quarantined.count(i) != 0) continue;  // placeholder, nothing to compare
      if (!results_identical(results[i], serial[i])) {
        throw std::runtime_error("experiment engine determinism violation at job " +
                                 std::to_string(i));
      }
    }
  }
  return results;
}

bool results_identical(const JobResult& a, const JobResult& b) {
  return a.spec.index == b.spec.index && a.spec.seed == b.spec.seed && a.trace == b.trace &&
         a.page_load_time == b.page_load_time && a.response_bytes == b.response_bytes &&
         a.objects_fetched == b.objects_fetched && a.completed == b.completed &&
         a.sim_events == b.sim_events &&
         a.metrics == b.metrics && a.events == b.events &&
         a.invariant_checks == b.invariant_checks &&
         a.invariant_violations == b.invariant_violations &&
         a.first_violation == b.first_violation;
}

wf::Dataset to_dataset(const std::vector<JobResult>& results) {
  wf::Dataset data;
  for (const JobResult& r : results) {
    data.add(r.trace, static_cast<int>(r.spec.site));
  }
  return data;
}

namespace {

double parse_seconds(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size() || v < 0.0) throw std::invalid_argument("bad");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("exp: " + flag + " expects a non-negative number of seconds, got '" +
                                value + "'");
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  const bool all_digits =
      !value.empty() && value.find_first_not_of("0123456789") == std::string::npos;
  if (!all_digits) {
    throw std::invalid_argument("exp: " + flag + " expects a non-negative integer, got '" +
                                value + "'");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("exp: " + flag + " value '" + value + "' out of range");
  }
}

std::size_t parse_jobs(const std::string& flag, const std::string& value) {
  // Digits only: stoull would silently accept (and wrap) "-2", and "4x"
  // must not parse as 4.
  const bool all_digits =
      !value.empty() && value.find_first_not_of("0123456789") == std::string::npos;
  unsigned long long n = 0;
  if (all_digits) {
    try {
      n = std::stoull(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("exp: " + flag + " value '" + value + "' out of range");
    }
  } else {
    throw std::invalid_argument("exp: " + flag + " expects a non-negative integer, got '" +
                                value + "'");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

Cli parse_cli(int argc, char** argv, const std::vector<FlagSpec>& extra_flags) {
  Cli cli;
  if (const char* env = std::getenv("STOB_JOBS")) {
    cli.jobs = parse_jobs("STOB_JOBS", env);
  }

  cli.argv.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) cli.argv.emplace_back(argv[i]);

  // Shared flags first, then the harness-specific ones. The --worker-*
  // flags are appended by the proc supervisor when it re-execs the driver;
  // users never pass them directly.
  std::vector<FlagSpec> known = {{"--jobs", true},
                                 {"--check-determinism", false},
                                 {"--manifest", true},
                                 {"--trace-events", true},
                                 {"--proc-workers", true},
                                 {"--job-timeout", true},
                                 {"--retries", true},
                                 {"--journal", true},
                                 {"--resume", false},
                                 {"--inject-worker-fault", true},
                                 {"--worker-job", true},
                                 {"--worker-fd", true},
                                 {"--worker-fault", true},
                                 {"--worker-prof-domain", true}};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());

  std::map<std::string, int> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Split "--flag=value" spellings; "--flag value" takes the next argv.
    std::string name = arg;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos && arg.rfind("--", 0) == 0) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }

    const FlagSpec* spec = nullptr;
    for (const FlagSpec& f : known) {
      if (f.name == name) {
        spec = &f;
        break;
      }
    }
    if (spec == nullptr) {
      throw std::invalid_argument("exp: unknown flag '" + arg +
                                  "' (use --flag or --flag=value; known flags: --jobs, "
                                  "--check-determinism, --manifest, --trace-events, "
                                  "--proc-workers, --job-timeout, --retries, --journal, "
                                  "--resume, --inject-worker-fault" +
                                  [&] {
                                    std::string s;
                                    for (const FlagSpec& f : extra_flags) s += ", " + f.name;
                                    return s;
                                  }() +
                                  ")");
    }
    if (spec->takes_value && !value.has_value()) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("exp: flag '" + name + "' expects a value");
      }
      value = argv[++i];
    }
    if (!spec->takes_value && value.has_value()) {
      throw std::invalid_argument("exp: flag '" + name + "' does not take a value");
    }
    if (++seen[name] > 1) {
      STOB_WARN("exp") << "flag " << name << " given more than once; last value wins";
    }

    if (name == "--jobs") {
      cli.jobs = parse_jobs(name, *value);
    } else if (name == "--check-determinism") {
      cli.check_determinism = true;
    } else if (name == "--manifest") {
      cli.manifest_path = *value;
    } else if (name == "--trace-events") {
      cli.trace_events_path = *value;
    } else if (name == "--proc-workers") {
      cli.proc_workers = parse_jobs(name, *value);
    } else if (name == "--job-timeout") {
      cli.job_timeout_s = parse_seconds(name, *value);
    } else if (name == "--retries") {
      cli.retries = static_cast<std::size_t>(parse_u64(name, *value));
    } else if (name == "--journal") {
      cli.journal_path = *value;
    } else if (name == "--resume") {
      cli.resume = true;
    } else if (name == "--inject-worker-fault") {
      WorkerFaultPlan::parse(*value);  // reject malformed specs at the CLI
      cli.inject_worker_fault = *value;
    } else if (name == "--worker-job") {
      cli.worker_mode = true;
      cli.worker_job = static_cast<std::size_t>(parse_u64(name, *value));
    } else if (name == "--worker-fd") {
      cli.worker_fd = static_cast<int>(parse_u64(name, *value));
    } else if (name == "--worker-fault") {
      cli.worker_fault = *value;
    } else if (name == "--worker-prof-domain") {
      cli.worker_profile = true;
      cli.worker_prof_domain = parse_u64(name, *value);
    } else {
      cli.extra[name] = spec->takes_value ? *value : "1";
    }
  }
  if (cli.resume && cli.journal_path.empty()) {
    throw std::invalid_argument("exp: --resume needs --journal PATH (the journal to replay)");
  }
  return cli;
}

ProcOptions proc_options_from_cli(const Cli& cli) {
  ProcOptions proc;
  proc.workers = cli.proc_workers;
  proc.job_timeout = Duration::seconds_f(cli.job_timeout_s);
  proc.retries = cli.retries;
  proc.journal_path = cli.journal_path;
  proc.resume = cli.resume;
  proc.fault_spec = cli.inject_worker_fault;
  if (cli.proc_workers > 0) proc.worker_argv = cli.argv;
  if (cli.worker_mode) proc.worker_job = cli.worker_job;
  proc.worker_fd = cli.worker_fd;
  proc.worker_fault = cli.worker_fault;
  proc.worker_profile = cli.worker_profile;
  proc.worker_prof_domain = cli.worker_prof_domain;
  return proc;
}

}  // namespace stob::exp
