#include "stack/qdisc.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace stob::stack {

namespace {

// Observability taps shared by both qdiscs. All of these are single
// load-and-branch no-ops when no recorder/registry is installed.

void note_enqueue(const net::Packet& p, Bytes backlog, Bytes capacity) {
  obs::record_packet(obs::Layer::Qdisc, obs::Direction::Tx, obs::EventKind::Enqueue, p,
                     p.enqueued_at);
  obs::count("qdisc.enqueued");
  obs::sample("qdisc.backlog_bytes", static_cast<double>(backlog.count()));
  // Queue-bound invariant: with the admit-one-into-empty rule, the backlog
  // may exceed capacity only by way of a single oversize packet.
  const std::int64_t bound = capacity.count() > 0
                                 ? std::max(capacity.count(), p.wire_size().count())
                                 : std::numeric_limits<std::int64_t>::max();
  obs::note_queue_depth(obs::QueueKind::QdiscBacklog, backlog.count(), bound);
}

void note_drop(const net::Packet& p) {
  obs::record_packet(obs::Layer::Qdisc, obs::Direction::Tx, obs::EventKind::Drop, p,
                     p.enqueued_at);
  obs::count("qdisc.drops");
}

void note_dequeue(const net::Packet& p, TimePoint now) {
  obs::record_packet(obs::Layer::Qdisc, obs::Direction::Tx, obs::EventKind::Dequeue, p, now);
  obs::count("qdisc.dequeued");
  obs::sample("qdisc.sojourn_us", (now - p.enqueued_at).us());
  if (p.not_before != TimePoint::zero()) {
    const double late = (now - p.not_before).us();
    obs::sample("qdisc.pacing_release_delay_us", late > 0.0 ? late : 0.0);
  }
}

// Shared capacity-drop semantics: a packet that would push the backlog past
// `capacity` is dropped, EXCEPT into an empty queue (admit-one), so a
// single packet larger than the whole capacity still passes instead of
// wedging its flow forever. Keyed on backlogged bytes in both qdiscs so an
// over-capacity packet is handled identically by FIFO and fq.
bool capacity_drop(Bytes capacity, Bytes backlog, Bytes size) {
  return capacity.count() > 0 && backlog + size > capacity && backlog.count() > 0;
}

}  // namespace

// ---------------------------------------------------------------- FifoQdisc

void FifoQdisc::enqueue(net::Packet p) {
  const Bytes size = p.wire_size();
  if (capacity_drop(capacity_, backlog_, size)) {
    ++dropped_;
    note_drop(p);
    return;
  }
  backlog_ += size;
  per_flow_bytes_[p.flow] += size.count();
  note_enqueue(p, backlog_, capacity_);
  queue_.push_back(std::move(p));
}

std::optional<net::Packet> FifoQdisc::dequeue(TimePoint now) {
  if (queue_.empty()) return std::nullopt;
  net::Packet p = std::move(queue_.front());
  queue_.pop_front();
  const Bytes size = p.wire_size();
  backlog_ -= size;
  auto it = per_flow_bytes_.find(p.flow);
  if (it != per_flow_bytes_.end()) {
    it->second -= size.count();
    if (it->second <= 0) per_flow_bytes_.erase(it);
  }
  note_dequeue(p, now);
  return p;
}

TimePoint FifoQdisc::next_ready(TimePoint now) const {
  return queue_.empty() ? TimePoint::max() : now;
}

Bytes FifoQdisc::flow_backlog(const net::FlowKey& flow) const {
  auto it = per_flow_bytes_.find(flow);
  return it == per_flow_bytes_.end() ? Bytes(0) : Bytes(it->second);
}

// ------------------------------------------------------------------ FqQdisc

FqQdisc::FqQdisc() : FqQdisc(Config{}) {}

void FqQdisc::enqueue(net::Packet p) {
  const Bytes size = p.wire_size();
  if (capacity_drop(cfg_.capacity, backlog_, size)) {
    ++dropped_;
    note_drop(p);
    return;
  }
  // Clamp absurd EDT values (fq's horizon), so a buggy policy cannot wedge
  // the flow forever.
  if (p.not_before > p.enqueued_at + cfg_.horizon) p.not_before = p.enqueued_at + cfg_.horizon;

  FlowQueue& fq = flows_[p.flow];
  fq.bytes += size.count();
  backlog_ += size;
  if (!fq.in_round) {
    fq.in_round = true;
    round_.push_back(p.flow);
  }
  note_enqueue(p, backlog_, cfg_.capacity);
  fq.packets.push_back(std::move(p));
}

std::optional<net::Packet> FqQdisc::dequeue(TimePoint now) {
  std::size_t ineligible_streak = 0;
  while (!round_.empty()) {
    const net::FlowKey key = round_.front();
    auto it = flows_.find(key);
    if (it == flows_.end() || it->second.packets.empty()) {
      round_.pop_front();
      if (it != flows_.end()) flows_.erase(it);
      continue;
    }
    FlowQueue& fq = it->second;
    const net::Packet& head = fq.packets.front();
    if (head.not_before > now) {
      // Paced into the future: let other flows run (work conservation
      // across flows; within the flow order is preserved).
      round_.pop_front();
      round_.push_back(key);
      if (++ineligible_streak >= round_.size()) return std::nullopt;
      continue;
    }
    ineligible_streak = 0;
    const std::int64_t size = head.wire_size().count();
    if (fq.deficit < size) {
      // Deficit exhausted: top up one quantum and end this flow's visit
      // (rotate to the back) so other flows get their turn — classic DRR.
      fq.deficit += cfg_.quantum.count();
      round_.pop_front();
      round_.push_back(key);
      continue;
    }
    net::Packet p = std::move(fq.packets.front());
    fq.packets.pop_front();
    fq.deficit -= size;
    fq.bytes -= size;
    backlog_ -= Bytes(size);
    if (fq.packets.empty()) {
      round_.pop_front();
      flows_.erase(it);
    }
    note_dequeue(p, now);
    return p;
  }
  return std::nullopt;
}

TimePoint FqQdisc::next_ready(TimePoint now) const {
  TimePoint earliest = TimePoint::max();
  for (const auto& [key, fq] : flows_) {
    if (fq.packets.empty()) continue;
    const TimePoint t = fq.packets.front().not_before;
    earliest = std::min(earliest, std::max(t, now));
  }
  return earliest;
}

Bytes FqQdisc::flow_backlog(const net::FlowKey& flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? Bytes(0) : Bytes(it->second.bytes);
}

}  // namespace stob::stack
