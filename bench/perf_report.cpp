// Perf-regression gate over two BENCH_*.json snapshots.
//
// Loads a committed baseline (e.g. BENCH_5.json at the repo root) and a
// fresh perf_suite run, prints a speedup table, and exits nonzero when a
// benchmark regressed past the threshold or disappeared from the suite —
// CI's bench-smoke job runs this so a perf regression fails the build the
// same way a broken test does.
//
// Usage:
//   perf_report --baseline BENCH_5.json --fresh BENCH_new.json
//               [--max-regression 0.25] [--ignore-smoke-mismatch]
//
// The throughput gate (events/sec ratio) only applies when both snapshots
// were produced at the same problem sizes (their "smoke" flags match);
// otherwise only the coverage gate runs, unless --ignore-smoke-mismatch
// forces ratios anyway. Exit codes: 0 ok, 1 gate failed, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "util/bench_json.hpp"

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  stob::bench::GateOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(a, "--fresh") == 0 && i + 1 < argc) {
      fresh_path = argv[++i];
    } else if (std::strcmp(a, "--max-regression") == 0 && i + 1 < argc) {
      opts.max_regression = std::atof(argv[++i]);
    } else if (std::strcmp(a, "--ignore-smoke-mismatch") == 0) {
      opts.ignore_smoke_mismatch = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_report --baseline OLD.json --fresh NEW.json "
                   "[--max-regression R] [--ignore-smoke-mismatch]\n");
      return 2;
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) {
    std::fprintf(stderr, "perf_report: --baseline and --fresh are required\n");
    return 2;
  }

  try {
    const stob::bench::BenchSnapshot baseline = stob::bench::load_snapshot(baseline_path);
    const stob::bench::BenchSnapshot fresh = stob::bench::load_snapshot(fresh_path);

    std::printf("baseline %s (git %s, %s)  vs  fresh %s (git %s, %s)\n\n",
                baseline_path.c_str(), baseline.git_rev.c_str(),
                baseline.smoke ? "smoke" : "full", fresh_path.c_str(), fresh.git_rev.c_str(),
                fresh.smoke ? "smoke" : "full");
    std::printf("%-28s %14s %14s %9s\n", "benchmark", "baseline ev/s", "fresh ev/s", "speedup");
    for (const stob::bench::Comparison& c : stob::bench::compare(baseline, fresh)) {
      if (baseline.find(c.name) == nullptr) {
        // Candidate-only benchmark: informational, no baseline to gate on.
        std::printf("%-28s %14s %14.0f %9s\n", c.name.c_str(), "NEW", c.fresh_eps, "-");
      } else if (c.fresh_eps > 0.0) {
        std::printf("%-28s %14.0f %14.0f %8.2fx\n", c.name.c_str(), c.baseline_eps,
                    c.fresh_eps, c.ratio);
      } else {
        std::printf("%-28s %14.0f %14s %9s\n", c.name.c_str(), c.baseline_eps, "MISSING", "-");
      }
    }

    const stob::bench::GateResult result = stob::bench::gate(baseline, fresh, opts);
    std::printf("\n");
    if (result.ratios_skipped) {
      std::printf("note: smoke flags differ; throughput gate skipped (coverage gate only)\n");
    }
    for (const std::string& name : result.missing) {
      std::printf("FAIL %s: present in baseline, missing from fresh run\n", name.c_str());
    }
    for (const stob::bench::Comparison& c : result.regressions) {
      std::printf("FAIL %s: %.2fx of baseline (threshold %.2fx)\n", c.name.c_str(), c.ratio,
                  1.0 - opts.max_regression);
    }
    for (const std::string& name : result.added) {
      std::printf("note: %s is new in the fresh run (informational, not gated)\n", name.c_str());
    }
    if (result.ok) {
      std::printf("perf gate OK (%zu benchmarks, max regression %.0f%%)\n",
                  baseline.entries.size(), opts.max_regression * 100.0);
      return 0;
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_report: %s\n", e.what());
    return 2;
  }
}
