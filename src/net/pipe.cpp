#include "net/pipe.hpp"

#include <cassert>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/log.hpp"

namespace stob::net {

Pipe::Pipe(sim::Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg) {}

void Pipe::send(Packet p) {
  const Bytes size = p.wire_size();
  if (cfg_.queue_capacity.count() > 0 && queued_bytes_ + size > cfg_.queue_capacity &&
      !queue_.empty()) {
    ++dropped_packets_;
    STOB_TRACE("pipe") << "drop-tail " << p;
    return;
  }
  queued_bytes_ += size;
  if (queued_bytes_ > max_queued_bytes_) max_queued_bytes_ = queued_bytes_;
  queue_.push_back(std::move(p));
  if (!busy_) start_transmission();
}

void Pipe::start_transmission() {
  assert(!queue_.empty());
  busy_ = true;
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= p.wire_size();
  p.sent_at = sim_.now();
  if (tx_tap_) tx_tap_(p, sim_.now());
  obs::record_packet(obs::Layer::Wire, obs::Direction::Tx, obs::EventKind::Send, p, sim_.now());
  obs::count("wire.packets");
  obs::count("wire.bytes", static_cast<std::uint64_t>(p.wire_size().count()));
  const Duration tx = cfg_.rate.transmit_time(p.wire_size());
  sim_.schedule_after(tx, [this, p = std::move(p)]() mutable { on_transmitted(std::move(p)); });
}

void Pipe::on_transmitted(Packet p) {
  // Serialiser is free again; keep the link busy back-to-back.
  if (!queue_.empty()) {
    start_transmission();
  } else {
    busy_ = false;
  }
  // Serialisation finished: the sender's NIC ring frees here no matter what
  // happens to the packet in flight (a lost packet still occupied the wire).
  if (tx_complete_) tx_complete_(p);

  // An installed fault model owns the in-flight fate of the packet and
  // replaces the built-in i.i.d. loss check.
  if (fault_model_ != nullptr) {
    fault_model_->on_transmitted(*this, std::move(p));
    return;
  }

  if (cfg_.loss_rate > 0.0 && loss_rng_.chance(cfg_.loss_rate)) {
    count_lost(p);
    return;
  }

  deliver(std::move(p));
}

void Pipe::deliver(Packet p, Duration extra) {
  ++delivered_packets_;
  delivered_bytes_ += p.wire_size();
  sim_.schedule_after(cfg_.delay + extra, [this, p = std::move(p)]() mutable {
    if (rx_tap_) rx_tap_(p, sim_.now());
    obs::record_packet(obs::Layer::Wire, obs::Direction::Rx, obs::EventKind::Receive, p,
                       sim_.now());
    if (sink_) sink_(std::move(p));
  });
}

void Pipe::count_lost(const Packet& p) {
  ++lost_packets_;
  STOB_TRACE("pipe") << "loss " << p;
}

}  // namespace stob::net
