// Inline-capacity vector for per-packet header lists.
//
// Every TCP segment used to carry a std::vector for its SACK blocks and
// every QUIC datagram one for its frame list — a heap allocation (and a
// free) per packet copy even though SACK tops out at 3 blocks and a
// simulated QUIC datagram rarely exceeds a handful of frames. SmallVec
// stores up to N elements inline inside the Packet itself; the rare spill
// (and any growth beyond it) is served by the thread-local buffer pool, so
// packet construction and tap copies stay off the global allocator.
//
// Deliberately minimal: exactly the surface the transports and tests use
// (push/emplace_back, clear, size/empty, iteration, operator[], equality,
// copy/move). Elements must be copyable; the packet header types all are.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "util/buffer_pool.hpp"

namespace stob::net {

// GCC cannot track which std::variant alternative is live through inlined
// Packet copies and reports the *inactive* header's `data_` as
// maybe-uninitialized inside is_spilled(); every constructor initialises
// data_, so the warning is spurious.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;

  SmallVec(const SmallVec& other) { append_all(other); }

  SmallVec(SmallVec&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (other.is_spilled()) {
      // Steal the spill buffer wholesale.
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (inline_slot(i)) T(std::move(other.inline_ref(i)));
      }
      size_ = other.size_;
      other.clear();
    }
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      append_all(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      destroy_all();
      release_spill();
      ::new (this) SmallVec(std::move(other));
    }
    return *this;
  }

  ~SmallVec() {
    destroy_all();
    release_spill();
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() noexcept {
    destroy_all();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) { return !(a == b); }

 private:
  bool is_spilled() const noexcept { return data_ != nullptr; }

  T* data() noexcept { return is_spilled() ? data_ : reinterpret_cast<T*>(inline_buf_); }
  const T* data() const noexcept {
    return is_spilled() ? data_ : reinterpret_cast<const T*>(inline_buf_);
  }

  void* inline_slot(std::size_t i) noexcept { return inline_buf_ + i * sizeof(T); }
  T& inline_ref(std::size_t i) noexcept { return *reinterpret_cast<T*>(inline_slot(i)); }

  void append_all(const SmallVec& other) {
    for (const T& v : other) emplace_back(v);
  }

  void destroy_all() noexcept {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
  }

  void release_spill() noexcept {
    if (is_spilled()) {
      mem::pool_free(data_, capacity_ * sizeof(T));
      data_ = nullptr;
      capacity_ = N;
    }
  }

  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* fresh = static_cast<T*>(mem::pool_alloc(new_cap * sizeof(T)));
    T* old = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(old[i]));
      old[i].~T();
    }
    release_spill();
    data_ = fresh;
    capacity_ = new_cap;
  }

  alignas(T) unsigned char inline_buf_[N * sizeof(T)];
  T* data_ = nullptr;  // non-null once spilled to the pool
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace stob::net
