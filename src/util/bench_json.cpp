#include "util/bench_json.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stob::bench {

namespace {

/// Value of a `"key": <scalar>` pair inside json[at..limit), or npos.
std::size_t find_key(std::string_view json, std::string_view key, std::size_t at,
                     std::size_t limit) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t k = json.find(needle, at);
  if (k == std::string_view::npos || k >= limit) return std::string_view::npos;
  std::size_t v = k + needle.size();
  while (v < limit && (json[v] == ' ' || json[v] == '\t')) ++v;
  return v < limit ? v : std::string_view::npos;
}

double number_at(std::string_view json, std::size_t at) {
  return at == std::string_view::npos ? 0.0 : std::atof(json.data() + at);
}

std::string string_at(std::string_view json, std::size_t at) {
  if (at == std::string_view::npos || at >= json.size() || json[at] != '"') return "";
  const std::size_t end = json.find('"', at + 1);
  if (end == std::string_view::npos) return "";
  return std::string(json.substr(at + 1, end - at - 1));
}

bool is_synthetic(std::string_view name) {
  return name.find(".speedup_vs_baseline") != std::string_view::npos;
}

}  // namespace

const BenchEntry* BenchSnapshot::find(std::string_view name) const {
  for (const BenchEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

BenchSnapshot parse_snapshot(std::string_view json) {
  BenchSnapshot snap;
  // A snapshot embedding a baseline holds two complete snapshots; only the
  // outer one is ours, so everything past the "baseline" key is off limits.
  std::size_t limit = json.find("\"baseline\":");
  if (limit == std::string_view::npos) limit = json.size();

  snap.git_rev = string_at(json, find_key(json, "git_rev", 0, limit));
  const std::size_t smoke_at = find_key(json, "smoke", 0, limit);
  snap.smoke = smoke_at != std::string_view::npos && json.compare(smoke_at, 4, "true") == 0;

  const std::size_t arr = json.find("\"benchmarks\":");
  if (arr == std::string_view::npos || arr >= limit) {
    throw std::runtime_error("bench_json: no \"benchmarks\" array (not a stob-bench-v1 file?)");
  }

  // Entries are one object each; walk "name" keys and read the scalar
  // fields up to the next entry (or the array's end).
  std::size_t at = find_key(json, "name", arr, limit);
  while (at != std::string_view::npos) {
    const std::size_t next = find_key(json, "name", at, limit);
    const std::size_t entry_limit = next == std::string_view::npos ? limit : next;
    BenchEntry e;
    e.name = string_at(json, at);
    e.wall_ms = number_at(json, find_key(json, "wall_ms", at, entry_limit));
    e.cpu_ms = number_at(json, find_key(json, "cpu_ms", at, entry_limit));
    e.events = static_cast<std::uint64_t>(
        number_at(json, find_key(json, "events", at, entry_limit)));
    e.events_per_sec = number_at(json, find_key(json, "events_per_sec", at, entry_limit));
    e.allocs = static_cast<std::uint64_t>(
        number_at(json, find_key(json, "allocs", at, entry_limit)));
    e.iters = static_cast<int>(number_at(json, find_key(json, "iters", at, entry_limit)));
    if (!e.name.empty() && !is_synthetic(e.name)) snap.entries.push_back(std::move(e));
    at = next;
  }
  return snap;
}

BenchSnapshot load_snapshot(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench_json: cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_snapshot(ss.str());
}

std::vector<Comparison> compare(const BenchSnapshot& baseline, const BenchSnapshot& fresh) {
  std::vector<Comparison> out;
  out.reserve(baseline.entries.size());
  for (const BenchEntry& b : baseline.entries) {
    Comparison c;
    c.name = b.name;
    c.baseline_eps = b.events_per_sec;
    if (const BenchEntry* f = fresh.find(b.name)) c.fresh_eps = f->events_per_sec;
    c.ratio = c.baseline_eps > 0.0 ? c.fresh_eps / c.baseline_eps : 0.0;
    out.push_back(std::move(c));
  }
  // Candidate-only entries ride along after the baseline rows so a freshly
  // added benchmark shows up in the table (with no baseline to compare to).
  for (const BenchEntry& f : fresh.entries) {
    if (baseline.find(f.name) != nullptr) continue;
    Comparison c;
    c.name = f.name;
    c.fresh_eps = f.events_per_sec;
    out.push_back(std::move(c));
  }
  return out;
}

GateResult gate(const BenchSnapshot& baseline, const BenchSnapshot& fresh,
                const GateOptions& opts) {
  GateResult r;
  r.ratios_skipped = baseline.smoke != fresh.smoke && !opts.ignore_smoke_mismatch;
  for (const Comparison& c : compare(baseline, fresh)) {
    if (fresh.find(c.name) == nullptr) {
      // Coverage gate: a benchmark silently dropped from the suite would
      // otherwise let its regressions go unmeasured forever.
      r.missing.push_back(c.name);
      r.ok = false;
      continue;
    }
    if (baseline.find(c.name) == nullptr) {
      // New benchmark: informational only — gaining coverage never fails.
      r.added.push_back(c.name);
      continue;
    }
    if (r.ratios_skipped || c.baseline_eps <= 0.0) continue;
    if (c.ratio < 1.0 - opts.max_regression) {
      r.regressions.push_back(c);
      r.ok = false;
    }
  }
  return r;
}

}  // namespace stob::bench
