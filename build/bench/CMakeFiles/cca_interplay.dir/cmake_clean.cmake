file(REMOVE_RECURSE
  "CMakeFiles/cca_interplay.dir/cca_interplay.cpp.o"
  "CMakeFiles/cca_interplay.dir/cca_interplay.cpp.o.d"
  "cca_interplay"
  "cca_interplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_interplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
