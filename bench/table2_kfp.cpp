// Reproduces Table 2 of the paper: k-FP Random Forest closed-world accuracy
// on 9 sites, under {Original, Split, Delayed, Combined} countermeasures
// applied to the first {15, 30, 45, all} packets, with the attack evaluated
// on the same prefix.
//
// Pipeline (mirrors §3):
//  1. collect `samples` page loads for each of the 9 site profiles through
//     the simulated stack (tcpdump-at-client vantage) — parallel (site x
//     sample) jobs on the experiment engine,
//  2. sanitise: per class, drop traces outside the IQR fence on total
//     download size, then balance classes,
//  3. build the 16 datasets (4 countermeasures x 4 scopes),
//  4. evaluate k-FP with stratified cross-validation — one parallel job per
//     (scope, countermeasure) cell; report mean +- std.
//
// Flags: --jobs N (default hardware concurrency), --check-determinism,
// --manifest PATH (run_manifest.json), --trace-events PATH (Chrome
// trace_event JSON; either output flag turns the span profiler on),
// --corpus DIR (collection cache: reuse DIR/table2_traces.crp when present
// and valid, otherwise collect through the stack and write it — the binary
// corpus round-trips traces exactly, so cached and live runs print the
// same table).
// --check-determinism additionally re-runs the attack stage under fresh
// profilers at two worker counts and asserts the run manifests are
// identical minus timing (deterministic_json).
// Environment knobs: STOB_SAMPLES (default 100), STOB_FOLDS (default 5),
// STOB_TREES (default 100), STOB_SEED, STOB_JOBS.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "obs/manifest.hpp"
#include "obs/prof.hpp"
#include "wf/corpus.hpp"
#include "wf/features.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

struct Variant {
  std::string name;
  const defenses::TraceDefense* defense;  // nullptr = Original
};

}  // namespace

int main(int argc, char** argv) {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 100));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 5));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 100));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));
  const exp::Cli cli = exp::parse_cli(argc, argv, {{"--corpus", true}});
  const std::size_t jobs = cli.jobs == 0 ? exp::default_jobs() : cli.jobs;
  const std::string corpus_dir = cli.get("--corpus");
  const std::filesystem::path corpus_file =
      corpus_dir.empty() ? std::filesystem::path{}
                         : std::filesystem::path(corpus_dir) / "table2_traces.crp";

  obs::Profiler prof;
  std::optional<obs::ScopedProfiler> prof_guard;
  if (cli.profile()) prof_guard.emplace(prof);
  const auto stamp_config = [&](obs::RunManifest& m) {
    m.set_config("samples", std::to_string(samples));
    m.set_config("folds", std::to_string(folds));
    m.set_config("trees", std::to_string(trees));
    m.set_config("scopes", "15,30,45,all");
    m.set_config("variants", "Original,Split,Delayed,Combined");
  };

  std::printf("=== Table 2: k-FP Random Forest accuracy (closed world, 9 sites) ===\n");
  // Worker count goes to stderr: stdout must be byte-identical for any
  // --jobs value (the determinism contract the engine provides).
  std::fprintf(stderr, "table2_kfp: running with %zu jobs\n", jobs);
  std::printf("samples/site=%zu folds=%zu trees=%zu seed=%llu\n\n", samples, folds, trees,
              static_cast<unsigned long long>(seed));

  // 1. Collect traces through the simulated stack (parallel page loads).
  exp::ExperimentGrid grid;
  grid.sites = workload::nine_sites();
  grid.samples = samples;
  grid.base_seed = seed;
  exp::RunOptions run;
  run.jobs = jobs;
  run.check_determinism = cli.check_determinism;
  // Out-of-process collection: a worker re-execs this binary and _exits
  // inside run_grid, so it never reaches the attack stage below.
  run.proc = exp::proc_options_from_cli(cli);
  exp::ProcReport proc_report;
  run.proc_report = &proc_report;
  const exp::CacheSession cache = exp::CacheSession::from_cli(cli);
  run.cache = cache.cache();
  std::fflush(stdout);
  // Collection cache: a valid --corpus file short-circuits the simulator
  // entirely (the binary format round-trips traces exactly, so the table is
  // identical either way); a corrupt one is quarantined by the reader and
  // we fall through to a live collection that rewrites it.
  bool collected_live = true;
  const wf::Dataset raw = [&] {
    if (!corpus_dir.empty() && std::filesystem::exists(corpus_file)) {
      try {
        obs::ProfSpan span("collect");
        wf::Dataset d = wf::load_corpus(corpus_file);
        collected_live = false;
        std::fprintf(stderr, "table2_kfp: loaded corpus %s\n", corpus_file.c_str());
        return d;
      } catch (const wf::CorpusError& e) {
        std::fprintf(stderr, "table2_kfp: corpus rejected (%s): %s — recollecting\n",
                     wf::corpus_error_name(e.code()), e.what());
      }
    }
    obs::ProfSpan span("collect");
    wf::Dataset d = exp::to_dataset(exp::run_grid(grid, run));
    if (!corpus_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(corpus_dir, ec);
      wf::CorpusWriter writer(corpus_file);
      for (std::size_t i = 0; i < d.size(); ++i) writer.add(d.trace(i), d.label(i));
      writer.finish();
      std::fprintf(stderr, "table2_kfp: wrote corpus %s\n", corpus_file.c_str());
    }
    return d;
  }();
  if (collected_live && run.proc.workers > 0) {
    exp::print_proc_summary("table2_kfp", run.proc, proc_report);
  }
  cache.finish("table2_kfp");
  std::printf("collected %zu traces\n", raw.size());

  // 2. Sanitise (IQR fence on download size) and balance, as in the paper
  //    (they kept 74 of 100 samples per site).
  std::size_t min_per_class = 0;
  const wf::Dataset data = [&] {
    obs::ProfSpan span("sanitize");
    const wf::Dataset clean = raw.sanitized_by_download_size(0.75);
    min_per_class = clean.size();
    std::vector<std::size_t> per_class(clean.num_classes(), 0);
    for (std::size_t i = 0; i < clean.size(); ++i) {
      per_class[static_cast<std::size_t>(clean.label(i))] += 1;
    }
    for (std::size_t c : per_class) min_per_class = std::min(min_per_class, c);
    return clean.balanced(min_per_class);
  }();
  std::printf("sanitised to %zu traces (%zu per site)\n\n", data.size(), min_per_class);

  // 3. The four countermeasure variants of §3.
  defenses::SplitDefense split;
  defenses::DelayDefense delay;
  defenses::CombinedDefense combined;
  const std::vector<Variant> variants{
      {"Original", nullptr}, {"Split", &split}, {"Delayed", &delay}, {"Combined", &combined}};
  const std::vector<std::size_t> scopes{15, 30, 45, 0};  // 0 = whole trace

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;

  // 4. One parallel job per (scope, variant) cell; each cell re-derives its
  //    rng exactly as the serial loop did, so the table is --jobs-invariant.
  const auto eval_cell = [&](std::size_t cell) {
    const std::size_t scope = scopes[cell / variants.size()];
    const Variant& v = variants[cell % variants.size()];
    // Defense applied to the first `scope` packets (whole trace when 0),
    // then the attack sees the same prefix.
    Rng rng(seed ^ 0xDEFull);
    wf::Dataset defended = data.transformed([&](const wf::Trace& t) {
      wf::Trace out =
          v.defense != nullptr ? defenses::apply_to_prefix(*v.defense, t, scope, rng) : t;
      return scope == 0 ? out : out.truncated(scope);
    });
    return wf::cross_validate(defended, kfp_cfg, folds, seed);
  };
  const std::size_t cell_count = scopes.size() * variants.size();
  const std::vector<wf::EvalResult> cells = [&] {
    obs::ProfSpan span("attack");
    return exp::run_ordered<wf::EvalResult>(cell_count, jobs, eval_cell);
  }();

  // --check-determinism also covers the attack stage: re-run every cell at a
  // different worker count and demand identical EvalResults (fold accuracies,
  // confusion matrices, everything) — and, with the profiler on, identical
  // run manifests minus timing (span structure, metrics digest, cell-spec
  // digest; jobs and wall/CPU are excluded by deterministic_json).
  if (cli.check_determinism) {
    const std::size_t other_jobs = jobs == 1 ? 2 : 1;
    std::vector<wf::EvalResult> again;
    const auto attack_manifest = [&](std::size_t j, std::vector<wf::EvalResult>* out) {
      obs::Profiler p;  // same (default) id domain both runs -> same span ids
      {
        obs::ScopedProfiler guard(p);
        obs::ProfSpan span("attack");
        std::vector<wf::EvalResult> r = exp::run_ordered<wf::EvalResult>(cell_count, j, eval_cell);
        if (out != nullptr) *out = std::move(r);
      }
      obs::RunManifest m = obs::build_manifest("table2_kfp", p, nullptr, j, seed);
      stamp_config(m);
      return m.deterministic_json();
    };
    const std::string manifest_a = attack_manifest(jobs, nullptr);
    const std::string manifest_b = attack_manifest(other_jobs, &again);
    for (std::size_t cell = 0; cell < cell_count; ++cell) {
      if (cells[cell] != again[cell]) {
        std::fprintf(stderr,
                     "table2_kfp: attack determinism violation in cell %zu "
                     "(jobs=%zu vs jobs=%zu)\n",
                     cell, jobs, other_jobs);
        return 1;
      }
    }
    if (manifest_a != manifest_b) {
      std::fprintf(stderr,
                   "table2_kfp: manifest determinism violation (jobs=%zu vs jobs=%zu)\n", jobs,
                   other_jobs);
      return 1;
    }
    std::fprintf(stderr,
                 "table2_kfp: attack stage and manifest identical at jobs=%zu and jobs=%zu\n",
                 jobs, other_jobs);
  }

  std::printf("%-5s", "N");
  for (const Variant& v : variants) std::printf("  %-17s", v.name.c_str());
  std::printf("\n");
  for (std::size_t s = 0; s < scopes.size(); ++s) {
    std::printf("%-5s", scopes[s] == 0 ? "All" : std::to_string(scopes[s]).c_str());
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const wf::EvalResult& res = cells[s * variants.size() + v];
      std::printf("  %.3f +- %.3f   ", res.mean_accuracy, res.std_accuracy);
    }
    std::printf("\n");
  }

  std::printf("\nPaper's Table 2 for comparison:\n");
  std::printf("N     Original          Split             Delayed           Combined\n");
  std::printf("15    0.798 +- 0.017    0.825 +- 0.024    0.825 +- 0.030    0.795 +- 0.031\n");
  std::printf("30    0.884 +- 0.007    0.860 +- 0.013    0.855 +- 0.030    0.850 +- 0.062\n");
  std::printf("45    0.938 +- 0.016    0.897 +- 0.030    0.913 +- 0.021    0.904 +- 0.004\n");
  std::printf("All   0.963 +- 0.002    0.980 +- 0.008    0.980 +- 0.014    0.992 +- 0.009\n");

  if (cli.profile()) {
    prof_guard.reset();  // all spans closed; stop recording before export
    if (!cli.manifest_path.empty()) {
      obs::RunManifest m = obs::build_manifest("table2_kfp", prof, nullptr, jobs, seed);
      stamp_config(m);
      m.write(cli.manifest_path);
      std::fprintf(stderr, "table2_kfp: wrote %s\n", cli.manifest_path.c_str());
    }
    if (!cli.trace_events_path.empty()) {
      obs::write_trace_event(cli.trace_events_path, prof.records(), "table2_kfp");
      std::fprintf(stderr, "table2_kfp: wrote %s\n", cli.trace_events_path.c_str());
    }
  }
  return 0;
}
