// Differential parity tests for the batched WF attack engine.
//
// The engine overhaul (flattened structure-of-arrays forest, batch
// kernels, parallel training) promises byte-identical results to the
// straightforward per-sample/per-tree path. These tests pin that contract:
// every flat/batched entry point is compared against the recursive
// DecisionTree walk it replaced, across seeds, class counts, and the
// degenerate shapes (single class, constant features, zero feature rows)
// where tie-breaking bugs hide.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "wf/feature_matrix.hpp"
#include "wf/features.hpp"
#include "wf/kfp.hpp"
#include "wf/leaf_knn.hpp"
#include "wf/random_forest.hpp"

namespace stob::wf {
namespace {

struct Problem {
  FeatureMatrix x;
  std::vector<int> labels;
  int classes = 0;
};

/// Gaussian blobs; `spread` near the class separation makes trees deep and
/// tie-prone. `constant_cols` columns are all-equal (exercise the
/// constant-feature skip), and with `zero_rows` the first rows are
/// all-zero like features of an empty trace.
Problem make_problem(int classes, int per_class, std::size_t features, std::uint64_t seed,
                     std::size_t constant_cols = 0, std::size_t zero_rows = 0) {
  Problem p;
  p.classes = classes;
  p.x = FeatureMatrix(static_cast<std::size_t>(classes) * static_cast<std::size_t>(per_class),
                      features);
  Rng rng(seed);
  std::size_t r = 0;
  for (int c = 0; c < classes; ++c) {
    for (int s = 0; s < per_class; ++s, ++r) {
      for (std::size_t f = 0; f < features; ++f) {
        if (f < constant_cols) {
          p.x.at(r, f) = 7.5;
        } else if (r < zero_rows) {
          p.x.at(r, f) = 0.0;
        } else {
          p.x.at(r, f) = rng.normal(static_cast<double>(c), 2.0);
        }
      }
      p.labels.push_back(c);
    }
  }
  return p;
}

/// Reference implementations walking the per-tree recursive structures the
/// flat pool was built from.
int reference_predict(const RandomForest& forest, std::span<const double> x) {
  std::vector<int> votes(static_cast<std::size_t>(forest.num_classes()), 0);
  for (const DecisionTree& tree : forest.trees()) {
    votes[static_cast<std::size_t>(tree.predict(x))] += 1;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<double> reference_proba(const RandomForest& forest, std::span<const double> x) {
  std::vector<double> acc(static_cast<std::size_t>(forest.num_classes()), 0.0);
  for (const DecisionTree& tree : forest.trees()) {
    const std::vector<double> p = tree.predict_proba(x);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(forest.tree_count());
  return acc;
}

std::vector<std::uint32_t> reference_leaves(const RandomForest& forest,
                                            std::span<const double> x) {
  std::vector<std::uint32_t> leaves;
  for (const DecisionTree& tree : forest.trees()) leaves.push_back(tree.leaf_id(x));
  return leaves;
}

TEST(FlatForestParity, MatchesRecursiveTreesAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 0xF0E57ull, 42ull}) {
    for (int classes : {2, 5, 9}) {
      const Problem p = make_problem(classes, 12, 40, seed);
      RandomForest::Config cfg;
      cfg.num_trees = 20;
      cfg.seed = seed ^ 0xABCDull;
      RandomForest forest(cfg);
      forest.fit({&p.x, p.labels, p.classes});
      for (std::size_t r = 0; r < p.x.rows(); ++r) {
        const std::span<const double> row = p.x.row(r);
        EXPECT_EQ(forest.predict(row), reference_predict(forest, row));
        EXPECT_EQ(forest.predict_proba(row), reference_proba(forest, row));  // bit-exact
        EXPECT_EQ(forest.leaf_vector(row), reference_leaves(forest, row));
      }
    }
  }
}

TEST(FlatForestParity, BatchMatchesPerSample) {
  const Problem p = make_problem(6, 15, 30, 99, /*constant_cols=*/3, /*zero_rows=*/5);
  RandomForest::Config cfg;
  cfg.num_trees = 25;
  RandomForest forest(cfg);
  forest.fit({&p.x, p.labels, p.classes});

  const std::vector<int> preds = forest.predict_batch(p.x);
  const std::vector<double> probas = forest.predict_proba_batch(p.x);
  const std::vector<std::uint32_t> leaves = forest.leaf_batch(p.x);
  const auto classes = static_cast<std::size_t>(p.classes);
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    const std::span<const double> row = p.x.row(r);
    EXPECT_EQ(preds[r], forest.predict(row));
    const std::vector<double> pr = forest.predict_proba(row);
    for (std::size_t c = 0; c < classes; ++c) {
      EXPECT_EQ(probas[r * classes + c], pr[c]);  // bit-exact, not NEAR
    }
    const std::vector<std::uint32_t> lv = forest.leaf_vector(row);
    for (std::size_t t = 0; t < forest.tree_count(); ++t) {
      EXPECT_EQ(leaves[r * forest.tree_count() + t], lv[t]);
    }
  }
}

TEST(FlatForestParity, SingleClassDegenerates) {
  Problem p = make_problem(1, 8, 10, 3);
  RandomForest::Config cfg;
  cfg.num_trees = 5;
  RandomForest forest(cfg);
  forest.fit({&p.x, p.labels, 1});
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    EXPECT_EQ(forest.predict(p.x.row(r)), 0);
    EXPECT_EQ(forest.predict_proba(p.x.row(r)), std::vector<double>{1.0});
  }
  EXPECT_EQ(forest.predict_batch(p.x), std::vector<int>(p.x.rows(), 0));
}

TEST(FlatForestParity, ParallelFitIdenticalToSerial) {
  const Problem p = make_problem(5, 14, 25, 7);
  for (std::size_t jobs : {std::size_t{2}, std::size_t{3}, std::size_t{8}}) {
    RandomForest::Config serial_cfg;
    serial_cfg.num_trees = 16;
    serial_cfg.fit_jobs = 1;
    RandomForest::Config par_cfg = serial_cfg;
    par_cfg.fit_jobs = jobs;
    RandomForest a(serial_cfg), b(par_cfg);
    a.fit({&p.x, p.labels, p.classes});
    b.fit({&p.x, p.labels, p.classes});
    for (std::size_t r = 0; r < p.x.rows(); ++r) {
      EXPECT_EQ(a.predict_proba(p.x.row(r)), b.predict_proba(p.x.row(r)));
      EXPECT_EQ(a.leaf_vector(p.x.row(r)), b.leaf_vector(p.x.row(r)));
    }
  }
}

TEST(LeafKnnKernel, MatchesNaiveCounts) {
  Rng rng(0xC0DEull);
  const std::size_t trees = 33, n_train = 150, n_query = 70;
  std::vector<std::uint32_t> train(n_train * trees), query(n_query * trees);
  // Small leaf-id alphabet so agreements are frequent.
  for (auto& v : train) v = static_cast<std::uint32_t>(rng.uniform_int(0, 6));
  for (auto& v : query) v = static_cast<std::uint32_t>(rng.uniform_int(0, 6));

  std::vector<int> tiled(n_query * n_train);
  leaf_match_matrix(train, n_train, query, n_query, trees, tiled);
  for (std::size_t q = 0; q < n_query; ++q) {
    std::vector<int> single(n_train);
    leaf_match_counts(train, n_train, {query.data() + q * trees, trees}, single);
    for (std::size_t i = 0; i < n_train; ++i) {
      int naive = 0;
      for (std::size_t t = 0; t < trees; ++t) {
        naive += query[q * trees + t] == train[i * trees + t];
      }
      EXPECT_EQ(tiled[q * n_train + i], naive);
      EXPECT_EQ(single[i], naive);
    }
  }
}

TEST(KfpParity, KnnBatchMatchesPerSample) {
  const Problem p = make_problem(4, 20, 20, 0xBEEFull);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 15;
  cfg.use_knn = true;
  KFingerprint clf(cfg);
  clf.fit(p.x, p.labels);
  const std::vector<int> batch = clf.predict_batch(p.x);
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    EXPECT_EQ(batch[r], clf.predict(p.x.row(r)));
  }
}

TEST(KfpParity, CrossValidateParallelFoldsIdentical) {
  const Problem p = make_problem(4, 12, 18, 0x5EEDull);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 12;
  const EvalResult serial = cross_validate(p.x, p.labels, cfg, 4, 77, /*jobs=*/1);
  for (std::size_t jobs : {std::size_t{2}, std::size_t{4}, std::size_t{7}}) {
    const EvalResult par = cross_validate(p.x, p.labels, cfg, 4, 77, jobs);
    EXPECT_EQ(serial, par);  // defaulted ==: every field, bit for bit
  }
  // Inner training parallelism must not leak into results either.
  KFingerprint::Config inner = cfg;
  inner.forest.fit_jobs = 4;
  EXPECT_EQ(serial, cross_validate(p.x, p.labels, cfg, 4, 77, 1));
  EXPECT_EQ(serial, cross_validate(p.x, p.labels, inner, 4, 77, 2));
}

TEST(KfpParity, EmptyTraceRowsSurviveThePipeline) {
  // Feature rows of empty traces are all zeros; they must train and
  // classify without UB and identically in batch and per-sample form.
  Dataset d;
  Rng rng(5);
  for (int c = 0; c < 3; ++c) {
    for (int s = 0; s < 6; ++s) {
      Trace t;
      if (c != 0 || s != 0) {  // one genuinely empty trace in class 0
        double time = 0.0;
        for (int k = 0; k < 4 + 2 * c; ++k) {
          t.add(time, k % 2 == 0 ? +1 : -1, 600 + 100 * c);
          time += rng.uniform(0.001, 0.01);
        }
      }
      d.add(std::move(t), c);
    }
  }
  const FeatureMatrix x = kfp_features(d);
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 10;
  KFingerprint clf(cfg);
  clf.fit(x, d.labels());
  const std::vector<int> batch = clf.predict_batch(x);
  for (std::size_t r = 0; r < x.rows(); ++r) EXPECT_EQ(batch[r], clf.predict(x.row(r)));
}

// ----------------------------------------------- accuracy aggregation

TEST(ConfusionMatrix, ComparesByValue) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 0);
  EXPECT_EQ(a, b);
  b.add(1, 0);
  EXPECT_NE(a, b);
}

TEST(CrossValidate, MeanAndStdAggregateFoldAccuracies) {
  // Two cleanly separable classes: every fold should be perfect, so the
  // aggregate must be exactly mean=1, std=0 over `folds` entries.
  Problem p = make_problem(2, 10, 8, 21);
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    p.x.at(r, 0) = p.labels[r] == 0 ? -100.0 : 100.0;  // trivially separable
  }
  KFingerprint::Config cfg;
  cfg.forest.num_trees = 8;
  const EvalResult res = cross_validate(p.x, p.labels, cfg, 5, 3);
  ASSERT_EQ(res.fold_accuracies.size(), 5u);
  EXPECT_EQ(res.mean_accuracy, 1.0);
  EXPECT_EQ(res.std_accuracy, 0.0);
  // Confusion matrix totals every test sample exactly once.
  std::uint64_t total = 0;
  for (int t = 0; t < 2; ++t) {
    for (int q = 0; q < 2; ++q) total += res.confusion.at(t, q);
  }
  EXPECT_EQ(total, p.x.rows());
}

TEST(CrossValidate, TestFoldMayContainClassAbsentFromTraining) {
  // Class 2 has a single sample: whichever fold holds it trains without
  // class 2 entirely. The protocol must not crash, must still test that
  // sample (it cannot be predicted correctly), and the confusion matrix
  // row for class 2 must land in some other class's column.
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  Rng rng(13);
  for (int c = 0; c < 2; ++c) {
    for (int s = 0; s < 8; ++s) {
      rows.push_back({rng.normal(c * 10.0, 1.0), rng.normal(0, 1)});
      labels.push_back(c);
    }
  }
  rows.push_back({rng.normal(20.0, 1.0), rng.normal(0, 1)});
  labels.push_back(2);
  const FeatureMatrix x = FeatureMatrix::from_rows(rows);

  KFingerprint::Config cfg;
  cfg.forest.num_trees = 8;
  const EvalResult res = cross_validate(x, labels, cfg, 4, 9);
  ASSERT_EQ(res.confusion.classes(), 3u);
  std::uint64_t class2_row = 0;
  for (int pcol = 0; pcol < 3; ++pcol) class2_row += res.confusion.at(2, pcol);
  EXPECT_EQ(class2_row, 1u);          // the lone sample was tested exactly once
  EXPECT_EQ(res.confusion.at(2, 2), 0u);  // and could not be predicted as class 2
  std::uint64_t total = 0;
  for (int t = 0; t < 3; ++t) {
    for (int pcol = 0; pcol < 3; ++pcol) total += res.confusion.at(t, pcol);
  }
  EXPECT_EQ(total, x.rows());  // every sample tested exactly once overall
}

}  // namespace
}  // namespace stob::wf
