#include "defenses/policy.hpp"

#include <stdexcept>

#include "defenses/baseline_policies.hpp"
#include "defenses/regulator.hpp"
#include "defenses/wtfpad.hpp"

namespace stob::defenses {

void Policy::finish(double /*end_time*/, std::vector<PacketOut>& /*out*/) {}

wf::Trace run_policy(Policy& policy, const wf::Trace& in, Rng& rng) {
  policy.begin(rng);
  std::vector<PacketOut> outs;
  outs.reserve(in.size() + in.size() / 2);
  for (const wf::PacketRecord& p : in.packets()) {
    policy.on_packet({p.time, p.direction, p.size}, outs);
  }
  const double end = in.empty() ? 0.0 : in.packets().back().time;
  policy.finish(end, outs);

  wf::Trace out;
  out.packets().reserve(outs.size());
  for (const PacketOut& p : outs) out.add(p.time, p.direction, p.size);
  out.normalize();
  return out;
}

// --------------------------------------------------------------- ChainPolicy

std::string ChainPolicy::name() const {
  std::string n = "chain(";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i) n += "+";
    n += stages_[i]->name();
  }
  return n + ")";
}

void ChainPolicy::begin(Rng& rng) {
  rng_ = &rng;
  buffer_.clear();
}

void ChainPolicy::on_packet(const PacketEvent& ev, std::vector<PacketOut>& /*out*/) {
  buffer_.push_back(ev);
}

void ChainPolicy::finish(double /*end_time*/, std::vector<PacketOut>& out) {
  // Materialize between stages: each stage sees the previous stage's
  // normalized output, exactly how the trace transforms composed.
  // (The buffered input is fed to stage 0 in arrival order, un-normalized —
  // the same view the first trace transform used to get.)
  wf::Trace cur;
  cur.packets().reserve(buffer_.size());
  for (const PacketEvent& ev : buffer_) cur.add(ev.time, ev.direction, ev.size);
  for (const auto& stage : stages_) cur = run_policy(*stage, cur, *rng_);
  for (const wf::PacketRecord& p : cur.packets()) {
    out.push_back({p.time, p.direction, p.size, false});
  }
}

// ------------------------------------------------------------- PolicyDefense

wf::Trace PolicyDefense::apply(const wf::Trace& trace, Rng& rng) const {
  const std::unique_ptr<Policy> policy = factory_();
  return run_policy(*policy, trace, rng);
}

// ------------------------------------------------------------------ registry

const std::vector<PolicyInfo>& policy_zoo() {
  static const std::vector<PolicyInfo> zoo = [] {
    std::vector<PolicyInfo> v;
    v.push_back({"split",
                 {"TLS", "Obfuscation", {.packet_size = true}},
                 [] { return std::make_unique<SplitStreamPolicy>(); }});
    v.push_back({"delay",
                 {"TLS", "Obfuscation", {.timing = true}},
                 [] { return std::make_unique<DelayStreamPolicy>(); }});
    v.push_back({"combined",
                 {"TLS", "Obfuscation", {.timing = true, .packet_size = true}},
                 [] {
                   std::vector<std::unique_ptr<Policy>> stages;
                   stages.push_back(std::make_unique<SplitStreamPolicy>());
                   stages.push_back(std::make_unique<DelayStreamPolicy>());
                   return std::make_unique<ChainPolicy>(std::move(stages));
                 }});
    v.push_back({"regulator",
                 {"Stob", "Regularization", {.padding = true, .timing = true}},
                 [] { return std::make_unique<RegulatorPolicy>(); }});
    v.push_back({"wtfpad",
                 {"Stob", "Obfuscation", {.padding = true}},
                 [] { return std::make_unique<WtfPadPolicy>(); }});
    return v;
  }();
  return zoo;
}

namespace {

const PolicyInfo& find_policy(std::string_view name) {
  for (const PolicyInfo& info : policy_zoo()) {
    if (info.name == name) return info;
  }
  std::string known;
  for (const PolicyInfo& info : policy_zoo()) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  throw std::invalid_argument("defenses: unknown policy '" + std::string(name) +
                              "' (known: " + known + ")");
}

}  // namespace

std::unique_ptr<Policy> make_policy(std::string_view name) {
  return find_policy(name).factory();
}

std::unique_ptr<TraceDefense> make_policy_defense(std::string_view name) {
  const PolicyInfo& info = find_policy(name);
  return std::make_unique<PolicyDefense>(info.name, info.meta, info.factory);
}

}  // namespace stob::defenses
