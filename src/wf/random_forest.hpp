// Random forest classifier (bagging + per-split feature subsampling), the
// learner behind k-FP. Deterministic given the seed — including under
// parallel training (fit_jobs > 1): per-tree RNG streams are forked
// serially up front, so every tree sees the same stream regardless of
// scheduling, and results are byte-identical to a serial fit.
//
// After fit() the per-tree node structures are flattened into one
// contiguous pool of packed 24-byte nodes (all trees back to back; layout
// in forest_layout.hpp), which the batch kernels (predict_batch /
// predict_proba_batch / leaf_batch) walk over blocks of samples: tree
// nodes stay cache-hot across a block instead of being re-fetched per
// sample. Descent itself goes through kernels::descend_block — the
// runtime-dispatched scalar/AVX2 kernel of simd_kernels.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "wf/decision_tree.hpp"
#include "wf/feature_matrix.hpp"
#include "wf/forest_layout.hpp"

namespace stob::wf {

class RandomForest {
 public:
  struct Config {
    std::size_t num_trees = 100;
    DecisionTree::Config tree;
    std::uint64_t seed = 0xF0E57ull;
    /// Bootstrap sample fraction per tree (with replacement).
    double bootstrap_fraction = 1.0;
    /// Worker threads for tree training (1 = serial, 0 = hardware default).
    /// Never affects results, only wall clock.
    std::size_t fit_jobs = 1;
  };

  RandomForest() : RandomForest(Config{}) {}
  explicit RandomForest(Config cfg) : cfg_(cfg) {}

  void fit(const TrainView& view);

  /// Majority vote across trees.
  int predict(std::span<const double> x) const;

  /// Mean per-class probability across trees.
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Leaf-id vector (one entry per tree, tree-local node index); k-FP's
  /// fingerprint of a sample.
  std::vector<std::uint32_t> leaf_vector(std::span<const double> x) const;

  /// Batched predict over a whole matrix; out[i] corresponds to x.row(i).
  /// Identical results to calling predict() per row.
  std::vector<int> predict_batch(const FeatureMatrix& x) const;

  /// Batched probabilities, row-major rows x num_classes(). Bit-identical
  /// to predict_proba() per row (same tree-order accumulation).
  std::vector<double> predict_proba_batch(const FeatureMatrix& x) const;

  /// Batched leaf vectors, row-major rows x tree_count(), tree-local ids.
  std::vector<std::uint32_t> leaf_batch(const FeatureMatrix& x) const;

  /// Raw-storage leaf_batch over `rows` samples at x + r*stride (stride in
  /// doubles). Lets FeatureStore consumers fingerprint mmap'd blocks
  /// without copying them into a FeatureMatrix first. `out` must hold
  /// rows x tree_count() entries.
  void leaf_batch(const double* x, std::size_t stride, std::size_t rows,
                  std::uint32_t* out) const;

  std::size_t tree_count() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }
  bool trained() const { return !trees_.empty(); }

  /// Per-tree structures (kept after flattening; parity tests walk both).
  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  /// All trees' nodes in one contiguous pool of packed FlatNode records
  /// (forest_layout.hpp). Child and distribution offsets are absolute;
  /// tree_base[t] is tree t's root (and the bias subtracted to recover
  /// tree-local leaf ids).
  struct Flat {
    std::vector<FlatNode> nodes;
    std::vector<double> dists;
    std::vector<std::uint32_t> tree_base;  // tree_count()+1 entries
  };

  void flatten();
  std::uint32_t descend_flat(std::uint32_t root, const double* x) const;

  Config cfg_;
  int num_classes_ = 0;
  std::vector<DecisionTree> trees_;
  Flat flat_;
};

}  // namespace stob::wf
