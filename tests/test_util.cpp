// Unit tests for util: units, rng, stats, csv, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/bench_json.hpp"
#include "util/buffer_pool.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace stob {
namespace {

// ------------------------------------------------------------------- units

TEST(Units, DurationConversions) {
  EXPECT_EQ(Duration::micros(3).ns(), 3000);
  EXPECT_EQ(Duration::millis(2).ns(), 2'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).sec(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::seconds_f(0.25).ms(), 250.0);
}

TEST(Units, DurationArithmetic) {
  const Duration a = Duration::millis(10);
  const Duration b = Duration::millis(4);
  EXPECT_EQ((a + b).ns(), Duration::millis(14).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(6).ns());
  EXPECT_EQ((a * 3).ns(), Duration::millis(30).ns());
  EXPECT_EQ((a * 0.5).ns(), Duration::millis(5).ns());
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
}

TEST(Units, TimePointArithmetic) {
  TimePoint t = TimePoint::zero();
  t += Duration::seconds(2);
  EXPECT_EQ(t.ns(), 2'000'000'000);
  EXPECT_EQ((t - TimePoint::zero()).ns(), 2'000'000'000);
  EXPECT_EQ((t + Duration::millis(1)).ns(), 2'001'000'000);
  EXPECT_LT(t, TimePoint::max());
}

TEST(Units, BytesConversions) {
  EXPECT_EQ(Bytes::kibi(2).count(), 2048);
  EXPECT_EQ(Bytes::mebi(1).count(), 1048576);
  EXPECT_EQ(Bytes(100).bits(), 800);
  EXPECT_EQ((Bytes(3) + Bytes(4)).count(), 7);
  EXPECT_EQ((Bytes(10) - Bytes(4)).count(), 6);
}

TEST(Units, DataRateTransmitTime) {
  // 1000 bytes at 8 Mbps = 1 ms.
  EXPECT_EQ(DataRate::mbps(8).transmit_time(Bytes(1000)).ns(), 1'000'000);
  // Rounds up: 1 byte at 1 Gbps = 8 ns.
  EXPECT_EQ(DataRate::gbps(1).transmit_time(Bytes(1)).ns(), 8);
  // Zero rate means effectively never.
  EXPECT_GE(DataRate(0).transmit_time(Bytes(1)), Duration::seconds(3600));
}

TEST(Units, DataRateBytesIn) {
  EXPECT_EQ(DataRate::mbps(8).bytes_in(Duration::millis(1)).count(), 1000);
  // No overflow at 100 Gbps over one second.
  EXPECT_EQ(DataRate::gbps(100).bytes_in(Duration::seconds(1)).count(), 12'500'000'000LL);
}

TEST(Units, DataRateFrom) {
  const DataRate r = DataRate::from(Bytes(1000), Duration::millis(1));
  EXPECT_EQ(r.bits_per_sec(), 8'000'000);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (int h : hits) EXPECT_GT(h, 700);  // expected 1000 each
}

TEST(Rng, UniformDoubleBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  stats::Welford w;
  for (int i = 0; i < 50000; ++i) w.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(w.mean(), 5.0, 0.05);
  EXPECT_NEAR(w.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  stats::Welford w;
  for (int i = 0; i < 50000; ++i) w.add(rng.exponential(4.0));
  EXPECT_NEAR(w.mean(), 0.25, 0.01);
}

TEST(Rng, RayleighMean) {
  Rng rng(17);
  stats::Welford w;
  for (int i = 0; i < 50000; ++i) w.add(rng.rayleigh(1.0));
  EXPECT_NEAR(w.mean(), std::sqrt(3.14159265 / 2.0), 0.02);
}

TEST(Rng, ParetoBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(23);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.weighted_index(w) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedIndexThrowsOnZeroTotal) {
  Rng rng(1);
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(w), std::invalid_argument);
}

TEST(Rng, UniformIntFullRange) {
  // Regression: `hi - lo` used to be computed in int64_t, which is signed
  // overflow (UB) for the full 64-bit range. The full range maps to
  // range == 0 (wraparound) and must return raw 64-bit draws.
  Rng rng(33);
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(lo, hi);
    saw_negative |= v < 0;
    saw_positive |= v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Rng, UniformIntExtremeBounds) {
  Rng rng(35);
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  // Degenerate one-value ranges at both extremes.
  EXPECT_EQ(rng.uniform_int(lo, lo), lo);
  EXPECT_EQ(rng.uniform_int(hi, hi), hi);
  // Two-value range spanning the most negative values.
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.uniform_int(lo, lo + 1);
    EXPECT_TRUE(v == lo || v == lo + 1);
  }
  // Ranges wider than INT64_MAX (range itself would overflow int64_t): the
  // result must still land inside the bounds.
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t a = rng.uniform_int(lo, 0);
    EXPECT_LE(a, 0);
    const std::int64_t b = rng.uniform_int(-1, hi);
    EXPECT_GE(b, -1);
    const std::int64_t c = rng.uniform_int(lo, hi - 1);
    EXPECT_LE(c, hi - 1);
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream should not replicate the parent's.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 5);
}

// ------------------------------------------------------------------- stats

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), std::sqrt(2.5));
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(stats::mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 0.0);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(stats::median(xs), 25.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 25), 17.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(stats::median(xs), 25.0);
}

TEST(Stats, IqrInliers) {
  std::vector<double> xs{10, 11, 12, 13, 14, 1000};  // one wild outlier
  const auto keep = stats::iqr_inlier_indices(xs);
  EXPECT_EQ(keep.size(), 5u);
  for (std::size_t i : keep) EXPECT_LT(xs[i], 100.0);
}

TEST(Stats, WelfordMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  stats::Welford w;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0, 10);
    xs.push_back(v);
    w.add(v);
  }
  EXPECT_NEAR(w.mean(), stats::mean(xs), 1e-9);
  EXPECT_NEAR(w.variance(), stats::variance(xs), 1e-6);
}

TEST(Stats, MinMaxSum) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(stats::min(xs), -1.0);
  EXPECT_DOUBLE_EQ(stats::max(xs), 7.0);
  EXPECT_DOUBLE_EQ(stats::sum(xs), 11.0);
}

// ------------------------------------------------- percentile edge cases
//
// These pin the documented convention (type-7 linear interpolation over
// rank p/100 * (n-1)) and the edge cases that used to be UB: a NaN p hit
// std::clamp (UB) and then a NaN -> size_t cast (UB again).

TEST(Stats, PercentileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(stats::percentile({}, 50.0), 0.0);
  const std::vector<double> one{42.0};
  for (double p : {0.0, 37.5, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(stats::percentile(one, p), 42.0) << p;
  }
}

TEST(Stats, PercentileEndpointsAreExactMinMax) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.uniform(-1e6, 1e6));
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), stats::min(xs));
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100.0), stats::max(xs));
  // Out-of-range p clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(stats::percentile(xs, -50.0), stats::min(xs));
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 250.0), stats::max(xs));
}

TEST(Stats, PercentileAllEqualIsConstant) {
  const std::vector<double> xs(64, 3.25);
  for (double p : {0.0, 10.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(stats::percentile(xs, p), 3.25) << p;
  }
}

TEST(Stats, PercentileNanPropagatesInsteadOfUb) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(stats::percentile(xs, std::nan(""))));
  EXPECT_TRUE(std::isnan(stats::percentile_sorted(xs, std::nan(""))));
}

TEST(Stats, PercentilePinsLinearInterpolation) {
  // rank = p/100 * (n-1); n = 5 => p=25 lands exactly on index 1, p=30 is
  // 0.2 of the way from index 1 to 2 (the numpy 'linear' / R type-7 rule).
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 30.0), 22.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 87.5), 45.0);
}

TEST(Stats, PercentileMonotoneInP) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(0, 1000));
  double prev = stats::percentile(xs, 0.0);
  for (double p = 1.0; p <= 100.0; p += 1.0) {
    const double cur = stats::percentile(xs, p);
    EXPECT_GE(cur, prev) << p;
    prev = cur;
  }
}

TEST(Stats, IqrMatchesQuartileDifference) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 321; ++i) xs.push_back(rng.uniform(-50, 50));
  EXPECT_DOUBLE_EQ(stats::iqr(xs),
                   stats::percentile(xs, 75.0) - stats::percentile(xs, 25.0));
  EXPECT_DOUBLE_EQ(stats::iqr({}), 0.0);
}

// --------------------------------------------------------------------- csv

TEST(Csv, SplitBasic) {
  const auto cells = csv::split_line("a,b,,c");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "");
  EXPECT_EQ(cells[3], "c");
}

TEST(Csv, RoundTripFile) {
  const auto path = std::filesystem::temp_directory_path() / "stob_csv_test.csv";
  const std::vector<csv::Row> rows{{"h1", "h2"}, {"1", "2.5"}, {"3", "4.5"}};
  csv::write_file(path, rows);
  const auto back = csv::read_file(path);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1][1], "2.5");
  std::filesystem::remove(path);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(csv::read_file("/nonexistent/file.csv"), std::runtime_error);
}

TEST(Csv, JoinInverseOfSplit) {
  const csv::Row row{"x", "y", "z"};
  EXPECT_EQ(csv::split_line(csv::join(row)), row);
}

TEST(Csv, QuotesOnlyCellsThatNeedIt) {
  EXPECT_EQ(csv::quote_cell("plain"), "plain");
  EXPECT_EQ(csv::quote_cell("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv::quote_cell("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv::quote_cell("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(csv::quote_cell("semi;colon", ';'), "\"semi;colon\"");
  EXPECT_EQ(csv::quote_cell("semi;colon", ','), "semi;colon");
}

TEST(Csv, SplitLineHonoursQuoting) {
  const auto cells = csv::split_line(R"(a,"b,c","d""e",f)");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b,c");
  EXPECT_EQ(cells[2], "d\"e");
  EXPECT_EQ(cells[3], "f");
}

// The RFC 4180 regression: commas, quotes, and newlines inside cells must
// survive write_file -> read_file unchanged (the Pareto CSV carries
// free-form defense and fault names).
TEST(Csv, RoundTripsHostileCells) {
  const auto path = std::filesystem::temp_directory_path() / "stob_csv_hostile.csv";
  const std::vector<csv::Row> rows{
      {"name", "note"},
      {"plain", "no quoting needed"},
      {"comma,inside", "quote\"inside"},
      {"multi\nline", "both,\"and\nmore"},
      {"", "trailing-empty-next"},
      {"crlf\r\ninside", "end"},
  };
  csv::write_file(path, rows);
  EXPECT_EQ(csv::read_file(path), rows);
  std::filesystem::remove(path);
}

TEST(Csv, ParseContentSkipsBlankLinesAndHandlesCrlf) {
  const auto rows = csv::parse_content("a,b\r\n\r\n\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (csv::Row{"a", "b"}));
  EXPECT_EQ(rows[1], (csv::Row{"c", "d"}));
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(csv::parse_content("a,\"unclosed\n"), std::runtime_error);
}

// --------------------------------------------------------------------- log

TEST(Log, LevelFiltering) {
  const auto prev = log::level();
  log::set_level(log::Level::Error);
  EXPECT_EQ(log::level(), log::Level::Error);
  // Below-threshold writes are silently discarded (no crash, no output).
  STOB_DEBUG("test") << "should not appear";
  log::set_level(prev);
}


// ------------------------------------------------------------------- welford

TEST(Stats, WelfordMergeMatchesSingleStream) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 4.25, 0.0, 7.5, -1.5};
  stats::Welford whole;
  for (double x : xs) whole.add(x);
  // Split at every point: streaming a then b must equal merge(a, b).
  for (std::size_t split = 0; split <= xs.size(); ++split) {
    stats::Welford a, b;
    for (std::size_t i = 0; i < split; ++i) a.add(xs[i]);
    for (std::size_t i = split; i < xs.size(); ++i) b.add(xs[i]);
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  }
  // Merging an empty accumulator is a no-op both ways.
  stats::Welford empty, copy = whole;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), whole.count());
  EXPECT_NEAR(copy.mean(), whole.mean(), 1e-12);
  empty.merge(whole);
  EXPECT_NEAR(empty.variance(), whole.variance(), 1e-12);
}

// ---------------------------------------------------------------- bench json

namespace {

std::string snapshot_json(bool smoke, const std::vector<std::pair<std::string, double>>& rows,
                          bool with_nested_baseline = false) {
  std::string s = "{\n  \"schema\": \"stob-bench-v1\",\n  \"git_rev\": \"abc1234\",\n";
  s += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    s += "    {\"name\": \"" + rows[i].first +
         "\", \"wall_ms\": 10.0, \"cpu_ms\": 9.0, \"events\": 1000, "
         "\"events_per_sec\": " +
         std::to_string(rows[i].second) + ", \"allocs\": 5, \"iters\": 3}";
    s += i + 1 < rows.size() ? ",\n" : "\n";
  }
  s += "  ]";
  if (with_nested_baseline) {
    s += ",\n  \"baseline\": {\"benchmarks\": [\n"
         "    {\"name\": \"stale.entry\", \"events_per_sec\": 1.0}\n  ]}";
  }
  s += "\n}\n";
  return s;
}

}  // namespace

TEST(BenchJson, ParsesEntriesAndStopsAtNestedBaseline) {
  const std::string json = snapshot_json(
      false, {{"sim.page_load", 2000.0}, {"wf.kfp.speedup_vs_baseline", 1.5}, {"wf.kfp", 500.0}},
      /*with_nested_baseline=*/true);
  const bench::BenchSnapshot snap = bench::parse_snapshot(json);
  EXPECT_EQ(snap.git_rev, "abc1234");
  EXPECT_FALSE(snap.smoke);
  ASSERT_EQ(snap.entries.size(), 2u);  // synthetic row skipped, nested ignored
  EXPECT_EQ(snap.entries[0].name, "sim.page_load");
  EXPECT_DOUBLE_EQ(snap.entries[0].events_per_sec, 2000.0);
  EXPECT_EQ(snap.entries[0].events, 1000u);
  EXPECT_EQ(snap.entries[0].iters, 3);
  EXPECT_EQ(snap.entries[1].name, "wf.kfp");
  EXPECT_EQ(snap.find("wf.kfp"), &snap.entries[1]);
  EXPECT_EQ(snap.find("stale.entry"), nullptr);
  EXPECT_EQ(snap.find("missing"), nullptr);
  EXPECT_THROW(bench::parse_snapshot("{\"not\": \"ours\"}"), std::runtime_error);
}

TEST(BenchJson, GatePassesOnNoRegression) {
  const bench::BenchSnapshot base =
      bench::parse_snapshot(snapshot_json(false, {{"a", 100.0}, {"b", 200.0}}));
  const bench::BenchSnapshot fresh =
      bench::parse_snapshot(snapshot_json(false, {{"a", 95.0}, {"b", 240.0}}));
  const bench::GateResult result = bench::gate(base, fresh);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.missing.empty());
  EXPECT_TRUE(result.regressions.empty());
  EXPECT_FALSE(result.ratios_skipped);
}

TEST(BenchJson, GateFailsOnInjectedRegression) {
  // Synthetic regression: benchmark "b" drops to half its baseline
  // throughput, well past the 25% tolerance.
  const bench::BenchSnapshot base =
      bench::parse_snapshot(snapshot_json(false, {{"a", 100.0}, {"b", 200.0}}));
  const bench::BenchSnapshot fresh =
      bench::parse_snapshot(snapshot_json(false, {{"a", 100.0}, {"b", 100.0}}));
  const bench::GateResult result = bench::gate(base, fresh);
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].name, "b");
  EXPECT_DOUBLE_EQ(result.regressions[0].ratio, 0.5);
  // A tighter threshold catches smaller slips too.
  bench::GateOptions tight;
  tight.max_regression = 0.05;
  const bench::BenchSnapshot slip =
      bench::parse_snapshot(snapshot_json(false, {{"a", 90.0}, {"b", 200.0}}));
  EXPECT_FALSE(bench::gate(base, slip, tight).ok);
}

TEST(BenchJson, GateFlagsMissingBenchmarks) {
  const bench::BenchSnapshot base =
      bench::parse_snapshot(snapshot_json(false, {{"a", 100.0}, {"b", 200.0}}));
  const bench::BenchSnapshot fresh = bench::parse_snapshot(snapshot_json(false, {{"a", 100.0}}));
  const bench::GateResult result = bench::gate(base, fresh);
  EXPECT_FALSE(result.ok);  // coverage gate: every baseline benchmark must run
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "b");
}

TEST(BenchJson, SmokeMismatchSkipsThroughputGateOnly) {
  // Full-run baseline vs smoke fresh: throughput ratios are meaningless, so
  // the ratio gate is skipped — but coverage is still enforced.
  const bench::BenchSnapshot base =
      bench::parse_snapshot(snapshot_json(false, {{"a", 1000.0}}));
  const bench::BenchSnapshot fresh = bench::parse_snapshot(snapshot_json(true, {{"a", 10.0}}));
  const bench::GateResult skipped = bench::gate(base, fresh);
  EXPECT_TRUE(skipped.ok);
  EXPECT_TRUE(skipped.ratios_skipped);
  EXPECT_TRUE(skipped.regressions.empty());
  bench::GateOptions force;
  force.ignore_smoke_mismatch = true;
  const bench::GateResult forced = bench::gate(base, fresh, force);
  EXPECT_FALSE(forced.ok);
  EXPECT_FALSE(forced.ratios_skipped);
  ASSERT_EQ(forced.regressions.size(), 1u);
}

TEST(BenchJson, NewBenchmarksAreInformationalNotGated) {
  // A suite gaining coverage (fresh-only benchmark "c") must never fail
  // the gate: the candidate rides along in compare() after the baseline
  // rows, and gate() reports it under `added` instead of `regressions`.
  const bench::BenchSnapshot base =
      bench::parse_snapshot(snapshot_json(false, {{"a", 100.0}, {"b", 200.0}}));
  const bench::BenchSnapshot fresh = bench::parse_snapshot(
      snapshot_json(false, {{"a", 100.0}, {"b", 200.0}, {"c", 1.0}}));

  const std::vector<bench::Comparison> rows = bench::compare(base, fresh);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2].name, "c");  // fresh-only rows follow baseline order
  EXPECT_EQ(rows[2].baseline_eps, 0.0);
  EXPECT_EQ(rows[2].fresh_eps, 1.0);
  EXPECT_EQ(rows[2].ratio, 0.0);  // ratio 0 must NOT count as a regression

  const bench::GateResult result = bench::gate(base, fresh);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.regressions.empty());
  EXPECT_TRUE(result.missing.empty());
  ASSERT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.added[0], "c");
}

// --------------------------------------------------------------- buffer pool

TEST(BufferPool, SpillsWhenBucketCapExceededAndOnOversize) {
  mem::pool_purge();
  const mem::PoolStats before = mem::pool_stats();

  // The 64 KiB bucket caches at most 4 buffers (256 KiB per-bucket cap), so
  // freeing 6 spills 2 back to the allocator.
  constexpr std::size_t kBig = 64 * 1024;
  std::vector<void*> bufs;
  for (int i = 0; i < 6; ++i) bufs.push_back(mem::pool_alloc(kBig));
  for (void* p : bufs) mem::pool_free(p, kBig);
  mem::PoolStats now = mem::pool_stats();
  EXPECT_EQ(now.spills - before.spills, 2u);
  EXPECT_EQ(now.cached, 4u + before.cached);

  // Above the largest bucket the pool never caches: alloc is a miss and the
  // free spills immediately.
  constexpr std::size_t kHuge = 128 * 1024;
  void* huge = mem::pool_alloc(kHuge);
  mem::pool_free(huge, kHuge);
  now = mem::pool_stats();
  EXPECT_EQ(now.spills - before.spills, 3u);

  // Re-allocating a cached size is a hit, and the freed buffer re-parks.
  const std::uint64_t hits_before = now.hits;
  void* again = mem::pool_alloc(kBig);
  mem::pool_free(again, kBig);
  now = mem::pool_stats();
  EXPECT_EQ(now.hits, hits_before + 1);
  EXPECT_EQ(now.spills - before.spills, 3u);

  mem::pool_purge();
  EXPECT_EQ(mem::pool_stats().cached, 0u);
}

}  // namespace
}  // namespace stob
