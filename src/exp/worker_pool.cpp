#include "exp/worker_pool.hpp"

namespace stob::exp {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace stob::exp
