// Runtime stack-invariant checker.
//
// The paper's central guarantee — the obfuscated flow is never more
// aggressive than what the CCA decided — is enforced by core::CcaGuard at
// policy boundaries, but nothing asserted it end-to-end while the stack
// runs, least of all under adverse paths where loss recovery and defense
// schedules interact. This checker hooks the obs::StackListener tap and
// cross-checks every event, per flow:
//
//  1. never-more-aggressive: each emission departs no earlier than the
//     CCA/pacer allows and is no larger than the CCA-approved segment;
//     window-limited emissions respect inflight + bytes <= cwnd (+ the
//     transport's documented slack);
//  2. byte conservation down the tx chain: TLS records >= TCP new stream
//     bytes; qdisc releases <= qdisc admissions; NIC pushes <= qdisc
//     releases; wire transmissions <= NIC pushes; and wire receptions <=
//     wire transmissions plus the fault layer's duplication budget;
//  3. sequence sanity: TCP data sequence numbers never regress, QUIC packet
//     numbers strictly increase;
//  4. retransmit sanity: no retransmission of data that is already
//     cumulatively acked;
//  5. queue bounds: qdisc backlog and NIC ring occupancy stay within their
//     configured bounds (plus the admit-one / TSO-burst slack the
//     implementations document).
//
// On violation the checker fails loudly: it logs the invariant, the
// offending event, and a flight-recorder tail (when a TraceRecorder is
// installed), keeps the report for the harness, and optionally throws.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "obs/trace_recorder.hpp"
#include "util/units.hpp"

namespace stob::fault {

class StackInvariantError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StackInvariantChecker final : public obs::StackListener {
 public:
  struct Config {
    /// Throw StackInvariantError on the first violation (tests); when
    /// false, violations are counted and reported but the run continues
    /// (sweeps, so one bad job cannot hide the others).
    bool throw_on_violation = false;
    /// Keep at most this many formatted violation reports.
    std::size_t max_reports = 8;
    /// Flight-recorder tail length included in each report (requires an
    /// installed obs::TraceRecorder).
    std::size_t dump_events = 32;
  };

  StackInvariantChecker() = default;
  explicit StackInvariantChecker(Config cfg) : cfg_(cfg) {}

  std::uint64_t checks() const { return checks_; }
  std::uint64_t violations() const { return violations_; }
  const std::vector<std::string>& reports() const { return reports_; }
  std::string first_report() const { return reports_.empty() ? std::string() : reports_.front(); }

  /// Test hook: drive a synthetic violation through the normal reporting
  /// path (log + dump + count + optional throw).
  void inject_violation_for_test();

  // ------------------------------------------------ obs::StackListener
  void on_packet(const obs::PacketEvent& ev) override;
  void on_departure(const obs::DepartureEvent& ev) override;
  void on_ack_advance(const net::FlowKey& flow, std::uint64_t una) override;
  void on_queue_depth(obs::QueueKind kind, std::int64_t depth, std::int64_t bound) override;
  void on_fault(obs::FaultKind kind, const net::Packet& p, TimePoint now) override;

 private:
  /// Per-flow cumulative accounting (sender-perspective flow keys).
  struct FlowState {
    // Byte-conservation ledgers (payload bytes).
    std::int64_t tls_tx = 0;       // sealed TLS record bytes
    std::uint64_t tcp_high = 0;    // highest TCP stream offset emitted (seq+len)
    std::int64_t qdisc_in = 0;     // admitted into the qdisc
    std::int64_t qdisc_out = 0;    // released by the qdisc
    std::int64_t nic_tx = 0;       // pushed into the NIC ring
    std::int64_t wire_tx = 0;      // started serialising onto the wire
    std::int64_t wire_rx = 0;      // delivered by the wire
    std::int64_t dup_budget = 0;   // extra rx bytes the fault layer created
    // Sequence sanity.
    bool have_tcp_seq = false;
    std::uint64_t last_tcp_seq = 0;
    bool have_quic_pn = false;
    std::uint64_t last_quic_pn = 0;
    // Retransmit sanity.
    bool have_una = false;
    std::uint64_t una = 0;
  };

  void check(bool ok, const char* invariant, const std::string& detail);
  void report(const char* invariant, const std::string& detail);

  Config cfg_;
  std::unordered_map<net::FlowKey, FlowState, net::FlowKeyHash> flows_;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<std::string> reports_;
};

}  // namespace stob::fault
